package madlib_test

import (
	"math"
	"testing"

	"madlib"
	"madlib/internal/datagen"
)

// TestTable1Inventory exercises every Table-1 method end-to-end through
// the public facade — the integration counterpart of the paper's method
// inventory.
func TestTable1Inventory(t *testing.T) {
	db := madlib.Open(madlib.Config{Segments: 4})

	// --- Supervised: Linear Regression (§4.1). ---
	reg := datagen.NewRegression(1, 2000, 3, 0.1)
	regT, err := db.CreateTable("reg", madlib.Schema{
		{Name: "y", Kind: madlib.Float},
		{Name: "x", Kind: madlib.Vector},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reg.X {
		if err := regT.Insert(reg.Y[i], reg.X[i]); err != nil {
			t.Fatal(err)
		}
	}
	lin, err := db.LinRegr("reg", "y", "x")
	if err != nil {
		t.Fatal(err)
	}
	if lin.R2 < 0.95 {
		t.Fatalf("linregr R² = %v", lin.R2)
	}
	// All three versions agree through the facade.
	for _, v := range []madlib.LinRegrVersion{madlib.V01Alpha, madlib.V021Beta} {
		alt, err := db.LinRegrWithVersion("reg", "y", "x", v)
		if err != nil {
			t.Fatal(err)
		}
		for i := range lin.Coef {
			if math.Abs(alt.Coef[i]-lin.Coef[i]) > 1e-8 {
				t.Fatalf("version %v disagrees", v)
			}
		}
	}

	// --- Supervised: Logistic Regression (§4.2). ---
	logd := datagen.NewLogistic(2, 4000, 3)
	logT, _ := db.CreateTable("logd", madlib.Schema{
		{Name: "y", Kind: madlib.Float},
		{Name: "x", Kind: madlib.Vector},
	})
	for i := range logd.X {
		if err := logT.Insert(logd.Y[i], logd.X[i]); err != nil {
			t.Fatal(err)
		}
	}
	logres, err := db.LogRegr("logd", "y", "x", madlib.LogRegrOptions{Solver: madlib.IRLS})
	if err != nil {
		t.Fatal(err)
	}
	if logres.Iterations < 2 || len(logres.Coef) != 3 {
		t.Fatalf("logregr: %+v", logres)
	}

	// --- Supervised: Naive Bayes. ---
	nbT, _ := db.CreateTable("nb", madlib.Schema{
		{Name: "class", Kind: madlib.String},
		{Name: "attrs", Kind: madlib.Vector},
	})
	for i := 0; i < 200; i++ {
		class, attr := "a", 0.0
		if i%2 == 0 {
			class, attr = "b", 1.0
		}
		if err := nbT.Insert(class, []float64{attr}); err != nil {
			t.Fatal(err)
		}
	}
	nb, err := db.NaiveBayes("nb", "class", "attrs", madlib.BayesOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := nb.Classify([]float64{1}); got != "b" {
		t.Fatalf("naive bayes classified %q", got)
	}

	// --- Supervised: Decision Trees (C4.5). ---
	dtT, _ := db.CreateTable("dt", madlib.Schema{
		{Name: "class", Kind: madlib.String},
		{Name: "features", Kind: madlib.Vector},
	})
	for i := 0; i < 200; i++ {
		v := float64(i) / 200
		class := "lo"
		if v > 0.5 {
			class = "hi"
		}
		if err := dtT.Insert(class, []float64{v}); err != nil {
			t.Fatal(err)
		}
	}
	tree, err := db.C45("dt", "class", "features", madlib.TreeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := tree.Classify([]float64{0.9}); got != "hi" {
		t.Fatalf("c45 classified %q", got)
	}

	// --- Supervised: SVM. ---
	mar := datagen.NewMargin(3, 2000, 3, 0.5)
	svmT, _ := db.CreateTable("svmd", madlib.Schema{
		{Name: "y", Kind: madlib.Float},
		{Name: "x", Kind: madlib.Vector},
	})
	for i := range mar.X {
		if err := svmT.Insert(mar.Y[i], mar.X[i]); err != nil {
			t.Fatal(err)
		}
	}
	svmM, err := db.SVM("svmd", "y", "x", madlib.SVMOptions{Passes: 20})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range mar.X {
		if svmM.Classify(mar.X[i]) == mar.Y[i] {
			correct++
		}
	}
	if float64(correct)/float64(len(mar.X)) < 0.95 {
		t.Fatalf("svm accuracy %d/%d", correct, len(mar.X))
	}

	// --- Unsupervised: k-Means (§4.3). ---
	clu := datagen.NewClusters(4, 1000, 3, 2, 0.3)
	cluT, _ := db.CreateTable("clu", madlib.Schema{
		{Name: "coords", Kind: madlib.Vector},
		{Name: "centroid_id", Kind: madlib.Int},
	})
	for _, p := range clu.Points {
		if err := cluT.Insert(p, int64(-1)); err != nil {
			t.Fatal(err)
		}
	}
	km, err := db.KMeans("clu", "coords", madlib.KMeansOptions{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(km.Centroids) != 3 {
		t.Fatalf("kmeans centroids = %d", len(km.Centroids))
	}

	// --- Unsupervised: SVD Matrix Factorization. ---
	rat := datagen.NewRatings(5, 20, 15, 2, 2000, 0.02)
	ratT, _ := db.CreateTable("rat", madlib.Schema{
		{Name: "i", Kind: madlib.Int},
		{Name: "j", Kind: madlib.Int},
		{Name: "v", Kind: madlib.Float},
	})
	for _, e := range rat.Entries {
		if err := ratT.Insert(int64(e.I), int64(e.J), e.Value); err != nil {
			t.Fatal(err)
		}
	}
	mf, err := db.SVDMF("rat", "i", "j", "v", madlib.SVDMFOptions{Rank: 2, MaxPasses: 150})
	if err != nil {
		t.Fatal(err)
	}
	if mf.RMSE > 0.3 {
		t.Fatalf("svdmf RMSE = %v", mf.RMSE)
	}

	// --- Unsupervised: LDA. ---
	ldaT, _ := db.CreateTable("ldad", madlib.Schema{
		{Name: "doc", Kind: madlib.Int},
		{Name: "word", Kind: madlib.Int},
	})
	for d := 0; d < 20; d++ {
		for i := 0; i < 30; i++ {
			w := int64((d%2)*10 + i%10)
			if err := ldaT.Insert(int64(d), w); err != nil {
				t.Fatal(err)
			}
		}
	}
	ldaM, err := db.LDA("ldad", "doc", "word", madlib.LDAOptions{Topics: 2, Iterations: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ldaM.Vocab != 20 {
		t.Fatalf("lda vocab = %d", ldaM.Vocab)
	}

	// --- Unsupervised: Association Rules. ---
	basT, _ := db.CreateTable("baskets", madlib.Schema{
		{Name: "basket", Kind: madlib.Int},
		{Name: "item", Kind: madlib.String},
	})
	for b, basket := range datagen.Baskets(6, 500, 8) {
		for _, item := range basket {
			if err := basT.Insert(int64(b), item); err != nil {
				t.Fatal(err)
			}
		}
	}
	rules, err := db.AssocRules("baskets", "basket", "item", madlib.AssocOptions{MinSupport: 0.05, MinConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules.Rules) == 0 {
		t.Fatal("no association rules found")
	}

	// --- Descriptive: sketches, quantiles, profiling. ---
	strT, _ := db.CreateTable("stream", madlib.Schema{{Name: "v", Kind: madlib.Int}, {Name: "f", Kind: madlib.Float}})
	for i, v := range datagen.StreamValues(7, 20000, 500) {
		if err := strT.Insert(v, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	cm, err := db.CountMinSketch("stream", "v", 0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if cm.Total() != 20000 {
		t.Fatalf("cms total = %d", cm.Total())
	}
	distinct, err := db.DistinctCount("stream", "v")
	if err != nil {
		t.Fatal(err)
	}
	if distinct < 300 || distinct > 700 {
		t.Fatalf("distinct ≈ %d", distinct)
	}
	q, err := db.Quantile("stream", "f", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q-9999.5) > 1.5 {
		t.Fatalf("median = %v", q)
	}
	aq, err := db.ApproxQuantiles("stream", "f", 0.01, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(aq[0]-9999.5) > 0.05*20000 {
		t.Fatalf("approx median = %v", aq[0])
	}
	prof, err := db.Profile("stream")
	if err != nil {
		t.Fatal(err)
	}
	if prof.Rows != 20000 || len(prof.Columns) != 2 {
		t.Fatalf("profile: %+v", prof)
	}

	// --- Text analytics: CRF + approximate matching (§5.2). ---
	var sentences []madlib.CRFSentence
	for _, sent := range datagen.NewCorpus(8, 150, 7) {
		s := make(madlib.CRFSentence, len(sent))
		for i, tok := range sent {
			s[i] = madlib.CRFToken{Word: tok.Word, Tag: tok.Tag}
		}
		sentences = append(sentences, s)
	}
	crfM, err := db.CRFTrain(sentences, madlib.CRFTrainOptions{MaxPasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	tags := crfM.Viterbi([]string{"the", "dog", "runs"})
	if len(tags) != 3 {
		t.Fatalf("crf tags = %v", tags)
	}
	ix := madlib.NewTrigramIndex()
	ix.Add(1, "Tim Tebow")
	res := ix.Search("Tim Tebo", 0.4)
	if len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("trigram search = %v", res)
	}
	if madlib.Similarity("abc", "abc") != 1 {
		t.Fatal("similarity of identical strings")
	}
}

// TestMethodRegistryComplete verifies the Table-1 inventory is fully
// registered (every method package contributes its row).
func TestMethodRegistryComplete(t *testing.T) {
	want := []string{
		"linregr", "logregr", "naive_bayes", "c45", "svm",
		"kmeans", "svdmf", "lda", "assoc_rules",
		"cmsketch", "fmsketch", "profile", "quantile",
		"svec", "array_ops", "conjugate_gradient",
		"convex_sgd", "crf", "approx_match", "bootstrap",
	}
	have := map[string]bool{}
	for _, m := range madlib.Methods() {
		have[m.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Fatalf("method %q not registered; registry: %v", name, madlib.Methods())
		}
	}
}

func TestOpenDefaults(t *testing.T) {
	db := madlib.Open(madlib.Config{})
	if db.Engine().SegmentCount() != 4 {
		t.Fatalf("default segments = %d", db.Engine().SegmentCount())
	}
}

func TestFacadeErrors(t *testing.T) {
	db := madlib.Open(madlib.Config{Segments: 2})
	if _, err := db.LinRegr("missing", "y", "x"); err == nil {
		t.Fatal("missing table should fail")
	}
	if _, err := db.Quantile("missing", "x", 0.5); err == nil {
		t.Fatal("missing table should fail")
	}
	if _, err := db.CountMinSketch("missing", "v", 0.01, 0.01); err == nil {
		t.Fatal("missing table should fail")
	}
	if _, err := db.Profile("missing"); err == nil {
		t.Fatal("missing table should fail")
	}
	tbl, _ := db.CreateTable("t", madlib.Schema{{Name: "v", Kind: madlib.Int}})
	_ = tbl
	if _, err := db.Quantile("t", "nope", 0.5); err == nil {
		t.Fatal("missing column should fail")
	}
	if _, err := db.CountMinSketch("t", "v", 5, 0.01); err == nil {
		t.Fatal("invalid epsilon should fail")
	}
	if _, err := db.DistinctCount("t", "nope"); err == nil {
		t.Fatal("missing column should fail")
	}
}
