package madlib_test

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"madlib/internal/engine"
	"madlib/internal/pgwire"
)

// BenchmarkPGWireConcurrent measures end-to-end throughput of the wire
// server under concurrent clients: N real TCP connections against one
// shared engine, each issuing a mix of simple-protocol reads, writes,
// and extended-protocol EXECUTE with parameters. One op = one statement
// round-trip, so ns/op captures protocol framing, session scheduling,
// the engine's reader/writer data latches, and the query itself — the
// serving tax on top of the in-process SQL numbers in
// BenchmarkSQLSelectAgg.
func BenchmarkPGWireConcurrent(b *testing.B) {
	const clients = 8

	db := engine.Open(4)
	tbl, err := db.CreateTable("t", engine.Schema{
		{Name: "g", Kind: engine.Int}, {Name: "v", Kind: engine.Float},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchRows; i++ {
		if err := tbl.Insert(int64(i%16), float64(i%1000)/1000); err != nil {
			b.Fatal(err)
		}
	}

	srv := pgwire.NewServer(db, pgwire.Config{Listen: "127.0.0.1:0", MaxSessions: clients + 2})
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	addr := srv.Addr().String()

	conns := make([]*pgwire.Client, clients)
	for i := range conns {
		c, err := pgwire.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		if err := c.Prepare("agg", "SELECT g, avg(v), count(*) FROM t WHERE v > $1 GROUP BY g", nil); err != nil {
			b.Fatal(err)
		}
		conns[i] = c
	}

	var seq atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()

	// Fixed-worker fan-out rather than RunParallel: each worker owns one
	// wire connection for its whole share of b.N, like a real client.
	var wg sync.WaitGroup
	var failed atomic.Value
	per := b.N / clients
	extra := b.N % clients
	for w := 0; w < clients; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(c *pgwire.Client, n int) {
			defer wg.Done()
			thresh := "0.25"
			for i := 0; i < n; i++ {
				var err error
				switch i % 4 {
				case 0, 1: // simple-protocol read
					_, err = c.Query("SELECT g, avg(v), count(*) FROM t WHERE v > 0.25 GROUP BY g")
				case 2: // simple-protocol write
					k := seq.Add(1)
					_, err = c.Query(fmt.Sprintf("INSERT INTO t VALUES (%d, 0.5)", 16+k%16))
				case 3: // extended-protocol parameterized read
					_, err = c.Execute("agg", []*string{&thresh})
				}
				if err != nil {
					failed.Store(err)
					return
				}
			}
		}(conns[w], n)
	}
	wg.Wait()
	b.StopTimer()
	if err := failed.Load(); err != nil {
		b.Fatal(err)
	}
	// Sanity: the writes landed. b.N/clients-dependent, so only check > 0.
	if b.N >= 4 {
		res, err := conns[0].Query("SELECT count(*) FROM t WHERE g >= 16")
		if err != nil {
			b.Fatal(err)
		}
		if n, _ := strconv.Atoi(*res.Rows[0][0]); n == 0 {
			b.Fatal("no benchmark inserts visible")
		}
	}
}

// BenchmarkPGWirePredict measures end-to-end model-serving throughput:
// concurrent wire clients scoring a catalog-persisted model through a
// prepared statement whose threshold parameter travels in binary
// float8. One op = one scoring round-trip, so ns/op is the QPS bound
// for predict-over-pgwire on this box.
func BenchmarkPGWirePredict(b *testing.B) {
	const clients = 8

	db := engine.Open(4)
	tbl, err := db.CreateTable("pts", engine.Schema{
		{Name: "y", Kind: engine.Float}, {Name: "x", Kind: engine.Vector},
		{Name: "x1", Kind: engine.Float}, {Name: "x2", Kind: engine.Float},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchRows; i++ {
		f1 := float64(i%97) / 97
		f2 := float64(i%61) / 61
		if err := tbl.Insert(f1+2*f2, []float64{f1, f2}, f1, f2); err != nil {
			b.Fatal(err)
		}
	}

	srv := pgwire.NewServer(db, pgwire.Config{Listen: "127.0.0.1:0", MaxSessions: clients + 2})
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	addr := srv.Addr().String()

	conns := make([]*pgwire.Client, clients)
	for i := range conns {
		c, err := pgwire.Dial(addr)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}
	// Train and persist once over the wire, then prepare the scoring
	// statement on every connection (sessions are per-connection).
	if _, err := conns[0].Query(`SELECT (madlib.linregr('m', y, x)).* FROM pts`); err != nil {
		b.Fatal(err)
	}
	const score = `SELECT count(*) FROM pts WHERE madlib.predict('m', x1, x2) > $1`
	for _, c := range conns {
		if err := c.Prepare("score", score, []int32{pgwire.OidFloat8}); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	var failed atomic.Value
	per := b.N / clients
	extra := b.N % clients
	for w := 0; w < clients; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(c *pgwire.Client, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				r, err := c.ExecuteParams("score", []pgwire.WireParam{
					pgwire.Float8Param(float64(i%3) / 2),
				})
				if err != nil {
					failed.Store(err)
					return
				}
				if len(r.Rows) != 1 {
					failed.Store(fmt.Errorf("rows = %d", len(r.Rows)))
					return
				}
			}
		}(conns[w], n)
	}
	wg.Wait()
	b.StopTimer()
	if err := failed.Load(); err != nil {
		b.Fatal(err)
	}
}
