module madlib

go 1.24
