package madlib

import (
	"log/slog"
	"time"

	"madlib/internal/metrics"
	"madlib/internal/sql"
)

// SQLResult is one statement's rowset: column names, rows and a
// psql-style command tag. Its Format method renders an aligned table.
type SQLResult = sql.Result

// SQLSession is the stateful SQL front-end over a database: it owns the
// plan cache and the PREPARE'd statements. DB.Exec and DB.Query run
// through one shared session, so repeated statements reuse their cached
// plans automatically.
type SQLSession = sql.Session

// SQLTiming is the parse/plan/exec phase breakdown of the last statement
// a session executed.
type SQLTiming = sql.Timing

// SQLSession returns the database's shared SQL session, for callers that
// need session state beyond Exec/Query: prepared-statement listings,
// per-phase timing.
func (db *DB) SQLSession() *SQLSession { return db.sess }

// Exec parses and runs one or more ';'-separated SQL statements against
// the database, returning one result per statement:
//
//	db.Exec(`CREATE TABLE data (y double precision, x double precision[]);
//	         INSERT INTO data VALUES (1.14, {1, 0.22});`)
//
// Execution stops at the first error; results of already-completed
// statements are returned alongside it. Statements are planned once and
// cached: re-running the same text skips parsing and planning, and
// PREPARE name AS ... / EXECUTE name(args) give explicit control with
// $1-style parameters.
func (db *DB) Exec(text string) ([]*SQLResult, error) {
	return db.sess.Exec(text)
}

// Query runs a single SQL statement that must produce rows — the paper's
// §4.1 session, programmatically:
//
//	res, err := db.Query(`SELECT (madlib.linregr(y, x)).* FROM data`)
//	fmt.Print(res.Format())
func (db *DB) Query(text string) (*SQLResult, error) {
	return db.sess.Query(text)
}

// MetricStat is one named counter sample from the engine's metrics
// registry (see DB.Stats).
type MetricStat = metrics.Stat

// SQLQueryStat is one executed statement's record in the session's
// recent-query ring (the madlib_stats_queries system view).
type SQLQueryStat = sql.QueryStat

// Stats snapshots the database's observability counters — engine scan
// and join counters plus the SQL layer's plan-cache, lane and join-cache
// counters — sorted by name. The same data is queryable in SQL:
//
//	db.Query(`SELECT name, value FROM madlib_stats_counters`)
func (db *DB) Stats() []MetricStat {
	return db.eng.Metrics().Snapshot()
}

// SetQueryLog enables (logger non-nil) or disables (nil) the shared
// session's structured query log: statements whose wall time reaches
// slowerThan are emitted with text, duration, lane, row count and cache
// flag. A slowerThan of 0 logs every statement.
func (db *DB) SetQueryLog(logger *slog.Logger, slowerThan time.Duration) {
	db.sess.SetQueryLog(logger, slowerThan)
}
