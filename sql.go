package madlib

import (
	"madlib/internal/sql"
)

// SQLResult is one statement's rowset: column names, rows and a
// psql-style command tag. Its Format method renders an aligned table.
type SQLResult = sql.Result

// SQLSession is the stateful SQL front-end over a database: it owns the
// plan cache and the PREPARE'd statements. DB.Exec and DB.Query run
// through one shared session, so repeated statements reuse their cached
// plans automatically.
type SQLSession = sql.Session

// SQLTiming is the parse/plan/exec phase breakdown of the last statement
// a session executed.
type SQLTiming = sql.Timing

// SQLSession returns the database's shared SQL session, for callers that
// need session state beyond Exec/Query: prepared-statement listings,
// per-phase timing.
func (db *DB) SQLSession() *SQLSession { return db.sess }

// Exec parses and runs one or more ';'-separated SQL statements against
// the database, returning one result per statement:
//
//	db.Exec(`CREATE TABLE data (y double precision, x double precision[]);
//	         INSERT INTO data VALUES (1.14, {1, 0.22});`)
//
// Execution stops at the first error; results of already-completed
// statements are returned alongside it. Statements are planned once and
// cached: re-running the same text skips parsing and planning, and
// PREPARE name AS ... / EXECUTE name(args) give explicit control with
// $1-style parameters.
func (db *DB) Exec(text string) ([]*SQLResult, error) {
	return db.sess.Exec(text)
}

// Query runs a single SQL statement that must produce rows — the paper's
// §4.1 session, programmatically:
//
//	res, err := db.Query(`SELECT (madlib.linregr(y, x)).* FROM data`)
//	fmt.Print(res.Format())
func (db *DB) Query(text string) (*SQLResult, error) {
	return db.sess.Query(text)
}
