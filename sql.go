package madlib

import (
	"madlib/internal/sql"
)

// SQLResult is one statement's rowset: column names, rows and a
// psql-style command tag. Its Format method renders an aligned table.
type SQLResult = sql.Result

// Exec parses and runs one or more ';'-separated SQL statements against
// the database, returning one result per statement:
//
//	db.Exec(`CREATE TABLE data (y double precision, x double precision[]);
//	         INSERT INTO data VALUES (1.14, {1, 0.22});`)
//
// Execution stops at the first error; results of already-completed
// statements are returned alongside it.
func (db *DB) Exec(text string) ([]*SQLResult, error) {
	return sql.NewSession(db.eng).Exec(text)
}

// Query runs a single SQL statement that must produce rows — the paper's
// §4.1 session, programmatically:
//
//	res, err := db.Query(`SELECT (madlib.linregr(y, x)).* FROM data`)
//	fmt.Print(res.Format())
func (db *DB) Query(text string) (*SQLResult, error) {
	return sql.NewSession(db.eng).Query(text)
}
