#!/usr/bin/env bash
# bench_sql.sh — run the SQL front-end overhead benchmarks and record
# ns/op, B/op and allocs/op per variant to BENCH_sql.json, so the perf
# trajectory of the declarative surface (paper §4.4a) is tracked across
# PRs in version control.
#
# Usage: scripts/bench_sql.sh [benchtime]
#   benchtime defaults to 1x (a smoke run); use e.g. 2s for stable numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1x}"
out=$(go test -run '^$' -bench BenchmarkSQLSelectAgg -benchmem -benchtime "$BENCHTIME" .)
echo "$out"

echo "$out" | awk -v benchtime="$BENCHTIME" '
  BEGIN {
    printf "{\n  \"benchmark\": \"BenchmarkSQLSelectAgg\",\n"
    printf "  \"benchtime\": \"%s\",\n  \"results\": {\n", benchtime
    n = 0
  }
  /^BenchmarkSQLSelectAgg\// {
    name = $1
    sub(/^BenchmarkSQLSelectAgg\//, "", name)
    sub(/-[0-9]+$/, "", name)
    ns = "null"; bytes = "null"; allocs = "null"
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op") ns = $i
      if ($(i+1) == "B/op") bytes = $i
      if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs
  }
  END { print "\n  }\n}" }
' > BENCH_sql.json

echo "wrote BENCH_sql.json"
