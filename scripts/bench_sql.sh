#!/usr/bin/env bash
# bench_sql.sh — run the SQL front-end overhead benchmarks plus the
# training-harness, wire-server and model-serving (predict) benchmarks
# and record ns/op, B/op and allocs/op per variant to BENCH_sql.json,
# so the perf trajectory of the declarative surface (paper §4.4a), the
# igd training lanes and the predict scoring lanes is tracked across
# PRs in version control.
#
# Usage: scripts/bench_sql.sh [benchtime]
#   benchtime defaults to 1x (a smoke run); use e.g. 2s for stable numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-1x}"
out=$(go test -run '^$' -bench BenchmarkSQLSelectAgg -benchmem -benchtime "$BENCHTIME" .)
echo "$out"
tout=$(go test -run '^$' -bench '^BenchmarkTrain' -benchmem -benchtime "$BENCHTIME" .)
echo "$tout"
wout=$(go test -run '^$' -bench '^BenchmarkPGWire' -benchmem -benchtime "$BENCHTIME" .)
echo "$wout"
pout=$(go test -run '^$' -bench '^BenchmarkSQLPredict' -benchmem -benchtime "$BENCHTIME" .)
echo "$pout"

# Environment metadata, so committed numbers can be judged against the
# machine that produced them (ns/op from a 2-core runner is not
# comparable to a 32-core box).
go_version=$(go env GOVERSION)
num_cpu=$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)
gomaxprocs="${GOMAXPROCS:-$num_cpu}"

printf '%s\n%s\n%s\n%s\n' "$out" "$tout" "$wout" "$pout" | awk -v benchtime="$BENCHTIME" \
  -v go_version="$go_version" -v num_cpu="$num_cpu" -v gomaxprocs="$gomaxprocs" '
  BEGIN {
    printf "{\n  \"benchmark\": \"BenchmarkSQLSelectAgg\",\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"env\": {\"go_version\": \"%s\", \"num_cpu\": %d, \"gomaxprocs\": %d},\n", go_version, num_cpu, gomaxprocs
    printf "  \"results\": {\n"
    n = 0
  }
  /^BenchmarkSQLSelectAgg\// || /^BenchmarkTrain/ || /^BenchmarkPGWire/ || /^BenchmarkSQLPredict/ {
    name = $1
    sub(/^BenchmarkSQLSelectAgg\//, "", name)
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)
    ns = "null"; bytes = "null"; allocs = "null"
    for (i = 2; i < NF; i++) {
      if ($(i+1) == "ns/op") ns = $i
      if ($(i+1) == "B/op") bytes = $i
      if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, ns, bytes, allocs
  }
  END { print "\n  }\n}" }
' > BENCH_sql.json

echo "wrote BENCH_sql.json"
