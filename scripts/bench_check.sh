#!/usr/bin/env bash
# bench_check.sh — regression gate for the SQL front-end's hot path.
# Runs BenchmarkSQLSelectAgg/SQL and fails when ns/op regresses more than
# the allowed factor versus the committed BENCH_sql.json, so a PR cannot
# silently lose the vectorized-execution win.
#
# Usage: scripts/bench_check.sh [benchtime] [max_ratio]
#   benchtime defaults to 0.5s; max_ratio defaults to 1.25 (25% slack for
#   shared-runner noise).
#
# Caveat: the committed baseline is absolute ns/op from the machine that
# last ran scripts/bench_sql.sh, so the slack also absorbs hardware
# differences between that machine and the CI runner. If CI hardware
# drifts, refresh BENCH_sql.json (or pass a larger max_ratio) rather
# than deleting the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-0.5s}"
MAX_RATIO="${2:-1.25}"

committed=$(grep -o '"SQL": {"ns_per_op": [0-9]*' BENCH_sql.json | grep -o '[0-9]*$')
if [ -z "$committed" ]; then
  echo "bench_check: no committed SQL ns_per_op in BENCH_sql.json" >&2
  exit 1
fi

out=$(go test -run '^$' -bench 'BenchmarkSQLSelectAgg/SQL$' -benchtime "$BENCHTIME" .)
echo "$out"

current=$(echo "$out" | awk '
  /^BenchmarkSQLSelectAgg\/SQL(-[0-9]+)?[ \t]/ {
    for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") print $i
  }' | head -1)
if [ -z "$current" ]; then
  echo "bench_check: benchmark produced no ns/op line" >&2
  exit 1
fi

awk -v cur="$current" -v base="$committed" -v ratio="$MAX_RATIO" 'BEGIN {
  limit = base * ratio
  printf "bench_check: current %.0f ns/op, committed %.0f ns/op, limit %.0f ns/op\n", cur, base, limit
  if (cur > limit) {
    printf "bench_check: FAIL — BenchmarkSQLSelectAgg/SQL regressed more than %.0f%%\n", (ratio - 1) * 100
    exit 1
  }
  print "bench_check: OK"
}'
