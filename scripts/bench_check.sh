#!/usr/bin/env bash
# bench_check.sh — regression gate for the SQL front-end's hot paths.
# Runs the gated BenchmarkSQLSelectAgg sub-benchmarks and fails when any
# of them regresses more than the allowed factor versus the committed
# BENCH_sql.json, so a PR cannot silently lose the vectorized-execution,
# parallel-lane or join-materialization wins.
#
# Gated entries: SQL (grouped filtered aggregate, batch lane),
# SQLParallel (morsel-parallel lane on a larger table), SQLJoinAgg
# (cold joined aggregate: plan + build + probe), SQLJoinAggCached
# (steady-state joined aggregate over the cached materialization),
# SQLProjScan (columnar projection scan), SQLLeftJoinAgg (NULL-aware
# batch aggregate over a LEFT JOIN), SQLWindow (vectorized window
# gather) and SQLOrderBy (parallel sort).
#
# On top of the absolute ns/op gate, the vectorization wins are gated
# relative to their row-lane companions measured in the same run:
# SQLProjScan and SQLLeftJoinAgg must stay at least MIN_SPEEDUP times
# faster than SQLProjScanRowLane / SQLLeftJoinAggRowLane. Same-run
# ratios are hardware-independent, so this holds on 1-core runners
# where the gain is pure single-core vectorization.
#
# The igd training harness is gated the same way: TrainLogregrIGD and
# TrainSVM run absolute gates against BENCH_sql.json, and their
# vectorized gather lane must stay at least MIN_SPEEDUP_TRAIN times
# (default 2.0) faster than the boxed row-lane companions
# TrainLogregrIGDRowLane / TrainSVMRowLane in the same run.
#
# The wire server is gated absolutely too: PGWireConcurrent (N TCP
# connections, mixed simple reads, writes and extended-protocol EXECUTE
# against one shared engine) keeps the serving path — protocol framing,
# session pool, data latches — from silently regressing, and
# PGWirePredict does the same for model scoring over the wire.
#
# Model serving is gated like training: SQLPredictBatch runs an
# absolute gate, and the vectorized scoring kernel must stay at least
# MIN_SPEEDUP_TRAIN times faster than SQLPredictRowLane in the same
# run.
#
# Usage: scripts/bench_check.sh [benchtime] [max_ratio]
#   benchtime defaults to 0.5s; max_ratio defaults to 1.25 (25% slack for
#   shared-runner noise). MIN_SPEEDUP overrides the relative gate
#   (default 1.5); MIN_SPEEDUP_TRAIN the training one (default 2.0).
#
# Caveat: the committed baseline is absolute ns/op from the machine that
# last ran scripts/bench_sql.sh, so the slack also absorbs hardware
# differences between that machine and the CI runner. If CI hardware
# drifts, refresh BENCH_sql.json (or pass a larger max_ratio) rather
# than deleting the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${1:-0.5s}"
MAX_RATIO="${2:-1.25}"
MIN_SPEEDUP="${MIN_SPEEDUP:-1.5}"
MIN_SPEEDUP_TRAIN="${MIN_SPEEDUP_TRAIN:-2.0}"
GATED="SQL SQLParallel SQLJoinAgg SQLJoinAggCached SQLProjScan SQLLeftJoinAgg SQLWindow SQLOrderBy"
COMPANIONS="SQLProjScanRowLane SQLLeftJoinAggRowLane"
TRAIN_GATED="TrainLogregrIGD TrainSVM"
TRAIN_COMPANIONS="TrainLogregrIGDRowLane TrainSVMRowLane"
PGWIRE_GATED="PGWireConcurrent PGWirePredict"
PREDICT_GATED="SQLPredictBatch"
PREDICT_COMPANIONS="SQLPredictRowLane"

pattern=$(echo "$GATED $COMPANIONS" | tr ' ' '|')
out=$(go test -run '^$' -bench "BenchmarkSQLSelectAgg/^($pattern)\$" -benchtime "$BENCHTIME" .)
echo "$out"
train_pattern=$(for n in $TRAIN_GATED $TRAIN_COMPANIONS; do printf 'Benchmark%s|' "$n"; done | sed 's/|$//')
tout=$(go test -run '^$' -bench "^($train_pattern)\$" -benchtime "$BENCHTIME" .)
echo "$tout"
wire_pattern=$(for n in $PGWIRE_GATED; do printf 'Benchmark%s|' "$n"; done | sed 's/|$//')
wout=$(go test -run '^$' -bench "^($wire_pattern)\$" -benchtime "$BENCHTIME" .)
echo "$wout"
predict_pattern=$(for n in $PREDICT_GATED $PREDICT_COMPANIONS; do printf 'Benchmark%s|' "$n"; done | sed 's/|$//')
pout=$(go test -run '^$' -bench "^($predict_pattern)\$" -benchtime "$BENCHTIME" .)
echo "$pout"
out=$(printf '%s\n%s\n%s\n%s\n' "$out" "$tout" "$wout" "$pout")

ns_of() {
  echo "$out" | awk -v bench="BenchmarkSQLSelectAgg/$1" -v flat="Benchmark$1" '
    $1 == bench || $1 ~ "^" bench "-[0-9]+$" || $1 == flat || $1 ~ "^" flat "-[0-9]+$" {
      for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") print $i
    }' | head -1
}

fail=0
for name in $GATED $TRAIN_GATED $PGWIRE_GATED $PREDICT_GATED; do
  committed=$(grep -o "\"$name\": {\"ns_per_op\": [0-9]*" BENCH_sql.json | grep -o '[0-9]*$' || true)
  if [ -z "$committed" ]; then
    echo "bench_check: no committed $name ns_per_op in BENCH_sql.json" >&2
    exit 1
  fi
  current=$(ns_of "$name")
  if [ -z "$current" ]; then
    echo "bench_check: benchmark $name produced no ns/op line" >&2
    exit 1
  fi
  if ! awk -v name="$name" -v cur="$current" -v base="$committed" -v ratio="$MAX_RATIO" 'BEGIN {
    limit = base * ratio
    printf "bench_check: %s current %.0f ns/op, committed %.0f ns/op, limit %.0f ns/op\n", name, cur, base, limit
    if (cur > limit) {
      printf "bench_check: FAIL — BenchmarkSQLSelectAgg/%s regressed more than %.0f%%\n", name, (ratio - 1) * 100
      exit 1
    }
  }'; then
    fail=1
  fi
  # The benchmarks also report metric-registry deltas (planhit/op,
  # joinhit/op, joinmiss/op); surface them so a perf change can be read
  # against its cache behaviour — e.g. SQLJoinAggCached losing its 1.000
  # joinhit/op explains a ns/op regression better than the number alone.
  counters=$(echo "$out" | awk -v bench="BenchmarkSQLSelectAgg/$name" '
    $1 == bench || $1 ~ "^" bench "-[0-9]+$" {
      for (i = 2; i < NF; i++)
        if ($(i+1) ~ /(hit|miss)\/op$/) printf "%s %s  ", $i, $(i+1)
    }' | head -1)
  if [ -n "$counters" ]; then
    echo "bench_check: $name cache counters: $counters"
  fi
done

# Relative vectorization gates: batch lane vs row-lane companion, same
# run, same hardware. The training pairs carry their own (stricter)
# minimum: the vectorized gather lane must hold a 2x win over boxed
# row-at-a-time access.
for pair in \
  "SQLProjScan SQLProjScanRowLane $MIN_SPEEDUP" \
  "SQLLeftJoinAgg SQLLeftJoinAggRowLane $MIN_SPEEDUP" \
  "TrainLogregrIGD TrainLogregrIGDRowLane $MIN_SPEEDUP_TRAIN" \
  "TrainSVM TrainSVMRowLane $MIN_SPEEDUP_TRAIN" \
  "SQLPredictBatch SQLPredictRowLane $MIN_SPEEDUP_TRAIN"; do
  set -- $pair
  batch_ns=$(ns_of "$1")
  row_ns=$(ns_of "$2")
  if [ -z "$batch_ns" ] || [ -z "$row_ns" ]; then
    echo "bench_check: missing ns/op for $1 / $2" >&2
    exit 1
  fi
  if ! awk -v b="$batch_ns" -v r="$row_ns" -v name="$1" -v comp="$2" -v min="$3" 'BEGIN {
    speedup = r / b
    printf "bench_check: %s speedup vs %s: %.2fx (min %.2fx)\n", name, comp, speedup, min
    if (speedup < min) {
      printf "bench_check: FAIL — %s is less than %.2fx faster than %s\n", name, min, comp
      exit 1
    }
  }'; then
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "bench_check: OK"
