// Advertising walks the paper's introduction scenario — microtargeting in
// online advertising — end to end on one database instance:
//
//  1. fit a click-through-rate model with logistic regression (which
//     features drive clicks, with Wald inference),
//  2. segment the audience with k-means over behavioural features,
//  3. profile the raw table the way an analyst would on first contact.
//
// The point of the MAD approach is that all three run *inside* the
// database over the full dataset — no sampling, no export.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"madlib"
)

func main() {
	db := madlib.Open(madlib.Config{Segments: 4})
	rng := rand.New(rand.NewSource(2012))

	// Impression log: clicked, user features (intercept, age bucket,
	// income bucket, pages/session), and the behavioural pair used for
	// segmentation.
	imp, err := db.CreateTable("impressions", madlib.Schema{
		{Name: "clicked", Kind: madlib.Float},
		{Name: "features", Kind: madlib.Vector},
		{Name: "behaviour", Kind: madlib.Vector},
		{Name: "segment", Kind: madlib.Int},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: clicks are driven by income (+) and pages/session (+)
	// with a negative age effect. Behaviour clusters into three regimes.
	trueBeta := []float64{-2.0, -0.6, 1.1, 0.8}
	centers := [][]float64{{1, 1}, {6, 2}, {3, 7}}
	n := 20000
	for i := 0; i < n; i++ {
		age := rng.NormFloat64()
		income := rng.NormFloat64()
		pages := rng.NormFloat64()
		x := []float64{1, age, income, pages}
		z := 0.0
		for j := range x {
			z += trueBeta[j] * x[j]
		}
		clicked := 0.0
		if rng.Float64() < 1/(1+math.Exp(-z)) {
			clicked = 1
		}
		c := centers[rng.Intn(len(centers))]
		behaviour := []float64{c[0] + rng.NormFloat64()*0.5, c[1] + rng.NormFloat64()*0.5}
		if err := imp.Insert(clicked, x, behaviour, int64(-1)); err != nil {
			log.Fatal(err)
		}
	}

	// 1. CTR model.
	ctr, err := db.LogRegr("impressions", "clicked", "features", madlib.LogRegrOptions{Solver: madlib.IRLS})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== CTR model (logistic regression, IRLS) ===")
	names := []string{"(intercept)", "age", "income", "pages/session"}
	fmt.Printf("%-14s %10s %10s %10s %12s\n", "feature", "coef", "std_err", "z", "odds_ratio")
	for j, name := range names {
		fmt.Printf("%-14s %10.4f %10.4f %10.2f %12.3f\n",
			name, ctr.Coef[j], ctr.StdErr[j], ctr.ZStats[j], ctr.OddsRatios[j])
	}
	fmt.Printf("log-likelihood %.1f after %d iterations over %d impressions\n\n",
		ctr.LogLikelihood, ctr.Iterations, ctr.NumRows)

	// 2. Audience segmentation with the §4.3 assignment-table pattern:
	// the segment ids are materialized back into the impressions table.
	seg, err := db.KMeans("impressions", "behaviour", madlib.KMeansOptions{
		K:                3,
		Pattern:          madlib.AssignmentTable,
		AssignmentColumn: "segment",
		Seed:             7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Audience segments (k-means, assignment-table pattern) ===")
	for i, c := range seg.Centroids {
		fmt.Printf("segment %d: center (%.2f, %.2f), %d users\n", i, c[0], c[1], seg.Sizes[i])
	}
	fmt.Printf("objective %.1f after %d iterations\n\n", seg.Objective, seg.Iterations)

	// 3. First-contact profiling of the raw table.
	prof, err := db.Profile("impressions")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Table profile ===")
	fmt.Print(prof.Format())
}
