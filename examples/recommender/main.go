// Recommender demonstrates Table 2's "Recommendation" objective: factorize
// a sparsely observed ratings matrix with incremental gradient descent
// (the svdmf module), then use the learned factors to predict unobserved
// cells and rank items per user.
package main

import (
	"fmt"
	"log"

	"madlib"
	"madlib/internal/datagen"
)

func main() {
	db := madlib.Open(madlib.Config{Segments: 4})

	const (
		users = 60
		items = 40
		rank  = 3
	)
	// Observed 20% of a rank-3 ratings matrix plus noise.
	ratings := datagen.NewRatings(9, users, items, rank, users*items/5, 0.05)
	t, err := db.CreateTable("ratings", madlib.Schema{
		{Name: "user", Kind: madlib.Int},
		{Name: "item", Kind: madlib.Int},
		{Name: "rating", Kind: madlib.Float},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range ratings.Entries {
		if err := t.Insert(int64(e.I), int64(e.J), e.Value); err != nil {
			log.Fatal(err)
		}
	}

	model, err := db.SVDMF("ratings", "user", "item", "rating", madlib.SVDMFOptions{
		Rank:      rank,
		MaxPasses: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorized %d×%d matrix at rank %d: RMSE %.4f after %d passes over %d observed cells\n\n",
		model.Rows, model.Cols, model.Rank, model.RMSE, model.Passes, len(ratings.Entries))

	// Rank recommendations in SQL instead of Go glue: predictions for
	// unobserved cells land in a table, a window function ranks them per
	// user, and a join attaches item labels — the declarative shape the
	// paper argues for (everything after Predict stays inside the
	// database).
	rated := map[[2]int]bool{}
	for _, e := range ratings.Entries {
		rated[[2]int{e.I, e.J}] = true
	}
	mustExec(db, `CREATE TABLE items (item bigint, label text)`)
	mustExec(db, `CREATE TABLE predictions (usr bigint, item bigint, score double precision)`)
	for j := 0; j < items; j++ {
		mustExec(db, fmt.Sprintf(`INSERT INTO items VALUES (%d, 'item_%02d')`, j, j))
	}
	for _, u := range []int{0, 1, 2} {
		for j := 0; j < items; j++ {
			if rated[[2]int{u, j}] {
				continue
			}
			p, err := model.Predict(u, j)
			if err != nil {
				log.Fatal(err)
			}
			mustExec(db, fmt.Sprintf(`INSERT INTO predictions VALUES (%d, %d, %g)`, u, j, p))
		}
	}
	// CTAS + window: rank each user's candidates by predicted score.
	mustExec(db, `CREATE TABLE ranked AS
		SELECT usr, item, score,
		       rank() OVER (PARTITION BY usr ORDER BY score DESC) AS rk
		FROM predictions`)
	res, err := db.Query(`
		SELECT r.usr, i.label, r.score
		FROM ranked r JOIN items i ON r.item = i.item
		WHERE r.rk <= 3
		ORDER BY r.usr, r.score DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-3 recommendations per user (SQL join + window):")
	for _, row := range res.Rows {
		fmt.Printf("  user %v  %-8v  predicted rating %+.3f\n", row[0], row[1], row[2].(float64))
	}

	fmt.Printf("\nuser-0 factor vector: %v\n", trim(model.RowFactor(0)))
}

func mustExec(db *madlib.DB, stmt string) {
	if _, err := db.Exec(stmt); err != nil {
		log.Fatal(err)
	}
}

func trim(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(int(v*1000)) / 1000
	}
	return out
}
