// Recommender demonstrates Table 2's "Recommendation" objective: factorize
// a sparsely observed ratings matrix with incremental gradient descent
// (the svdmf module), then use the learned factors to predict unobserved
// cells and rank items per user.
package main

import (
	"fmt"
	"log"
	"sort"

	"madlib"
	"madlib/internal/datagen"
)

func main() {
	db := madlib.Open(madlib.Config{Segments: 4})

	const (
		users = 60
		items = 40
		rank  = 3
	)
	// Observed 20% of a rank-3 ratings matrix plus noise.
	ratings := datagen.NewRatings(9, users, items, rank, users*items/5, 0.05)
	t, err := db.CreateTable("ratings", madlib.Schema{
		{Name: "user", Kind: madlib.Int},
		{Name: "item", Kind: madlib.Int},
		{Name: "rating", Kind: madlib.Float},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range ratings.Entries {
		if err := t.Insert(int64(e.I), int64(e.J), e.Value); err != nil {
			log.Fatal(err)
		}
	}

	model, err := db.SVDMF("ratings", "user", "item", "rating", madlib.SVDMFOptions{
		Rank:      rank,
		MaxPasses: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factorized %d×%d matrix at rank %d: RMSE %.4f after %d passes over %d observed cells\n\n",
		model.Rows, model.Cols, model.Rank, model.RMSE, model.Passes, len(ratings.Entries))

	// Top-5 recommendations for user 0, skipping already-rated items.
	rated := map[int]bool{}
	for _, e := range ratings.Entries {
		if e.I == 0 {
			rated[e.J] = true
		}
	}
	type scored struct {
		item  int
		score float64
	}
	var candidates []scored
	for j := 0; j < items; j++ {
		if rated[j] {
			continue
		}
		p, err := model.Predict(0, j)
		if err != nil {
			log.Fatal(err)
		}
		candidates = append(candidates, scored{item: j, score: p})
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].score > candidates[j].score })
	fmt.Println("top-5 recommendations for user 0:")
	for i := 0; i < 5 && i < len(candidates); i++ {
		fmt.Printf("  item %2d  predicted rating %+.3f\n", candidates[i].item, candidates[i].score)
	}

	fmt.Printf("\nuser-0 factor vector: %v\n", trim(model.RowFactor(0)))
}

func trim(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(int(v*1000)) / 1000
	}
	return out
}
