// Convexopt tours the §5.1 Wisconsin convex-optimization abstraction: the
// same incremental-gradient runner trains four different Table-2 models —
// each specified in a few lines as a decomposable objective — and the
// m-of-n bootstrap (the §3.1.2 counted-iteration pattern) puts error bars
// on a statistic at the end.
package main

import (
	"fmt"
	"log"

	"madlib"
	"madlib/internal/datagen"
	"madlib/internal/engine"
	"madlib/internal/sgd"
)

func main() {
	db := madlib.Open(madlib.Config{Segments: 4})
	eng := db.Engine()

	// One regression dataset with a sparse truth: only features 0 and 1
	// matter out of six.
	gen := datagen.NewRegression(13, 8000, 6, 0.2)
	for i := range gen.X {
		gen.Y[i] = 1.5*gen.X[i][0] + 3*gen.X[i][1] // sparse ground truth
	}
	regT, err := gen.LoadRegression(eng, "reg")
	if err != nil {
		log.Fatal(err)
	}
	// A ±1-labelled dataset for the classifiers.
	mar := datagen.NewMargin(14, 8000, 6, 0.4)
	marT, err := mar.Load(eng, "mar")
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		name  string
		model sgd.Model
		table *engine.Table
		opts  sgd.Options
	}
	runs := []row{
		{"Least Squares", sgd.LeastSquares{K: 6}, regT, sgd.Options{StepSize: 0.05, MaxPasses: 40}},
		{"Lasso (µ=1)", sgd.Lasso{K: 6, Mu: 1}, regT, sgd.Options{StepSize: 0.05, MaxPasses: 40}},
		{"Logistic", sgd.Logistic{K: 6}, marT, sgd.Options{StepSize: 0.2, MaxPasses: 40}},
		{"Hinge SVM", sgd.HingeSVM{K: 6}, marT, sgd.Options{StepSize: 0.2, MaxPasses: 40, L2: 1e-4}},
	}
	fmt.Println("=== Four objectives, one IGD runner (§5.1) ===")
	fmt.Printf("%-14s %10s %10s %7s   weights\n", "model", "loss[0]", "loss[end]", "passes")
	for _, r := range runs {
		res, err := sgd.Train(eng, r.table, sgd.ExtractLabeled(0, 1), r.model, r.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %10.4f %10.4f %7d   %v\n",
			r.name, res.LossHistory[0], res.LossHistory[len(res.LossHistory)-1], res.Passes, trim(res.Weights))
	}
	fmt.Println("\nnote how lasso zeroes the four irrelevant weights that")
	fmt.Println("least squares leaves at small non-zero values.")

	// Bootstrap error bars on the mean of y (counted-iteration pattern).
	meanAgg := engine.FuncAggregate{
		InitFn: func() any { return [2]float64{} },
		TransitionFn: func(s any, r engine.Row) any {
			st := s.([2]float64)
			return [2]float64{st[0] + r.Float(0), st[1] + 1}
		},
		MergeFn: func(a, b any) any {
			sa, sb := a.([2]float64), b.([2]float64)
			return [2]float64{sa[0] + sb[0], sa[1] + sb[1]}
		},
		FinalFn: func(s any) (any, error) {
			st := s.([2]float64)
			return st[0] / st[1], nil
		},
	}
	boot, err := db.Bootstrap("reg", meanAgg, madlib.BootstrapOptions{Iterations: 200, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== Bootstrap (m-of-n, 200 resamples) ===\n")
	fmt.Printf("mean(y) = %.4f ± %.4f (95%% CI [%.4f, %.4f])\n",
		boot.Mean, boot.StdErr, boot.CILow, boot.CIHigh)
}

func trim(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(int(v*100)) / 100
	}
	return out
}
