// Sketches demonstrates the descriptive-statistics modules over a skewed
// event stream: Count-Min point and heavy-hitter queries, Flajolet-Martin
// distinct counting, exact and Greenwald-Khanna approximate quantiles, and
// whole-table profiling — the Table 1 "Descriptive Statistics" row.
package main

import (
	"fmt"
	"log"

	"madlib"
	"madlib/internal/datagen"
)

func main() {
	db := madlib.Open(madlib.Config{Segments: 4})

	// A Zipf-skewed event stream: a few heavy hitters, a long tail.
	const n = 200000
	events, err := db.CreateTable("events", madlib.Schema{
		{Name: "key", Kind: madlib.Int},
		{Name: "latency", Kind: madlib.Float},
	})
	if err != nil {
		log.Fatal(err)
	}
	truth := map[int64]int{}
	for i, v := range datagen.StreamValues(3, n, 5000) {
		truth[v]++
		latency := 1 + float64(i%1000)/100
		if err := events.Insert(v, latency); err != nil {
			log.Fatal(err)
		}
	}

	// Count-Min: point queries never undercount; error ≤ εN.
	cm, err := db.CountMinSketch("events", "key", 0.0005, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Count-Min sketch (ε=0.0005) ===")
	for _, key := range []int64{1, 2, 10, 100, 4000} {
		fmt.Printf("key %5d: estimated %7d, true %7d\n", key, cm.Count(key), truth[key])
	}

	// FM distinct count.
	distinct, err := db.DistinctCount("events", "key")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== Flajolet-Martin ===\ndistinct keys ≈ %d (true %d)\n", distinct, len(truth))

	// Quantiles: exact vs streaming GK.
	exact, err := db.Quantile("events", "latency", 0.95)
	if err != nil {
		log.Fatal(err)
	}
	approx, err := db.ApproxQuantiles("events", "latency", 0.01, []float64{0.5, 0.95, 0.99})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=== Quantiles ===\np95 exact %.3f | GK p50 %.3f, p95 %.3f, p99 %.3f\n",
		exact, approx[0], approx[1], approx[2])

	// Templated-query profiling of the whole table.
	prof, err := db.Profile("events")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== Profile ===")
	fmt.Print(prof.Format())
}
