// Textanalytics demonstrates the §5.2 statistical text analysis stack:
// train a linear-chain CRF with dictionary/regex/edge/word/position
// features, decode with Viterbi (top-1 and top-3), estimate label
// confidence with Gibbs-sampling MCMC, and resolve noisy entity mentions
// with trigram approximate string matching — all Table 3 methods.
package main

import (
	"fmt"
	"log"
	"strings"

	"madlib"
	"madlib/internal/datagen"
)

func main() {
	db := madlib.Open(madlib.Config{Segments: 4})

	// A synthetic POS-tagged corpus with a DET→(ADJ)→NOUN→VERB grammar.
	var corpus []madlib.CRFSentence
	for _, sent := range datagen.NewCorpus(5, 400, 8) {
		s := make(madlib.CRFSentence, len(sent))
		for i, tok := range sent {
			s[i] = madlib.CRFToken{Word: tok.Word, Tag: tok.Tag}
		}
		corpus = append(corpus, s)
	}
	model, err := db.CRFTrain(corpus, madlib.CRFTrainOptions{MaxPasses: 20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained CRF: %d tags, %d features\n\n", len(model.Tags), model.FeatureCount())

	// Most-likely inference (Viterbi).
	sentence := []string{"the", "fast", "analyst", "builds", "a", "sparse", "model"}
	tags := model.Viterbi(sentence)
	fmt.Println("=== Viterbi (top-1) ===")
	for i, w := range sentence {
		fmt.Printf("%-10s %s\n", w, tags[i])
	}

	fmt.Println("\n=== Viterbi top-3 labelings ===")
	for _, p := range model.ViterbiTopK(sentence, 3) {
		fmt.Printf("score %8.3f: %s\n", p.Score, strings.Join(p.Tags, " "))
	}

	// Confidence via MCMC: Gibbs marginals vs the exact forward-backward.
	fmt.Println("\n=== Per-token confidence (Gibbs MCMC vs exact) ===")
	exact := model.Marginals(sentence)
	gibbs := model.Gibbs(sentence, madlib.CRFMCMCOptions{Sweeps: 2000, BurnIn: 200, Seed: 1})
	for i, w := range sentence {
		best := 0
		for b := range exact[i] {
			if exact[i][b] > exact[i][best] {
				best = b
			}
		}
		fmt.Printf("%-10s %-5s exact %.3f  gibbs %.3f\n",
			w, model.Tags[best], exact[i][best], gibbs.Marginals[i][best])
	}

	// Entity resolution with the trigram index (the "Tim Tebow" example).
	fmt.Println("\n=== Approximate string matching (trigram index) ===")
	ix := madlib.NewTrigramIndex()
	entities := []string{"Tim Tebow", "Joe Hellerstein", "Grace Hopper"}
	for i, e := range entities {
		ix.Add(i, e)
	}
	for _, mention := range []string{"Tim Tebo", "J. Hellerstein", "grace hoppr", "Bill Gates"} {
		matches := ix.Search(mention, 0.35)
		if len(matches) == 0 {
			fmt.Printf("%-18s → (no match)\n", mention)
			continue
		}
		fmt.Printf("%-18s → %-18s (similarity %.2f)\n", mention, matches[0].Text, matches[0].Similarity)
	}
}
