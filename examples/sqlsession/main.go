// Sqlsession replays the paper's §4.1 walkthrough end-to-end through the
// SQL front-end — the same statements a MADlib user would type at a psql
// prompt, executed against the parallel segment engine:
//
//	CREATE TABLE data (y double precision, x double precision[]);
//	INSERT INTO data VALUES ...;
//	SELECT (madlib.linregr(y, x)).* FROM data;
//
// and then continues the session the way §4.2/§4.3 do: logistic
// regression via a driver function, k-means over a staged filter, and
// plain SQL aggregation — all declarative, nothing hard-coded.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"

	"madlib"
)

// run echoes the statement psql-style (eliding bulk INSERT bodies) and
// prints each result.
func run(db *madlib.DB, stmt string) {
	echo := stmt
	if i := strings.Index(echo, "VALUES"); i >= 0 && len(echo) > i+80 {
		echo = echo[:i+80] + " ..."
	}
	for _, line := range strings.Split(strings.TrimSpace(echo), "\n") {
		fmt.Println("madlib=# " + strings.TrimSpace(line))
	}
	results, err := db.Exec(stmt)
	for _, r := range results {
		fmt.Print(r.Format())
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
}

func main() {
	db := madlib.Open(madlib.Config{Segments: 4})
	rng := rand.New(rand.NewSource(7))

	// §4.1.1: the linear-regression session. y = 1.73 + 2.24·x + noise,
	// the ballpark of the paper's example output (coef {1.7307, 2.2428}).
	run(db, `CREATE TABLE data (y double precision, x double precision[])`)
	var values []string
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 10
		y := 1.73 + 2.24*x + rng.NormFloat64()*1.4
		values = append(values, fmt.Sprintf("(%.6f, {1, %.6f})", y, x))
	}
	run(db, "INSERT INTO data VALUES "+strings.Join(values, ", "))
	run(db, `SELECT (madlib.linregr(y, x)).* FROM data`)

	// §4.2: logistic regression through the IRLS driver loop. Labels are
	// drawn from a known logit, so the fitted coefficients recover it.
	run(db, `CREATE TABLE clicks (clicked double precision, feat double precision[])`)
	var clicks []string
	for i := 0; i < 200; i++ {
		x := rng.Float64()*4 - 2
		p := 1.0 / (1 + math.Exp(-(0.5 + 1.5*x)))
		label := 0.0
		if rng.Float64() < p {
			label = 1
		}
		clicks = append(clicks, fmt.Sprintf("(%g, {1, %.6f})", label, x))
	}
	run(db, "INSERT INTO clicks VALUES "+strings.Join(clicks, ", "))
	run(db, `SELECT (madlib.logregr(clicked, feat, 'irls')).* FROM clicks`)

	// §4.3: k-means over a vector column, restricted by WHERE (the filter
	// stages a temp table, like the paper's driver functions).
	run(db, `CREATE TABLE points (coords double precision[], weight double precision)`)
	var pts []string
	for i := 0; i < 60; i++ {
		cx, cy := 0.0, 0.0
		if i%2 == 0 {
			cx, cy = 8, 8
		}
		pts = append(pts, fmt.Sprintf("({%.4f, %.4f}, %.3f)",
			cx+rng.NormFloat64()*0.5, cy+rng.NormFloat64()*0.5, rng.Float64()))
	}
	run(db, "INSERT INTO points VALUES "+strings.Join(pts, ", "))
	run(db, `SELECT madlib.kmeans(coords, 2, 42).* FROM points WHERE weight > 0.1 ORDER BY centroid_id`)

	// Descriptive statistics compose with ordinary SQL aggregation.
	run(db, `SELECT count(*), avg(weight), madlib.quantile(weight, 0.5) AS median FROM points`)
}
