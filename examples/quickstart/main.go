// Quickstart reproduces the paper's §4.1.1 psql session: load (x, y)
// points into a table and run SELECT (linregr(y, x)).* FROM data,
// printing the same composite record — coefficients, R², standard errors,
// t statistics, p-values, and the condition number of XᵀX.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"madlib"
)

func main() {
	db := madlib.Open(madlib.Config{Segments: 4})

	data, err := db.CreateTable("data", madlib.Schema{
		{Name: "y", Kind: madlib.Float},
		{Name: "x", Kind: madlib.Vector},
	})
	if err != nil {
		log.Fatal(err)
	}

	// y = 1.73 + 2.24·x + noise — the ballpark of the paper's example
	// output (coef {1.7307, 2.2428}).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 10
		y := 1.73 + 2.24*x + rng.NormFloat64()*1.4
		if err := data.Insert(y, []float64{1, x}); err != nil {
			log.Fatal(err)
		}
	}

	res, err := db.LinRegr("data", "y", "x")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("psql# SELECT (linregr(y, x)).* FROM data;")
	fmt.Println("-[ RECORD 1 ]+--------------------------------------------")
	fmt.Println(res)
}
