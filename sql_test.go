package madlib_test

import (
	"math"
	"strings"
	"testing"

	"madlib"
)

// TestFacadeSQLEndToEnd drives the acceptance scenario through the public
// facade: DDL + DML + grouped aggregation + madlib.* method calls, all
// from SQL text.
func TestFacadeSQLEndToEnd(t *testing.T) {
	db := madlib.Open(madlib.Config{Segments: 4})
	if _, err := db.Exec(`
		CREATE TABLE t (g text, v double precision);
		INSERT INTO t VALUES ('a', 1), ('a', 3), ('b', 10), ('b', 30);
	`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT g, avg(v) FROM t GROUP BY g ORDER BY g`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1] != 2.0 || res.Rows[1][1] != 20.0 {
		t.Fatalf("grouped avg = %v", res.Rows)
	}

	// madlib.linregr over exact data recovers the coefficients.
	if _, err := db.Exec(`CREATE TABLE data (y double precision, x double precision[])`); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table("data")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		x := float64(i)
		if err := tbl.Insert(1.73+2.24*x, []float64{1, x}); err != nil {
			t.Fatal(err)
		}
	}
	res, err = db.Query(`SELECT (madlib.linregr(y, x)).* FROM data`)
	if err != nil {
		t.Fatal(err)
	}
	coef := res.Rows[0][0].([]float64)
	if math.Abs(coef[0]-1.73) > 1e-9 || math.Abs(coef[1]-2.24) > 1e-9 {
		t.Fatalf("coef = %v", coef)
	}
	// The SQL result matches the direct facade call.
	direct, err := db.LinRegr("data", "y", "x")
	if err != nil {
		t.Fatal(err)
	}
	for i := range coef {
		if math.Abs(coef[i]-direct.Coef[i]) > 1e-12 {
			t.Fatalf("SQL coef %v != facade coef %v", coef, direct.Coef)
		}
	}

	// Formatted output is psql-shaped.
	out := res.Format()
	if !strings.Contains(out, "coef") || !strings.HasSuffix(out, "(1 row)\n") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestFacadeSQLErrors(t *testing.T) {
	db := madlib.Open(madlib.Config{Segments: 2})
	if _, err := db.Exec(`SELEC 1`); err == nil {
		t.Fatal("parse error expected")
	}
	if _, err := db.Query(`SELECT * FROM nope`); err == nil {
		t.Fatal("unknown table expected")
	}
	// Exec returns completed results alongside the first error.
	results, err := db.Exec(`CREATE TABLE ok (v float); SELECT * FROM nope`)
	if err == nil || len(results) != 1 || results[0].Tag != "CREATE TABLE" {
		t.Fatalf("partial exec: results=%v err=%v", results, err)
	}
}
