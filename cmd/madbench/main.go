// Command madbench regenerates the paper's evaluation tables and figures
// (DESIGN.md §3): the Figure 4 timing table, the Figure 5 scaling series,
// the Table 1 method inventory, the Table 2 SGD-model suite, the Table 3
// text-analytics matrix, and the §4.4 overhead and speedup
// micro-experiments.
//
// Usage:
//
//	madbench -exp all
//	madbench -exp figure4 -rows 50000 -trials 5
//	madbench -exp figure4 -csv out.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"runtime/trace"
	"strconv"

	"madlib/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|figure4|figure5|table1|table2|table3|overhead|speedup")
	rows := flag.Int("rows", 0, "rows per dataset (0 = experiment default; paper used 10M)")
	trials := flag.Int("trials", 0, "timing trials per cell (0 = default)")
	csvPath := flag.String("csv", "", "also write figure4/figure5 rows as CSV to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	tracePath := flag.String("trace", "", "write a runtime execution trace to this path (go tool trace; shows the morsel pool's worker scheduling)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "madbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "madbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "madbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "madbench: %v\n", err)
			os.Exit(1)
		}
		defer trace.Stop()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "madbench: %v\n", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "madbench: %v\n", err)
			}
		}()
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "madbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		fmt.Print(experiments.Table1())
		return nil
	})

	run("figure4", func() error {
		cfg := experiments.Figure4Config{Rows: *rows, Trials: *trials}
		res, err := experiments.Figure4(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure4(res))
		if *csvPath != "" {
			return writeCSV(*csvPath, res)
		}
		return nil
	})

	run("figure5", func() error {
		cfg := experiments.Figure4Config{Rows: *rows, Trials: *trials}
		res, err := experiments.Figure5(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure5(res))
		if *csvPath != "" {
			return writeCSV(*csvPath, res)
		}
		return nil
	})

	run("overhead", func() error {
		res, err := experiments.Overhead(*rows)
		if err != nil {
			return err
		}
		fmt.Printf("Query overhead (§4.4a): empty query %v, bulk query (%d rows) %v — fixed overhead is %.2f%% of bulk\n",
			res.EmptyQuery, res.Rows, res.BulkQuery, res.OverheadFraction*100)
		return nil
	})

	run("speedup", func() error {
		res, err := experiments.Speedup(*rows, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatSpeedup(res))
		return nil
	})

	run("table2", func() error {
		res, err := experiments.Table2(*rows)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable2(res))
		return nil
	})

	run("table3", func() error {
		res, err := experiments.Table3()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable3(res))
		return nil
	})
}

func writeCSV(path string, rows []experiments.Figure4Row) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"segments", "vars", "rows", "version", "sim_ns", "wall_ns"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			strconv.Itoa(r.Segments), strconv.Itoa(r.Vars), strconv.Itoa(r.Rows),
			r.Version.String(),
			strconv.FormatInt(r.SimTime.Nanoseconds(), 10),
			strconv.FormatInt(r.WallTime.Nanoseconds(), 10),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
