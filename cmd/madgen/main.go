// Command madgen writes synthetic datasets as CSV, for feeding the madlib
// CLI or external tools. The generators are the same ones the tests and
// benchmark harness use (internal/datagen).
//
// Usage:
//
//	madgen -kind regression -rows 10000 -vars 5 -o data.csv
//	madgen -kind logistic   -rows 10000 -vars 4 -o clicks.csv
//	madgen -kind clusters   -rows 5000 -k 4 -dim 3 -o points.csv
//	madgen -kind baskets    -rows 2000 -items 12 -o baskets.csv
//	madgen -kind stream     -rows 100000 -universe 1000 -o stream.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"madlib/internal/datagen"
)

func main() {
	kind := flag.String("kind", "regression", "dataset: regression|logistic|clusters|baskets|stream")
	rows := flag.Int("rows", 10000, "number of rows / baskets")
	vars := flag.Int("vars", 5, "independent variables incl. intercept (regression/logistic)")
	k := flag.Int("k", 4, "cluster count (clusters)")
	dim := flag.Int("dim", 3, "point dimension (clusters)")
	items := flag.Int("items", 12, "item universe (baskets)")
	universe := flag.Int("universe", 1000, "value universe (stream)")
	std := flag.Float64("std", 0.5, "noise / within-cluster std")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	w := csv.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = csv.NewWriter(f)
	}
	defer w.Flush()

	switch *kind {
	case "regression":
		gen := datagen.NewRegression(*seed, *rows, *vars, *std)
		writeXY(w, gen.X, gen.Y)
	case "logistic":
		gen := datagen.NewLogistic(*seed, *rows, *vars)
		writeXY(w, gen.X, gen.Y)
	case "clusters":
		gen := datagen.NewClusters(*seed, *rows, *k, *dim, *std)
		header := make([]string, *dim)
		for d := range header {
			header[d] = fmt.Sprintf("x%d", d)
		}
		check(w.Write(append(header, "label")))
		for i, p := range gen.Points {
			rec := make([]string, 0, *dim+1)
			for _, v := range p {
				rec = append(rec, formatF(v))
			}
			rec = append(rec, strconv.Itoa(gen.Label[i]))
			check(w.Write(rec))
		}
	case "baskets":
		check(w.Write([]string{"basket", "item"}))
		for b, basket := range datagen.Baskets(*seed, *rows, *items) {
			for _, item := range basket {
				check(w.Write([]string{strconv.Itoa(b), item}))
			}
		}
	case "stream":
		check(w.Write([]string{"v"}))
		for _, v := range datagen.StreamValues(*seed, *rows, *universe) {
			check(w.Write([]string{strconv.FormatInt(v, 10)}))
		}
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
}

func writeXY(w *csv.Writer, xs [][]float64, ys []float64) {
	if len(xs) == 0 {
		return
	}
	header := []string{"y"}
	for j := range xs[0] {
		header = append(header, fmt.Sprintf("x%d", j))
	}
	check(w.Write(header))
	for i := range xs {
		rec := []string{formatF(ys[i])}
		for _, v := range xs[i] {
			rec = append(rec, formatF(v))
		}
		check(w.Write(rec))
	}
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func check(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "madgen: %v\n", err)
	os.Exit(1)
}
