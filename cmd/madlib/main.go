// Command madlib is the command-line surface of the library. Its primary
// entry point is the SQL shell — the direct analogue of the paper's §4.1
// psql session:
//
//	madlib sql                          # interactive REPL (\? for help)
//	madlib sql -e "SELECT 1 + 2"        # run statements and exit
//	madlib sql -f session.sql           # run a script and exit
//	madlib sql -in data.csv -e "SELECT (madlib.linregr(y, x)).* FROM data"
//
// The shell supports CREATE TABLE / INSERT / DROP TABLE / SELECT with
// WHERE, GROUP BY, ORDER BY, LIMIT, two-phase aggregates and the whole
// madlib.* method namespace (see internal/sql for the grammar).
//
// The remaining subcommands run a single method over a CSV file:
//
//	madlib linregr    -in data.csv -label y -features x0,x1,x2
//	madlib logregr    -in clicks.csv -label y -features x0,x1 -solver irls
//	madlib kmeans     -in points.csv -features x0,x1,x2 -k 4
//	madlib naivebayes -in data.csv -label class -features a0,a1
//	madlib c45        -in data.csv -label class -features f0,f1
//	madlib svm        -in data.csv -label y -features x0,x1
//	madlib profile    -in any.csv
//	madlib quantile   -in stream.csv -col v -phi 0.5
//	madlib distinct   -in stream.csv -col v
//	madlib assoc      -in baskets.csv -basket basket -item item
//
// The CSV must have a header row. Feature columns must be numeric.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"madlib"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	if cmd == "sql" {
		os.Exit(runSQL(os.Args[2:], os.Stdin, os.Stdout, os.Stderr))
	}
	if cmd == "serve" {
		os.Exit(runServe(os.Args[2:], os.Stdout, os.Stderr))
	}
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	in := fs.String("in", "", "input CSV file (required)")
	label := fs.String("label", "", "label/target column")
	features := fs.String("features", "", "comma-separated feature columns")
	col := fs.String("col", "", "value column (quantile/distinct)")
	basket := fs.String("basket", "basket", "basket id column (assoc)")
	item := fs.String("item", "item", "item column (assoc)")
	k := fs.Int("k", 3, "cluster count (kmeans)")
	phi := fs.Float64("phi", 0.5, "quantile fraction")
	solver := fs.String("solver", "irls", "logregr solver: irls|cg|igd")
	minSupport := fs.Float64("min-support", 0.1, "assoc minimum support")
	minConfidence := fs.Float64("min-confidence", 0.5, "assoc minimum confidence")
	segments := fs.Int("segments", 4, "engine segments")
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	header, records, err := readCSV(*in)
	if err != nil {
		fatal(err)
	}
	db := madlib.Open(madlib.Config{Segments: *segments})

	switch cmd {
	case "linregr":
		mustCols(*label, *features)
		if err := loadLabeled(db, header, records, *label, *features, false); err != nil {
			fatal(err)
		}
		res, err := db.LinRegr("data", "y", "x")
		if err != nil {
			fatal(err)
		}
		fmt.Println(res)
	case "logregr":
		mustCols(*label, *features)
		if err := loadLabeled(db, header, records, *label, *features, false); err != nil {
			fatal(err)
		}
		opts := madlib.LogRegrOptions{}
		switch *solver {
		case "irls":
			opts.Solver = madlib.IRLS
		case "cg":
			opts.Solver = madlib.CG
		case "igd":
			opts.Solver = madlib.IGD
		default:
			fatal(fmt.Errorf("unknown solver %q", *solver))
		}
		res, err := db.LogRegr("data", "y", "x", opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("coef          %v\nstd_err       %v\nz_stats       %v\np_values      %v\nodds_ratios   %v\nlog_likelihood %.4f\niterations    %d\n",
			res.Coef, res.StdErr, res.ZStats, res.PValues, res.OddsRatios, res.LogLikelihood, res.Iterations)
	case "kmeans":
		if *features == "" {
			fatal(fmt.Errorf("-features is required"))
		}
		if err := loadVectors(db, header, records, *features); err != nil {
			fatal(err)
		}
		res, err := db.KMeans("data", "coords", madlib.KMeansOptions{K: *k})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("converged after %d iterations, objective %.4f\n", res.Iterations, res.Objective)
		for i, c := range res.Centroids {
			fmt.Printf("centroid %d (n=%d): %v\n", i, res.Sizes[i], rounded(c))
		}
	case "naivebayes":
		mustCols(*label, *features)
		if err := loadClassed(db, header, records, *label, *features); err != nil {
			fatal(err)
		}
		m, err := db.NaiveBayes("data", "class", "attrs", madlib.BayesOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("classes %v priors %v\n", m.Classes, rounded(m.Priors))
	case "c45":
		mustCols(*label, *features)
		if err := loadClassed(db, header, records, *label, *features); err != nil {
			fatal(err)
		}
		m, err := db.C45("data", "class", "attrs", madlib.TreeOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("tree: %d nodes, depth %d, classes %v\n", m.Size(), m.Depth(), m.Classes)
	case "svm":
		mustCols(*label, *features)
		if err := loadLabeled(db, header, records, *label, *features, true); err != nil {
			fatal(err)
		}
		m, err := db.SVM("data", "y", "x", madlib.SVMOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("weights %v (final mean loss %.4f)\n", rounded(m.Weights), m.LossHistory[len(m.LossHistory)-1])
	case "profile":
		if err := loadGeneric(db, header, records); err != nil {
			fatal(err)
		}
		res, err := db.Profile("data")
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
	case "quantile":
		if *col == "" {
			fatal(fmt.Errorf("-col is required"))
		}
		if err := loadGeneric(db, header, records); err != nil {
			fatal(err)
		}
		// loadGeneric folds header names to lowercase (SQL identifier
		// semantics), so fold the lookup too.
		q, err := db.Quantile("data", strings.ToLower(*col), *phi)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("quantile(%.3g) = %v\n", *phi, q)
	case "distinct":
		if *col == "" {
			fatal(fmt.Errorf("-col is required"))
		}
		if err := loadGeneric(db, header, records); err != nil {
			fatal(err)
		}
		n, err := db.DistinctCount("data", strings.ToLower(*col))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("distinct(%s) ≈ %d\n", *col, n)
	case "assoc":
		if err := loadBaskets(db, header, records, *basket, *item); err != nil {
			fatal(err)
		}
		res, err := db.AssocRules("data", "basket", "item", madlib.AssocOptions{
			MinSupport: *minSupport, MinConfidence: *minConfidence,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%d baskets, %d frequent itemsets, %d rules\n", res.Baskets, len(res.Itemsets), len(res.Rules))
		for i, r := range res.Rules {
			if i >= 20 {
				fmt.Printf("... %d more\n", len(res.Rules)-20)
				break
			}
			fmt.Println(r.String())
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  madlib sql [-e "stmts" | -f script.sql] [-in file.csv [-table name]] [-segments n]
      SQL shell over the parallel engine (interactive REPL when no -e/-f);
      supports CREATE TABLE, INSERT, SELECT with aggregates/GROUP BY, and
      the madlib.* function namespace, e.g.
        SELECT (madlib.linregr(y, x)).* FROM data;
  madlib serve [-listen :5432] [-segments n] [-max-sessions n] [-statement-timeout-ms n] [-in file.csv [-table name]]
      serve the engine over the PostgreSQL wire protocol (connect with
      psql or any Postgres driver; trust auth, text format)
  madlib <linregr|logregr|kmeans|naivebayes|c45|svm|profile|quantile|distinct|assoc> -in file.csv [flags]
      run one method directly over a CSV file`)
	os.Exit(2)
}

func mustCols(label, features string) {
	if label == "" || features == "" {
		fatal(fmt.Errorf("-label and -features are required"))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "madlib: %v\n", err)
	os.Exit(1)
}

func readCSV(path string) ([]string, [][]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	all, err := r.ReadAll()
	if err != nil {
		return nil, nil, err
	}
	if len(all) < 1 {
		return nil, nil, fmt.Errorf("%s: empty file", path)
	}
	return all[0], all[1:], nil
}

func colIndexes(header []string, names string) ([]int, error) {
	var out []int
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := -1
		for i, h := range header {
			if h == name {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("column %q not in header %v", name, header)
		}
		out = append(out, found)
	}
	return out, nil
}

// loadLabeled builds table data(y Float, x Vector). With signed=true, 0/1
// labels are remapped to ±1 (SVM convention).
func loadLabeled(db *madlib.DB, header []string, records [][]string, label, features string, signed bool) error {
	li, err := colIndexes(header, label)
	if err != nil {
		return err
	}
	fi, err := colIndexes(header, features)
	if err != nil {
		return err
	}
	t, err := db.CreateTable("data", madlib.Schema{
		{Name: "y", Kind: madlib.Float}, {Name: "x", Kind: madlib.Vector},
	})
	if err != nil {
		return err
	}
	for ln, rec := range records {
		y, err := strconv.ParseFloat(rec[li[0]], 64)
		if err != nil {
			return fmt.Errorf("row %d: label: %w", ln+2, err)
		}
		if signed && y == 0 {
			y = -1
		}
		x := make([]float64, len(fi))
		for j, ci := range fi {
			if x[j], err = strconv.ParseFloat(rec[ci], 64); err != nil {
				return fmt.Errorf("row %d: feature %s: %w", ln+2, header[ci], err)
			}
		}
		if err := t.Insert(y, x); err != nil {
			return err
		}
	}
	return nil
}

// loadVectors builds table data(coords Vector, centroid_id Int).
func loadVectors(db *madlib.DB, header []string, records [][]string, features string) error {
	fi, err := colIndexes(header, features)
	if err != nil {
		return err
	}
	t, err := db.CreateTable("data", madlib.Schema{
		{Name: "coords", Kind: madlib.Vector}, {Name: "centroid_id", Kind: madlib.Int},
	})
	if err != nil {
		return err
	}
	for ln, rec := range records {
		x := make([]float64, len(fi))
		for j, ci := range fi {
			if x[j], err = strconv.ParseFloat(rec[ci], 64); err != nil {
				return fmt.Errorf("row %d: %s: %w", ln+2, header[ci], err)
			}
		}
		if err := t.Insert(x, int64(-1)); err != nil {
			return err
		}
	}
	return nil
}

// loadClassed builds table data(class String, attrs Vector).
func loadClassed(db *madlib.DB, header []string, records [][]string, label, features string) error {
	li, err := colIndexes(header, label)
	if err != nil {
		return err
	}
	fi, err := colIndexes(header, features)
	if err != nil {
		return err
	}
	t, err := db.CreateTable("data", madlib.Schema{
		{Name: "class", Kind: madlib.String}, {Name: "attrs", Kind: madlib.Vector},
	})
	if err != nil {
		return err
	}
	for ln, rec := range records {
		x := make([]float64, len(fi))
		for j, ci := range fi {
			if x[j], err = strconv.ParseFloat(rec[ci], 64); err != nil {
				return fmt.Errorf("row %d: %s: %w", ln+2, header[ci], err)
			}
		}
		if err := t.Insert(rec[li[0]], x); err != nil {
			return err
		}
	}
	return nil
}

// loadGeneric builds table data with per-column inferred kinds: Float if
// every value parses as a number, else String.
func loadGeneric(db *madlib.DB, header []string, records [][]string) error {
	return loadGenericNamed(db, "data", header, records)
}

// loadGenericNamed is loadGeneric into an arbitrarily named table (the
// sql subcommand's -table flag).
func loadGenericNamed(db *madlib.DB, name string, header []string, records [][]string) error {
	numeric := make([]bool, len(header))
	for j := range header {
		numeric[j] = len(records) > 0
		for _, rec := range records {
			if _, err := strconv.ParseFloat(rec[j], 64); err != nil {
				numeric[j] = false
				break
			}
		}
	}
	schema := make(madlib.Schema, len(header))
	for j, col := range header {
		kind := madlib.String
		if numeric[j] {
			kind = madlib.Float
		}
		// SQL folds unquoted identifiers to lowercase, so fold header
		// names too or mixed-case CSV columns become unreachable.
		schema[j] = madlib.Column{Name: strings.ToLower(col), Kind: kind}
	}
	t, err := db.CreateTable(name, schema)
	if err != nil {
		return err
	}
	for _, rec := range records {
		vals := make([]any, len(header))
		for j := range header {
			if numeric[j] {
				v, _ := strconv.ParseFloat(rec[j], 64)
				vals[j] = v
			} else {
				vals[j] = rec[j]
			}
		}
		if err := t.Insert(vals...); err != nil {
			return err
		}
	}
	return nil
}

// loadBaskets builds table data(basket Int, item String).
func loadBaskets(db *madlib.DB, header []string, records [][]string, basket, item string) error {
	bi, err := colIndexes(header, basket)
	if err != nil {
		return err
	}
	ii, err := colIndexes(header, item)
	if err != nil {
		return err
	}
	t, err := db.CreateTable("data", madlib.Schema{
		{Name: "basket", Kind: madlib.Int}, {Name: "item", Kind: madlib.String},
	})
	if err != nil {
		return err
	}
	for ln, rec := range records {
		id, err := strconv.ParseInt(rec[bi[0]], 10, 64)
		if err != nil {
			return fmt.Errorf("row %d: basket id: %w", ln+2, err)
		}
		if err := t.Insert(id, rec[ii[0]]); err != nil {
			return err
		}
	}
	return nil
}

func rounded(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(int(v*10000+0.5)) / 10000
	}
	return out
}
