package main

import (
	"os"
	"path/filepath"
	"testing"

	"madlib"
)

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadCSV(t *testing.T) {
	path := writeCSV(t, "a,b\n1,2\n3,4\n")
	header, records, err := readCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(header) != 2 || header[0] != "a" || len(records) != 2 {
		t.Fatalf("header=%v records=%v", header, records)
	}
	if _, _, err := readCSV(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Fatal("missing file should fail")
	}
	empty := writeCSV(t, "")
	if _, _, err := readCSV(empty); err == nil {
		t.Fatal("empty file should fail")
	}
}

func TestColIndexes(t *testing.T) {
	header := []string{"y", "x0", "x1"}
	idx, err := colIndexes(header, "x1, y")
	if err != nil {
		t.Fatal(err)
	}
	if idx[0] != 2 || idx[1] != 0 {
		t.Fatalf("idx = %v", idx)
	}
	if _, err := colIndexes(header, "nope"); err == nil {
		t.Fatal("unknown column should fail")
	}
}

func TestLoadLabeled(t *testing.T) {
	path := writeCSV(t, "y,x0,x1\n1,2,3\n0,4,5\n")
	header, records, err := readCSV(path)
	if err != nil {
		t.Fatal(err)
	}
	db := madlib.Open(madlib.Config{Segments: 2})
	if err := loadLabeled(db, header, records, "y", "x0,x1", true); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table("data")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Count() != 2 {
		t.Fatalf("rows = %d", tbl.Count())
	}
	// signed=true remaps label 0 to -1.
	rows := db.Engine().Rows(tbl)
	sawNeg := false
	for _, r := range rows {
		if r[0].(float64) == -1 {
			sawNeg = true
		}
	}
	if !sawNeg {
		t.Fatal("signed remap did not produce -1 label")
	}
}

func TestLoadLabeledBadValues(t *testing.T) {
	path := writeCSV(t, "y,x0\nok,2\n")
	header, records, _ := readCSV(path)
	db := madlib.Open(madlib.Config{Segments: 1})
	if err := loadLabeled(db, header, records, "y", "x0", false); err == nil {
		t.Fatal("non-numeric label should fail")
	}
	path = writeCSV(t, "y,x0\n1,bad\n")
	header, records, _ = readCSV(path)
	db2 := madlib.Open(madlib.Config{Segments: 1})
	if err := loadLabeled(db2, header, records, "y", "x0", false); err == nil {
		t.Fatal("non-numeric feature should fail")
	}
}

func TestLoadGenericInference(t *testing.T) {
	path := writeCSV(t, "num,txt\n1.5,hello\n2.5,world\n")
	header, records, _ := readCSV(path)
	db := madlib.Open(madlib.Config{Segments: 2})
	if err := loadGeneric(db, header, records); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("data")
	schema := tbl.Schema()
	if schema[0].Kind != madlib.Float {
		t.Fatalf("numeric column inferred as %v", schema[0].Kind)
	}
	if schema[1].Kind != madlib.String {
		t.Fatalf("text column inferred as %v", schema[1].Kind)
	}
}

func TestLoadVectorsAndBaskets(t *testing.T) {
	path := writeCSV(t, "x0,x1\n1,2\n3,4\n")
	header, records, _ := readCSV(path)
	db := madlib.Open(madlib.Config{Segments: 2})
	if err := loadVectors(db, header, records, "x0,x1"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("data")
	if tbl.Count() != 2 {
		t.Fatalf("vector rows = %d", tbl.Count())
	}

	path = writeCSV(t, "basket,item\n1,milk\n1,bread\n2,milk\n")
	header, records, _ = readCSV(path)
	db2 := madlib.Open(madlib.Config{Segments: 2})
	if err := loadBaskets(db2, header, records, "basket", "item"); err != nil {
		t.Fatal(err)
	}
	tbl2, _ := db2.Table("data")
	if tbl2.Count() != 3 {
		t.Fatalf("basket rows = %d", tbl2.Count())
	}
	// Bad basket id.
	path = writeCSV(t, "basket,item\nxx,milk\n")
	header, records, _ = readCSV(path)
	db3 := madlib.Open(madlib.Config{Segments: 1})
	if err := loadBaskets(db3, header, records, "basket", "item"); err == nil {
		t.Fatal("non-integer basket id should fail")
	}
}

func TestLoadClassed(t *testing.T) {
	path := writeCSV(t, "class,f0\nyes,1\nno,0\n")
	header, records, _ := readCSV(path)
	db := madlib.Open(madlib.Config{Segments: 2})
	if err := loadClassed(db, header, records, "class", "f0"); err != nil {
		t.Fatal(err)
	}
	tbl, _ := db.Table("data")
	if tbl.Count() != 2 {
		t.Fatalf("classed rows = %d", tbl.Count())
	}
}

func TestRounded(t *testing.T) {
	got := rounded([]float64{1.23456, 2.0}) // rounds to 4 decimals
	if got[0] != 1.2346 || got[1] != 2 {
		t.Fatalf("rounded = %v", got)
	}
}
