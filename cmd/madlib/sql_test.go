package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runSQLTest drives the sql subcommand the way main() does, capturing
// stdout/stderr and the exit code.
func runSQLTest(t *testing.T, stdin string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errOut strings.Builder
	code = runSQL(args, strings.NewReader(stdin), &out, &errOut)
	return out.String(), errOut.String(), code
}

func TestSQLExecMode(t *testing.T) {
	stdout, stderr, code := runSQLTest(t, "",
		"-e", `CREATE TABLE t (g text, v float);
		       INSERT INTO t VALUES ('a', 1), ('a', 3), ('b', 10);
		       SELECT g, avg(v), count(*) FROM t GROUP BY g;`)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, stderr)
	}
	want := `CREATE TABLE
INSERT 0 3
 g | avg | count
---+-----+-------
 a |   2 |     2
 b |  10 |     1
(2 rows)
`
	if stdout != want {
		t.Fatalf("stdout:\n%s\nwant:\n%s", stdout, want)
	}
}

func TestSQLScriptMode(t *testing.T) {
	script := filepath.Join(t.TempDir(), "session.sql")
	err := os.WriteFile(script, []byte(`
-- the paper's SS4.1 shape, scripted
CREATE TABLE data (y double precision, x double precision[]);
INSERT INTO data VALUES
  (2, {1, 0}), (5, {1, 1}), (8, {1, 2}), (11, {1, 3});
SELECT (madlib.linregr(y, x)).* FROM data;
`), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runSQLTest(t, "", "-f", script)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, stderr)
	}
	// y = 2 + 3x: the coefficient vector must start {2,2.99...} or {2,3}.
	if !strings.Contains(stdout, "{2,3") && !strings.Contains(stdout, "{2,2.99") &&
		!strings.Contains(stdout, "{1.99") {
		t.Fatalf("stdout missing fitted coefficients:\n%s", stdout)
	}
	if !strings.Contains(stdout, "coef") || !strings.Contains(stdout, "condition_no") {
		t.Fatalf("stdout missing linregr columns:\n%s", stdout)
	}
}

func TestSQLCSVPreload(t *testing.T) {
	csv := writeCSV(t, "g,v\na,1\na,3\nb,10\n")
	stdout, stderr, code := runSQLTest(t, "", "-in", csv, "-table", "obs",
		"-e", "SELECT g, sum(v) FROM obs GROUP BY g ORDER BY g;")
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, " a |   4\n") || !strings.Contains(stdout, " b |  10\n") {
		t.Fatalf("stdout:\n%s", stdout)
	}
}

func TestSQLMadlibFunctionsExecMode(t *testing.T) {
	// Four distinct madlib.* methods end-to-end through -e, per the
	// acceptance scenario: linregr, kmeans, quantile, fmcount.
	stdout, stderr, code := runSQLTest(t, "",
		"-e", `CREATE TABLE data (y double precision, x double precision[]);
		       INSERT INTO data VALUES (2, {1, 0}), (5, {1, 1}), (8, {1, 2}), (11, {1, 3});
		       SELECT (madlib.linregr(y, x)).* FROM data;
		       CREATE TABLE pts (coords double precision[]);
		       INSERT INTO pts VALUES ({0,0}), ({0.2,0}), ({0,0.2}), ({9,9}), ({9.2,9}), ({9,9.2});
		       SELECT madlib.kmeans(coords, 2, 1).* FROM pts ORDER BY centroid_id;
		       CREATE TABLE m (v double precision);
		       INSERT INTO m VALUES (1), (2), (3), (4), (5);
		       SELECT madlib.quantile(v, 0.5) AS median, madlib.fmcount(v) AS distinct_est FROM m;`)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, stderr)
	}
	// linregr on exact data: y = 2 + 3x.
	if !strings.Contains(stdout, "{2,3") && !strings.Contains(stdout, "{2,2.99") {
		t.Fatalf("linregr coefficients missing:\n%s", stdout)
	}
	// kmeans found both clusters of three points.
	if !strings.Contains(stdout, "centroid_id") || strings.Count(stdout, "|    3\n") != 2 {
		t.Fatalf("kmeans output wrong:\n%s", stdout)
	}
	// quantile is exact; fmcount is a small-cardinality sketch estimate.
	if !strings.Contains(stdout, " median | distinct_est") {
		t.Fatalf("aggregate header missing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "      3 |") {
		t.Fatalf("median missing:\n%s", stdout)
	}
}

func TestSQLParseErrorPath(t *testing.T) {
	stdout, stderr, code := runSQLTest(t, "", "-e", "SELEC 1")
	if code != 1 {
		t.Fatalf("exit=%d", code)
	}
	if !strings.Contains(stderr, "syntax error") {
		t.Fatalf("stderr = %q", stderr)
	}
	if stdout != "" {
		t.Fatalf("stdout should be empty, got %q", stdout)
	}
}

func TestSQLUnknownTableErrorPath(t *testing.T) {
	// The first statement's result still prints before the error.
	stdout, stderr, code := runSQLTest(t, "",
		"-e", "CREATE TABLE ok (v float); SELECT * FROM missing;")
	if code != 1 {
		t.Fatalf("exit=%d", code)
	}
	if !strings.Contains(stdout, "CREATE TABLE") {
		t.Fatalf("stdout = %q", stdout)
	}
	if !strings.Contains(stderr, "no such table") {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestSQLTypeMismatchErrorPath(t *testing.T) {
	_, stderr, code := runSQLTest(t, "",
		"-e", "CREATE TABLE t (v float); INSERT INTO t VALUES ('nope');")
	if code != 1 {
		t.Fatalf("exit=%d", code)
	}
	if !strings.Contains(stderr, "does not match column type") {
		t.Fatalf("stderr = %q", stderr)
	}
}

func TestSQLReplSession(t *testing.T) {
	stdin := `CREATE TABLE t (v float);
INSERT INTO t VALUES (1),
  (2),
  (3);
SELECT sum(v)
  FROM t;
\d
\d t
\timing
SELECT 1;
\bogus
\q
`
	stdout, stderr, code := runSQLTest(t, stdin)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, stderr)
	}
	// Multi-line statements execute once terminated with ';'.
	if !strings.Contains(stdout, "INSERT 0 3") {
		t.Fatalf("multi-line insert missing:\n%s", stdout)
	}
	if !strings.Contains(stdout, " sum\n-----\n   6\n") {
		t.Fatalf("sum output missing:\n%s", stdout)
	}
	// \d lists tables with row counts; \d t shows the schema.
	if !strings.Contains(stdout, " t    |    3\n") {
		t.Fatalf("\\d output missing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "double precision") {
		t.Fatalf("\\d t output missing:\n%s", stdout)
	}
	// \timing prints per-statement wall time.
	if !strings.Contains(stdout, "Timing is on.") || !strings.Contains(stdout, "Time: ") {
		t.Fatalf("timing output missing:\n%s", stdout)
	}
	// Unknown meta-commands report but do not exit.
	if !strings.Contains(stderr, "invalid command \\bogus") {
		t.Fatalf("stderr = %q", stderr)
	}
	// Continuation prompt appears for incomplete statements.
	if !strings.Contains(stdout, "madlib-# ") {
		t.Fatalf("continuation prompt missing:\n%s", stdout)
	}
}

func TestSQLReplErrorKeepsGoing(t *testing.T) {
	stdin := `SELECT * FROM missing;
SELECT 40 + 2;
\q
`
	stdout, stderr, code := runSQLTest(t, stdin)
	if code != 0 {
		t.Fatalf("exit=%d", code)
	}
	if !strings.Contains(stderr, "no such table") {
		t.Fatalf("stderr = %q", stderr)
	}
	if !strings.Contains(stdout, "42") {
		t.Fatalf("later statement did not run:\n%s", stdout)
	}
}

func TestSQLReplPrepareAndTimingSplit(t *testing.T) {
	stdin := `CREATE TABLE t (v float);
INSERT INTO t VALUES (1), (2), (3);
PREPARE big AS SELECT count(*) FROM t WHERE v > $1;
\prepare
EXECUTE big(1);
\timing
SELECT sum(v) FROM t;
SELECT sum(v) FROM t;
\q
`
	stdout, stderr, code := runSQLTest(t, stdin)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "PREPARE") {
		t.Fatalf("PREPARE tag missing:\n%s", stdout)
	}
	// \prepare lists name, parameter count and statement text.
	if !strings.Contains(stdout, " name | parameters | statement") ||
		!strings.Contains(stdout, " big  |          1 | SELECT count(*) FROM t WHERE v > $1") {
		t.Fatalf("\\prepare listing missing:\n%s", stdout)
	}
	// EXECUTE ran with the bound parameter: 2 rows have v > 1.
	if !strings.Contains(stdout, "     2\n") {
		t.Fatalf("EXECUTE result missing:\n%s", stdout)
	}
	// \timing shows the phase split; the repeated statement reports a
	// cached plan.
	if !strings.Contains(stdout, "parse ") || !strings.Contains(stdout, "plan ") ||
		!strings.Contains(stdout, "exec ") {
		t.Fatalf("timing split missing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "cached plan") {
		t.Fatalf("cached-plan marker missing:\n%s", stdout)
	}
}

func TestSQLDfListsRegistry(t *testing.T) {
	stdout, _, code := runSQLTest(t, "\\df\n\\q\n")
	if code != 0 {
		t.Fatalf("exit=%d", code)
	}
	for _, fn := range []string{"madlib.linregr", "madlib.kmeans", "madlib.quantile", "madlib.assoc_rules"} {
		if !strings.Contains(stdout, fn) {
			t.Fatalf("\\df missing %s:\n%s", fn, stdout)
		}
	}
}

func TestSQLFlagErrors(t *testing.T) {
	_, stderr, code := runSQLTest(t, "", "-e", "SELECT 1", "-f", "x.sql")
	if code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("exit=%d stderr=%q", code, stderr)
	}
	_, _, code = runSQLTest(t, "", "-in", "/does/not/exist.csv", "-e", "SELECT 1")
	if code != 1 {
		t.Fatalf("exit=%d", code)
	}
}

func TestSplitComplete(t *testing.T) {
	c, rest := splitComplete("SELECT 1;")
	if c != "SELECT 1;" || rest != "" {
		t.Fatalf("c=%q rest=%q", c, rest)
	}
	c, rest = splitComplete("SELECT 'a;b'")
	if c != "" || rest != "SELECT 'a;b'" {
		t.Fatalf("quoted semicolon split: c=%q rest=%q", c, rest)
	}
	c, _ = splitComplete("SELECT 1 -- no; comment\n")
	if c != "" {
		t.Fatalf("comment semicolon split: c=%q", c)
	}
	c, rest = splitComplete("SELECT 'it''s'; SELECT 2")
	if c != "SELECT 'it''s';" || rest != " SELECT 2" {
		t.Fatalf("escape handling: c=%q rest=%q", c, rest)
	}
}

// TestSQLJoinWindowGolden pins the ISSUE's acceptance shape through the
// CLI: a window function over a join, then CTAS + DISTINCT producing a
// queryable table.
func TestSQLJoinWindowGolden(t *testing.T) {
	stdout, stderr, code := runSQLTest(t, "",
		"-e", `CREATE TABLE depts (id bigint, name text);
		       INSERT INTO depts VALUES (1, 'eng'), (2, 'ops');
		       CREATE TABLE scores (dept_id bigint, score double precision);
		       INSERT INTO scores VALUES (1, 9.5), (1, 7.25), (2, 8), (2, 6.5);
		       SELECT d.name, row_number() OVER (PARTITION BY d.id ORDER BY s.score) rn
		         FROM depts d JOIN scores s ON d.id = s.dept_id ORDER BY d.name, rn;
		       CREATE TABLE t2 AS SELECT DISTINCT d.name FROM depts d JOIN scores s ON d.id = s.dept_id;
		       SELECT * FROM t2 ORDER BY name;`)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, stderr)
	}
	want := `CREATE TABLE
INSERT 0 2
CREATE TABLE
INSERT 0 4
 name | rn
------+----
 eng  |  1
 eng  |  2
 ops  |  1
 ops  |  2
(4 rows)
SELECT 2
 name
------
 eng
 ops
(2 rows)
`
	if stdout != want {
		t.Fatalf("stdout:\n%s\nwant:\n%s", stdout, want)
	}
}

func TestSQLDmListsModels(t *testing.T) {
	// Empty catalog: headers only, no error.
	stdout, stderr, code := runSQLTest(t, "\\dm\n\\q\n")
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, stderr)
	}
	if !strings.Contains(stdout, "name") || !strings.Contains(stdout, "version") {
		t.Fatalf("\\dm header missing:\n%s", stdout)
	}

	// Train with a leading model name, then \dm shows the catalog row
	// and madlib.predict is listed as a scalar function.
	in := "CREATE TABLE pts (y double precision, x double precision[]);\n" +
		"INSERT INTO pts VALUES (3, ARRAY[1]), (6, ARRAY[2]), (9, ARRAY[3]);\n" +
		"SELECT (madlib.linregr('m', y, x)).* FROM pts;\n" +
		"\\dm\n\\df\n\\q\n"
	stdout, stderr, code = runSQLTest(t, in)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%q", code, stderr)
	}
	for _, want := range []string{"m", "linregr", "madlib.predict", "scalar"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("\\dm/\\df output missing %q:\n%s", want, stdout)
		}
	}
}
