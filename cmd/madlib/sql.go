package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"madlib"
	"madlib/internal/core"
	"madlib/internal/model"
)

// runSQL implements `madlib sql`: an interactive REPL over the SQL
// front-end, plus non-interactive -e "stmts" and -f script.sql modes.
// It returns the process exit code so tests can drive it directly.
func runSQL(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sql", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exec := fs.String("e", "", "execute the given statements and exit")
	script := fs.String("f", "", "execute statements from a .sql file and exit")
	in := fs.String("in", "", "preload a CSV file (header row required) as a table")
	table := fs.String("table", "data", "table name for -in")
	segments := fs.Int("segments", 4, "engine segments")
	slowMS := fs.Int64("slow-query-ms", -1, "log statements slower than this many milliseconds to stderr (0 logs every statement; negative disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Distinguish `-e ""` from an absent -e: an explicit empty batch is a
	// no-op, not a request for the interactive shell.
	eSet, fSet := false, false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "e":
			eSet = true
		case "f":
			fSet = true
		}
	})
	db := madlib.Open(madlib.Config{Segments: *segments})
	if *slowMS >= 0 {
		logger := slog.New(slog.NewTextHandler(stderr, nil))
		db.SetQueryLog(logger, time.Duration(*slowMS)*time.Millisecond)
	}
	if *in != "" {
		header, records, err := readCSV(*in)
		if err != nil {
			fmt.Fprintf(stderr, "madlib sql: %v\n", err)
			return 1
		}
		if err := loadGenericNamed(db, *table, header, records); err != nil {
			fmt.Fprintf(stderr, "madlib sql: %v\n", err)
			return 1
		}
	}
	r := &repl{db: db, out: stdout, errOut: stderr}
	switch {
	case eSet && fSet:
		fmt.Fprintln(stderr, "madlib sql: -e and -f are mutually exclusive")
		return 2
	case eSet:
		if !r.execute(*exec) {
			return 1
		}
		return 0
	case fSet:
		text, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintf(stderr, "madlib sql: %v\n", err)
			return 1
		}
		if !r.execute(string(text)) {
			return 1
		}
		return 0
	}
	return r.interactive(stdin)
}

// repl holds the session state of one `madlib sql` run.
type repl struct {
	db     *madlib.DB
	out    io.Writer
	errOut io.Writer
	timing bool
}

// execute runs a batch of statements, printing each result; it reports
// whether every statement succeeded.
func (r *repl) execute(text string) bool {
	start := time.Now()
	results, err := r.db.Exec(text)
	for _, res := range results {
		fmt.Fprint(r.out, res.Format())
	}
	if err != nil {
		fmt.Fprintf(r.errOut, "ERROR: %v\n", err)
		return false
	}
	if r.timing {
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		tm := r.db.SQLSession().LastTiming()
		detail := fmt.Sprintf("parse %.3f, plan %.3f, exec %.3f", ms(tm.Parse), ms(tm.Plan), ms(tm.Exec))
		if tm.CacheHit {
			detail += ", cached plan"
		}
		fmt.Fprintf(r.out, "Time: %.3f ms (%s)\n", float64(time.Since(start).Microseconds())/1000, detail)
	}
	return true
}

// interactive reads statements from stdin, psql-style: multi-line input
// until a ';', backslash meta-commands, errors reported without exiting.
// It returns the process exit code (nonzero when stdin breaks mid-read).
func (r *repl) interactive(stdin io.Reader) int {
	fmt.Fprintln(r.out, "madlib SQL shell — \\? for help, \\q to quit")
	scanner := bufio.NewScanner(stdin)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var buf strings.Builder
	prompt := "madlib=# "
	for {
		fmt.Fprint(r.out, prompt)
		if !scanner.Scan() {
			fmt.Fprintln(r.out)
			// A scanner error (an over-long line, a broken pipe) is not a
			// clean EOF: the rest of the input was dropped.
			if err := scanner.Err(); err != nil {
				fmt.Fprintf(r.errOut, "madlib sql: reading input: %v\n", err)
				return 1
			}
			return 0
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !r.metaCommand(trimmed) {
				return 0
			}
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		complete, rest := splitComplete(buf.String())
		if complete != "" {
			r.execute(complete)
			buf.Reset()
			buf.WriteString(rest)
		}
		if strings.TrimSpace(buf.String()) == "" {
			buf.Reset()
			prompt = "madlib=# "
		} else {
			prompt = "madlib-# "
		}
	}
}

// metaCommand handles backslash commands; it returns false to quit.
func (r *repl) metaCommand(cmd string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\q", "\\quit":
		return false
	case "\\d":
		if len(fields) > 1 {
			r.describeTable(fields[1])
		} else {
			r.listTables(false)
		}
	case "\\d+":
		if len(fields) > 1 {
			r.describeTable(fields[1])
		} else {
			r.listTables(true)
		}
	case "\\df":
		r.listFunctions()
	case "\\dm":
		r.listModels()
	case "\\stats":
		r.showStats()
	case "\\prepare":
		r.listPrepared()
	case "\\timing":
		r.timing = !r.timing
		state := "off"
		if r.timing {
			state = "on"
		}
		fmt.Fprintf(r.out, "Timing is %s.\n", state)
	case "\\?":
		fmt.Fprint(r.out, `General
  \q              quit
  \d              list tables
  \d+             list all tables, including hidden engine temporaries
                  (row counts and data versions)
  \d NAME         describe a table
  \df             list madlib.* SQL functions
  \dm             list models persisted in madlib_models
                  (train with a leading name: madlib.linregr('m', y, x))
  \prepare        list prepared statements
  \stats          show engine and session metric counters
                  (also queryable: SELECT * FROM madlib_stats_counters)
  \timing         toggle per-statement timing (parse/plan/exec split)
  \?              this help

Statements end with ';' and may span lines. The dialect covers
CREATE TABLE [AS SELECT], DROP, INSERT, SELECT [DISTINCT] with
JOIN/LEFT JOIN ... ON, WHERE, GROUP BY, HAVING, ORDER BY, LIMIT,
window functions (row_number/rank/count/sum/avg OVER (PARTITION BY
... ORDER BY ...)), PREPARE/EXECUTE/DEALLOCATE, EXPLAIN [ANALYZE],
and madlib.* calls (\df lists them). System views: madlib_stats_counters,
madlib_stats_queries, madlib_stats_tables.
`)
	default:
		fmt.Fprintf(r.errOut, "invalid command %s — try \\?\n", fields[0])
	}
	return true
}

// listTables prints the catalog. Plain \d hides engine-managed
// temporaries (staging tables, cached join materializations) the way
// psql hides other sessions' temp schemas; \d+ (all=true) shows them
// alongside row counts and data versions.
func (r *repl) listTables(all bool) {
	names := r.db.Engine().TableNames()
	cols := []string{"name", "rows"}
	if all {
		cols = []string{"name", "rows", "version", "temp"}
	}
	res := &madlib.SQLResult{Cols: cols}
	for _, n := range names {
		t, err := r.db.Table(n)
		if err != nil {
			continue
		}
		if all {
			res.Rows = append(res.Rows, []any{n, t.Count(), t.Version(), t.Temp()})
			continue
		}
		if t.Temp() {
			continue
		}
		res.Rows = append(res.Rows, []any{n, t.Count()})
	}
	fmt.Fprint(r.out, res.Format())
}

// showStats prints the metrics registry through the same SQL path users
// can query directly.
func (r *repl) showStats() {
	res, err := r.db.Query("SELECT name, value FROM madlib_stats_counters")
	if err != nil {
		fmt.Fprintf(r.errOut, "ERROR: %v\n", err)
		return
	}
	fmt.Fprint(r.out, res.Format())
}

func (r *repl) describeTable(name string) {
	t, err := r.db.Table(strings.ToLower(name))
	if err != nil {
		fmt.Fprintf(r.errOut, "ERROR: %v\n", err)
		return
	}
	res := &madlib.SQLResult{Cols: []string{"column", "type"}}
	for _, c := range t.Schema() {
		res.Rows = append(res.Rows, []any{c.Name, c.Kind.String()})
	}
	fmt.Fprint(r.out, res.Format())
}

func (r *repl) listPrepared() {
	res := &madlib.SQLResult{Cols: []string{"name", "parameters", "statement"}}
	for _, p := range r.db.SQLSession().PreparedStatements() {
		res.Rows = append(res.Rows, []any{p.Name, int64(p.NumParams), p.Text})
	}
	fmt.Fprint(r.out, res.Format())
}

func (r *repl) listFunctions() {
	res := &madlib.SQLResult{Cols: []string{"function", "kind", "description"}}
	for _, f := range core.SQLFuncs() {
		kind := "aggregate"
		switch f.Kind {
		case core.SQLTableValued:
			kind = "table-valued"
		case core.SQLScalar:
			kind = "scalar"
		}
		res.Rows = append(res.Rows, []any{"madlib." + f.Signature, kind, f.Help})
	}
	fmt.Fprint(r.out, res.Format())
}

// listModels prints the madlib_models catalog the way \d prints tables.
func (r *repl) listModels() {
	models, err := model.List(r.db.Engine())
	if err != nil {
		fmt.Fprintf(r.errOut, "ERROR: %v\n", err)
		return
	}
	res := &madlib.SQLResult{Cols: []string{"name", "kind", "features", "rows", "version", "trained_at"}}
	for _, m := range models {
		res.Rows = append(res.Rows, []any{m.Name, m.Kind, len(m.Coef), m.NumRows, m.Version, m.TrainedAt})
	}
	fmt.Fprint(r.out, res.Format())
}

// splitComplete splits buffered input at the last statement-terminating
// ';' that is outside string literals and comments. complete is "" until
// at least one full statement is buffered.
func splitComplete(buf string) (complete, rest string) {
	last := -1
	inString := false
	for i := 0; i < len(buf); i++ {
		c := buf[i]
		switch {
		case inString:
			if c == '\'' {
				// '' escapes a quote inside the literal.
				if i+1 < len(buf) && buf[i+1] == '\'' {
					i++
				} else {
					inString = false
				}
			}
		case c == '\'':
			inString = true
		case c == '-' && i+1 < len(buf) && buf[i+1] == '-':
			for i < len(buf) && buf[i] != '\n' {
				i++
			}
		case c == ';':
			last = i
		}
	}
	if last < 0 {
		return "", buf
	}
	return buf[:last+1], buf[last+1:]
}
