package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"madlib"
	"madlib/internal/pgwire"
)

// runServe boots the PostgreSQL wire-protocol server over one shared
// engine: `madlib serve -listen :5432`, then connect with psql or any
// Postgres driver. SIGINT/SIGTERM drain gracefully: in-flight
// statements finish (or hit the shutdown deadline), new work is refused
// with SQLSTATE 57P01.
func runServe(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", ":5432", "TCP address to listen on")
	segments := fs.Int("segments", 4, "engine segments")
	maxSessions := fs.Int("max-sessions", 64, "max concurrent connections (SQLSTATE 53300 beyond)")
	timeoutMS := fs.Int("statement-timeout-ms", 0, "abort statements running longer (0 = no limit, SQLSTATE 57014)")
	drainMS := fs.Int("drain-timeout-ms", 10000, "shutdown grace period for in-flight statements")
	in := fs.String("in", "", "preload a CSV file (header row required) as a table")
	table := fs.String("table", "data", "table name for -in")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	db := madlib.Open(madlib.Config{Segments: *segments})
	if *in != "" {
		header, records, err := readCSV(*in)
		if err != nil {
			fmt.Fprintf(stderr, "madlib: %v\n", err)
			return 1
		}
		if err := loadGenericNamed(db, *table, header, records); err != nil {
			fmt.Fprintf(stderr, "madlib: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "loaded %s as table %q (%d rows)\n", *in, *table, len(records))
	}

	srv := pgwire.NewServer(db.Engine(), pgwire.Config{
		Listen:           *listen,
		MaxSessions:      *maxSessions,
		StatementTimeout: time.Duration(*timeoutMS) * time.Millisecond,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		},
	})
	if err := srv.Start(); err != nil {
		fmt.Fprintf(stderr, "madlib: %v\n", err)
		return 1
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Fprintf(stdout, "received %s, draining...\n", s)
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainMS)*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "madlib: shutdown: %v\n", err)
		return 1
	}
	return 0
}
