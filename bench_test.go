// Benchmarks regenerating the paper's evaluation, one family per table or
// figure (see DESIGN.md §3 for the experiment index):
//
//	BenchmarkFigure4_*   — linregr wall time per (segments, vars, version)
//	BenchmarkFigure5_*   — linregr v0.3 per segment count
//	BenchmarkOverhead    — §4.4(a): fixed per-query cost
//	BenchmarkSpeedup_*   — §4.4(b): segment-count sweep
//	BenchmarkTable2_*    — one pass of each SGD-framework model
//	BenchmarkTable3_*    — text-analytics methods
//	BenchmarkAblation*   — design-choice ablations called out in DESIGN.md
//
// cmd/madbench produces the paper-shaped tables (including the simulated
// cluster-critical-path metric); these benches give `go test -bench`
// observability over the same code paths.
package madlib_test

import (
	"fmt"
	"testing"

	"madlib/internal/core"
	"madlib/internal/crf"
	"madlib/internal/datagen"
	"madlib/internal/engine"
	"madlib/internal/igd"
	"madlib/internal/kmeans"
	"madlib/internal/linregr"
	"madlib/internal/sgd"
	sqlfe "madlib/internal/sql"
	"madlib/internal/svm"
	"madlib/internal/text"
)

// benchRows keeps bench datasets small enough for -bench=. sweeps; the
// madbench harness uses larger, flag-controlled sizes.
const benchRows = 10000

func figure4Bench(b *testing.B, segments, vars int, version linregr.Version) {
	b.Helper()
	gen := datagen.NewRegression(int64(vars)*7+int64(segments), benchRows, vars, 0.5)
	db := engine.Open(segments)
	tbl, err := gen.LoadRegression(db, "data")
	if err != nil {
		b.Fatal(err)
	}
	agg, err := linregr.BuildAggregate(tbl, "y", "x", linregr.WithVersion(version))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.RunInstrumented(tbl, agg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for _, segs := range []int{6, 24} {
		for _, vars := range []int{10, 80} {
			for _, v := range []linregr.Version{linregr.V03, linregr.V021Beta, linregr.V01Alpha} {
				b.Run(fmt.Sprintf("segs=%d/vars=%d/%v", segs, vars, v), func(b *testing.B) {
					figure4Bench(b, segs, vars, v)
				})
			}
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for _, segs := range []int{6, 12, 18, 24} {
		b.Run(fmt.Sprintf("segs=%d/vars=40", segs), func(b *testing.B) {
			figure4Bench(b, segs, 40, linregr.V03)
		})
	}
}

// BenchmarkOverhead measures the fixed per-query cost of the engine — the
// §4.4 claim that "the overhead for a single query is very low".
func BenchmarkOverhead(b *testing.B) {
	db := engine.Open(24)
	tbl, err := db.CreateTable("t", engine.Schema{
		{Name: "y", Kind: engine.Float}, {Name: "x", Kind: engine.Vector},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.Insert(1.0, make([]float64, 10)); err != nil {
		b.Fatal(err)
	}
	agg, err := linregr.BuildAggregate(tbl, "y", "x")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Run(tbl, agg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpeedup(b *testing.B) {
	// ns/op here is the *sequential simulation* time (constant across
	// segment counts by construction); the cluster latency is the custom
	// critpath-ns metric — the slowest segment plus the merge/final tail —
	// which shrinks as segments grow.
	gen := datagen.NewRegression(3, benchRows*2, 80, 0.5)
	for _, segs := range []int{6, 12, 18, 24} {
		b.Run(fmt.Sprintf("segs=%d", segs), func(b *testing.B) {
			db := engine.Open(segs)
			tbl, err := gen.LoadRegression(db, "data")
			if err != nil {
				b.Fatal(err)
			}
			agg, err := linregr.BuildAggregate(tbl, "y", "x")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var bestCritPath float64
			for i := 0; i < b.N; i++ {
				_, qs, err := db.RunSimulated(tbl, agg)
				if err != nil {
					b.Fatal(err)
				}
				if cp := float64(qs.MaxSegmentTime.Nanoseconds()); bestCritPath == 0 || cp < bestCritPath {
					bestCritPath = cp
				}
			}
			b.ReportMetric(bestCritPath, "critpath-ns")
		})
	}
}

// BenchmarkTable2 runs one IGD pass of each Table-2 model.
func BenchmarkTable2(b *testing.B) {
	db := engine.Open(4)
	reg := datagen.NewRegression(21, benchRows, 5, 0.2)
	regT, err := reg.LoadRegression(db, "reg")
	if err != nil {
		b.Fatal(err)
	}
	logGen := datagen.NewMargin(22, benchRows, 5, 0.4)
	marT, err := logGen.Load(db, "mar")
	if err != nil {
		b.Fatal(err)
	}
	rat := datagen.NewRatings(23, 50, 40, 3, benchRows, 0.05)
	ratT, _ := db.CreateTable("rat", engine.Schema{
		{Name: "i", Kind: engine.Int}, {Name: "j", Kind: engine.Int}, {Name: "v", Kind: engine.Float},
	})
	for _, e := range rat.Entries {
		if err := ratT.Insert(int64(e.I), int64(e.J), e.Value); err != nil {
			b.Fatal(err)
		}
	}
	onePass := sgd.Options{MaxPasses: 1, Tolerance: 1e-12}
	run := func(b *testing.B, tbl *engine.Table, extract sgd.Extractor, m sgd.Model) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sgd.Train(db, tbl, extract, m, onePass); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("LeastSquares", func(b *testing.B) { run(b, regT, sgd.ExtractLabeled(0, 1), sgd.LeastSquares{K: 5}) })
	b.Run("Lasso", func(b *testing.B) { run(b, regT, sgd.ExtractLabeled(0, 1), sgd.Lasso{K: 5, Mu: 0.5}) })
	b.Run("Logistic", func(b *testing.B) { run(b, marT, sgd.ExtractLabeled(0, 1), sgd.Logistic{K: 5}) })
	b.Run("SVM", func(b *testing.B) { run(b, marT, sgd.ExtractLabeled(0, 1), sgd.HingeSVM{K: 5}) })
	b.Run("Recommendation", func(b *testing.B) {
		run(b, ratT, sgd.ExtractRating(0, 1, 2), sgd.LowRank{Rows: 50, Cols: 40, Rank: 3, Mu: 1e-4})
	})
	b.Run("CRF", func(b *testing.B) {
		corpus := crfCorpus(25, 100, 7)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := crf.Train(corpus, crf.TrainOptions{MaxPasses: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func crfCorpus(seed int64, n, meanLen int) []crf.Sentence {
	raw := datagen.NewCorpus(seed, n, meanLen)
	out := make([]crf.Sentence, len(raw))
	for i, sent := range raw {
		s := make(crf.Sentence, len(sent))
		for j, tok := range sent {
			s[j] = crf.Token{Word: tok.Word, Tag: tok.Tag}
		}
		out[i] = s
	}
	return out
}

// BenchmarkTable3 exercises the text-analysis methods of Table 3.
func BenchmarkTable3(b *testing.B) {
	model, err := crf.Train(crfCorpus(31, 200, 8), crf.TrainOptions{MaxPasses: 5})
	if err != nil {
		b.Fatal(err)
	}
	words := []string{"the", "fast", "analyst", "builds", "a", "sparse", "model"}
	b.Run("Viterbi", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			model.Viterbi(words)
		}
	})
	b.Run("ViterbiTop3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			model.ViterbiTopK(words, 3)
		}
	})
	b.Run("GibbsSweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			model.Gibbs(words, crf.MCMCOptions{Sweeps: 1, BurnIn: 0, Seed: int64(i)})
		}
	})
	b.Run("MetropolisHastingsSweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			model.MetropolisHastings(words, crf.MCMCOptions{Sweeps: 1, BurnIn: 0, Seed: int64(i)})
		}
	})
	b.Run("TrigramSearch", func(b *testing.B) {
		ix := text.NewIndex()
		names, mentions := datagen.Names(32, 50)
		for i, n := range names {
			ix.Add(i, n)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.Search(mentions[i%len(mentions)], 0.4)
		}
	})
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationInnerLoop isolates the three historical inner loops on
// the same data: triangular (v0.3), full square (v0.1alpha), and
// temp-materializing column-major (v0.2.1beta).
func BenchmarkAblationInnerLoop(b *testing.B) {
	for _, vars := range []int{10, 80, 160} {
		for _, v := range []linregr.Version{linregr.V03, linregr.V01Alpha, linregr.V021Beta} {
			b.Run(fmt.Sprintf("vars=%d/%v", vars, v), func(b *testing.B) {
				figure4Bench(b, 4, vars, v)
			})
		}
	}
}

// BenchmarkAblationBridging isolates the abstraction layer's per-row cost:
// the same sum-of-dot aggregate through boxed AnyType access (args.At)
// versus the fused zero-copy accessors (args.Float / args.Vector).
func BenchmarkAblationBridging(b *testing.B) {
	gen := datagen.NewRegression(8, 50000, 8, 0.5)
	db := engine.Open(4)
	tbl, err := gen.LoadRegression(db, "d")
	if err != nil {
		b.Fatal(err)
	}
	bind, err := core.BindColumns(tbl.Schema(), "y", "x")
	if err != nil {
		b.Fatal(err)
	}
	makeAgg := func(boxed bool) engine.Aggregate {
		return engine.FuncAggregate{
			InitFn: func() any { return 0.0 },
			TransitionFn: func(s any, row engine.Row) any {
				args := bind.Bridge(row)
				var y float64
				var x []float64
				if boxed {
					y = args.At(0).Float()
					x = args.At(1).Vector()
				} else {
					y = args.Float(0)
					x = args.Vector(1)
				}
				acc := s.(float64)
				for _, v := range x {
					acc += y * v
				}
				return acc
			},
			MergeFn: func(a, bb any) any { return a.(float64) + bb.(float64) },
			FinalFn: func(s any) (any, error) { return s, nil },
		}
	}
	for _, boxed := range []bool{true, false} {
		name := "BoxedAnyType"
		if !boxed {
			name = "FusedZeroCopy"
		}
		agg := makeAgg(boxed)
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := db.Run(tbl, agg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationKMeansPattern compares §4.3's two macro-programming
// patterns on identical data and seeding.
func BenchmarkAblationKMeansPattern(b *testing.B) {
	gen := datagen.NewClusters(7, 20000, 8, 4, 0.5)
	for _, pattern := range []kmeans.Pattern{kmeans.UDAOnly, kmeans.AssignmentTable} {
		name := "UDAOnly"
		if pattern == kmeans.AssignmentTable {
			name = "AssignmentTable"
		}
		b.Run(name, func(b *testing.B) {
			db := engine.Open(4)
			tbl, err := gen.Load(db, "points")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := kmeans.Run(db, tbl, "coords", kmeans.Options{
					K: 8, Seed: 1, MaxIterations: 5, Pattern: pattern,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationUpdatePattern compares in-place UPDATE with the
// CREATE-TABLE-AS-then-DROP pattern §4.3 notes is often faster on
// PostgreSQL's versioned storage (our storage updates in place, so UPDATE
// should win here — the bench documents the reversal).
func BenchmarkAblationUpdatePattern(b *testing.B) {
	load := func(db *engine.DB, name string) *engine.Table {
		tbl, err := db.CreateTable(name, engine.Schema{
			{Name: "x", Kind: engine.Float}, {Name: "cid", Kind: engine.Int},
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 50000; i++ {
			if err := tbl.Insert(float64(i), int64(0)); err != nil {
				b.Fatal(err)
			}
		}
		return tbl
	}
	b.Run("UpdateInPlace", func(b *testing.B) {
		db := engine.Open(4)
		tbl := load(db, "pts")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := db.UpdateInt(tbl, "cid", func(r engine.Row) int64 { return int64(r.Float(0)) % 8 })
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CreateTableAs", func(b *testing.B) {
		db := engine.Open(4)
		tbl := load(db, "pts")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := db.SelectInto(fmt.Sprintf("pts_new_%d", i), tbl, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := db.UpdateInt(out, "cid", func(r engine.Row) int64 { return int64(r.Float(0)) % 8 }); err != nil {
				b.Fatal(err)
			}
			if err := db.DropTable(out.Name()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSGDAveraging compares per-replica model averaging with
// a single surviving chain, directly on the igd harness.
func BenchmarkAblationSGDAveraging(b *testing.B) {
	gen := datagen.NewRegression(6, 20000, 8, 0.1)
	for _, avg := range []bool{true, false} {
		name := "Averaging"
		if !avg {
			name = "SingleChain"
		}
		b.Run(name, func(b *testing.B) {
			db := engine.Open(4)
			tbl, err := gen.LoadRegression(db, "d")
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := igd.Train(db, tbl, igd.VectorFeatures(0, 1), igd.LeastSquares{K: 8},
					igd.Options{StepSize: 0.1, Epochs: 3, Tolerance: 1e-12, NoAveraging: !avg})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Training-harness benchmarks (vectorized vs boxed row lane) ---
//
// Each vectorized benchmark has a RowLane companion running the SAME
// schedule, losses and floating-point operations through boxed
// row-at-a-time access (one engine.Row cursor, one closure call and one
// interface boxing per example — the pre-harness access path). The
// models come out bit-identical; the ns/op ratio is the gather-kernel
// win in isolation. scripts/bench_check.sh gates the same-run ratio.

const trainBenchRows = 20000
const trainBenchVars = 4

func trainBenchTable(b *testing.B) (*engine.DB, *engine.Table) {
	b.Helper()
	db := engine.Open(4)
	gen := datagen.NewMargin(41, trainBenchRows, trainBenchVars, 0.4)
	tbl, err := gen.Load(db, "train")
	if err != nil {
		b.Fatal(err)
	}
	return db, tbl
}

// trainBenchOpts runs two seeded-shuffle epochs — enough to exercise the
// permutation path without drowning the per-row cost in epoch count.
var trainBenchOpts = igd.Options{StepSize: 0.1, Epochs: 2, Tolerance: -1, Seed: 7}

func BenchmarkTrainLogregrIGD(b *testing.B) {
	db, tbl := trainBenchTable(b)
	loss := igd.Logistic{K: trainBenchVars}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := igd.Train(db, tbl, igd.VectorFeatures(0, 1), loss, trainBenchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainLogregrIGDRowLane(b *testing.B) {
	db, tbl := trainBenchTable(b)
	loss := igd.Logistic{K: trainBenchVars}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := igd.TrainRowLane(db, tbl, igd.VectorFeatures(0, 1), loss, trainBenchOpts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainSVM(b *testing.B) {
	db, tbl := trainBenchTable(b)
	opts := svm.Options{Passes: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svm.Train(db, tbl, "y", "x", opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainSVMRowLane(b *testing.B) {
	db, tbl := trainBenchTable(b)
	// The same hinge schedule svm.Train runs (its defaults), on the boxed
	// row lane.
	loss := igd.Hinge{K: trainBenchVars, Lambda: 1e-4}
	opts := igd.Options{StepSize: 0.1, Epochs: 2, Tolerance: -1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := igd.TrainRowLane(db, tbl, igd.VectorFeatures(0, 1), loss, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLSelectAgg measures the SQL front-end's parse+plan+execute
// overhead for a grouped filtered aggregate against the same query issued
// directly through the engine API. The delta is the declarative-surface
// tax the paper's §4.4(a) overhead study asks about.
func BenchmarkSQLSelectAgg(b *testing.B) {
	db := engine.Open(4)
	tbl, err := db.CreateTable("t", engine.Schema{
		{Name: "g", Kind: engine.Int}, {Name: "v", Kind: engine.Float},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchRows; i++ {
		if err := tbl.Insert(int64(i%16), float64(i%1000)/1000); err != nil {
			b.Fatal(err)
		}
	}
	const query = `SELECT g, avg(v), count(*) FROM t WHERE v > 0.25 GROUP BY g`
	sess := sqlfe.NewSession(db)

	// reportCounterDeltas attaches metric-registry deltas (per op) to the
	// benchmark output — e.g. planhit/op 1.0 proves the loop really ran on
	// the cached plan, and joinhit/op the cached join materialization.
	// scripts/bench_check.sh prints these alongside the ns/op gate.
	counterBase := func(names ...string) []int64 {
		vals := make([]int64, len(names))
		for i, n := range names {
			vals[i] = db.Metrics().Counter(n).Value()
		}
		return vals
	}
	reportCounterDeltas := func(b *testing.B, base []int64, names []string, units []string) {
		b.StopTimer()
		for i, n := range names {
			delta := db.Metrics().Counter(n).Value() - base[i]
			b.ReportMetric(float64(delta)/float64(b.N), units[i])
		}
	}

	// Steady-state SQL: after the first execution the session's plan cache
	// serves the statement, so iterations measure compiled execution only.
	// The default lane is the vectorized column-batch pipeline.
	b.Run("SQL", func(b *testing.B) {
		if _, err := sess.Query(query); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		base := counterBase("sql_plan_cache_hits")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sess.Query(query)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 16 {
				b.Fatalf("groups = %d", len(res.Rows))
			}
		}
		reportCounterDeltas(b, base, []string{"sql_plan_cache_hits"}, []string{"planhit/op"})
	})
	// The same cached plan forced onto the per-row closure lane: the
	// batch-vs-row delta is the vectorization win in isolation.
	b.Run("SQLRowLane", func(b *testing.B) {
		rowSess := sqlfe.NewSession(db)
		rowSess.SetBatchExecution(false)
		if _, err := rowSess.Query(query); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := rowSess.Query(query)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 16 {
				b.Fatalf("groups = %d", len(res.Rows))
			}
		}
	})
	// Cold path: parse + plan + execute every time (fresh session text).
	b.Run("SQLColdPlan", func(b *testing.B) {
		cold := sqlfe.NewSession(db)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := cold.Run(mustParse(b, query))
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 16 {
				b.Fatalf("groups = %d", len(res.Rows))
			}
		}
	})
	// PREPARE/EXECUTE with a $1 parameter in the WHERE clause.
	b.Run("SQLPrepared", func(b *testing.B) {
		if _, err := sess.Exec(`PREPARE bench_agg AS SELECT g, avg(v), count(*) FROM t WHERE v > $1 GROUP BY g`); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sess.Query(`EXECUTE bench_agg(0.25)`)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 16 {
				b.Fatalf("groups = %d", len(res.Rows))
			}
		}
		b.StopTimer()
		if _, err := sess.Exec(`DEALLOCATE bench_agg`); err != nil {
			b.Fatal(err)
		}
	})
	// Morsel-parallel batch lane: a larger 8-segment table, so the worker
	// pool engages on multi-core runners (the table is far above
	// engine.ParallelRowThreshold; on GOMAXPROCS=1 the driver falls back
	// to the sequential in-line scan).
	b.Run("SQLParallel", func(b *testing.B) {
		pdb := engine.Open(8)
		ptbl, err := pdb.CreateTable("t", engine.Schema{
			{Name: "g", Kind: engine.Int}, {Name: "v", Kind: engine.Float},
		})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 8*benchRows; i++ {
			if err := ptbl.Insert(int64(i%16), float64(i%1000)/1000); err != nil {
				b.Fatal(err)
			}
		}
		psess := sqlfe.NewSession(pdb)
		if _, err := psess.Query(query); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := psess.Query(query)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 16 {
				b.Fatalf("groups = %d", len(res.Rows))
			}
		}
	})
	const joinQuery = `SELECT dims.name, sum(t.v), count(*) FROM t JOIN dims ON t.g = dims.g GROUP BY dims.name`
	dims, err := db.CreateTable("dims", engine.Schema{
		{Name: "g", Kind: engine.Int}, {Name: "name", Kind: engine.String},
	})
	if err != nil {
		b.Fatal(err)
	}
	for g := 0; g < 16; g++ {
		if err := dims.Insert(int64(g), fmt.Sprintf("g%02d", g)); err != nil {
			b.Fatal(err)
		}
	}
	// Joined aggregate, cold: every iteration re-plans and rebuilds the
	// join materialization (one-shot plans release it after executing),
	// measuring the full build+probe+aggregate pipeline.
	b.Run("SQLJoinAgg", func(b *testing.B) {
		joinSess := sqlfe.NewSession(db)
		st := mustParse(b, joinQuery)
		b.ReportAllocs()
		base := counterBase("sql_join_cache_misses")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := joinSess.Run(st)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 16 {
				b.Fatalf("groups = %d", len(res.Rows))
			}
		}
		reportCounterDeltas(b, base, []string{"sql_join_cache_misses"}, []string{"joinmiss/op"})
	})
	// Joined aggregate, steady state: the plan cache serves the statement
	// and the join materialization cache skips the rebuild (neither input
	// changes), so iterations measure the aggregate over the cached temp
	// table only.
	b.Run("SQLJoinAggCached", func(b *testing.B) {
		joinSess := sqlfe.NewSession(db)
		if _, err := joinSess.Query(joinQuery); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		base := counterBase("sql_plan_cache_hits", "sql_join_cache_hits")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := joinSess.Query(joinQuery)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 16 {
				b.Fatalf("groups = %d", len(res.Rows))
			}
		}
		reportCounterDeltas(b, base, []string{"sql_plan_cache_hits", "sql_join_cache_hits"},
			[]string{"planhit/op", "joinhit/op"})
	})
	// Columnar projection: a filtered multi-item scan whose output rows
	// are gathered column-wise on the batch lane. The row-lane companion
	// runs the identical cached plan through per-row closures — the
	// batch/row delta is the projection-materializer win in isolation.
	const projQuery = `SELECT g, g + 1, v FROM t WHERE v > 0.5`
	const projRows = 4990
	b.Run("SQLProjScan", func(b *testing.B) {
		if _, err := sess.Query(projQuery); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sess.Query(projQuery)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != projRows {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
	})
	b.Run("SQLProjScanRowLane", func(b *testing.B) {
		rowSess := sqlfe.NewSession(db)
		rowSess.SetBatchExecution(false)
		if _, err := rowSess.Query(projQuery); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := rowSess.Query(projQuery)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != projRows {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
	})
	// NULL-aware batch kernels: a LEFT JOIN aggregate where 6 of 16
	// groups are unmatched, so every expression runs under a validity
	// bitmap (count skips NULL names, the sum's addition propagates
	// NULL). Both lanes aggregate over the cached join materialization,
	// so the delta is the masked-fold vectorization alone.
	const leftJoinQuery = `SELECT count(ldims.name), sum(ldims.g + t.v), count(*) FROM t LEFT JOIN ldims ON t.g = ldims.g`
	ldims, err := db.CreateTable("ldims", engine.Schema{
		{Name: "g", Kind: engine.Int}, {Name: "name", Kind: engine.String},
	})
	if err != nil {
		b.Fatal(err)
	}
	for g := 0; g < 10; g++ {
		if err := ldims.Insert(int64(g), fmt.Sprintf("g%02d", g)); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("SQLLeftJoinAgg", func(b *testing.B) {
		ljSess := sqlfe.NewSession(db)
		if _, err := ljSess.Query(leftJoinQuery); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		base := counterBase("sql_join_cache_hits")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ljSess.Query(leftJoinQuery)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 1 {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
		reportCounterDeltas(b, base, []string{"sql_join_cache_hits"}, []string{"joinhit/op"})
	})
	b.Run("SQLLeftJoinAggRowLane", func(b *testing.B) {
		rowSess := sqlfe.NewSession(db)
		rowSess.SetBatchExecution(false)
		if _, err := rowSess.Query(leftJoinQuery); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := rowSess.Query(leftJoinQuery)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 1 {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
	})
	// Window function over a filtered scan: the batch lane vectorizes
	// the gather (filter + partition/order keys); the fold stays
	// row-at-a-time on both lanes.
	const windowQuery = `SELECT g, sum(v) OVER (PARTITION BY g ORDER BY v) FROM t WHERE v > 0.25`
	b.Run("SQLWindow", func(b *testing.B) {
		if _, err := sess.Query(windowQuery); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sess.Query(windowQuery)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != 7490 {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
	})
	// ORDER BY over the full table: parallel chunk sort + merge on
	// multi-core runners, sort.SliceStable on GOMAXPROCS=1 — output is
	// bit-identical either way.
	const orderByQuery = `SELECT g, v FROM t ORDER BY v, g`
	b.Run("SQLOrderBy", func(b *testing.B) {
		if _, err := sess.Query(orderByQuery); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := sess.Query(orderByQuery)
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Rows) != benchRows {
				b.Fatalf("rows = %d", len(res.Rows))
			}
		}
	})
	b.Run("ParseOnly", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sqlfe.Parse(query); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EngineDirect", func(b *testing.B) {
		b.ReportAllocs()
		type acc struct {
			n   int64
			sum float64
		}
		agg := engine.FuncAggregate{
			InitFn: func() any { return &acc{} },
			TransitionFn: func(s any, row engine.Row) any {
				a := s.(*acc)
				a.n++
				a.sum += row.Float(1)
				return a
			},
			MergeFn: func(x, y any) any {
				a, c := x.(*acc), y.(*acc)
				a.n += c.n
				a.sum += c.sum
				return a
			},
			FinalFn: func(s any) (any, error) { return s, nil },
		}
		for i := 0; i < b.N; i++ {
			groups, err := db.RunGroupByKey(tbl,
				func(row engine.Row) bool { return row.Float(1) > 0.25 },
				func(row engine.Row) engine.GroupKey { return engine.GroupKey{Int: row.Int(0)} },
				agg)
			if err != nil {
				b.Fatal(err)
			}
			if len(groups) != 16 {
				b.Fatalf("groups = %d", len(groups))
			}
		}
	})
}

func mustParse(b *testing.B, query string) sqlfe.Statement {
	b.Helper()
	st, err := sqlfe.ParseStatement(query)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// --- Model-serving benchmarks (vectorized predict vs row lane) ---
//
// Both benchmarks score the same persisted model over the same table
// through the same cached plan; the only difference is the execution
// lane. scripts/bench_check.sh gates the same-run ratio at >= 2x.

func predictBenchSession(b *testing.B) *sqlfe.Session {
	b.Helper()
	db := engine.Open(4)
	tbl, err := db.CreateTable("pts", engine.Schema{
		{Name: "y", Kind: engine.Float}, {Name: "x", Kind: engine.Vector},
		{Name: "x1", Kind: engine.Float}, {Name: "x2", Kind: engine.Float},
		{Name: "x3", Kind: engine.Float}, {Name: "x4", Kind: engine.Float},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchRows; i++ {
		f1 := float64(i%97) / 97
		f2 := float64(i%61) / 61
		f3 := float64(i%43) / 43
		f4 := float64(i%29) / 29
		y := f1 + 2*f2 - f3 + 0.5*f4
		if err := tbl.Insert(y, []float64{f1, f2, f3, f4}, f1, f2, f3, f4); err != nil {
			b.Fatal(err)
		}
	}
	sess := sqlfe.NewSession(db)
	if _, err := sess.Query(`SELECT (madlib.linregr('m', y, x)).* FROM pts`); err != nil {
		b.Fatal(err)
	}
	return sess
}

const predictBenchQuery = `SELECT count(*) FROM pts WHERE madlib.predict('m', x1, x2, x3, x4) > 1`

func benchSQLPredict(b *testing.B, batch bool) {
	sess := predictBenchSession(b)
	sess.SetBatchExecution(batch)
	// Warm the plan cache so iterations measure compiled scoring only.
	if _, err := sess.Query(predictBenchQuery); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sess.Query(predictBenchQuery)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

func BenchmarkSQLPredictBatch(b *testing.B)   { benchSQLPredict(b, true) }
func BenchmarkSQLPredictRowLane(b *testing.B) { benchSQLPredict(b, false) }
