package madlib_test

import (
	"math"
	"testing"

	"madlib"
	"madlib/internal/engine"
)

func TestFacadeBootstrap(t *testing.T) {
	db := madlib.Open(madlib.Config{Segments: 3})
	tbl, err := db.CreateTable("b", madlib.Schema{{Name: "x", Kind: madlib.Float}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tbl.Insert(float64(i % 10)); err != nil {
			t.Fatal(err)
		}
	}
	meanAgg := engine.FuncAggregate{
		InitFn: func() any { return [2]float64{} },
		TransitionFn: func(s any, r engine.Row) any {
			st := s.([2]float64)
			return [2]float64{st[0] + r.Float(0), st[1] + 1}
		},
		MergeFn: func(a, b any) any {
			sa, sb := a.([2]float64), b.([2]float64)
			return [2]float64{sa[0] + sb[0], sa[1] + sb[1]}
		},
		FinalFn: func(s any) (any, error) {
			st := s.([2]float64)
			return st[0] / st[1], nil
		},
	}
	res, err := db.Bootstrap("b", meanAgg, madlib.BootstrapOptions{Iterations: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// True mean of 0..9 uniform is 4.5.
	if math.Abs(res.Mean-4.5) > 0.2 {
		t.Fatalf("bootstrap mean = %v", res.Mean)
	}
	if _, err := db.Bootstrap("missing", meanAgg, madlib.BootstrapOptions{}); err == nil {
		t.Fatal("missing table should fail")
	}
}

func TestFacadeConjugateGradient(t *testing.T) {
	a := &madlib.Matrix{Rows: 2, Cols: 2, Data: []float64{4, 1, 1, 3}}
	x, err := madlib.SolveConjugateGradient(a, []float64{1, 2}, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Verify A·x = b.
	if math.Abs(4*x[0]+x[1]-1) > 1e-8 || math.Abs(x[0]+3*x[1]-2) > 1e-8 {
		t.Fatalf("CG solution %v", x)
	}
}

func TestFacadeSparseVectors(t *testing.T) {
	v := madlib.NewSparseVector([]float64{0, 0, 0, 7, 7})
	if v.RunCount() != 2 || v.Len() != 5 {
		t.Fatalf("svec: %v", v)
	}
	parsed, err := madlib.ParseSparseVector("{3,2}:{0,7}")
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != v.String() {
		t.Fatalf("%q != %q", parsed.String(), v.String())
	}
	if _, err := madlib.ParseSparseVector("garbage"); err == nil {
		t.Fatal("bad svec should fail")
	}
}

func TestFacadeGroupedRegression(t *testing.T) {
	db := madlib.Open(madlib.Config{Segments: 2})
	tbl, _ := db.CreateTable("g", madlib.Schema{
		{Name: "region", Kind: madlib.String},
		{Name: "y", Kind: madlib.Float},
		{Name: "x", Kind: madlib.Vector},
	})
	for i := 0; i < 60; i++ {
		v := float64(i)
		if err := tbl.Insert("west", 2*v, []float64{1, v}); err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert("east", -3*v, []float64{1, v}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.LinRegrGroupBy("g", "y", "x", func(r madlib.Row) string { return r.Str(0) })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got["west"].Coef[1]-2) > 1e-9 || math.Abs(got["east"].Coef[1]+3) > 1e-9 {
		t.Fatalf("grouped slopes: west %v east %v", got["west"].Coef[1], got["east"].Coef[1])
	}
	if _, err := db.LinRegrGroupBy("missing", "y", "x", nil); err == nil {
		t.Fatal("missing table should fail")
	}
}

func TestFacadeLogRegrPerGroup(t *testing.T) {
	db := madlib.Open(madlib.Config{Segments: 2})
	tbl, _ := db.CreateTable("lg", madlib.Schema{
		{Name: "g", Kind: madlib.String},
		{Name: "y", Kind: madlib.Float},
		{Name: "x", Kind: madlib.Vector},
	})
	// Group "pos": y mostly 1 iff x>0; group "neg": the reverse. A 10%
	// label flip keeps the data non-separable so the MLE is finite.
	for i := -200; i < 200; i++ {
		v := float64(i) / 20
		yPos, yNeg := 0.0, 1.0
		if v > 0 {
			yPos, yNeg = 1, 0
		}
		if i%10 == 0 { // flip
			yPos, yNeg = 1-yPos, 1-yNeg
		}
		if err := tbl.Insert("pos", yPos, []float64{1, v}); err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert("neg", yNeg, []float64{1, v}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.LogRegrPerGroup("lg", "y", "x", func(r madlib.Row) string { return r.Str(0) },
		madlib.LogRegrOptions{MaxIterations: 30, Tolerance: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if got["pos"].Coef[1] <= 0 || got["neg"].Coef[1] >= 0 {
		t.Fatalf("group slopes: pos %v, neg %v", got["pos"].Coef[1], got["neg"].Coef[1])
	}
	if _, err := db.LogRegrPerGroup("missing", "y", "x", nil, madlib.LogRegrOptions{}); err == nil {
		t.Fatal("missing table should fail")
	}
}

func TestFacadeDropTable(t *testing.T) {
	db := madlib.Open(madlib.Config{Segments: 2})
	if _, err := db.CreateTable("tmp", madlib.Schema{{Name: "x", Kind: madlib.Float}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("tmp"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("tmp"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("tmp"); err == nil {
		t.Fatal("dropped table still visible")
	}
	if _, err := db.LinRegrWithVersion("tmp", "y", "x", madlib.V03); err == nil {
		t.Fatal("version query on missing table should fail")
	}
	if _, err := db.SVM("tmp", "y", "x", madlib.SVMOptions{}); err == nil {
		t.Fatal("SVM on missing table should fail")
	}
	if _, err := db.SVDMF("tmp", "i", "j", "v", madlib.SVDMFOptions{Rank: 1}); err == nil {
		t.Fatal("SVDMF on missing table should fail")
	}
	if _, err := db.LDA("tmp", "d", "w", madlib.LDAOptions{Topics: 2}); err == nil {
		t.Fatal("LDA on missing table should fail")
	}
	if _, err := db.AssocRules("tmp", "b", "i", madlib.AssocOptions{}); err == nil {
		t.Fatal("assoc on missing table should fail")
	}
	if _, err := db.KMeans("tmp", "coords", madlib.KMeansOptions{K: 2}); err == nil {
		t.Fatal("kmeans on missing table should fail")
	}
	if _, err := db.NaiveBayes("tmp", "c", "a", madlib.BayesOptions{}); err == nil {
		t.Fatal("bayes on missing table should fail")
	}
	if _, err := db.C45("tmp", "c", "f", madlib.TreeOptions{}); err == nil {
		t.Fatal("c45 on missing table should fail")
	}
	if _, err := db.LogRegr("tmp", "y", "x", madlib.LogRegrOptions{}); err == nil {
		t.Fatal("logregr on missing table should fail")
	}
	if _, err := db.ApproxQuantiles("tmp", "x", 0.01, []float64{0.5}); err == nil {
		t.Fatal("quantiles on missing table should fail")
	}
}

func TestFacadeSVMModes(t *testing.T) {
	// The mode constants exist and select distinct behaviours.
	if madlib.SVMClassification == madlib.SVMRegression || madlib.SVMRegression == madlib.SVMNovelty {
		t.Fatal("SVM mode constants collide")
	}
	if madlib.UDAOnly == madlib.AssignmentTable {
		t.Fatal("kmeans pattern constants collide")
	}
	if madlib.PlusPlus == madlib.Random {
		t.Fatal("kmeans seeding constants collide")
	}
}
