package optim

import (
	"math"
	"math/rand"
	"testing"

	"madlib/internal/array"
	"madlib/internal/matrix"
)

func TestSolveCGMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(8)
		// Random SPD matrix: BᵀB + I.
		b := matrix.New(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a, _ := matrix.Mul(b.T(), b)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		want, err := matrix.SolveLU(a, rhs)
		if err != nil {
			t.Fatal(err)
		}
		got, iters, err := SolveCGMatrix(a, rhs, 1e-12, 0)
		if err != nil {
			t.Fatal(err)
		}
		if iters > 10*n {
			t.Fatalf("CG took %d iterations for n=%d", iters, n)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-6 {
				t.Fatalf("trial %d: CG %v vs LU %v", trial, got, want)
			}
		}
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	a := matrix.Identity(3)
	x, iters, err := SolveCGMatrix(a, []float64{0, 0, 0}, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if iters != 0 || array.Norm2(x) != 0 {
		t.Fatalf("zero rhs: x=%v iters=%d", x, iters)
	}
}

func TestSolveCGRejectsIndefinite(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 0}, {0, -1}})
	if _, _, err := SolveCGMatrix(a, []float64{1, 1}, 1e-10, 0); err == nil {
		t.Fatal("indefinite matrix should fail")
	}
}

func TestSolveCGShapeError(t *testing.T) {
	a := matrix.New(2, 3)
	if _, _, err := SolveCGMatrix(a, []float64{1, 1}, 0, 0); err == nil {
		t.Fatal("non-square should fail")
	}
}

// quadratic builds f(x) = ½xᵀAx - bᵀx with known minimum A⁻¹b.
func quadratic(a *matrix.Matrix, b []float64) Objective {
	return func(x []float64) (float64, []float64) {
		ax, _ := a.MulVec(x)
		val := 0.5*array.Dot(x, ax) - array.Dot(b, x)
		grad := array.Sub(ax, b)
		return val, grad
	}
}

func TestMinimizeCGQuadratic(t *testing.T) {
	a := matrix.FromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	want, _ := matrix.SolveLU(a, b)
	got, _, err := MinimizeCG(quadratic(a, b), []float64{5, -7}, MinimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("MinimizeCG %v, want %v", got, want)
		}
	}
}

func TestMinimizeCGRosenbrockValley(t *testing.T) {
	// The classic banana function; minimum at (1, 1).
	f := func(x []float64) (float64, []float64) {
		a, b := x[0], x[1]
		val := (1-a)*(1-a) + 100*(b-a*a)*(b-a*a)
		grad := []float64{
			-2*(1-a) - 400*a*(b-a*a),
			200 * (b - a*a),
		}
		return val, grad
	}
	got, _, err := MinimizeCG(f, []float64{-1.2, 1}, MinimizeOptions{MaxIterations: 5000, Tolerance: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-1) > 1e-3 || math.Abs(got[1]-1) > 1e-3 {
		t.Fatalf("Rosenbrock minimum %v", got)
	}
}

func TestGradientDescentQuadratic(t *testing.T) {
	a := matrix.FromRows([][]float64{{2, 0}, {0, 2}})
	b := []float64{2, -4}
	got, _, err := GradientDescent(quadratic(a, b), []float64{0, 0}, 0.4, MinimizeOptions{MaxIterations: 2000, Tolerance: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-1) > 1e-3 || math.Abs(got[1]+2) > 1e-3 {
		t.Fatalf("GD minimum %v", got)
	}
}

func TestNewtonStepExactOnQuadratic(t *testing.T) {
	// For a quadratic, one Newton step from anywhere lands on the minimum.
	a := matrix.FromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	want, _ := matrix.SolveLU(a, b)
	x0 := []float64{10, -10}
	ax, _ := a.MulVec(x0)
	grad := array.Sub(ax, b)
	got, err := NewtonStep(x0, grad, a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("Newton step %v, want %v", got, want)
		}
	}
}

func BenchmarkSolveCG100(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 100
	m := matrix.New(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	a, _ := matrix.Mul(m.T(), m)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveCGMatrix(a, rhs, 1e-10, 0); err != nil {
			b.Fatal(err)
		}
	}
}
