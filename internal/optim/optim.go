// Package optim provides the Conjugate Gradient support module of Table 1:
// a linear CG solver for symmetric positive-definite systems (the
// workhorse behind large least-squares solves) and a nonlinear CG
// minimizer for smooth convex objectives, plus plain gradient descent and
// a Newton step helper used by the iterative methods.
package optim

import (
	"errors"
	"fmt"
	"math"

	"madlib/internal/array"
	"madlib/internal/core"
	"madlib/internal/matrix"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "conjugate_gradient", Title: "Conjugate Gradient Optimization", Category: core.Support})
}

// ErrNoConvergence is returned when an iteration budget is exhausted.
var ErrNoConvergence = errors.New("optim: did not converge")

// SolveCG solves A·x = b for symmetric positive-definite A with the
// conjugate-gradient method. matvec computes A·v without materializing A,
// so callers can stream the product through aggregate queries.
func SolveCG(matvec func(v []float64) []float64, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	n := len(b)
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	x := make([]float64, n)
	r := array.Clone(b) // r = b - A·0
	p := array.Clone(r)
	rs := array.Dot(r, r)
	normB := array.Norm2(b)
	if normB == 0 {
		return x, 0, nil
	}
	for iter := 1; iter <= maxIter; iter++ {
		ap := matvec(p)
		pap := array.Dot(p, ap)
		if pap <= 0 {
			return nil, iter, fmt.Errorf("optim: matrix not positive definite (pᵀAp = %v)", pap)
		}
		alpha := rs / pap
		array.Axpy(alpha, p, x)
		array.Axpy(-alpha, ap, r)
		rsNew := array.Dot(r, r)
		if math.Sqrt(rsNew) <= tol*normB {
			return x, iter, nil
		}
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	return nil, maxIter, ErrNoConvergence
}

// SolveCGMatrix is SolveCG for an explicit matrix.
func SolveCGMatrix(a *matrix.Matrix, b []float64, tol float64, maxIter int) ([]float64, int, error) {
	if a.Rows != a.Cols || a.Rows != len(b) {
		return nil, 0, fmt.Errorf("optim: shape mismatch %d×%d vs %d", a.Rows, a.Cols, len(b))
	}
	return SolveCG(func(v []float64) []float64 {
		out, err := a.MulVec(v)
		if err != nil {
			panic(err) // shapes validated above
		}
		return out
	}, b, tol, maxIter)
}

// Objective is a smooth function with gradient, for the nonlinear solvers.
type Objective func(x []float64) (value float64, grad []float64)

// MinimizeOptions configure the nonlinear minimizers.
type MinimizeOptions struct {
	// Tolerance on the gradient norm (default 1e-8).
	Tolerance float64
	// MaxIterations (default 500).
	MaxIterations int
	// InitialStep for line searches (default 1).
	InitialStep float64
}

func (o *MinimizeOptions) defaults() {
	if o.Tolerance == 0 {
		o.Tolerance = 1e-8
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 500
	}
	if o.InitialStep == 0 {
		o.InitialStep = 1
	}
}

// MinimizeCG minimizes f from x0 with Polak-Ribière nonlinear conjugate
// gradient and a backtracking Armijo line search.
func MinimizeCG(f Objective, x0 []float64, opts MinimizeOptions) ([]float64, int, error) {
	opts.defaults()
	x := array.Clone(x0)
	val, grad := f(x)
	dir := make([]float64, len(x))
	for i := range dir {
		dir[i] = -grad[i]
	}
	prevGrad := array.Clone(grad)
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		if array.Norm2(grad) <= opts.Tolerance {
			return x, iter - 1, nil
		}
		// Line search along dir.
		step := opts.InitialStep
		dg := array.Dot(grad, dir)
		if dg >= 0 { // not a descent direction: restart with steepest descent
			for i := range dir {
				dir[i] = -grad[i]
			}
			dg = -array.Dot(grad, grad)
		}
		var cand []float64
		var candVal float64
		var candGrad []float64
		ok := false
		for probe := 0; probe < 40; probe++ {
			cand = array.Clone(x)
			array.Axpy(step, dir, cand)
			candVal, candGrad = f(cand)
			if candVal <= val+1e-4*step*dg {
				ok = true
				break
			}
			step /= 2
		}
		if !ok {
			// No further progress possible at machine precision.
			return x, iter, nil
		}
		// Polak-Ribière beta with automatic restart.
		num, den := 0.0, 0.0
		for i := range candGrad {
			num += candGrad[i] * (candGrad[i] - prevGrad[i])
			den += prevGrad[i] * prevGrad[i]
		}
		beta := 0.0
		if den > 0 {
			beta = num / den
		}
		if beta < 0 {
			beta = 0
		}
		for i := range dir {
			dir[i] = -candGrad[i] + beta*dir[i]
		}
		x, val = cand, candVal
		copy(prevGrad, grad)
		copy(grad, candGrad)
	}
	return x, opts.MaxIterations, ErrNoConvergence
}

// GradientDescent minimizes f with fixed-schedule steepest descent
// (step/√k), the baseline the paper's §5.1 describes.
func GradientDescent(f Objective, x0 []float64, step float64, opts MinimizeOptions) ([]float64, int, error) {
	opts.defaults()
	x := array.Clone(x0)
	for iter := 1; iter <= opts.MaxIterations; iter++ {
		_, grad := f(x)
		if array.Norm2(grad) <= opts.Tolerance {
			return x, iter - 1, nil
		}
		alpha := step / math.Sqrt(float64(iter))
		array.Axpy(-alpha, grad, x)
	}
	// Gradient descent with a decaying schedule is allowed to stop at the
	// iteration budget; report the point reached.
	_, grad := f(x)
	if array.Norm2(grad) <= opts.Tolerance*10 {
		return x, opts.MaxIterations, nil
	}
	return x, opts.MaxIterations, ErrNoConvergence
}

// NewtonStep returns x - H⁻¹g for one damped-Newton iteration, using the
// pseudo-inverse so rank-deficient Hessians degrade gracefully.
func NewtonStep(x, grad []float64, hessian *matrix.Matrix) ([]float64, error) {
	pinv, _, err := matrix.PseudoInverse(hessian)
	if err != nil {
		return nil, err
	}
	step, err := pinv.MulVec(grad)
	if err != nil {
		return nil, err
	}
	out := array.Clone(x)
	array.Axpy(-1, step, out)
	return out, nil
}
