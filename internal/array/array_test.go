package array

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"empty", nil, nil, 0},
		{"ones", []float64{1, 1, 1}, []float64{1, 1, 1}, 3},
		{"orthogonal", []float64{1, 0}, []float64{0, 1}, 0},
		{"mixed", []float64{1, -2, 3}, []float64{4, 5, -6}, 4 - 10 - 18},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Dot(tc.a, tc.b); got != tc.want {
				t.Fatalf("Dot(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestCheckedDot(t *testing.T) {
	if _, err := CheckedDot([]float64{1}, []float64{1, 2}); err != ErrDimension {
		t.Fatalf("want ErrDimension, got %v", err)
	}
	got, err := CheckedDot([]float64{2, 3}, []float64{4, 5})
	if err != nil || got != 23 {
		t.Fatalf("CheckedDot = %v, %v", got, err)
	}
}

func TestAxpyScaleAddSub(t *testing.T) {
	y := []float64{1, 2, 3}
	Axpy(2, []float64{1, 1, 1}, y)
	want := []float64{3, 4, 5}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy got %v want %v", y, want)
		}
	}
	Scale(0.5, y)
	want = []float64{1.5, 2, 2.5}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Scale got %v want %v", y, want)
		}
	}
	s := Add([]float64{1, 2}, []float64{3, 4})
	if s[0] != 4 || s[1] != 6 {
		t.Fatalf("Add got %v", s)
	}
	d := Sub([]float64{1, 2}, []float64{3, 4})
	if d[0] != -2 || d[1] != -2 {
		t.Fatalf("Sub got %v", d)
	}
}

func TestAddTo(t *testing.T) {
	dst := []float64{1, 2}
	AddTo(dst, []float64{10, 20})
	if dst[0] != 11 || dst[1] != 22 {
		t.Fatalf("AddTo got %v", dst)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := []float64{1, 2, 3}
	b := Clone(a)
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone aliases input")
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm2(x); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
	if got := Norm1(x); got != 7 {
		t.Fatalf("Norm1 = %v", got)
	}
	if got := NormInf(x); got != 4 {
		t.Fatalf("NormInf = %v", got)
	}
}

func TestDistances(t *testing.T) {
	a, b := []float64{0, 0}, []float64{3, 4}
	if got := SquaredDistance(a, b); got != 25 {
		t.Fatalf("SquaredDistance = %v", got)
	}
	if got := Distance(a, b); got != 5 {
		t.Fatalf("Distance = %v", got)
	}
}

func TestSumMean(t *testing.T) {
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Fatalf("Sum = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2, 3}) {
		t.Fatal("finite vector reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("Inf not detected")
	}
}

func TestOuterProductVariantsAgree(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	k := len(x)
	full := make([]float64, k*k)
	lower := make([]float64, k*k)
	colMajor := make([]float64, k*k)
	OuterProductFull(full, x)
	OuterProductLower(lower, x)
	SymmetrizeLower(lower, k)
	OuterProductColumnMajor(colMajor, x)
	for i := 0; i < k*k; i++ {
		if full[i] != lower[i] {
			t.Fatalf("lower+symmetrize disagrees with full at %d: %v vs %v", i, lower[i], full[i])
		}
		if full[i] != colMajor[i] {
			t.Fatalf("column-major disagrees with full at %d", i)
		}
	}
	// Spot-check a value: (2nd row, 3rd col) = x[1]*x[2] = 6.
	if full[1*k+2] != 6 {
		t.Fatalf("outer product cell wrong: %v", full[1*k+2])
	}
}

func TestOuterProductAccumulates(t *testing.T) {
	x := []float64{1, 2}
	dst := make([]float64, 4)
	OuterProductFull(dst, x)
	OuterProductFull(dst, x)
	if dst[0] != 2 || dst[3] != 8 {
		t.Fatalf("accumulation wrong: %v", dst)
	}
}

func TestArgMinArgMax(t *testing.T) {
	x := []float64{3, 1, 2}
	if got := ArgMin(x); got != 1 {
		t.Fatalf("ArgMin = %d", got)
	}
	if got := ArgMax(x); got != 0 {
		t.Fatalf("ArgMax = %d", got)
	}
	if ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Fatal("empty vector should return -1")
	}
}

// Property: Dot is symmetric and bilinear in the first argument.
func TestDotPropertySymmetry(t *testing.T) {
	f := func(a, b [8]float64) bool {
		for i := range a {
			if math.Abs(a[i]) > 1e100 || math.Abs(b[i]) > 1e100 ||
				math.IsNaN(a[i]) || math.IsNaN(b[i]) {
				return true // skip overflow-prone draws
			}
		}
		return almostEq(Dot(a[:], b[:]), Dot(b[:], a[:]), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ||x||₂² equals Dot(x,x).
func TestNormDotProperty(t *testing.T) {
	f := func(a [8]float64) bool {
		for _, v := range a {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true // skip pathological draws
			}
		}
		n := Norm2(a[:])
		return almostEq(n*n, Dot(a[:], a[:]), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: triangular accumulation + symmetrize equals the full product for
// random vectors (the v0.3 vs v0.1alpha equivalence the paper relies on).
func TestOuterProductTriangularProperty(t *testing.T) {
	f := func(a [6]float64) bool {
		k := len(a)
		full := make([]float64, k*k)
		lower := make([]float64, k*k)
		OuterProductFull(full, a[:])
		OuterProductLower(lower, a[:])
		SymmetrizeLower(lower, k)
		for i := range full {
			if full[i] != lower[i] && !(math.IsNaN(full[i]) && math.IsNaN(lower[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDot(b *testing.B) {
	x := make([]float64, 256)
	y := make([]float64, 256)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(256 - i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Dot(x, y)
	}
}

func BenchmarkOuterProductFull(b *testing.B) {
	x := make([]float64, 80)
	dst := make([]float64, 80*80)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OuterProductFull(dst, x)
	}
}

func BenchmarkOuterProductLower(b *testing.B) {
	x := make([]float64, 80)
	dst := make([]float64, 80*80)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OuterProductLower(dst, x)
	}
}

func BenchmarkOuterProductColumnMajor(b *testing.B) {
	x := make([]float64, 80)
	dst := make([]float64, 80*80)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		OuterProductColumnMajor(dst, x)
	}
}
