// Package array provides dense vector operations used as the
// micro-programming kernels of the library (paper §3.2, Table 1 "Array
// Operations"). All functions operate on []float64 and are written as tight
// loops so that higher layers (user-defined aggregates, SGD inner loops)
// can call them per row without allocation.
package array

import (
	"errors"
	"fmt"
	"math"

	"madlib/internal/core"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "array_ops", Title: "Array Operations", Category: core.Support})
}

// ErrDimension is returned when two vectors that must agree in length do not.
var ErrDimension = errors.New("array: dimension mismatch")

// Dot returns the inner product of two equal-length vectors.
// It panics if the lengths differ; use CheckedDot for an error return.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("array: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// CheckedDot is Dot with an error instead of a panic on length mismatch.
func CheckedDot(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, ErrDimension
	}
	return Dot(a, b), nil
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("array: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Add returns a+b as a new vector.
func Add(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("array: Add length mismatch %d != %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v + b[i]
	}
	return out
}

// Sub returns a-b as a new vector.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("array: Sub length mismatch %d != %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v - b[i]
	}
	return out
}

// AddTo computes dst += src in place.
func AddTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("array: AddTo length mismatch %d != %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += v
	}
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Zeros returns a zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the L1 norm of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the max-absolute-value norm of x.
func NormInf(x []float64) float64 {
	var s float64
	for _, v := range x {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// SquaredDistance returns ||a-b||².
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("array: SquaredDistance length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Distance returns the Euclidean distance between a and b.
func Distance(a, b []float64) float64 { return math.Sqrt(SquaredDistance(a, b)) }

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty vector.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// AllFinite reports whether every element of x is finite (no NaN or Inf).
// MADlib's transition functions perform the same screening before
// accumulating a row.
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// OuterProductFull accumulates dst += x·xᵀ where dst is a k×k matrix stored
// row-major in a flat slice of length k*k. Every one of the k² cells is
// written. This is the v0.1alpha inner loop from the paper's §4.4: a simple
// nested loop over the full square.
func OuterProductFull(dst, x []float64) {
	k := len(x)
	if len(dst) != k*k {
		panic(fmt.Sprintf("array: OuterProductFull dst %d != %d²", len(dst), k))
	}
	for i := 0; i < k; i++ {
		xi := x[i]
		row := dst[i*k : (i+1)*k]
		for j := 0; j < k; j++ {
			row[j] += xi * x[j]
		}
	}
}

// OuterProductLower accumulates only the lower triangle (j ≤ i) of
// dst += x·xᵀ, halving the arithmetic for symmetric accumulations. This is
// the v0.3 inner loop (`triangularView<Lower>(X_transp_X) += x * trans(x)`
// in the paper's Listing 1).
func OuterProductLower(dst, x []float64) {
	k := len(x)
	if len(dst) != k*k {
		panic(fmt.Sprintf("array: OuterProductLower dst %d != %d²", len(dst), k))
	}
	for i := 0; i < k; i++ {
		xi := x[i]
		row := dst[i*k : i*k+i+1]
		for j := 0; j <= i; j++ {
			row[j] += xi * x[j]
		}
	}
}

// SymmetrizeLower copies the lower triangle of the k×k row-major matrix m
// into its upper triangle, completing a symmetric matrix accumulated with
// OuterProductLower.
func SymmetrizeLower(m []float64, k int) {
	if len(m) != k*k {
		panic(fmt.Sprintf("array: SymmetrizeLower len %d != %d²", len(m), k))
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			m[i*k+j] = m[j*k+i]
		}
	}
}

// OuterProductColumnMajor accumulates dst += x·xᵀ walking the destination in
// column-major order over a row-major buffer. The strided writes defeat the
// cache exactly the way the untuned reference-BLAS row-vector product did in
// MADlib v0.2.1beta (§4.4: "computing yᵀy for a row vector y is about three
// to four times slower than computing xxᵀ for a column vector x").
func OuterProductColumnMajor(dst, x []float64) {
	k := len(x)
	if len(dst) != k*k {
		panic(fmt.Sprintf("array: OuterProductColumnMajor dst %d != %d²", len(dst), k))
	}
	for j := 0; j < k; j++ {
		xj := x[j]
		for i := 0; i < k; i++ {
			dst[i*k+j] += x[i] * xj
		}
	}
}

// ArgMin returns the index of the smallest element of x, or -1 if x is empty.
func ArgMin(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i := 1; i < len(x); i++ {
		if x[i] < best {
			best, bi = x[i], i
		}
	}
	return bi
}

// ArgMax returns the index of the largest element of x, or -1 if x is empty.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best, bi := x[0], 0
	for i := 1; i < len(x); i++ {
		if x[i] > best {
			best, bi = x[i], i
		}
	}
	return bi
}
