package profile

import (
	"math"
	"strings"
	"testing"

	"madlib/internal/engine"
)

func buildMixedTable(t *testing.T, db *engine.DB) *engine.Table {
	t.Helper()
	tbl, err := db.CreateTable("mixed", engine.Schema{
		{Name: "f", Kind: engine.Float},
		{Name: "i", Kind: engine.Int},
		{Name: "s", Kind: engine.String},
		{Name: "b", Kind: engine.Bool},
		{Name: "v", Kind: engine.Vector},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if err := tbl.Insert(
			float64(i),
			int64(i%10),
			strings.Repeat("x", 1+i%5),
			i%2 == 0,
			[]float64{float64(i)},
		); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestProfileMixedTable(t *testing.T) {
	db := engine.Open(4)
	buildMixedTable(t, db)
	tp, err := Run(db, "mixed")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Rows != 1000 || len(tp.Columns) != 5 {
		t.Fatalf("rows=%d cols=%d", tp.Rows, len(tp.Columns))
	}
	byName := map[string]ColumnProfile{}
	for _, c := range tp.Columns {
		byName[c.Name] = c
	}

	f := byName["f"]
	if f.Min != 0 || f.Max != 999 {
		t.Fatalf("float min/max = %v/%v", f.Min, f.Max)
	}
	if math.Abs(f.Mean-499.5) > 1e-9 {
		t.Fatalf("float mean = %v", f.Mean)
	}
	if f.Distinct < 900 || f.Distinct > 1100 {
		t.Fatalf("float distinct ≈ %d", f.Distinct)
	}
	if len(f.Quantiles) != 3 || math.Abs(f.Quantiles[1]-499.5) > 25 {
		t.Fatalf("float quartiles = %v", f.Quantiles)
	}

	i := byName["i"]
	if i.Distinct != 10 {
		t.Fatalf("int distinct = %d", i.Distinct)
	}
	if i.Min != 0 || i.Max != 9 {
		t.Fatalf("int min/max = %v/%v", i.Min, i.Max)
	}
	if len(i.MostFrequent) != 5 {
		t.Fatalf("MFV = %v", i.MostFrequent)
	}
	// Uniform distribution: each value appears 100 times.
	if i.MostFrequent[0].Count != 100 {
		t.Fatalf("MFV top count = %d", i.MostFrequent[0].Count)
	}

	s := byName["s"]
	if s.MinLen != 1 || s.MaxLen != 5 || math.Abs(s.AvgLen-3) > 1e-9 {
		t.Fatalf("string lens = %d/%d/%v", s.MinLen, s.MaxLen, s.AvgLen)
	}
	if s.Distinct != 5 {
		t.Fatalf("string distinct = %d", s.Distinct)
	}

	b := byName["b"]
	if b.Distinct != 2 {
		t.Fatalf("bool distinct = %d", b.Distinct)
	}

	// The text report mentions every column.
	report := tp.Format()
	for _, col := range []string{"f", "i", "s", "b", "v"} {
		if !strings.Contains(report, col) {
			t.Fatalf("report missing column %q:\n%s", col, report)
		}
	}
}

func TestProfileEmptyTable(t *testing.T) {
	db := engine.Open(2)
	if _, err := db.CreateTable("empty", engine.Schema{{Name: "x", Kind: engine.Float}}); err != nil {
		t.Fatal(err)
	}
	tp, err := Run(db, "empty")
	if err != nil {
		t.Fatal(err)
	}
	if tp.Rows != 0 {
		t.Fatalf("rows = %d", tp.Rows)
	}
	if !math.IsNaN(tp.Columns[0].Mean) {
		t.Fatalf("empty column mean should be NaN, got %v", tp.Columns[0].Mean)
	}
}

func TestProfileValidatesName(t *testing.T) {
	db := engine.Open(1)
	if _, err := Run(db, "no such; table"); err == nil {
		t.Fatal("invalid identifier should fail fast")
	}
	if _, err := Run(db, "missing"); err == nil {
		t.Fatal("unknown table should fail")
	}
}

func TestProfileQueryCount(t *testing.T) {
	// The module synthesizes multiple queries per column — verify it
	// actually goes through the engine rather than touching storage
	// directly (the macro-programming contract).
	db := engine.Open(2)
	buildMixedTable(t, db)
	before := db.QueriesExecuted()
	if _, err := Run(db, "mixed"); err != nil {
		t.Fatal(err)
	}
	if got := db.QueriesExecuted() - before; got < 5 {
		t.Fatalf("profile issued only %d queries", got)
	}
}
