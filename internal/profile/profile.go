// Package profile implements the data-profiling module, the paper's
// flagship example of templated queries (§3.1.3): it "takes an arbitrary
// table as input, producing univariate summary statistics for each of its
// columns", by interrogating the catalog for the input schema and
// synthesizing one aggregate query per column whose shape depends on the
// column's type.
package profile

import (
	"errors"
	"fmt"
	"math"

	"madlib/internal/core"
	"madlib/internal/engine"
	"madlib/internal/quantile"
	"madlib/internal/sketch"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "profile", Title: "Data Profiling", Category: core.Descriptive})
}

// ColumnProfile is the per-column output record. Fields not applicable to
// the column's type are NaN / nil.
type ColumnProfile struct {
	// Name and Kind identify the column.
	Name string
	Kind engine.Kind
	// Rows is the table row count.
	Rows int64
	// Distinct is the FM-estimated distinct-value count.
	Distinct int64
	// Min, Max, Mean, Variance are numeric summaries (Float/Int columns).
	Min, Max, Mean, Variance float64
	// Quantiles are the GK-approximated quartiles (25/50/75) for numeric
	// columns.
	Quantiles []float64
	// MostFrequent holds up to 5 most frequent values for Int columns.
	MostFrequent []sketch.FrequentValue
	// MinLen, MaxLen, AvgLen summarize String columns.
	MinLen, MaxLen int
	AvgLen         float64
}

// TableProfile is the whole-table output.
type TableProfile struct {
	Table   string
	Rows    int64
	Columns []ColumnProfile
}

// Run profiles the named table. The column list is discovered from the
// catalog, and per-kind aggregates are synthesized — the templated-query
// pattern. The table name is validated up front, producing a friendly
// error rather than the "enigmatic" late failure the paper warns about.
func Run(db *engine.DB, tableName string) (*TableProfile, error) {
	if err := core.ValidateIdentifier(tableName); err != nil {
		return nil, err
	}
	t, err := db.Table(tableName)
	if err != nil {
		return nil, err
	}
	out := &TableProfile{Table: tableName, Rows: t.Count()}
	for ci, col := range t.Schema() {
		p, err := profileColumn(db, t, ci, col)
		if err != nil {
			return nil, fmt.Errorf("profile: column %q: %w", col.Name, err)
		}
		p.Rows = out.Rows
		out.Columns = append(out.Columns, *p)
	}
	return out, nil
}

// numericState accumulates the one-pass numeric summary.
type numericState struct {
	n                  int64
	min, max, sum, ssq float64
}

func profileColumn(db *engine.DB, t *engine.Table, ci int, col engine.Column) (*ColumnProfile, error) {
	p := &ColumnProfile{Name: col.Name, Kind: col.Kind,
		Min: math.NaN(), Max: math.NaN(), Mean: math.NaN(), Variance: math.NaN()}

	// Distinct count via FM for scalar kinds.
	if col.Kind != engine.Vector {
		v, err := db.Run(t, sketch.FMAggregate(ci, col.Kind))
		if err != nil {
			return nil, err
		}
		p.Distinct = v.(int64)
	}

	switch col.Kind {
	case engine.Float, engine.Int:
		read := func(r engine.Row) float64 {
			if col.Kind == engine.Int {
				return float64(r.Int(ci))
			}
			return r.Float(ci)
		}
		v, err := db.Run(t, engine.FuncAggregate{
			InitFn: func() any { return &numericState{min: math.Inf(1), max: math.Inf(-1)} },
			TransitionFn: func(s any, r engine.Row) any {
				st := s.(*numericState)
				x := read(r)
				st.n++
				st.sum += x
				st.ssq += x * x
				if x < st.min {
					st.min = x
				}
				if x > st.max {
					st.max = x
				}
				return st
			},
			MergeFn: func(a, b any) any {
				sa, sb := a.(*numericState), b.(*numericState)
				sa.n += sb.n
				sa.sum += sb.sum
				sa.ssq += sb.ssq
				if sb.min < sa.min {
					sa.min = sb.min
				}
				if sb.max > sa.max {
					sa.max = sb.max
				}
				return sa
			},
			FinalFn: func(s any) (any, error) { return s, nil },
		})
		if err != nil {
			return nil, err
		}
		st := v.(*numericState)
		if st.n > 0 {
			p.Min, p.Max = st.min, st.max
			p.Mean = st.sum / float64(st.n)
			if st.n > 1 {
				p.Variance = (st.ssq - st.sum*st.sum/float64(st.n)) / float64(st.n-1)
				if p.Variance < 0 {
					p.Variance = 0
				}
			}
			// Quartiles via a GK aggregate (synthesized only for numeric
			// columns — the "output schema is a function of the input
			// schema" behaviour).
			if col.Kind == engine.Float {
				qv, err := db.Run(t, quantile.GKAggregate(ci, 0.01, []float64{0.25, 0.5, 0.75}))
				if err != nil {
					return nil, err
				}
				p.Quantiles = qv.([]float64)
			} else {
				qv, err := db.Run(t, quantile.GKAggregateInt(ci, 0.01, []float64{0.25, 0.5, 0.75}))
				if err != nil {
					return nil, err
				}
				p.Quantiles = qv.([]float64)
			}
		}
		if col.Kind == engine.Int {
			// Most-frequent values for integer codes.
			mv, err := db.Run(t, mfvAggregate(ci, 5))
			if err != nil {
				return nil, err
			}
			p.MostFrequent = mv.([]sketch.FrequentValue)
		}
	case engine.String:
		type strState struct {
			n                int64
			minLen, maxLen   int
			totalLen         int64
			haveShortestInit bool
		}
		v, err := db.Run(t, engine.FuncAggregate{
			InitFn: func() any { return &strState{minLen: math.MaxInt} },
			TransitionFn: func(s any, r engine.Row) any {
				st := s.(*strState)
				l := len(r.Str(ci))
				st.n++
				st.totalLen += int64(l)
				if l < st.minLen {
					st.minLen = l
				}
				if l > st.maxLen {
					st.maxLen = l
				}
				return st
			},
			MergeFn: func(a, b any) any {
				sa, sb := a.(*strState), b.(*strState)
				sa.n += sb.n
				sa.totalLen += sb.totalLen
				if sb.minLen < sa.minLen {
					sa.minLen = sb.minLen
				}
				if sb.maxLen > sa.maxLen {
					sa.maxLen = sb.maxLen
				}
				return sa
			},
			FinalFn: func(s any) (any, error) { return s, nil },
		})
		if err != nil {
			return nil, err
		}
		st := v.(*strState)
		if st.n > 0 {
			p.MinLen, p.MaxLen = st.minLen, st.maxLen
			p.AvgLen = float64(st.totalLen) / float64(st.n)
		}
	case engine.Vector, engine.Bool:
		// Distinct (Bool) or nothing (Vector) — no further summaries.
	}
	return p, nil
}

// mfvAggregate runs an MFV sketch over an Int column.
func mfvAggregate(col, k int) engine.Aggregate {
	return engine.FuncAggregate{
		InitFn: func() any {
			m, err := sketch.NewMFV(k, 0.001, 0.01)
			if err != nil {
				panic(err) // constants are valid
			}
			return m
		},
		TransitionFn: func(s any, r engine.Row) any {
			m := s.(*sketch.MFV)
			m.Add(r.Int(col))
			return m
		},
		MergeFn: func(a, b any) any {
			ma := a.(*sketch.MFV)
			if err := ma.Merge(b.(*sketch.MFV)); err != nil {
				panic(err) // same parameters by construction
			}
			return ma
		},
		FinalFn: func(s any) (any, error) { return s.(*sketch.MFV).Top(), nil },
	}
}

// ErrEmptyTable is reported in string form by Format for empty inputs.
var ErrEmptyTable = errors.New("profile: table is empty")

// Format renders a profile as an aligned text report.
func (tp *TableProfile) Format() string {
	out := fmt.Sprintf("table %q: %d rows, %d columns\n", tp.Table, tp.Rows, len(tp.Columns))
	for _, c := range tp.Columns {
		out += fmt.Sprintf("  %-16s %-20s distinct≈%-8d", c.Name, c.Kind.String(), c.Distinct)
		switch c.Kind {
		case engine.Float, engine.Int:
			out += fmt.Sprintf(" min=%.4g max=%.4g mean=%.4g var=%.4g", c.Min, c.Max, c.Mean, c.Variance)
			if len(c.Quantiles) == 3 {
				out += fmt.Sprintf(" q25=%.4g q50=%.4g q75=%.4g", c.Quantiles[0], c.Quantiles[1], c.Quantiles[2])
			}
		case engine.String:
			out += fmt.Sprintf(" len[min=%d max=%d avg=%.1f]", c.MinLen, c.MaxLen, c.AvgLen)
		}
		out += "\n"
	}
	return out
}
