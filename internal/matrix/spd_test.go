package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := New(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a, _ := Mul(b.T(), b)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+1)
	}
	return a
}

func TestInverseSPDMatchesGaussJordan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(10)
		a := randomSPD(rng, n)
		want, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := InverseSPD(a)
		if err != nil {
			t.Fatal(err)
		}
		diff, _ := Sub(got, want)
		if diff.MaxAbs() > 1e-8 {
			t.Fatalf("trial %d: SPD inverse deviates by %v", trial, diff.MaxAbs())
		}
	}
}

func TestInverseSPDRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := InverseSPD(a); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestInverseFromCholesky(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := InverseFromCholesky(l)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := Mul(a, inv)
	diff, _ := Sub(prod, Identity(2))
	if diff.MaxAbs() > 1e-12 {
		t.Fatalf("A·A⁻¹ off by %v", diff.MaxAbs())
	}
}

func TestConditionSPDMatchesEigen(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(8)
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ConditionSPD(a, l)
		if err != nil {
			t.Fatal(err)
		}
		vals, _, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		want := vals[0] / vals[n-1]
		// Power iteration is an estimate; require 10% relative agreement.
		if math.Abs(got-want) > 0.1*want {
			t.Fatalf("trial %d: ConditionSPD %v vs eigen %v", trial, got, want)
		}
	}
}

func TestConditionSPDDiagonal(t *testing.T) {
	a := FromRows([][]float64{{100, 0}, {0, 1}})
	l, _ := Cholesky(a)
	got, err := ConditionSPD(a, l)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 1 {
		t.Fatalf("condition = %v, want 100", got)
	}
}
