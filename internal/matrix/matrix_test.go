package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func matApprox(t *testing.T, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %d×%d != %d×%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if !approx(got.Data[i], want.Data[i], tol) {
			t.Fatalf("entry %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	got, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	matApprox(t, got, want, 0)
}

func TestMulShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := Mul(a, b); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	got, err := a.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MulVec = %v", got)
	}
	if _, err := a.MulVec([]float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows != 3 || at.Cols != 2 || at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %+v", at)
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := FromRows([][]float64{{3, 4}})
	s, err := Add(a, b)
	if err != nil || s.At(0, 1) != 6 {
		t.Fatalf("Add: %v %v", s, err)
	}
	d, err := Sub(b, a)
	if err != nil || d.At(0, 0) != 2 {
		t.Fatalf("Sub: %v %v", d, err)
	}
	a.Scale(10)
	if a.At(0, 0) != 10 {
		t.Fatal("Scale wrong")
	}
}

func TestSolveLU(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLU(a, []float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=3, x+3y=5 → x=0.8, y=1.4
	if !approx(x[0], 0.8, 1e-12) || !approx(x[1], 1.4, 1e-12) {
		t.Fatalf("SolveLU = %v", x)
	}
}

func TestSolveLUPivoting(t *testing.T) {
	// Zero on the diagonal forces a pivot.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLU(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("SolveLU with pivot = %v", x)
	}
}

func TestSolveLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLU(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestInverseIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Make it diagonally dominant so it is invertible.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		prod, err := Mul(a, inv)
		if err != nil {
			t.Fatal(err)
		}
		id := Identity(n)
		diff, _ := Sub(prod, id)
		if diff.MaxAbs() > 1e-9 {
			t.Fatalf("trial %d: A·A⁻¹ deviates from I by %v", trial, diff.MaxAbs())
		}
	}
}

func TestInverseSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	if _, err := Inverse(a); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestCholesky(t *testing.T) {
	a := FromRows([][]float64{{4, 2}, {2, 3}})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	lt := l.T()
	prod, _ := Mul(l, lt)
	matApprox(t, prod, a, 1e-12)
	x, err := SolveCholesky(l, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Verify A·x = b.
	b, _ := a.MulVec(x)
	if !approx(b[0], 2, 1e-12) || !approx(b[1], 3, 1e-12) {
		t.Fatalf("SolveCholesky residual: %v", b)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestEigenSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(vals[0], 3, 1e-10) || !approx(vals[1], 1, 1e-10) {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// Check A·v = λ·v for the leading eigenvector.
	v0 := vecs.Col(0)
	av, _ := a.MulVec(v0)
	for i := range av {
		if !approx(av[i], 3*v0[i], 1e-10) {
			t.Fatalf("A·v != λv: %v vs %v", av, v0)
		}
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(8)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := EigenSym(a)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct V·diag(vals)·Vᵀ.
		rec := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += vecs.At(i, k) * vals[k] * vecs.At(j, k)
				}
				rec.Set(i, j, s)
			}
		}
		diff, _ := Sub(rec, a)
		if diff.MaxAbs() > 1e-8 {
			t.Fatalf("trial %d: reconstruction error %v", trial, diff.MaxAbs())
		}
		// Eigenvalues must be sorted descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", vals)
			}
		}
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if _, _, err := EigenSym(a); err == nil {
		t.Fatal("expected error for asymmetric input")
	}
}

func TestPseudoInverseFullRank(t *testing.T) {
	a := FromRows([][]float64{{4, 0}, {0, 2}})
	pinv, cond, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(pinv.At(0, 0), 0.25, 1e-10) || !approx(pinv.At(1, 1), 0.5, 1e-10) {
		t.Fatalf("pinv = %+v", pinv)
	}
	if !approx(cond, 2, 1e-10) {
		t.Fatalf("condition number = %v, want 2", cond)
	}
}

func TestPseudoInverseRankDeficient(t *testing.T) {
	// Rank-1 symmetric matrix: [[1,1],[1,1]].
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	pinv, _, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	// Moore-Penrose pseudo-inverse is [[.25,.25],[.25,.25]].
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !approx(pinv.At(i, j), 0.25, 1e-10) {
				t.Fatalf("pinv = %+v", pinv)
			}
		}
	}
	// A · A⁺ · A = A (defining property).
	ap, _ := Mul(a, pinv)
	apa, _ := Mul(ap, a)
	diff, _ := Sub(apa, a)
	if diff.MaxAbs() > 1e-9 {
		t.Fatalf("A·A⁺·A != A, error %v", diff.MaxAbs())
	}
}

func TestPseudoInverseZeroMatrix(t *testing.T) {
	a := New(3, 3)
	pinv, cond, err := PseudoInverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if pinv.MaxAbs() != 0 {
		t.Fatal("pseudo-inverse of zero should be zero")
	}
	if !math.IsInf(cond, 1) {
		t.Fatalf("condition of zero matrix = %v", cond)
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		m := 2 + rng.Intn(6)
		n := 1 + rng.Intn(m) // m >= n
		a := New(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		u, sigma, v, err := SVD(a)
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct U·diag(σ)·Vᵀ.
		rec := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < len(sigma); k++ {
					s += u.At(i, k) * sigma[k] * v.At(j, k)
				}
				rec.Set(i, j, s)
			}
		}
		diff, _ := Sub(rec, a)
		if diff.MaxAbs() > 1e-7 {
			t.Fatalf("trial %d: SVD reconstruction error %v", trial, diff.MaxAbs())
		}
		for i := 1; i < len(sigma); i++ {
			if sigma[i] > sigma[i-1]+1e-12 {
				t.Fatalf("singular values not sorted: %v", sigma)
			}
		}
	}
}

func TestSVDWideMatrix(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}}) // 2×3, wide
	u, sigma, v, err := SVD(a)
	if err != nil {
		t.Fatal(err)
	}
	rec := New(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < len(sigma); k++ {
				s += u.At(i, k) * sigma[k] * v.At(j, k)
			}
			rec.Set(i, j, s)
		}
	}
	diff, _ := Sub(rec, a)
	if diff.MaxAbs() > 1e-8 {
		t.Fatalf("wide SVD reconstruction error %v", diff.MaxAbs())
	}
}

func TestClosestColumn(t *testing.T) {
	// Columns: (0,0), (10,0), (0,10).
	m := FromRows([][]float64{{0, 10, 0}, {0, 0, 10}})
	idx, dist, err := ClosestColumn(m, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 0 {
		t.Fatalf("closest column = %d, want 0", idx)
	}
	if !approx(dist, math.Sqrt(2), 1e-12) {
		t.Fatalf("distance = %v", dist)
	}
	if _, _, err := ClosestColumn(m, []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
	if _, _, err := ClosestColumn(New(2, 0), []float64{1, 1}); err == nil {
		t.Fatal("expected error for empty matrix")
	}
}

// Property: (Aᵀ)ᵀ = A.
func TestTransposeInvolution(t *testing.T) {
	f := func(vals [12]float64) bool {
		a := FromFlat(3, 4, vals[:])
		att := a.T().T()
		for i := range a.Data {
			va, vb := a.Data[i], att.Data[i]
			if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveLU(A, b) satisfies A·x ≈ b for well-conditioned A.
func TestSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		a := New(n, n)
		b := make([]float64, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLU(a, b)
		if err != nil {
			return false
		}
		ax, _ := a.MulVec(x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInverse40(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 40
	a := New(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+50)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Inverse(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenSym20(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 20
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigenSym(a); err != nil {
			b.Fatal(err)
		}
	}
}
