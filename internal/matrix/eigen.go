package matrix

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues in descending order and
// the matching orthonormal eigenvectors as matrix columns. This mirrors the
// SymmetricPositiveDefiniteEigenDecomposition class the paper's Listing 2
// wraps around Eigen's self-adjoint solver.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix, err error) {
	n := a.Rows
	if a.Cols != n {
		return nil, nil, fmt.Errorf("%w: EigenSym needs square matrix", ErrShape)
	}
	// Verify symmetry within a loose tolerance; callers accumulate the lower
	// triangle and symmetrize, so exact symmetry is expected.
	scale := a.MaxAbs()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-8*(1+scale) {
				return nil, nil, fmt.Errorf("matrix: EigenSym input not symmetric at (%d,%d)", i, j)
			}
		}
	}
	m := a.Clone()
	v := Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagonalNorm(m)
		if off <= 1e-14*(1+scale) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) <= 1e-16*(1+scale) {
					continue
				}
				app, aqq := m.At(p, p), m.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(m, v, p, q, c, s)
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = m.At(i, i)
	}
	// Sort descending, permuting eigenvector columns to match.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := New(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs, nil
}

// rotate applies the Jacobi rotation J(p,q,c,s) on both sides of m and
// accumulates it into v.
func rotate(m, v *Matrix, p, q int, c, s float64) {
	n := m.Rows
	for k := 0; k < n; k++ {
		mkp, mkq := m.At(k, p), m.At(k, q)
		m.Set(k, p, c*mkp-s*mkq)
		m.Set(k, q, s*mkp+c*mkq)
	}
	for k := 0; k < n; k++ {
		mpk, mqk := m.At(p, k), m.At(q, k)
		m.Set(p, k, c*mpk-s*mqk)
		m.Set(q, k, s*mpk+c*mqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

func offDiagonalNorm(m *Matrix) float64 {
	var s float64
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				s += m.At(i, j) * m.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}

// PseudoInverse returns the Moore-Penrose pseudo-inverse of a symmetric
// matrix via its eigendecomposition, together with its condition number
// (ratio of largest to smallest *retained* eigenvalue magnitude). Eigenvalues
// below tol·max|λ| are treated as zero, exactly as MADlib's
// ComputePseudoInverse handles rank-deficient XᵀX.
func PseudoInverse(a *Matrix) (pinv *Matrix, conditionNo float64, err error) {
	vals, vecs, err := EigenSym(a)
	if err != nil {
		return nil, 0, err
	}
	n := a.Rows
	var maxAbs float64
	for _, v := range vals {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	if maxAbs == 0 {
		// Zero matrix: pseudo-inverse is zero, condition number is defined as +Inf.
		return New(n, n), math.Inf(1), nil
	}
	tol := 1e-12 * maxAbs * float64(n)
	minRetained := math.Inf(1)
	inv := make([]float64, n)
	for i, v := range vals {
		if math.Abs(v) <= tol {
			inv[i] = 0
			continue
		}
		inv[i] = 1 / v
		if av := math.Abs(v); av < minRetained {
			minRetained = av
		}
	}
	conditionNo = maxAbs / minRetained
	// pinv = V · diag(inv) · Vᵀ
	pinv = New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += vecs.At(i, k) * inv[k] * vecs.At(j, k)
			}
			pinv.Set(i, j, s)
		}
	}
	return pinv, conditionNo, nil
}

// ConditionNumber returns the 2-norm condition number of a symmetric matrix.
func ConditionNumber(a *Matrix) (float64, error) {
	_, cond, err := PseudoInverse(a)
	return cond, err
}

// SVD computes the thin singular value decomposition A = U·diag(σ)·Vᵀ for an
// m×n matrix with m ≥ n, via the eigendecomposition of AᵀA. Singular values
// are returned in descending order; U is m×r and V is n×r where r = n.
// Tiny singular values are kept (as ~0) so the caller can truncate.
func SVD(a *Matrix) (u *Matrix, sigma []float64, v *Matrix, err error) {
	m, n := a.Rows, a.Cols
	if m < n {
		// Decompose the transpose and swap U and V.
		ut, s, vt, err := SVD(a.T())
		if err != nil {
			return nil, nil, nil, err
		}
		return vt, s, ut, nil
	}
	at := a.T()
	ata, err := Mul(at, a)
	if err != nil {
		return nil, nil, nil, err
	}
	vals, vecs, err := EigenSym(ata)
	if err != nil {
		return nil, nil, nil, err
	}
	sigma = make([]float64, n)
	for i, lambda := range vals {
		if lambda < 0 {
			lambda = 0 // numerical noise
		}
		sigma[i] = math.Sqrt(lambda)
	}
	v = vecs
	// U = A·V·diag(1/σ); columns with σ≈0 are left zero.
	u = New(m, n)
	av, err := Mul(a, v)
	if err != nil {
		return nil, nil, nil, err
	}
	var maxSigma float64
	for _, s := range sigma {
		if s > maxSigma {
			maxSigma = s
		}
	}
	for j := 0; j < n; j++ {
		if sigma[j] <= 1e-12*(1+maxSigma) {
			continue
		}
		inv := 1 / sigma[j]
		for i := 0; i < m; i++ {
			u.Set(i, j, av.At(i, j)*inv)
		}
	}
	return u, sigma, v, nil
}

// InverseSPD inverts a symmetric positive-definite matrix via its Cholesky
// factor — O(n³/3) plain loops, far cheaper than the Jacobi
// eigendecomposition path. Returns ErrSingular when A is not positive
// definite; callers fall back to PseudoInverse.
func InverseSPD(a *Matrix) (*Matrix, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return InverseFromCholesky(l)
}

// InverseFromCholesky inverts A given its Cholesky factor L (A = L·Lᵀ) by
// solving for the n unit vectors.
func InverseFromCholesky(l *Matrix) (*Matrix, error) {
	n := l.Rows
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col, err := SolveCholesky(l, e)
		if err != nil {
			return nil, err
		}
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// ConditionSPD estimates the 2-norm condition number of a symmetric
// positive-definite matrix by power iteration for the largest eigenvalue
// and inverse iteration (through the supplied Cholesky factor) for the
// smallest — O(n²) per iteration instead of a full eigendecomposition.
func ConditionSPD(a *Matrix, chol *Matrix) (float64, error) {
	n := a.Rows
	if n == 0 {
		return math.NaN(), fmt.Errorf("%w: empty matrix", ErrShape)
	}
	lambdaMax, err := powerIteration(n, func(v []float64) ([]float64, error) { return a.MulVec(v) })
	if err != nil {
		return 0, err
	}
	invLambdaMin, err := powerIteration(n, func(v []float64) ([]float64, error) { return SolveCholesky(chol, v) })
	if err != nil {
		return 0, err
	}
	if invLambdaMin <= 0 {
		return math.Inf(1), nil
	}
	return lambdaMax * invLambdaMin, nil
}

// powerIteration estimates the dominant eigenvalue of the linear operator.
func powerIteration(n int, apply func(v []float64) ([]float64, error)) (float64, error) {
	v := make([]float64, n)
	for i := range v {
		// Deterministic non-degenerate start vector.
		v[i] = 1 + float64(i%7)/7
	}
	normalize(v)
	lambda := 0.0
	for iter := 0; iter < 60; iter++ {
		w, err := apply(v)
		if err != nil {
			return 0, err
		}
		next := 0.0
		for i := range w {
			next += v[i] * w[i]
		}
		norm := normalize(w)
		if norm == 0 {
			return 0, nil
		}
		copy(v, w)
		if iter > 3 && math.Abs(next-lambda) <= 1e-6*(math.Abs(next)+1e-300) {
			return next, nil
		}
		lambda = next
	}
	return lambda, nil
}

func normalize(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	s = math.Sqrt(s)
	if s == 0 {
		return 0
	}
	for i := range v {
		v[i] /= s
	}
	return s
}

// ClosestColumn returns the index of the column of m closest (in Euclidean
// distance) to vector x, and that distance. It reproduces MADlib's
// closest_column(a, b) UDF from the k-means discussion (§4.3).
func ClosestColumn(m *Matrix, x []float64) (int, float64, error) {
	if m.Rows != len(x) {
		return -1, 0, fmt.Errorf("%w: ClosestColumn matrix %d×%d vs vec(%d)", ErrShape, m.Rows, m.Cols, len(x))
	}
	if m.Cols == 0 {
		return -1, 0, fmt.Errorf("matrix: ClosestColumn on empty matrix")
	}
	best, bi := math.Inf(1), -1
	for j := 0; j < m.Cols; j++ {
		var d float64
		for i := 0; i < m.Rows; i++ {
			diff := m.At(i, j) - x[i]
			d += diff * diff
		}
		if d < best {
			best, bi = d, j
		}
	}
	return bi, math.Sqrt(best), nil
}
