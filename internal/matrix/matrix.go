// Package matrix provides the dense linear algebra the library's final
// functions need: solving the normal equations, pseudo-inverses for
// rank-deficient designs, condition numbers, and a thin SVD. It plays the
// role Eigen/LAPACK play in MADlib's C++ layer (paper §3.3), written as
// plain Go so the repository stays stdlib-only.
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("matrix: incompatible shapes")

// ErrSingular is returned when an exact solve meets a singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// New returns a zeroed Rows×Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("matrix: ragged rows (%d vs %d)", len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// FromFlat wraps an existing row-major buffer without copying.
func FromFlat(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("matrix: flat buffer %d != %d×%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// Identity returns the n×n identity.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*out.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Mul returns a*b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("%w: %d×%d · %d×%d", ErrShape, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if m.Cols != len(x) {
		return nil, fmt.Errorf("%w: %d×%d · vec(%d)", ErrShape, m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Scale multiplies every element by alpha in place and returns m.
func (m *Matrix) Scale(alpha float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= alpha
	}
	return m
}

// Add returns a+b.
func Add(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, ErrShape
	}
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out, nil
}

// Sub returns a-b.
func Sub(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, ErrShape
	}
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out, nil
}

// MaxAbs returns the largest absolute entry.
func (m *Matrix) MaxAbs() float64 {
	var s float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// FrobeniusNorm returns sqrt(sum of squared entries).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// SolveLU solves A·x = b for square A using Gaussian elimination with
// partial pivoting. A and b are not modified.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("%w: SolveLU needs square matrix, got %d×%d", ErrShape, a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("%w: rhs length %d != %d", ErrShape, len(b), n)
	}
	// Working copies.
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, pmax := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > pmax {
				pivot, pmax = r, v
			}
		}
		if pmax == 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			pr, cr := m.Row(pivot), m.Row(col)
			for j := 0; j < n; j++ {
				pr[j], cr[j] = cr[j], pr[j]
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			rr, cr := m.Row(r), m.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * cr[j]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := m.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Inverse returns A⁻¹ via Gauss-Jordan with partial pivoting.
func Inverse(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("%w: Inverse needs square matrix", ErrShape)
	}
	m := a.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		pivot, pmax := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > pmax {
				pivot, pmax = r, v
			}
		}
		if pmax == 0 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(m, pivot, col)
			swapRows(inv, pivot, col)
		}
		d := 1 / m.At(col, col)
		scaleRow(m, col, d)
		scaleRow(inv, col, d)
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m.At(r, col)
			if f == 0 {
				continue
			}
			axpyRow(m, r, col, -f)
			axpyRow(inv, r, col, -f)
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for j := range ra {
		ra[j], rb[j] = rb[j], ra[j]
	}
}

func scaleRow(m *Matrix, r int, f float64) {
	row := m.Row(r)
	for j := range row {
		row[j] *= f
	}
}

func axpyRow(m *Matrix, dst, src int, f float64) {
	d, s := m.Row(dst), m.Row(src)
	for j := range d {
		d[j] += f * s[j]
	}
}

// Cholesky returns the lower-triangular L with A = L·Lᵀ for a symmetric
// positive-definite A, or ErrSingular when A is not positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("%w: Cholesky needs square matrix", ErrShape)
	}
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A·x = b using a precomputed Cholesky factor L.
func SolveCholesky(l *Matrix, b []float64) ([]float64, error) {
	n := l.Rows
	if len(b) != n {
		return nil, ErrShape
	}
	// Forward: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}
