package igd

import (
	"errors"
	"math"
	"testing"

	"madlib/internal/datagen"
	"madlib/internal/engine"
)

func loadMargin(t *testing.T, db *engine.DB, seed int64, n, k int) *engine.Table {
	t.Helper()
	tbl, err := datagen.NewMargin(seed, n, k, 0.4).Load(db, "d")
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func loadRatings(t *testing.T, db *engine.DB, seed int64, rows, cols, rank, count int) *engine.Table {
	t.Helper()
	tbl, err := db.CreateTable("r", engine.Schema{
		{Name: "i", Kind: engine.Int},
		{Name: "j", Kind: engine.Int},
		{Name: "v", Kind: engine.Float},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range datagen.NewRatings(seed, rows, cols, rank, count, 0.05).Entries {
		if err := tbl.Insert(int64(e.I), int64(e.J), e.Value); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func wantBitwise(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %v, want %v (bitwise)", name, i, got[i], want[i])
		}
	}
}

// TestVectorizedMatchesRowLane is the core differential test: the
// vectorized gather lane and the boxed row lane execute the same
// floating-point operations in the same order, so their models and loss
// histories must match bit for bit — identity morsel order and seeded
// shuffle, single replica and a replica pool.
func TestVectorizedMatchesRowLane(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"SingleReplica", Options{StepSize: 0.1, Epochs: 4, Replicas: 1}},
		{"ReplicaPool", Options{StepSize: 0.1, Epochs: 4, Replicas: 3}},
		{"SeededShuffle", Options{StepSize: 0.1, Epochs: 4, Replicas: 3, Seed: 99}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db := engine.Open(4)
			tbl := loadMargin(t, db, 11, 3000, 4)
			feat := VectorFeatures(0, 1)
			vec, err := Train(db, tbl, feat, Logistic{K: 4}, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			row, err := TrainRowLane(db, tbl, feat, Logistic{K: 4}, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			wantBitwise(t, "Weights", vec.Weights, row.Weights)
			wantBitwise(t, "LossHistory", vec.LossHistory, row.LossHistory)
			if vec.NumRows != row.NumRows || vec.Epochs != row.Epochs {
				t.Fatalf("rows/epochs %d/%d, row lane %d/%d", vec.NumRows, vec.Epochs, row.NumRows, row.Epochs)
			}
		})
	}
}

// TestColumnFeaturesMatchesRowLane runs the differential check over the
// scalar-column gather shape (factorization's (i, j) layout), including
// the Int→Float lane conversion.
func TestColumnFeaturesMatchesRowLane(t *testing.T) {
	db := engine.Open(4)
	tbl := loadRatings(t, db, 5, 20, 15, 2, 2500)
	feat := ColumnFeatures(2, 0, 1)
	loss := Factorization{Rows: 20, Cols: 15, Rank: 2, Mu: 0.01}
	opts := Options{StepSize: 0.05, Epochs: 3, Replicas: 2, Seed: 3, Start: loss.InitWeights(0.5)}
	vec, err := Train(db, tbl, feat, loss, opts)
	if err != nil {
		t.Fatal(err)
	}
	row, err := TrainRowLane(db, tbl, feat, loss, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantBitwise(t, "Weights", vec.Weights, row.Weights)
	wantBitwise(t, "LossHistory", vec.LossHistory, row.LossHistory)
}

// TestDeterministicAcrossRuns: the replica partition is static over the
// seeded morsel permutation, so repeated runs on the engine worker pool
// are bit-identical — the schedule depends on (table shape, seed,
// epoch), never on which worker picks up which replica.
func TestDeterministicAcrossRuns(t *testing.T) {
	db := engine.Open(4)
	tbl := loadMargin(t, db, 21, 4000, 5)
	opts := Options{StepSize: 0.1, Epochs: 5, Seed: 7}
	first, err := Train(db, tbl, VectorFeatures(0, 1), Logistic{K: 5}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		again, err := Train(db, tbl, VectorFeatures(0, 1), Logistic{K: 5}, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantBitwise(t, "Weights", again.Weights, first.Weights)
		wantBitwise(t, "LossHistory", again.LossHistory, first.LossHistory)
	}
}

// TestStatisticalParityAcrossReplicas: averaged parallel replicas and a
// single sequential chain are different optimizers step-for-step, but
// both must land near the same optimum of the same convex objective.
func TestStatisticalParityAcrossReplicas(t *testing.T) {
	db := engine.Open(4)
	// Noisy labels keep the optimum loss bounded away from zero, so the
	// relative objective comparison is meaningful (separable data would
	// drive both losses to ~0 and the ratio to noise).
	tbl, err := datagen.NewLogistic(31, 6000, 4).Load(db, "d")
	if err != nil {
		t.Fatal(err)
	}
	feat := VectorFeatures(0, 1)
	serial, err := Train(db, tbl, feat, Logistic{K: 4}, Options{StepSize: 0.1, Epochs: 20, Replicas: 1})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Train(db, tbl, feat, Logistic{K: 4}, Options{StepSize: 0.1, Epochs: 20, Replicas: 4})
	if err != nil {
		t.Fatal(err)
	}
	serialLoss, err := Evaluate(db, tbl, feat, Logistic{K: 4}, serial.Weights)
	if err != nil {
		t.Fatal(err)
	}
	pooledLoss, err := Evaluate(db, tbl, feat, Logistic{K: 4}, pooled.Weights)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(serialLoss-pooledLoss) / serialLoss; rel > 0.05 {
		t.Fatalf("objective gap %.1f%%: serial %v vs pooled %v", rel*100, serialLoss, pooledLoss)
	}
	var dist2, norm2 float64
	for i := range serial.Weights {
		d := serial.Weights[i] - pooled.Weights[i]
		dist2 += d * d
		norm2 += serial.Weights[i] * serial.Weights[i]
	}
	if dist2 > 0.05*norm2 {
		t.Fatalf("weight distance² %v vs norm² %v", dist2, norm2)
	}
}

// TestLossMonotone: with a decaying step on a convex objective the
// per-epoch mean loss must fall monotonically (tiny tolerance for the
// averaging merge) and end well below where it started.
func TestLossMonotone(t *testing.T) {
	db := engine.Open(4)
	gen := datagen.NewRegression(41, 4000, 4, 0.05)
	tbl, err := gen.LoadRegression(db, "d")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(db, tbl, VectorFeatures(0, 1), LeastSquares{K: 4}, Options{StepSize: 0.02, Epochs: 12})
	if err != nil {
		t.Fatal(err)
	}
	h := res.LossHistory
	for i := 1; i < len(h); i++ {
		if h[i] > h[i-1]*1.001 {
			t.Fatalf("loss rose at epoch %d: %v → %v (history %v)", i+1, h[i-1], h[i], h)
		}
	}
	if h[len(h)-1] > h[0]/4 {
		t.Fatalf("loss %v → %v did not fall enough", h[0], h[len(h)-1])
	}
}

// countLoss counts examples into w[0]. Each replica chain ends an epoch
// with w[0] = rows it saw, which makes the weighted-averaging merge
// arithmetic exactly predictable from the morsel sizes.
type countLoss struct{ dim int }

func (c countLoss) Dim() int                                      { return c.dim }
func (c countLoss) Step(w, x []float64, y, alpha float64) float64 { w[0]++; return 1 }
func (c countLoss) Objective(w, x []float64, y float64) float64   { return 1 }

// TestMergeWeightedAverage replays Bismarck's merge by hand: replica r
// owns morsels r, r+R, … of the identity order, so its chain ends with
// w[0] = nᵣ and the merged model must equal the left-to-right weighted
// average of those counts, bit for bit.
func TestMergeWeightedAverage(t *testing.T) {
	db := engine.Open(4)
	tbl := loadMargin(t, db, 51, 3000, 2)
	ms := tbl.Morsels()
	const replicas = 3
	if len(ms) < replicas {
		t.Fatalf("need ≥%d morsels, got %d", replicas, len(ms))
	}
	counts := make([]int64, replicas)
	for i, m := range ms {
		counts[i%replicas] += int64(m.Len())
	}
	var merged float64
	var n int64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		if n == 0 {
			merged, n = float64(c), c
			continue
		}
		total := n + c
		merged = float64(n)/float64(total)*merged + float64(c)/float64(total)*float64(c)
		n = total
	}
	res, err := Train(db, tbl, VectorFeatures(0, 1), countLoss{dim: 2}, Options{Epochs: 1, Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[0] != merged {
		t.Fatalf("merged w[0] = %v, want %v (counts %v)", res.Weights[0], merged, counts)
	}
	if res.NumRows != n {
		t.Fatalf("NumRows = %d, want %d", res.NumRows, n)
	}
	if res.LossHistory[0] != 1 {
		t.Fatalf("mean loss = %v, want 1", res.LossHistory[0])
	}
}

// TestMergeNoAveraging: the ablation mode keeps the first non-empty
// replica's chain; rows and losses still combine across replicas.
func TestMergeNoAveraging(t *testing.T) {
	db := engine.Open(4)
	tbl := loadMargin(t, db, 51, 3000, 2)
	ms := tbl.Morsels()
	const replicas = 3
	counts := make([]int64, replicas)
	var total int64
	for i, m := range ms {
		counts[i%replicas] += int64(m.Len())
		total += int64(m.Len())
	}
	res, err := Train(db, tbl, VectorFeatures(0, 1), countLoss{dim: 2},
		Options{Epochs: 1, Replicas: replicas, NoAveraging: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weights[0] != float64(counts[0]) {
		t.Fatalf("w[0] = %v, want first replica's count %d", res.Weights[0], counts[0])
	}
	if res.NumRows != total {
		t.Fatalf("NumRows = %d, want %d", res.NumRows, total)
	}
}

// TestEpochOrder pins the permutation contract: seed zero is the
// identity every epoch; a non-zero seed is a deterministic function of
// (seed, epoch) and reshuffles across epochs.
func TestEpochOrder(t *testing.T) {
	for epoch := 1; epoch <= 3; epoch++ {
		for i, v := range epochOrder(8, 0, epoch) {
			if v != i {
				t.Fatalf("seed 0 epoch %d: order[%d] = %d", epoch, i, v)
			}
		}
	}
	a := epochOrder(64, 7, 1)
	b := epochOrder(64, 7, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same (seed, epoch) disagreed at %d", i)
		}
	}
	c := epochOrder(64, 7, 2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("epochs 1 and 2 produced the same permutation")
	}
}

func TestFeatureValidation(t *testing.T) {
	db := engine.Open(2)
	tbl, err := db.CreateTable("v", engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
		{Name: "s", Kind: engine.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(1.0, []float64{1, 2}, "a"); err != nil {
		t.Fatal(err)
	}
	for name, feat := range map[string]Features{
		"YOutOfRange":    VectorFeatures(9, 1),
		"YWrongKind":     VectorFeatures(2, 1),
		"XNotVector":     VectorFeatures(0, 2),
		"BothShapes":     {Y: 0, XVector: 1, XCols: []int{0}},
		"NoFeatures":     {Y: 0, XVector: -1},
		"XColWrongKind":  ColumnFeatures(0, 2),
		"XColOutOfRange": ColumnFeatures(0, -3),
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := Train(db, tbl, feat, LeastSquares{K: 2}, Options{Epochs: 1}); err == nil {
				t.Fatal("Train accepted invalid Features")
			}
			if _, err := Evaluate(db, tbl, feat, LeastSquares{K: 2}, []float64{0, 0}); err == nil {
				t.Fatal("Evaluate accepted invalid Features")
			}
		})
	}
	if _, err := Train(db, tbl, VectorFeatures(0, 1), LeastSquares{K: 2},
		Options{Epochs: 1, Start: []float64{1, 2, 3}}); err == nil {
		t.Fatal("Train accepted a Start of the wrong dimension")
	}
}

func TestNoData(t *testing.T) {
	db := engine.Open(2)
	tbl, err := db.CreateTable("e", engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(db, tbl, VectorFeatures(0, 1), LeastSquares{K: 2}, Options{Epochs: 1}); !errors.Is(err, ErrNoData) {
		t.Fatalf("Train on empty table: %v, want ErrNoData", err)
	}
	if _, err := Evaluate(db, tbl, VectorFeatures(0, 1), LeastSquares{K: 2}, []float64{0, 0}); !errors.Is(err, ErrNoData) {
		t.Fatalf("Evaluate on empty table: %v, want ErrNoData", err)
	}
}

// TestEvaluateMeanObjective checks Evaluate against a hand-computed mean
// squared error.
func TestEvaluateMeanObjective(t *testing.T) {
	db := engine.Open(2)
	tbl, err := db.CreateTable("m", engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}}
	ys := []float64{1, 2, 4, 5}
	w := []float64{1.5, 2.5}
	var want float64
	for i, x := range xs {
		if err := tbl.Insert(ys[i], x); err != nil {
			t.Fatal(err)
		}
		r := x[0]*w[0] + x[1]*w[1] - ys[i]
		want += r * r
	}
	want /= float64(len(xs))
	got, err := Evaluate(db, tbl, VectorFeatures(0, 1), LeastSquares{K: 2}, w)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Evaluate = %v, want %v", got, want)
	}
}

// TestWarmStartCopies: Train must copy Start, not alias it.
func TestWarmStartCopies(t *testing.T) {
	db := engine.Open(2)
	tbl := loadMargin(t, db, 61, 500, 2)
	start := []float64{0.25, -0.5}
	orig := append([]float64(nil), start...)
	if _, err := Train(db, tbl, VectorFeatures(0, 1), Logistic{K: 2},
		Options{StepSize: 0.1, Epochs: 2, Start: start}); err != nil {
		t.Fatal(err)
	}
	wantBitwise(t, "Start", start, orig)
}

// TestToleranceStopsEarly: a tight tolerance must cut the epoch budget
// short once the loss plateaus, and ≤0 must disable the check.
func TestToleranceStopsEarly(t *testing.T) {
	db := engine.Open(4)
	tbl := loadMargin(t, db, 71, 2000, 3)
	feat := VectorFeatures(0, 1)
	stopped, err := Train(db, tbl, feat, Logistic{K: 3}, Options{StepSize: 0.05, Epochs: 60, Tolerance: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if stopped.Epochs >= 60 {
		t.Fatalf("tolerance did not stop early: ran %d epochs", stopped.Epochs)
	}
	full, err := Train(db, tbl, feat, Logistic{K: 3}, Options{StepSize: 0.05, Epochs: 60, Tolerance: -1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Epochs != 60 {
		t.Fatalf("negative tolerance still stopped early: %d epochs", full.Epochs)
	}
}

// TestTrainMetrics: each run feeds the shared metrics registry —
// train_epochs, train_rows and the train_loss_micro value.
func TestTrainMetrics(t *testing.T) {
	db := engine.Open(4)
	tbl := loadMargin(t, db, 81, 1000, 2)
	stat := func(name string) int64 {
		for _, s := range db.Metrics().Snapshot() {
			if s.Name == name {
				return s.Value
			}
		}
		return 0
	}
	epochs0, rows0, obs0 := stat("train_epochs"), stat("train_rows"), stat("train_loss_micro_count")
	res, err := Train(db, tbl, VectorFeatures(0, 1), Logistic{K: 2}, Options{StepSize: 0.1, Epochs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := stat("train_epochs") - epochs0; got != int64(res.Epochs) {
		t.Fatalf("train_epochs delta %d, want %d", got, res.Epochs)
	}
	wantRows := int64(res.Epochs) * res.NumRows
	if got := stat("train_rows") - rows0; got != wantRows {
		t.Fatalf("train_rows delta %d, want %d", got, wantRows)
	}
	if got := stat("train_loss_micro_count") - obs0; got != int64(res.Epochs) {
		t.Fatalf("train_loss_micro_count delta %d, want %d", got, res.Epochs)
	}
}
