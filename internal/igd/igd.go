// Package igd is the unified incremental-gradient training harness:
// every convex learner in the library (logistic regression's IGD
// solver, SVM, the Table-2 objectives of internal/sgd, low-rank
// factorization) trains through the single epoch loop in this package.
// The design follows "Towards a Unified Architecture for in-RDBMS
// Analytics" (Bismarck): a learner is nothing but a Loss — one
// incremental-gradient step plus an objective over a dense []float64
// model — and the harness supplies everything else:
//
//   - Morsel-parallel epochs on the engine's scan worker pool. Each
//     epoch deals the table's morsels to R model replicas (default: one
//     per segment); each replica chains through its morsels
//     sequentially and the replicas run concurrently via
//     engine.RunTasks. At the epoch boundary the replicas merge by
//     weighted model averaging — Bismarck's merge.
//   - Vectorized gather kernels. Replica chains read rows through
//     typed ColBatch lanes straight off segment storage — Vector
//     columns arrive as zero-copy [][]float64 lanes, scalar feature
//     columns gather into a reusable []float64 scratch — so the inner
//     loop is fused dot/axpy arithmetic with no per-row engine.Row
//     materialization and no `any` boxing.
//   - Seeded per-epoch morsel permutation. With a non-zero Seed the
//     morsel order reshuffles every epoch from a deterministic RNG, so
//     stochastic shuffling survives parallelism: the schedule is a
//     function of (table shape, seed, epoch) only, never of the worker
//     count, and results are bit-identical across GOMAXPROCS settings.
//
// TrainRowLane is the same harness over boxed row-at-a-time access —
// the pre-vectorization lane — kept as the differential-testing oracle
// and benchmark companion: both lanes execute identical floating-point
// operations in identical order, so their models must match bitwise.
package igd

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"madlib/internal/engine"
)

// Loss is the plug-in contract: one convex objective term family over a
// dense model vector. Implementations must be safe for concurrent use
// by multiple replicas (stateless value types are), or implement Cloner
// to give each replica a private instance.
type Loss interface {
	// Dim is the model dimension.
	Dim() int
	// Step folds one example (x, y) into w at step size alpha — the
	// incremental-gradient update, in place — and returns the example's
	// objective value at the pre-update weights.
	Step(w, x []float64, y, alpha float64) float64
	// Objective returns the example's loss at w without updating.
	Objective(w, x []float64, y float64) float64
}

// GradLoss is the gradient-form flavor of Loss, for objectives that are
// naturally written as "objective + accumulate gradient" (the sgd
// package's Table-2 models). FromGrad wraps one into a Loss with the
// standard shrink/step update.
type GradLoss interface {
	// Dim is the model dimension.
	Dim() int
	// LossGrad returns fᵢ(w) for example (x, y) and ADDS ∇fᵢ into grad
	// (the caller zeroes it).
	LossGrad(w, x []float64, y float64, grad []float64) float64
}

// Proximal is implemented by losses with a non-smooth regularizer
// handled by a proximal operator after each gradient step (lasso's L1).
// The harness applies it after every Step and re-applies it to the
// merged model at each epoch boundary, restoring the sparsity pattern
// that weighted averaging blurs.
type Proximal interface {
	Prox(w []float64, alpha float64)
}

// Cloner is implemented by stateful losses (per-replica scratch) so the
// harness can give each replica chain a private instance.
type Cloner interface {
	CloneLoss() Loss
}

// ErrNoData is returned when the table holds no rows.
var ErrNoData = errors.New("igd: no training rows")

// Features describes where a training example's inputs live in the
// table. Exactly one of XVector / XCols provides the feature lane.
type Features struct {
	// Y is the label column (Float or Int kind).
	Y int
	// XVector is a Vector column holding each example's feature vector,
	// or -1 when XCols is used instead. Vector lanes are read zero-copy.
	XVector int
	// XCols lists scalar numeric columns (Float or Int) gathered per
	// row into a reusable x scratch — the factorization shape (i, j).
	XCols []int
}

// VectorFeatures describes the (y, x-vector) layout of the regression
// and classification learners.
func VectorFeatures(y, xVector int) Features {
	return Features{Y: y, XVector: xVector}
}

// ColumnFeatures describes a scalar-column layout: y plus one x scratch
// entry per listed column (factorization's (i, j) indices).
func ColumnFeatures(y int, xCols ...int) Features {
	return Features{Y: y, XVector: -1, XCols: xCols}
}

func (f Features) validate(schema engine.Schema) error {
	check := func(col int, what string, kinds ...engine.Kind) error {
		if col < 0 || col >= len(schema) {
			return fmt.Errorf("igd: %s column %d out of range", what, col)
		}
		for _, k := range kinds {
			if schema[col].Kind == k {
				return nil
			}
		}
		return fmt.Errorf("igd: %s column %q is %s, need %v", what, schema[col].Name, schema[col].Kind, kinds)
	}
	if err := check(f.Y, "label", engine.Float, engine.Int); err != nil {
		return err
	}
	if f.XVector >= 0 {
		if len(f.XCols) > 0 {
			return errors.New("igd: Features sets both XVector and XCols")
		}
		return check(f.XVector, "feature", engine.Vector)
	}
	if len(f.XCols) == 0 {
		return errors.New("igd: Features names no feature columns")
	}
	for _, c := range f.XCols {
		if err := check(c, "feature", engine.Float, engine.Int); err != nil {
			return err
		}
	}
	return nil
}

// Options configure Train.
type Options struct {
	// StepSize is the initial learning rate (default 0.1); the
	// effective rate decays as StepSize/√epoch.
	StepSize float64
	// Epochs bounds data passes (default 50).
	Epochs int
	// Tolerance stops early when the relative per-epoch loss change
	// falls below it; zero or negative disables the check.
	Tolerance float64
	// Seed drives the per-epoch morsel permutation. Zero keeps the
	// table's (segment, offset) morsel order every epoch — the legacy
	// schedule — so existing learners stay reproducible.
	Seed int64
	// Replicas is the number of model replicas per epoch (default: the
	// database's segment count, Bismarck's one-model-per-segment). The
	// replica partition is static, so results do not depend on the
	// worker count.
	Replicas int
	// NoAveraging keeps the first replica's chain at merge time instead
	// of averaging (losses still combine) — the ablation mode.
	NoAveraging bool
	// Start optionally warm-starts the model (copied); nil starts at
	// zero.
	Start []float64
}

func (o *Options) defaults() {
	if o.StepSize == 0 {
		o.StepSize = 0.1
	}
	if o.Epochs == 0 {
		o.Epochs = 50
	}
}

// Result reports a training run.
type Result struct {
	// Weights is the trained model.
	Weights []float64
	// LossHistory is the mean per-example loss of each epoch, measured
	// at the pre-update weights as the chains scan.
	LossHistory []float64
	// Epochs is the number of epochs run.
	Epochs int
	// NumRows is the number of examples per epoch.
	NumRows int64
}

// chain is one replica's state: a private model, loss accumulator and
// gather scratch, reused across epochs.
type chain struct {
	feat    Features
	loss    Loss
	prox    Proximal
	hasProx bool

	w       []float64
	lossSum float64
	n       int64

	x    []float64   // per-row scratch for the XCols shape
	conv [][]float64 // per-lane Int→Float conversion scratch; conv[0] is y
}

func newChain(feat Features, loss Loss, dim int) *chain {
	c := &chain{feat: feat, loss: loss, w: make([]float64, dim)}
	if cl, ok := loss.(Cloner); ok {
		c.loss = cl.CloneLoss()
	}
	c.prox, c.hasProx = c.loss.(Proximal)
	c.conv = make([][]float64, 1+len(feat.XCols))
	if feat.XVector < 0 {
		c.x = make([]float64, len(feat.XCols))
	}
	return c
}

func (c *chain) reset(w0 []float64) {
	copy(c.w, w0)
	c.lossSum = 0
	c.n = 0
}

// floatLane returns column col of b as a float64 lane: Float columns
// zero-copy, Int columns converted into the reusable scratch slot.
func (c *chain) floatLane(b engine.ColBatch, col, slot int, kind engine.Kind) []float64 {
	if kind == engine.Float {
		return b.Floats(col)
	}
	ints := b.Ints(col)
	lane := c.conv[slot]
	if cap(lane) < len(ints) {
		lane = make([]float64, engine.BatchSize)
		c.conv[slot] = lane
	}
	lane = lane[:len(ints)]
	for i, v := range ints {
		lane[i] = float64(v)
	}
	return lane
}

// runMorsel folds one morsel into the chain through the vectorized
// gather kernels: typed lanes off segment storage, fused Step updates,
// no row boxing.
func (c *chain) runMorsel(schema engine.Schema, m engine.Morsel, alpha float64) error {
	yKind := schema[c.feat.Y].Kind
	return m.ForEachBatch(func(b engine.ColBatch) error {
		ys := c.floatLane(b, c.feat.Y, 0, yKind)
		if c.feat.XVector >= 0 {
			xs := b.Vectors(c.feat.XVector)
			loss, w := c.loss, c.w
			if c.hasProx {
				for i, y := range ys {
					c.lossSum += loss.Step(w, xs[i], y, alpha)
					c.prox.Prox(w, alpha)
				}
			} else {
				for i, y := range ys {
					c.lossSum += loss.Step(w, xs[i], y, alpha)
				}
			}
			c.n += int64(len(ys))
			return nil
		}
		lanes := c.conv[1 : 1+len(c.feat.XCols)]
		for j, col := range c.feat.XCols {
			lanes[j] = c.floatLane(b, col, 1+j, schema[col].Kind)
		}
		for i, y := range ys {
			for j := range lanes {
				c.x[j] = lanes[j][i]
			}
			c.lossSum += c.loss.Step(c.w, c.x, y, alpha)
			if c.hasProx {
				c.prox.Prox(c.w, alpha)
			}
		}
		c.n += int64(len(ys))
		return nil
	})
}

// boxedExample is the row lane's per-row example, boxed through `any`
// exactly as the pre-harness learners boxed LabeledExample /
// RatingExample.
type boxedExample struct {
	x []float64
	y float64
}

// runMorselRows is runMorsel over the pre-harness access path: every
// row drives a FuncAggregate-style transition through the Aggregate
// interface — the state arrives as `any` and is type-asserted back, the
// extractor closure boxes the example through `any`, and the example is
// asserted out — the exact per-row machinery db.Run executed before the
// harness existed. The arithmetic (Loss.Step on the same operands in
// the same order) is identical to the vectorized lane, so models match
// bitwise; only the access path differs.
func (c *chain) runMorselRows(schema engine.Schema, m engine.Morsel, alpha float64) error {
	extract := c.rowExtractor(schema)
	var agg engine.Aggregate = engine.FuncAggregate{
		TransitionFn: func(s any, r engine.Row) any {
			st := s.(*chain)
			bx := extract(r).(boxedExample)
			st.lossSum += st.loss.Step(st.w, bx.x, bx.y, alpha)
			if st.hasProx {
				st.prox.Prox(st.w, alpha)
			}
			st.n++
			return st
		},
	}
	var s any = c
	for i, n := 0, m.Len(); i < n; i++ {
		s = agg.Transition(s, m.Row(i))
	}
	return nil
}

func (c *chain) rowExtractor(schema engine.Schema) func(engine.Row) any {
	yFloat := schema[c.feat.Y].Kind == engine.Float
	yOf := func(r engine.Row) float64 {
		if yFloat {
			return r.Float(c.feat.Y)
		}
		return float64(r.Int(c.feat.Y))
	}
	if c.feat.XVector >= 0 {
		xv := c.feat.XVector
		return func(r engine.Row) any {
			return boxedExample{x: r.Vector(xv), y: yOf(r)}
		}
	}
	cols := c.feat.XCols
	floats := make([]bool, len(cols))
	for j, col := range cols {
		floats[j] = schema[col].Kind == engine.Float
	}
	return func(r engine.Row) any {
		for j, col := range cols {
			if floats[j] {
				c.x[j] = r.Float(col)
			} else {
				c.x[j] = float64(r.Int(col))
			}
		}
		return boxedExample{x: c.x, y: yOf(r)}
	}
}

// epochOrder returns the morsel visit order for one epoch: the identity
// order when seed is zero, otherwise a deterministic permutation drawn
// from (seed, epoch) — independent of worker count and GOMAXPROCS.
func epochOrder(n int, seed int64, epoch int) []int {
	if seed == 0 {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order
	}
	rng := rand.New(rand.NewSource(seed + int64(epoch)*1_000_003))
	return rng.Perm(n)
}

// Train runs morsel-parallel incremental-gradient descent over the
// table through the vectorized gather lane.
func Train(db *engine.DB, t *engine.Table, feat Features, loss Loss, opts Options) (*Result, error) {
	return train(db, t, feat, loss, opts, false)
}

// TrainRowLane is Train over the boxed row-at-a-time access path. It
// exists as the differential-testing oracle and benchmark companion for
// the vectorized lane; new callers should use Train.
func TrainRowLane(db *engine.DB, t *engine.Table, feat Features, loss Loss, opts Options) (*Result, error) {
	return train(db, t, feat, loss, opts, true)
}

func train(db *engine.DB, t *engine.Table, feat Features, loss Loss, opts Options, rowLane bool) (*Result, error) {
	opts.defaults()
	dim := loss.Dim()
	if dim <= 0 {
		return nil, fmt.Errorf("igd: model dimension %d", dim)
	}
	schema := t.Schema()
	if err := feat.validate(schema); err != nil {
		return nil, err
	}
	res := &Result{Weights: make([]float64, dim)}
	if opts.Start != nil {
		if len(opts.Start) != dim {
			return nil, fmt.Errorf("igd: Start has %d weights, model needs %d", len(opts.Start), dim)
		}
		copy(res.Weights, opts.Start)
	}
	ms := t.Morsels()
	replicas := opts.Replicas
	if replicas <= 0 {
		replicas = db.SegmentCount()
	}
	if replicas > len(ms) {
		replicas = len(ms)
	}
	if replicas < 1 {
		replicas = 1
	}
	chains := make([]*chain, replicas)
	for r := range chains {
		chains[r] = newChain(feat, loss, dim)
	}
	_, hasProx := chains[0].loss.(Proximal)
	reg := db.Metrics()
	trainEpochs := reg.Counter("train_epochs")
	trainRows := reg.Counter("train_rows")
	trainLoss := reg.Value("train_loss_micro")

	for epoch := 1; epoch <= opts.Epochs; epoch++ {
		alpha := opts.StepSize / math.Sqrt(float64(epoch))
		order := epochOrder(len(ms), opts.Seed, epoch)
		w0 := append([]float64(nil), res.Weights...)
		for _, c := range chains {
			c.reset(w0)
		}
		err := db.RunTasks(t, replicas, func(r int) error {
			c := chains[r]
			for i := r; i < len(order); i += replicas {
				m := ms[order[i]]
				var err error
				if rowLane {
					err = c.runMorselRows(schema, m, alpha)
				} else {
					err = c.runMorsel(schema, m, alpha)
				}
				if err != nil {
					return err
				}
				db.AddRowsScanned(int64(m.Len()))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Bismarck's merge: weighted model averaging by rows seen,
		// folded left-to-right in replica order (replica r holds morsels
		// r, r+R, ... of the epoch's order, so the merge tree is
		// deterministic). Empty replicas contribute nothing.
		var merged []float64
		var n int64
		lossSum := 0.0
		for _, c := range chains {
			lossSum += c.lossSum
			if c.n == 0 {
				continue
			}
			if merged == nil {
				merged = c.w
				n = c.n
				continue
			}
			if opts.NoAveraging {
				n += c.n
				continue
			}
			total := n + c.n
			wa := float64(n) / float64(total)
			wb := float64(c.n) / float64(total)
			for i := range merged {
				merged[i] = wa*merged[i] + wb*c.w[i]
			}
			n = total
		}
		if n == 0 {
			return nil, ErrNoData
		}
		if hasProx {
			// Averaging blends exact zeros into small residuals;
			// re-applying the proximal operator restores the sparsity
			// pattern at each epoch boundary.
			chains[0].prox.Prox(merged, alpha)
		}
		copy(res.Weights, merged)
		res.NumRows = n
		res.Epochs = epoch
		meanLoss := lossSum / float64(n)
		res.LossHistory = append(res.LossHistory, meanLoss)
		trainEpochs.Inc()
		trainRows.Add(n)
		trainLoss.Observe(int64(meanLoss * 1e6))
		if opts.Tolerance > 0 && epoch >= 2 {
			prev := res.LossHistory[epoch-2]
			if math.Abs(prev-meanLoss) < opts.Tolerance*(math.Abs(prev)+1e-12) {
				break
			}
		}
	}
	return res, nil
}

// Evaluate returns the mean per-example objective of weights w over the
// table without updating them, through the same vectorized gather lane
// as Train (one batched engine query).
func Evaluate(db *engine.DB, t *engine.Table, feat Features, loss Loss, w []float64) (float64, error) {
	schema := t.Schema()
	if err := feat.validate(schema); err != nil {
		return 0, err
	}
	type evalState struct {
		c    *chain
		sum  float64
		n    int64
		wref []float64
	}
	v, err := db.RunBatched(t,
		func(int) any {
			return &evalState{c: newChain(feat, loss, len(w)), wref: w}
		},
		func(state any, b engine.ColBatch) error {
			st := state.(*evalState)
			c := st.c
			ys := c.floatLane(b, c.feat.Y, 0, schema[c.feat.Y].Kind)
			if c.feat.XVector >= 0 {
				xs := b.Vectors(c.feat.XVector)
				for i, y := range ys {
					st.sum += c.loss.Objective(st.wref, xs[i], y)
				}
			} else {
				lanes := c.conv[1 : 1+len(c.feat.XCols)]
				for j, col := range c.feat.XCols {
					lanes[j] = c.floatLane(b, col, 1+j, schema[col].Kind)
				}
				for i, y := range ys {
					for j := range lanes {
						c.x[j] = lanes[j][i]
					}
					st.sum += c.loss.Objective(st.wref, c.x, y)
				}
			}
			st.n += int64(len(ys))
			return nil
		},
		func(a, b any) any {
			sa, sb := a.(*evalState), b.(*evalState)
			sa.sum += sb.sum
			sa.n += sb.n
			return sa
		},
	)
	if err != nil {
		return 0, err
	}
	st := v.(*evalState)
	if st.n == 0 {
		return 0, ErrNoData
	}
	return st.sum / float64(st.n), nil
}
