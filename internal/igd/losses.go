package igd

import (
	"math"

	"madlib/internal/array"
)

// signOf maps a label to the ±1 convention: y > 0 is the positive
// class, so both ±1 and 0/1 encodings work.
func signOf(y float64) float64 {
	if y > 0 {
		return 1
	}
	return -1
}

// Logistic is the logistic-regression plug-in: Σ log(1 + exp(−y·xᵀw))
// with y interpreted through signOf (±1 or 0/1 labels).
type Logistic struct {
	// K is the feature dimension.
	K int
}

// Dim implements Loss.
func (l Logistic) Dim() int { return l.K }

// Step implements Loss. One exp serves both the gradient factor
// σ(−z) = 1/(1+eᶻ) and the loss log(1+e⁻ᶻ) = log1p(1/eᶻ).
func (l Logistic) Step(w, x []float64, y, alpha float64) float64 {
	s := signOf(y)
	z := s * array.Dot(w, x)
	ez := math.Exp(z)
	// d/dw log(1+e^{−z}) = −y·σ(−z)·x, so the step adds α·y·σ(−z)·x.
	array.Axpy(alpha*s/(1+ez), x, w)
	if z > 0 {
		return math.Log1p(1 / ez)
	}
	return -z + math.Log1p(ez)
}

// Objective implements Loss.
func (l Logistic) Objective(w, x []float64, y float64) float64 {
	return logisticLoss(signOf(y) * array.Dot(w, x))
}

// logisticLoss is log(1+e^{−z}) computed in the overflow-safe branch.
func logisticLoss(z float64) float64 {
	if z > 0 {
		return math.Log1p(math.Exp(-z))
	}
	return -z + math.Log1p(math.Exp(z))
}

// LeastSquares is the squared-loss plug-in: Σ (xᵀw − y)².
type LeastSquares struct {
	// K is the feature dimension.
	K int
}

// Dim implements Loss.
func (l LeastSquares) Dim() int { return l.K }

// Step implements Loss.
func (l LeastSquares) Step(w, x []float64, y, alpha float64) float64 {
	r := array.Dot(w, x) - y
	array.Axpy(-2*alpha*r, x, w)
	return r * r
}

// Objective implements Loss.
func (l LeastSquares) Objective(w, x []float64, y float64) float64 {
	r := array.Dot(w, x) - y
	return r * r
}

// Hinge is the SVM classification plug-in: Σ (1 − y·xᵀw)₊ with
// per-step L2 shrinkage λ (MADlib's online SVM update). Labels go
// through signOf.
type Hinge struct {
	// K is the feature dimension.
	K int
	// Lambda is the L2 shrinkage strength (0 disables).
	Lambda float64
}

// Dim implements Loss.
func (h Hinge) Dim() int { return h.K }

// Step implements Loss.
func (h Hinge) Step(w, x []float64, y, alpha float64) float64 {
	if h.Lambda != 0 {
		array.Scale(1-alpha*h.Lambda, w)
	}
	s := signOf(y)
	if margin := s * array.Dot(w, x); margin < 1 {
		array.Axpy(alpha*s, x, w)
		return 1 - margin
	}
	return 0
}

// Objective implements Loss.
func (h Hinge) Objective(w, x []float64, y float64) float64 {
	if margin := signOf(y) * array.Dot(w, x); margin < 1 {
		return 1 - margin
	}
	return 0
}

// Factorization is the low-rank matrix-factorization plug-in:
// Σ (LᵢᵀRⱼ − Mᵢⱼ)² + μ(‖Lᵢ‖² + ‖Rⱼ‖²) over observed cells. The model
// packs L (Rows×Rank) followed by R (Cols×Rank); examples arrive
// through the ColumnFeatures shape with x = (i, j) and y = Mᵢⱼ. Only
// the two touched factor rows receive gradient mass, so one Step is
// O(Rank), not O(Dim).
type Factorization struct {
	Rows, Cols, Rank int
	// Mu is the Frobenius regularization weight.
	Mu float64
}

// Dim implements Loss.
func (f Factorization) Dim() int { return (f.Rows + f.Cols) * f.Rank }

func (f Factorization) factors(w []float64, x []float64) (li, rj []float64) {
	i, j := int(x[0]), int(x[1])
	off := f.Rows * f.Rank
	return w[i*f.Rank : (i+1)*f.Rank], w[off+j*f.Rank : off+(j+1)*f.Rank]
}

// Step implements Loss.
func (f Factorization) Step(w, x []float64, y, alpha float64) float64 {
	li, rj := f.factors(w, x)
	e := array.Dot(li, rj) - y
	reg := f.Mu * (array.Dot(li, li) + array.Dot(rj, rj))
	for k := 0; k < f.Rank; k++ {
		lk, rk := li[k], rj[k]
		li[k] = lk - alpha*(2*e*rk+2*f.Mu*lk)
		rj[k] = rk - alpha*(2*e*lk+2*f.Mu*rk)
	}
	return e*e + reg
}

// Objective implements Loss.
func (f Factorization) Objective(w, x []float64, y float64) float64 {
	li, rj := f.factors(w, x)
	e := array.Dot(li, rj) - y
	return e*e + f.Mu*(array.Dot(li, li)+array.Dot(rj, rj))
}

// InitWeights returns small deterministic low-discrepancy factors so
// training does not start at the saddle point w = 0.
func (f Factorization) InitWeights(scale float64) []float64 {
	w := make([]float64, f.Dim())
	x := 0.5
	for i := range w {
		x = math.Mod(x*9301.0+49297.0, 233280.0)
		w[i] = scale * (x/233280.0 - 0.5)
	}
	return w
}

// gradAdapter wraps a GradLoss into a Loss with the standard update:
// zero the scratch gradient, evaluate loss+gradient at the current
// weights, apply L2 shrinkage, then take the gradient step — the exact
// operation order of the pre-harness sgd loop, so refactored learners
// reproduce their legacy models bit for bit.
type gradAdapter struct {
	g    GradLoss
	l2   float64
	grad []float64
}

// FromGrad adapts a gradient-form loss (plus optional per-step L2
// shrinkage) to the Step form. The returned Loss carries per-instance
// scratch and implements Cloner, so each replica gets a private copy;
// if g implements Proximal, the adapter forwards it.
func FromGrad(g GradLoss, l2 float64) Loss {
	a := &gradAdapter{g: g, l2: l2, grad: make([]float64, g.Dim())}
	if p, ok := g.(Proximal); ok {
		return &gradProxAdapter{gradAdapter: a, p: p}
	}
	return a
}

// Dim implements Loss.
func (a *gradAdapter) Dim() int { return a.g.Dim() }

// Step implements Loss.
func (a *gradAdapter) Step(w, x []float64, y, alpha float64) float64 {
	for i := range a.grad {
		a.grad[i] = 0
	}
	loss := a.g.LossGrad(w, x, y, a.grad)
	if a.l2 > 0 {
		shrink := 1 - alpha*a.l2
		if shrink < 0 {
			shrink = 0
		}
		for i := range w {
			w[i] *= shrink
		}
	}
	for i := range w {
		w[i] -= alpha * a.grad[i]
	}
	return loss
}

// Objective implements Loss (the gradient is computed and discarded).
func (a *gradAdapter) Objective(w, x []float64, y float64) float64 {
	for i := range a.grad {
		a.grad[i] = 0
	}
	return a.g.LossGrad(w, x, y, a.grad)
}

// CloneLoss implements Cloner: a fresh adapter with private scratch.
func (a *gradAdapter) CloneLoss() Loss { return FromGrad(a.g, a.l2) }

// gradProxAdapter is gradAdapter for losses with a proximal operator.
type gradProxAdapter struct {
	*gradAdapter
	p Proximal
}

// Prox implements Proximal.
func (a *gradProxAdapter) Prox(w []float64, alpha float64) { a.p.Prox(w, alpha) }

// CloneLoss implements Cloner.
func (a *gradProxAdapter) CloneLoss() Loss { return FromGrad(a.g, a.l2) }
