// Package svdmf implements MADlib's "SVD Matrix Factorization" module
// (Table 1): low-rank factorization of a sparsely observed matrix by
// incremental gradient descent, the same algorithm MADlib v0.3 shipped
// under that name (it is not a true singular value decomposition — for
// that, see internal/matrix.SVD). The optimization runs on the convex-
// programming framework of internal/sgd, making it also the working
// "Recommendation" entry of Table 2.
package svdmf

import (
	"errors"
	"fmt"
	"math"

	"madlib/internal/core"
	"madlib/internal/engine"
	"madlib/internal/sgd"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "svdmf", Title: "SVD Matrix Factorization", Category: core.Unsupervised})
}

// ErrNoData is returned for empty ratings tables.
var ErrNoData = errors.New("svdmf: no rating cells")

// Options configure Factorize.
type Options struct {
	// Rank is the factorization rank (required).
	Rank int
	// Mu is the Frobenius regularization weight (default 1e-4).
	Mu float64
	// StepSize is the initial IGD rate (default 0.05).
	StepSize float64
	// MaxPasses bounds data passes (default 100).
	MaxPasses int
	// Tolerance stops on relative loss stability (default 1e-5).
	Tolerance float64
}

// Model is a trained factorization.
type Model struct {
	// Rows and Cols are the matrix dimensions inferred from the data.
	Rows, Cols int
	// Rank is the factorization rank.
	Rank int
	// RMSE is the final root-mean-squared error over observed cells.
	RMSE float64
	// Passes is the number of IGD passes run.
	Passes int

	weights []float64
	lowRank sgd.LowRank
}

// Factorize learns factors from a table with (i Int, j Int, v Float)
// columns naming one observed cell per row.
func Factorize(db *engine.DB, table *engine.Table, iCol, jCol, vCol string, opts Options) (*Model, error) {
	if opts.Rank < 1 {
		return nil, errors.New("svdmf: Rank must be at least 1")
	}
	if opts.Mu == 0 {
		opts.Mu = 1e-4
	}
	if opts.StepSize == 0 {
		opts.StepSize = 0.05
	}
	if opts.MaxPasses == 0 {
		opts.MaxPasses = 100
	}
	if opts.Tolerance == 0 {
		opts.Tolerance = 1e-5
	}
	schema := table.Schema()
	ii, ji, vi := schema.Index(iCol), schema.Index(jCol), schema.Index(vCol)
	if ii < 0 || ji < 0 || vi < 0 {
		return nil, fmt.Errorf("%w: %q, %q or %q", engine.ErrNoColumn, iCol, jCol, vCol)
	}
	if schema[ii].Kind != engine.Int || schema[ji].Kind != engine.Int || schema[vi].Kind != engine.Float {
		return nil, errors.New("svdmf: need (Int, Int, Float) columns")
	}
	// Probe matrix dimensions with one aggregate.
	type dims struct{ maxI, maxJ, n int64 }
	dv, err := db.Run(table, engine.FuncAggregate{
		InitFn: func() any { return dims{maxI: -1, maxJ: -1} },
		TransitionFn: func(s any, row engine.Row) any {
			d := s.(dims)
			if i := row.Int(ii); i > d.maxI {
				d.maxI = i
			}
			if j := row.Int(ji); j > d.maxJ {
				d.maxJ = j
			}
			d.n++
			return d
		},
		MergeFn: func(a, b any) any {
			da, db := a.(dims), b.(dims)
			if db.maxI > da.maxI {
				da.maxI = db.maxI
			}
			if db.maxJ > da.maxJ {
				da.maxJ = db.maxJ
			}
			da.n += db.n
			return da
		},
		FinalFn: func(s any) (any, error) { return s, nil },
	})
	if err != nil {
		return nil, err
	}
	d := dv.(dims)
	if d.n == 0 {
		return nil, ErrNoData
	}
	lr := sgd.LowRank{Rows: int(d.maxI) + 1, Cols: int(d.maxJ) + 1, Rank: opts.Rank, Mu: opts.Mu}
	res, err := sgd.TrainLowRank(db, table, sgd.ExtractRating(ii, ji, vi), lr, sgd.Options{
		StepSize:  opts.StepSize,
		MaxPasses: opts.MaxPasses,
		Tolerance: opts.Tolerance,
	})
	if err != nil {
		return nil, err
	}
	m := &Model{Rows: lr.Rows, Cols: lr.Cols, Rank: opts.Rank, Passes: res.Passes, weights: res.Weights, lowRank: lr}
	// Final RMSE over the observed cells, via one more aggregate.
	mse, err := sgd.MeanLoss(db, table, sgd.ExtractRating(ii, ji, vi), noRegModel{lr}, res.Weights)
	if err != nil {
		return nil, err
	}
	m.RMSE = math.Sqrt(mse)
	return m, nil
}

// noRegModel evaluates the squared error without the regularization term,
// so RMSE reflects reconstruction only.
type noRegModel struct{ lr sgd.LowRank }

func (n noRegModel) Dim() int { return n.lr.Dim() }

// LossGrad implements igd.GradLoss so evaluation runs on the vectorized
// lane; the gradient is never consumed (MeanLoss discards it).
func (n noRegModel) LossGrad(w, x []float64, y float64, grad []float64) float64 {
	d := n.lr.Predict(w, int(x[0]), int(x[1])) - y
	return d * d
}

func (n noRegModel) LossAndGrad(w []float64, ex any, grad []float64) float64 {
	r := ex.(sgd.RatingExample)
	return n.LossGrad(w, []float64{float64(r.I), float64(r.J)}, r.Value, grad)
}

// Predict returns the reconstructed cell (i, j).
func (m *Model) Predict(i, j int) (float64, error) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		return 0, fmt.Errorf("svdmf: cell (%d,%d) outside %d×%d", i, j, m.Rows, m.Cols)
	}
	return m.lowRank.Predict(m.weights, i, j), nil
}

// RowFactor returns the learned factor vector for row i.
func (m *Model) RowFactor(i int) []float64 {
	return m.weights[i*m.Rank : (i+1)*m.Rank]
}

// ColFactor returns the learned factor vector for column j.
func (m *Model) ColFactor(j int) []float64 {
	off := m.Rows * m.Rank
	return m.weights[off+j*m.Rank : off+(j+1)*m.Rank]
}
