package svdmf

import (
	"errors"
	"math"
	"testing"

	"madlib/internal/datagen"
	"madlib/internal/engine"
)

func loadRatings(t *testing.T, db *engine.DB, r *datagen.Ratings) *engine.Table {
	t.Helper()
	tbl, err := db.CreateTable("ratings", engine.Schema{
		{Name: "i", Kind: engine.Int},
		{Name: "j", Kind: engine.Int},
		{Name: "v", Kind: engine.Float},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r.Entries {
		if err := tbl.Insert(int64(e.I), int64(e.J), e.Value); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestFactorizeLowRankMatrix(t *testing.T) {
	db := engine.Open(3)
	ratings := datagen.NewRatings(1, 30, 25, 2, 5000, 0.01)
	tbl := loadRatings(t, db, ratings)
	m, err := Factorize(db, tbl, "i", "j", "v", Options{Rank: 2, MaxPasses: 300, Tolerance: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 30 || m.Cols != 25 {
		t.Fatalf("dims = %d×%d", m.Rows, m.Cols)
	}
	if m.RMSE > 0.15 {
		t.Fatalf("RMSE = %v", m.RMSE)
	}
	// Predictions on observed cells should track the data.
	var worst float64
	for _, e := range ratings.Entries[:200] {
		p, err := m.Predict(e.I, e.J)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(p - e.Value); d > worst {
			worst = d
		}
	}
	if worst > 1.0 {
		t.Fatalf("worst absolute error %v", worst)
	}
}

func TestFactorsHaveRequestedRank(t *testing.T) {
	db := engine.Open(2)
	ratings := datagen.NewRatings(2, 10, 8, 2, 500, 0.05)
	tbl := loadRatings(t, db, ratings)
	m, err := Factorize(db, tbl, "i", "j", "v", Options{Rank: 3, MaxPasses: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.RowFactor(0)) != 3 || len(m.ColFactor(0)) != 3 {
		t.Fatalf("factor lengths %d, %d", len(m.RowFactor(0)), len(m.ColFactor(0)))
	}
}

func TestPredictBounds(t *testing.T) {
	db := engine.Open(2)
	ratings := datagen.NewRatings(3, 5, 5, 1, 100, 0.01)
	tbl := loadRatings(t, db, ratings)
	m, err := Factorize(db, tbl, "i", "j", "v", Options{Rank: 1, MaxPasses: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Predict(5, 0); err == nil {
		t.Fatal("out-of-range row should fail")
	}
	if _, err := m.Predict(0, -1); err == nil {
		t.Fatal("out-of-range col should fail")
	}
}

func TestErrors(t *testing.T) {
	db := engine.Open(2)
	tbl, _ := db.CreateTable("r", engine.Schema{
		{Name: "i", Kind: engine.Int},
		{Name: "j", Kind: engine.Int},
		{Name: "v", Kind: engine.Float},
	})
	if _, err := Factorize(db, tbl, "i", "j", "v", Options{Rank: 2}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	if _, err := Factorize(db, tbl, "i", "j", "v", Options{Rank: 0}); err == nil {
		t.Fatal("Rank=0 should fail")
	}
	if _, err := Factorize(db, tbl, "zz", "j", "v", Options{Rank: 1}); err == nil {
		t.Fatal("missing column should fail")
	}
}
