package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatalf("Counter(%q) returned distinct pointers", "x")
	}
	a.Inc()
	a.Add(4)
	if got := b.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	if a.Name() != "x" {
		t.Fatalf("Name = %q, want x", a.Name())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	h.Observe(3 * time.Nanosecond)
	h.Observe(7 * time.Nanosecond)
	h.Observe(5 * time.Nanosecond)
	if h.Count() != 3 || h.SumNanos() != 15 || h.MaxNanos() != 7 {
		t.Fatalf("count/sum/max = %d/%d/%d, want 3/15/7", h.Count(), h.SumNanos(), h.MaxNanos())
	}
}

func TestSnapshotSortedAndExpanded(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz").Add(2)
	r.Counter("aa").Add(1)
	r.Histogram("mid").Observe(10 * time.Nanosecond)
	snap := r.Snapshot()
	want := []Stat{
		{"aa", 1},
		{"mid_count", 1},
		{"mid_ns_max", 10},
		{"mid_ns_total", 10},
		{"zz", 2},
	}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d entries, want %d: %v", len(snap), len(want), snap)
	}
	for i, w := range want {
		if snap[i] != w {
			t.Fatalf("snapshot[%d] = %+v, want %+v", i, snap[i], w)
		}
	}
}

// TestConcurrentAccess exercises registration and updates from many
// goroutines; run under -race in CI.
func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(time.Duration(i))
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Fatalf("shared = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat").Count(); got != workers*perWorker {
		t.Fatalf("lat count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat").MaxNanos(); got != perWorker-1 {
		t.Fatalf("lat max = %d, want %d", got, perWorker-1)
	}
}
