// Package metrics is a lock-cheap counter and histogram registry for
// engine observability. Counters and histograms are plain atomics —
// incrementing one from a morsel worker costs a single atomic add, so
// instrumentation can sit on the per-query (not per-row) hot paths of
// the engine and the SQL session without perturbing what it measures.
// The registry itself takes a mutex only on name lookup; callers are
// expected to resolve counters once at construction time and hold the
// pointer.
//
// A Registry belongs to one engine database (engine.Open creates one),
// not to the process: tests and embedded applications that open several
// databases observe each in isolation. The SQL layer exposes a
// registry's Snapshot as the madlib_stats_counters system view.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram tracks the count, sum and maximum of observed durations in
// nanoseconds. It keeps no buckets — the engine's consumers (system
// views, bench_check) want totals and worst cases, not quantiles — so
// one observation is two atomic adds and a CAS loop on the max.
type Histogram struct {
	name  string
	count atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumNanos returns the summed observed nanoseconds.
func (h *Histogram) SumNanos() int64 { return h.sum.Load() }

// MaxNanos returns the largest single observation in nanoseconds.
func (h *Histogram) MaxNanos() int64 { return h.max.Load() }

// Value tracks the count, sum and maximum of observed unitless int64
// samples — the dimensionless sibling of Histogram, for quantities that
// are not durations (per-epoch training loss in micro-units, batch
// sizes). Same cost model: two atomic adds and a CAS loop on the max.
type Value struct {
	name  string
	count atomic.Int64
	sum   atomic.Int64
	max   atomic.Int64
}

// Name returns the value summary's registered name.
func (v *Value) Name() string { return v.name }

// Observe records one sample.
func (v *Value) Observe(sample int64) {
	v.count.Add(1)
	v.sum.Add(sample)
	for {
		cur := v.max.Load()
		if sample <= cur || v.max.CompareAndSwap(cur, sample) {
			return
		}
	}
}

// Count returns the number of observations.
func (v *Value) Count() int64 { return v.count.Load() }

// Sum returns the summed samples.
func (v *Value) Sum() int64 { return v.sum.Load() }

// Max returns the largest single sample.
func (v *Value) Max() int64 { return v.max.Load() }

// Stat is one named sample of a Snapshot.
type Stat struct {
	Name  string
	Value int64
}

// Registry is a named collection of counters and histograms. The
// zero value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
	values     map[string]*Value
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
		values:     make(map[string]*Value),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. The returned pointer is stable for the registry's lifetime.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{name: name}
		r.histograms[name] = h
	}
	return h
}

// Value returns the value summary registered under name, creating it
// on first use.
func (r *Registry) Value(name string) *Value {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.values[name]
	if !ok {
		v = &Value{name: name}
		r.values[name] = v
	}
	return v
}

// Snapshot returns every metric as name/value pairs sorted by name.
// Histograms expand into three derived entries: <name>_count,
// <name>_ns_total and <name>_ns_max; value summaries expand into
// <name>_count, <name>_sum and <name>_max. The snapshot is not atomic
// across metrics — each value is an independent atomic load.
func (r *Registry) Snapshot() []Stat {
	r.mu.Lock()
	out := make([]Stat, 0, len(r.counters)+3*len(r.histograms)+3*len(r.values))
	for name, c := range r.counters {
		out = append(out, Stat{Name: name, Value: c.Value()})
	}
	for name, h := range r.histograms {
		out = append(out,
			Stat{Name: name + "_count", Value: h.Count()},
			Stat{Name: name + "_ns_total", Value: h.SumNanos()},
			Stat{Name: name + "_ns_max", Value: h.MaxNanos()},
		)
	}
	for name, v := range r.values {
		out = append(out,
			Stat{Name: name + "_count", Value: v.Count()},
			Stat{Name: name + "_sum", Value: v.Sum()},
			Stat{Name: name + "_max", Value: v.Max()},
		)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
