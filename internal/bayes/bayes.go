// Package bayes implements Naive Bayes classification over categorical
// attributes (Table 1). Training is a pair of grouped aggregate queries —
// class priors and per-(class, attribute, value) counts — so it
// parallelizes exactly like any other UDA; classification applies
// log-space smoothing arithmetic to the collected counts.
package bayes

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"madlib/internal/core"
	"madlib/internal/engine"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "naive_bayes", Title: "Naive Bayes Classification", Category: core.Supervised})
}

// ErrNoData is returned when training sees no rows.
var ErrNoData = errors.New("bayes: no training rows")

// ErrUnknownClass is returned when classification is asked about a class
// never seen in training.
var ErrUnknownClass = errors.New("bayes: unknown class")

// Model is a trained Naive Bayes classifier.
type Model struct {
	// Classes lists class labels in sorted order.
	Classes []string
	// Priors holds P(class), aligned with Classes.
	Priors []float64
	// Attrs is the number of attributes.
	Attrs int
	// Laplace is the smoothing pseudo-count used at prediction time.
	Laplace float64

	classIdx   map[string]int
	classCount []float64
	// counts[class][attr][value] = occurrences.
	counts [][]map[float64]float64
	// distinct[attr] = number of distinct values seen for the attribute
	// (the smoothing denominator's support size).
	distinct []map[float64]bool
	total    float64
}

// Options configure training.
type Options struct {
	// Laplace is the smoothing pseudo-count (default 1).
	Laplace float64
}

// trainState accumulates all counts in one pass.
type trainState struct {
	classCount map[string]float64
	counts     map[string][]map[float64]float64 // class → attr → value → count
	attrs      int
	err        error
}

// Train fits the classifier from a table with a String class column and a
// Vector attributes column holding categorical codes.
func Train(db *engine.DB, table *engine.Table, classCol, attrsCol string, opts Options) (*Model, error) {
	if opts.Laplace == 0 {
		opts.Laplace = 1
	}
	schema := table.Schema()
	ci, ai := schema.Index(classCol), schema.Index(attrsCol)
	if ci < 0 || ai < 0 {
		return nil, fmt.Errorf("%w: %q or %q", engine.ErrNoColumn, classCol, attrsCol)
	}
	if schema[ci].Kind != engine.String || schema[ai].Kind != engine.Vector {
		return nil, fmt.Errorf("bayes: need (%s, %s) columns", engine.String, engine.Vector)
	}
	v, err := db.Run(table, engine.FuncAggregate{
		InitFn: func() any {
			return &trainState{classCount: map[string]float64{}, counts: map[string][]map[float64]float64{}}
		},
		TransitionFn: func(s any, row engine.Row) any {
			st := s.(*trainState)
			if st.err != nil {
				return st
			}
			class := row.Str(ci)
			attrs := row.Vector(ai)
			if st.attrs == 0 {
				st.attrs = len(attrs)
			}
			if len(attrs) != st.attrs {
				st.err = fmt.Errorf("bayes: row has %d attributes, expected %d", len(attrs), st.attrs)
				return st
			}
			st.classCount[class]++
			per := st.counts[class]
			if per == nil {
				per = make([]map[float64]float64, st.attrs)
				for i := range per {
					per[i] = map[float64]float64{}
				}
				st.counts[class] = per
			}
			for i, v := range attrs {
				per[i][v]++
			}
			return st
		},
		MergeFn: func(a, b any) any {
			sa, sb := a.(*trainState), b.(*trainState)
			if sa.err != nil {
				return sa
			}
			if sb.err != nil {
				return sb
			}
			if sa.attrs == 0 {
				return sb
			}
			if sb.attrs != 0 && sb.attrs != sa.attrs {
				sa.err = fmt.Errorf("bayes: segments disagree on attribute count")
				return sa
			}
			for c, n := range sb.classCount {
				sa.classCount[c] += n
			}
			for c, per := range sb.counts {
				dst := sa.counts[c]
				if dst == nil {
					sa.counts[c] = per
					continue
				}
				for i := range per {
					for v, n := range per[i] {
						dst[i][v] += n
					}
				}
			}
			return sa
		},
		FinalFn: func(s any) (any, error) { return s, nil },
	})
	if err != nil {
		return nil, err
	}
	st := v.(*trainState)
	if st.err != nil {
		return nil, st.err
	}
	if len(st.classCount) == 0 {
		return nil, ErrNoData
	}
	m := &Model{Attrs: st.attrs, Laplace: opts.Laplace, classIdx: map[string]int{}}
	for c := range st.classCount {
		m.Classes = append(m.Classes, c)
	}
	sort.Strings(m.Classes)
	m.distinct = make([]map[float64]bool, st.attrs)
	for i := range m.distinct {
		m.distinct[i] = map[float64]bool{}
	}
	for i, c := range m.Classes {
		m.classIdx[c] = i
		m.classCount = append(m.classCount, st.classCount[c])
		m.total += st.classCount[c]
		m.counts = append(m.counts, st.counts[c])
		for a := 0; a < st.attrs; a++ {
			for val := range st.counts[c][a] {
				m.distinct[a][val] = true
			}
		}
	}
	m.Priors = make([]float64, len(m.Classes))
	for i := range m.Classes {
		m.Priors[i] = m.classCount[i] / m.total
	}
	return m, nil
}

// LogPosterior returns the unnormalized log posterior of class given attrs.
func (m *Model) LogPosterior(class string, attrs []float64) (float64, error) {
	ci, ok := m.classIdx[class]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownClass, class)
	}
	if len(attrs) != m.Attrs {
		return 0, fmt.Errorf("bayes: %d attributes, model expects %d", len(attrs), m.Attrs)
	}
	lp := math.Log(m.Priors[ci])
	for a, v := range attrs {
		count := m.counts[ci][a][v]
		support := float64(len(m.distinct[a]))
		if support == 0 {
			support = 1
		}
		p := (count + m.Laplace) / (m.classCount[ci] + m.Laplace*support)
		lp += math.Log(p)
	}
	return lp, nil
}

// Classify returns the most probable class for attrs.
func (m *Model) Classify(attrs []float64) (string, error) {
	best, bestClass := math.Inf(-1), ""
	for _, c := range m.Classes {
		lp, err := m.LogPosterior(c, attrs)
		if err != nil {
			return "", err
		}
		if lp > best {
			best, bestClass = lp, c
		}
	}
	return bestClass, nil
}

// Probabilities returns the normalized posterior distribution over classes.
func (m *Model) Probabilities(attrs []float64) (map[string]float64, error) {
	lps := make([]float64, len(m.Classes))
	maxLp := math.Inf(-1)
	for i, c := range m.Classes {
		lp, err := m.LogPosterior(c, attrs)
		if err != nil {
			return nil, err
		}
		lps[i] = lp
		if lp > maxLp {
			maxLp = lp
		}
	}
	var z float64
	out := make(map[string]float64, len(m.Classes))
	for i := range lps {
		e := math.Exp(lps[i] - maxLp)
		out[m.Classes[i]] = e
		z += e
	}
	for c := range out {
		out[c] /= z
	}
	return out, nil
}
