package bayes

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"madlib/internal/engine"
)

// loadWeather builds the classic play-tennis-style categorical dataset:
// attr0 = outlook (0 sunny, 1 overcast, 2 rain), attr1 = windy (0/1).
func loadWeather(t *testing.T, db *engine.DB) *engine.Table {
	t.Helper()
	tbl, err := db.CreateTable("weather", engine.Schema{
		{Name: "class", Kind: engine.String},
		{Name: "attrs", Kind: engine.Vector},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		class string
		attrs []float64
	}{
		{"no", []float64{0, 0}}, {"no", []float64{0, 1}},
		{"yes", []float64{1, 0}}, {"yes", []float64{1, 1}},
		{"yes", []float64{2, 0}}, {"no", []float64{2, 1}},
		{"yes", []float64{2, 0}}, {"yes", []float64{1, 0}},
		{"no", []float64{0, 0}}, {"yes", []float64{2, 0}},
	}
	for _, r := range rows {
		if err := tbl.Insert(r.class, r.attrs); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTrainAndClassify(t *testing.T) {
	db := engine.Open(3)
	tbl := loadWeather(t, db)
	m, err := Train(db, tbl, "class", "attrs", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Classes) != 2 || m.Classes[0] != "no" || m.Classes[1] != "yes" {
		t.Fatalf("classes = %v", m.Classes)
	}
	// Priors: 4 no, 6 yes.
	if math.Abs(m.Priors[0]-0.4) > 1e-12 || math.Abs(m.Priors[1]-0.6) > 1e-12 {
		t.Fatalf("priors = %v", m.Priors)
	}
	// Overcast + calm is always "yes" in training.
	got, err := m.Classify([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != "yes" {
		t.Fatalf("Classify(overcast,calm) = %q", got)
	}
	// Sunny + windy leans "no".
	got, _ = m.Classify([]float64{0, 1})
	if got != "no" {
		t.Fatalf("Classify(sunny,windy) = %q", got)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	db := engine.Open(2)
	tbl := loadWeather(t, db)
	m, err := Train(db, tbl, "class", "attrs", Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Probabilities([]float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestLaplaceSmoothingHandlesUnseenValues(t *testing.T) {
	db := engine.Open(2)
	tbl := loadWeather(t, db)
	m, err := Train(db, tbl, "class", "attrs", Options{Laplace: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Attribute value 99 never appears; smoothed posterior must be finite.
	lp, err := m.LogPosterior("yes", []float64{99, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(lp, 0) || math.IsNaN(lp) {
		t.Fatalf("unsmoothed posterior: %v", lp)
	}
}

func TestRecoverGenerativeModel(t *testing.T) {
	// Generate data from a known naive-Bayes model and verify high accuracy.
	db := engine.Open(4)
	tbl, _ := db.CreateTable("d", engine.Schema{
		{Name: "class", Kind: engine.String},
		{Name: "attrs", Kind: engine.Vector},
	})
	rng := rand.New(rand.NewSource(1))
	sample := func(class string) []float64 {
		attrs := make([]float64, 3)
		for a := range attrs {
			p := 0.8 // P(attr = classBit)
			bit := 0.0
			if class == "b" {
				bit = 1
			}
			if rng.Float64() < p {
				attrs[a] = bit
			} else {
				attrs[a] = 1 - bit
			}
		}
		return attrs
	}
	for i := 0; i < 2000; i++ {
		class := "a"
		if i%2 == 0 {
			class = "b"
		}
		if err := tbl.Insert(class, sample(class)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := Train(db, tbl, "class", "attrs", Options{})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	trials := 1000
	for i := 0; i < trials; i++ {
		class := "a"
		if i%2 == 0 {
			class = "b"
		}
		got, err := m.Classify(sample(class))
		if err != nil {
			t.Fatal(err)
		}
		if got == class {
			correct++
		}
	}
	// Bayes-optimal accuracy for 3 attrs at p=0.8 is ~89.6%.
	if acc := float64(correct) / float64(trials); acc < 0.8 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestSegmentInvariance(t *testing.T) {
	var ref *Model
	for _, segs := range []int{1, 5} {
		db := engine.Open(segs)
		tbl := loadWeather(t, db)
		m, err := Train(db, tbl, "class", "attrs", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = m
			continue
		}
		for i := range ref.Priors {
			if math.Abs(m.Priors[i]-ref.Priors[i]) > 1e-12 {
				t.Fatalf("segments=%d priors %v vs %v", segs, m.Priors, ref.Priors)
			}
		}
		lpA, _ := m.LogPosterior("yes", []float64{0, 1})
		lpB, _ := ref.LogPosterior("yes", []float64{0, 1})
		if math.Abs(lpA-lpB) > 1e-12 {
			t.Fatal("posterior differs across segment counts")
		}
	}
}

func TestErrors(t *testing.T) {
	db := engine.Open(2)
	empty, _ := db.CreateTable("e", engine.Schema{
		{Name: "class", Kind: engine.String},
		{Name: "attrs", Kind: engine.Vector},
	})
	if _, err := Train(db, empty, "class", "attrs", Options{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	if _, err := Train(db, empty, "nope", "attrs", Options{}); err == nil {
		t.Fatal("missing column should fail")
	}
	tbl := loadWeather(t, db)
	m, err := Train(db, tbl, "class", "attrs", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.LogPosterior("martian", []float64{0, 0}); !errors.Is(err, ErrUnknownClass) {
		t.Fatalf("want ErrUnknownClass, got %v", err)
	}
	if _, err := m.Classify([]float64{0}); err == nil {
		t.Fatal("wrong arity should fail")
	}
}

func TestMismatchedAttributeWidth(t *testing.T) {
	db := engine.Open(1)
	tbl, _ := db.CreateTable("d", engine.Schema{
		{Name: "class", Kind: engine.String},
		{Name: "attrs", Kind: engine.Vector},
	})
	if err := tbl.Insert("a", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert("a", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Train(db, tbl, "class", "attrs", Options{}); err == nil {
		t.Fatal("mismatched widths should fail")
	}
}
