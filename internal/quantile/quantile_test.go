package quantile

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"madlib/internal/engine"
)

func TestExactKnown(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	tests := []struct {
		phi  float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.8, 4}, {1, 5},
	}
	for _, tc := range tests {
		got, err := Exact(xs, tc.phi)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("Exact(%v) = %v, want %v", tc.phi, got, tc.want)
		}
	}
}

func TestExactErrors(t *testing.T) {
	if _, err := Exact(nil, 0.5); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	if _, err := Exact([]float64{1}, 1.5); err == nil {
		t.Fatal("phi out of range should fail")
	}
}

// rankError computes the true rank error of a reported quantile value.
func rankError(sorted []float64, v float64, phi float64) float64 {
	n := len(sorted)
	// Range of ranks v could occupy.
	lo := sort.SearchFloat64s(sorted, v)
	hi := sort.Search(n, func(i int) bool { return sorted[i] > v })
	target := phi * float64(n)
	bestErr := math.Inf(1)
	for _, r := range []float64{float64(lo), float64(hi)} {
		if e := math.Abs(r - target); e < bestErr {
			bestErr = e
		}
	}
	if float64(lo) <= target && target <= float64(hi) {
		bestErr = 0
	}
	return bestErr
}

func TestGKSingleStreamBound(t *testing.T) {
	eps := 0.01
	gk, err := NewGK(eps)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	n := 50000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64()
		gk.Insert(vals[i])
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got, err := gk.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if e := rankError(sorted, got, phi); e > 2*eps*float64(n) {
			t.Fatalf("phi=%v rank error %v exceeds 2εn=%v", phi, e, 2*eps*float64(n))
		}
	}
	// The summary must be far smaller than the stream.
	if len(gk.tuples) > n/10 {
		t.Fatalf("summary holds %d tuples for %d values", len(gk.tuples), n)
	}
}

func TestGKMergeBound(t *testing.T) {
	eps := 0.02
	a, _ := NewGK(eps)
	b, _ := NewGK(eps)
	rng := rand.New(rand.NewSource(2))
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.Float64() * 100
		if i%2 == 0 {
			a.Insert(vals[i])
		} else {
			b.Insert(vals[i])
		}
	}
	a.Merge(b)
	if a.N() != int64(n) {
		t.Fatalf("merged N = %d", a.N())
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		got, err := a.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		// Merged error bound: sum of both summaries' ε plus slack.
		if e := rankError(sorted, got, phi); e > 3*eps*float64(n) {
			t.Fatalf("phi=%v merged rank error %v", phi, e)
		}
	}
}

func TestGKValidation(t *testing.T) {
	for _, eps := range []float64{0, 0.5, -1} {
		if _, err := NewGK(eps); err == nil {
			t.Fatalf("eps=%v should fail", eps)
		}
	}
	gk, _ := NewGK(0.1)
	if _, err := gk.Quantile(0.5); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	gk.Insert(1)
	if _, err := gk.Quantile(-0.1); err == nil {
		t.Fatal("phi out of range should fail")
	}
}

func TestGKQuantilePropertyMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gk, _ := NewGK(0.05)
		for i := 0; i < 500; i++ {
			gk.Insert(rng.Float64())
		}
		prev := math.Inf(-1)
		for _, phi := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			q, err := gk.Quantile(phi)
			if err != nil || q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAggregatesOverEngine(t *testing.T) {
	db := engine.Open(4)
	tbl, _ := db.CreateTable("q", engine.Schema{{Name: "v", Kind: engine.Float}})
	n := 10000
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 10
		if err := tbl.Insert(vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	phis := []float64{0.25, 0.5, 0.75}
	exactV, err := db.Run(tbl, ExactAggregate(0, phis))
	if err != nil {
		t.Fatal(err)
	}
	gkV, err := db.Run(tbl, GKAggregate(0, 0.01, phis))
	if err != nil {
		t.Fatal(err)
	}
	exact, approx := exactV.([]float64), gkV.([]float64)
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	for i, phi := range phis {
		if e := rankError(sorted, exact[i], phi); e > 1 {
			t.Fatalf("exact quantile phi=%v off by rank %v", phi, e)
		}
		// Parallel GK merges 4 segment summaries: generous bound.
		if e := rankError(sorted, approx[i], phi); e > 5*0.01*float64(n) {
			t.Fatalf("GK quantile phi=%v rank error %v", phi, e)
		}
	}
}

func TestExactAggregateEmptyTable(t *testing.T) {
	db := engine.Open(2)
	tbl, _ := db.CreateTable("q", engine.Schema{{Name: "v", Kind: engine.Float}})
	if _, err := db.Run(tbl, ExactAggregate(0, []float64{0.5})); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
}

func BenchmarkGKInsert(b *testing.B) {
	gk, _ := NewGK(0.01)
	rng := rand.New(rand.NewSource(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gk.Insert(rng.Float64())
	}
}
