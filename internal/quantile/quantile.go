// Package quantile implements the Table-1 quantile module: an exact
// sort-based aggregate for moderate data and a Greenwald-Khanna (GK)
// ε-approximate streaming summary whose per-segment instances merge, so
// quantiles run as a parallel UDA like everything else.
package quantile

import (
	"errors"
	"fmt"
	"sort"

	"madlib/internal/core"
	"madlib/internal/engine"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "quantile", Title: "Quantiles", Category: core.Descriptive})
}

// ErrNoData is returned when asking quantiles of an empty stream.
var ErrNoData = errors.New("quantile: empty input")

// Exact returns the φ-quantile of xs by sorting a copy: the value at rank
// ceil(φ·n) (1-based), matching MADlib's quantile() semantics.
func Exact(xs []float64, phi float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrNoData
	}
	if phi < 0 || phi > 1 {
		return 0, fmt.Errorf("quantile: phi %v outside [0,1]", phi)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(phi*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank], nil
}

// gkTuple is one GK summary entry: v with g = rmin(v)-rmin(prev) and
// delta = rmax(v)-rmin(v).
type gkTuple struct {
	v     float64
	g     int64
	delta int64
}

// GK is a Greenwald-Khanna ε-approximate quantile summary.
type GK struct {
	eps     float64
	n       int64
	tuples  []gkTuple
	pending []float64 // buffered inserts, flushed in sorted batches
}

// NewGK creates a summary with rank error at most ε·n for a single stream
// (merging two summaries degrades the bound to the sum of their errors).
func NewGK(eps float64) (*GK, error) {
	if eps <= 0 || eps >= 0.5 {
		return nil, fmt.Errorf("quantile: need 0 < ε < 0.5, got %v", eps)
	}
	return &GK{eps: eps}, nil
}

// Insert adds one value to the summary.
func (g *GK) Insert(v float64) {
	g.pending = append(g.pending, v)
	if len(g.pending) >= int(1/(2*g.eps)) {
		g.flush()
	}
}

// N returns how many values have been inserted.
func (g *GK) N() int64 { return g.n + int64(len(g.pending)) }

// flush inserts buffered values into the tuple list and compresses.
func (g *GK) flush() {
	if len(g.pending) == 0 {
		return
	}
	sort.Float64s(g.pending)
	out := make([]gkTuple, 0, len(g.tuples)+len(g.pending))
	ti := 0
	for _, v := range g.pending {
		for ti < len(g.tuples) && g.tuples[ti].v <= v {
			out = append(out, g.tuples[ti])
			ti++
		}
		var delta int64
		if len(out) == 0 || ti >= len(g.tuples) {
			delta = 0 // new min or max is exact
		} else {
			delta = int64(2*g.eps*float64(g.n+1)) - 1
			if delta < 0 {
				delta = 0
			}
		}
		out = append(out, gkTuple{v: v, g: 1, delta: delta})
		g.n++
	}
	out = append(out, g.tuples[ti:]...)
	g.tuples = out
	g.pending = g.pending[:0]
	g.compress()
}

// compress merges adjacent tuples whose combined uncertainty stays within
// the 2εn budget.
func (g *GK) compress() {
	if len(g.tuples) < 3 {
		return
	}
	budget := int64(2 * g.eps * float64(g.n))
	out := g.tuples[:1] // keep minimum exact
	for i := 1; i < len(g.tuples)-1; i++ {
		t := g.tuples[i]
		last := &out[len(out)-1]
		// Try merging t into the NEXT tuple (standard GK merges forward);
		// equivalently accumulate into the following entry when safe.
		next := g.tuples[i+1]
		if t.g+next.g+next.delta <= budget && len(out) >= 1 {
			g.tuples[i+1].g += t.g
			continue
		}
		_ = last
		out = append(out, t)
	}
	out = append(out, g.tuples[len(g.tuples)-1])
	g.tuples = out
}

// Quantile returns a value whose rank is within ε·n of φ·n.
func (g *GK) Quantile(phi float64) (float64, error) {
	g.flush()
	if g.n == 0 {
		return 0, ErrNoData
	}
	if phi < 0 || phi > 1 {
		return 0, fmt.Errorf("quantile: phi %v outside [0,1]", phi)
	}
	target := int64(phi*float64(g.n) + 0.5)
	if target < 1 {
		target = 1
	}
	bound := int64(g.eps * float64(g.n))
	var rmin int64
	for i, t := range g.tuples {
		rmin += t.g
		rmax := rmin + t.delta
		if target-rmin <= bound && rmax-target <= bound {
			return t.v, nil
		}
		if i == len(g.tuples)-1 {
			return t.v, nil
		}
	}
	return g.tuples[len(g.tuples)-1].v, nil
}

// Merge folds other into g. The merged summary's rank error is bounded by
// the sum of the two summaries' errors (the classical GK merge bound).
func (g *GK) Merge(other *GK) {
	other.flush()
	g.flush()
	merged := make([]gkTuple, 0, len(g.tuples)+len(other.tuples))
	i, j := 0, 0
	for i < len(g.tuples) && j < len(other.tuples) {
		if g.tuples[i].v <= other.tuples[j].v {
			merged = append(merged, g.tuples[i])
			i++
		} else {
			merged = append(merged, other.tuples[j])
			j++
		}
	}
	merged = append(merged, g.tuples[i:]...)
	merged = append(merged, other.tuples[j:]...)
	g.tuples = merged
	g.n += other.n
	g.compress()
}

// ExactAggregate computes the exact φ-quantiles of a Float column by
// collecting per-segment sorted runs and merging — CPU O(n log n), memory
// O(n); use GKAggregate for large streams.
func ExactAggregate(col int, phis []float64) engine.Aggregate {
	return engine.FuncAggregate{
		InitFn: func() any { return []float64(nil) },
		TransitionFn: func(s any, row engine.Row) any {
			return append(s.([]float64), row.Float(col))
		},
		MergeFn: func(a, b any) any { return append(a.([]float64), b.([]float64)...) },
		FinalFn: func(s any) (any, error) {
			xs := s.([]float64)
			out := make([]float64, len(phis))
			for i, phi := range phis {
				q, err := Exact(xs, phi)
				if err != nil {
					return nil, err
				}
				out[i] = q
			}
			return out, nil
		},
	}
}

// GKAggregateInt is GKAggregate over an Int column (values widen to
// float64).
func GKAggregateInt(col int, eps float64, phis []float64) engine.Aggregate {
	agg := GKAggregate(col, eps, phis).(engine.FuncAggregate)
	agg.TransitionFn = func(s any, row engine.Row) any {
		gk := s.(*GK)
		gk.Insert(float64(row.Int(col)))
		return gk
	}
	return agg
}

// GKAggregate computes ε-approximate φ-quantiles of a Float column with
// bounded memory per segment.
func GKAggregate(col int, eps float64, phis []float64) engine.Aggregate {
	return engine.FuncAggregate{
		InitFn: func() any {
			gk, err := NewGK(eps)
			if err != nil {
				panic(err) // validated by callers
			}
			return gk
		},
		TransitionFn: func(s any, row engine.Row) any {
			gk := s.(*GK)
			gk.Insert(row.Float(col))
			return gk
		},
		MergeFn: func(a, b any) any {
			ga := a.(*GK)
			ga.Merge(b.(*GK))
			return ga
		},
		FinalFn: func(s any) (any, error) {
			gk := s.(*GK)
			out := make([]float64, len(phis))
			for i, phi := range phis {
				q, err := gk.Quantile(phi)
				if err != nil {
					return nil, err
				}
				out[i] = q
			}
			return out, nil
		},
	}
}
