// Package bootstrap implements m-of-n bootstrap resampling of an arbitrary
// aggregate statistic, the counted-iteration pattern of §3.1.2: "In order
// to drive a fixed number n of independent iterations, it is often
// simplest (and very efficient) to declare a virtual table with n rows
// (e.g., via PostgreSQL's generate_series), and join it with a view
// representing a single iteration. This approach was used to implement
// m-of-n Bootstrap sampling in the original MAD Skills paper."
//
// Each virtual-table row drives one resample. Instead of materializing a
// sample, each data row enters the iteration's aggregate Poisson(m/n)
// times — the standard in-database bootstrap construction, exact in
// distribution as n grows — with the per-(row, iteration) count drawn from
// a deterministic hash so runs are reproducible and segment-parallel.
package bootstrap

import (
	"errors"
	"math"
	"sort"

	"madlib/internal/core"
	"madlib/internal/engine"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "bootstrap", Title: "Bootstrap (m-of-n)", Category: core.Support})
}

// ErrNoData is returned when the source table is empty.
var ErrNoData = errors.New("bootstrap: no data rows")

// Options configure Run.
type Options struct {
	// Iterations is the number of bootstrap resamples (default 100).
	Iterations int
	// SampleFraction is m/n, the expected fraction of rows entering each
	// resample (default 1.0 — the classic n-of-n bootstrap).
	SampleFraction float64
	// Seed drives the deterministic resampling.
	Seed int64
}

// Result summarizes the bootstrap distribution of the statistic.
type Result struct {
	// Estimates holds one statistic value per resample.
	Estimates []float64
	// Mean is the bootstrap mean.
	Mean float64
	// StdErr is the bootstrap standard error (sample std of Estimates).
	StdErr float64
	// CILow and CIHigh are the 2.5th and 97.5th percentile estimates.
	CILow, CIHigh float64
}

// Run draws opts.Iterations resamples of the table and evaluates the
// scalar aggregate on each. The aggregate's Final must return a value
// convertible to float64 (float64 or int64).
func Run(db *engine.DB, table *engine.Table, agg engine.Aggregate, opts Options) (*Result, error) {
	if opts.Iterations == 0 {
		opts.Iterations = 100
	}
	if opts.SampleFraction == 0 {
		opts.SampleFraction = 1
	}
	if opts.SampleFraction < 0 {
		return nil, errors.New("bootstrap: negative SampleFraction")
	}
	if table.Count() == 0 {
		return nil, ErrNoData
	}
	// The virtual iteration table (generate_series) — one row per
	// resample, exactly the §3.1.2 pattern. The join with "a view
	// representing a single iteration" is the loop below.
	series, err := db.GenerateSeries("bootstrap_iterations", 1, int64(opts.Iterations))
	if err != nil {
		return nil, err
	}
	defer func() { _ = db.DropTable(series.Name()) }()

	res := &Result{}
	for _, row := range db.Rows(series) {
		iter := row[0].(int64)
		resample := resampleAggregate(agg, opts.Seed, iter, opts.SampleFraction)
		v, err := db.Run(table, resample)
		if err != nil {
			return nil, err
		}
		f, ok := toFloat(v)
		if !ok {
			return nil, errors.New("bootstrap: statistic is not numeric")
		}
		res.Estimates = append(res.Estimates, f)
	}
	summarize(res)
	return res, nil
}

// resampleAggregate wraps agg so each row's transition is applied
// Poisson(fraction) times, with counts drawn from a splitmix-style hash of
// (seed, iteration, segment-local row index, row content position).
func resampleAggregate(agg engine.Aggregate, seed, iter int64, fraction float64) engine.Aggregate {
	type segState struct {
		inner any
		// rowCounter distinguishes rows within a segment; combined with
		// the per-segment pointer identity via the first transition's
		// index it stays deterministic for a fixed table layout.
		rowCounter uint64
	}
	return engine.FuncAggregate{
		InitFn: func() any { return &segState{inner: agg.Init()} },
		TransitionFn: func(s any, row engine.Row) any {
			st := s.(*segState)
			st.rowCounter++
			h := mix(uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(iter)<<32 ^ st.rowCounter ^ uint64(row.Index())<<1)
			k := poisson(h, fraction)
			for i := 0; i < k; i++ {
				st.inner = agg.Transition(st.inner, row)
			}
			return st
		},
		MergeFn: func(a, b any) any {
			sa, sb := a.(*segState), b.(*segState)
			sa.inner = agg.Merge(sa.inner, sb.inner)
			return sa
		},
		FinalFn: func(s any) (any, error) { return agg.Final(s.(*segState).inner) },
	}
}

// mix is a splitmix64 finalizer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// poisson draws Poisson(lambda) by inversion from one uniform hash value.
// For the lambdas used here (≈1) the tail beyond ~16 is negligible.
func poisson(h uint64, lambda float64) int {
	u := float64(h>>11) / float64(1<<53)
	p := math.Exp(-lambda)
	cdf := p
	k := 0
	for u > cdf && k < 64 {
		k++
		p *= lambda / float64(k)
		cdf += p
	}
	return k
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	}
	return 0, false
}

func summarize(res *Result) {
	n := float64(len(res.Estimates))
	var sum float64
	for _, v := range res.Estimates {
		sum += v
	}
	res.Mean = sum / n
	var ss float64
	for _, v := range res.Estimates {
		d := v - res.Mean
		ss += d * d
	}
	if n > 1 {
		res.StdErr = math.Sqrt(ss / (n - 1))
	}
	sorted := append([]float64(nil), res.Estimates...)
	sort.Float64s(sorted)
	lo := int(0.025 * n)
	hi := int(0.975*n) - 1
	if hi < 0 {
		hi = 0
	}
	if hi >= len(sorted) {
		hi = len(sorted) - 1
	}
	res.CILow, res.CIHigh = sorted[lo], sorted[hi]
}
