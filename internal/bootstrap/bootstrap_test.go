package bootstrap

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"madlib/internal/engine"
)

func meanAgg(col int) engine.Aggregate {
	type state struct {
		sum float64
		n   int64
	}
	return engine.FuncAggregate{
		InitFn: func() any { return &state{} },
		TransitionFn: func(s any, r engine.Row) any {
			st := s.(*state)
			st.sum += r.Float(col)
			st.n++
			return st
		},
		MergeFn: func(a, b any) any {
			sa, sb := a.(*state), b.(*state)
			sa.sum += sb.sum
			sa.n += sb.n
			return sa
		},
		FinalFn: func(s any) (any, error) {
			st := s.(*state)
			if st.n == 0 {
				return 0.0, nil
			}
			return st.sum / float64(st.n), nil
		},
	}
}

func TestBootstrapMeanStdErr(t *testing.T) {
	// For the sample mean of n iid values with std σ, the bootstrap
	// standard error should approximate σ/√n.
	db := engine.Open(4)
	tbl, _ := db.CreateTable("d", engine.Schema{{Name: "x", Kind: engine.Float}})
	rng := rand.New(rand.NewSource(1))
	n := 2000
	sigma := 3.0
	var trueSum float64
	for i := 0; i < n; i++ {
		v := 10 + rng.NormFloat64()*sigma
		trueSum += v
		if err := tbl.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	trueMean := trueSum / float64(n)
	res, err := Run(db, tbl, meanAgg(0), Options{Iterations: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Estimates) != 200 {
		t.Fatalf("estimates = %d", len(res.Estimates))
	}
	if math.Abs(res.Mean-trueMean) > 0.05 {
		t.Fatalf("bootstrap mean %v vs sample mean %v", res.Mean, trueMean)
	}
	want := sigma / math.Sqrt(float64(n))
	if res.StdErr < want/2 || res.StdErr > want*2 {
		t.Fatalf("bootstrap stderr %v, analytic %v", res.StdErr, want)
	}
	// CI must bracket the mean and be ordered.
	if res.CILow > res.Mean || res.CIHigh < res.Mean {
		t.Fatalf("CI [%v, %v] does not bracket mean %v", res.CILow, res.CIHigh, res.Mean)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	db := engine.Open(3)
	tbl, _ := db.CreateTable("d", engine.Schema{{Name: "x", Kind: engine.Float}})
	for i := 0; i < 100; i++ {
		if err := tbl.Insert(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	a, err := Run(db, tbl, meanAgg(0), Options{Iterations: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(db, tbl, meanAgg(0), Options{Iterations: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Estimates {
		if a.Estimates[i] != b.Estimates[i] {
			t.Fatalf("non-deterministic resample at %d", i)
		}
	}
	c, err := Run(db, tbl, meanAgg(0), Options{Iterations: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a.Estimates {
		if a.Estimates[i] == c.Estimates[i] {
			same++
		}
	}
	if same == len(a.Estimates) {
		t.Fatal("different seeds produced identical resamples")
	}
}

func TestBootstrapSubsampling(t *testing.T) {
	// m-of-n with fraction 0.5: subsample variability should exceed the
	// full-sample bootstrap's.
	db := engine.Open(2)
	tbl, _ := db.CreateTable("d", engine.Schema{{Name: "x", Kind: engine.Float}})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		if err := tbl.Insert(rng.NormFloat64()); err != nil {
			t.Fatal(err)
		}
	}
	full, err := Run(db, tbl, meanAgg(0), Options{Iterations: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Run(db, tbl, meanAgg(0), Options{Iterations: 150, Seed: 5, SampleFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if half.StdErr <= full.StdErr {
		t.Fatalf("half-sample stderr %v should exceed full %v", half.StdErr, full.StdErr)
	}
}

func TestBootstrapErrors(t *testing.T) {
	db := engine.Open(2)
	empty, _ := db.CreateTable("e", engine.Schema{{Name: "x", Kind: engine.Float}})
	if _, err := Run(db, empty, meanAgg(0), Options{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	tbl, _ := db.CreateTable("d", engine.Schema{{Name: "x", Kind: engine.Float}})
	if err := tbl.Insert(1.0); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(db, tbl, meanAgg(0), Options{SampleFraction: -1}); err == nil {
		t.Fatal("negative fraction should fail")
	}
	// Non-numeric statistic.
	strAgg := engine.FuncAggregate{
		InitFn:       func() any { return "" },
		TransitionFn: func(s any, _ engine.Row) any { return s },
		MergeFn:      func(a, _ any) any { return a },
		FinalFn:      func(s any) (any, error) { return s, nil },
	}
	if _, err := Run(db, tbl, strAgg, Options{Iterations: 2}); err == nil {
		t.Fatal("non-numeric statistic should fail")
	}
	// No leftover series table.
	for _, name := range db.TableNames() {
		if name == "bootstrap_iterations" {
			t.Fatal("iteration series table leaked")
		}
	}
}

func TestPoissonMeanApproximately(t *testing.T) {
	// The hash-driven Poisson(1) should have mean ≈ 1 over many draws.
	var total int
	n := 100000
	for i := 0; i < n; i++ {
		total += poisson(mix(uint64(i)*0x9e3779b97f4a7c15), 1.0)
	}
	mean := float64(total) / float64(n)
	if mean < 0.97 || mean > 1.03 {
		t.Fatalf("Poisson(1) empirical mean = %v", mean)
	}
}
