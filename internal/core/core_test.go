package core

import (
	"errors"
	"math"
	"testing"

	"madlib/internal/engine"
)

func TestAnyTypeAccessors(t *testing.T) {
	if got := Value(1.5).Float(); got != 1.5 {
		t.Fatalf("Float = %v", got)
	}
	if got := Value(int64(7)).Int(); got != 7 {
		t.Fatalf("Int = %v", got)
	}
	if got := Value("hi").Str(); got != "hi" {
		t.Fatalf("Str = %q", got)
	}
	if got := Value(true).Bool(); !got {
		t.Fatal("Bool wrong")
	}
	v := Value([]float64{1, 2}).Vector()
	if len(v) != 2 || v[1] != 2 {
		t.Fatalf("Vector = %v", v)
	}
	if !Null().IsNull() || Value(1.0).IsNull() {
		t.Fatal("IsNull wrong")
	}
}

func TestAnyTypePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Value("nope").Float()
}

func TestCheckedAccessors(t *testing.T) {
	if _, err := Value("x").CheckedFloat(); !errors.Is(err, ErrTypeBridge) {
		t.Fatalf("want ErrTypeBridge, got %v", err)
	}
	if _, err := Value(1.0).CheckedVector(); !errors.Is(err, ErrTypeBridge) {
		t.Fatalf("want ErrTypeBridge, got %v", err)
	}
	got, err := Value(2.0).CheckedFloat()
	if err != nil || got != 2 {
		t.Fatalf("CheckedFloat = %v, %v", got, err)
	}
}

func TestComposite(t *testing.T) {
	c := NewComposite().Append([]float64{1, 2}).Append(3.5)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Field(1).Float() != 3.5 {
		t.Fatal("Field(1) wrong")
	}
	if c.Field(0).Vector()[0] != 1 {
		t.Fatal("Field(0) wrong")
	}
}

func TestBindingAndBridge(t *testing.T) {
	db := engine.Open(2)
	tbl, err := db.CreateTable("data", engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
		{Name: "label", Kind: engine.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(1.0, []float64{2, 3}, "a"); err != nil {
		t.Fatal(err)
	}
	bind, err := BindColumns(tbl.Schema(), "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	var sawX []float64
	var sawY float64
	err = db.ForEachSegment(tbl, func(_ int, row engine.Row) error {
		args := bind.Bridge(row)
		sawX = args.At(0).Vector()
		sawY = args.At(1).Float()
		// Fused accessors agree with boxed ones.
		if args.Float(1) != sawY {
			t.Error("fused Float disagrees")
		}
		if &args.Vector(0)[0] != &sawX[0] {
			t.Error("fused Vector should be zero-copy")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sawY != 1 || sawX[1] != 3 {
		t.Fatalf("bridged values wrong: %v %v", sawY, sawX)
	}
	if _, err := BindColumns(tbl.Schema(), "missing"); !errors.Is(err, engine.ErrNoColumn) {
		t.Fatalf("want ErrNoColumn, got %v", err)
	}
}

func TestAllocatorCounts(t *testing.T) {
	var al Allocator
	v := al.AllocVector(5)
	if len(v) != 5 {
		t.Fatal("AllocVector size wrong")
	}
	al.AllocVector(3)
	if al.Allocations() != 2 || al.FloatsAllocated() != 8 {
		t.Fatalf("counters = %d, %d", al.Allocations(), al.FloatsAllocated())
	}
}

func TestBackendGate(t *testing.T) {
	var g BackendGate
	for i := 0; i < 10; i++ {
		g.Enter()
	}
	if g.Calls() != 10 {
		t.Fatalf("Calls = %d", g.Calls())
	}
}

func TestRunIterativeConverges(t *testing.T) {
	db := engine.Open(2)
	// Iterate x <- x/2 starting at 16 until change is small: state halves
	// each step and converges geometrically.
	spec := IterativeSpec{
		Name:         "halving",
		InitialState: []float64{16},
		Step: func(prev []float64) ([]float64, error) {
			return []float64{prev[0] / 2}, nil
		},
		Converged: func(prev, cur []float64, _ int) (bool, error) {
			return math.Abs(cur[0]-prev[0]) < 0.01, nil
		},
		MaxIterations: 50,
	}
	res, err := RunIterative(db, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.State[0] > 0.01 {
		t.Fatalf("final state %v not converged", res.State)
	}
	if res.Iterations < 10 {
		t.Fatalf("converged suspiciously fast: %d iterations", res.Iterations)
	}
	// The Figure-3 control flow: create, then (insert, check)*, then final.
	if res.Trace[0] != "CREATE TEMP TABLE iterative_algorithm" {
		t.Fatalf("trace[0] = %q", res.Trace[0])
	}
	if res.Trace[len(res.Trace)-1] != "SELECT FINAL RESULT" {
		t.Fatalf("trace end = %q", res.Trace[len(res.Trace)-1])
	}
	if res.Trace[1] != "INSERT iteration 1" || res.Trace[2] != "CONVERGENCE CHECK 1" {
		t.Fatalf("trace body = %v", res.Trace[1:3])
	}
	// The temp table must have been dropped on exit.
	for _, name := range db.TableNames() {
		t.Fatalf("leftover table %q", name)
	}
}

func TestRunIterativeNoConvergence(t *testing.T) {
	db := engine.Open(1)
	spec := IterativeSpec{
		Name:          "diverge",
		InitialState:  []float64{1},
		Step:          func(prev []float64) ([]float64, error) { return []float64{prev[0] + 1}, nil },
		Converged:     func(_, _ []float64, _ int) (bool, error) { return false, nil },
		MaxIterations: 5,
	}
	if _, err := RunIterative(db, spec); !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence, got %v", err)
	}
}

func TestRunIterativeStepError(t *testing.T) {
	db := engine.Open(1)
	boom := errors.New("boom")
	spec := IterativeSpec{
		Name:          "err",
		InitialState:  []float64{1},
		Step:          func([]float64) ([]float64, error) { return nil, boom },
		Converged:     func(_, _ []float64, _ int) (bool, error) { return true, nil },
		MaxIterations: 5,
	}
	if _, err := RunIterative(db, spec); !errors.Is(err, boom) {
		t.Fatalf("want wrapped step error, got %v", err)
	}
}

func TestRunIterativeValidation(t *testing.T) {
	db := engine.Open(1)
	if _, err := RunIterative(db, IterativeSpec{}); err == nil {
		t.Fatal("missing Step/Converged should error")
	}
}

func TestRelativeChange(t *testing.T) {
	if got := RelativeChange([]float64{0, 0}, []float64{0, 0}); got != 0 {
		t.Fatalf("RelativeChange same = %v", got)
	}
	got := RelativeChange([]float64{3, 4}, []float64{3, 4 + 5})
	// ||diff||=5, ||prev||=5 → 5/6.
	if math.Abs(got-5.0/6.0) > 1e-12 {
		t.Fatalf("RelativeChange = %v", got)
	}
	if got := RelativeChange([]float64{1}, []float64{1, 2}); got != 1 {
		t.Fatalf("mismatched lengths should return 1, got %v", got)
	}
}

func TestRegistry(t *testing.T) {
	RegisterMethod(MethodInfo{Name: "test_method_x", Title: "Test Method", Category: Support})
	m, ok := LookupMethod("test_method_x")
	if !ok || m.Title != "Test Method" {
		t.Fatalf("lookup failed: %v %v", m, ok)
	}
	found := false
	for _, mi := range Methods() {
		if mi.Name == "test_method_x" {
			found = true
		}
	}
	if !found {
		t.Fatal("Methods() missing registered method")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	RegisterMethod(MethodInfo{Name: "test_method_x"})
}

func TestValidateIdentifier(t *testing.T) {
	for _, ok := range []string{"x", "foo_bar", "_a1", "T2"} {
		if err := ValidateIdentifier(ok); err != nil {
			t.Fatalf("%q should be valid: %v", ok, err)
		}
	}
	for _, bad := range []string{"", "1x", "a-b", "a b", "a;drop", "名"} {
		if err := ValidateIdentifier(bad); err == nil {
			t.Fatalf("%q should be invalid", bad)
		}
	}
}
