package core

import (
	"fmt"
	"regexp"
	"sort"
	"sync"
)

// Category labels a method with its Table-1 grouping.
type Category string

// The four categories of Table 1.
const (
	Supervised   Category = "Supervised Learning"
	Unsupervised Category = "Unsupervised Learning"
	Descriptive  Category = "Descriptive Statistics"
	Support      Category = "Support Modules"
)

// MethodInfo describes one library method for the registry.
type MethodInfo struct {
	// Name is the method's public name (e.g. "linregr").
	Name string
	// Title is the human-readable Table-1 row (e.g. "Linear Regression").
	Title string
	// Category is the Table-1 grouping.
	Category Category
}

var (
	registryMu sync.RWMutex
	registry   = map[string]MethodInfo{}
)

// RegisterMethod adds a method to the global registry; method packages call
// it from init. Registering the same name twice panics, catching copy-paste
// mistakes at package-load time.
func RegisterMethod(m MethodInfo) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[m.Name]; dup {
		panic(fmt.Sprintf("core: duplicate method registration %q", m.Name))
	}
	registry[m.Name] = m
}

// Methods returns all registered methods sorted by category then title —
// the programmatic Table 1.
func Methods() []MethodInfo {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]MethodInfo, 0, len(registry))
	for _, m := range registry {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Category != out[j].Category {
			return out[i].Category < out[j].Category
		}
		return out[i].Title < out[j].Title
	})
	return out
}

// LookupMethod returns the registered method with the given name.
func LookupMethod(name string) (MethodInfo, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	m, ok := registry[name]
	return m, ok
}

var identRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// ValidateIdentifier rejects table/column names that could not be spliced
// into a generated query. The paper notes that templated SQL surfaces
// syntax errors only at execution, "often leading to error messages that
// are enigmatic to the user", so MADlib validates identifiers up front
// (§3.1.3); this is that check.
func ValidateIdentifier(name string) error {
	if !identRe.MatchString(name) {
		return fmt.Errorf("core: invalid identifier %q", name)
	}
	return nil
}
