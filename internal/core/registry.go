package core

import (
	"fmt"
	"regexp"
	"sort"
	"sync"

	"madlib/internal/engine"
)

// Category labels a method with its Table-1 grouping.
type Category string

// The four categories of Table 1.
const (
	Supervised   Category = "Supervised Learning"
	Unsupervised Category = "Unsupervised Learning"
	Descriptive  Category = "Descriptive Statistics"
	Support      Category = "Support Modules"
)

// MethodInfo describes one library method for the registry.
type MethodInfo struct {
	// Name is the method's public name (e.g. "linregr").
	Name string
	// Title is the human-readable Table-1 row (e.g. "Linear Regression").
	Title string
	// Category is the Table-1 grouping.
	Category Category
}

var (
	registryMu sync.RWMutex
	registry   = map[string]MethodInfo{}
)

// RegisterMethod adds a method to the global registry; method packages call
// it from init. Registering the same name twice panics, catching copy-paste
// mistakes at package-load time.
func RegisterMethod(m MethodInfo) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[m.Name]; dup {
		panic(fmt.Sprintf("core: duplicate method registration %q", m.Name))
	}
	registry[m.Name] = m
}

// Methods returns all registered methods sorted by category then title —
// the programmatic Table 1.
func Methods() []MethodInfo {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]MethodInfo, 0, len(registry))
	for _, m := range registry {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Category != out[j].Category {
			return out[i].Category < out[j].Category
		}
		return out[i].Title < out[j].Title
	})
	return out
}

// LookupMethod returns the registered method with the given name.
func LookupMethod(name string) (MethodInfo, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	m, ok := registry[name]
	return m, ok
}

// SQLFuncKind distinguishes how a madlib.* SQL function executes.
type SQLFuncKind int

const (
	// SQLAggregate functions behave like built-in aggregates (sum, avg):
	// they fold rows through an engine.Aggregate and therefore compose
	// with WHERE and GROUP BY for free.
	SQLAggregate SQLFuncKind = iota
	// SQLTableValued functions consume a whole input table and emit a
	// result relation of their own (the driver-function methods).
	SQLTableValued
	// SQLScalar functions compute one value per row (madlib.predict).
	// They are compiled directly by the SQL front-end's expression
	// lowering; registration here only publishes the signature for \df
	// and keeps the name out of the aggregate/table-valued dispatch.
	SQLScalar
)

// ColumnArg marks a SQL function argument that referenced a column of the
// FROM table (as opposed to a literal). Builders resolve it against the
// input schema.
type ColumnArg struct{ Name string }

// ExprArg marks a SQL function argument that is a computed scalar
// expression over the FROM table's rows (e.g. quantile(v * 2, 0.5)). The
// SQL front-end compiles the expression to the getters; aggregate
// builders call one of them per row instead of reading a column index.
type ExprArg struct {
	// Name is the rendered expression text, for error messages.
	Name string
	// Kind is the expression's inferred result kind.
	Kind engine.Kind
	// Float evaluates the expression and coerces numerics to float64.
	Float func(engine.Row) (float64, error)
	// Value evaluates the expression to its natural boxed value.
	Value func(engine.Row) (any, error)
}

// SQLFunc binds a registered method to the SQL front-end. Exactly one of
// BuildAggregate / Invoke is set, per Kind. Args follow the call site:
// column references arrive as ColumnArg, computed expressions as ExprArg,
// literals as int64 / float64 / string / bool / []float64.
type SQLFunc struct {
	// Name is the function name inside the madlib schema (e.g. "linregr"
	// makes madlib.linregr(...) callable).
	Name string
	// Kind selects aggregate vs table-valued execution.
	Kind SQLFuncKind
	// Signature is the human-readable call form shown by \df and docs,
	// e.g. "linregr(y, x)".
	Signature string
	// Help is a one-line description.
	Help string
	// BuildAggregate compiles the call into an engine.Aggregate
	// (SQLAggregate kind only).
	BuildAggregate func(schema engine.Schema, args []any) (engine.Aggregate, error)
	// Invoke runs the method over the input table and returns the result
	// relation (SQLTableValued kind only).
	Invoke func(db *engine.DB, t *engine.Table, args []any) (engine.Schema, [][]any, error)
}

var (
	sqlFuncMu sync.RWMutex
	sqlFuncs  = map[string]SQLFunc{}
)

// RegisterSQLFunc makes a method callable from SQL as madlib.<name>(...).
// Duplicate registration panics, like RegisterMethod.
func RegisterSQLFunc(f SQLFunc) {
	sqlFuncMu.Lock()
	defer sqlFuncMu.Unlock()
	if _, dup := sqlFuncs[f.Name]; dup {
		panic(fmt.Sprintf("core: duplicate SQL function registration %q", f.Name))
	}
	sqlFuncs[f.Name] = f
}

// LookupSQLFunc returns the SQL binding for a method name.
func LookupSQLFunc(name string) (SQLFunc, bool) {
	sqlFuncMu.RLock()
	defer sqlFuncMu.RUnlock()
	f, ok := sqlFuncs[name]
	return f, ok
}

// SQLFuncs returns all SQL-callable functions sorted by name.
func SQLFuncs() []SQLFunc {
	sqlFuncMu.RLock()
	defer sqlFuncMu.RUnlock()
	out := make([]SQLFunc, 0, len(sqlFuncs))
	for _, f := range sqlFuncs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

var identRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// ValidateIdentifier rejects table/column names that could not be spliced
// into a generated query. The paper notes that templated SQL surfaces
// syntax errors only at execution, "often leading to error messages that
// are enigmatic to the user", so MADlib validates identifiers up front
// (§3.1.3); this is that check.
func ValidateIdentifier(name string) error {
	if !identRe.MatchString(name) {
		return fmt.Errorf("core: invalid identifier %q", name)
	}
	return nil
}
