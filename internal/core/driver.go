package core

import (
	"errors"
	"fmt"
	"math"

	"madlib/internal/engine"
)

// ErrNoConvergence is returned when an iterative method exhausts its
// iteration budget without satisfying its convergence test.
var ErrNoConvergence = errors.New("core: did not converge within iteration limit")

// IterativeSpec describes one iterative algorithm for the driver controller,
// decoupling the algorithm (one UDA step + a convergence test) from the
// iteration machinery, the way MADlib's Python driver UDFs do.
type IterativeSpec struct {
	// Name labels the temp state table.
	Name string
	// InitialState is iteration 0's inter-iteration state.
	InitialState []float64
	// Step runs one iteration: given the source table and the previous
	// inter-iteration state, produce the next state. In MADlib this is the
	// generated `INSERT INTO iterative_algorithm SELECT iteration+1,
	// <agg>(...)` statement.
	Step func(prev []float64) ([]float64, error)
	// Converged inspects the previous and current states after each
	// iteration — the `internal_..._did_converge` probe of Figure 3.
	Converged func(prev, cur []float64, iteration int) (bool, error)
	// MaxIterations bounds the loop; 0 means 100.
	MaxIterations int
}

// IterativeResult reports the outcome of a driver-controlled iteration.
type IterativeResult struct {
	// State is the final inter-iteration state.
	State []float64
	// Iterations is how many steps ran.
	Iterations int
	// Trace lists the driver's control-flow steps, matching the activity
	// diagram in Figure 3 of the paper. Tests assert on it.
	Trace []string
}

// RunIterative executes the driver-function pattern of §3.1.2 against a
// database: create a temp table for inter-iteration state, loop (insert the
// next state row; probe convergence), then read the final state out —
// with all bulk work inside Step's aggregation queries and only the small
// state vector crossing the driver boundary.
func RunIterative(db *engine.DB, spec IterativeSpec) (*IterativeResult, error) {
	if spec.Step == nil || spec.Converged == nil {
		return nil, errors.New("core: IterativeSpec needs Step and Converged")
	}
	maxIter := spec.MaxIterations
	if maxIter <= 0 {
		maxIter = 100
	}
	res := &IterativeResult{}
	// CREATE TEMP TABLE iterative_algorithm AS SELECT 0 AS iteration,
	// <initial> AS state (Figure 3, first box).
	stateTable, err := db.CreateTempTable(spec.Name+"_iterative_algorithm", engine.Schema{
		{Name: "iteration", Kind: engine.Int},
		{Name: "state", Kind: engine.Vector},
	})
	if err != nil {
		return nil, err
	}
	defer func() { _ = db.DropTable(stateTable.Name()) }()
	res.Trace = append(res.Trace, "CREATE TEMP TABLE iterative_algorithm")
	if err := stateTable.Insert(int64(0), clone(spec.InitialState)); err != nil {
		return nil, err
	}

	prev := clone(spec.InitialState)
	for iter := 1; iter <= maxIter; iter++ {
		// INSERT INTO iterative_algorithm SELECT iteration+1, step(...).
		cur, err := spec.Step(prev)
		if err != nil {
			return nil, fmt.Errorf("iteration %d: %w", iter, err)
		}
		if err := stateTable.Insert(int64(iter), clone(cur)); err != nil {
			return nil, err
		}
		res.Trace = append(res.Trace, fmt.Sprintf("INSERT iteration %d", iter))
		res.Iterations = iter

		// SELECT internal_..._did_converge(state) WHERE iteration = current.
		done, err := spec.Converged(prev, cur, iter)
		if err != nil {
			return nil, fmt.Errorf("convergence check %d: %w", iter, err)
		}
		res.Trace = append(res.Trace, fmt.Sprintf("CONVERGENCE CHECK %d", iter))
		prev = cur
		if done {
			break
		}
		if iter == maxIter {
			return nil, fmt.Errorf("%w after %d iterations", ErrNoConvergence, maxIter)
		}
	}
	// SELECT internal_..._result(state) WHERE iteration = current
	// (Figure 3, final box): read the last state row back out of the temp
	// table, which is the only data crossing into the driver.
	final, err := latestState(db, stateTable)
	if err != nil {
		return nil, err
	}
	res.State = final
	res.Trace = append(res.Trace, "SELECT FINAL RESULT")
	return res, nil
}

// latestState fetches the state vector with the maximum iteration number
// via an aggregate query, keeping even this probe inside the engine.
func latestState(db *engine.DB, t *engine.Table) ([]float64, error) {
	type pair struct {
		iter  int64
		state []float64
	}
	v, err := db.Run(t, engine.FuncAggregate{
		InitFn: func() any { return pair{iter: -1} },
		TransitionFn: func(s any, r engine.Row) any {
			p := s.(pair)
			if it := r.Int(0); it > p.iter {
				p.iter = it
				p.state = r.Vector(1)
			}
			return p
		},
		MergeFn: func(a, b any) any {
			pa, pb := a.(pair), b.(pair)
			if pb.iter > pa.iter {
				return pb
			}
			return pa
		},
		FinalFn: func(s any) (any, error) {
			p := s.(pair)
			if p.iter < 0 {
				return nil, errors.New("core: empty iteration table")
			}
			return p.state, nil
		},
	})
	if err != nil {
		return nil, err
	}
	return clone(v.([]float64)), nil
}

func clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// RelativeChange returns ||cur-prev|| / (||prev|| + 1), the default
// convergence metric MADlib's drivers use for coefficient vectors.
func RelativeChange(prev, cur []float64) float64 {
	if len(prev) != len(cur) {
		return 1
	}
	var num, den float64
	for i := range prev {
		d := cur[i] - prev[i]
		num += d * d
		den += prev[i] * prev[i]
	}
	return math.Sqrt(num) / (math.Sqrt(den) + 1)
}
