// Package core implements the MADlib framework proper: the abstraction
// layer that bridges database values to math types (the Go analogue of the
// paper's C++ abstraction layer, §3.3), the driver-function controller for
// multipass iterative algorithms (§3.1.2, Figure 3), templated-query
// helpers (§3.1.3), and the method registry that backs the Table-1
// inventory.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"madlib/internal/engine"
)

// ErrTypeBridge is returned by checked accessors when the stored value does
// not match the requested type.
var ErrTypeBridge = errors.New("core: type bridge mismatch")

// AnyType is the bridged datum type, mirroring MADlib's AnyType: a wrapper
// around a database value with typed accessors. Listing 1 of the paper
// reads `args[0]`, `args[1].getAs<double>()`,
// `args[2].getAs<MappedColumnVector>()`; the equivalents here are
// At(0), At(1).Float(), At(2).Vector().
type AnyType struct {
	v any
}

// Value wraps an arbitrary value into an AnyType.
func Value(v any) AnyType { return AnyType{v: v} }

// Null returns an AnyType holding no value.
func Null() AnyType { return AnyType{} }

// IsNull reports whether the datum holds no value.
func (a AnyType) IsNull() bool { return a.v == nil }

// Raw returns the underlying value.
func (a AnyType) Raw() any { return a.v }

// Float unwraps a float64 ("getAs<double>"). It panics on mismatch, the
// way MADlib's C++ layer throws; use CheckedFloat for an error return.
func (a AnyType) Float() float64 {
	x, ok := a.v.(float64)
	if !ok {
		panic(fmt.Sprintf("core: AnyType holds %T, want float64", a.v))
	}
	return x
}

// CheckedFloat is Float with an error instead of a panic.
func (a AnyType) CheckedFloat() (float64, error) {
	x, ok := a.v.(float64)
	if !ok {
		return 0, fmt.Errorf("%w: %T is not float64", ErrTypeBridge, a.v)
	}
	return x, nil
}

// Vector unwraps a []float64 without copying — the analogue of
// MappedColumnVector, which "wraps an immutable array (again, no
// unnecessary copying)". The caller must treat it as immutable.
func (a AnyType) Vector() []float64 {
	x, ok := a.v.([]float64)
	if !ok {
		panic(fmt.Sprintf("core: AnyType holds %T, want []float64", a.v))
	}
	return x
}

// CheckedVector is Vector with an error instead of a panic.
func (a AnyType) CheckedVector() ([]float64, error) {
	x, ok := a.v.([]float64)
	if !ok {
		return nil, fmt.Errorf("%w: %T is not []float64", ErrTypeBridge, a.v)
	}
	return x, nil
}

// Int unwraps an int64.
func (a AnyType) Int() int64 {
	x, ok := a.v.(int64)
	if !ok {
		panic(fmt.Sprintf("core: AnyType holds %T, want int64", a.v))
	}
	return x
}

// Str unwraps a string.
func (a AnyType) Str() string {
	x, ok := a.v.(string)
	if !ok {
		panic(fmt.Sprintf("core: AnyType holds %T, want string", a.v))
	}
	return x
}

// Bool unwraps a bool.
func (a AnyType) Bool() bool {
	x, ok := a.v.(bool)
	if !ok {
		panic(fmt.Sprintf("core: AnyType holds %T, want bool", a.v))
	}
	return x
}

// Composite is a tuple of datums — the analogue of the paper's
// `AnyType tuple; tuple << coef << decomposition.conditionNo();`.
type Composite struct {
	fields []AnyType
}

// NewComposite returns an empty tuple.
func NewComposite() *Composite { return &Composite{} }

// Append adds a field and returns the composite for chaining.
func (c *Composite) Append(v any) *Composite {
	c.fields = append(c.fields, Value(v))
	return c
}

// Len returns the number of fields.
func (c *Composite) Len() int { return len(c.fields) }

// Field returns the i-th field.
func (c *Composite) Field(i int) AnyType { return c.fields[i] }

// Args bridges one engine row into AnyType-style positional access,
// according to a binding of argument positions to table columns. Building
// an Args per row is deliberately where the abstraction layer's per-row
// marshalling cost lives; the v0.1alpha reproduction bypasses it.
type Args struct {
	row  engine.Row
	cols []int
	// kinds lets accessors unwrap without consulting the table schema.
	kinds []engine.Kind
}

// Binding precomputes a column binding for repeated row bridging.
type Binding struct {
	cols  []int
	kinds []engine.Kind
}

// BindColumns resolves the named columns in the schema, returning an error
// listing the first missing column — the up-front validation the paper says
// templated SQL makes necessary (§3.1.3).
func BindColumns(schema engine.Schema, names ...string) (*Binding, error) {
	b := &Binding{cols: make([]int, len(names)), kinds: make([]engine.Kind, len(names))}
	for i, n := range names {
		ci := schema.Index(n)
		if ci < 0 {
			return nil, fmt.Errorf("%w: column %q not in schema", engine.ErrNoColumn, n)
		}
		b.cols[i] = ci
		b.kinds[i] = schema[ci].Kind
	}
	return b, nil
}

// Bridge wraps a row with the binding, yielding positional AnyType access.
func (b *Binding) Bridge(row engine.Row) Args {
	return Args{row: row, cols: b.cols, kinds: b.kinds}
}

// At returns the i-th bound argument as an AnyType. The value is boxed at
// this point — one interface allocation per access, the honest Go analogue
// of AnyType's value marshalling.
func (a Args) At(i int) AnyType {
	col := a.cols[i]
	switch a.kinds[i] {
	case engine.Float:
		return Value(a.row.Float(col))
	case engine.Vector:
		return Value(a.row.Vector(col))
	case engine.Int:
		return Value(a.row.Int(col))
	case engine.String:
		return Value(a.row.Str(col))
	case engine.Bool:
		return Value(a.row.Bool(col))
	}
	return Null()
}

// Float is a fused accessor that skips the AnyType boxing. The v0.3
// abstraction layer earned its speed by exactly this kind of fused,
// zero-copy path ("the abstraction layer itself has been tuned for
// efficient value marshalling").
func (a Args) Float(i int) float64 { return a.row.Float(a.cols[i]) }

// Vector is the fused zero-copy vector accessor.
func (a Args) Vector(i int) []float64 { return a.row.Vector(a.cols[i]) }

// Allocator is the resource-management shim of the abstraction layer: it
// stands in for "layering C++ object allocation/deallocation over
// DBMS-managed memory interfaces" and lets tests and benchmarks observe
// how much transient memory an implementation churns.
type Allocator struct {
	allocations atomic.Int64
	floatsAlloc atomic.Int64
}

// AllocVector returns a fresh zeroed vector of length n, counting the
// allocation.
func (al *Allocator) AllocVector(n int) []float64 {
	al.allocations.Add(1)
	al.floatsAlloc.Add(int64(n))
	return make([]float64, n)
}

// Allocations returns how many vectors have been allocated.
func (al *Allocator) Allocations() int64 { return al.allocations.Load() }

// FloatsAllocated returns how many float64 slots have been allocated.
func (al *Allocator) FloatsAllocated() int64 { return al.floatsAlloc.Load() }

// BackendGate simulates the per-call locking into the DBMS backend that
// made MADlib v0.2.1beta slow ("runtime overhead ... mostly due to locking
// and calls into the DBMS backend"). The v0.2.1beta linregr reproduction
// takes this lock once per row; v0.3 does not.
type BackendGate struct {
	mu    sync.Mutex
	calls atomic.Int64
}

// Enter acquires and releases the backend lock, counting the call.
func (g *BackendGate) Enter() {
	g.mu.Lock()
	g.calls.Add(1)
	g.mu.Unlock() //nolint:staticcheck // intentional empty critical section: models lock traffic
}

// Calls returns the number of backend round trips taken.
func (g *BackendGate) Calls() int64 { return g.calls.Load() }
