package model

import (
	"math"
	"strings"
	"testing"

	"madlib/internal/engine"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	db := engine.Open(2)
	saved, err := Save(db, Model{Name: "m1", Kind: "logregr", Coef: []float64{0.5, -1.25, 3}, NumRows: 100})
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if saved.Version != 1 {
		t.Fatalf("first save version = %d, want 1", saved.Version)
	}
	if saved.TrainedAt == "" {
		t.Fatalf("Save did not stamp TrainedAt")
	}
	got, tbl, ver, err := Load(db, "m1")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if tbl == nil || ver != tbl.Version() {
		t.Fatalf("Load table binding: tbl=%v ver=%d", tbl, ver)
	}
	if got.Kind != "logregr" || got.NumRows != 100 || len(got.Coef) != 3 {
		t.Fatalf("Load mismatch: %+v", got)
	}
	for i, want := range []float64{0.5, -1.25, 3} {
		if got.Coef[i] != want {
			t.Fatalf("coef[%d] = %v, want %v", i, got.Coef[i], want)
		}
	}
}

func TestSaveOverwriteBumpsVersionAndTable(t *testing.T) {
	db := engine.Open(2)
	if _, err := Save(db, Model{Name: "m", Kind: "linregr", Coef: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	_, tbl1, _, _ := Load(db, "m")
	saved, err := Save(db, Model{Name: "m", Kind: "linregr", Coef: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	if saved.Version != 2 {
		t.Fatalf("overwrite version = %d, want 2", saved.Version)
	}
	got, tbl2, _, err := Load(db, "m")
	if err != nil {
		t.Fatal(err)
	}
	if got.Coef[0] != 2 {
		t.Fatalf("overwrite not visible: coef = %v", got.Coef)
	}
	if tbl1 == tbl2 {
		t.Fatalf("Save must swap the catalog table pointer so cached plans invalidate")
	}
}

func TestSaveKeepsOtherModels(t *testing.T) {
	db := engine.Open(2)
	if _, err := Save(db, Model{Name: "b", Kind: "svm", Coef: []float64{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := Save(db, Model{Name: "a", Kind: "logregr", Coef: []float64{3}}); err != nil {
		t.Fatal(err)
	}
	models, err := List(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0].Name != "a" || models[1].Name != "b" {
		t.Fatalf("List = %+v", models)
	}
}

func TestLoadErrors(t *testing.T) {
	db := engine.Open(2)
	if _, _, _, err := Load(db, "nope"); err == nil || !strings.Contains(err.Error(), `unknown model "nope"`) {
		t.Fatalf("Load on empty catalog: %v", err)
	}
	if _, err := Save(db, Model{Name: "m", Kind: "svm", Coef: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Load(db, "nope"); err == nil || !strings.Contains(err.Error(), `unknown model "nope"`) {
		t.Fatalf("Load unknown name: %v", err)
	}
	if _, err := Save(db, Model{Name: "", Kind: "svm", Coef: []float64{1}}); err == nil {
		t.Fatalf("Save with empty name must fail")
	}
	if _, err := Save(db, Model{Name: "x", Kind: "svm"}); err == nil {
		t.Fatalf("Save with no coefficients must fail")
	}
}

func TestLink(t *testing.T) {
	sig, name := Link("logregr")
	if name != "sigmoid" || math.Abs(sig(0)-0.5) > 1e-15 {
		t.Fatalf("logregr link: %s sig(0)=%v", name, sig(0))
	}
	if _, name := Link("sgd:logistic"); name != "sigmoid" {
		t.Fatalf("sgd:logistic link = %s", name)
	}
	id, name := Link("linregr")
	if name != "identity" || id(3.25) != 3.25 {
		t.Fatalf("linregr link: %s", name)
	}
	if _, name := Link("sgd:hinge"); name != "identity" {
		t.Fatalf("sgd:hinge link = %s", name)
	}
}
