// Package model is the model catalog: fitted models persisted as rows
// of an ordinary engine table (madlib_models), queryable like any other
// table and shared by every session of one engine. This is the "models
// as data" half of the train/serve loop — madlib.logregr('name', ...)
// writes a row here, madlib.predict('name', features...) resolves it at
// plan time and scores against the frozen coefficients.
//
// The engine has no row-level UPDATE or DELETE, so Save rewrites the
// whole catalog table (drop + recreate with the replaced row). That is
// exactly what the SQL plan cache wants: the *Table pointer changes on
// every save, so any cached plan holding a resolved model fails its
// validity check and replans against the new coefficients — the same
// pointer-identity protocol ordinary table scans already use.
package model

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"madlib/internal/engine"
)

// TableName is the catalog table every persisted model lives in.
const TableName = "madlib_models"

// Model is one persisted fitted model.
type Model struct {
	Name string
	// Kind identifies the trainer and thereby the link function:
	// "logregr", "linregr", "svm", or "sgd:<loss>".
	Kind string
	// Coef is the fitted coefficient vector; predict takes exactly
	// len(Coef) feature arguments.
	Coef []float64
	// NumRows is the number of training rows the model was fitted on.
	NumRows int64
	// TrainedAt is the UTC training timestamp (RFC 3339).
	TrainedAt string
	// Version starts at 1 and increments each time a model with the same
	// name is saved over it.
	Version int64
}

// CatalogSchema is the schema of the madlib_models table.
func CatalogSchema() engine.Schema {
	return engine.Schema{
		{Name: "name", Kind: engine.String},
		{Name: "kind", Kind: engine.String},
		{Name: "coef", Kind: engine.Vector},
		{Name: "dims", Kind: engine.Int},
		{Name: "num_rows", Kind: engine.Int},
		{Name: "trained_at", Kind: engine.String},
		{Name: "version", Kind: engine.Int},
	}
}

// saveMu serializes catalog rewrites: Save is read-modify-write over
// the whole table, and concurrent wire sessions share one engine.
var saveMu sync.Mutex

// Save persists m, replacing any model of the same name (its Version
// becomes old+1; new names start at 1). TrainedAt is stamped here when
// empty. Returns the model as saved.
func Save(db *engine.DB, m Model) (Model, error) {
	if m.Name == "" {
		return Model{}, fmt.Errorf("model name must not be empty")
	}
	if len(m.Coef) == 0 {
		return Model{}, fmt.Errorf("model %q has no coefficients to persist", m.Name)
	}
	if m.TrainedAt == "" {
		m.TrainedAt = time.Now().UTC().Format(time.RFC3339)
	}
	saveMu.Lock()
	defer saveMu.Unlock()

	existing, _, err := loadAll(db)
	if err != nil {
		return Model{}, err
	}
	m.Version = 1
	kept := make([]Model, 0, len(existing)+1)
	for _, e := range existing {
		if e.Name == m.Name {
			m.Version = e.Version + 1
			continue
		}
		kept = append(kept, e)
	}
	m.Coef = append([]float64(nil), m.Coef...)
	kept = append(kept, m)
	sort.Slice(kept, func(i, j int) bool { return kept[i].Name < kept[j].Name })

	// Rewrite the catalog. Dropping only removes the catalog entry; plans
	// still scanning the old table hold its pointer and finish safely.
	if _, err := db.Table(TableName); err == nil {
		if err := db.DropTable(TableName); err != nil {
			return Model{}, err
		}
	}
	t, err := db.CreateTable(TableName, CatalogSchema())
	if err != nil {
		return Model{}, err
	}
	for _, e := range kept {
		if err := t.Insert(e.Name, e.Kind, e.Coef, int64(len(e.Coef)), e.NumRows, e.TrainedAt, e.Version); err != nil {
			return Model{}, err
		}
	}
	return m, nil
}

// Load resolves one model by name. It also returns the catalog table
// binding and its version at resolution time, so a plan that froze the
// model can detect any later catalog change (Save swaps the table
// pointer; a direct INSERT bumps its version).
func Load(db *engine.DB, name string) (Model, *engine.Table, int64, error) {
	models, t, err := loadAll(db)
	if err != nil {
		return Model{}, nil, 0, err
	}
	if t == nil {
		return Model{}, nil, 0, fmt.Errorf("unknown model %q (no models have been persisted)", name)
	}
	ver := t.Version()
	for _, m := range models {
		if m.Name == name {
			return m, t, ver, nil
		}
	}
	return Model{}, nil, 0, fmt.Errorf("unknown model %q", name)
}

// List returns every persisted model, sorted by name. A missing catalog
// table is an empty list, not an error.
func List(db *engine.DB) ([]Model, error) {
	models, _, err := loadAll(db)
	return models, err
}

// loadAll reads the catalog table; (nil, nil, nil) when it doesn't exist.
func loadAll(db *engine.DB) ([]Model, *engine.Table, error) {
	t, err := db.Table(TableName)
	if err != nil {
		return nil, nil, nil
	}
	var models []Model
	for _, row := range db.Rows(t) {
		m, err := fromRow(row)
		if err != nil {
			return nil, nil, fmt.Errorf("%s is corrupt: %w", TableName, err)
		}
		models = append(models, m)
	}
	sort.Slice(models, func(i, j int) bool { return models[i].Name < models[j].Name })
	return models, t, nil
}

// fromRow decodes one catalog row. The table is ordinary SQL-visible
// data, so a hand-written INSERT can produce any shape; decode
// defensively instead of panicking on assertion.
func fromRow(row []any) (Model, error) {
	if len(row) != 7 {
		return Model{}, fmt.Errorf("expected 7 columns, got %d", len(row))
	}
	name, ok1 := row[0].(string)
	kind, ok2 := row[1].(string)
	coef, ok3 := row[2].([]float64)
	numRows, ok4 := row[4].(int64)
	trainedAt, ok5 := row[5].(string)
	version, ok6 := row[6].(int64)
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 || !ok6 {
		return Model{}, fmt.Errorf("row has unexpected column types")
	}
	// Copy: storage lanes are shared with concurrent scans of the table.
	coef = append([]float64(nil), coef...)
	return Model{Name: name, Kind: kind, Coef: coef, NumRows: numRows, TrainedAt: trainedAt, Version: version}, nil
}

// Link returns the model kind's inverse link function — applied to the
// dot product of coefficients and features — plus its display name.
// Logistic models squash through the sigmoid; everything else (linear
// regression, SVM decision values, hinge/least-squares SGD) scores the
// raw linear response.
func Link(kind string) (func(float64) float64, string) {
	switch kind {
	case "logregr", "sgd:logistic":
		return sigmoid, "sigmoid"
	default:
		return identity, "identity"
	}
}

func sigmoid(x float64) float64  { return 1.0 / (1.0 + math.Exp(-x)) }
func identity(x float64) float64 { return x }
