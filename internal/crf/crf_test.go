package crf

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"madlib/internal/datagen"
	"madlib/internal/engine"
)

// corpus converts datagen tagged sentences into crf Sentences.
func corpus(seed int64, n, meanLen int) []Sentence {
	raw := datagen.NewCorpus(seed, n, meanLen)
	out := make([]Sentence, len(raw))
	for i, sent := range raw {
		s := make(Sentence, len(sent))
		for j, tok := range sent {
			s[j] = Token{Word: tok.Word, Tag: tok.Tag}
		}
		out[i] = s
	}
	return out
}

func accuracy(m *Model, test []Sentence) float64 {
	correct, total := 0, 0
	for _, sent := range test {
		words := make([]string, len(sent))
		for i, tok := range sent {
			words[i] = tok.Word
		}
		pred := m.Viterbi(words)
		for i := range sent {
			if pred[i] == sent[i].Tag {
				correct++
			}
			total++
		}
	}
	return float64(correct) / float64(total)
}

func TestTrainAndTag(t *testing.T) {
	train := corpus(1, 300, 8)
	test := corpus(99, 50, 8)
	m, err := Train(train, TrainOptions{MaxPasses: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tags) != 4 {
		t.Fatalf("tags = %v", m.Tags)
	}
	if acc := accuracy(m, test); acc < 0.9 {
		t.Fatalf("held-out accuracy = %v", acc)
	}
}

func TestGradientMatchesNumeric(t *testing.T) {
	// Finite-difference check of LossAndGrad on a tiny corpus.
	train := corpus(2, 3, 4)
	m, err := Train(train, TrainOptions{MaxPasses: 1})
	if err != nil {
		t.Fatal(err)
	}
	obj := &crfObjective{m: m}
	sent := train[0]
	words := make([]string, len(sent))
	tags := make([]string, len(sent))
	for i, tok := range sent {
		words[i] = tok.Word
		tags[i] = tok.Tag
	}
	ex := labelled{words: words, tags: tags}
	rng := rand.New(rand.NewSource(3))
	w := make([]float64, obj.Dim())
	for i := range w {
		w[i] = rng.NormFloat64() * 0.1
	}
	grad := make([]float64, len(w))
	obj.LossAndGrad(w, ex, grad)
	const h = 1e-6
	checked := 0
	for i := 0; i < len(w) && checked < 25; i++ {
		if grad[i] == 0 {
			continue
		}
		checked++
		wp := append([]float64(nil), w...)
		wm := append([]float64(nil), w...)
		wp[i] += h
		wm[i] -= h
		gp := make([]float64, len(w))
		gm := make([]float64, len(w))
		lp := obj.LossAndGrad(wp, ex, gp)
		lm := obj.LossAndGrad(wm, ex, gm)
		numeric := (lp - lm) / (2 * h)
		if math.Abs(numeric-grad[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("grad[%d] = %v, numeric %v", i, grad[i], numeric)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d nonzero gradient entries checked", checked)
	}
}

func TestViterbiMatchesBruteForce(t *testing.T) {
	train := corpus(4, 100, 6)
	m, err := Train(train, TrainOptions{MaxPasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		sent := corpus(int64(100+trial), 1, 4)[0]
		if len(sent) > 5 {
			sent = sent[:5]
		}
		words := make([]string, len(sent))
		for i, tok := range sent {
			words[i] = tok.Word
		}
		got := m.ViterbiTopK(words, 1)[0]
		want := m.BruteForceBest(words)
		if math.Abs(got.Score-want.Score) > 1e-9 {
			t.Fatalf("Viterbi score %v != brute force %v for %v", got.Score, want.Score, words)
		}
	}
}

func TestViterbiTopKOrdered(t *testing.T) {
	train := corpus(5, 100, 6)
	m, err := Train(train, TrainOptions{MaxPasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"the", "dog", "runs"}
	paths := m.ViterbiTopK(words, 5)
	if len(paths) != 5 {
		t.Fatalf("got %d paths", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Score > paths[i-1].Score+1e-12 {
			t.Fatalf("paths out of order: %v", paths)
		}
	}
	// Paths must be distinct.
	seen := map[string]bool{}
	for _, p := range paths {
		k := ""
		for _, tag := range p.Tags {
			k += tag + "|"
		}
		if seen[k] {
			t.Fatalf("duplicate path %v", p.Tags)
		}
		seen[k] = true
	}
	// Top-1 equals Viterbi.
	v := m.Viterbi(words)
	for i := range v {
		if v[i] != paths[0].Tags[i] {
			t.Fatal("top-1 disagrees with Viterbi")
		}
	}
}

func TestMarginalsNormalize(t *testing.T) {
	train := corpus(6, 100, 6)
	m, err := Train(train, TrainOptions{MaxPasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	marg := m.Marginals([]string{"a", "fast", "analyst", "builds"})
	for t2, dist := range marg {
		var sum float64
		for _, p := range dist {
			if p < -1e-12 || p > 1+1e-12 {
				t.Fatalf("marginal out of range at %d: %v", t2, dist)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("marginals at %d sum to %v", t2, sum)
		}
	}
}

func TestGibbsMatchesForwardBackward(t *testing.T) {
	train := corpus(7, 200, 7)
	m, err := Train(train, TrainOptions{MaxPasses: 15})
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"the", "big", "dog", "sees", "a", "tree"}
	exact := m.Marginals(words)
	est := m.Gibbs(words, MCMCOptions{Sweeps: 4000, BurnIn: 500, Seed: 1})
	for t2 := range exact {
		for b := range exact[t2] {
			if math.Abs(est.Marginals[t2][b]-exact[t2][b]) > 0.05 {
				t.Fatalf("Gibbs marginal[%d][%d] = %v, exact %v", t2, b, est.Marginals[t2][b], exact[t2][b])
			}
		}
	}
	if len(est.MAP) != len(words) {
		t.Fatalf("MAP length %d", len(est.MAP))
	}
}

func TestMetropolisHastingsMatchesForwardBackward(t *testing.T) {
	train := corpus(8, 200, 7)
	m, err := Train(train, TrainOptions{MaxPasses: 15})
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"every", "cat", "scans", "the", "database"}
	exact := m.Marginals(words)
	est := m.MetropolisHastings(words, MCMCOptions{Sweeps: 8000, BurnIn: 1000, Seed: 2})
	for t2 := range exact {
		for b := range exact[t2] {
			if math.Abs(est.Marginals[t2][b]-exact[t2][b]) > 0.08 {
				t.Fatalf("MH marginal[%d][%d] = %v, exact %v", t2, b, est.Marginals[t2][b], exact[t2][b])
			}
		}
	}
	if est.Proposed == 0 || est.Accepted == 0 || est.Accepted > est.Proposed {
		t.Fatalf("MH acceptance bookkeeping: %d/%d", est.Accepted, est.Proposed)
	}
}

func TestDictionaryAndRegexFeaturesHelp(t *testing.T) {
	// Build a corpus where a tag is determined by dictionary membership of
	// an otherwise-unseen word; extractor features must generalize.
	dict := []string{"alice", "bob", "carol", "dave"}
	var train []Sentence
	for i := 0; i < 50; i++ {
		name := dict[i%len(dict)]
		train = append(train, Sentence{
			{Word: "the", Tag: "DET"},
			{Word: name, Tag: "NAME"},
			{Word: "runs", Tag: "VERB"},
		})
		train = append(train, Sentence{
			{Word: "the", Tag: "DET"},
			{Word: "dog", Tag: "NOUN"},
			{Word: "runs", Tag: "VERB"},
		})
	}
	ex, err := NewExtractor(ExtractorOptions{
		Dictionaries: map[string][]string{"names": dict},
		Regexes:      map[string]string{"capitalized": `^[A-Z]`},
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(train, TrainOptions{Extractor: ex, MaxPasses: 20})
	if err != nil {
		t.Fatal(err)
	}
	// "carol" was seen; the dictionary feature should push NAME even for a
	// seen-but-ambiguous context, and crucially the unseen word "dave" in
	// dictionary still gets NAME.
	pred := m.Viterbi([]string{"the", "dave", "runs"})
	if pred[1] != "NAME" {
		t.Fatalf("dictionary word tagged %q", pred[1])
	}
	pred = m.Viterbi([]string{"the", "dog", "runs"})
	if pred[1] != "NOUN" {
		t.Fatalf("plain word tagged %q", pred[1])
	}
}

func TestTrainTableMultiSegment(t *testing.T) {
	db := engine.Open(4)
	train := corpus(9, 200, 7)
	tbl, err := LoadCorpus(db, "corpus", train)
	if err != nil {
		t.Fatal(err)
	}
	m, err := TrainTable(db, tbl, "words", "tags", TrainOptions{MaxPasses: 15})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, corpus(77, 30, 7)); acc < 0.85 {
		t.Fatalf("multi-segment accuracy = %v", acc)
	}
}

func TestLogLikelihood(t *testing.T) {
	train := corpus(10, 100, 6)
	m, err := Train(train, TrainOptions{MaxPasses: 10})
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"the", "dog", "runs"}
	best := m.Viterbi(words)
	llBest, err := m.LogLikelihood(words, best)
	if err != nil {
		t.Fatal(err)
	}
	if llBest > 0 {
		t.Fatalf("log-likelihood %v > 0", llBest)
	}
	// Any other labeling scores no higher.
	other := []string{"VERB", "VERB", "VERB"}
	llOther, err := m.LogLikelihood(words, other)
	if err != nil {
		t.Fatal(err)
	}
	if llOther > llBest+1e-9 {
		t.Fatalf("non-Viterbi labeling scored higher: %v > %v", llOther, llBest)
	}
	if _, err := m.LogLikelihood(words, []string{"DET"}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := m.LogLikelihood(words, []string{"X", "Y", "Z"}); err == nil {
		t.Fatal("unknown tag should fail")
	}
}

func TestErrors(t *testing.T) {
	if _, err := Train(nil, TrainOptions{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	if _, err := NewExtractor(ExtractorOptions{Regexes: map[string]string{"bad": "("}}); err == nil {
		t.Fatal("bad regex should fail")
	}
	db := engine.Open(1)
	tbl, _ := db.CreateTable("c", engine.Schema{
		{Name: "words", Kind: engine.String},
		{Name: "tags", Kind: engine.String},
	})
	if _, err := TrainTable(db, tbl, "zz", "tags", TrainOptions{}); err == nil {
		t.Fatal("missing column should fail")
	}
	if _, err := TrainTable(db, tbl, "words", "tags", TrainOptions{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
}

func BenchmarkViterbi(b *testing.B) {
	train := corpus(11, 200, 8)
	m, err := Train(train, TrainOptions{MaxPasses: 5})
	if err != nil {
		b.Fatal(err)
	}
	words := []string{"the", "fast", "analyst", "builds", "a", "sparse", "model"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Viterbi(words)
	}
}

func BenchmarkGibbsSweep(b *testing.B) {
	train := corpus(12, 200, 8)
	m, err := Train(train, TrainOptions{MaxPasses: 5})
	if err != nil {
		b.Fatal(err)
	}
	words := []string{"the", "fast", "analyst", "builds", "a", "sparse", "model"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Gibbs(words, MCMCOptions{Sweeps: 1, BurnIn: 0, Seed: int64(i)})
	}
}

func BenchmarkTrainPass(b *testing.B) {
	train := corpus(13, 100, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(train, TrainOptions{MaxPasses: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
