package crf

import (
	"math"
	"math/rand"
)

// MCMCOptions configure the samplers.
type MCMCOptions struct {
	// Sweeps is the number of full passes over the sequence after burn-in
	// (default 500).
	Sweeps int
	// BurnIn is the number of discarded initial sweeps (default 100).
	BurnIn int
	// Seed drives the sampler.
	Seed int64
}

func (o *MCMCOptions) defaults() {
	if o.Sweeps == 0 {
		o.Sweeps = 500
	}
	if o.BurnIn == 0 {
		o.BurnIn = 100
	}
}

// MCMCResult reports a sampling run.
type MCMCResult struct {
	// Marginals[t][tag] estimates P(y_t = tag | words).
	Marginals [][]float64
	// MAP is the most frequently sampled complete sequence.
	MAP []string
	// Accepted counts accepted proposals (Metropolis-Hastings only).
	Accepted int64
	// Proposed counts proposals (Metropolis-Hastings only).
	Proposed int64
}

// Gibbs runs the Gibbs sampler of §5.2's "MCMC Inference": each sweep
// resamples every position's tag from its full conditional given its
// neighbours, accumulating marginal estimates after burn-in.
func (m *Model) Gibbs(words []string, opts MCMCOptions) *MCMCResult {
	opts.defaults()
	n := len(words)
	if n == 0 {
		return &MCMCResult{}
	}
	_, nodeScores, edgeScores := m.scores(m.Weights, words)
	nt := len(m.Tags)
	rng := rand.New(rand.NewSource(opts.Seed))
	state := make([]int, n)
	for t := range state {
		state[t] = rng.Intn(nt)
	}
	counts := make([][]float64, n)
	for t := range counts {
		counts[t] = make([]float64, nt)
	}
	seqCounts := map[string]int{}
	probs := make([]float64, nt)
	encode := func() string {
		out := make([]byte, n)
		for i, b := range state {
			out[i] = byte(b)
		}
		return string(out)
	}
	total := opts.BurnIn + opts.Sweeps
	for sweep := 0; sweep < total; sweep++ {
		for t := 0; t < n; t++ {
			maxLog := math.Inf(-1)
			for b := 0; b < nt; b++ {
				s := nodeScores[t][b]
				if t > 0 {
					s += edgeScores[state[t-1]][b]
				}
				if t < n-1 {
					s += edgeScores[b][state[t+1]]
				}
				probs[b] = s
				if s > maxLog {
					maxLog = s
				}
			}
			var z float64
			for b := 0; b < nt; b++ {
				probs[b] = math.Exp(probs[b] - maxLog)
				z += probs[b]
			}
			u := rng.Float64() * z
			b := 0
			for ; b < nt-1; b++ {
				u -= probs[b]
				if u <= 0 {
					break
				}
			}
			state[t] = b
		}
		if sweep >= opts.BurnIn {
			for t := 0; t < n; t++ {
				counts[t][state[t]]++
			}
			seqCounts[encode()]++
		}
	}
	return m.finishMCMC(counts, seqCounts, float64(opts.Sweeps), n)
}

// MetropolisHastings runs a single-site random-proposal MH chain: each
// step proposes a new tag at a random position and accepts with the usual
// min(1, exp(Δscore)) rule. One "sweep" is n proposals.
func (m *Model) MetropolisHastings(words []string, opts MCMCOptions) *MCMCResult {
	opts.defaults()
	n := len(words)
	if n == 0 {
		return &MCMCResult{}
	}
	_, nodeScores, edgeScores := m.scores(m.Weights, words)
	nt := len(m.Tags)
	rng := rand.New(rand.NewSource(opts.Seed))
	state := make([]int, n)
	for t := range state {
		state[t] = rng.Intn(nt)
	}
	localScore := func(t, b int) float64 {
		s := nodeScores[t][b]
		if t > 0 {
			s += edgeScores[state[t-1]][b]
		}
		if t < n-1 {
			s += edgeScores[b][state[t+1]]
		}
		return s
	}
	counts := make([][]float64, n)
	for t := range counts {
		counts[t] = make([]float64, nt)
	}
	seqCounts := map[string]int{}
	encode := func() string {
		out := make([]byte, n)
		for i, b := range state {
			out[i] = byte(b)
		}
		return string(out)
	}
	res := &MCMCResult{}
	total := opts.BurnIn + opts.Sweeps
	for sweep := 0; sweep < total; sweep++ {
		for step := 0; step < n; step++ {
			t := rng.Intn(n)
			cur := state[t]
			prop := rng.Intn(nt)
			if prop == cur {
				continue
			}
			res.Proposed++
			delta := localScore(t, prop) - localScore(t, cur)
			if delta >= 0 || rng.Float64() < math.Exp(delta) {
				state[t] = prop
				res.Accepted++
			}
		}
		if sweep >= opts.BurnIn {
			for t := 0; t < n; t++ {
				counts[t][state[t]]++
			}
			seqCounts[encode()]++
		}
	}
	fin := m.finishMCMC(counts, seqCounts, float64(opts.Sweeps), n)
	fin.Accepted, fin.Proposed = res.Accepted, res.Proposed
	return fin
}

func (m *Model) finishMCMC(counts [][]float64, seqCounts map[string]int, samples float64, n int) *MCMCResult {
	res := &MCMCResult{Marginals: counts}
	for t := range counts {
		for b := range counts[t] {
			counts[t][b] /= samples
		}
	}
	bestSeq, bestCount := "", -1
	for seq, c := range seqCounts {
		if c > bestCount || (c == bestCount && seq < bestSeq) {
			bestSeq, bestCount = seq, c
		}
	}
	if bestSeq != "" {
		res.MAP = make([]string, n)
		for i := 0; i < n; i++ {
			res.MAP[i] = m.Tags[bestSeq[i]]
		}
	}
	return res
}
