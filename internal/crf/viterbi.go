package crf

import (
	"math"
	"sort"
)

// Viterbi returns the most likely tag sequence for words (Table 3's
// "most-likely inference over a CRF").
func (m *Model) Viterbi(words []string) []string {
	paths := m.ViterbiTopK(words, 1)
	if len(paths) == 0 {
		return nil
	}
	return paths[0].Tags
}

// Path is one decoded sequence with its unnormalized log score.
type Path struct {
	Tags  []string
	Score float64
}

// ViterbiTopK returns the k highest-scoring tag sequences, best first —
// the top-k Viterbi variant §5.2 mentions ("the top-k most likely
// labelings of a document").
func (m *Model) ViterbiTopK(words []string, k int) []Path {
	n := len(words)
	if n == 0 || k < 1 {
		return nil
	}
	_, nodeScores, edgeScores := m.scores(m.Weights, words)
	nt := len(m.Tags)

	// cell holds the best-k partial paths ending in a given tag.
	type entry struct {
		score   float64
		prevTag int // -1 at t = 0
		prevIdx int // index into the previous cell's list
	}
	cells := make([][][]entry, n)
	cells[0] = make([][]entry, nt)
	for b := 0; b < nt; b++ {
		cells[0][b] = []entry{{score: nodeScores[0][b], prevTag: -1}}
	}
	for t := 1; t < n; t++ {
		cells[t] = make([][]entry, nt)
		for b := 0; b < nt; b++ {
			var cands []entry
			for a := 0; a < nt; a++ {
				for pi, pe := range cells[t-1][a] {
					cands = append(cands, entry{
						score:   pe.score + edgeScores[a][b] + nodeScores[t][b],
						prevTag: a,
						prevIdx: pi,
					})
				}
			}
			sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
			if len(cands) > k {
				cands = cands[:k]
			}
			cells[t][b] = cands
		}
	}
	// Collect final candidates across tags.
	type final struct {
		tag, idx int
		score    float64
	}
	var finals []final
	for b := 0; b < nt; b++ {
		for i, e := range cells[n-1][b] {
			finals = append(finals, final{tag: b, idx: i, score: e.score})
		}
	}
	sort.Slice(finals, func(i, j int) bool { return finals[i].score > finals[j].score })
	if len(finals) > k {
		finals = finals[:k]
	}
	out := make([]Path, 0, len(finals))
	for _, f := range finals {
		tags := make([]string, n)
		tag, idx := f.tag, f.idx
		for t := n - 1; t >= 0; t-- {
			tags[t] = m.Tags[tag]
			e := cells[t][tag][idx]
			tag, idx = e.prevTag, e.prevIdx
		}
		out = append(out, Path{Tags: tags, Score: f.score})
	}
	return out
}

// BruteForceBest enumerates every tag sequence and returns the best — the
// exponential-time reference the Viterbi tests compare against. Only
// usable for tiny inputs.
func (m *Model) BruteForceBest(words []string) Path {
	n := len(words)
	nt := len(m.Tags)
	_, nodeScores, edgeScores := m.scores(m.Weights, words)
	best := Path{Score: math.Inf(-1)}
	assign := make([]int, n)
	var rec func(t int, score float64)
	rec = func(t int, score float64) {
		if t == n {
			if score > best.Score {
				tags := make([]string, n)
				for i, b := range assign {
					tags[i] = m.Tags[b]
				}
				best = Path{Tags: tags, Score: score}
			}
			return
		}
		for b := 0; b < nt; b++ {
			s := score + nodeScores[t][b]
			if t > 0 {
				s += edgeScores[assign[t-1]][b]
			}
			assign[t] = b
			rec(t+1, s)
		}
	}
	rec(0, 0)
	return best
}
