// Package crf implements the Florida/Berkeley statistical text analytics
// layer of §5.2: a linear-chain conditional random field with the five
// feature classes the paper enumerates (dictionary, regex, edge, word,
// position), trained by stochastic gradient descent on the convex
// framework of internal/sgd (the Table-2 "Labeling (CRF)" objective), with
// Viterbi top-k inference and MCMC inference (Gibbs and
// Metropolis-Hastings) as in Table 3.
package crf

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"

	"madlib/internal/core"
	"madlib/internal/engine"
	"madlib/internal/sgd"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "crf", Title: "Conditional Random Fields", Category: core.Supervised})
}

// Token is one word with its label.
type Token struct {
	Word string
	Tag  string
}

// Sentence is a labelled token sequence.
type Sentence []Token

// ErrNoData is returned for an empty training corpus.
var ErrNoData = errors.New("crf: empty corpus")

// ExtractorOptions configure the feature extractor.
type ExtractorOptions struct {
	// Dictionaries maps a dictionary name to its word set ("does this
	// token exist in a provided dictionary?").
	Dictionaries map[string][]string
	// Regexes maps a pattern name to its expression ("does this token
	// match a provided regular expression?").
	Regexes map[string]string
}

// Extractor computes the §5.2 feature classes for a token in context.
type Extractor struct {
	dicts   map[string]map[string]bool
	regexes map[string]*regexp.Regexp
	names   []string // deterministic ordering of dicts+regexes
}

// NewExtractor compiles the dictionaries and regexes. With zero options it
// still produces word, edge, and position features.
func NewExtractor(opts ExtractorOptions) (*Extractor, error) {
	ex := &Extractor{dicts: map[string]map[string]bool{}, regexes: map[string]*regexp.Regexp{}}
	for name, words := range opts.Dictionaries {
		set := map[string]bool{}
		for _, w := range words {
			set[strings.ToLower(w)] = true
		}
		ex.dicts[name] = set
		ex.names = append(ex.names, "dict:"+name)
	}
	for name, pattern := range opts.Regexes {
		re, err := regexp.Compile(pattern)
		if err != nil {
			return nil, fmt.Errorf("crf: regex %q: %w", name, err)
		}
		ex.regexes[name] = re
		ex.names = append(ex.names, "re:"+name)
	}
	sort.Strings(ex.names)
	return ex, nil
}

// observations returns the tag-independent observation predicates firing
// at position t: word identity, dictionary hits, regex hits, and position
// markers. Node features are these predicates crossed with the tag.
func (ex *Extractor) observations(words []string, t int) []string {
	obs := []string{"word:" + words[t]}
	lower := strings.ToLower(words[t])
	for name, set := range ex.dicts {
		if set[lower] {
			obs = append(obs, "dict:"+name)
		}
	}
	for name, re := range ex.regexes {
		if re.MatchString(words[t]) {
			obs = append(obs, "re:"+name)
		}
	}
	if t == 0 {
		obs = append(obs, "pos:first")
	}
	if t == len(words)-1 {
		obs = append(obs, "pos:last")
	}
	sort.Strings(obs)
	return obs
}

// Model is a trained linear-chain CRF.
type Model struct {
	// Tags is the label alphabet in sorted order.
	Tags []string
	// Weights is the trained parameter vector.
	Weights []float64

	ex       *Extractor
	tagIdx   map[string]int
	featIdx  map[string]int
	featName []string
	// edgeBase[a][b] is the weight index of edge feature a→b.
	edgeBase [][]int
}

// TrainOptions configure training.
type TrainOptions struct {
	// Extractor supplies dictionaries/regexes; nil uses an empty one.
	Extractor *Extractor
	// StepSize is the SGD rate (default 0.1).
	StepSize float64
	// L2 is the Gaussian-prior strength (default 1e-3).
	L2 float64
	// MaxPasses bounds SGD passes (default 30).
	MaxPasses int
	// Tolerance is the per-pass loss stability threshold (default 1e-4).
	Tolerance float64
}

// sentenceSep joins words/tags into single String cells for table storage.
const sentenceSep = "\x1f"

// LoadCorpus creates an engine table with one row per sentence (words and
// tags joined by an unexposed separator), the layout TrainTable expects.
func LoadCorpus(db *engine.DB, name string, corpus []Sentence) (*engine.Table, error) {
	t, err := db.CreateTable(name, engine.Schema{
		{Name: "words", Kind: engine.String},
		{Name: "tags", Kind: engine.String},
	})
	if err != nil {
		return nil, err
	}
	for _, sent := range corpus {
		words := make([]string, len(sent))
		tags := make([]string, len(sent))
		for i, tok := range sent {
			words[i] = tok.Word
			tags[i] = tok.Tag
		}
		if err := t.Insert(strings.Join(words, sentenceSep), strings.Join(tags, sentenceSep)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Train fits a CRF on an in-memory corpus by staging it into a throwaway
// single-segment database and calling TrainTable — convenience for tests
// and small corpora.
func Train(corpus []Sentence, opts TrainOptions) (*Model, error) {
	if len(corpus) == 0 {
		return nil, ErrNoData
	}
	db := engine.Open(1)
	t, err := LoadCorpus(db, "corpus", corpus)
	if err != nil {
		return nil, err
	}
	return TrainTable(db, t, "words", "tags", opts)
}

// TrainTable fits a CRF from a table of (words, tags) sentence rows.
// Feature construction scans the corpus once; training then runs the
// Table-2 CRF objective through the SGD framework, one aggregate query per
// pass.
func TrainTable(db *engine.DB, table *engine.Table, wordsCol, tagsCol string, opts TrainOptions) (*Model, error) {
	if opts.Extractor == nil {
		var err error
		opts.Extractor, err = NewExtractor(ExtractorOptions{})
		if err != nil {
			return nil, err
		}
	}
	if opts.StepSize == 0 {
		opts.StepSize = 0.1
	}
	if opts.L2 == 0 {
		opts.L2 = 1e-3
	}
	if opts.MaxPasses == 0 {
		opts.MaxPasses = 30
	}
	if opts.Tolerance == 0 {
		opts.Tolerance = 1e-4
	}
	schema := table.Schema()
	wi, ti := schema.Index(wordsCol), schema.Index(tagsCol)
	if wi < 0 || ti < 0 {
		return nil, fmt.Errorf("%w: %q or %q", engine.ErrNoColumn, wordsCol, tagsCol)
	}
	if schema[wi].Kind != engine.String || schema[ti].Kind != engine.String {
		return nil, errors.New("crf: need String word/tag columns")
	}

	m := &Model{ex: opts.Extractor, tagIdx: map[string]int{}, featIdx: map[string]int{}}
	// Pass 1 (one scan): collect the tag alphabet and observation
	// predicates so the feature index covers predicate × every tag.
	type scanState struct {
		tags map[string]bool
		obs  map[string]bool
		rows int64
	}
	v, err := db.Run(table, engine.FuncAggregate{
		InitFn: func() any { return &scanState{tags: map[string]bool{}, obs: map[string]bool{}} },
		TransitionFn: func(s any, row engine.Row) any {
			st := s.(*scanState)
			words := strings.Split(row.Str(wi), sentenceSep)
			tags := strings.Split(row.Str(ti), sentenceSep)
			for _, tag := range tags {
				st.tags[tag] = true
			}
			for t := range words {
				for _, o := range m.ex.observations(words, t) {
					st.obs[o] = true
				}
			}
			st.rows++
			return st
		},
		MergeFn: func(a, b any) any {
			sa, sb := a.(*scanState), b.(*scanState)
			for k := range sb.tags {
				sa.tags[k] = true
			}
			for k := range sb.obs {
				sa.obs[k] = true
			}
			sa.rows += sb.rows
			return sa
		},
		FinalFn: func(s any) (any, error) { return s, nil },
	})
	if err != nil {
		return nil, err
	}
	st := v.(*scanState)
	if st.rows == 0 {
		return nil, ErrNoData
	}
	for tag := range st.tags {
		m.Tags = append(m.Tags, tag)
	}
	sort.Strings(m.Tags)
	for i, tag := range m.Tags {
		m.tagIdx[tag] = i
	}
	obsList := make([]string, 0, len(st.obs))
	for o := range st.obs {
		obsList = append(obsList, o)
	}
	sort.Strings(obsList)
	intern := func(name string) int {
		if id, ok := m.featIdx[name]; ok {
			return id
		}
		id := len(m.featName)
		m.featIdx[name] = id
		m.featName = append(m.featName, name)
		return id
	}
	for _, o := range obsList {
		for _, tag := range m.Tags {
			intern(o + ":" + tag)
		}
	}
	nt := len(m.Tags)
	m.edgeBase = make([][]int, nt)
	for a := 0; a < nt; a++ {
		m.edgeBase[a] = make([]int, nt)
		for b := 0; b < nt; b++ {
			m.edgeBase[a][b] = intern("edge:" + m.Tags[a] + ":" + m.Tags[b])
		}
	}

	// Pass 2..N: SGD on the negative log-likelihood.
	model := &crfObjective{m: m}
	extract := func(r engine.Row) any {
		return labelled{
			words: strings.Split(r.Str(wi), sentenceSep),
			tags:  strings.Split(r.Str(ti), sentenceSep),
		}
	}
	res, err := sgd.Train(db, table, sgd.ExtractFunc(extract), model, sgd.Options{
		StepSize:  opts.StepSize,
		L2:        opts.L2,
		MaxPasses: opts.MaxPasses,
		Tolerance: opts.Tolerance,
	})
	if err != nil {
		return nil, err
	}
	m.Weights = res.Weights
	return m, nil
}

// labelled is the SGD example type.
type labelled struct {
	words []string
	tags  []string
}

// crfObjective adapts the CRF negative log-likelihood to sgd.Model.
type crfObjective struct {
	m *Model
}

func (o *crfObjective) Dim() int { return len(o.m.featName) }

// LossAndGrad computes −log p(tags|words) and its gradient
// (expected − observed feature counts) via forward-backward.
func (o *crfObjective) LossAndGrad(w []float64, example any, grad []float64) float64 {
	ex := example.(labelled)
	m := o.m
	n := len(ex.words)
	if n == 0 || len(ex.tags) != n {
		return 0
	}
	nodeFeats, nodeScores, edgeScores := m.scores(w, ex.words)
	logAlpha, logZ := forward(nodeScores, edgeScores)
	logBeta := backward(nodeScores, edgeScores)
	nt := len(m.Tags)

	// Node terms: expected − observed.
	pathScore := 0.0
	for t := 0; t < n; t++ {
		obsTag, ok := m.tagIdx[ex.tags[t]]
		if !ok {
			// Unseen tag at train time cannot happen (alphabet built from
			// the corpus); guard anyway.
			return 0
		}
		for b := 0; b < nt; b++ {
			p := math.Exp(logAlpha[t][b] + logBeta[t][b] - logZ)
			for _, f := range nodeFeats[t][b] {
				grad[f] += p
			}
			if b == obsTag {
				for _, f := range nodeFeats[t][b] {
					grad[f]--
				}
			}
		}
		pathScore += nodeScores[t][obsTag]
		if t > 0 {
			prev := m.tagIdx[ex.tags[t-1]]
			pathScore += edgeScores[prev][obsTag]
		}
	}
	// Edge terms.
	for t := 1; t < n; t++ {
		for a := 0; a < nt; a++ {
			for b := 0; b < nt; b++ {
				p := math.Exp(logAlpha[t-1][a] + edgeScores[a][b] + nodeScores[t][b] + logBeta[t][b] - logZ)
				grad[m.edgeBase[a][b]] += p
			}
		}
		prev, cur := m.tagIdx[ex.tags[t-1]], m.tagIdx[ex.tags[t]]
		grad[m.edgeBase[prev][cur]]--
	}
	return logZ - pathScore
}

// scores precomputes, for a sentence, each position×tag node feature list
// and score, plus the tag×tag edge score matrix, under weights w.
func (m *Model) scores(w []float64, words []string) (nodeFeats [][][]int, nodeScores [][]float64, edgeScores [][]float64) {
	n := len(words)
	nt := len(m.Tags)
	nodeFeats = make([][][]int, n)
	nodeScores = make([][]float64, n)
	for t := 0; t < n; t++ {
		obs := m.ex.observations(words, t)
		nodeFeats[t] = make([][]int, nt)
		nodeScores[t] = make([]float64, nt)
		for b, tag := range m.Tags {
			var feats []int
			var score float64
			for _, o := range obs {
				if f, ok := m.featIdx[o+":"+tag]; ok {
					feats = append(feats, f)
					score += w[f]
				}
			}
			nodeFeats[t][b] = feats
			nodeScores[t][b] = score
		}
	}
	edgeScores = make([][]float64, nt)
	for a := 0; a < nt; a++ {
		edgeScores[a] = make([]float64, nt)
		for b := 0; b < nt; b++ {
			edgeScores[a][b] = w[m.edgeBase[a][b]]
		}
	}
	return nodeFeats, nodeScores, edgeScores
}

// forward computes log-alphas and logZ.
func forward(nodeScores, edgeScores [][]float64) (logAlpha [][]float64, logZ float64) {
	n := len(nodeScores)
	nt := len(nodeScores[0])
	logAlpha = make([][]float64, n)
	logAlpha[0] = append([]float64(nil), nodeScores[0]...)
	for t := 1; t < n; t++ {
		logAlpha[t] = make([]float64, nt)
		for b := 0; b < nt; b++ {
			acc := math.Inf(-1)
			for a := 0; a < nt; a++ {
				acc = logSumExp2(acc, logAlpha[t-1][a]+edgeScores[a][b])
			}
			logAlpha[t][b] = acc + nodeScores[t][b]
		}
	}
	logZ = math.Inf(-1)
	for _, v := range logAlpha[n-1] {
		logZ = logSumExp2(logZ, v)
	}
	return logAlpha, logZ
}

// backward computes log-betas.
func backward(nodeScores, edgeScores [][]float64) [][]float64 {
	n := len(nodeScores)
	nt := len(nodeScores[0])
	logBeta := make([][]float64, n)
	logBeta[n-1] = make([]float64, nt) // zeros
	for t := n - 2; t >= 0; t-- {
		logBeta[t] = make([]float64, nt)
		for a := 0; a < nt; a++ {
			acc := math.Inf(-1)
			for b := 0; b < nt; b++ {
				acc = logSumExp2(acc, edgeScores[a][b]+nodeScores[t+1][b]+logBeta[t+1][b])
			}
			logBeta[t][a] = acc
		}
	}
	return logBeta
}

func logSumExp2(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// Marginals returns the exact per-position tag marginals P(y_t = tag)
// via forward-backward — the reference the MCMC tests compare against.
func (m *Model) Marginals(words []string) [][]float64 {
	if len(words) == 0 {
		return nil
	}
	_, nodeScores, edgeScores := m.scores(m.Weights, words)
	logAlpha, logZ := forward(nodeScores, edgeScores)
	logBeta := backward(nodeScores, edgeScores)
	n := len(words)
	nt := len(m.Tags)
	out := make([][]float64, n)
	for t := 0; t < n; t++ {
		out[t] = make([]float64, nt)
		for b := 0; b < nt; b++ {
			out[t][b] = math.Exp(logAlpha[t][b] + logBeta[t][b] - logZ)
		}
	}
	return out
}

// LogLikelihood returns log p(tags|words) under the trained model.
func (m *Model) LogLikelihood(words, tags []string) (float64, error) {
	if len(words) != len(tags) {
		return 0, fmt.Errorf("crf: %d words vs %d tags", len(words), len(tags))
	}
	if len(words) == 0 {
		return 0, nil
	}
	_, nodeScores, edgeScores := m.scores(m.Weights, words)
	_, logZ := forward(nodeScores, edgeScores)
	score := 0.0
	for t := range words {
		b, ok := m.tagIdx[tags[t]]
		if !ok {
			return 0, fmt.Errorf("crf: unknown tag %q", tags[t])
		}
		score += nodeScores[t][b]
		if t > 0 {
			score += edgeScores[m.tagIdx[tags[t-1]]][b]
		}
	}
	return score - logZ, nil
}

// FeatureCount returns the size of the trained feature space.
func (m *Model) FeatureCount() int { return len(m.featName) }
