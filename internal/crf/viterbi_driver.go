package crf

import (
	"fmt"

	"madlib/internal/engine"
)

// ViterbiViaDriver is the paper's second Viterbi implementation (§5.2):
// instead of an in-memory dynamic program, a driver function advances one
// token position per iteration, staging each DP layer (per-tag best scores
// and backpointers) as a row of a temporary table — "a Python UDF that
// uses iterations to drive the recursion in Viterbi. This iterative
// implementation runs over both PostgreSQL and Greenplum." The backtrace
// then reads the staged layers back out of the engine.
//
// It returns exactly the same sequence as Viterbi; the in-memory version
// is the test oracle.
func (m *Model) ViterbiViaDriver(db *engine.DB, words []string) ([]string, error) {
	n := len(words)
	if n == 0 {
		return nil, nil
	}
	nt := len(m.Tags)
	_, nodeScores, edgeScores := m.scores(m.Weights, words)

	// CREATE TEMP TABLE viterbi_layers(position, scores, backptrs).
	layers, err := db.CreateTempTable("viterbi_layers", engine.Schema{
		{Name: "position", Kind: engine.Int},
		{Name: "scores", Kind: engine.Vector},
		{Name: "backptrs", Kind: engine.Vector},
	})
	if err != nil {
		return nil, err
	}
	defer func() { _ = db.DropTable(layers.Name()) }()

	// Iteration 0: initial layer.
	cur := make([]float64, nt)
	copy(cur, nodeScores[0])
	if err := layers.Insert(int64(0), append([]float64(nil), cur...), make([]float64, nt)); err != nil {
		return nil, err
	}
	// Driver loop: one iteration per token position. Each step consumes
	// only the previous inter-iteration state (the last layer's scores) —
	// never the bulk table — and stages its output layer.
	for t := 1; t < n; t++ {
		next := make([]float64, nt)
		back := make([]float64, nt)
		for b := 0; b < nt; b++ {
			bestScore, bestPrev := cur[0]+edgeScores[0][b], 0
			for a := 1; a < nt; a++ {
				if s := cur[a] + edgeScores[a][b]; s > bestScore {
					bestScore, bestPrev = s, a
				}
			}
			next[b] = bestScore + nodeScores[t][b]
			back[b] = float64(bestPrev)
		}
		if err := layers.Insert(int64(t), append([]float64(nil), next...), back); err != nil {
			return nil, err
		}
		cur = next
	}

	// Backtrace: fetch all layers from the engine (ordered by position),
	// pick the best final tag, and walk the backpointers.
	type layer struct {
		scores, back []float64
	}
	byPos := make([]layer, n)
	err = db.ForEachSegment(layers, func(_ int, row engine.Row) error {
		pos := int(row.Int(0))
		if pos < 0 || pos >= n {
			return fmt.Errorf("crf: corrupt layer position %d", pos)
		}
		byPos[pos] = layer{scores: row.Vector(1), back: row.Vector(2)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	best := 0
	for b := 1; b < nt; b++ {
		if byPos[n-1].scores[b] > byPos[n-1].scores[best] {
			best = b
		}
	}
	tags := make([]string, n)
	for t := n - 1; t >= 0; t-- {
		tags[t] = m.Tags[best]
		if t > 0 {
			best = int(byPos[t].back[best])
		}
	}
	return tags, nil
}
