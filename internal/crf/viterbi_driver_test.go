package crf

import (
	"testing"

	"madlib/internal/engine"
)

// The driver-based Viterbi (the paper's iterative second implementation)
// must agree exactly with the in-memory dynamic program.
func TestViterbiViaDriverMatchesInMemory(t *testing.T) {
	train := corpus(21, 150, 7)
	m, err := Train(train, TrainOptions{MaxPasses: 12})
	if err != nil {
		t.Fatal(err)
	}
	db := engine.Open(4)
	sentences := [][]string{
		{"the"},
		{"the", "dog"},
		{"the", "fast", "analyst", "builds", "a", "sparse", "model"},
		{"every", "database", "scans", "the", "noisy", "tree"},
	}
	for _, words := range sentences {
		want := m.Viterbi(words)
		got, err := m.ViterbiViaDriver(db, words)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("length %d != %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("driver Viterbi %v != in-memory %v for %v", got, want, words)
			}
		}
	}
	// Empty input.
	if tags, err := m.ViterbiViaDriver(db, nil); err != nil || tags != nil {
		t.Fatalf("empty input: %v, %v", tags, err)
	}
	// No leftover temp tables.
	if names := db.TableNames(); len(names) != 0 {
		t.Fatalf("leaked tables: %v", names)
	}
}
