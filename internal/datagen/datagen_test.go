package datagen

import (
	"math"
	"testing"

	"madlib/internal/engine"
)

func TestRegressionDeterministicAndShaped(t *testing.T) {
	a := NewRegression(5, 100, 4, 0.1)
	b := NewRegression(5, 100, 4, 0.1)
	if len(a.X) != 100 || len(a.X[0]) != 4 || len(a.Y) != 100 {
		t.Fatalf("shape: %d×%d", len(a.X), len(a.X[0]))
	}
	for i := range a.X {
		if a.X[i][0] != 1 {
			t.Fatal("intercept column not 1")
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("same seed produced different data")
			}
		}
	}
	c := NewRegression(6, 100, 4, 0.1)
	if c.Y[0] == a.Y[0] && c.Y[1] == a.Y[1] && c.Y[2] == a.Y[2] {
		t.Fatal("different seeds produced identical data")
	}
}

func TestRegressionLoad(t *testing.T) {
	db := engine.Open(3)
	gen := NewRegression(1, 50, 3, 0.1)
	tbl, err := gen.LoadRegression(db, "r")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Count() != 50 {
		t.Fatalf("rows = %d", tbl.Count())
	}
}

func TestLogisticLabelsAndBalance(t *testing.T) {
	gen := NewLogistic(2, 5000, 3)
	ones := 0
	for _, y := range gen.Y {
		if y != 0 && y != 1 {
			t.Fatalf("label %v not in {0,1}", y)
		}
		if y == 1 {
			ones++
		}
	}
	// Should not be degenerate.
	if ones < 500 || ones > 4500 {
		t.Fatalf("label balance: %d/5000 positives", ones)
	}
}

func TestMarginRespectsMargin(t *testing.T) {
	gen := NewMargin(3, 500, 4, 0.5)
	for i, x := range gen.X {
		var z float64
		for j := range x {
			z += gen.Coef[j] * x[j]
		}
		if math.Abs(z) < 0.5 {
			t.Fatalf("row %d violates margin: %v", i, z)
		}
		if gen.Y[i] != math.Copysign(1, z) {
			t.Fatalf("row %d mislabelled", i)
		}
	}
}

func TestClustersLabelsMatchCenters(t *testing.T) {
	gen := NewClusters(4, 1000, 3, 2, 0.1)
	if len(gen.Centers) != 3 {
		t.Fatalf("centers = %d", len(gen.Centers))
	}
	// With tiny std, every point is far closer to its own center.
	for i, p := range gen.Points {
		own := dist2(p, gen.Centers[gen.Label[i]])
		for c := range gen.Centers {
			if c != gen.Label[i] && dist2(p, gen.Centers[c]) < own {
				// Lattice centers can coincide; only fail if they differ.
				if dist2(gen.Centers[c], gen.Centers[gen.Label[i]]) > 1e-9 {
					t.Fatalf("point %d closer to foreign center", i)
				}
			}
		}
	}
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func TestBasketsNonEmpty(t *testing.T) {
	baskets := Baskets(5, 300, 10)
	if len(baskets) != 300 {
		t.Fatalf("baskets = %d", len(baskets))
	}
	for i, b := range baskets {
		if len(b) == 0 {
			t.Fatalf("basket %d empty", i)
		}
	}
}

func TestRatingsBounds(t *testing.T) {
	r := NewRatings(6, 10, 8, 2, 100, 0.1)
	if len(r.Entries) != 100 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	for _, e := range r.Entries {
		if e.I < 0 || e.I >= 10 || e.J < 0 || e.J >= 8 {
			t.Fatalf("cell out of range: %+v", e)
		}
	}
}

func TestCorpusGrammar(t *testing.T) {
	corpus := NewCorpus(7, 50, 8)
	if len(corpus) != 50 {
		t.Fatalf("sentences = %d", len(corpus))
	}
	valid := map[string]bool{}
	for _, tag := range TagSet {
		valid[tag] = true
	}
	for _, sent := range corpus {
		if len(sent) < 2 {
			t.Fatalf("sentence too short: %v", sent)
		}
		for _, tok := range sent {
			if !valid[tok.Tag] {
				t.Fatalf("unknown tag %q", tok.Tag)
			}
			if tok.Word == "" {
				t.Fatal("empty word")
			}
		}
	}
}

func TestNamesVariants(t *testing.T) {
	canonical, mentions := Names(8, 4)
	if len(mentions) != len(canonical)*4 {
		t.Fatalf("mentions = %d", len(mentions))
	}
	for _, m := range mentions {
		if m == "" {
			t.Fatal("empty mention")
		}
	}
}

func TestStreamValuesSkewed(t *testing.T) {
	vals := StreamValues(9, 10000, 100)
	counts := map[int64]int{}
	for _, v := range vals {
		if v < 0 || v >= 100 {
			t.Fatalf("value %d outside universe", v)
		}
		counts[v]++
	}
	// Zipf: the most common value should dominate the median one.
	if counts[0] < 10*counts[50]+1 {
		t.Fatalf("stream not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}
