// Package datagen produces the synthetic workloads the benchmark harness
// and tests run against: Gaussian regression designs (the Figure 4/5
// workload), logistic-labelled points, mixtures of Gaussians for
// clustering, market baskets for association rules, ratings matrices for
// recommendation, and tagged token sequences for the text-analytics
// experiments. Everything is deterministic given a seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"madlib/internal/engine"
)

// Regression holds a generated regression dataset and its ground truth.
type Regression struct {
	X    [][]float64
	Y    []float64
	Coef []float64 // the true coefficient vector used to generate Y
}

// NewRegression generates n rows of a k-variable linear model
// y = <coef, x> + noise, with x[0] fixed at 1 (intercept column) and the
// remaining variables standard normal. Noise is N(0, noiseStd²).
func NewRegression(seed int64, n, k int, noiseStd float64) *Regression {
	rng := rand.New(rand.NewSource(seed))
	coef := make([]float64, k)
	for i := range coef {
		coef[i] = rng.NormFloat64() * 2
	}
	r := &Regression{Coef: coef, X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, k)
		x[0] = 1
		for j := 1; j < k; j++ {
			x[j] = rng.NormFloat64()
		}
		var y float64
		for j := 0; j < k; j++ {
			y += coef[j] * x[j]
		}
		y += rng.NormFloat64() * noiseStd
		r.X[i] = x
		r.Y[i] = y
	}
	return r
}

// LoadRegression creates table name with columns (y Float, x Vector) and
// inserts the dataset.
func (r *Regression) LoadRegression(db *engine.DB, name string) (*engine.Table, error) {
	t, err := db.CreateTable(name, engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	if err != nil {
		return nil, err
	}
	for i := range r.X {
		if err := t.Insert(r.Y[i], r.X[i]); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Classification holds a generated binary-labelled dataset.
type Classification struct {
	X    [][]float64
	Y    []float64 // labels in {0,1}
	Coef []float64 // true logistic coefficients
}

// NewLogistic generates n rows with Pr[y=1|x] = sigmoid(<coef, x>), x[0]=1.
func NewLogistic(seed int64, n, k int) *Classification {
	rng := rand.New(rand.NewSource(seed))
	coef := make([]float64, k)
	for i := range coef {
		coef[i] = rng.NormFloat64() * 1.5
	}
	c := &Classification{Coef: coef, X: make([][]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		x := make([]float64, k)
		x[0] = 1
		for j := 1; j < k; j++ {
			x[j] = rng.NormFloat64()
		}
		var z float64
		for j := 0; j < k; j++ {
			z += coef[j] * x[j]
		}
		p := 1 / (1 + math.Exp(-z))
		if rng.Float64() < p {
			c.Y[i] = 1
		}
		c.X[i] = x
	}
	return c
}

// NewMargin generates a linearly separable ±1-labelled dataset with the
// given margin, for SVM tests: y = sign(<w,x>+b) with |<w,x>+b| ≥ margin.
func NewMargin(seed int64, n, k int, margin float64) *Classification {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, k)
	var norm float64
	for i := range w {
		w[i] = rng.NormFloat64()
		norm += w[i] * w[i]
	}
	norm = math.Sqrt(norm)
	for i := range w {
		w[i] /= norm
	}
	c := &Classification{Coef: w, X: make([][]float64, 0, n), Y: make([]float64, 0, n)}
	for len(c.X) < n {
		x := make([]float64, k)
		for j := range x {
			x[j] = rng.NormFloat64() * 3
		}
		var z float64
		for j := range x {
			z += w[j] * x[j]
		}
		if math.Abs(z) < margin {
			continue
		}
		y := 1.0
		if z < 0 {
			y = -1
		}
		c.X = append(c.X, x)
		c.Y = append(c.Y, y)
	}
	return c
}

// Load creates table name with columns (y Float, x Vector).
func (c *Classification) Load(db *engine.DB, name string) (*engine.Table, error) {
	t, err := db.CreateTable(name, engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	if err != nil {
		return nil, err
	}
	for i := range c.X {
		if err := t.Insert(c.Y[i], c.X[i]); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Clusters holds points drawn from a mixture of spherical Gaussians.
type Clusters struct {
	Points  [][]float64
	Label   []int // generating component of each point
	Centers [][]float64
}

// NewClusters draws n points from k Gaussian components with the given
// within-cluster standard deviation; centers are spread on a scaled lattice
// so they are well separated when std is small.
func NewClusters(seed int64, n, k, dim int, std float64) *Clusters {
	rng := rand.New(rand.NewSource(seed))
	c := &Clusters{Centers: make([][]float64, k)}
	for j := 0; j < k; j++ {
		center := make([]float64, dim)
		for d := 0; d < dim; d++ {
			center[d] = float64(rng.Intn(21)-10) * 2
		}
		c.Centers[j] = center
	}
	c.Points = make([][]float64, n)
	c.Label = make([]int, n)
	for i := 0; i < n; i++ {
		j := rng.Intn(k)
		p := make([]float64, dim)
		for d := 0; d < dim; d++ {
			p[d] = c.Centers[j][d] + rng.NormFloat64()*std
		}
		c.Points[i] = p
		c.Label[i] = j
	}
	return c
}

// Load creates table name with columns (coords Vector, centroid_id Int),
// the §4.3 points-table layout.
func (c *Clusters) Load(db *engine.DB, name string) (*engine.Table, error) {
	t, err := db.CreateTable(name, engine.Schema{
		{Name: "coords", Kind: engine.Vector},
		{Name: "centroid_id", Kind: engine.Int},
	})
	if err != nil {
		return nil, err
	}
	for _, p := range c.Points {
		if err := t.Insert(p, int64(-1)); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// Baskets generates market baskets for association-rule mining. Each basket
// draws from `nItems` items; the rule base plants correlated pairs
// (item2i → item2i+1 with high confidence) so Apriori has structure to find.
func Baskets(seed int64, nBaskets, nItems int) [][]string {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]string, nBaskets)
	for b := range out {
		var basket []string
		for i := 0; i < nItems; i += 2 {
			if rng.Float64() < 0.3 {
				basket = append(basket, fmt.Sprintf("item%d", i))
				if rng.Float64() < 0.8 { // planted rule: item_i ⇒ item_{i+1}
					basket = append(basket, fmt.Sprintf("item%d", i+1))
				}
			} else if rng.Float64() < 0.1 {
				basket = append(basket, fmt.Sprintf("item%d", i+1))
			}
		}
		if len(basket) == 0 {
			// A neutral filler keeps baskets non-empty without polluting
			// the planted pair statistics.
			basket = append(basket, "filler")
		}
		out[b] = basket
	}
	return out
}

// Ratings holds a synthetic low-rank ratings matrix sample.
type Ratings struct {
	Rows, Cols int
	Rank       int
	Entries    []RatingEntry
}

// RatingEntry is one observed (i, j, value) cell.
type RatingEntry struct {
	I, J  int
	Value float64
}

// NewRatings samples `count` observed entries of an (rows×cols) matrix of
// exact rank `rank` plus N(0, noise²) perturbation.
func NewRatings(seed int64, rows, cols, rank, count int, noise float64) *Ratings {
	rng := rand.New(rand.NewSource(seed))
	l := make([][]float64, rows)
	r := make([][]float64, cols)
	for i := range l {
		l[i] = make([]float64, rank)
		for k := range l[i] {
			l[i][k] = rng.NormFloat64()
		}
	}
	for j := range r {
		r[j] = make([]float64, rank)
		for k := range r[j] {
			r[j][k] = rng.NormFloat64()
		}
	}
	out := &Ratings{Rows: rows, Cols: cols, Rank: rank}
	for c := 0; c < count; c++ {
		i, j := rng.Intn(rows), rng.Intn(cols)
		var v float64
		for k := 0; k < rank; k++ {
			v += l[i][k] * r[j][k]
		}
		out.Entries = append(out.Entries, RatingEntry{I: i, J: j, Value: v + rng.NormFloat64()*noise})
	}
	return out
}

// TaggedToken is one token with its part-of-speech-style label.
type TaggedToken struct {
	Word string
	Tag  string
}

// TagSet is the label alphabet of the synthetic corpus.
var TagSet = []string{"DET", "NOUN", "VERB", "ADJ"}

var corpusLexicon = map[string][]string{
	"DET":  {"the", "a", "this", "that", "every"},
	"NOUN": {"dog", "cat", "house", "tree", "analyst", "database", "model", "query"},
	"VERB": {"runs", "sees", "builds", "scans", "fits", "joins"},
	"ADJ":  {"big", "small", "fast", "sparse", "noisy"},
}

// tagTransitions is the Markov chain over tags used to generate sentences;
// it is strongly structured (DET→NOUN, NOUN→VERB, …) so that sequence
// models have signal to learn.
var tagTransitions = map[string][]string{
	"":     {"DET", "DET", "DET", "NOUN"},
	"DET":  {"NOUN", "NOUN", "NOUN", "ADJ"},
	"ADJ":  {"NOUN", "NOUN", "ADJ"},
	"NOUN": {"VERB", "VERB", "VERB", "NOUN"},
	"VERB": {"DET", "DET", "ADJ", "NOUN"},
}

// NewCorpus generates nSent synthetic tagged sentences of the given mean
// length. Sentences follow the DET→(ADJ)→NOUN→VERB grammar above, giving
// CRF training a learnable transition structure.
func NewCorpus(seed int64, nSent, meanLen int) [][]TaggedToken {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]TaggedToken, nSent)
	for s := range out {
		n := meanLen/2 + rng.Intn(meanLen)
		if n < 2 {
			n = 2
		}
		sent := make([]TaggedToken, n)
		prev := ""
		for i := 0; i < n; i++ {
			choices := tagTransitions[prev]
			tag := choices[rng.Intn(len(choices))]
			words := corpusLexicon[tag]
			sent[i] = TaggedToken{Word: words[rng.Intn(len(words))], Tag: tag}
			prev = tag
		}
		out[s] = sent
	}
	return out
}

// Names returns a list of person-like entity names plus `n` misspelled
// variants of each for the approximate-string-matching (ER) experiments.
func Names(seed int64, n int) (canonical []string, mentions []string) {
	rng := rand.New(rand.NewSource(seed))
	canonical = []string{"Tim Tebow", "Joe Hellerstein", "Grace Hopper", "Ada Lovelace", "Alan Turing"}
	alphabet := "abcdefghijklmnopqrstuvwxyz"
	for _, name := range canonical {
		for i := 0; i < n; i++ {
			b := []byte(name)
			pos := rng.Intn(len(b))
			switch rng.Intn(3) {
			case 0: // substitute
				b[pos] = alphabet[rng.Intn(len(alphabet))]
			case 1: // delete
				b = append(b[:pos], b[pos+1:]...)
			default: // insert
				b = append(b[:pos], append([]byte{alphabet[rng.Intn(len(alphabet))]}, b[pos:]...)...)
			}
			mentions = append(mentions, string(b))
		}
	}
	return canonical, mentions
}

// StreamValues generates n values from a Zipf-like distribution over
// `universe` distinct integers — the skewed stream the sketch experiments
// use (heavy hitters + long tail).
func StreamValues(seed int64, n, universe int) []int64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.3, 1, uint64(universe-1))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(z.Uint64())
	}
	return out
}
