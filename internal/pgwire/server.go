package pgwire

import (
	"bufio"
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"madlib/internal/engine"
	"madlib/internal/metrics"
	"madlib/internal/sql"
)

// Config tunes a Server.
type Config struct {
	// Listen is the TCP address to bind, e.g. ":5432" or "127.0.0.1:0".
	Listen string
	// MaxSessions bounds concurrent connections (each holds one SQL
	// session). Further connections are refused with SQLSTATE 53300.
	// Zero means 64.
	MaxSessions int
	// StatementTimeout aborts any single statement that runs longer,
	// with SQLSTATE 57014. Zero means no timeout.
	StatementTimeout time.Duration
	// Logf, when set, receives one line per notable server event.
	Logf func(format string, args ...any)
}

// Server speaks the PostgreSQL wire protocol over TCP for one shared
// engine database. Connections are handled concurrently; each draws a
// *sql.Session from a bounded pool for the life of the connection.
type Server struct {
	db   *engine.DB
	cfg  Config
	pool *sessionPool

	ln      net.Listener
	mu      sync.Mutex
	conns   map[int32]*conn
	closed  bool
	drain   bool
	nextPID atomic.Int32
	wg      sync.WaitGroup

	connections *metrics.Counter
	queries     *metrics.Counter
	errorsCtr   *metrics.Counter
}

// NewServer wires a server to db. Call Start to begin listening.
func NewServer(db *engine.DB, cfg Config) *Server {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	reg := db.Metrics()
	return &Server{
		db:          db,
		cfg:         cfg,
		pool:        &sessionPool{db: db, max: cfg.MaxSessions},
		conns:       make(map[int32]*conn),
		connections: reg.Counter("pgwire_connections"),
		queries:     reg.Counter("pgwire_queries"),
		errorsCtr:   reg.Counter("pgwire_errors"),
	}
}

// Start binds the listen address and serves connections until Shutdown.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Listen)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("pgwire: server already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	s.logf("pgwire: listening on %s", ln.Addr())
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		nc, err := ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(nc)
		}()
	}
}

// Shutdown drains the server: the listener closes, idle connections are
// dropped, and busy connections finish their in-flight statement and are
// then told 57P01 (admin shutdown). When ctx expires first, remaining
// queries are cancelled and sockets force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.drain = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.beginDrain()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, c := range conns {
			c.abortActive()
			c.nc.Close()
		}
		<-done
		return ctx.Err()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

func (s *Server) register(c *conn) {
	s.mu.Lock()
	s.conns[c.pid] = c
	s.mu.Unlock()
}

func (s *Server) unregister(c *conn) {
	s.mu.Lock()
	delete(s.conns, c.pid)
	s.mu.Unlock()
}

// cancelBackend services a wire CancelRequest: if the (pid, secret) pair
// matches a live connection, its active query's context is cancelled.
// Mismatches are ignored silently, as in PostgreSQL.
func (s *Server) cancelBackend(pid, secret int32) {
	s.mu.Lock()
	c := s.conns[pid]
	s.mu.Unlock()
	if c != nil && c.secret == secret {
		c.abortActive()
	}
}

// sessionPool bounds live sessions and recycles them across connections.
// A returned session is wiped (DEALLOCATE ALL) before reuse so one
// client's prepared statements never leak into the next.
type sessionPool struct {
	db    *engine.DB
	max   int
	mu    sync.Mutex
	free  []*sql.Session
	total int
}

var errPoolFull = errors.New("pgwire: too many connections")

func (p *sessionPool) acquire() (*sql.Session, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		sess := p.free[n-1]
		p.free = p.free[:n-1]
		return sess, nil
	}
	if p.total >= p.max {
		return nil, errPoolFull
	}
	p.total++
	return sql.NewSession(p.db), nil
}

func (p *sessionPool) release(sess *sql.Session) {
	_, _ = sess.Run(&sql.Deallocate{All: true})
	p.mu.Lock()
	p.free = append(p.free, sess)
	p.mu.Unlock()
}

// preparedStmt is one client-visible prepared statement. Plannable
// statements (SELECT/INSERT) live in the session under sessName via the
// session's PREPARE machinery; everything else keeps its AST here and is
// planned at Execute.
type preparedStmt struct {
	sessName  string
	stmt      sql.Statement
	query     string
	numParams int
	cols      []string
	paramOIDs []int32
	empty     bool
}

type portal struct {
	ps     *preparedStmt
	params []any
}

type frontendMsg struct {
	typ  byte
	body []byte
	err  error
}

// conn is one client connection. A dedicated reader goroutine parses
// frontend messages into msgs so the main loop can be mid-query and the
// connection still notices a dropped socket (the reader fails and aborts
// the active statement's context).
type conn struct {
	srv    *Server
	nc     net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	sess   *sql.Session
	pid    int32
	secret int32

	msgs chan frontendMsg
	done chan struct{} // closed when serveLoop exits
	gone atomic.Bool   // reader saw EOF/reset

	mu           sync.Mutex
	activeCancel context.CancelFunc
	draining     bool

	prepared map[string]*preparedStmt
	portals  map[string]*portal
}

func (c *conn) beginDrain() {
	c.mu.Lock()
	busy := c.activeCancel != nil
	c.draining = true
	c.mu.Unlock()
	if !busy {
		// Idle: the main loop is blocked on the reader; closing the
		// socket unblocks it.
		c.nc.Close()
	}
}

func (c *conn) abortActive() {
	c.mu.Lock()
	cancel := c.activeCancel
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (c *conn) setActive(cancel context.CancelFunc) {
	c.mu.Lock()
	c.activeCancel = cancel
	c.mu.Unlock()
}

func (c *conn) isDraining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

func (s *Server) handleConn(nc net.Conn) {
	defer nc.Close()
	c := &conn{
		srv:      s,
		nc:       nc,
		r:        bufio.NewReaderSize(nc, 8192),
		w:        bufio.NewWriterSize(nc, 8192),
		prepared: make(map[string]*preparedStmt),
		portals:  make(map[string]*portal),
	}
	if !c.handshake() {
		return
	}
	defer s.logf("pgwire: conn %d closed", c.pid)

	sess, err := s.pool.acquire()
	if err != nil {
		c.writeError(codeTooManyConns, "too many connections", true)
		c.w.Flush()
		return
	}
	c.sess = sess
	defer s.pool.release(sess)

	s.connections.Inc()
	s.register(c)
	defer s.unregister(c)

	c.writeGreeting()
	if c.w.Flush() != nil {
		return
	}

	c.msgs = make(chan frontendMsg, 64)
	c.done = make(chan struct{})
	go c.readLoop()
	c.serveLoop()
	close(c.done)
}

// handshake consumes startup-phase packets. It returns false when the
// connection should close without serving queries (cancel requests,
// read errors, protocol mismatch).
func (c *conn) handshake() bool {
	for {
		var head [8]byte
		if _, err := readFullDeadline(c.nc, c.r, head[:]); err != nil {
			return false
		}
		n := int(binary.BigEndian.Uint32(head[:4]))
		code := int32(binary.BigEndian.Uint32(head[4:]))
		if n < 8 || n-8 > maxMessageLen {
			return false
		}
		rest := make([]byte, n-8)
		if _, err := readFullDeadline(c.nc, c.r, rest); err != nil {
			return false
		}
		switch code {
		case sslRequestCode, gssEncReqCode:
			// No TLS/GSS support: reply 'N', client retries plaintext.
			if _, err := c.nc.Write([]byte{'N'}); err != nil {
				return false
			}
		case cancelReqCode:
			if len(rest) == 8 {
				pid := int32(binary.BigEndian.Uint32(rest[:4]))
				secret := int32(binary.BigEndian.Uint32(rest[4:]))
				c.srv.cancelBackend(pid, secret)
			}
			return false
		case protocolVersion:
			c.pid = c.srv.nextPID.Add(1)
			var sec [4]byte
			if _, err := rand.Read(sec[:]); err != nil {
				return false
			}
			c.secret = int32(binary.BigEndian.Uint32(sec[:]))
			return true
		default:
			c.writeError(codeProtocolViolation,
				fmt.Sprintf("unsupported protocol %d.%d", code>>16, code&0xffff), true)
			c.w.Flush()
			return false
		}
	}
}

// readFullDeadline reads exactly len(buf) bytes with a 30s startup
// deadline so half-open handshakes cannot pin a connection slot forever.
func readFullDeadline(nc net.Conn, r *bufio.Reader, buf []byte) (int, error) {
	nc.SetReadDeadline(time.Now().Add(30 * time.Second))
	defer nc.SetReadDeadline(time.Time{})
	total := 0
	for total < len(buf) {
		n, err := r.Read(buf[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (c *conn) writeGreeting() {
	m := newMsg(msgAuth)
	m.int32(0) // AuthenticationOk — trust
	m.writeTo(c.w)
	for _, kv := range [][2]string{
		{"server_version", "13.0 (madlib)"},
		{"server_encoding", "UTF8"},
		{"client_encoding", "UTF8"},
		{"DateStyle", "ISO"},
		{"integer_datetimes", "on"},
		{"standard_conforming_strings", "on"},
	} {
		m = newMsg(msgParameterStatus)
		m.cstring(kv[0])
		m.cstring(kv[1])
		m.writeTo(c.w)
	}
	m = newMsg(msgBackendKeyData)
	m.int32(c.pid)
	m.int32(c.secret)
	m.writeTo(c.w)
	c.writeReady()
}

// readLoop feeds frontend messages to the main loop. On any read error
// it aborts the active statement — this is how a dropped client stops a
// scan that is already running.
func (c *conn) readLoop() {
	for {
		typ, body, err := readMessage(c.r)
		if err != nil {
			c.gone.Store(true)
			c.abortActive()
			select {
			case c.msgs <- frontendMsg{err: err}:
			case <-c.done:
			}
			return
		}
		select {
		case c.msgs <- frontendMsg{typ: typ, body: body}:
		case <-c.done:
			return
		}
		if typ == msgTerminate {
			return
		}
	}
}

func (c *conn) serveLoop() {
	skipToSync := false // extended-protocol error: ignore until Sync
	for {
		if c.isDraining() {
			c.writeError(codeAdminShutdown, "server is shutting down", true)
			c.w.Flush()
			return
		}
		m := <-c.msgs
		if m.err != nil {
			return
		}
		if skipToSync && m.typ != msgSync && m.typ != msgTerminate {
			continue
		}
		switch m.typ {
		case msgTerminate:
			return
		case msgQuery:
			c.handleSimpleQuery(m.body)
		case msgParse:
			skipToSync = !c.handleParse(m.body)
		case msgBind:
			skipToSync = !c.handleBind(m.body)
		case msgDescribe:
			skipToSync = !c.handleDescribe(m.body)
		case msgExecute:
			skipToSync = !c.handleExecute(m.body)
		case msgClose:
			skipToSync = !c.handleClose(m.body)
		case msgSync:
			skipToSync = false
			c.writeReady()
		case msgFlush:
		default:
			c.writeError(codeProtocolViolation,
				fmt.Sprintf("unsupported message %q", m.typ), false)
			skipToSync = true
		}
		if m.typ == msgQuery || m.typ == msgSync || m.typ == msgFlush {
			if c.w.Flush() != nil {
				return
			}
		}
		if c.gone.Load() {
			return
		}
	}
}

// queryContext builds the context one statement runs under: cancelled on
// wire CancelRequest or client drop, deadline-bounded by the configured
// statement timeout. The engine observes it at morsel boundaries.
func (c *conn) queryContext() (context.Context, context.CancelFunc) {
	ctx := context.Background()
	var cancel context.CancelFunc
	if d := c.srv.cfg.StatementTimeout; d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	c.setActive(cancel)
	return ctx, func() {
		c.setActive(nil)
		cancel()
	}
}

func (c *conn) handleSimpleQuery(body []byte) {
	r := &reader{body: body}
	text := r.cstring()
	if r.err != nil {
		c.writeError(codeProtocolViolation, "malformed Query", false)
		c.writeReady()
		return
	}
	if strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(text), ";")) == "" {
		m := newMsg(msgEmptyQuery)
		m.writeTo(c.w)
		c.writeReady()
		return
	}
	ctx, done := c.queryContext()
	results, err := c.sess.ExecContext(ctx, text)
	done()
	for _, res := range results {
		c.srv.queries.Inc()
		c.writeResultSet(res, true)
	}
	if err != nil {
		c.writeQueryError(err)
	}
	c.writeReady()
}

// writeResultSet emits one statement's output: RowDescription (when the
// statement produces rows and withDesc is set), DataRows, and the
// CommandComplete tag.
func (c *conn) writeResultSet(res *sql.Result, withDesc bool) {
	if len(res.Cols) > 0 && withDesc {
		c.writeRowDescription(res.Cols, inferOIDs(res))
	}
	for _, row := range res.Rows {
		m := newMsg(msgDataRow)
		m.int16(int16(len(row)))
		for _, v := range row {
			if v == nil {
				m.int32(-1)
				continue
			}
			s := sql.FormatValue(v)
			m.int32(int32(len(s)))
			m.bytes([]byte(s))
		}
		m.writeTo(c.w)
	}
	m := newMsg(msgCommandComplete)
	m.cstring(res.Tag)
	m.writeTo(c.w)
}

func (c *conn) writeRowDescription(cols []string, oids []int32) {
	m := newMsg(msgRowDescription)
	m.int16(int16(len(cols)))
	for i, name := range cols {
		oid := int32(oidText)
		if i < len(oids) && oids[i] != 0 {
			oid = oids[i]
		}
		m.cstring(name)
		m.int32(0) // table OID
		m.int16(0) // attribute number
		m.int32(oid)
		m.int16(-1) // typlen: variable
		m.int32(-1) // typmod
		m.int16(0)  // format: text
	}
	m.writeTo(c.w)
}

// inferOIDs maps the first row's Go values to type OIDs; columns with no
// rows to sample default to text (values travel in text format anyway).
func inferOIDs(res *sql.Result) []int32 {
	oids := make([]int32, len(res.Cols))
	if len(res.Rows) == 0 {
		return oids
	}
	for i, v := range res.Rows[0] {
		if i >= len(oids) {
			break
		}
		switch v.(type) {
		case int64:
			oids[i] = oidInt8
		case float64:
			oids[i] = oidFloat8
		case bool:
			oids[i] = oidBool
		case []float64:
			oids[i] = oidFloat8Array
		case string, nil:
			oids[i] = oidText
		}
	}
	return oids
}

func (c *conn) writeReady() {
	m := newMsg(msgReadyForQuery)
	m.byte('I')
	m.writeTo(c.w)
}

// writeError emits an ErrorResponse. fatal marks connection-terminating
// errors (severity FATAL) such as pool exhaustion or shutdown.
func (c *conn) writeError(sqlstate, message string, fatal bool) {
	sev := "ERROR"
	if fatal {
		sev = "FATAL"
	}
	m := newMsg(msgErrorResponse)
	m.byte('S')
	m.cstring(sev)
	m.byte('V')
	m.cstring(sev)
	m.byte('C')
	m.cstring(sqlstate)
	m.byte('M')
	m.cstring(message)
	m.byte(0)
	m.writeTo(c.w)
}

func (c *conn) writeQueryError(err error) {
	c.srv.errorsCtr.Inc()
	c.writeError(sqlstateFor(err), err.Error(), false)
}

func sqlstateFor(err error) string {
	var se *sql.ErrSyntax
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return codeQueryCanceled
	case errors.As(err, &se):
		return codeSyntaxError
	default:
		return codeInternalError
	}
}

// mangledName namespaces a client statement name inside the shared-pool
// session, so two connections' unnamed statements never collide even if
// a session is recycled without a full wipe.
func (c *conn) mangledName(name string) string {
	if name == "" {
		name = "unnamed"
	}
	return fmt.Sprintf("pgwire_%d_%s", c.pid, name)
}

// handleParse services Parse: plannable statements become real session
// prepared statements (planning eagerly so errors surface now); others
// keep their AST and plan at Execute. Returns false on error, which
// makes the main loop skip to Sync.
func (c *conn) handleParse(body []byte) bool {
	r := &reader{body: body}
	name := r.cstring()
	query := r.cstring()
	nOIDs := r.int16()
	oids := make([]int32, 0, max(int(nOIDs), 0))
	for i := 0; i < int(nOIDs); i++ {
		oids = append(oids, r.int32())
	}
	if r.err != nil {
		c.writeError(codeProtocolViolation, "malformed Parse", false)
		return false
	}
	if name != "" {
		if _, dup := c.prepared[name]; dup {
			c.writeQueryError(fmt.Errorf("prepared statement %q already exists", name))
			return false
		}
	}

	ps := &preparedStmt{query: query, paramOIDs: oids}
	stmts, err := sql.Parse(query)
	if err != nil {
		c.writeQueryError(err)
		return false
	}
	switch len(stmts) {
	case 0:
		ps.empty = true
	case 1:
		switch st := stmts[0].(type) {
		case *sql.Select, *sql.Insert:
			mangled := c.mangledName(name)
			if name == "" {
				// Re-Parse of the unnamed statement replaces it.
				c.dropPrepared("")
			}
			if _, err := c.sess.Run(&sql.Prepare{Name: mangled, Stmt: st, Text: query}); err != nil {
				c.writeQueryError(err)
				return false
			}
			ps.sessName = mangled
			ps.numParams, ps.cols, err = c.sess.DescribePrepared(mangled)
			if err != nil {
				c.writeQueryError(err)
				return false
			}
		default:
			ps.stmt = st
		}
	default:
		c.writeQueryError(errors.New("cannot Parse a multi-statement string"))
		return false
	}
	c.prepared[name] = ps
	m := newMsg(msgParseComplete)
	m.writeTo(c.w)
	return true
}

func (c *conn) dropPrepared(name string) {
	ps, ok := c.prepared[name]
	if !ok {
		return
	}
	if ps.sessName != "" {
		_, _ = c.sess.Run(&sql.Deallocate{Name: ps.sessName})
	}
	delete(c.prepared, name)
}

func (c *conn) handleBind(body []byte) bool {
	r := &reader{body: body}
	portalName := r.cstring()
	stmtName := r.cstring()
	nFmt := r.int16()
	fmts := make([]int16, 0, max(int(nFmt), 0))
	for i := 0; i < int(nFmt); i++ {
		fmts = append(fmts, r.int16())
	}
	nParams := r.int16()
	raw := make([][]byte, 0, max(int(nParams), 0))
	for i := 0; i < int(nParams); i++ {
		raw = append(raw, r.valueBytes())
	}
	nResFmt := r.int16()
	for i := 0; i < int(nResFmt); i++ {
		if r.int16() != 0 {
			c.writeError(codeProtocolViolation, "binary result format not supported", false)
			return false
		}
	}
	if r.err != nil {
		c.writeError(codeProtocolViolation, "malformed Bind", false)
		return false
	}
	// Per-parameter format resolution, as the protocol specifies: zero
	// codes means all-text, a single code applies to every parameter,
	// otherwise one code per parameter.
	if len(fmts) > 1 && len(fmts) != len(raw) {
		c.writeError(codeProtocolViolation,
			fmt.Sprintf("bind message has %d parameter formats but %d parameters", len(fmts), len(raw)), false)
		return false
	}
	fmtFor := func(i int) int16 {
		switch len(fmts) {
		case 0:
			return 0
		case 1:
			return fmts[0]
		default:
			return fmts[i]
		}
	}
	ps, ok := c.prepared[stmtName]
	if !ok {
		c.writeQueryError(fmt.Errorf("prepared statement %q does not exist", stmtName))
		return false
	}
	params := make([]any, len(raw))
	for i, rv := range raw {
		if rv == nil {
			params[i] = nil
			continue
		}
		var oid int32
		if i < len(ps.paramOIDs) {
			oid = ps.paramOIDs[i]
		}
		var v any
		var err error
		switch fmtFor(i) {
		case 0:
			v, err = decodeParam(string(rv), oid)
		case 1:
			v, err = decodeBinaryParam(rv, oid)
		default:
			err = fmt.Errorf("unknown format code %d", fmtFor(i))
		}
		if err != nil {
			c.writeQueryError(fmt.Errorf("parameter $%d: %w", i+1, err))
			return false
		}
		params[i] = v
	}
	c.portals[portalName] = &portal{ps: ps, params: params}
	m := newMsg(msgBindComplete)
	m.writeTo(c.w)
	return true
}

// decodeParam converts one text-format parameter to an engine value
// using the OID the client declared at Parse time; OID 0 (unspecified)
// falls back to int → float → string.
func decodeParam(s string, oid int32) (any, error) {
	switch oid {
	case oidInt2, oidInt4, oidInt8:
		return strconv.ParseInt(s, 10, 64)
	case oidFloat4, oidFloat8:
		return strconv.ParseFloat(s, 64)
	case oidBool:
		switch strings.ToLower(s) {
		case "t", "true", "1", "on", "yes":
			return true, nil
		case "f", "false", "0", "off", "no":
			return false, nil
		}
		return nil, fmt.Errorf("invalid boolean %q", s)
	case oidText, oidVarchar:
		return s, nil
	case oidFloat8Array:
		return parseFloatArray(s)
	case 0:
		if v, err := strconv.ParseInt(s, 10, 64); err == nil {
			return v, nil
		}
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v, nil
		}
		return s, nil
	default:
		// Unknown declared type: pass the text through.
		return s, nil
	}
}

// decodeBinaryParam converts one binary-format parameter (network byte
// order, per the protocol) to an engine value. Only the fixed-width
// scalar types have a binary representation here; other OIDs must be
// sent in text format.
func decodeBinaryParam(b []byte, oid int32) (any, error) {
	want := func(n int, name string) error {
		if len(b) != n {
			return fmt.Errorf("binary %s must be %d bytes, got %d", name, n, len(b))
		}
		return nil
	}
	switch oid {
	case oidInt2:
		if err := want(2, "int2"); err != nil {
			return nil, err
		}
		return int64(int16(binary.BigEndian.Uint16(b))), nil
	case oidInt4:
		if err := want(4, "int4"); err != nil {
			return nil, err
		}
		return int64(int32(binary.BigEndian.Uint32(b))), nil
	case oidInt8:
		if err := want(8, "int8"); err != nil {
			return nil, err
		}
		return int64(binary.BigEndian.Uint64(b)), nil
	case oidFloat4:
		if err := want(4, "float4"); err != nil {
			return nil, err
		}
		return float64(math.Float32frombits(binary.BigEndian.Uint32(b))), nil
	case oidFloat8:
		if err := want(8, "float8"); err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.BigEndian.Uint64(b)), nil
	case oidBool:
		if err := want(1, "bool"); err != nil {
			return nil, err
		}
		return b[0] != 0, nil
	default:
		return nil, fmt.Errorf("binary format not supported for parameter type OID %d", oid)
	}
}

func parseFloatArray(s string) ([]float64, error) {
	t := strings.TrimSpace(s)
	if !strings.HasPrefix(t, "{") || !strings.HasSuffix(t, "}") {
		return nil, fmt.Errorf("invalid array literal %q", s)
	}
	inner := strings.TrimSpace(t[1 : len(t)-1])
	if inner == "" {
		return []float64{}, nil
	}
	parts := strings.Split(inner, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("invalid array element %q", p)
		}
		out[i] = f
	}
	return out, nil
}

func (c *conn) handleDescribe(body []byte) bool {
	r := &reader{body: body}
	kind := r.byte()
	name := r.cstring()
	if r.err != nil {
		c.writeError(codeProtocolViolation, "malformed Describe", false)
		return false
	}
	switch kind {
	case 'S':
		ps, ok := c.prepared[name]
		if !ok {
			c.writeQueryError(fmt.Errorf("prepared statement %q does not exist", name))
			return false
		}
		m := newMsg(msgParamDescription)
		m.int16(int16(ps.numParams))
		for i := 0; i < ps.numParams; i++ {
			oid := int32(0)
			if i < len(ps.paramOIDs) {
				oid = ps.paramOIDs[i]
			}
			m.int32(oid)
		}
		m.writeTo(c.w)
		c.describeRows(ps)
	case 'P':
		p, ok := c.portals[name]
		if !ok {
			c.writeQueryError(fmt.Errorf("portal %q does not exist", name))
			return false
		}
		c.describeRows(p.ps)
	default:
		c.writeError(codeProtocolViolation, "malformed Describe", false)
		return false
	}
	return true
}

// describeRows emits RowDescription for a prepared statement's output
// shape, or NoData when it produces no rows (or the shape is only known
// at execution, e.g. table-valued analytics calls).
func (c *conn) describeRows(ps *preparedStmt) {
	if len(ps.cols) == 0 {
		m := newMsg(msgNoData)
		m.writeTo(c.w)
		return
	}
	// Result types are not tracked statically; values always travel as
	// text, so describe them as text.
	c.writeRowDescription(ps.cols, nil)
}

func (c *conn) handleExecute(body []byte) bool {
	r := &reader{body: body}
	portalName := r.cstring()
	r.int32() // max rows: this server always sends the full rowset
	if r.err != nil {
		c.writeError(codeProtocolViolation, "malformed Execute", false)
		return false
	}
	p, ok := c.portals[portalName]
	if !ok {
		c.writeQueryError(fmt.Errorf("portal %q does not exist", portalName))
		return false
	}
	if p.ps.empty {
		m := newMsg(msgEmptyQuery)
		m.writeTo(c.w)
		return true
	}
	ctx, done := c.queryContext()
	var res *sql.Result
	var err error
	if p.ps.sessName != "" {
		res, err = c.sess.ExecutePreparedContext(ctx, p.ps.sessName, p.params)
	} else {
		res, err = c.sess.RunContext(ctx, p.ps.stmt)
	}
	done()
	if err != nil {
		c.writeQueryError(err)
		return false
	}
	c.srv.queries.Inc()
	// Extended protocol: the row shape was announced by Describe, so
	// Execute sends only DataRows + CommandComplete.
	c.writeResultSet(res, false)
	return true
}

func (c *conn) handleClose(body []byte) bool {
	r := &reader{body: body}
	kind := r.byte()
	name := r.cstring()
	if r.err != nil {
		c.writeError(codeProtocolViolation, "malformed Close", false)
		return false
	}
	switch kind {
	case 'S':
		c.dropPrepared(name)
	case 'P':
		delete(c.portals, name)
	default:
		c.writeError(codeProtocolViolation, "malformed Close", false)
		return false
	}
	m := newMsg(msgCloseComplete)
	m.writeTo(c.w)
	return true
}
