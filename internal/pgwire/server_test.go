package pgwire

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"madlib/internal/engine"
)

// startServer boots a server on an ephemeral port against a fresh
// 4-segment engine and tears it down with the test.
func startServer(t *testing.T, cfg Config) (*Server, *engine.DB, string) {
	t.Helper()
	db := engine.Open(4)
	cfg.Listen = "127.0.0.1:0"
	srv := NewServer(db, cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, db, srv.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func cell(r *ClientResult, i, j int) string {
	if i >= len(r.Rows) || j >= len(r.Rows[i]) {
		return "<missing>"
	}
	if r.Rows[i][j] == nil {
		return "<null>"
	}
	return *r.Rows[i][j]
}

// seedFanoutTable builds big(v, grp) with grp = v % (rows/256), so a
// self-join on grp produces 256 matches per row — slow enough to land a
// cancel or timeout mid-query.
func seedFanoutTable(t *testing.T, c *Client, db *engine.DB, rows int) {
	t.Helper()
	if _, err := c.Query(`CREATE TABLE seed (v bigint)`); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.Table("seed")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	ctas := fmt.Sprintf(`CREATE TABLE big AS SELECT v, v %% %d AS grp FROM seed`, rows/256)
	if _, err := c.Query(ctas); err != nil {
		t.Fatal(err)
	}
}

func TestHandshakeAndSimpleQuery(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	c := dialT(t, addr)
	if c.BackendPID() == 0 {
		t.Fatal("no backend pid assigned")
	}

	if _, err := c.Query(`CREATE TABLE t (a bigint, b text)`); err != nil {
		t.Fatal(err)
	}
	r, err := c.Query(`INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three')`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Tag != "INSERT 0 3" {
		t.Fatalf("tag = %q", r.Tag)
	}
	r, err = c.Query(`SELECT a, b FROM t ORDER BY a`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cols) != 2 || r.Cols[0] != "a" || r.Cols[1] != "b" {
		t.Fatalf("cols = %v", r.Cols)
	}
	if r.Tag != "SELECT 3" || len(r.Rows) != 3 {
		t.Fatalf("tag=%q rows=%d", r.Tag, len(r.Rows))
	}
	if cell(r, 0, 0) != "1" || cell(r, 0, 1) != "one" {
		t.Fatalf("row 0 = %q %q", cell(r, 0, 0), cell(r, 0, 1))
	}

	// NULL (from an unmatched LEFT JOIN row) travels as the -1 length
	// sentinel, not as an empty string.
	if _, err := c.Query(`CREATE TABLE u (a bigint, w text)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(`INSERT INTO u VALUES (1, 'x')`); err != nil {
		t.Fatal(err)
	}
	r, err = c.Query(`SELECT t.b, u.w FROM t LEFT JOIN u ON t.a = u.a ORDER BY t.a`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 || r.Rows[0][1] == nil || *r.Rows[0][1] != "x" {
		t.Fatalf("join rows = %v", r.Rows)
	}
	if r.Rows[1][1] != nil || r.Rows[2][1] != nil {
		t.Fatalf("want NULL for unmatched rows, got %v", r.Rows)
	}

	// Multi-statement simple query returns the last result.
	r, err = c.Query(`SELECT 1; SELECT count(*) AS n FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cols[0] != "n" || cell(r, 0, 0) != "3" {
		t.Fatalf("multi-statement result = %v %q", r.Cols, cell(r, 0, 0))
	}

	// Empty query string gets EmptyQueryResponse, not an error.
	if _, err := c.Query(`  ;  `); err != nil {
		t.Fatal(err)
	}
}

func TestErrorKeepsConnectionUsable(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	c := dialT(t, addr)

	_, err := c.Query(`SELEC syntax error`)
	var we *WireError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WireError", err)
	}
	if we.Code != "42601" {
		t.Fatalf("sqlstate = %q, want 42601 (got message %q)", we.Code, we.Message)
	}

	_, err = c.Query(`SELECT * FROM no_such_table`)
	if !errors.As(err, &we) || we.Code != "XX000" {
		t.Fatalf("err = %v, want XX000", err)
	}

	// The same connection still answers queries.
	r, err := c.Query(`SELECT 42 AS v`)
	if err != nil {
		t.Fatal(err)
	}
	if cell(r, 0, 0) != "42" {
		t.Fatalf("v = %q", cell(r, 0, 0))
	}

	// An integer literal beyond int64 errors loudly instead of
	// silently becoming a float.
	if _, err := c.Query(`SELECT 99999999999999999999`); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("overflow literal err = %v", err)
	}
}

func TestExtendedQueryWithParams(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	c := dialT(t, addr)

	if _, err := c.Query(`CREATE TABLE kv (k bigint, v double precision)`); err != nil {
		t.Fatal(err)
	}

	// INSERT through the extended protocol with $n parameters.
	if err := c.Prepare("ins", `INSERT INTO kv VALUES ($1, $2)`, []int32{oidInt8, oidFloat8}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		k, v := fmt.Sprint(i), fmt.Sprintf("%g", float64(i)*1.5)
		r, err := c.Execute("ins", []*string{&k, &v})
		if err != nil {
			t.Fatal(err)
		}
		if r.Tag != "INSERT 0 1" {
			t.Fatalf("tag = %q", r.Tag)
		}
	}

	// SELECT with a parameter; types inferred (no declared OIDs).
	if err := c.Prepare("sel", `SELECT count(*) AS n, sum(v) AS s FROM kv WHERE k < $1`, nil); err != nil {
		t.Fatal(err)
	}
	arg := "4"
	r, err := c.Execute("sel", []*string{&arg})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cols) != 2 || r.Cols[0] != "n" || r.Cols[1] != "s" {
		t.Fatalf("cols = %v", r.Cols)
	}
	if cell(r, 0, 0) != "4" || cell(r, 0, 1) != "9" {
		t.Fatalf("row = %q %q", cell(r, 0, 0), cell(r, 0, 1))
	}

	// Re-executing the same portal-less statement works repeatedly.
	arg = "100"
	r, err = c.Execute("sel", []*string{&arg})
	if err != nil {
		t.Fatal(err)
	}
	if cell(r, 0, 0) != "10" {
		t.Fatalf("count = %q", cell(r, 0, 0))
	}

	// NULLs produced by a LEFT JOIN cross the extended protocol too.
	if _, err := c.Query(`CREATE TABLE tags (k bigint, name text)`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(`INSERT INTO tags VALUES (0, 'zero')`); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepare("selj",
		`SELECT a.k, b.name FROM kv a LEFT JOIN tags b ON a.k = b.k WHERE a.k < $1 ORDER BY a.k`,
		[]int32{oidInt8}); err != nil {
		t.Fatal(err)
	}
	arg = "2"
	r, err = c.Execute("selj", []*string{&arg})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || r.Rows[0][1] == nil || *r.Rows[0][1] != "zero" {
		t.Fatalf("join rows = %v", r.Rows)
	}
	if r.Rows[1][1] != nil {
		t.Fatalf("want NULL for unmatched row, got %q", *r.Rows[1][1])
	}

	// Unknown prepared statement errors but keeps the connection.
	if _, err := c.Execute("nope", nil); err == nil {
		t.Fatal("want error for unknown statement")
	}
	if _, err := c.Query(`SELECT 1`); err != nil {
		t.Fatalf("connection unusable after extended-protocol error: %v", err)
	}

	// ClosePrepared releases the name for reuse.
	if err := c.ClosePrepared("sel"); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepare("sel", `SELECT k FROM kv WHERE k = $1`, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPreparedStatementErrorAtParse(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	c := dialT(t, addr)
	// Planning is eager: a bad table name fails at Parse, not Execute.
	err := c.Prepare("bad", `SELECT * FROM missing_table`, nil)
	var we *WireError
	if !errors.As(err, &we) {
		t.Fatalf("err = %v, want *WireError", err)
	}
	// Duplicate named statement is rejected.
	if err := c.Prepare("dup", `SELECT 1`, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepare("dup", `SELECT 2`, nil); err == nil {
		t.Fatal("want duplicate-name error")
	}
}

func TestCancelMidScan(t *testing.T) {
	_, db, addr := startServer(t, Config{})
	c := dialT(t, addr)

	total := 16 * engine.MorselRows
	seedFanoutTable(t, c, db, total)

	// A fan-out self-join (each row matches 256 others) keeps the probe
	// busy long enough for the cancel to land mid-scan.
	before := db.RowsScanned()
	errc := make(chan error, 1)
	go func() {
		_, err := c.Query(`SELECT count(*) FROM big a JOIN big b ON a.grp = b.grp`)
		errc <- err
	}()
	time.Sleep(30 * time.Millisecond)
	if err := c.Cancel(); err != nil {
		t.Fatal(err)
	}
	var err error
	select {
	case err = <-errc:
	case <-time.After(30 * time.Second):
		t.Fatal("query did not return after cancel")
	}
	fullOutput := int64(total) * 256 // join rows a completed query scans for count(*)
	var we *WireError
	if errors.As(err, &we) {
		if we.Code != "57014" {
			t.Fatalf("sqlstate = %q (%s), want 57014", we.Code, we.Message)
		}
		// The scan stopped early: a completed query would have scanned
		// both join inputs plus the full materialized join output.
		if scanned := db.RowsScanned() - before; scanned >= fullOutput {
			t.Fatalf("scanned %d rows, want < %d (cancel did not stop the scan)", scanned, fullOutput)
		}
	} else if err != nil {
		t.Fatalf("unexpected error: %v", err)
	} // else: the query finished before the cancel landed — legal race.

	// The connection survives the cancel.
	r, err := c.Query(`SELECT count(*) FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if cell(r, 0, 0) != fmt.Sprint(total) {
		t.Fatalf("count = %q", cell(r, 0, 0))
	}
}

func TestStatementTimeout(t *testing.T) {
	_, db, addr := startServer(t, Config{StatementTimeout: 50 * time.Millisecond})
	c := dialT(t, addr)

	seedFanoutTable(t, c, db, 16*engine.MorselRows)
	_, err := c.Query(`SELECT count(*) FROM big a JOIN big b ON a.grp = b.grp`)
	var we *WireError
	if !errors.As(err, &we) || we.Code != "57014" {
		t.Fatalf("err = %v, want SQLSTATE 57014", err)
	}
	// Fast statements still succeed under the same timeout.
	if _, err := c.Query(`SELECT 1`); err != nil {
		t.Fatal(err)
	}
}

func TestSessionPoolExhaustion(t *testing.T) {
	_, _, addr := startServer(t, Config{MaxSessions: 2})
	c1 := dialT(t, addr)
	c2 := dialT(t, addr)
	if _, err := c1.Query(`SELECT 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Query(`SELECT 1`); err != nil {
		t.Fatal(err)
	}
	_, err := Dial(addr)
	var we *WireError
	if !errors.As(err, &we) || we.Code != "53300" {
		t.Fatalf("third connection err = %v, want SQLSTATE 53300", err)
	}
	// Closing one connection frees a slot (give the server a moment to
	// recycle the session).
	c1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c3, err := Dial(addr)
		if err == nil {
			defer c3.Close()
			if _, err := c3.Query(`SELECT 1`); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSessionRecycleDropsPrepared(t *testing.T) {
	_, _, addr := startServer(t, Config{MaxSessions: 1})
	c1 := dialT(t, addr)
	if err := c1.Prepare("mine", `SELECT 1`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Query(`PREPARE plain AS SELECT 2`); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		c2, err := Dial(addr)
		if err == nil {
			// The recycled session must not leak c1's statements.
			if _, err := c2.Query(`EXECUTE plain`); err == nil {
				t.Fatal("prepared statement leaked across connections")
			}
			c2.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never recycled: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSSLRequestNegotiation(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// SSLRequest: len 8, code 80877103 → server answers 'N' and waits
	// for a plaintext startup.
	var buf [8]byte
	binary.BigEndian.PutUint32(buf[:4], 8)
	binary.BigEndian.PutUint32(buf[4:], sslRequestCode)
	if _, err := nc.Write(buf[:]); err != nil {
		t.Fatal(err)
	}
	var reply [1]byte
	if _, err := nc.Read(reply[:]); err != nil {
		t.Fatal(err)
	}
	if reply[0] != 'N' {
		t.Fatalf("SSLRequest reply = %q, want 'N'", reply[0])
	}
}

func TestGracefulShutdownDrains(t *testing.T) {
	db := engine.Open(4)
	srv := NewServer(db, Config{Listen: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(`CREATE TABLE t (v bigint)`); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// New connections are refused after shutdown.
	if _, err := Dial(addr); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

func TestConcurrentConnections(t *testing.T) {
	_, _, addr := startServer(t, Config{MaxSessions: 32})
	setup := dialT(t, addr)
	if _, err := setup.Query(`CREATE TABLE acc (id bigint, bal double precision)`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := setup.Query(fmt.Sprintf(`INSERT INTO acc VALUES (%d, %d)`, i, i*10)); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			stmt := fmt.Sprintf("w%d", w)
			if err := c.Prepare(stmt, `SELECT count(*) AS n FROM acc WHERE id < $1`, []int32{oidInt8}); err != nil {
				errs <- err
				return
			}
			for i := 0; i < iters; i++ {
				switch i % 3 {
				case 0: // read, simple protocol
					r, err := c.Query(`SELECT sum(bal) FROM acc WHERE id < 50`)
					if err != nil {
						errs <- err
						return
					}
					if len(r.Rows) != 1 {
						errs <- fmt.Errorf("worker %d: %d rows", w, len(r.Rows))
						return
					}
				case 1: // write
					if _, err := c.Query(fmt.Sprintf(`INSERT INTO acc VALUES (%d, 0)`, 1000+w*iters+i)); err != nil {
						errs <- err
						return
					}
				case 2: // extended-protocol EXECUTE
					arg := "50"
					r, err := c.Execute(stmt, []*string{&arg})
					if err != nil {
						errs <- err
						return
					}
					if cell(r, 0, 0) != "50" {
						errs <- fmt.Errorf("worker %d: count = %q", w, cell(r, 0, 0))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// All writes landed: 100 seed rows + workers*ceil(iters/3) inserts.
	inserts := 0
	for i := 0; i < iters; i++ {
		if i%3 == 1 {
			inserts++
		}
	}
	r, err := setup.Query(`SELECT count(*) FROM acc`)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(100 + workers*inserts)
	if cell(r, 0, 0) != want {
		t.Fatalf("final count = %q, want %s", cell(r, 0, 0), want)
	}
}

func TestMetricsCounters(t *testing.T) {
	_, db, addr := startServer(t, Config{})
	c := dialT(t, addr)
	if _, err := c.Query(`SELECT 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(`this is not sql`); err == nil {
		t.Fatal("want error")
	}
	reg := db.Metrics()
	if v := reg.Counter("pgwire_connections").Value(); v < 1 {
		t.Fatalf("pgwire_connections = %d", v)
	}
	if v := reg.Counter("pgwire_queries").Value(); v < 1 {
		t.Fatalf("pgwire_queries = %d", v)
	}
	if v := reg.Counter("pgwire_errors").Value(); v < 1 {
		t.Fatalf("pgwire_errors = %d", v)
	}
	// The counters surface through the SQL metrics view too.
	r, err := c.Query(`SELECT count(*) FROM madlib_stats_counters WHERE name = 'pgwire_queries'`)
	if err != nil {
		t.Fatal(err)
	}
	if cell(r, 0, 0) != "1" {
		t.Fatalf("pgwire_queries missing from madlib_stats_counters: %q", cell(r, 0, 0))
	}
}

func TestBinaryBindParams(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	c := dialT(t, addr)

	if _, err := c.Query(`CREATE TABLE kv (k bigint, v double precision)`); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepare("ins", `INSERT INTO kv VALUES ($1, $2)`, []int32{oidInt8, oidFloat8}); err != nil {
		t.Fatal(err)
	}

	// int8 and float8 travel as raw network-order bytes; the float is
	// chosen to be inexact in decimal so a text round-trip would differ
	// if the server re-parsed rather than taking the IEEE-754 bits.
	if _, err := c.ExecuteParams("ins", []WireParam{Int8Param(-7), Float8Param(0.1)}); err != nil {
		t.Fatal(err)
	}
	// Mixed formats in one Bind: binary int8, text float8.
	if _, err := c.ExecuteParams("ins", []WireParam{Int8Param(8), TextParam("2.5")}); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepare("sel", `SELECT v FROM kv WHERE k = $1`, []int32{oidInt8}); err != nil {
		t.Fatal(err)
	}
	r, err := c.ExecuteParams("sel", []WireParam{Int8Param(-7)})
	if err != nil {
		t.Fatal(err)
	}
	if cell(r, 0, 0) != "0.1" {
		t.Fatalf("binary float8 round trip = %q, want 0.1", cell(r, 0, 0))
	}
	if r, err = c.ExecuteParams("sel", []WireParam{Int8Param(8)}); err != nil || cell(r, 0, 0) != "2.5" {
		t.Fatalf("mixed-format row = %v (err %v)", r, err)
	}
	// NULL in a binary-format position decodes to NULL before any codec
	// runs.
	if err := c.Prepare("echo", `SELECT $1`, []int32{oidFloat8}); err != nil {
		t.Fatal(err)
	}
	if r, err = c.ExecuteParams("echo", []WireParam{{Binary: true}}); err != nil || len(r.Rows) != 1 || r.Rows[0][0] != nil {
		t.Fatalf("binary NULL param rows = %v (err %v)", r, err)
	}

	// Wrong width is rejected with a clean error; connection survives.
	if _, err := c.ExecuteParams("sel", []WireParam{{Binary: true, Data: []byte{1, 2, 3}}}); err == nil {
		t.Fatal("want error for 3-byte binary int8")
	} else if !strings.Contains(err.Error(), "8 bytes") {
		t.Fatalf("error = %v", err)
	}

	// Binary format for a type with no binary codec is rejected.
	if err := c.Prepare("selt", `SELECT count(*) FROM kv WHERE k = $1`, []int32{oidText}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExecuteParams("selt", []WireParam{{Binary: true, Data: []byte("x")}}); err == nil {
		t.Fatal("want error for binary text param")
	} else if !strings.Contains(err.Error(), "binary format not supported") {
		t.Fatalf("error = %v", err)
	}

	if _, err := c.Query(`SELECT 1`); err != nil {
		t.Fatalf("connection unusable after binary-param errors: %v", err)
	}
}

func TestPredictOverWire(t *testing.T) {
	_, _, addr := startServer(t, Config{})
	c := dialT(t, addr)

	for _, q := range []string{
		`CREATE TABLE pts (y double precision, x double precision[], x1 double precision)`,
		`INSERT INTO pts VALUES (3, ARRAY[1], 1), (6, ARRAY[2], 2), (9, ARRAY[3], 3), (12, ARRAY[4], 4)`,
	} {
		if _, err := c.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	// Train and persist over the wire; the ack row carries the catalog
	// metadata.
	r, err := c.Query(`SELECT (madlib.linregr('m', y, x)).* FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	if cell(r, 0, 0) != "m" || cell(r, 0, 1) != "linregr" {
		t.Fatalf("persist ack = %v", r.Rows)
	}

	// Serve predictions through a prepared statement whose threshold
	// arrives as a binary float8. The fit is y = 3x, so scores are
	// ~{3, 6, 9, 12}.
	if err := c.Prepare("score",
		`SELECT count(*) FROM pts WHERE madlib.predict('m', x1) > $1`, []int32{oidFloat8}); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		thresh float64
		want   string
	}{{0, "4"}, {5, "3"}, {10, "1"}, {100, "0"}} {
		r, err := c.ExecuteParams("score", []WireParam{Float8Param(tc.thresh)})
		if err != nil {
			t.Fatal(err)
		}
		if cell(r, 0, 0) != tc.want {
			t.Fatalf("predict > %g: count = %q, want %s", tc.thresh, cell(r, 0, 0), tc.want)
		}
	}
}
