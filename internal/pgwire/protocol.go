// Package pgwire serves the engine's SQL dialect over the PostgreSQL
// wire protocol (v3), so any psql/pgx-compatible client can connect:
// startup with trust auth, the simple-query protocol, and the
// extended-query protocol mapped onto the session's PREPARE/EXECUTE
// plans. One process serves many connections over one shared engine;
// each connection draws a Session from a bounded pool, and every query
// runs under a context so a wire CancelRequest or statement timeout
// stops the scan at morsel boundaries.
package pgwire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Protocol constants (PostgreSQL protocol v3).
const (
	protocolVersion = 196608 // 3.0
	sslRequestCode  = 80877103
	gssEncReqCode   = 80877104
	cancelReqCode   = 80877102
)

// Backend (server → client) message types.
const (
	msgAuth             = 'R'
	msgParameterStatus  = 'S'
	msgBackendKeyData   = 'K'
	msgReadyForQuery    = 'Z'
	msgRowDescription   = 'T'
	msgDataRow          = 'D'
	msgCommandComplete  = 'C'
	msgEmptyQuery       = 'I'
	msgErrorResponse    = 'E'
	msgNoticeResponse   = 'N'
	msgParseComplete    = '1'
	msgBindComplete     = '2'
	msgCloseComplete    = '3'
	msgParamDescription = 't'
	msgNoData           = 'n'
)

// Frontend (client → server) message types.
const (
	msgQuery     = 'Q'
	msgParse     = 'P'
	msgBind      = 'B'
	msgDescribe  = 'D'
	msgExecute   = 'E'
	msgClose     = 'C'
	msgSync      = 'S'
	msgFlush     = 'H'
	msgTerminate = 'X'
)

// Type OIDs for RowDescription / parameter decoding (pg_type.oid).
const (
	oidBool        = 16
	oidInt8        = 20
	oidInt2        = 21
	oidInt4        = 23
	oidText        = 25
	oidFloat4      = 700
	oidFloat8      = 701
	oidVarchar     = 1043
	oidFloat8Array = 1022
)

// Exported parameter-type OIDs for Client.Prepare callers (pg_type.oid);
// declaring one of these enables binary-format Bind for that parameter.
const (
	OidBool   int32 = oidBool
	OidInt2   int32 = oidInt2
	OidInt4   int32 = oidInt4
	OidInt8   int32 = oidInt8
	OidText   int32 = oidText
	OidFloat4 int32 = oidFloat4
	OidFloat8 int32 = oidFloat8
)

// SQLSTATE codes the server emits.
const (
	codeSyntaxError       = "42601"
	codeQueryCanceled     = "57014"
	codeTooManyConns      = "53300"
	codeAdminShutdown     = "57P01"
	codeProtocolViolation = "08P01"
	codeInternalError     = "XX000"
)

// maxMessageLen bounds one frontend message body (16 MiB), protecting
// the server from a bogus length prefix.
const maxMessageLen = 16 << 20

// readMessage reads one typed frontend message: a 1-byte type, an int32
// length (including itself), and the body.
func readMessage(r *bufio.Reader) (typ byte, body []byte, err error) {
	typ, err = r.ReadByte()
	if err != nil {
		return 0, nil, err
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(lenBuf[:]))
	if n < 4 || n-4 > maxMessageLen {
		return 0, nil, fmt.Errorf("pgwire: invalid message length %d", n)
	}
	body = make([]byte, n-4)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return typ, body, nil
}

// msgBuf builds one backend message (or a startup-style untyped one).
type msgBuf struct {
	buf []byte
}

func newMsg(typ byte) *msgBuf {
	b := &msgBuf{buf: make([]byte, 0, 64)}
	if typ != 0 {
		b.buf = append(b.buf, typ)
	}
	// Length placeholder, patched by writeTo.
	b.buf = append(b.buf, 0, 0, 0, 0)
	return b
}

func (b *msgBuf) byte(v byte)    { b.buf = append(b.buf, v) }
func (b *msgBuf) bytes(v []byte) { b.buf = append(b.buf, v...) }
func (b *msgBuf) int16(v int16)  { b.buf = binary.BigEndian.AppendUint16(b.buf, uint16(v)) }
func (b *msgBuf) int32(v int32)  { b.buf = binary.BigEndian.AppendUint32(b.buf, uint32(v)) }
func (b *msgBuf) cstring(s string) {
	b.buf = append(b.buf, s...)
	b.buf = append(b.buf, 0)
}

// writeTo patches the length prefix and writes the message.
func (b *msgBuf) writeTo(w *bufio.Writer) error {
	start := 0
	if b.buf[0] != 0 && len(b.buf) >= 5 {
		// Typed message: length starts after the type byte.
		start = 1
	}
	binary.BigEndian.PutUint32(b.buf[start:], uint32(len(b.buf)-start))
	_, err := w.Write(b.buf)
	return err
}

// reader walks one message body.
type reader struct {
	body []byte
	pos  int
	err  error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("pgwire: malformed message")
	}
}

func (r *reader) byte() byte {
	if r.err != nil || r.pos >= len(r.body) {
		r.fail()
		return 0
	}
	v := r.body[r.pos]
	r.pos++
	return v
}

func (r *reader) int16() int16 {
	if r.err != nil || r.pos+2 > len(r.body) {
		r.fail()
		return 0
	}
	v := int16(binary.BigEndian.Uint16(r.body[r.pos:]))
	r.pos += 2
	return v
}

func (r *reader) int32() int32 {
	if r.err != nil || r.pos+4 > len(r.body) {
		r.fail()
		return 0
	}
	v := int32(binary.BigEndian.Uint32(r.body[r.pos:]))
	r.pos += 4
	return v
}

func (r *reader) cstring() string {
	if r.err != nil {
		return ""
	}
	for i := r.pos; i < len(r.body); i++ {
		if r.body[i] == 0 {
			s := string(r.body[r.pos:i])
			r.pos = i + 1
			return s
		}
	}
	r.fail()
	return ""
}

// valueBytes reads an int32-length-prefixed value; nil means NULL (-1).
func (r *reader) valueBytes() []byte {
	n := r.int32()
	if r.err != nil {
		return nil
	}
	if n < 0 {
		return nil
	}
	if r.pos+int(n) > len(r.body) {
		r.fail()
		return nil
	}
	v := r.body[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return v
}
