package pgwire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"net"
	"time"
)

// Client is a minimal PostgreSQL-wire client, enough to exercise this
// server from tests, benchmarks, and embedders without a third-party
// driver: simple queries, the extended protocol, and out-of-band
// cancellation. Values come back as text (nil = NULL), exactly as they
// crossed the wire. Not safe for concurrent use; open one per goroutine.
type Client struct {
	nc     net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	addr   string
	pid    int32
	secret int32
}

// ClientResult is one statement's outcome as seen on the wire.
type ClientResult struct {
	Cols []string
	Rows [][]*string // per-cell text; nil pointer = NULL
	Tag  string
}

// WireError is an ErrorResponse from the server.
type WireError struct {
	Severity string
	Code     string // SQLSTATE
	Message  string
}

func (e *WireError) Error() string {
	return fmt.Sprintf("%s (SQLSTATE %s): %s", e.Severity, e.Code, e.Message)
}

// Dial connects and completes the startup handshake (trust auth).
func Dial(addr string) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	c := &Client{
		nc:   nc,
		r:    bufio.NewReaderSize(nc, 8192),
		w:    bufio.NewWriterSize(nc, 8192),
		addr: addr,
	}
	if err := c.startup(); err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) startup() error {
	m := newMsg(0)
	m.int32(protocolVersion)
	m.cstring("user")
	m.cstring("madlib")
	m.cstring("database")
	m.cstring("madlib")
	m.byte(0)
	if err := m.writeTo(c.w); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	for {
		typ, body, err := readMessage(c.r)
		if err != nil {
			return err
		}
		switch typ {
		case msgAuth:
			r := &reader{body: body}
			if code := r.int32(); code != 0 {
				return fmt.Errorf("pgwire client: unsupported auth method %d", code)
			}
		case msgBackendKeyData:
			r := &reader{body: body}
			c.pid = r.int32()
			c.secret = r.int32()
		case msgParameterStatus, msgNoticeResponse:
		case msgErrorResponse:
			return parseWireError(body)
		case msgReadyForQuery:
			return nil
		default:
			return fmt.Errorf("pgwire client: unexpected startup message %q", typ)
		}
	}
}

// Close sends Terminate and closes the socket.
func (c *Client) Close() error {
	m := newMsg(msgTerminate)
	m.writeTo(c.w)
	c.w.Flush()
	return c.nc.Close()
}

// BackendPID reports the server-assigned backend process ID.
func (c *Client) BackendPID() int32 { return c.pid }

// Query runs text via the simple-query protocol and returns the last
// statement's result. A server ErrorResponse surfaces as *WireError; the
// connection stays usable afterwards.
func (c *Client) Query(text string) (*ClientResult, error) {
	m := newMsg(msgQuery)
	m.cstring(text)
	if err := m.writeTo(c.w); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	return c.collect()
}

// collect drains messages until ReadyForQuery, keeping the last result.
func (c *Client) collect() (*ClientResult, error) {
	var res *ClientResult
	var wireErr error
	for {
		typ, body, err := readMessage(c.r)
		if err != nil {
			return nil, err
		}
		switch typ {
		case msgRowDescription:
			r := &reader{body: body}
			n := int(r.int16())
			cols := make([]string, 0, max(n, 0))
			for i := 0; i < n; i++ {
				cols = append(cols, r.cstring())
				r.int32()
				r.int16()
				r.int32()
				r.int16()
				r.int32()
				r.int16()
			}
			if r.err != nil {
				return nil, r.err
			}
			res = &ClientResult{Cols: cols}
		case msgDataRow:
			r := &reader{body: body}
			n := int(r.int16())
			row := make([]*string, 0, max(n, 0))
			for i := 0; i < n; i++ {
				v := r.valueBytes()
				if v == nil {
					row = append(row, nil)
				} else {
					s := string(v)
					row = append(row, &s)
				}
			}
			if r.err != nil {
				return nil, r.err
			}
			if res == nil {
				res = &ClientResult{}
			}
			res.Rows = append(res.Rows, row)
		case msgCommandComplete:
			r := &reader{body: body}
			if res == nil {
				res = &ClientResult{}
			}
			res.Tag = r.cstring()
		case msgEmptyQuery:
			if res == nil {
				res = &ClientResult{}
			}
		case msgErrorResponse:
			wireErr = parseWireError(body)
		case msgNoticeResponse, msgParameterStatus:
		case msgParseComplete, msgBindComplete, msgCloseComplete,
			msgParamDescription, msgNoData:
		case msgReadyForQuery:
			if wireErr != nil {
				return nil, wireErr
			}
			return res, nil
		default:
			return nil, fmt.Errorf("pgwire client: unexpected message %q", typ)
		}
	}
}

// Prepare creates a named prepared statement via the extended protocol
// (Parse + Sync). paramOIDs may be nil to let the server infer types.
func (c *Client) Prepare(name, query string, paramOIDs []int32) error {
	m := newMsg(msgParse)
	m.cstring(name)
	m.cstring(query)
	m.int16(int16(len(paramOIDs)))
	for _, oid := range paramOIDs {
		m.int32(oid)
	}
	m.writeTo(c.w)
	c.sync()
	_, err := c.collect()
	return err
}

// Execute binds params (nil = NULL) to a prepared statement and runs it
// via Bind + Describe(portal) + Execute + Sync.
func (c *Client) Execute(name string, params []*string) (*ClientResult, error) {
	m := newMsg(msgBind)
	m.cstring("") // unnamed portal
	m.cstring(name)
	m.int16(0) // all params text
	m.int16(int16(len(params)))
	for _, p := range params {
		if p == nil {
			m.int32(-1)
			continue
		}
		m.int32(int32(len(*p)))
		m.bytes([]byte(*p))
	}
	m.int16(0) // all results text
	m.writeTo(c.w)
	m = newMsg(msgDescribe)
	m.byte('P')
	m.cstring("")
	m.writeTo(c.w)
	m = newMsg(msgExecute)
	m.cstring("")
	m.int32(0)
	m.writeTo(c.w)
	c.sync()
	return c.collect()
}

// WireParam is one Bind parameter with an explicit per-parameter wire
// format, for exercising the binary-format path.
type WireParam struct {
	Binary bool
	Data   []byte // raw wire bytes; nil = NULL
}

// TextParam builds a text-format parameter.
func TextParam(s string) WireParam { return WireParam{Data: []byte(s)} }

// Int8Param builds a binary-format int8 parameter (network byte order).
func Int8Param(v int64) WireParam {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(v))
	return WireParam{Binary: true, Data: b}
}

// Float8Param builds a binary-format float8 parameter (IEEE-754 bits in
// network byte order).
func Float8Param(v float64) WireParam {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, math.Float64bits(v))
	return WireParam{Binary: true, Data: b}
}

// ExecuteParams is Execute with per-parameter format codes: each
// parameter travels in the format its WireParam declares. Results stay
// text.
func (c *Client) ExecuteParams(name string, params []WireParam) (*ClientResult, error) {
	m := newMsg(msgBind)
	m.cstring("") // unnamed portal
	m.cstring(name)
	m.int16(int16(len(params)))
	for _, p := range params {
		if p.Binary {
			m.int16(1)
		} else {
			m.int16(0)
		}
	}
	m.int16(int16(len(params)))
	for _, p := range params {
		if p.Data == nil {
			m.int32(-1)
			continue
		}
		m.int32(int32(len(p.Data)))
		m.bytes(p.Data)
	}
	m.int16(0) // all results text
	m.writeTo(c.w)
	m = newMsg(msgDescribe)
	m.byte('P')
	m.cstring("")
	m.writeTo(c.w)
	m = newMsg(msgExecute)
	m.cstring("")
	m.int32(0)
	m.writeTo(c.w)
	c.sync()
	return c.collect()
}

// ClosePrepared releases a named prepared statement on the server.
func (c *Client) ClosePrepared(name string) error {
	m := newMsg(msgClose)
	m.byte('S')
	m.cstring(name)
	m.writeTo(c.w)
	c.sync()
	_, err := c.collect()
	return err
}

func (c *Client) sync() {
	m := newMsg(msgSync)
	m.writeTo(c.w)
	c.w.Flush()
}

// Cancel opens a second connection and sends a CancelRequest for this
// connection's active query, exactly as PQcancel does.
func (c *Client) Cancel() error {
	nc, err := net.DialTimeout("tcp", c.addr, 10*time.Second)
	if err != nil {
		return err
	}
	defer nc.Close()
	w := bufio.NewWriter(nc)
	m := newMsg(0)
	m.int32(cancelReqCode)
	m.int32(c.pid)
	m.int32(c.secret)
	if err := m.writeTo(w); err != nil {
		return err
	}
	return w.Flush()
}

func parseWireError(body []byte) error {
	we := &WireError{}
	r := &reader{body: body}
	for {
		f := r.byte()
		if f == 0 || r.err != nil {
			break
		}
		v := r.cstring()
		switch f {
		case 'S':
			we.Severity = v
		case 'C':
			we.Code = v
		case 'M':
			we.Message = v
		}
	}
	if we.Message == "" && we.Code == "" {
		return errors.New("pgwire client: malformed error response")
	}
	return we
}
