package experiments

import (
	"fmt"
	"strings"
	"testing"

	"madlib/internal/datagen"
	"madlib/internal/engine"
	"madlib/internal/linregr"
)

// TestFigure4ShapeHolds runs a reduced grid and asserts the qualitative
// findings of the paper's Figure 4:
//  1. v0.2.1beta is the slowest implementation everywhere;
//  2. v0.1alpha beats v0.3 at small k, v0.3 wins at large k;
//  3. time grows superlinearly in k;
//  4. more segments → less simulated time (near-linear).
func TestFigure4ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	// Timing comparisons on a small shared host are occasionally perturbed
	// by OS noise even with per-segment minima; allow one re-measurement
	// before declaring the shape broken. When the host is erratically
	// loaded (e.g. `go test -bench ./...` running other packages' heavy
	// benchmarks on the same cores), the calibration check below skips the
	// assertions rather than reporting spurious failures.
	var issues []string
	for attempt := 0; attempt < 2; attempt++ {
		var stable bool
		issues, stable = checkFigure4Shape(t)
		if !stable {
			t.Skip("host timing unstable during measurement; shape assertions skipped")
		}
		if len(issues) == 0 {
			return
		}
	}
	for _, msg := range issues {
		t.Error(msg)
	}
}

// calibrationCell measures a fixed sentinel workload; comparing it before
// and after the grid detects erratic external load.
func calibrationCell(t *testing.T) float64 {
	t.Helper()
	gen := datagen.NewRegression(999, 20000, 20, 0.5)
	db := engine.Open(6)
	tbl, err := gen.LoadRegression(db, "cal")
	if err != nil {
		t.Fatal(err)
	}
	agg, err := linregr.BuildAggregate(tbl, "y", "x")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.RunSimulated(tbl, agg); err != nil {
		t.Fatal(err)
	}
	d, err := simulatedCriticalPath(db, tbl, agg, 3)
	if err != nil {
		t.Fatal(err)
	}
	return float64(d)
}

func checkFigure4Shape(t *testing.T) (issues []string, stable bool) {
	t.Helper()
	before := calibrationCell(t)
	rows, err := Figure4(Figure4Config{
		Rows:     20000,
		Segments: []int{6, 24},
		Vars:     []int{10, 160},
		Trials:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	after := calibrationCell(t)
	ratio := after / before
	if ratio > 1.4 || ratio < 1/1.4 {
		return nil, false // environment shifted mid-measurement
	}
	get := func(segs, vars int, v linregr.Version) float64 {
		for _, r := range rows {
			if r.Segments == segs && r.Vars == vars && r.Version == v {
				return float64(r.SimTime)
			}
		}
		t.Fatalf("missing cell %d/%d/%v", segs, vars, v)
		return 0
	}
	badf := func(format string, args ...any) {
		issues = append(issues, fmt.Sprintf(format, args...))
	}
	for _, segs := range []int{6, 24} {
		for _, vars := range []int{10, 160} {
			beta := get(segs, vars, linregr.V021Beta)
			v03 := get(segs, vars, linregr.V03)
			alpha := get(segs, vars, linregr.V01Alpha)
			if beta <= v03 || beta <= alpha {
				badf("segs=%d k=%d: v0.2.1beta (%v) should be slowest (v0.3 %v, alpha %v)",
					segs, vars, beta, v03, alpha)
			}
		}
		// Crossover: alpha wins at k=10, v0.3 wins at k=160. The small-k
		// side is only asserted at 6 segments: at 24 segments each
		// segment holds ~833 rows and the constant merge/final tail
		// dominates both versions equally, washing out the µs-scale scan
		// difference.
		if segs == 6 {
			if a, v := get(segs, 10, linregr.V01Alpha), get(segs, 10, linregr.V03); a >= v {
				badf("segs=%d k=10: alpha (%v) should beat v0.3 (%v)", segs, a, v)
			}
		}
		if a, v := get(segs, 160, linregr.V01Alpha), get(segs, 160, linregr.V03); v >= a {
			badf("segs=%d k=160: v0.3 (%v) should beat alpha (%v)", segs, v, a)
		}
		// Superlinear growth in k: 16× more vars ⇒ much more than 16× time.
		if t10, t160 := get(segs, 10, linregr.V03), get(segs, 160, linregr.V03); t160 < 20*t10 {
			badf("segs=%d: growth %v→%v not superlinear", segs, t10, t160)
		}
	}
	// Segment scaling at the big k: 4× segments must clearly help. At this
	// scaled-down row count the constant merge/final tail (Cholesky solve,
	// condition estimate — all k³ work a real cluster also pays once) caps
	// the ratio, so require ≥1.5× here; the rigorous near-linear check
	// lives in TestSpeedupNearLinear where rows/k is paper-proportioned.
	if t6, t24 := get(6, 160, linregr.V03), get(24, 160, linregr.V03); t6 < 1.5*t24 {
		badf("segment scaling weak: 6 segs %v vs 24 segs %v", t6, t24)
	}
	// Rendering includes every version column.
	rendered := FormatFigure4(rows)
	for _, col := range []string{"v0.3", "v0.2.1beta", "v0.1alpha"} {
		if !strings.Contains(rendered, col) {
			t.Fatalf("rendered table missing %q:\n%s", col, rendered)
		}
	}
	return issues, true
}

func TestFigure5SeriesRender(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	rows, err := Figure5(Figure4Config{Rows: 2000, Segments: []int{6, 12}, Vars: []int{10, 20}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	s := FormatFigure5(rows)
	if !strings.Contains(s, "6 segs") || !strings.Contains(s, "12 segs") {
		t.Fatalf("rendered series missing headers:\n%s", s)
	}
}

func TestOverheadIsSmallFraction(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	res, err := Overhead(50000)
	if err != nil {
		t.Fatal(err)
	}
	// §4.4(a): fixed overhead ≪ bulk work.
	if res.OverheadFraction > 0.2 {
		t.Fatalf("overhead fraction = %v (empty %v, bulk %v)",
			res.OverheadFraction, res.EmptyQuery, res.BulkQuery)
	}
}

func TestSpeedupNearLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment")
	}
	var last SpeedupRow
	for attempt := 0; attempt < 2; attempt++ {
		before := calibrationCell(t)
		rows, err := Speedup(100000, []int{6, 24})
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(FormatSpeedup(rows), "speedup") {
			t.Fatal("render missing header")
		}
		after := calibrationCell(t)
		if r := after / before; r > 1.4 || r < 1/1.4 {
			t.Skip("host timing unstable during measurement; speedup assertion skipped")
		}
		last = rows[len(rows)-1]
		// Ideal is 4×; accept ≥ 2.5× (scheduling noise, merge tail). One
		// re-measurement is allowed on a noisy host.
		if last.Speedup >= 2.5 {
			return
		}
	}
	t.Fatalf("speedup 6→24 segments = %v", last.Speedup)
}

func TestTable1Render(t *testing.T) {
	s := Table1()
	for _, want := range []string{"Linear Regression", "k-Means", "Count-Min", "Sparse Vectors"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2AllModelsImprove(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	rows, err := Table2(2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("models = %d", len(rows))
	}
	for _, r := range rows {
		if r.FinalLoss >= r.InitialLoss {
			t.Errorf("%s: loss %v → %v did not improve", r.Model, r.InitialLoss, r.FinalLoss)
		}
	}
	s := FormatTable2(rows)
	for _, m := range []string{"Least Squares", "Lasso", "Logistic", "SVM", "Recommendation", "CRF"} {
		if !strings.Contains(s, m) {
			t.Fatalf("Table 2 render missing %q:\n%s", m, s)
		}
	}
}

func TestTable3AllMethodsWork(t *testing.T) {
	if testing.Short() {
		t.Skip("training experiment")
	}
	res, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if res.FeatureCount < 50 {
		t.Fatalf("feature extraction produced only %d features", res.FeatureCount)
	}
	if res.ViterbiPOSAccuracy < 0.85 {
		t.Fatalf("POS accuracy = %v", res.ViterbiPOSAccuracy)
	}
	if res.ViterbiNERAccuracy < 0.9 {
		t.Fatalf("NER accuracy = %v", res.ViterbiNERAccuracy)
	}
	if res.MCMCMaxMarginalGap > 0.07 {
		t.Fatalf("Gibbs marginal gap = %v", res.MCMCMaxMarginalGap)
	}
	if res.MHMaxMarginalGap > 0.1 {
		t.Fatalf("MH marginal gap = %v", res.MHMaxMarginalGap)
	}
	if res.ERRecall < 0.85 {
		t.Fatalf("ER recall = %v", res.ERRecall)
	}
	if !strings.Contains(FormatTable3(res), "Viterbi") {
		t.Fatal("Table 3 render broken")
	}
}
