// Package experiments regenerates every table and figure of the paper's
// evaluation (§4.4 Figures 4 and 5 plus the overhead and speedup claims,
// and the §5 Tables 2 and 3). The same code backs the root bench_test.go
// benchmarks and the cmd/madbench harness, so numbers in EXPERIMENTS.md
// are reproducible from either entry point.
//
// Substitution note (DESIGN.md §1): the paper ran 10M rows on a 24-core
// Greenplum cluster where every segment owns a processor. This harness
// runs scaled row counts and reports, alongside wall time, the simulated
// cluster time (`engine.RunSimulated`): each segment is timed in isolation
// and the critical path is the slowest segment plus the merge/final tail.
// On a host with fewer cores than segments, wall-clock speedup saturates
// at the core count while the simulated metric reproduces the cluster's
// near-linear speedup.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"time"

	"madlib/internal/core"
	"madlib/internal/crf"
	"madlib/internal/datagen"
	"madlib/internal/engine"
	"madlib/internal/linregr"
	"madlib/internal/sgd"
	"madlib/internal/text"

	// Link every method package so Table1() sees the complete registry.
	_ "madlib/internal/assoc"
	_ "madlib/internal/bayes"
	_ "madlib/internal/bootstrap"
	_ "madlib/internal/dtree"
	_ "madlib/internal/kmeans"
	_ "madlib/internal/lda"
	_ "madlib/internal/logregr"
	_ "madlib/internal/optim"
	_ "madlib/internal/profile"
	_ "madlib/internal/quantile"
	_ "madlib/internal/sketch"
	_ "madlib/internal/sparse"
	_ "madlib/internal/svdmf"
	_ "madlib/internal/svm"
)

// Figure4Config scales the linear-regression timing sweep.
type Figure4Config struct {
	// Rows per dataset (paper: 10,000,000; default here: 20,000).
	Rows int
	// Segments lists segment counts (paper: 6, 12, 18, 24).
	Segments []int
	// Vars lists independent-variable counts (paper: 10..320).
	Vars []int
	// Versions lists implementations (paper: v0.3, v0.2.1beta, v0.1alpha).
	Versions []linregr.Version
	// Trials per cell; the median is reported (default 3).
	Trials int
	// Seed drives the synthetic design matrix.
	Seed int64
}

// Defaults fills in the paper's grid with scaled rows.
func (c *Figure4Config) Defaults() {
	if c.Rows == 0 {
		c.Rows = 20000
	}
	if c.Segments == nil {
		c.Segments = []int{6, 12, 18, 24}
	}
	if c.Vars == nil {
		c.Vars = []int{10, 20, 40, 80, 160, 320}
	}
	if c.Versions == nil {
		c.Versions = []linregr.Version{linregr.V03, linregr.V021Beta, linregr.V01Alpha}
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Figure4Row is one cell of the Figure 4 table.
type Figure4Row struct {
	Segments int
	Vars     int
	Rows     int
	Version  linregr.Version
	// SimTime is the simulated cluster time (critical path).
	SimTime time.Duration
	// WallTime is the host wall-clock time of the same query run with
	// true goroutine parallelism.
	WallTime time.Duration
}

// Figure4 runs the sweep. Datasets are generated once per variable count
// and reloaded per segment count.
func Figure4(cfg Figure4Config) ([]Figure4Row, error) {
	cfg.Defaults()
	var out []Figure4Row
	for _, k := range cfg.Vars {
		gen := datagen.NewRegression(cfg.Seed+int64(k), cfg.Rows, k, 0.5)
		for _, segs := range cfg.Segments {
			db := engine.Open(segs)
			tbl, err := gen.LoadRegression(db, "data")
			if err != nil {
				return nil, err
			}
			for _, v := range cfg.Versions {
				agg, err := linregr.BuildAggregate(tbl, "y", "x", linregr.WithVersion(v))
				if err != nil {
					return nil, err
				}
				// Collect garbage between cells so allocation-heavy
				// versions (v0.2.1beta's per-row temporaries) do not tax
				// the next cell's measurement.
				runtime.GC()
				if _, _, err := db.RunSimulated(tbl, agg); err != nil {
					return nil, err // warm-up, discard timing
				}
				sim, err := simulatedCriticalPath(db, tbl, agg, cfg.Trials)
				if err != nil {
					return nil, err
				}
				wall := medianTimeDur(cfg.Trials, func() (time.Duration, error) {
					_, qs, err := db.RunInstrumented(tbl, agg)
					return qs.WallTime, err
				})
				out = append(out, Figure4Row{
					Segments: segs, Vars: k, Rows: cfg.Rows, Version: v,
					SimTime: sim, WallTime: wall,
				})
			}
		}
	}
	return out, nil
}

// FormatFigure4 renders the rows in the layout of the paper's Figure 4:
// one line per (segments, vars) with a column per version.
func FormatFigure4(rows []Figure4Row) string {
	versions := []linregr.Version{linregr.V03, linregr.V021Beta, linregr.V01Alpha}
	cell := map[string]time.Duration{}
	segSet := map[int]bool{}
	varSet := map[int]bool{}
	rowCount := 0
	for _, r := range rows {
		cell[fmt.Sprintf("%d/%d/%v", r.Segments, r.Vars, r.Version)] = r.SimTime
		segSet[r.Segments] = true
		varSet[r.Vars] = true
		rowCount = r.Rows
	}
	segs := sortedKeys(segSet)
	vars := sortedKeys(varSet)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: linregr simulated-cluster execution times (%d rows)\n", rowCount)
	fmt.Fprintf(&b, "%-10s %-10s %12s %12s %12s\n", "# segments", "# vars", "v0.3", "v0.2.1beta", "v0.1alpha")
	for _, s := range segs {
		for _, k := range vars {
			fmt.Fprintf(&b, "%-10d %-10d", s, k)
			for _, v := range versions {
				d, ok := cell[fmt.Sprintf("%d/%d/%v", s, k, v)]
				if !ok {
					fmt.Fprintf(&b, " %12s", "-")
					continue
				}
				fmt.Fprintf(&b, " %12s", formatDur(d))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Figure5 returns the v0.3 series of Figure 5 (time vs. #vars, one series
// per segment count).
func Figure5(cfg Figure4Config) ([]Figure4Row, error) {
	cfg.Defaults()
	cfg.Versions = []linregr.Version{linregr.V03}
	return Figure4(cfg)
}

// FormatFigure5 renders the series as aligned columns (vars × segments).
func FormatFigure5(rows []Figure4Row) string {
	cell := map[string]time.Duration{}
	segSet := map[int]bool{}
	varSet := map[int]bool{}
	for _, r := range rows {
		cell[fmt.Sprintf("%d/%d", r.Segments, r.Vars)] = r.SimTime
		segSet[r.Segments] = true
		varSet[r.Vars] = true
	}
	segs := sortedKeys(segSet)
	vars := sortedKeys(varSet)
	var b strings.Builder
	b.WriteString("Figure 5: linregr v0.3 simulated time vs #vars per segment count\n")
	fmt.Fprintf(&b, "%-10s", "# vars")
	for _, s := range segs {
		fmt.Fprintf(&b, " %12s", fmt.Sprintf("%d segs", s))
	}
	b.WriteByte('\n')
	for _, k := range vars {
		fmt.Fprintf(&b, "%-10d", k)
		for _, s := range segs {
			fmt.Fprintf(&b, " %12s", formatDur(cell[fmt.Sprintf("%d/%d", s, k)]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// OverheadResult quantifies §4.4's claim (a): fixed per-query overhead is
// a tiny fraction of bulk work.
type OverheadResult struct {
	// EmptyQuery is the cost of an aggregate over an empty table (pure
	// engine overhead).
	EmptyQuery time.Duration
	// BulkQuery is the same aggregate over Rows rows.
	BulkQuery time.Duration
	// Rows is the bulk row count.
	Rows int
	// OverheadFraction is EmptyQuery / BulkQuery.
	OverheadFraction float64
}

// Overhead measures the fixed query overhead against a k=10 linregr over
// rows rows on 24 segments.
func Overhead(rows int) (*OverheadResult, error) {
	if rows == 0 {
		rows = 100000
	}
	db := engine.Open(24)
	empty, err := db.CreateTable("empty", engine.Schema{
		{Name: "y", Kind: engine.Float}, {Name: "x", Kind: engine.Vector},
	})
	if err != nil {
		return nil, err
	}
	if err := empty.Insert(0.0, make([]float64, 10)); err != nil {
		return nil, err // one row so the final function has data
	}
	gen := datagen.NewRegression(7, rows, 10, 0.5)
	bulk, err := gen.LoadRegression(db, "bulk")
	if err != nil {
		return nil, err
	}
	agg, err := linregr.BuildAggregate(bulk, "y", "x")
	if err != nil {
		return nil, err
	}
	aggEmpty, err := linregr.BuildAggregate(empty, "y", "x")
	if err != nil {
		return nil, err
	}
	// Median of several trials for stability.
	emptyT := medianTime(9, func() error {
		_, _, err := db.RunInstrumented(empty, aggEmpty)
		return err
	})
	bulkT := medianTime(3, func() error {
		_, _, err := db.RunInstrumented(bulk, agg)
		return err
	})
	return &OverheadResult{
		EmptyQuery:       emptyT,
		BulkQuery:        bulkT,
		Rows:             rows,
		OverheadFraction: float64(emptyT) / float64(bulkT),
	}, nil
}

// SpeedupRow is one point of the §4.4 linear-speedup claim.
type SpeedupRow struct {
	Segments int
	SimTime  time.Duration
	// Speedup is SimTime(minSegments) / SimTime(segments), ideally
	// segments/minSegments.
	Speedup float64
	// Ideal is segments / minSegments.
	Ideal float64
}

// Speedup sweeps segment counts at fixed data size (v0.3, k=80).
func Speedup(rows int, segments []int) ([]SpeedupRow, error) {
	if rows == 0 {
		rows = 40000
	}
	if segments == nil {
		segments = []int{6, 12, 18, 24}
	}
	gen := datagen.NewRegression(11, rows, 80, 0.5)
	var out []SpeedupRow
	for _, segs := range segments {
		db := engine.Open(segs)
		tbl, err := gen.LoadRegression(db, "data")
		if err != nil {
			return nil, err
		}
		agg, err := linregr.BuildAggregate(tbl, "y", "x")
		if err != nil {
			return nil, err
		}
		if _, _, err := db.RunSimulated(tbl, agg); err != nil {
			return nil, err // warm-up
		}
		best, err := simulatedCriticalPath(db, tbl, agg, 5)
		if err != nil {
			return nil, err
		}
		out = append(out, SpeedupRow{Segments: segs, SimTime: best})
	}
	base := out[0]
	for i := range out {
		out[i].Speedup = float64(base.SimTime) / float64(out[i].SimTime)
		out[i].Ideal = float64(out[i].Segments) / float64(base.Segments)
	}
	return out, nil
}

// FormatSpeedup renders the speedup table.
func FormatSpeedup(rows []SpeedupRow) string {
	var b strings.Builder
	b.WriteString("Parallel speedup (linregr v0.3, k=80, simulated cluster time)\n")
	fmt.Fprintf(&b, "%-10s %12s %10s %10s\n", "# segments", "time", "speedup", "ideal")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10d %12s %10.2f %10.2f\n", r.Segments, formatDur(r.SimTime), r.Speedup, r.Ideal)
	}
	return b.String()
}

// Table1 renders the method inventory from the registry.
func Table1() string {
	var b strings.Builder
	b.WriteString("Table 1: method inventory\n")
	cur := core.Category("")
	for _, m := range core.Methods() {
		if m.Category != cur {
			cur = m.Category
			fmt.Fprintf(&b, "%s\n", cur)
		}
		fmt.Fprintf(&b, "    %-28s (%s)\n", m.Title, m.Name)
	}
	return b.String()
}

// Table2Row is one model's training summary for the §5.1 demonstration.
type Table2Row struct {
	Model       string
	Objective   string
	InitialLoss float64
	FinalLoss   float64
	Passes      int
}

// Table2 trains all six Table-2 models on matched synthetic data and
// reports loss trajectories. The CRF row trains through the same SGD
// framework via internal/crf.
func Table2(rows int) ([]Table2Row, error) {
	if rows == 0 {
		rows = 5000
	}
	db := engine.Open(4)
	out := make([]Table2Row, 0, 6)

	reg := datagen.NewRegression(21, rows, 5, 0.2)
	regT, err := reg.LoadRegression(db, "t2_reg")
	if err != nil {
		return nil, err
	}
	addSGDRow := func(name, objective string, table *engine.Table, extract sgd.Extractor, model sgd.Model, opts sgd.Options) error {
		res, err := sgd.Train(db, table, extract, model, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, Table2Row{
			Model: name, Objective: objective,
			InitialLoss: res.LossHistory[0],
			FinalLoss:   res.LossHistory[len(res.LossHistory)-1],
			Passes:      res.Passes,
		})
		return nil
	}
	if err := addSGDRow("Least Squares", "Σ(xᵀu−y)²", regT, sgd.ExtractLabeled(0, 1),
		sgd.LeastSquares{K: 5}, sgd.Options{StepSize: 0.05, MaxPasses: 30}); err != nil {
		return nil, err
	}
	if err := addSGDRow("Lasso", "Σ(xᵀu−y)²+µ‖x‖₁", regT, sgd.ExtractLabeled(0, 1),
		sgd.Lasso{K: 5, Mu: 0.5}, sgd.Options{StepSize: 0.05, MaxPasses: 30}); err != nil {
		return nil, err
	}

	logGen := datagen.NewLogistic(22, rows, 5)
	logT, err := db.CreateTable("t2_log", engine.Schema{
		{Name: "y", Kind: engine.Float}, {Name: "x", Kind: engine.Vector},
	})
	if err != nil {
		return nil, err
	}
	for i := range logGen.X {
		y := -1.0
		if logGen.Y[i] == 1 {
			y = 1
		}
		if err := logT.Insert(y, logGen.X[i]); err != nil {
			return nil, err
		}
	}
	if err := addSGDRow("Logistic Regression", "Σlog(1+exp(−y·xᵀu))", logT, sgd.ExtractLabeled(0, 1),
		sgd.Logistic{K: 5}, sgd.Options{StepSize: 0.2, MaxPasses: 30}); err != nil {
		return nil, err
	}

	mar := datagen.NewMargin(23, rows, 5, 0.4)
	marT, err := mar.Load(db, "t2_svm")
	if err != nil {
		return nil, err
	}
	if err := addSGDRow("Classification (SVM)", "Σ(1−y·xᵀu)₊", marT, sgd.ExtractLabeled(0, 1),
		sgd.HingeSVM{K: 5}, sgd.Options{StepSize: 0.2, MaxPasses: 30, L2: 1e-4}); err != nil {
		return nil, err
	}

	rat := datagen.NewRatings(24, 40, 30, 3, rows, 0.05)
	ratT, err := db.CreateTable("t2_rat", engine.Schema{
		{Name: "i", Kind: engine.Int}, {Name: "j", Kind: engine.Int}, {Name: "v", Kind: engine.Float},
	})
	if err != nil {
		return nil, err
	}
	for _, e := range rat.Entries {
		if err := ratT.Insert(int64(e.I), int64(e.J), e.Value); err != nil {
			return nil, err
		}
	}
	lr := sgd.LowRank{Rows: 40, Cols: 30, Rank: 3, Mu: 1e-4}
	res, err := sgd.TrainLowRank(db, ratT, sgd.ExtractRating(0, 1, 2), lr, sgd.Options{StepSize: 0.05, MaxPasses: 60})
	if err != nil {
		return nil, err
	}
	out = append(out, Table2Row{
		Model: "Recommendation", Objective: "Σ(LᵢᵀRⱼ−Mᵢⱼ)²+µ‖L,R‖²F",
		InitialLoss: res.LossHistory[0], FinalLoss: res.LossHistory[len(res.LossHistory)-1],
		Passes: res.Passes,
	})

	// CRF labeling: train on the synthetic tagged corpus, reporting the
	// per-sentence negative log-likelihood trajectory via sgd inside crf.
	corpusRaw := datagen.NewCorpus(25, 200, 7)
	corpus := make([]crf.Sentence, len(corpusRaw))
	for i, sent := range corpusRaw {
		s := make(crf.Sentence, len(sent))
		for j, tok := range sent {
			s[j] = crf.Token{Word: tok.Word, Tag: tok.Tag}
		}
		corpus[i] = s
	}
	crfDB := engine.Open(4)
	crfT, err := crf.LoadCorpus(crfDB, "t2_crf", corpus)
	if err != nil {
		return nil, err
	}
	model, err := crf.TrainTable(crfDB, crfT, "words", "tags", crf.TrainOptions{MaxPasses: 15})
	if err != nil {
		return nil, err
	}
	// Before/after loss: mean −log p over the corpus at zero vs. trained.
	zeroLL, trainedLL := 0.0, 0.0
	for _, sent := range corpus {
		words := make([]string, len(sent))
		tags := make([]string, len(sent))
		for i, tok := range sent {
			words[i] = tok.Word
			tags[i] = tok.Tag
		}
		ll, err := model.LogLikelihood(words, tags)
		if err != nil {
			return nil, err
		}
		trainedLL += -ll
		// Uniform model loss: |sent| tags drawn uniformly.
		zeroLL += float64(len(sent)) * logOf(len(model.Tags))
	}
	out = append(out, Table2Row{
		Model: "Labeling (CRF)", Objective: "Σₖ[Σⱼ xⱼFⱼ(yₖ,zₖ)−logZ(zₖ)]",
		InitialLoss: zeroLL / float64(len(corpus)), FinalLoss: trainedLL / float64(len(corpus)),
		Passes: 15,
	})
	return out, nil
}

func logOf(n int) float64 { return math.Log(float64(n)) }

// FormatTable2 renders the model summary.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: models trained through the SGD abstraction\n")
	fmt.Fprintf(&b, "%-22s %-26s %12s %12s %7s\n", "Application", "Objective", "initial", "final", "passes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-26s %12.4f %12.4f %7d\n", r.Model, r.Objective, r.InitialLoss, r.FinalLoss, r.Passes)
	}
	return b.String()
}

// Table3Result reports the text-analysis method × task matrix of Table 3.
type Table3Result struct {
	// FeatureCount is the trained CRF feature-space size (feature
	// extraction works).
	FeatureCount int
	// ViterbiPOSAccuracy is token accuracy of Viterbi decoding on held-out
	// synthetic POS data.
	ViterbiPOSAccuracy float64
	// ViterbiNERAccuracy is the same for the dictionary-driven NER corpus.
	ViterbiNERAccuracy float64
	// MCMCMaxMarginalGap is the largest |Gibbs − forward-backward|
	// marginal discrepancy on a probe sentence.
	MCMCMaxMarginalGap float64
	// MHMaxMarginalGap is the Metropolis-Hastings counterpart.
	MHMaxMarginalGap float64
	// ERRecall is the fraction of misspelled mentions whose top trigram
	// match is the correct entity.
	ERRecall float64
}

// Table3 exercises every (method, task) pair the paper marks.
func Table3() (*Table3Result, error) {
	res := &Table3Result{}

	// POS: train on the synthetic grammar corpus.
	posTrain := convertCorpus(datagen.NewCorpus(31, 250, 8))
	posTest := convertCorpus(datagen.NewCorpus(32, 60, 8))
	posModel, err := crf.Train(posTrain, crf.TrainOptions{MaxPasses: 20})
	if err != nil {
		return nil, err
	}
	res.FeatureCount = posModel.FeatureCount()
	res.ViterbiPOSAccuracy = tagAccuracy(posModel, posTest)

	// MCMC vs exact marginals on a probe sentence.
	probe := []string{"the", "fast", "analyst", "builds", "a", "model"}
	exact := posModel.Marginals(probe)
	gibbs := posModel.Gibbs(probe, crf.MCMCOptions{Sweeps: 4000, BurnIn: 500, Seed: 1})
	mh := posModel.MetropolisHastings(probe, crf.MCMCOptions{Sweeps: 8000, BurnIn: 1000, Seed: 2})
	for t := range exact {
		for b := range exact[t] {
			if d := abs(gibbs.Marginals[t][b] - exact[t][b]); d > res.MCMCMaxMarginalGap {
				res.MCMCMaxMarginalGap = d
			}
			if d := abs(mh.Marginals[t][b] - exact[t][b]); d > res.MHMaxMarginalGap {
				res.MHMaxMarginalGap = d
			}
		}
	}

	// NER: dictionary feature corpus.
	names := []string{"alice", "bob", "carol", "dave", "erin"}
	var nerTrain, nerTest []crf.Sentence
	for i := 0; i < 120; i++ {
		name := names[i%len(names)]
		s := crf.Sentence{
			{Word: "the", Tag: "O"}, {Word: "analyst", Tag: "O"},
			{Word: name, Tag: "PER"}, {Word: "runs", Tag: "O"},
		}
		if i%4 == 0 {
			nerTest = append(nerTest, s)
		} else {
			nerTrain = append(nerTrain, s)
		}
	}
	ex, err := crf.NewExtractor(crf.ExtractorOptions{
		Dictionaries: map[string][]string{"names": names},
	})
	if err != nil {
		return nil, err
	}
	nerModel, err := crf.Train(nerTrain, crf.TrainOptions{Extractor: ex, MaxPasses: 15})
	if err != nil {
		return nil, err
	}
	res.ViterbiNERAccuracy = tagAccuracy(nerModel, nerTest)

	// ER: approximate string matching over misspelled mentions.
	canonical, mentions := datagen.Names(33, 20)
	ix := text.NewIndex()
	for i, n := range canonical {
		ix.Add(i, n)
	}
	hits := 0
	for mi, mention := range mentions {
		truth := mi / 20
		if r := ix.Search(mention, 0.3); len(r) > 0 && r[0].ID == truth {
			hits++
		}
	}
	res.ERRecall = float64(hits) / float64(len(mentions))
	return res, nil
}

// FormatTable3 renders the matrix summary.
func FormatTable3(r *Table3Result) string {
	var b strings.Builder
	b.WriteString("Table 3: statistical text analysis methods\n")
	fmt.Fprintf(&b, "  Text Feature Extraction   features=%d (word, dict, regex, edge, position)\n", r.FeatureCount)
	fmt.Fprintf(&b, "  Viterbi Inference         POS acc=%.3f  NER acc=%.3f\n", r.ViterbiPOSAccuracy, r.ViterbiNERAccuracy)
	fmt.Fprintf(&b, "  MCMC Inference            Gibbs max marginal gap=%.4f  MH=%.4f\n", r.MCMCMaxMarginalGap, r.MHMaxMarginalGap)
	fmt.Fprintf(&b, "  Approx String Matching    ER top-1 recall=%.3f\n", r.ERRecall)
	return b.String()
}

func convertCorpus(raw [][]datagen.TaggedToken) []crf.Sentence {
	out := make([]crf.Sentence, len(raw))
	for i, sent := range raw {
		s := make(crf.Sentence, len(sent))
		for j, tok := range sent {
			s[j] = crf.Token{Word: tok.Word, Tag: tok.Tag}
		}
		out[i] = s
	}
	return out
}

func tagAccuracy(m *crf.Model, test []crf.Sentence) float64 {
	correct, total := 0, 0
	for _, sent := range test {
		words := make([]string, len(sent))
		for i, tok := range sent {
			words[i] = tok.Word
		}
		pred := m.Viterbi(words)
		for i := range sent {
			if pred[i] == sent[i].Tag {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func formatDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

func medianTime(trials int, f func() error) time.Duration {
	times := make([]time.Duration, 0, trials)
	for i := 0; i < trials; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

func medianTimeDur(trials int, f func() (time.Duration, error)) time.Duration {
	times := make([]time.Duration, 0, trials)
	for i := 0; i < trials; i++ {
		d, err := f()
		if err != nil {
			return 0
		}
		times = append(times, d)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2]
}

// simulatedCriticalPath estimates the cluster-critical-path time of the
// aggregate: run `trials` simulated executions, take each segment's
// MINIMUM busy time across trials (each segment's work is deterministic;
// host-side noise — GC pauses, OS preemption — only ever adds), then
// report max-over-segments plus the smallest observed merge/final tail.
func simulatedCriticalPath(db *engine.DB, tbl *engine.Table, agg engine.Aggregate, trials int) (time.Duration, error) {
	var perSeg []time.Duration
	var tail time.Duration
	for trial := 0; trial < trials; trial++ {
		_, bd, err := db.RunSimulatedDetailed(tbl, agg)
		if err != nil {
			return 0, err
		}
		if perSeg == nil {
			perSeg = append([]time.Duration(nil), bd.SegmentTimes...)
			tail = bd.Tail
			continue
		}
		for i, d := range bd.SegmentTimes {
			if d < perSeg[i] {
				perSeg[i] = d
			}
		}
		if bd.Tail < tail {
			tail = bd.Tail
		}
	}
	var maxSeg time.Duration
	for _, d := range perSeg {
		if d > maxSeg {
			maxSeg = d
		}
	}
	return maxSeg + tail, nil
}
