// Package assoc implements association-rule mining with Apriori (Table 1):
// level-wise frequent-itemset discovery with candidate generation and
// pruning, followed by rule extraction with support, confidence, and lift.
// Each counting pass over the baskets runs as one aggregate query, the
// in-database formulation MADlib uses.
package assoc

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"madlib/internal/core"
	"madlib/internal/engine"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "assoc_rules", Title: "Association Rules", Category: core.Unsupervised})
}

// ErrNoData is returned when there are no baskets.
var ErrNoData = errors.New("assoc: no baskets")

// Options configure Mine.
type Options struct {
	// MinSupport is the minimum fraction of baskets an itemset must occur
	// in (default 0.1).
	MinSupport float64
	// MinConfidence is the minimum rule confidence (default 0.5).
	MinConfidence float64
	// MaxSize bounds the itemset size explored (default 4).
	MaxSize int
}

func (o *Options) defaults() {
	if o.MinSupport == 0 {
		o.MinSupport = 0.1
	}
	if o.MinConfidence == 0 {
		o.MinConfidence = 0.5
	}
	if o.MaxSize == 0 {
		o.MaxSize = 4
	}
}

// Itemset is a frequent itemset with its support.
type Itemset struct {
	// Items are sorted item names.
	Items []string
	// Support is the fraction of baskets containing all the items.
	Support float64
	// Count is the absolute basket count.
	Count int
}

// Rule is one association rule A ⇒ B.
type Rule struct {
	// Antecedent and Consequent are disjoint sorted item lists.
	Antecedent []string
	Consequent []string
	// Support is the fraction of baskets containing A ∪ B.
	Support float64
	// Confidence is support(A ∪ B) / support(A).
	Confidence float64
	// Lift is confidence / support(B).
	Lift float64
}

// String renders the rule in the conventional arrow form.
func (r Rule) String() string {
	return fmt.Sprintf("{%s} => {%s} (sup %.3f, conf %.3f, lift %.2f)",
		strings.Join(r.Antecedent, ","), strings.Join(r.Consequent, ","), r.Support, r.Confidence, r.Lift)
}

// Result is the full mining output.
type Result struct {
	// Itemsets are all frequent itemsets, smallest first.
	Itemsets []Itemset
	// Rules are all rules meeting the confidence threshold, sorted by
	// descending confidence then lift.
	Rules []Rule
	// Baskets is the number of baskets mined.
	Baskets int
}

func key(items []string) string { return strings.Join(items, "\x00") }

// Mine runs Apriori over in-memory baskets.
func Mine(baskets [][]string, opts Options) (*Result, error) {
	opts.defaults()
	n := len(baskets)
	if n == 0 {
		return nil, ErrNoData
	}
	// Deduplicate items within each basket and sort.
	sets := make([][]string, n)
	for i, b := range baskets {
		seen := map[string]bool{}
		var s []string
		for _, item := range b {
			if !seen[item] {
				seen[item] = true
				s = append(s, item)
			}
		}
		sort.Strings(s)
		sets[i] = s
	}
	minCount := int(opts.MinSupport*float64(n) + 0.999999)
	if minCount < 1 {
		minCount = 1
	}

	support := map[string]int{} // itemset key → basket count
	var frequent [][]string     // all frequent itemsets, by level

	// L1.
	counts := map[string]int{}
	for _, s := range sets {
		for _, item := range s {
			counts[item]++
		}
	}
	var level [][]string
	for item, c := range counts {
		if c >= minCount {
			level = append(level, []string{item})
			support[item] = c
		}
	}
	sortLevel(level)
	frequent = append(frequent, level...)

	for size := 2; size <= opts.MaxSize && len(level) > 1; size++ {
		cands := generateCandidates(level, support)
		if len(cands) == 0 {
			break
		}
		// Counting pass: check each candidate against each basket.
		candCounts := make([]int, len(cands))
		for _, s := range sets {
			for ci, cand := range cands {
				if containsAll(s, cand) {
					candCounts[ci]++
				}
			}
		}
		var next [][]string
		for ci, cand := range cands {
			if candCounts[ci] >= minCount {
				next = append(next, cand)
				support[key(cand)] = candCounts[ci]
			}
		}
		sortLevel(next)
		frequent = append(frequent, next...)
		level = next
	}

	res := &Result{Baskets: n}
	for _, items := range frequent {
		c := support[key(items)]
		res.Itemsets = append(res.Itemsets, Itemset{Items: items, Count: c, Support: float64(c) / float64(n)})
	}
	res.Rules = deriveRules(frequent, support, n, opts)
	return res, nil
}

// MineTable reconstructs baskets from a table with (basket Int, item
// String) rows — one grouped aggregate — and mines them.
func MineTable(db *engine.DB, table *engine.Table, basketCol, itemCol string, opts Options) (*Result, error) {
	schema := table.Schema()
	bi, ii := schema.Index(basketCol), schema.Index(itemCol)
	if bi < 0 || ii < 0 {
		return nil, fmt.Errorf("%w: %q or %q", engine.ErrNoColumn, basketCol, itemCol)
	}
	if schema[bi].Kind != engine.Int || schema[ii].Kind != engine.String {
		return nil, errors.New("assoc: need (Int, String) columns")
	}
	groups, err := db.RunGroupBy(table, func(r engine.Row) string { return fmt.Sprint(r.Int(bi)) },
		engine.FuncAggregate{
			InitFn: func() any { return []string(nil) },
			TransitionFn: func(s any, r engine.Row) any {
				return append(s.([]string), r.Str(ii))
			},
			MergeFn: func(a, b any) any { return append(a.([]string), b.([]string)...) },
			FinalFn: func(s any) (any, error) { return s, nil },
		})
	if err != nil {
		return nil, err
	}
	baskets := make([][]string, 0, len(groups))
	for _, v := range groups {
		baskets = append(baskets, v.([]string))
	}
	return Mine(baskets, opts)
}

func sortLevel(level [][]string) {
	sort.Slice(level, func(i, j int) bool { return key(level[i]) < key(level[j]) })
}

// generateCandidates joins frequent (k-1)-itemsets sharing a prefix and
// prunes candidates with an infrequent subset (the Apriori property).
func generateCandidates(level [][]string, support map[string]int) [][]string {
	var out [][]string
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			k := len(a)
			if !equalPrefix(a, b, k-1) {
				continue
			}
			cand := append(append([]string(nil), a...), b[k-1])
			sort.Strings(cand)
			if allSubsetsFrequent(cand, support) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func equalPrefix(a, b []string, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func allSubsetsFrequent(cand []string, support map[string]int) bool {
	sub := make([]string, 0, len(cand)-1)
	for drop := range cand {
		sub = sub[:0]
		for i, item := range cand {
			if i != drop {
				sub = append(sub, item)
			}
		}
		if _, ok := support[key(sub)]; !ok {
			return false
		}
	}
	return true
}

// containsAll reports whether the sorted basket contains every item of the
// sorted candidate.
func containsAll(basket, cand []string) bool {
	bi := 0
	for _, item := range cand {
		for bi < len(basket) && basket[bi] < item {
			bi++
		}
		if bi >= len(basket) || basket[bi] != item {
			return false
		}
		bi++
	}
	return true
}

// deriveRules expands each frequent itemset of size ≥ 2 into rules.
func deriveRules(frequent [][]string, support map[string]int, n int, opts Options) []Rule {
	var rules []Rule
	for _, items := range frequent {
		if len(items) < 2 {
			continue
		}
		full := support[key(items)]
		for mask := 1; mask < (1<<len(items))-1; mask++ {
			var ante, cons []string
			for i, item := range items {
				if mask&(1<<i) != 0 {
					ante = append(ante, item)
				} else {
					cons = append(cons, item)
				}
			}
			anteCount, ok := support[key(ante)]
			if !ok || anteCount == 0 {
				continue
			}
			conf := float64(full) / float64(anteCount)
			if conf < opts.MinConfidence {
				continue
			}
			consCount, ok := support[key(cons)]
			if !ok || consCount == 0 {
				continue
			}
			rules = append(rules, Rule{
				Antecedent: ante,
				Consequent: cons,
				Support:    float64(full) / float64(n),
				Confidence: conf,
				Lift:       conf / (float64(consCount) / float64(n)),
			})
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Lift != rules[j].Lift {
			return rules[i].Lift > rules[j].Lift
		}
		return key(rules[i].Antecedent) < key(rules[j].Antecedent)
	})
	return rules
}
