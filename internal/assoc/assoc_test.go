package assoc

import (
	"errors"
	"math"
	"testing"

	"madlib/internal/datagen"
	"madlib/internal/engine"
)

var groceries = [][]string{
	{"bread", "milk"},
	{"bread", "diapers", "beer", "eggs"},
	{"milk", "diapers", "beer", "cola"},
	{"bread", "milk", "diapers", "beer"},
	{"bread", "milk", "diapers", "cola"},
}

func findItemset(res *Result, items ...string) *Itemset {
	k := key(items)
	for i := range res.Itemsets {
		if key(res.Itemsets[i].Items) == k {
			return &res.Itemsets[i]
		}
	}
	return nil
}

func findRule(res *Result, ante, cons string) *Rule {
	for i := range res.Rules {
		if len(res.Rules[i].Antecedent) == 1 && res.Rules[i].Antecedent[0] == ante &&
			len(res.Rules[i].Consequent) == 1 && res.Rules[i].Consequent[0] == cons {
			return &res.Rules[i]
		}
	}
	return nil
}

func TestTextbookExample(t *testing.T) {
	res, err := Mine(groceries, Options{MinSupport: 0.4, MinConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baskets != 5 {
		t.Fatalf("baskets = %d", res.Baskets)
	}
	// {diapers, beer} occurs in 3 of 5 baskets.
	is := findItemset(res, "beer", "diapers")
	if is == nil {
		t.Fatalf("missing {beer,diapers}; got %v", res.Itemsets)
	}
	if is.Count != 3 || math.Abs(is.Support-0.6) > 1e-12 {
		t.Fatalf("{beer,diapers} = %+v", is)
	}
	// beer ⇒ diapers has confidence 3/3 = 1.0 and lift 1/(4/5) = 1.25.
	r := findRule(res, "beer", "diapers")
	if r == nil {
		t.Fatalf("missing beer⇒diapers; rules: %v", res.Rules)
	}
	if math.Abs(r.Confidence-1.0) > 1e-12 || math.Abs(r.Lift-1.25) > 1e-12 {
		t.Fatalf("beer⇒diapers = %+v", r)
	}
	// diapers ⇒ beer has confidence 3/4 = 0.75.
	r = findRule(res, "diapers", "beer")
	if r == nil || math.Abs(r.Confidence-0.75) > 1e-12 {
		t.Fatalf("diapers⇒beer = %+v", r)
	}
}

func TestAprioriMonotonicity(t *testing.T) {
	res, err := Mine(groceries, Options{MinSupport: 0.2, MinConfidence: 0.1, MaxSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every subset of a frequent itemset must be frequent, with support at
	// least the superset's.
	sup := map[string]float64{}
	for _, is := range res.Itemsets {
		sup[key(is.Items)] = is.Support
	}
	for _, is := range res.Itemsets {
		if len(is.Items) < 2 {
			continue
		}
		for drop := range is.Items {
			var sub []string
			for i, item := range is.Items {
				if i != drop {
					sub = append(sub, item)
				}
			}
			subSup, ok := sup[key(sub)]
			if !ok {
				t.Fatalf("subset %v of %v missing", sub, is.Items)
			}
			if subSup < is.Support-1e-12 {
				t.Fatalf("subset %v support %v < superset %v", sub, subSup, is.Support)
			}
		}
	}
}

func TestRulesRespectThresholds(t *testing.T) {
	res, err := Mine(groceries, Options{MinSupport: 0.3, MinConfidence: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rules {
		if r.Confidence < 0.8 {
			t.Fatalf("rule %v below confidence threshold", r)
		}
		if r.Support < 0.3-1e-12 {
			t.Fatalf("rule %v below support threshold", r)
		}
	}
	// Rules sorted by descending confidence.
	for i := 1; i < len(res.Rules); i++ {
		if res.Rules[i].Confidence > res.Rules[i-1].Confidence+1e-12 {
			t.Fatal("rules not sorted by confidence")
		}
	}
}

func TestDuplicateItemsInBasket(t *testing.T) {
	res, err := Mine([][]string{{"a", "a", "b"}, {"a", "b", "b"}}, Options{MinSupport: 0.5, MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	is := findItemset(res, "a", "b")
	if is == nil || is.Count != 2 {
		t.Fatalf("duplicates mishandled: %+v", is)
	}
}

func TestPlantedRulesFound(t *testing.T) {
	baskets := datagen.Baskets(1, 2000, 10)
	res, err := Mine(baskets, Options{MinSupport: 0.05, MinConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	// The generator plants item0 ⇒ item1 with ~0.8 confidence.
	r := findRule(res, "item0", "item1")
	if r == nil {
		t.Fatalf("planted rule not found; rules: %v", res.Rules[:min(5, len(res.Rules))])
	}
	if r.Confidence < 0.7 || r.Confidence > 0.9 {
		t.Fatalf("planted rule confidence = %v", r.Confidence)
	}
	if r.Lift < 2 {
		t.Fatalf("planted rule lift = %v", r.Lift)
	}
}

func TestMineTable(t *testing.T) {
	db := engine.Open(3)
	tbl, _ := db.CreateTable("b", engine.Schema{
		{Name: "basket", Kind: engine.Int},
		{Name: "item", Kind: engine.String},
	})
	for bID, basket := range groceries {
		for _, item := range basket {
			// Hash-distribute by basket so baskets co-locate.
			if err := tbl.InsertHashed(uint64(bID), int64(bID), item); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := MineTable(db, tbl, "basket", "item", Options{MinSupport: 0.4, MinConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Baskets != 5 {
		t.Fatalf("baskets = %d", res.Baskets)
	}
	if r := findRule(res, "beer", "diapers"); r == nil || math.Abs(r.Confidence-1.0) > 1e-12 {
		t.Fatalf("beer⇒diapers wrong via table path: %+v", r)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Mine(nil, Options{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	db := engine.Open(1)
	tbl, _ := db.CreateTable("b", engine.Schema{
		{Name: "basket", Kind: engine.Int},
		{Name: "item", Kind: engine.String},
	})
	if _, err := MineTable(db, tbl, "zz", "item", Options{}); err == nil {
		t.Fatal("missing column should fail")
	}
	if _, err := MineTable(db, tbl, "basket", "item", Options{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
}

func BenchmarkMine(b *testing.B) {
	baskets := datagen.Baskets(2, 2000, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(baskets, Options{MinSupport: 0.05, MinConfidence: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}
