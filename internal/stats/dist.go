// Package stats provides the distribution functions the library's final
// functions need to report inference statistics (p-values for regression
// coefficients, chi-square tests in profiling, F tests). MADlib obtains
// these from Boost.Math; we implement the classical series/continued-
// fraction evaluations of the regularized incomplete gamma and beta
// functions on top of math.Lgamma.
package stats

import (
	"math"
)

// NormalCDF returns P(Z ≤ x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the x with NormalCDF(x) = p, using the
// Beasley-Springer-Moro rational approximation refined by one Newton step.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Acklam's rational approximation.
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00
		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01
		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00
		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00
	)
	var x float64
	switch {
	case p < 0.02425:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) / ((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= 0.97575:
		q := p - 0.5
		r := q * q
		x = (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q / (((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) / ((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
	// One Newton refinement.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// regIncGammaP returns the regularized lower incomplete gamma function
// P(a, x) using the series expansion for x < a+1 and the continued fraction
// for x ≥ a+1 (Numerical Recipes gammp/gammq).
func regIncGammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns P(X ≤ x) for a chi-square variable with k degrees of
// freedom.
func ChiSquareCDF(x float64, k float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaP(k/2, x/2)
}

// regIncBeta returns the regularized incomplete beta function I_x(a, b)
// via the continued-fraction expansion (Numerical Recipes betai/betacf).
func regIncBeta(x, a, b float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	bt := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return bt * betaCF(x, a, b) / a
	}
	return 1 - bt*betaCF(1-x, b, a)/b
}

func betaCF(x, a, b float64) float64 {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= 500; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T ≤ t) for Student's t with nu degrees of freedom.
func StudentTCDF(t float64, nu float64) float64 {
	if nu <= 0 {
		return math.NaN()
	}
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := nu / (nu + t*t)
	p := 0.5 * regIncBeta(x, nu/2, 0.5)
	if t > 0 {
		return 1 - p
	}
	return p
}

// StudentTPValue returns the two-sided p-value for a t statistic with nu
// degrees of freedom: P(|T| ≥ |t|). This is what linregr reports per
// coefficient.
func StudentTPValue(t float64, nu float64) float64 {
	if math.IsNaN(t) {
		return math.NaN()
	}
	x := nu / (nu + t*t)
	return regIncBeta(x, nu/2, 0.5)
}

// FCDF returns P(X ≤ x) for an F-distributed variable with d1 and d2
// degrees of freedom.
func FCDF(x, d1, d2 float64) float64 {
	if x <= 0 {
		return 0
	}
	return regIncBeta(d1*x/(d1*x+d2), d1/2, d2/2)
}

// FPValue returns the upper-tail p-value P(X ≥ x) for the F statistic, as
// reported for the overall regression significance test.
func FPValue(x, d1, d2 float64) float64 {
	return 1 - FCDF(x, d1, d2)
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }
