package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNormalCDFKnown(t *testing.T) {
	tests := []struct{ x, want float64 }{
		{0, 0.5},
		{1.959963985, 0.975},
		{-1.959963985, 0.025},
		{1, 0.8413447461},
		{-2.5, 0.0062096653},
	}
	for _, tc := range tests {
		if got := NormalCDF(tc.x); !approx(got, tc.want, 1e-9) {
			t.Fatalf("NormalCDF(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999} {
		x := NormalQuantile(p)
		if got := NormalCDF(x); !approx(got, p, 1e-10) {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("quantile at 0/1 should be ±Inf")
	}
}

func TestChiSquareCDFKnown(t *testing.T) {
	// Known: chi2(k=2) CDF at x is 1 - exp(-x/2).
	for _, x := range []float64{0.5, 1, 2, 5} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); !approx(got, want, 1e-12) {
			t.Fatalf("ChiSquareCDF(%v, 2) = %v, want %v", x, got, want)
		}
	}
	// 95th percentile of chi2(1) is 3.841458821.
	if got := ChiSquareCDF(3.841458821, 1); !approx(got, 0.95, 1e-8) {
		t.Fatalf("ChiSquareCDF(3.8415,1) = %v", got)
	}
	if ChiSquareCDF(-1, 3) != 0 {
		t.Fatal("negative x should give 0")
	}
}

func TestStudentTCDFKnown(t *testing.T) {
	// t with nu=1 is Cauchy: CDF(x) = 1/2 + atan(x)/π.
	for _, x := range []float64{-2, -1, 0, 0.5, 3} {
		want := 0.5 + math.Atan(x)/math.Pi
		if got := StudentTCDF(x, 1); !approx(got, want, 1e-10) {
			t.Fatalf("StudentTCDF(%v,1) = %v, want %v", x, got, want)
		}
	}
	// Large nu approaches the normal.
	if got := StudentTCDF(1.96, 1e6); !approx(got, NormalCDF(1.96), 1e-5) {
		t.Fatalf("t with huge nu should match normal, got %v", got)
	}
	// 97.5th percentile of t(10) is 2.228138852.
	if got := StudentTCDF(2.228138852, 10); !approx(got, 0.975, 1e-8) {
		t.Fatalf("StudentTCDF(2.2281,10) = %v", got)
	}
}

func TestStudentTPValue(t *testing.T) {
	// Two-sided p at the 97.5th percentile must be 0.05.
	if got := StudentTPValue(2.228138852, 10); !approx(got, 0.05, 1e-8) {
		t.Fatalf("p-value = %v, want 0.05", got)
	}
	// Symmetric in t.
	if got1, got2 := StudentTPValue(1.3, 7), StudentTPValue(-1.3, 7); !approx(got1, got2, 1e-14) {
		t.Fatalf("p-value not symmetric: %v vs %v", got1, got2)
	}
	if got := StudentTPValue(0, 5); !approx(got, 1, 1e-12) {
		t.Fatalf("p-value at t=0 should be 1, got %v", got)
	}
}

func TestFCDFKnown(t *testing.T) {
	// F(d1=2, d2=2) CDF at x is x/(1+x).
	for _, x := range []float64{0.5, 1, 2, 10} {
		want := x / (1 + x)
		if got := FCDF(x, 2, 2); !approx(got, want, 1e-10) {
			t.Fatalf("FCDF(%v,2,2) = %v, want %v", x, got, want)
		}
	}
	// 95th percentile of F(5,10) is 3.325835.
	if got := FCDF(3.325835, 5, 10); !approx(got, 0.95, 1e-6) {
		t.Fatalf("FCDF(3.3258,5,10) = %v", got)
	}
	if got := FPValue(3.325835, 5, 10); !approx(got, 0.05, 1e-6) {
		t.Fatalf("FPValue = %v", got)
	}
}

func TestCDFMonotonicityProperty(t *testing.T) {
	f := func(a, b float64) bool {
		x, y := math.Mod(math.Abs(a), 10), math.Mod(math.Abs(b), 10)
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		if x > y {
			x, y = y, x
		}
		return NormalCDF(x) <= NormalCDF(y)+1e-15 &&
			ChiSquareCDF(x, 3) <= ChiSquareCDF(y, 3)+1e-15 &&
			StudentTCDF(x, 5) <= StudentTCDF(y, 5)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFRangeProperty(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 100)
		for _, p := range []float64{NormalCDF(x), StudentTCDF(x, 4), ChiSquareCDF(x, 4), FCDF(x, 3, 7)} {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); !approx(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); !approx(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("degenerate inputs should be NaN")
	}
}
