package svm

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"madlib/internal/datagen"
	"madlib/internal/engine"
)

func TestClassificationSeparable(t *testing.T) {
	db := engine.Open(4)
	gen := datagen.NewMargin(1, 4000, 5, 0.5)
	tbl, err := gen.Load(db, "d")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(db, tbl, "y", "x", Options{Passes: 30})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range gen.X {
		if m.Classify(gen.X[i]) == gen.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(gen.X)); acc < 0.97 {
		t.Fatalf("training accuracy = %v", acc)
	}
	// Loss should fall substantially from the first pass.
	first, last := m.LossHistory[0], m.LossHistory[len(m.LossHistory)-1]
	if last > first/2 {
		t.Fatalf("loss did not fall: first %v last %v", first, last)
	}
}

func TestRegressionLinearTarget(t *testing.T) {
	db := engine.Open(3)
	tbl, _ := db.CreateTable("d", engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	rng := rand.New(rand.NewSource(2))
	w := []float64{1.5, -2.0, 0.5}
	var testX [][]float64
	var testY []float64
	for i := 0; i < 5000; i++ {
		x := []float64{1, rng.NormFloat64(), rng.NormFloat64()}
		y := w[0]*x[0] + w[1]*x[1] + w[2]*x[2]
		if err := tbl.Insert(y, x); err != nil {
			t.Fatal(err)
		}
		if i < 100 {
			testX = append(testX, x)
			testY = append(testY, y)
		}
	}
	m, err := Train(db, tbl, "y", "x", Options{Mode: Regression, Passes: 60, StepSize: 0.05, Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	var mae float64
	for i := range testX {
		mae += math.Abs(m.Predict(testX[i]) - testY[i])
	}
	mae /= float64(len(testX))
	if mae > 0.25 {
		t.Fatalf("regression MAE = %v", mae)
	}
}

func TestNoveltyDetection(t *testing.T) {
	db := engine.Open(2)
	tbl, _ := db.CreateTable("d", engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	rng := rand.New(rand.NewSource(3))
	// Normal data clusters around (5, 5).
	for i := 0; i < 3000; i++ {
		x := []float64{5 + rng.NormFloat64()*0.3, 5 + rng.NormFloat64()*0.3}
		if err := tbl.Insert(0.0, x); err != nil {
			t.Fatal(err)
		}
	}
	m, err := Train(db, tbl, "y", "x", Options{Mode: Novelty, Passes: 40, Nu: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// In-distribution points should mostly be accepted; the far-away
	// opposite-direction point must be novel.
	accepted := 0
	for i := 0; i < 200; i++ {
		x := []float64{5 + rng.NormFloat64()*0.3, 5 + rng.NormFloat64()*0.3}
		if !m.IsNovel(x) {
			accepted++
		}
	}
	if accepted < 150 {
		t.Fatalf("only %d/200 normal points accepted", accepted)
	}
	if !m.IsNovel([]float64{-5, -5}) {
		t.Fatal("distant point not flagged as novel")
	}
}

func TestSegmentInvarianceIsApproximate(t *testing.T) {
	// IGD chains differ across segmentations, but both models should
	// classify the same; this documents the intended approximation.
	gen := datagen.NewMargin(4, 2000, 4, 0.6)
	var models []*Model
	for _, segs := range []int{1, 8} {
		db := engine.Open(segs)
		tbl, _ := gen.Load(db, "d")
		m, err := Train(db, tbl, "y", "x", Options{Passes: 30})
		if err != nil {
			t.Fatal(err)
		}
		models = append(models, m)
	}
	agree := 0
	for i := range gen.X {
		if models[0].Classify(gen.X[i]) == models[1].Classify(gen.X[i]) {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(gen.X)); frac < 0.95 {
		t.Fatalf("models agree on only %v of points", frac)
	}
}

func TestErrors(t *testing.T) {
	db := engine.Open(2)
	empty, _ := db.CreateTable("e", engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	if _, err := Train(db, empty, "y", "x", Options{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
	if _, err := Train(db, empty, "zz", "x", Options{}); err == nil {
		t.Fatal("missing column should fail")
	}
	if _, err := Train(db, empty, "x", "y", Options{}); err == nil {
		t.Fatal("swapped kinds should fail")
	}
}

func BenchmarkClassificationPass(b *testing.B) {
	db := engine.Open(4)
	gen := datagen.NewMargin(5, 10000, 8, 0.5)
	tbl, _ := gen.Load(db, "d")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(db, tbl, "y", "x", Options{Passes: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
