// Package svm implements support vector machines via incremental gradient
// descent (Table 1), in the three modes MADlib v0.3 shipped: binary
// classification (hinge loss), regression (ε-insensitive loss), and
// novelty detection (one-class). All three train on the unified igd
// harness: morsel-parallel epochs with per-replica model chains merged by
// weighted averaging, fed through the vectorized gather kernels.
package svm

import (
	"errors"
	"fmt"

	"madlib/internal/array"
	"madlib/internal/core"
	"madlib/internal/engine"
	"madlib/internal/igd"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "svm", Title: "Support Vector Machines", Category: core.Supervised})
}

// Mode selects the SVM variant.
type Mode int

const (
	// Classification trains a binary ±1 classifier with hinge loss.
	Classification Mode = iota
	// Regression trains with ε-insensitive loss.
	Regression
	// Novelty trains a one-class detector: points scoring below the
	// learned threshold are novel.
	Novelty
)

// ErrNoData is returned when training sees no rows.
var ErrNoData = errors.New("svm: no training rows")

// Options configure training.
type Options struct {
	// Mode selects the variant (default Classification).
	Mode Mode
	// Lambda is the L2 regularization strength (default 1e-4).
	Lambda float64
	// Epsilon is the regression insensitivity band (default 0.1).
	Epsilon float64
	// Nu controls the novelty margin fraction (default 0.1).
	Nu float64
	// StepSize is the initial learning rate (default 0.1).
	StepSize float64
	// Passes is the number of IGD passes over the data (default 20).
	Passes int
}

func (o *Options) defaults() {
	if o.Lambda == 0 {
		o.Lambda = 1e-4
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.1
	}
	if o.Nu == 0 {
		o.Nu = 0.1
	}
	if o.StepSize == 0 {
		o.StepSize = 0.1
	}
	if o.Passes == 0 {
		o.Passes = 20
	}
}

// Model is a trained linear SVM.
type Model struct {
	// Weights is the weight vector (same width as the feature vectors).
	Weights []float64
	// Rho is the novelty-detection offset (Novelty mode only).
	Rho float64
	// Mode records the trained variant.
	Mode Mode
	// LossHistory is the average loss per pass.
	LossHistory []float64
	// NumRows is the number of training rows.
	NumRows int64
}

// epsilonLoss is the ε-insensitive regression loss Σ (|xᵀw − y| − ε)₊
// with per-step L2 shrinkage, in igd plug-in form.
type epsilonLoss struct {
	k               int
	lambda, epsilon float64
}

func (l epsilonLoss) Dim() int { return l.k }

func (l epsilonLoss) Step(w, x []float64, y, alpha float64) float64 {
	array.Scale(1-alpha*l.lambda, w)
	diff := array.Dot(w, x) - y
	if diff > l.epsilon {
		array.Axpy(-alpha, x, w)
		return diff - l.epsilon
	}
	if diff < -l.epsilon {
		array.Axpy(alpha, x, w)
		return -diff - l.epsilon
	}
	return 0
}

func (l epsilonLoss) Objective(w, x []float64, y float64) float64 {
	diff := array.Dot(w, x) - y
	if diff > l.epsilon {
		return diff - l.epsilon
	}
	if diff < -l.epsilon {
		return -diff - l.epsilon
	}
	return 0
}

// noveltyLoss is the one-class objective. The model packs the threshold
// rho at w[k] so the harness's weighted model averaging merges it exactly
// like the legacy per-segment chains did; the label lane is ignored.
type noveltyLoss struct {
	k          int
	lambda, nu float64
}

func (l noveltyLoss) Dim() int { return l.k + 1 }

func (l noveltyLoss) Step(w, x []float64, _, alpha float64) float64 {
	wk := w[:l.k]
	array.Scale(1-alpha*l.lambda, wk)
	score := array.Dot(wk, x)
	rho := w[l.k]
	// One-class: maximize margin score ≥ rho while rho grows; slack
	// when score < rho.
	if score < rho {
		array.Axpy(alpha, x, wk)
		w[l.k] = rho - alpha*l.nu
		return rho - score
	}
	w[l.k] = rho + alpha*(1-l.nu)
	return 0
}

func (l noveltyLoss) Objective(w, x []float64, _ float64) float64 {
	if score := array.Dot(w[:l.k], x); score < w[l.k] {
		return w[l.k] - score
	}
	return 0
}

// Train fits the model. For Classification, yCol must hold ±1 labels; for
// Regression, real targets; for Novelty, yCol is ignored (may be any Float
// column).
func Train(db *engine.DB, table *engine.Table, yCol, xCol string, opts Options) (*Model, error) {
	opts.defaults()
	schema := table.Schema()
	if _, err := core.BindColumns(schema, yCol, xCol); err != nil {
		return nil, err
	}
	yi, xi := schema.Index(yCol), schema.Index(xCol)
	if schema[xi].Kind != engine.Vector {
		return nil, fmt.Errorf("svm: column %q must be %s", xCol, engine.Vector)
	}
	if schema[yi].Kind != engine.Float {
		return nil, fmt.Errorf("svm: column %q must be %s", yCol, engine.Float)
	}
	// Probe the feature width straight off segment storage.
	k := -1
	for _, seg := range table.Segments() {
		if vecs := seg.Vectors(xi); len(vecs) > 0 {
			k = len(vecs[0])
			break
		}
	}
	if k < 0 {
		return nil, ErrNoData
	}
	var loss igd.Loss
	switch opts.Mode {
	case Classification:
		loss = igd.Hinge{K: k, Lambda: opts.Lambda}
	case Regression:
		loss = epsilonLoss{k: k, lambda: opts.Lambda, epsilon: opts.Epsilon}
	case Novelty:
		loss = noveltyLoss{k: k, lambda: opts.Lambda, nu: opts.Nu}
	default:
		return nil, fmt.Errorf("svm: unknown mode %d", opts.Mode)
	}
	res, err := igd.Train(db, table, igd.VectorFeatures(yi, xi), loss, igd.Options{
		StepSize: opts.StepSize,
		Epochs:   opts.Passes,
		// The legacy loop ran every pass with no convergence check;
		// keep that schedule.
		Tolerance: -1,
	})
	if err != nil {
		if errors.Is(err, igd.ErrNoData) {
			return nil, ErrNoData
		}
		return nil, err
	}
	m := &Model{
		Mode:        opts.Mode,
		Weights:     res.Weights,
		LossHistory: res.LossHistory,
		NumRows:     res.NumRows,
	}
	if opts.Mode == Novelty {
		m.Rho = res.Weights[k]
		m.Weights = res.Weights[:k]
	}
	return m, nil
}

// Score returns the raw decision value <w, x> (minus rho in Novelty mode).
func (m *Model) Score(x []float64) float64 {
	s := array.Dot(m.Weights, x)
	if m.Mode == Novelty {
		return s - m.Rho
	}
	return s
}

// Classify returns ±1 for Classification mode.
func (m *Model) Classify(x []float64) float64 {
	if m.Score(x) >= 0 {
		return 1
	}
	return -1
}

// Predict returns the regression estimate <w, x>.
func (m *Model) Predict(x []float64) float64 { return array.Dot(m.Weights, x) }

// IsNovel reports whether x falls outside the learned one-class region.
func (m *Model) IsNovel(x []float64) bool { return m.Score(x) < 0 }

// ScoreTable computes the decision value for every row of xCol in table
// order, one morsel per task on the worker pool, reading the vector lane
// straight off segment storage (no per-row boxing).
func (m *Model) ScoreTable(db *engine.DB, table *engine.Table, xCol string) ([]float64, error) {
	schema := table.Schema()
	xi := schema.Index(xCol)
	if xi < 0 {
		return nil, fmt.Errorf("svm: no column %q", xCol)
	}
	if schema[xi].Kind != engine.Vector {
		return nil, fmt.Errorf("svm: column %q must be %s", xCol, engine.Vector)
	}
	ms := table.Morsels()
	offsets := make([]int, len(ms))
	total := 0
	for i, mo := range ms {
		offsets[i] = total
		total += mo.Len()
	}
	out := make([]float64, total)
	err := db.RunTasks(table, len(ms), func(task int) error {
		pos := offsets[task]
		return ms[task].ForEachBatch(func(b engine.ColBatch) error {
			for _, x := range b.Vectors(xi) {
				out[pos] = m.Score(x)
				pos++
			}
			return nil
		})
	})
	if err != nil {
		return nil, err
	}
	db.AddRowsScanned(int64(total))
	return out, nil
}
