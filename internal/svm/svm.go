// Package svm implements support vector machines via incremental gradient
// descent (Table 1), in the three modes MADlib v0.3 shipped: binary
// classification (hinge loss), regression (ε-insensitive loss), and
// novelty detection (one-class). Each training pass is one aggregate query
// with per-segment SGD chains averaged at merge time, the same
// macro-pattern as logregr's IGD solver.
package svm

import (
	"errors"
	"fmt"
	"math"

	"madlib/internal/array"
	"madlib/internal/core"
	"madlib/internal/engine"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "svm", Title: "Support Vector Machines", Category: core.Supervised})
}

// Mode selects the SVM variant.
type Mode int

const (
	// Classification trains a binary ±1 classifier with hinge loss.
	Classification Mode = iota
	// Regression trains with ε-insensitive loss.
	Regression
	// Novelty trains a one-class detector: points scoring below the
	// learned threshold are novel.
	Novelty
)

// ErrNoData is returned when training sees no rows.
var ErrNoData = errors.New("svm: no training rows")

// Options configure training.
type Options struct {
	// Mode selects the variant (default Classification).
	Mode Mode
	// Lambda is the L2 regularization strength (default 1e-4).
	Lambda float64
	// Epsilon is the regression insensitivity band (default 0.1).
	Epsilon float64
	// Nu controls the novelty margin fraction (default 0.1).
	Nu float64
	// StepSize is the initial learning rate (default 0.1).
	StepSize float64
	// Passes is the number of IGD passes over the data (default 20).
	Passes int
}

func (o *Options) defaults() {
	if o.Lambda == 0 {
		o.Lambda = 1e-4
	}
	if o.Epsilon == 0 {
		o.Epsilon = 0.1
	}
	if o.Nu == 0 {
		o.Nu = 0.1
	}
	if o.StepSize == 0 {
		o.StepSize = 0.1
	}
	if o.Passes == 0 {
		o.Passes = 20
	}
}

// Model is a trained linear SVM.
type Model struct {
	// Weights is the weight vector (same width as the feature vectors).
	Weights []float64
	// Rho is the novelty-detection offset (Novelty mode only).
	Rho float64
	// Mode records the trained variant.
	Mode Mode
	// LossHistory is the average loss per pass.
	LossHistory []float64
	// NumRows is the number of training rows.
	NumRows int64
}

type passState struct {
	w    []float64
	rho  float64
	loss float64
	n    int64
}

// Train fits the model. For Classification, yCol must hold ±1 labels; for
// Regression, real targets; for Novelty, yCol is ignored (may be any Float
// column).
func Train(db *engine.DB, table *engine.Table, yCol, xCol string, opts Options) (*Model, error) {
	opts.defaults()
	schema := table.Schema()
	bind, err := core.BindColumns(schema, yCol, xCol)
	if err != nil {
		return nil, err
	}
	if schema[schema.Index(xCol)].Kind != engine.Vector {
		return nil, fmt.Errorf("svm: column %q must be %s", xCol, engine.Vector)
	}
	if schema[schema.Index(yCol)].Kind != engine.Float {
		return nil, fmt.Errorf("svm: column %q must be %s", yCol, engine.Float)
	}
	// Probe width. Each segment goroutine writes only its own slot —
	// a single shared variable would race across segments.
	widths := make([]int, len(table.Segments()))
	for i := range widths {
		widths[i] = -1
	}
	err = db.ForEachSegment(table, func(seg int, row engine.Row) error {
		if widths[seg] < 0 {
			widths[seg] = len(bind.Bridge(row).Vector(1))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	k := -1
	for _, w := range widths {
		if w >= 0 {
			k = w
			break
		}
	}
	if k < 0 {
		return nil, ErrNoData
	}
	m := &Model{Mode: opts.Mode, Weights: make([]float64, k)}
	for pass := 1; pass <= opts.Passes; pass++ {
		alpha := opts.StepSize / math.Sqrt(float64(pass))
		w0 := array.Clone(m.Weights)
		rho0 := m.Rho
		agg := engine.FuncAggregate{
			InitFn: func() any { return &passState{w: array.Clone(w0), rho: rho0} },
			TransitionFn: func(s any, row engine.Row) any {
				st := s.(*passState)
				args := bind.Bridge(row)
				y := args.Float(0)
				x := args.Vector(1)
				st.n++
				// L2 shrinkage for all modes.
				array.Scale(1-alpha*opts.Lambda, st.w)
				score := array.Dot(st.w, x)
				switch opts.Mode {
				case Classification:
					if margin := y * score; margin < 1 {
						st.loss += 1 - margin
						array.Axpy(alpha*y, x, st.w)
					}
				case Regression:
					diff := score - y
					if diff > opts.Epsilon {
						st.loss += diff - opts.Epsilon
						array.Axpy(-alpha, x, st.w)
					} else if diff < -opts.Epsilon {
						st.loss += -diff - opts.Epsilon
						array.Axpy(alpha, x, st.w)
					}
				case Novelty:
					// One-class: maximize margin score ≥ rho while rho
					// grows; slack when score < rho.
					if score < st.rho {
						st.loss += st.rho - score
						array.Axpy(alpha, x, st.w)
						st.rho -= alpha * opts.Nu
					} else {
						st.rho += alpha * (1 - opts.Nu)
					}
				}
				return st
			},
			MergeFn: func(a, b any) any {
				sa, sb := a.(*passState), b.(*passState)
				total := sa.n + sb.n
				if total == 0 {
					return sa
				}
				wa := float64(sa.n) / float64(total)
				wb := float64(sb.n) / float64(total)
				for i := range sa.w {
					sa.w[i] = wa*sa.w[i] + wb*sb.w[i]
				}
				sa.rho = wa*sa.rho + wb*sb.rho
				sa.loss += sb.loss
				sa.n = total
				return sa
			},
			FinalFn: func(s any) (any, error) { return s, nil },
		}
		v, err := db.Run(table, agg)
		if err != nil {
			return nil, err
		}
		st := v.(*passState)
		if st.n == 0 {
			return nil, ErrNoData
		}
		m.Weights = st.w
		m.Rho = st.rho
		m.NumRows = st.n
		m.LossHistory = append(m.LossHistory, st.loss/float64(st.n))
	}
	return m, nil
}

// Score returns the raw decision value <w, x> (minus rho in Novelty mode).
func (m *Model) Score(x []float64) float64 {
	s := array.Dot(m.Weights, x)
	if m.Mode == Novelty {
		return s - m.Rho
	}
	return s
}

// Classify returns ±1 for Classification mode.
func (m *Model) Classify(x []float64) float64 {
	if m.Score(x) >= 0 {
		return 1
	}
	return -1
}

// Predict returns the regression estimate <w, x>.
func (m *Model) Predict(x []float64) float64 { return array.Dot(m.Weights, x) }

// IsNovel reports whether x falls outside the learned one-class region.
func (m *Model) IsNovel(x []float64) bool { return m.Score(x) < 0 }
