package logregr

import (
	"errors"
	"math"
	"strings"
	"testing"

	"madlib/internal/datagen"
	"madlib/internal/engine"
)

func TestIRLSRecoversCoefficients(t *testing.T) {
	db := engine.Open(4)
	gen := datagen.NewLogistic(1, 20000, 4)
	tbl, err := gen.Load(db, "d")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(db, tbl, "y", "x", Options{Solver: IRLS})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gen.Coef {
		if math.Abs(res.Coef[i]-gen.Coef[i]) > 0.15 {
			t.Fatalf("coef[%d] = %v, true %v", i, res.Coef[i], gen.Coef[i])
		}
	}
	if res.NumRows != 20000 {
		t.Fatalf("NumRows = %d", res.NumRows)
	}
	if res.Iterations < 2 {
		t.Fatalf("IRLS converged implausibly fast: %d", res.Iterations)
	}
	if res.LogLikelihood >= 0 {
		t.Fatalf("log-likelihood = %v", res.LogLikelihood)
	}
}

func TestSolversAgree(t *testing.T) {
	db := engine.Open(3)
	gen := datagen.NewLogistic(2, 8000, 3)
	tbl, err := gen.Load(db, "d")
	if err != nil {
		t.Fatal(err)
	}
	irls, err := Run(db, tbl, "y", "x", Options{Solver: IRLS})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := Run(db, tbl, "y", "x", Options{Solver: CG, Tolerance: 1e-10, MaxIterations: 500})
	if err != nil {
		t.Fatal(err)
	}
	// IGD is stochastic: tolerance is on log-likelihood stability, which
	// for a √t step schedule settles around 1e-4 relative.
	igd, err := Run(db, tbl, "y", "x", Options{Solver: IGD, Tolerance: 1e-4, MaxIterations: 3000, StepSize: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range irls.Coef {
		if math.Abs(cg.Coef[i]-irls.Coef[i]) > 0.02 {
			t.Fatalf("CG coef[%d] = %v, IRLS %v", i, cg.Coef[i], irls.Coef[i])
		}
		if math.Abs(igd.Coef[i]-irls.Coef[i]) > 0.15 {
			t.Fatalf("IGD coef[%d] = %v, IRLS %v", i, igd.Coef[i], irls.Coef[i])
		}
	}
	// IRLS (Newton) should take far fewer passes than IGD.
	if irls.Iterations >= igd.Iterations {
		t.Fatalf("IRLS %d iterations vs IGD %d", irls.Iterations, igd.Iterations)
	}
}

func TestDriverTraceFigure3(t *testing.T) {
	// The control flow of Figure 3: CREATE TEMP TABLE, then per iteration
	// an INSERT and a convergence probe, then the final SELECT.
	db := engine.Open(2)
	gen := datagen.NewLogistic(3, 500, 2)
	tbl, _ := gen.Load(db, "d")
	res, err := Run(db, tbl, "y", "x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace[0] != "CREATE TEMP TABLE iterative_algorithm" {
		t.Fatalf("trace start = %q", res.Trace[0])
	}
	if res.Trace[len(res.Trace)-1] != "SELECT FINAL RESULT" {
		t.Fatalf("trace end = %q", res.Trace[len(res.Trace)-1])
	}
	inserts, checks := 0, 0
	for _, step := range res.Trace {
		if strings.HasPrefix(step, "INSERT iteration") {
			inserts++
		}
		if strings.HasPrefix(step, "CONVERGENCE CHECK") {
			checks++
		}
	}
	if inserts != res.Iterations || checks != res.Iterations {
		t.Fatalf("trace has %d inserts, %d checks for %d iterations", inserts, checks, res.Iterations)
	}
}

func TestPValuesSeparateSignalFromNoise(t *testing.T) {
	db := engine.Open(2)
	gen := datagen.NewLogistic(4, 20000, 2)
	// Append a pure-noise feature.
	for i := range gen.X {
		gen.X[i] = append(gen.X[i], math.Sin(float64(i*7919)))
	}
	tbl, _ := gen.Load(db, "d")
	res, err := Run(db, tbl, "y", "x", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PValues[1] > 1e-4 {
		t.Fatalf("signal feature p = %v", res.PValues[1])
	}
	if res.PValues[2] < 0.001 {
		t.Fatalf("noise feature p = %v (spurious significance)", res.PValues[2])
	}
	// Odds ratios are exp(coef).
	for i := range res.Coef {
		if math.Abs(res.OddsRatios[i]-math.Exp(res.Coef[i])) > 1e-12 {
			t.Fatal("odds ratios inconsistent")
		}
	}
}

func TestPredict(t *testing.T) {
	coef := []float64{0, 2}
	if p := Predict(coef, []float64{1, 0}); p != 0.5 {
		t.Fatalf("Predict at 0 = %v", p)
	}
	if p := Predict(coef, []float64{1, 10}); p < 0.99 {
		t.Fatalf("Predict strong positive = %v", p)
	}
}

func TestEmptyTable(t *testing.T) {
	db := engine.Open(2)
	tbl, _ := db.CreateTable("d", engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	if _, err := Run(db, tbl, "y", "x", Options{}); !errors.Is(err, ErrNoData) {
		t.Fatalf("want ErrNoData, got %v", err)
	}
}

func TestColumnValidation(t *testing.T) {
	db := engine.Open(1)
	tbl, _ := db.CreateTable("d", engine.Schema{
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	if _, err := Run(db, tbl, "zz", "x", Options{}); err == nil {
		t.Fatal("missing column should fail")
	}
	if _, err := Run(db, tbl, "x", "y", Options{}); err == nil {
		t.Fatal("wrong kinds should fail")
	}
}

func TestSegmentInvarianceIRLS(t *testing.T) {
	gen := datagen.NewLogistic(6, 3000, 3)
	var ref []float64
	for _, segs := range []int{1, 4, 16} {
		db := engine.Open(segs)
		tbl, _ := gen.Load(db, "d")
		res, err := Run(db, tbl, "y", "x", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res.Coef
			continue
		}
		for i := range ref {
			if math.Abs(res.Coef[i]-ref[i]) > 1e-6 {
				t.Fatalf("segments=%d coef %v vs %v", segs, res.Coef, ref)
			}
		}
	}
}

func TestRunPerGroup(t *testing.T) {
	// Two groups with opposite-signed slopes; the join-construct helper
	// must fit each separately.
	db := engine.Open(3)
	tbl, _ := db.CreateTable("d", engine.Schema{
		{Name: "g", Kind: engine.String},
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
	})
	genA := datagen.NewLogistic(31, 3000, 2)
	genB := datagen.NewLogistic(32, 3000, 2)
	for i := range genA.X {
		if err := tbl.Insert("a", genA.Y[i], genA.X[i]); err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert("b", genB.Y[i], genB.X[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := RunPerGroup(db, tbl, "y", "x", func(r engine.Row) string { return r.Str(0) }, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("groups = %d", len(got))
	}
	for gName, gen := range map[string]*datagen.Classification{"a": genA, "b": genB} {
		res := got[gName]
		if res.NumRows != 3000 {
			t.Fatalf("group %q rows = %d", gName, res.NumRows)
		}
		for i := range gen.Coef {
			if math.Abs(res.Coef[i]-gen.Coef[i]) > 0.3 {
				t.Fatalf("group %q coef[%d] = %v, true %v", gName, i, res.Coef[i], gen.Coef[i])
			}
		}
	}
	// No leaked per-group temp tables.
	for _, name := range db.TableNames() {
		if name != "d" {
			t.Fatalf("leaked table %q", name)
		}
	}
}

func BenchmarkIRLS(b *testing.B) {
	db := engine.Open(4)
	gen := datagen.NewLogistic(7, 10000, 5)
	tbl, _ := gen.Load(db, "d")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(db, tbl, "y", "x", Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIGDOnePass(b *testing.B) {
	db := engine.Open(4)
	gen := datagen.NewLogistic(8, 10000, 5)
	tbl, _ := gen.Load(db, "d")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(db, tbl, "y", "x", Options{Solver: IGD, MaxIterations: 2, Tolerance: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
}
