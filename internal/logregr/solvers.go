package logregr

import (
	"errors"
	"math"

	"madlib/internal/array"
	"madlib/internal/core"
	"madlib/internal/engine"
	"madlib/internal/igd"
)

// gradState accumulates the log-likelihood gradient Σ x(y-μ) at fixed
// coefficients — the shared building block of the CG solver.
type gradState struct {
	k       int
	grad    []float64
	loglik  float64
	numRows int64
}

func gradAggregate(bind *core.Binding, coef []float64) engine.Aggregate {
	k := len(coef)
	return engine.FuncAggregate{
		InitFn: func() any { return &gradState{k: k, grad: make([]float64, k)} },
		TransitionFn: func(s any, row engine.Row) any {
			st := s.(*gradState)
			args := bind.Bridge(row)
			y := args.Float(0)
			x := args.Vector(1)
			z := array.Dot(coef, x)
			if y >= 0.5 {
				st.loglik += -math.Log1p(math.Exp(-z))
			} else {
				st.loglik += -z - math.Log1p(math.Exp(-z))
			}
			array.Axpy(y-sigma(z), x, st.grad)
			st.numRows++
			return st
		},
		MergeFn: func(a, b any) any {
			sa, sb := a.(*gradState), b.(*gradState)
			sa.loglik += sb.loglik
			sa.numRows += sb.numRows
			array.AddTo(sa.grad, sb.grad)
			return sa
		},
		FinalFn: func(s any) (any, error) { return s, nil },
	}
}

// cgDriver implements nonlinear conjugate gradient (Polak-Ribière with
// restart) where every gradient and line-search evaluation is an aggregate
// query — the data never leaves the engine.
type cgDriver struct {
	db   *engine.DB
	t    *engine.Table
	bind *core.Binding
	k    int

	prevGrad []float64
	dir      []float64
}

func (c *cgDriver) evalGrad(coef []float64) (*gradState, error) {
	v, err := c.db.Run(c.t, gradAggregate(c.bind, coef))
	if err != nil {
		return nil, err
	}
	st := v.(*gradState)
	if st.numRows == 0 {
		return nil, ErrNoData
	}
	return st, nil
}

func (c *cgDriver) step(prev []float64) ([]float64, error) {
	st, err := c.evalGrad(prev)
	if err != nil {
		return nil, err
	}
	grad := st.grad
	if c.dir == nil {
		c.dir = array.Clone(grad)
	} else {
		// Polak-Ribière: β = gᵀ(g - g_prev) / g_prevᵀg_prev, clamped at 0
		// (automatic restart when search directions degrade).
		num := 0.0
		den := 0.0
		for i := range grad {
			num += grad[i] * (grad[i] - c.prevGrad[i])
			den += c.prevGrad[i] * c.prevGrad[i]
		}
		beta := 0.0
		if den > 0 {
			beta = num / den
		}
		if beta < 0 {
			beta = 0
		}
		for i := range c.dir {
			c.dir[i] = grad[i] + beta*c.dir[i]
		}
	}
	c.prevGrad = array.Clone(grad)

	// Backtracking line search on the log-likelihood (each probe is one
	// aggregate query, as it would be in SQL).
	alpha := 1.0
	base := st.loglik
	gDotD := array.Dot(grad, c.dir)
	if gDotD <= 0 {
		// Direction is not an ascent direction; fall back to the gradient.
		copy(c.dir, grad)
		gDotD = array.Dot(grad, grad)
	}
	for probe := 0; probe < 20; probe++ {
		cand := array.Clone(prev)
		array.Axpy(alpha, c.dir, cand)
		stc, err := c.evalGrad(cand)
		if err != nil {
			return nil, err
		}
		// Armijo condition for maximization.
		if stc.loglik >= base+1e-4*alpha*gDotD {
			return cand, nil
		}
		alpha /= 2
	}
	// Line search failed to improve: report the (tiny) last candidate so
	// the driver's convergence test can fire.
	cand := array.Clone(prev)
	array.Axpy(alpha, c.dir, cand)
	return cand, nil
}

// igdDriver implements incremental gradient descent on the unified igd
// harness: each pass is one morsel-parallel epoch whose replica chains
// update local models row by row and merge by weighted model averaging
// (Zinkevich-style, the paper's reference [47]).
type igdDriver struct {
	db     *engine.DB
	t      *engine.Table
	yi, xi int
	k      int
	step0  float64
	pass   int
}

// negLogLik is the logistic log-likelihood as an igd plug-in: Step
// applies the IGD update α(y−σ(z))x and returns the example's NEGATIVE
// log-likelihood at the pre-update model (the harness minimizes).
type negLogLik struct{ k int }

// Dim implements igd.Loss.
func (l negLogLik) Dim() int { return l.k }

// Step implements igd.Loss.
func (l negLogLik) Step(w, x []float64, y, alpha float64) float64 {
	z := array.Dot(w, x)
	ll := rowLogLik(z, y)
	array.Axpy(alpha*(y-sigma(z)), x, w)
	return -ll
}

// Objective implements igd.Loss.
func (l negLogLik) Objective(w, x []float64, y float64) float64 {
	return -rowLogLik(array.Dot(w, x), y)
}

// rowLogLik is one example's log-likelihood in the overflow-safe branch.
func rowLogLik(z, y float64) float64 {
	if y >= 0.5 {
		return -math.Log1p(math.Exp(-z))
	}
	return -z - math.Log1p(math.Exp(-z))
}

// step runs one IGD pass as a single harness epoch. The returned state is
// the averaged model with the pass log-likelihood appended as a final
// element: SGD parameter vectors jitter around the optimum at the
// step-size scale, so the driver's convergence test watches the
// log-likelihood (which stabilizes quadratically) instead of the
// parameters.
func (g *igdDriver) step(prev []float64) ([]float64, error) {
	g.pass++
	// Decaying step size α/√pass keeps early passes fast and late passes
	// stable. The harness divides by √epoch; with Epochs=1 the step size
	// passes through unchanged.
	res, err := igd.Train(g.db, g.t, igd.VectorFeatures(g.yi, g.xi), negLogLik{k: g.k}, igd.Options{
		StepSize: g.step0 / math.Sqrt(float64(g.pass)),
		Epochs:   1,
		Start:    prev[:g.k], // strip the appended log-likelihood slot
	})
	if err != nil {
		if errors.Is(err, igd.ErrNoData) {
			return nil, ErrNoData
		}
		return nil, err
	}
	loglik := -res.LossHistory[0] * float64(res.NumRows)
	return append(res.Weights, loglik), nil
}
