// Package logregr implements binary logistic regression, the paper's §4.2
// example of a multipass iterative method: each iteration is one
// user-defined aggregate over the data, and a driver function (the
// internal/core controller reproducing Figure 3) loops iterations until the
// coefficients converge, with inter-iteration state staged through a
// temporary table.
//
// Three solvers are provided, matching MADlib v0.3's logregr variants:
//
//   - IRLS — iteratively reweighted least squares (Newton's method), the
//     default: β ← (XᵀDX)⁻¹ XᵀDz per iteration.
//   - CG — nonlinear conjugate gradient on the log-likelihood.
//   - IGD — incremental (stochastic) gradient descent with per-segment
//     chains averaged each pass (the model-averaging scheme the paper cites
//     as fitting the aggregate computational model).
package logregr

import (
	"errors"
	"fmt"
	"math"

	"madlib/internal/array"
	"madlib/internal/core"
	"madlib/internal/engine"
	"madlib/internal/matrix"
	"madlib/internal/stats"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "logregr", Title: "Logistic Regression", Category: core.Supervised})
}

// Solver selects the optimization algorithm.
type Solver int

const (
	// IRLS is Newton's method via iteratively reweighted least squares.
	IRLS Solver = iota
	// CG is nonlinear conjugate gradient.
	CG
	// IGD is incremental gradient descent with segment model averaging.
	IGD
)

// String returns the MADlib optimizer name.
func (s Solver) String() string {
	switch s {
	case IRLS:
		return "irls"
	case CG:
		return "cg"
	case IGD:
		return "igd"
	}
	return fmt.Sprintf("solver(%d)", int(s))
}

// ErrNoData is returned when the table holds no rows.
var ErrNoData = errors.New("logregr: no data rows")

// Result is the logregr output record: coefficients plus Wald inference,
// matching MADlib's logregr output columns.
type Result struct {
	// Coef are the fitted log-odds coefficients.
	Coef []float64
	// LogLikelihood is the final log-likelihood.
	LogLikelihood float64
	// StdErr are Wald standard errors from the inverse Fisher information.
	StdErr []float64
	// ZStats are the Wald z statistics.
	ZStats []float64
	// PValues are two-sided normal p-values.
	PValues []float64
	// OddsRatios are exp(Coef).
	OddsRatios []float64
	// NumRows is the number of rows used.
	NumRows int64
	// Iterations is how many passes over the data the solver took.
	Iterations int
	// Trace is the driver's Figure-3 control-flow trace.
	Trace []string
}

// Options configure Run.
type Options struct {
	// Solver picks the optimizer (default IRLS).
	Solver Solver
	// Tolerance is the relative-change convergence threshold
	// (default 1e-8).
	Tolerance float64
	// MaxIterations bounds the driver loop (default 100).
	MaxIterations int
	// StepSize is the initial IGD learning rate (default 0.1).
	StepSize float64
}

func (o *Options) defaults() {
	if o.Tolerance == 0 {
		o.Tolerance = 1e-8
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 100
	}
	if o.StepSize == 0 {
		o.StepSize = 0.1
	}
}

func sigma(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// irlsState is the per-iteration aggregate state: XᵀDX, XᵀDz-style sums
// evaluated at the current coefficients.
type irlsState struct {
	k       int
	numRows int64
	grad    []float64 // Σ x (y - μ)
	hess    []float64 // Σ w x xᵀ (lower triangle), w = μ(1-μ)
	loglik  float64
	err     error
}

// irlsAggregate computes gradient, Hessian, and log-likelihood at coef in
// one pass — the logregr_irls_step UDA from Figure 3.
func irlsAggregate(bind *core.Binding, coef []float64) engine.Aggregate {
	k := len(coef)
	return engine.FuncAggregate{
		InitFn: func() any {
			return &irlsState{k: k, grad: make([]float64, k), hess: make([]float64, k*k)}
		},
		TransitionFn: func(s any, row engine.Row) any {
			st := s.(*irlsState)
			if st.err != nil {
				return st
			}
			args := bind.Bridge(row)
			y := args.Float(0)
			x := args.Vector(1)
			if len(x) != k {
				st.err = fmt.Errorf("logregr: row width %d != %d", len(x), k)
				return st
			}
			z := array.Dot(coef, x)
			mu := sigma(z)
			st.numRows++
			// Log-likelihood: y log μ + (1-y) log(1-μ), computed stably.
			if y >= 0.5 {
				st.loglik += -math.Log1p(math.Exp(-z))
			} else {
				st.loglik += -z - math.Log1p(math.Exp(-z))
			}
			array.Axpy(y-mu, x, st.grad)
			w := mu * (1 - mu)
			for i := 0; i < k; i++ {
				wxi := w * x[i]
				row := st.hess[i*k : i*k+i+1]
				for j := 0; j <= i; j++ {
					row[j] += wxi * x[j]
				}
			}
			return st
		},
		MergeFn: func(a, b any) any {
			sa, sb := a.(*irlsState), b.(*irlsState)
			if sa.err != nil {
				return sa
			}
			if sb.err != nil {
				return sb
			}
			sa.numRows += sb.numRows
			sa.loglik += sb.loglik
			array.AddTo(sa.grad, sb.grad)
			array.AddTo(sa.hess, sb.hess)
			return sa
		},
		FinalFn: func(s any) (any, error) {
			st := s.(*irlsState)
			if st.err != nil {
				return nil, st.err
			}
			return st, nil
		},
	}
}

// runIRLSStep evaluates one Newton step: β' = β + (XᵀDX)⁺ g.
func runIRLSStep(db *engine.DB, t *engine.Table, bind *core.Binding, coef []float64) ([]float64, *irlsState, error) {
	v, err := db.Run(t, irlsAggregate(bind, coef))
	if err != nil {
		return nil, nil, err
	}
	st := v.(*irlsState)
	if st.numRows == 0 {
		return nil, nil, ErrNoData
	}
	k := st.k
	array.SymmetrizeLower(st.hess, k)
	h := matrix.FromFlat(k, k, st.hess)
	pinv, _, err := matrix.PseudoInverse(h)
	if err != nil {
		return nil, nil, fmt.Errorf("logregr: %w", err)
	}
	step, err := pinv.MulVec(st.grad)
	if err != nil {
		return nil, nil, err
	}
	next := array.Clone(coef)
	array.AddTo(next, step)
	return next, st, nil
}

// Run fits the model: SELECT * FROM logregr('y', 'x', table). The label
// column must hold 0/1 values; x is the feature vector (include a constant
// 1 component for an intercept).
func Run(db *engine.DB, table *engine.Table, yCol, xCol string, opts Options) (*Result, error) {
	opts.defaults()
	schema := table.Schema()
	bind, err := core.BindColumns(schema, yCol, xCol)
	if err != nil {
		return nil, err
	}
	if schema[schema.Index(yCol)].Kind != engine.Float {
		return nil, fmt.Errorf("logregr: column %q must be %s", yCol, engine.Float)
	}
	if schema[schema.Index(xCol)].Kind != engine.Vector {
		return nil, fmt.Errorf("logregr: column %q must be %s", xCol, engine.Vector)
	}
	k, err := vectorWidth(db, table, bind)
	if err != nil {
		return nil, err
	}

	var stepFn func(prev []float64) ([]float64, error)
	stateLen := k
	converged := func(prev, cur []float64, _ int) (bool, error) {
		return core.RelativeChange(prev, cur) < opts.Tolerance, nil
	}
	switch opts.Solver {
	case IRLS:
		stepFn = func(prev []float64) ([]float64, error) {
			next, _, err := runIRLSStep(db, table, bind, prev)
			return next, err
		}
	case CG:
		cg := &cgDriver{db: db, t: table, bind: bind, k: k}
		stepFn = cg.step
	case IGD:
		drv := &igdDriver{
			db: db, t: table,
			yi: schema.Index(yCol), xi: schema.Index(xCol),
			k: k, step0: opts.StepSize,
		}
		stepFn = drv.step
		// The IGD state carries the pass log-likelihood as an extra slot;
		// convergence watches its relative change (see igdDriver.step).
		stateLen = k + 1
		converged = func(prev, cur []float64, iter int) (bool, error) {
			if iter < 2 {
				return false, nil // slot 0 of the initial state is not a loglik
			}
			llPrev, llCur := prev[k], cur[k]
			return math.Abs(llCur-llPrev) < opts.Tolerance*(math.Abs(llPrev)+1), nil
		}
	default:
		return nil, fmt.Errorf("logregr: unknown solver %v", opts.Solver)
	}

	spec := core.IterativeSpec{
		Name:          "logregr_" + opts.Solver.String(),
		InitialState:  make([]float64, stateLen),
		Step:          stepFn,
		MaxIterations: opts.MaxIterations,
		Converged:     converged,
	}
	iter, err := core.RunIterative(db, spec)
	if err != nil {
		return nil, err
	}
	iter.State = iter.State[:k] // strip any solver-private state slots
	return finalize(db, table, bind, iter)
}

// vectorWidth probes the width of the feature vector (first row wins),
// erroring on an empty table.
func vectorWidth(db *engine.DB, t *engine.Table, bind *core.Binding) (int, error) {
	v, err := db.Run(t, engine.FuncAggregate{
		InitFn: func() any { return -1 },
		TransitionFn: func(s any, row engine.Row) any {
			if s.(int) >= 0 {
				return s
			}
			return len(bind.Bridge(row).Vector(1))
		},
		MergeFn: func(a, b any) any {
			if a.(int) >= 0 {
				return a
			}
			return b
		},
		FinalFn: func(s any) (any, error) { return s, nil },
	})
	if err != nil {
		return 0, err
	}
	k := v.(int)
	if k < 0 {
		return 0, ErrNoData
	}
	if k == 0 {
		return 0, errors.New("logregr: zero-width feature vector")
	}
	return k, nil
}

// finalize computes the inference statistics at the converged coefficients.
func finalize(db *engine.DB, t *engine.Table, bind *core.Binding, iter *core.IterativeResult) (*Result, error) {
	coef := iter.State
	_, st, err := runIRLSStep(db, t, bind, coef)
	if err != nil {
		return nil, err
	}
	k := st.k
	// st.hess was symmetrized inside runIRLSStep.
	fisher := matrix.FromFlat(k, k, st.hess)
	cov, _, err := matrix.PseudoInverse(fisher)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Coef:          coef,
		LogLikelihood: st.loglik,
		NumRows:       st.numRows,
		Iterations:    iter.Iterations,
		Trace:         iter.Trace,
		StdErr:        make([]float64, k),
		ZStats:        make([]float64, k),
		PValues:       make([]float64, k),
		OddsRatios:    make([]float64, k),
	}
	for i := 0; i < k; i++ {
		v := cov.At(i, i)
		if v < 0 {
			v = 0
		}
		res.StdErr[i] = math.Sqrt(v)
		if res.StdErr[i] > 0 {
			res.ZStats[i] = coef[i] / res.StdErr[i]
		} else {
			res.ZStats[i] = math.NaN()
		}
		res.PValues[i] = 2 * (1 - stats.NormalCDF(math.Abs(res.ZStats[i])))
		res.OddsRatios[i] = math.Exp(coef[i])
	}
	return res, nil
}

// Predict returns σ(<coef, x>), the modelled Pr[y=1|x].
func Predict(coef, x []float64) float64 { return sigma(array.Dot(coef, x)) }

// RunPerGroup fits one logistic regression per group key. As §4.2.1 notes,
// logregr is a driver function rather than a true aggregate, so unlike
// linregr it cannot compose with GROUP BY; "to perform multiple logistic
// regressions at once, one needs to use a join construct instead". This
// helper emulates that construct: it enumerates the distinct keys, carves
// each group's rows into a temporary table (the join of the source with
// one key), and runs the full driver loop per group.
func RunPerGroup(db *engine.DB, table *engine.Table, yCol, xCol string, key func(engine.Row) string, opts Options) (map[string]*Result, error) {
	// Distinct keys via one aggregate pass.
	v, err := db.Run(table, engine.FuncAggregate{
		InitFn: func() any { return map[string]bool{} },
		TransitionFn: func(s any, row engine.Row) any {
			m := s.(map[string]bool)
			m[key(row)] = true
			return m
		},
		MergeFn: func(a, b any) any {
			ma := a.(map[string]bool)
			for k := range b.(map[string]bool) {
				ma[k] = true
			}
			return ma
		},
		FinalFn: func(s any) (any, error) { return s, nil },
	})
	if err != nil {
		return nil, err
	}
	keys := v.(map[string]bool)
	out := make(map[string]*Result, len(keys))
	seq := 0
	for k := range keys {
		seq++
		part, err := db.SelectInto(fmt.Sprintf("%s_logregr_group_%d", table.Name(), seq), table,
			func(row engine.Row) bool { return key(row) == k }, nil)
		if err != nil {
			return nil, err
		}
		res, err := Run(db, part, yCol, xCol, opts)
		dropErr := db.DropTable(part.Name())
		if err != nil {
			return nil, fmt.Errorf("group %q: %w", k, err)
		}
		if dropErr != nil {
			return nil, dropErr
		}
		out[k] = res
	}
	return out, nil
}
