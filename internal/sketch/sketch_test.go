package sketch

import (
	"errors"
	"testing"
	"testing/quick"

	"madlib/internal/datagen"
	"madlib/internal/engine"
)

func TestCountMinNeverUndercounts(t *testing.T) {
	cm, err := NewCountMin(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[int64]uint64{}
	for _, v := range datagen.StreamValues(1, 50000, 1000) {
		cm.Add(v, 1)
		truth[v]++
	}
	for v, want := range truth {
		got := cm.Count(v)
		if got < want {
			t.Fatalf("undercount for %d: %d < %d", v, got, want)
		}
	}
	if cm.Total() != 50000 {
		t.Fatalf("total = %d", cm.Total())
	}
}

func TestCountMinErrorBound(t *testing.T) {
	eps := 0.005
	cm, err := NewCountMin(eps, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[int64]uint64{}
	n := 100000
	for _, v := range datagen.StreamValues(2, n, 2000) {
		cm.Add(v, 1)
		truth[v]++
	}
	// Allow a small number of items to exceed the bound (probability δ
	// each); with δ=0.01 and ~2000 items, a handful may fail.
	over := 0
	for v, want := range truth {
		if float64(cm.Count(v)-want) > eps*float64(n) {
			over++
		}
	}
	if over > len(truth)/20 {
		t.Fatalf("%d of %d items exceed the εN bound", over, len(truth))
	}
}

func TestCountMinMergeEqualsSingle(t *testing.T) {
	a, _ := NewCountMin(0.01, 0.01)
	b, _ := NewCountMin(0.01, 0.01)
	whole, _ := NewCountMin(0.01, 0.01)
	vals := datagen.StreamValues(3, 10000, 500)
	for i, v := range vals {
		whole.Add(v, 1)
		if i%2 == 0 {
			a.Add(v, 1)
		} else {
			b.Add(v, 1)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []int64{1, 2, 5, 100, 499} {
		if a.Count(probe) != whole.Count(probe) {
			t.Fatalf("merged count %d != whole %d for %d", a.Count(probe), whole.Count(probe), probe)
		}
	}
}

func TestCountMinIncompatibleMerge(t *testing.T) {
	a, _ := NewCountMin(0.01, 0.01)
	b, _ := NewCountMin(0.1, 0.01)
	if err := a.Merge(b); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("want ErrIncompatible, got %v", err)
	}
}

func TestCountMinParamValidation(t *testing.T) {
	for _, bad := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}, {-1, 0.5}} {
		if _, err := NewCountMin(bad[0], bad[1]); err == nil {
			t.Fatalf("params %v should fail", bad)
		}
	}
}

func TestRangeCountMin(t *testing.T) {
	rc, err := NewRangeCountMin(0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Insert 0..999 once each.
	for v := int64(0); v < 1000; v++ {
		if err := rc.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	tests := []struct {
		lo, hi int64
		want   uint64
	}{
		{0, 999, 1000},
		{0, 0, 1},
		{100, 199, 100},
		{500, 999, 500},
		{1000, 2000, 0},
		{5, 4, 0},
	}
	for _, tc := range tests {
		got := rc.CountRange(tc.lo, tc.hi)
		// CM overestimates only; allow a 5% cushion.
		if got < tc.want || float64(got) > float64(tc.want)*1.05+5 {
			t.Fatalf("CountRange(%d,%d) = %d, want ≈%d", tc.lo, tc.hi, got, tc.want)
		}
	}
	if err := rc.Add(-1); err == nil {
		t.Fatal("negative value should fail")
	}
}

func TestMFVFindsHeavyHitters(t *testing.T) {
	m, err := NewMFV(3, 0.001, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy: 0 (5000), 1 (3000), 2 (1000); tail: 3..1002 once each.
	for i := 0; i < 5000; i++ {
		m.Add(0)
	}
	for i := 0; i < 3000; i++ {
		m.Add(1)
	}
	for i := 0; i < 1000; i++ {
		m.Add(2)
	}
	for v := int64(3); v < 1003; v++ {
		m.Add(v)
	}
	top := m.Top()
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	if top[0].Value != 0 || top[1].Value != 1 || top[2].Value != 2 {
		t.Fatalf("top order = %v", top)
	}
	if top[0].Count < 5000 || top[0].Count > 5200 {
		t.Fatalf("top count = %d", top[0].Count)
	}
}

func TestMFVMerge(t *testing.T) {
	a, _ := NewMFV(2, 0.001, 0.01)
	b, _ := NewMFV(2, 0.001, 0.01)
	for i := 0; i < 100; i++ {
		a.Add(7)
		b.Add(9)
	}
	for i := 0; i < 60; i++ {
		b.Add(7)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	top := a.Top()
	if top[0].Value != 7 || top[0].Count != 160 {
		t.Fatalf("merged top = %v", top)
	}
}

func TestFMAccuracy(t *testing.T) {
	for _, distinct := range []int{100, 1000, 10000} {
		f := NewFM()
		for v := 0; v < distinct; v++ {
			// Add duplicates; they must not change the estimate.
			f.AddInt(int64(v))
			f.AddInt(int64(v))
		}
		est := float64(f.Estimate())
		ratio := est / float64(distinct)
		if ratio < 0.7 || ratio > 1.4 {
			t.Fatalf("FM estimate %v for %d distinct (ratio %v)", est, distinct, ratio)
		}
	}
}

func TestFMDuplicateInsensitiveProperty(t *testing.T) {
	f := func(vals []int64) bool {
		a, b := NewFM(), NewFM()
		for _, v := range vals {
			a.AddInt(v)
		}
		for i := 0; i < 3; i++ { // b sees everything three times
			for _, v := range vals {
				b.AddInt(v)
			}
		}
		return a.Estimate() == b.Estimate()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFMMergeEqualsUnion(t *testing.T) {
	a, b, u := NewFM(), NewFM(), NewFM()
	for v := int64(0); v < 500; v++ {
		a.AddInt(v)
		u.AddInt(v)
	}
	for v := int64(300); v < 900; v++ {
		b.AddInt(v)
		u.AddInt(v)
	}
	a.Merge(b)
	if a.Estimate() != u.Estimate() {
		t.Fatalf("merged %d != union %d", a.Estimate(), u.Estimate())
	}
}

func TestFMStringAndFloat(t *testing.T) {
	f := NewFM()
	f.AddString("alpha")
	f.AddString("alpha")
	f.AddString("beta")
	f.AddFloat(3.25)
	if est := f.Estimate(); est < 1 || est > 12 {
		t.Fatalf("small-cardinality estimate = %d", est)
	}
}

func TestAggregatesOverEngine(t *testing.T) {
	db := engine.Open(4)
	tbl, _ := db.CreateTable("s", engine.Schema{{Name: "v", Kind: engine.Int}})
	truth := map[int64]uint64{}
	for _, v := range datagen.StreamValues(4, 20000, 300) {
		if err := tbl.Insert(v); err != nil {
			t.Fatal(err)
		}
		truth[v]++
	}
	// Count-Min as a UDA.
	v, err := db.Run(tbl, CountMinAggregate(0, 0.001, 0.01))
	if err != nil {
		t.Fatal(err)
	}
	cm := v.(*CountMin)
	for _, probe := range []int64{0, 1, 2, 10} {
		if cm.Count(probe) < truth[probe] {
			t.Fatalf("UDA sketch undercounts %d", probe)
		}
	}
	// FM as a UDA.
	fv, err := db.Run(tbl, FMAggregate(0, engine.Int))
	if err != nil {
		t.Fatal(err)
	}
	est := fv.(int64)
	if ratio := float64(est) / float64(len(truth)); ratio < 0.6 || ratio > 1.5 {
		t.Fatalf("FM UDA estimate %d for %d distinct", est, len(truth))
	}
}

func BenchmarkCountMinAdd(b *testing.B) {
	cm, _ := NewCountMin(0.001, 0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cm.Add(int64(i%1000), 1)
	}
}

func BenchmarkFMAdd(b *testing.B) {
	f := NewFM()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.AddInt(int64(i))
	}
}
