package sketch

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/bits"

	"madlib/internal/engine"
)

// fmNumMaps is the number of PCSA bitmaps (stochastic averaging).
const fmNumMaps = 64

// fmPhi is the Flajolet-Martin magic constant.
const fmPhi = 0.77351

// fmExactThreshold is the cardinality up to which the sketch stays exact.
// MADlib's fmsketch does the same: small cardinalities are tracked exactly
// in a compact "sortasort" structure and the sketch switches to FM bitmaps
// only once that overflows, because the PCSA estimator is biased when the
// distinct count is comparable to the number of bitmaps.
const fmExactThreshold = 4096

// FM is a Flajolet-Martin distinct-count sketch (PCSA variant): each item
// hashes to one of 64 bitmaps and sets the bit at the position of the
// number of trailing zeros of its hash remainder; the estimate averages
// the lowest unset-bit positions. Below fmExactThreshold distinct items
// the sketch answers exactly from a hash set maintained alongside the
// bitmaps. Bitmaps OR together and exact sets union, so FM merges across
// segments like any other transition state.
type FM struct {
	maps  [fmNumMaps]uint64
	exact map[uint64]struct{} // nil once overflowed
}

// NewFM returns an empty sketch.
func NewFM() *FM { return &FM{exact: map[uint64]struct{}{}} }

func fmHash(item int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(item))
	_, _ = h.Write(buf[:])
	return h.Sum64()
}

// AddInt registers an int64 item.
func (f *FM) AddInt(item int64) { f.addHash(fmHash(item)) }

// AddString registers a string item.
func (f *FM) AddString(item string) {
	h := fnv.New64a()
	_, _ = h.Write([]byte(item))
	f.addHash(h.Sum64())
}

// AddFloat registers a float64 item (by bit pattern).
func (f *FM) AddFloat(item float64) { f.addHash(fmHash(int64(math.Float64bits(item)))) }

func (f *FM) addHash(h uint64) {
	bucket := h % fmNumMaps
	rest := h / fmNumMaps
	pos := bits.TrailingZeros64(rest | (1 << 63)) // cap at 63
	f.maps[bucket] |= 1 << pos
	if f.exact != nil {
		f.exact[h] = struct{}{}
		if len(f.exact) > fmExactThreshold {
			f.exact = nil // overflow: bitmaps take over
		}
	}
}

// Estimate returns the number of distinct items seen: exact below the
// overflow threshold, PCSA-estimated above.
func (f *FM) Estimate() int64 {
	if f.exact != nil {
		return int64(len(f.exact))
	}
	var sum float64
	for _, m := range f.maps {
		// Position of the lowest zero bit.
		r := bits.TrailingZeros64(^m)
		sum += float64(r)
	}
	mean := sum / fmNumMaps
	return int64(math.Round(fmNumMaps / fmPhi * math.Pow(2, mean)))
}

// Merge folds the other sketch into f: bitmaps OR, exact sets union (and
// overflow to bitmaps when the union grows past the threshold).
func (f *FM) Merge(other *FM) {
	for i := range f.maps {
		f.maps[i] |= other.maps[i]
	}
	if f.exact == nil || other.exact == nil {
		f.exact = nil
		return
	}
	for h := range other.exact {
		f.exact[h] = struct{}{}
	}
	if len(f.exact) > fmExactThreshold {
		f.exact = nil
	}
}

// FMAggregate wraps an FM sketch as an engine aggregate counting distinct
// values of a column of any kind.
func FMAggregate(col int, kind engine.Kind) engine.Aggregate {
	return engine.FuncAggregate{
		InitFn: func() any { return NewFM() },
		TransitionFn: func(s any, row engine.Row) any {
			f := s.(*FM)
			switch kind {
			case engine.Int:
				f.AddInt(row.Int(col))
			case engine.String:
				f.AddString(row.Str(col))
			case engine.Float:
				f.AddFloat(row.Float(col))
			case engine.Bool:
				if row.Bool(col) {
					f.AddInt(1)
				} else {
					f.AddInt(0)
				}
			}
			return f
		},
		MergeFn: func(a, b any) any {
			fa := a.(*FM)
			fa.Merge(b.(*FM))
			return fa
		},
		FinalFn: func(s any) (any, error) { return s.(*FM).Estimate(), nil },
	}
}
