// Package sketch implements the two streaming synopses of Table 1 — the
// Count-Min sketch (point counts, dyadic range counts, most-frequent
// values) and the Flajolet-Martin distinct-count sketch — both as
// mergeable structures so they run as parallel user-defined aggregates.
package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"madlib/internal/core"
	"madlib/internal/engine"
)

func init() {
	core.RegisterMethod(core.MethodInfo{Name: "cmsketch", Title: "Count-Min Sketch", Category: core.Descriptive})
	core.RegisterMethod(core.MethodInfo{Name: "fmsketch", Title: "Flajolet-Martin Sketch", Category: core.Descriptive})
}

// ErrIncompatible is returned when merging sketches of different shapes.
var ErrIncompatible = errors.New("sketch: incompatible sketch parameters")

// CountMin is a Count-Min sketch over int64 items: Count(x) overestimates
// the true frequency by at most ε·N with probability 1-δ.
type CountMin struct {
	width int
	depth int
	cells [][]uint64
	total uint64
}

// NewCountMin builds a sketch with error ε (fraction of the stream) and
// failure probability δ.
func NewCountMin(epsilon, delta float64) (*CountMin, error) {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("sketch: need 0<ε<1 and 0<δ<1, got %v, %v", epsilon, delta)
	}
	width := int(math.Ceil(math.E / epsilon))
	depth := int(math.Ceil(math.Log(1 / delta)))
	if depth < 1 {
		depth = 1
	}
	cm := &CountMin{width: width, depth: depth}
	cm.cells = make([][]uint64, depth)
	for i := range cm.cells {
		cm.cells[i] = make([]uint64, width)
	}
	return cm, nil
}

func (cm *CountMin) hash(item int64, row int) int {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(item))
	_, _ = h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(row)*0x9e3779b97f4a7c15)
	_, _ = h.Write(buf[:])
	return int(h.Sum64() % uint64(cm.width))
}

// Add registers count occurrences of item.
func (cm *CountMin) Add(item int64, count uint64) {
	for r := 0; r < cm.depth; r++ {
		cm.cells[r][cm.hash(item, r)] += count
	}
	cm.total += count
}

// Count returns the (over-)estimate of item's frequency.
func (cm *CountMin) Count(item int64) uint64 {
	min := uint64(math.MaxUint64)
	for r := 0; r < cm.depth; r++ {
		if c := cm.cells[r][cm.hash(item, r)]; c < min {
			min = c
		}
	}
	return min
}

// Total returns the stream length seen so far.
func (cm *CountMin) Total() uint64 { return cm.total }

// Merge adds other's cells into cm; the sketches must share parameters.
func (cm *CountMin) Merge(other *CountMin) error {
	if cm.width != other.width || cm.depth != other.depth {
		return ErrIncompatible
	}
	for r := range cm.cells {
		for c := range cm.cells[r] {
			cm.cells[r][c] += other.cells[r][c]
		}
	}
	cm.total += other.total
	return nil
}

// Clone returns a deep copy.
func (cm *CountMin) Clone() *CountMin {
	out := &CountMin{width: cm.width, depth: cm.depth, total: cm.total}
	out.cells = make([][]uint64, cm.depth)
	for i := range cm.cells {
		out.cells[i] = append([]uint64(nil), cm.cells[i]...)
	}
	return out
}

// dyadicLevels covers non-negative int64 values.
const dyadicLevels = 63

// RangeCountMin augments Count-Min with one sketch per dyadic level so
// range counts decompose into at most 2·levels point queries — the
// classical CM range-query construction MADlib's cmsketch module uses.
type RangeCountMin struct {
	levels []*CountMin
}

// NewRangeCountMin builds the dyadic stack with per-level parameters ε, δ.
func NewRangeCountMin(epsilon, delta float64) (*RangeCountMin, error) {
	rc := &RangeCountMin{}
	for l := 0; l < dyadicLevels; l++ {
		cm, err := NewCountMin(epsilon, delta)
		if err != nil {
			return nil, err
		}
		rc.levels = append(rc.levels, cm)
	}
	return rc, nil
}

// Add registers a non-negative value.
func (rc *RangeCountMin) Add(value int64) error {
	if value < 0 {
		return fmt.Errorf("sketch: range sketch requires non-negative values, got %d", value)
	}
	v := value
	for l := 0; l < dyadicLevels; l++ {
		rc.levels[l].Add(v, 1)
		v >>= 1
	}
	return nil
}

// CountRange estimates how many values fall in [lo, hi], inclusive.
func (rc *RangeCountMin) CountRange(lo, hi int64) uint64 {
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		return 0
	}
	var total uint64
	// Greedy dyadic decomposition of [lo, hi].
	for lo <= hi {
		// Find the largest level whose block starting at lo fits in [lo,hi].
		level := 0
		for level+1 < dyadicLevels {
			size := int64(1) << (level + 1)
			if lo%size != 0 || lo+size-1 > hi {
				break
			}
			level++
		}
		total += rc.levels[level].Count(lo >> level)
		lo += int64(1) << level
	}
	return total
}

// Merge combines the per-level sketches.
func (rc *RangeCountMin) Merge(other *RangeCountMin) error {
	if len(rc.levels) != len(other.levels) {
		return ErrIncompatible
	}
	for l := range rc.levels {
		if err := rc.levels[l].Merge(other.levels[l]); err != nil {
			return err
		}
	}
	return nil
}

// FrequentValue is one most-frequent-value candidate.
type FrequentValue struct {
	Value int64
	Count uint64
}

// MFV tracks the most frequent values of a stream using a Count-Min sketch
// for counting plus a bounded candidate set — MADlib's mfvsketch.
type MFV struct {
	cm   *CountMin
	k    int
	cand map[int64]struct{}
}

// NewMFV tracks up to k candidates with the given CM parameters.
func NewMFV(k int, epsilon, delta float64) (*MFV, error) {
	if k < 1 {
		return nil, errors.New("sketch: MFV needs k >= 1")
	}
	cm, err := NewCountMin(epsilon, delta)
	if err != nil {
		return nil, err
	}
	return &MFV{cm: cm, k: k, cand: map[int64]struct{}{}}, nil
}

// Add registers one occurrence of item.
func (m *MFV) Add(item int64) {
	m.cm.Add(item, 1)
	if _, ok := m.cand[item]; ok {
		return
	}
	if len(m.cand) < m.k*4 {
		m.cand[item] = struct{}{}
		return
	}
	// Evict the weakest candidate if the newcomer beats it.
	weakest, weakestCount := int64(0), uint64(math.MaxUint64)
	for c := range m.cand {
		if n := m.cm.Count(c); n < weakestCount {
			weakest, weakestCount = c, n
		}
	}
	if m.cm.Count(item) > weakestCount {
		delete(m.cand, weakest)
		m.cand[item] = struct{}{}
	}
}

// Top returns the k highest-count candidates in descending count order.
func (m *MFV) Top() []FrequentValue {
	out := make([]FrequentValue, 0, len(m.cand))
	for c := range m.cand {
		out = append(out, FrequentValue{Value: c, Count: m.cm.Count(c)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Value < out[j].Value
	})
	if len(out) > m.k {
		out = out[:m.k]
	}
	return out
}

// Merge folds other into m.
func (m *MFV) Merge(other *MFV) error {
	if err := m.cm.Merge(other.cm); err != nil {
		return err
	}
	for c := range other.cand {
		m.cand[c] = struct{}{}
	}
	// Re-trim the candidate set.
	if len(m.cand) > m.k*4 {
		all := m.topAll()
		m.cand = map[int64]struct{}{}
		for i := 0; i < m.k*4 && i < len(all); i++ {
			m.cand[all[i].Value] = struct{}{}
		}
	}
	return nil
}

func (m *MFV) topAll() []FrequentValue {
	out := make([]FrequentValue, 0, len(m.cand))
	for c := range m.cand {
		out = append(out, FrequentValue{Value: c, Count: m.cm.Count(c)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// CountMinAggregate wraps a CM sketch as an engine aggregate over an Int
// column, demonstrating the standard mergeable-synopsis UDA pattern.
func CountMinAggregate(col int, epsilon, delta float64) engine.Aggregate {
	return engine.FuncAggregate{
		InitFn: func() any {
			cm, err := NewCountMin(epsilon, delta)
			if err != nil {
				panic(err) // parameters are validated by callers
			}
			return cm
		},
		TransitionFn: func(s any, row engine.Row) any {
			cm := s.(*CountMin)
			cm.Add(row.Int(col), 1)
			return cm
		},
		MergeFn: func(a, b any) any {
			ca := a.(*CountMin)
			if err := ca.Merge(b.(*CountMin)); err != nil {
				panic(err) // same parameters by construction
			}
			return ca
		},
		FinalFn: func(s any) (any, error) { return s, nil },
	}
}
