package sql

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"madlib/internal/core"
	"madlib/internal/engine"
)

// Result is the outcome of one statement: a rowset (possibly empty) plus
// a psql-style command tag.
type Result struct {
	// Cols are the output column names (nil for DDL/DML).
	Cols []string
	// Rows are the output rows in final order.
	Rows [][]any
	// Tag is the command tag, e.g. "CREATE TABLE", "INSERT 0 3",
	// "SELECT 2".
	Tag string
}

// Format renders the rowset as an aligned psql-style table ending with a
// row-count footer. DDL/DML results render as just their tag.
func (r *Result) Format() string {
	if len(r.Cols) == 0 {
		return r.Tag + "\n"
	}
	widths := make([]int, len(r.Cols))
	numeric := make([]bool, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
		numeric[i] = true
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(r.Cols))
		for ci := range r.Cols {
			var v any
			if ci < len(row) {
				v = row[ci]
			}
			s := FormatValue(v)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
			switch v.(type) {
			case int64, float64:
			default:
				numeric[ci] = false
			}
		}
	}
	var b strings.Builder
	line := func(parts []string, rightAlign func(int) bool) {
		var l strings.Builder
		for i, s := range parts {
			if i > 0 {
				l.WriteString("|")
			}
			l.WriteString(" " + pad(s, widths[i], rightAlign(i)) + " ")
		}
		b.WriteString(strings.TrimRight(l.String(), " "))
		b.WriteString("\n")
	}
	line(r.Cols, func(int) bool { return false })
	for i := range r.Cols {
		if i > 0 {
			b.WriteString("+")
		}
		b.WriteString(strings.Repeat("-", widths[i]+2))
	}
	b.WriteString("\n")
	for _, row := range cells {
		line(row, func(i int) bool { return numeric[i] })
	}
	if len(r.Rows) == 1 {
		b.WriteString("(1 row)\n")
	} else {
		fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	}
	return b.String()
}

func pad(s string, width int, right bool) string {
	if len(s) >= width {
		return s
	}
	fill := strings.Repeat(" ", width-len(s))
	if right {
		return fill + s
	}
	return s + fill
}

// FormatValue renders one SQL value the way the REPL prints it: floats in
// shortest-exact form, vectors in brace notation, booleans as t/f, NULL
// as empty.
func FormatValue(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case bool:
		if x {
			return "t"
		}
		return "f"
	case []float64:
		parts := make([]string, len(x))
		for i, f := range x {
			parts[i] = strconv.FormatFloat(f, 'g', -1, 64)
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	return fmt.Sprintf("%v", v)
}

// stmtPlan is a statement lowered against a catalog snapshot: compiled
// closures plus resolved table bindings, executable many times with
// different parameter environments. Plans live in the session plan cache
// and inside prepared statements.
type stmtPlan interface {
	// exec runs the plan under the given parameter environment.
	exec(s *Session, env *execEnv) (*Result, error)
	// valid reports whether the plan's table bindings are still current
	// (the catalog maps each name to the same *engine.Table), so a
	// cached or prepared plan never executes against a stale schema.
	valid(db *engine.DB) bool
	// release frees plan-owned catalog resources — today the cached join
	// materialization — when the plan leaves the session's plan cache or
	// prepared-statement store, or when a one-shot plan finishes.
	release(db *engine.DB)
	// columns returns the plan's output column names, nil when the
	// statement produces no row set (INSERT) or when the shape is only
	// known at execution time (table-valued madlib.* calls). The wire
	// server's Describe path renders RowDescription from this.
	columns() []string
}

// planStmt lowers a SELECT or INSERT into an executable plan.
func (s *Session) planStmt(st Statement) (stmtPlan, error) {
	switch x := st.(type) {
	case *Select:
		return s.planSelect(x)
	case *Insert:
		return s.planInsert(x)
	}
	return nil, execErrf("statement %T cannot be planned", st)
}

func (s *Session) execCreate(st *CreateTable) (*Result, error) {
	schema := make(engine.Schema, len(st.Cols))
	for i, c := range st.Cols {
		schema[i] = engine.Column{Name: c.Name, Kind: c.Kind}
	}
	_, err := s.db.CreateTable(st.Name, schema)
	if err != nil {
		if st.IfNotExists && errors.Is(err, engine.ErrTableExists) {
			return &Result{Tag: "CREATE TABLE"}, nil
		}
		return nil, err
	}
	return &Result{Tag: "CREATE TABLE"}, nil
}

// execCreateTableAs runs CREATE TABLE name AS SELECT ...: the query
// executes like any SELECT, the output column kinds are inferred from
// the result values, and the rows land in a fresh permanent table — the
// paper's staging pipeline (§4.1) in one statement.
func (s *Session) execCreateTableAs(st *CreateTableAs) (*Result, error) {
	if _, err := s.db.Table(st.Name); err == nil {
		if st.IfNotExists {
			return &Result{Tag: "CREATE TABLE"}, nil
		}
		return nil, fmt.Errorf("%w: %q", engine.ErrTableExists, st.Name)
	}
	if n := stmtMaxParam(st.Query); n > 0 {
		return nil, execErrf("query uses parameter $%d; CREATE TABLE AS cannot be parameterized", n)
	}
	pl, err := s.planSelect(st.Query)
	if err != nil {
		return nil, err
	}
	r, err := pl.exec(s, nil)
	pl.release(s.db) // one-shot plan: free any cached materialization
	if err != nil {
		return nil, err
	}
	if len(r.Cols) == 0 {
		return nil, execErrf("CREATE TABLE AS requires a query that returns columns")
	}
	schema := make(engine.Schema, len(r.Cols))
	for i, name := range r.Cols {
		if !isValidColumnName(name) {
			return nil, execErrf("CREATE TABLE AS output column %d has no usable name (%q); add an alias (AS name)", i+1, name)
		}
		kind, err := resultColumnKind(r.Rows, i, name)
		if err != nil {
			return nil, err
		}
		schema[i] = engine.Column{Name: name, Kind: kind}
	}
	t, err := s.db.CreateTable(st.Name, schema)
	if err != nil {
		return nil, err
	}
	for _, row := range r.Rows {
		vals := make([]any, len(schema))
		for i := range schema {
			if row[i] == nil {
				_ = s.db.DropTable(st.Name)
				return nil, execErrf("column %q: NULL values cannot be stored (the engine has no NULL representation)", schema[i].Name)
			}
			cv, err := coerceValue(row[i], schema[i].Kind)
			if err != nil {
				_ = s.db.DropTable(st.Name)
				return nil, fmt.Errorf("sql: column %q: %w", schema[i].Name, err)
			}
			vals[i] = cv
		}
		if err := t.Insert(vals...); err != nil {
			_ = s.db.DropTable(st.Name)
			return nil, err
		}
	}
	return &Result{Tag: fmt.Sprintf("SELECT %d", len(r.Rows))}, nil
}

// isValidColumnName reports whether a result column name is a plain
// identifier the grammar can reference later (rejects "?column?" from
// unaliased expressions — the dialect has no quoted identifiers).
func isValidColumnName(name string) bool {
	if name == "" || !isIdentStart(name[0]) {
		return false
	}
	for i := 1; i < len(name); i++ {
		if !isIdentPart(name[i]) {
			return false
		}
	}
	return true
}

// resultColumnKind infers a result column's storage kind from its first
// non-NULL value.
func resultColumnKind(rows [][]any, i int, name string) (engine.Kind, error) {
	for _, row := range rows {
		switch row[i].(type) {
		case nil:
			continue
		case int64:
			return engine.Int, nil
		case float64:
			return engine.Float, nil
		case string:
			return engine.String, nil
		case bool:
			return engine.Bool, nil
		case []float64:
			return engine.Vector, nil
		default:
			return 0, execErrf("cannot store column %q (%T) in a table", name, row[i])
		}
	}
	return 0, execErrf("cannot infer the type of column %q: the query produced no non-NULL values (CREATE TABLE AS needs at least one row per column)", name)
}

func (s *Session) execDrop(st *DropTable) (*Result, error) {
	if err := s.db.DropTable(st.Name); err != nil {
		if st.IfExists && errors.Is(err, engine.ErrNoTable) {
			return &Result{Tag: "DROP TABLE"}, nil
		}
		return nil, err
	}
	return &Result{Tag: "DROP TABLE"}, nil
}

// insertPlan is a planned INSERT: the column order mapping is resolved
// once; row expressions evaluate per execution (they may hold $n
// parameters).
type insertPlan struct {
	name  string
	table *engine.Table
	rows  [][]Expr
	// order maps schema index -> position in each row tuple.
	order []int
}

func (s *Session) planInsert(st *Insert) (stmtPlan, error) {
	t, err := s.db.Table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()
	// Map statement column order onto schema order. Every schema column
	// must be covered: the engine has no NULL/default values.
	order := make([]int, len(schema))
	if len(st.Columns) == 0 {
		for i := range schema {
			order[i] = i
		}
		if len(st.Rows) > 0 && len(st.Rows[0]) != len(schema) {
			return nil, fmt.Errorf("%w: got %d values for %d columns", engine.ErrArity, len(st.Rows[0]), len(schema))
		}
	} else {
		if len(st.Columns) != len(schema) {
			return nil, execErrf("INSERT must list all %d columns of %q (engine rows have no defaults)", len(schema), st.Table)
		}
		for i := range order {
			order[i] = -1
		}
		for pos, name := range st.Columns {
			ci := schema.Index(name)
			if ci < 0 {
				return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, name)
			}
			if order[ci] != -1 {
				return nil, execErrf("column %q specified more than once", name)
			}
			order[ci] = pos
		}
	}
	return &insertPlan{name: st.Table, table: t, rows: st.Rows, order: order}, nil
}

func (p *insertPlan) valid(db *engine.DB) bool {
	t, err := db.Table(p.name)
	return err == nil && t == p.table
}

func (p *insertPlan) release(*engine.DB) {}

func (p *insertPlan) columns() []string { return nil }

func (p *insertPlan) exec(s *Session, env *execEnv) (*Result, error) {
	schema := p.table.Schema()
	ctx := &evalCtx{params: env.paramList()}
	n := 0
	for _, row := range p.rows {
		if len(row) != len(schema) {
			return nil, fmt.Errorf("%w: got %d values for %d columns", engine.ErrArity, len(row), len(schema))
		}
		vals := make([]any, len(schema))
		for ci := range schema {
			v, err := evalExpr(row[p.order[ci]], ctx)
			if err != nil {
				return nil, err
			}
			cv, err := coerceValue(v, schema[ci].Kind)
			if err != nil {
				return nil, fmt.Errorf("sql: column %q: %w", schema[ci].Name, err)
			}
			vals[ci] = cv
		}
		if err := p.table.Insert(vals...); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Tag: fmt.Sprintf("INSERT 0 %d", n)}, nil
}

// coerceValue converts an evaluated literal to the column kind, applying
// the same numeric widening the engine's Insert accepts plus int64
// narrowing from integral floats.
func coerceValue(v any, kind engine.Kind) (any, error) {
	switch kind {
	case engine.Float:
		if f, ok := toFloat(v); ok {
			return f, nil
		}
	case engine.Vector:
		if vec, ok := v.([]float64); ok {
			return vec, nil
		}
	case engine.Int:
		switch n := v.(type) {
		case int64:
			return n, nil
		case float64:
			if n == float64(int64(n)) {
				return int64(n), nil
			}
		}
	case engine.String:
		if s, ok := v.(string); ok {
			return s, nil
		}
	case engine.Bool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	}
	return nil, fmt.Errorf("%w: %s value into %s column", engine.ErrType, valueTypeName(v), kind)
}

// planSelect classifies a SELECT — constant, window, table-valued madlib
// call, aggregate query, or plain scan — and lowers it. The FROM clause
// (base table or join) resolves to a planSource first; qualified column
// references are rewritten to planning-schema names in the same pass.
func (s *Session) planSelect(st *Select) (stmtPlan, error) {
	// FROM-less SELECT: constant expressions, one row.
	if st.From == "" {
		return planConstSelect(st)
	}
	ps, rst, err := s.resolveSelect(st)
	if err != nil {
		return nil, err
	}
	st = rst
	if st.Where != nil && exprHasAgg(st.Where) {
		return nil, execErrf("aggregate functions are not allowed in WHERE")
	}
	if exprHasWindow(st.Where) || exprHasWindow(st.Having) {
		return nil, execErrf("window functions are not allowed in WHERE or HAVING")
	}
	for _, k := range st.OrderBy {
		if exprHasWindow(k.Expr) {
			return nil, execErrf("window functions in ORDER BY are not supported; project them with an alias and sort on that")
		}
	}
	hasWindow := false
	for _, item := range st.Items {
		if !item.Star && exprHasWindow(item.Expr) {
			hasWindow = true
		}
	}
	if hasWindow {
		pl, err := planWindowSelect(st, ps, s.batchEnabled())
		if err != nil {
			return nil, err
		}
		s.metrics.lanePicked(planLane(pl))
		return pl, nil
	}
	for _, item := range st.Items {
		if item.Star {
			continue
		}
		tv := false
		walkExpr(item.Expr, func(e Expr) {
			if fc, ok := e.(*FuncCall); ok && isTableValuedCall(fc) {
				tv = true
			}
		})
		if tv {
			call, ok := item.Expr.(*FuncCall)
			if !ok || !isTableValuedCall(call) || len(st.Items) != 1 {
				return nil, execErrf("a table-valued madlib function must be the only item in the SELECT list")
			}
			if st.Having != nil {
				return nil, execErrf("HAVING cannot be combined with table-valued madlib functions")
			}
			if ps.join != nil {
				return nil, execErrf("table-valued madlib functions cannot be combined with JOIN; stage the join with CREATE TABLE ... AS first")
			}
			if ps.virtual {
				return nil, execErrf("table-valued madlib functions cannot run over system views")
			}
			if st.Distinct {
				return nil, execErrf("SELECT DISTINCT cannot be combined with table-valued madlib functions")
			}
			return planTableValued(st, ps.table, call)
		}
		if item.Expand {
			return nil, execErrf("composite expansion (.*) only applies to madlib table-valued functions")
		}
	}
	isAgg := len(st.GroupBy) > 0 || st.Having != nil
	for _, item := range st.Items {
		if !item.Star && exprHasAgg(item.Expr) {
			isAgg = true
		}
	}
	// Lane decision: every scan and aggregate shape may try the batch
	// lane. LEFT JOIN sources vectorize through NULL-aware kernels (the
	// validity bitmap derived from the padding marker); DISTINCT dedupes
	// boxed output rows, which the columnar projection produces just as
	// well. Expressions with no batch lowering (Vector operands, madlib
	// scalar calls, functions over possibly-NULL arguments) still fall
	// back per plan — the row lane stays the semantic oracle.
	batchOK := s.batchEnabled()
	var pl stmtPlan
	if isAgg {
		pl, err = planAggSelect(st, ps, batchOK)
	} else {
		pl, err = planScanSelect(st, ps, batchOK)
	}
	if err != nil {
		return nil, err
	}
	s.metrics.lanePicked(planLane(pl))
	return pl, nil
}

// constPlan evaluates a FROM-less SELECT (e.g. SELECT 1+2, SELECT $1+$2).
type constPlan struct {
	st *Select
}

func planConstSelect(st *Select) (stmtPlan, error) {
	if st.Where != nil || len(st.GroupBy) > 0 || st.Having != nil {
		return nil, execErrf("WHERE/GROUP BY/HAVING require a FROM clause")
	}
	for _, item := range st.Items {
		if item.Star {
			return nil, execErrf("SELECT * requires a FROM clause")
		}
		if exprHasAgg(item.Expr) {
			return nil, execErrf("aggregate functions require a FROM clause")
		}
		if exprHasWindow(item.Expr) {
			return nil, execErrf("window functions require a FROM clause")
		}
	}
	for _, key := range st.OrderBy {
		if _, _, err := ordinal(key.Expr, len(st.Items)); err != nil {
			return nil, err
		}
	}
	return &constPlan{st: st}, nil
}

func (p *constPlan) valid(*engine.DB) bool { return true }

func (p *constPlan) release(*engine.DB) {}

func (p *constPlan) columns() []string {
	cols := make([]string, len(p.st.Items))
	for i, item := range p.st.Items {
		cols[i] = outputName(item)
	}
	return cols
}

func (p *constPlan) exec(_ *Session, env *execEnv) (*Result, error) {
	st := p.st
	cols := make([]string, len(st.Items))
	row := make([]any, len(st.Items))
	ctx := &evalCtx{params: env.paramList()}
	for i, item := range st.Items {
		v, err := evalExpr(item.Expr, ctx)
		if err != nil {
			return nil, err
		}
		row[i] = v
		cols[i] = outputName(item)
	}
	// ORDER BY over one row only needs validation; LIMIT still applies.
	for _, key := range st.OrderBy {
		if _, isOrd, err := ordinal(key.Expr, len(cols)); err != nil {
			return nil, err
		} else if !isOrd {
			outCols := map[string]int{}
			for i, n := range cols {
				outCols[n] = i
			}
			kctx := &evalCtx{outCols: outCols, outVals: row, params: env.paramList()}
			if _, err := evalExpr(key.Expr, kctx); err != nil {
				return nil, err
			}
		}
	}
	rows := applyLimit([][]any{row}, st.Limit)
	return &Result{Cols: cols, Rows: rows, Tag: fmt.Sprintf("SELECT %d", len(rows))}, nil
}

// enginePred adapts a compiled predicate to the engine's bool-only
// predicate contract; evaluation errors stash in errPtr and reject the
// row, surfacing after the scan.
func enginePred(fn boolFn, env *execEnv, errPtr *atomic.Value) func(engine.Row) bool {
	if fn == nil {
		return nil
	}
	return func(row engine.Row) bool {
		v, err := fn(row, env)
		if err != nil {
			errPtr.CompareAndSwap(nil, err)
			return false
		}
		return v
	}
}

// scanPlan is a planned projection scan: SELECT exprs FROM t [WHERE]
// [ORDER BY] [LIMIT], all expressions compiled to closures. When the
// WHERE clause also lowers to a batch kernel, the scan filters whole
// column batches through a selection vector (batchPred non-nil); when
// SELECT-list items lower too, the surviving rows materialize through
// the columnar projection (projItems) — each item evaluated once per
// batch into a typed lane and boxed column-wise — instead of one
// compiled closure call per row per item. Items with no batch lowering
// fall back to their row-lane itemFn individually. Join sources
// materialize a temp table per execution; DISTINCT dedupes the boxed
// output rows on either lane.
type scanPlan struct {
	src      *planSource
	distinct bool
	cols     []string
	itemFns  []anyFn
	pred     boolFn
	// whereText is the resolved WHERE clause rendered back to text, kept
	// only for EXPLAIN.
	whereText string
	// orderOrds[k] is the projected-column ordinal of ORDER BY key k, or
	// -1 when the key is a compiled expression over the input row.
	orderOrds []int
	orderFns  []anyFn
	desc      []bool
	limit     int64

	batchProg *batchProg
	batchPred bBatchKernel
	// projItems, when non-nil, is the columnar projection: one entry per
	// output item, nil entries falling back to the row lane's itemFns.
	projItems []*projItem
	// batchPool recycles per-morsel filter/projection scratch
	// (scanBatchState) across executions of a cached plan.
	batchPool sync.Pool
}

// scanBatchState is one morsel's scratch for the vectorized scan:
// the kernel lanes plus the predicate output and selection buffers
// (nil when the plan has no batch predicate).
type scanBatchState struct {
	e       *batchEval
	predOut []bool
	selBuf  []int32
}

func planScanSelect(st *Select, ps *planSource, batchOK bool) (stmtPlan, error) {
	schema := ps.schema
	cc := ps.newCompileCtx()
	// Expand * into column refs (join sources already expanded during
	// resolution; ps.visible hides the outer-join marker either way).
	var items []SelectItem
	for _, item := range st.Items {
		if item.Star {
			for _, c := range schema[:ps.visible] {
				items = append(items, SelectItem{Expr: &ColumnRef{Name: c.Name}})
			}
			continue
		}
		items = append(items, item)
	}
	p := &scanPlan{src: ps, distinct: st.Distinct, limit: st.Limit}
	p.cols = make([]string, len(items))
	p.itemFns = make([]anyFn, len(items))
	for i, item := range items {
		c, err := compileExpr(item.Expr, cc)
		if err != nil {
			return nil, err
		}
		p.itemFns[i] = c.a
		p.cols[i] = outputName(item)
	}
	for _, key := range st.OrderBy {
		if exprHasAgg(key.Expr) {
			return nil, execErrf("aggregate functions in ORDER BY require GROUP BY or an aggregate SELECT list")
		}
		ord, isOrd, err := ordinal(key.Expr, len(items))
		if err != nil {
			return nil, err
		}
		// A key that labels or textually equals a projected item sorts
		// by that output column (ORDER BY alias; required for DISTINCT,
		// cheaper in general).
		if !isOrd {
			isInput := func(name string) bool { _, in := cc.colIdx[name]; return in }
			if oi, out := outputKeyOrdinal(key.Expr, items, p.cols, isInput); out {
				ord, isOrd = oi, true
			}
		}
		if !isOrd && p.distinct {
			// Sorting deduplicated rows by a non-projected expression
			// would depend on which duplicate happened to survive.
			return nil, execErrf("for SELECT DISTINCT, ORDER BY expressions must appear in the select list")
		}
		if isOrd {
			p.orderOrds = append(p.orderOrds, ord)
			p.orderFns = append(p.orderFns, nil)
		} else {
			// Keys compile against the input row, so sorting by
			// non-projected columns works.
			c, err := compileExpr(key.Expr, cc)
			if err != nil {
				return nil, err
			}
			p.orderOrds = append(p.orderOrds, -1)
			p.orderFns = append(p.orderFns, c.a)
		}
		p.desc = append(p.desc, key.Desc)
	}
	var err error
	p.pred, err = compilePredicate(st.Where, cc)
	if err != nil {
		return nil, err
	}
	if st.Where != nil {
		p.whereText = st.Where.String()
	}
	if batchOK {
		bc := newSourceBatchCompiler(ps)
		predOK := true
		if st.Where != nil {
			k, ok := compileBatchPredicate(st.Where, bc)
			if ok && k != nil {
				p.batchPred = k
			} else {
				// The WHERE clause has no batch lowering; the whole scan
				// stays on the row lane (the batch drivers cannot interleave
				// a row-lane predicate).
				predOK = false
			}
		}
		if predOK {
			nBatch := 0
			pis := make([]*projItem, len(items))
			for i, item := range items {
				if pi, ok := buildProjItem(item.Expr, bc); ok {
					pis[i] = pi
					nBatch++
				}
			}
			if nBatch > 0 {
				p.projItems = pis
			}
			if p.batchPred != nil || nBatch > 0 {
				p.batchProg = bc.prog
			} else {
				p.batchPred = nil
			}
		} else {
			p.batchPred = nil
		}
	}
	return p, nil
}

func (p *scanPlan) valid(db *engine.DB) bool { return p.src.valid(db) }

func (p *scanPlan) release(db *engine.DB) { p.src.release(db) }

func (p *scanPlan) columns() []string { return p.cols }

func (p *scanPlan) exec(s *Session, env *execEnv) (*Result, error) {
	input, cleanup, err := p.src.acquire(s, env.context())
	if err != nil {
		return nil, err
	}
	defer cleanup()
	// Scan in parallel, buffering per morsel (batch lane) or per segment
	// (row lane); either way the buffers concatenate in (segment, offset)
	// order, so output order is deterministic and identical across lanes
	// and worker counts.
	batch := p.batchProg != nil
	nBuf := len(input.Segments())
	if batch {
		nBuf = s.db.ScanMorsels(input)
	}
	bufRows := make([][][]any, nBuf)
	bufKeys := make([][][]any, nBuf)
	ordered := len(p.desc) > 0
	// emit projects one surviving row into its buffer (row lane, and the
	// batch lane's per-row fallback is emitBatch below).
	emit := func(bufIdx int, row engine.Row) error {
		out := make([]any, len(p.itemFns))
		for i, fn := range p.itemFns {
			v, err := fn(row, env)
			if err != nil {
				return err
			}
			out[i] = v
		}
		bufRows[bufIdx] = append(bufRows[bufIdx], out)
		if ordered {
			keys := make([]any, len(p.desc))
			for k := range p.desc {
				if ord := p.orderOrds[k]; ord >= 0 {
					keys[k] = out[ord]
					continue
				}
				v, err := p.orderFns[k](row, env)
				if err != nil {
					return err
				}
				keys[k] = v
			}
			bufKeys[bufIdx] = append(bufKeys[bufIdx], keys)
		}
		return nil
	}
	var scanErr error
	var predErr atomic.Value
	if batch {
		// Vectorized scan: evaluate the predicate per batch into a
		// selection vector, then materialize the survivors through the
		// columnar projection. Scratch states pool across executions of
		// the (cached) plan.
		states := make([]*scanBatchState, nBuf)
		defer func() {
			for _, st := range states {
				if st != nil {
					st.e.env = nil
					p.batchPool.Put(st)
				}
			}
		}()
		scanErr = s.db.ForEachBatchCtx(env.context(), input, func(morselIdx int, b engine.ColBatch) error {
			st := states[morselIdx]
			if st == nil {
				st, _ = p.batchPool.Get().(*scanBatchState)
				if st == nil {
					st = &scanBatchState{e: p.batchProg.newEval(env)}
					if p.batchPred != nil {
						st.predOut = make([]bool, engine.BatchSize)
						st.selBuf = make([]int32, engine.BatchSize)
					}
				}
				st.e.env = env
				states[morselIdx] = st
			}
			sel := st.e.identSel(b.Len())
			if p.batchPred != nil {
				po := st.predOut[:b.Len()]
				if err := p.batchPred(st.e, b, sel, po); err != nil {
					return err
				}
				keep := st.selBuf[:0]
				for j, ok := range po {
					if ok {
						keep = append(keep, int32(j))
					}
				}
				sel = keep
			}
			if len(sel) == 0 {
				return nil
			}
			return p.emitBatch(st, b, sel, env, morselIdx, bufRows, bufKeys)
		})
	} else {
		pred := enginePred(p.pred, env, &predErr)
		scanErr = s.db.ForEachSegmentCtx(env.context(), input, func(segIdx int, row engine.Row) error {
			if pred != nil && !pred(row) {
				return nil
			}
			return emit(segIdx, row)
		})
	}
	if scanErr != nil {
		return nil, scanErr
	}
	if e := predErr.Load(); e != nil {
		return nil, e.(error)
	}
	var rows, keys [][]any
	for i := 0; i < nBuf; i++ {
		rows = append(rows, bufRows[i]...)
		keys = append(keys, bufKeys[i]...)
	}
	if p.distinct {
		rows, keys = dedupeRows(rows, keys)
	}
	if ordered {
		if err := sortRows(s.db, rows, keys, p.desc); err != nil {
			return nil, err
		}
	}
	rows = applyLimit(rows, p.limit)
	return &Result{Cols: p.cols, Rows: rows, Tag: fmt.Sprintf("SELECT %d", len(rows))}, nil
}

// emitBatch materializes one batch's surviving rows on the batch lane:
// columnar items box lane-at-a-time into the output rows (one backing
// cell array per batch), per-item fallbacks evaluate row-at-a-time, and
// ORDER BY keys fill from the boxed output or the compiled key closures.
func (p *scanPlan) emitBatch(st *scanBatchState, b engine.ColBatch, sel selVec, env *execEnv, bufIdx int, bufRows, bufKeys [][][]any) error {
	n := len(sel)
	nItems := len(p.itemFns)
	rows := make([][]any, n)
	cells := make([]any, n*nItems)
	for j := range rows {
		rows[j] = cells[j*nItems : (j+1)*nItems : (j+1)*nItems]
	}
	for i, fn := range p.itemFns {
		var pi *projItem
		if p.projItems != nil {
			pi = p.projItems[i]
		}
		if pi != nil {
			if err := pi.box(st.e, b, sel, rows, i); err != nil {
				return err
			}
			continue
		}
		for j, idx := range sel {
			v, err := fn(b.Row(int(idx)), env)
			if err != nil {
				return err
			}
			rows[j][i] = v
		}
	}
	bufRows[bufIdx] = append(bufRows[bufIdx], rows...)
	if len(p.desc) == 0 {
		return nil
	}
	for j, idx := range sel {
		keys := make([]any, len(p.desc))
		for k := range p.desc {
			if ord := p.orderOrds[k]; ord >= 0 {
				keys[k] = rows[j][ord]
				continue
			}
			v, err := p.orderFns[k](b.Row(int(idx)), env)
			if err != nil {
				return err
			}
			keys[k] = v
		}
		bufKeys[bufIdx] = append(bufKeys[bufIdx], keys)
	}
	return nil
}

// dedupeRows collapses duplicate projected rows (SELECT DISTINCT),
// keeping the first occurrence and its ORDER BY keys. It reuses the
// GroupKey idea — an injective byte encoding of the full row — with a
// plain hash set, since no aggregate state is carried.
func dedupeRows(rows, keys [][]any) ([][]any, [][]any) {
	if len(rows) < 2 {
		return rows, keys
	}
	seen := make(map[string]struct{}, len(rows))
	outRows := rows[:0]
	outKeys := keys
	if keys != nil {
		outKeys = keys[:0]
	}
	var buf []byte
	for i, row := range rows {
		buf = buf[:0]
		for _, v := range row {
			buf = appendValKey(buf, v)
		}
		k := string(buf)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		outRows = append(outRows, row)
		if keys != nil {
			outKeys = append(outKeys, keys[i])
		}
	}
	return outRows, outKeys
}

// appendValKey encodes one output value injectively for DISTINCT
// comparison: a kind tag plus a fixed-width or length-prefixed payload,
// with -0/NaN canonicalized like group keys.
func appendValKey(buf []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(buf, 'n')
	case int64:
		buf = append(buf, 'i')
		return binary.LittleEndian.AppendUint64(buf, uint64(x))
	case float64:
		buf = append(buf, 'f')
		return binary.LittleEndian.AppendUint64(buf, uint64(floatKeyBits(x)))
	case string:
		buf = append(buf, 's')
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		return append(buf, x...)
	case bool:
		if x {
			return append(buf, 'T')
		}
		return append(buf, 'F')
	case []float64:
		buf = append(buf, 'v')
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x)))
		for _, f := range x {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(floatKeyBits(f)))
		}
		return buf
	}
	// Unknown kinds (not producible by the executor) fall back to their
	// printed form.
	buf = append(buf, 'x')
	return append(buf, fmt.Sprintf("%v", v)...)
}

// outputKeyOrdinal maps an ORDER BY key onto a projected column: a bare
// name that labels an output column (and is not shadowed by an input
// column, per isInputCol) or an expression textually equal to a
// projected item. DISTINCT requires every sort key to resolve this way,
// so sorting deduplicated rows stays a function of the output row alone.
func outputKeyOrdinal(key Expr, items []SelectItem, outNames []string, isInputCol func(string) bool) (int, bool) {
	if cr, ok := key.(*ColumnRef); ok && cr.Table == "" && !isInputCol(cr.Name) {
		for i, n := range outNames {
			if n == cr.Name {
				return i, true
			}
		}
	}
	ks := key.String()
	for i, item := range items {
		if !item.Star && item.Expr != nil && item.Expr.String() == ks {
			return i, true
		}
	}
	return 0, false
}

// ordinal recognizes ORDER BY position literals. A bare integer literal
// is an ordinal: in range it selects output column v-1, out of range it
// is an error (not a constant sort key).
func ordinal(e Expr, n int) (idx int, isOrdinal bool, err error) {
	l, ok := e.(*Literal)
	if !ok {
		return 0, false, nil
	}
	v, ok := l.Val.(int64)
	if !ok {
		return 0, false, nil
	}
	if v < 1 || int(v) > n {
		return 0, true, execErrf("ORDER BY position %d is not in select list", v)
	}
	return int(v) - 1, true, nil
}

func applyLimit(rows [][]any, limit int64) [][]any {
	if limit >= 0 && int64(len(rows)) > limit {
		return rows[:limit]
	}
	return rows
}

// aggPlan is a planned aggregate query, with or without GROUP BY,
// executed as a single two-phase parallel aggregate over the table
// (§3.1.1). Aggregate arguments and the WHERE clause are compiled; group
// keys go through the engine's keyed hash aggregate instead of a
// formatted string per row. When every expression in the scan pipeline
// also lowers to batch kernels, the plan additionally carries the
// vectorized lane (batch) and executes through it; the row lane stays as
// the semantic oracle and the fallback.
type aggPlan struct {
	src      *planSource
	schema   engine.Schema
	st       *Select
	groupIdx []int
	builders []aggBuilder
	calls    []*FuncCall // aggregate calls, parallel to builders
	slotOf   map[*FuncCall]int
	outNames []string
	outCols  map[string]int
	pred     boolFn
	keyFn    func(engine.Row) engine.GroupKey // nil when no GROUP BY
	batch    *batchAggLane                    // nil = row lane only
}

func planAggSelect(st *Select, ps *planSource, batchOK bool) (stmtPlan, error) {
	schema := ps.schema
	cc := ps.newCompileCtx()
	p := &aggPlan{src: ps, schema: schema, st: st}
	// Resolve GROUP BY columns.
	p.groupIdx = make([]int, len(st.GroupBy))
	for i, name := range st.GroupBy {
		ci := schema.Index(name)
		if ci < 0 {
			return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, name)
		}
		if ps.nullable != nil && ps.nullable[ci] {
			return nil, execErrf("GROUP BY on column %q from the nullable side of a LEFT JOIN is not supported", name)
		}
		p.groupIdx[i] = ci
	}
	grouped := map[string]bool{}
	for _, name := range st.GroupBy {
		grouped[name] = true
	}
	// Collect aggregate calls across SELECT list and ORDER BY into slots.
	p.slotOf = map[*FuncCall]int{}
	addSlots := func(e Expr) error {
		if exprHasNestedAgg(e) {
			return execErrf("aggregate calls cannot be nested")
		}
		for _, call := range collectAggCalls(e) {
			if _, done := p.slotOf[call]; done {
				continue
			}
			b, err := buildAggregate(call, cc)
			if err != nil {
				return err
			}
			p.slotOf[call] = len(p.builders)
			p.builders = append(p.builders, b)
			p.calls = append(p.calls, call)
		}
		return nil
	}
	// groupedColCheck rejects bare column refs outside aggregates that are
	// not GROUP BY columns (applies to SELECT items and HAVING alike).
	groupedColCheck := func(e Expr) error {
		var badCol error
		walkAgg(e, func(e Expr, inAgg bool) {
			if cr, ok := e.(*ColumnRef); ok && !inAgg && !grouped[cr.Name] && badCol == nil {
				badCol = execErrf("column %q must appear in the GROUP BY clause or be used in an aggregate function", cr.Name)
			}
		})
		return badCol
	}
	for _, item := range st.Items {
		if item.Star {
			return nil, execErrf("SELECT * cannot be combined with aggregate functions")
		}
		if err := addSlots(item.Expr); err != nil {
			return nil, err
		}
		if err := groupedColCheck(item.Expr); err != nil {
			return nil, err
		}
	}
	if st.Having != nil {
		if err := addSlots(st.Having); err != nil {
			return nil, err
		}
		if err := groupedColCheck(st.Having); err != nil {
			return nil, err
		}
	}
	p.outNames = make([]string, len(st.Items))
	for i, item := range st.Items {
		p.outNames[i] = outputName(item)
	}
	p.outCols = map[string]int{}
	for i, n := range p.outNames {
		p.outCols[n] = i
	}
	for _, key := range st.OrderBy {
		_, isOrd, err := ordinal(key.Expr, len(st.Items))
		if err != nil {
			return nil, err
		}
		if isOrd {
			continue
		}
		if st.Distinct {
			if _, ok := outputKeyOrdinal(key.Expr, st.Items, p.outNames, func(string) bool { return false }); !ok {
				return nil, execErrf("for SELECT DISTINCT, ORDER BY expressions must appear in the select list")
			}
		}
		if err := addSlots(key.Expr); err != nil {
			return nil, err
		}
	}
	var err error
	p.pred, err = compilePredicate(st.Where, cc)
	if err != nil {
		return nil, err
	}
	if len(p.groupIdx) > 0 {
		p.keyFn = groupKeyFn(schema, p.groupIdx)
	}
	if batchOK {
		p.batch, _ = planBatchAggLane(st, ps, p.calls, p.builders, p.groupIdx)
	}
	return p, nil
}

func (p *aggPlan) valid(db *engine.DB) bool { return p.src.valid(db) }

func (p *aggPlan) release(db *engine.DB) { p.src.release(db) }

func (p *aggPlan) columns() []string { return p.outNames }

// evalGroup evaluates one group's output row (and ORDER BY keys) from its
// finalized slot values. This stage runs once per group, so it stays on
// the interpreter.
func (p *aggPlan) evalGroup(ms *multiState, env *execEnv) ([]any, []any, error) {
	st := p.st
	groupVals := make(map[string]any, len(st.GroupBy))
	for i, name := range st.GroupBy {
		groupVals[name] = ms.keyVals[i]
	}
	ctx := &evalCtx{slotOf: p.slotOf, slotVals: ms.slots, groupVals: groupVals, params: env.paramList()}
	row := make([]any, len(st.Items))
	for i, item := range st.Items {
		v, err := evalExpr(item.Expr, ctx)
		if err != nil {
			return nil, nil, err
		}
		row[i] = v
	}
	var keys []any
	if len(st.OrderBy) > 0 {
		keys = make([]any, len(st.OrderBy))
		for k, key := range st.OrderBy {
			if ord, isOrd, _ := ordinal(key.Expr, len(row)); isOrd {
				keys[k] = row[ord]
				continue
			}
			kctx := &evalCtx{slotOf: p.slotOf, slotVals: ms.slots, groupVals: groupVals,
				outCols: p.outCols, outVals: row, params: env.paramList()}
			v, err := evalExpr(key.Expr, kctx)
			if err != nil {
				return nil, nil, err
			}
			keys[k] = v
		}
	}
	return row, keys, nil
}

// execRowLane runs the per-row two-phase aggregate over the input table
// and returns one multiState per group.
func (p *aggPlan) execRowLane(s *Session, env *execEnv, input *engine.Table) ([]*multiState, error) {
	aggs := make([]engine.Aggregate, len(p.builders))
	for i, b := range p.builders {
		a, err := b(env)
		if err != nil {
			return nil, err
		}
		aggs[i] = a
	}
	multi := &multiAggregate{aggs: aggs, groupIdx: p.groupIdx, schema: p.schema}
	var predErr atomic.Value
	pred := enginePred(p.pred, env, &predErr)

	if len(p.groupIdx) == 0 {
		var v any
		var err error
		if pred == nil {
			v, err = s.db.RunCtx(env.context(), input, multi)
		} else {
			v, err = s.db.RunFilteredCtx(env.context(), input, pred, multi)
		}
		if err != nil {
			return nil, err
		}
		if e := predErr.Load(); e != nil {
			return nil, e.(error)
		}
		return []*multiState{v.(*multiState)}, nil
	}
	groups, err := s.db.RunGroupByKeyCtx(env.context(), input, pred, p.keyFn, multi)
	if err != nil {
		return nil, err
	}
	if e := predErr.Load(); e != nil {
		return nil, e.(error)
	}
	states := make([]*multiState, 0, len(groups))
	for _, v := range groups {
		states = append(states, v.(*multiState))
	}
	return states, nil
}

// evalHaving applies the HAVING predicate to one finalized group.
func (p *aggPlan) evalHaving(ms *multiState, env *execEnv) (bool, error) {
	groupVals := make(map[string]any, len(p.st.GroupBy))
	for i, name := range p.st.GroupBy {
		groupVals[name] = ms.keyVals[i]
	}
	ctx := &evalCtx{slotOf: p.slotOf, slotVals: ms.slots, groupVals: groupVals, params: env.paramList()}
	v, err := evalExpr(p.st.Having, ctx)
	if err != nil {
		return false, err
	}
	if v == nil {
		return false, nil // NULL is not true in predicate position
	}
	b, ok := v.(bool)
	if !ok {
		return false, execErrf("argument of HAVING must be boolean, not %s", valueTypeName(v))
	}
	return b, nil
}

func (p *aggPlan) exec(s *Session, env *execEnv) (*Result, error) {
	st := p.st
	input, cleanup, err := p.src.acquire(s, env.context())
	if err != nil {
		return nil, err
	}
	defer cleanup()
	var states []*multiState
	if p.batch != nil {
		states, err = p.execBatch(s, env, input)
	} else {
		states, err = p.execRowLane(s, env, input)
	}
	if err != nil {
		return nil, err
	}
	if len(p.groupIdx) > 0 {
		// Deterministic default order: sort groups by their key values.
		// Group keys are unique, so the (stable, possibly parallel) sort's
		// output order is fully determined by the comparator.
		var mu sync.Mutex
		var sortErr error
		perm := s.db.SortStable(len(states), func(a, b int) bool {
			ka, kb := states[a].keyVals, states[b].keyVals
			for i := range ka {
				c, err := compareValues(ka[i], kb[i])
				if err != nil {
					mu.Lock()
					if sortErr == nil {
						sortErr = err
					}
					mu.Unlock()
				}
				if c != 0 {
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
		reorder(states, perm)
	}
	var rows, keys [][]any
	for _, ms := range states {
		if st.Having != nil {
			keep, err := p.evalHaving(ms, env)
			if err != nil {
				return nil, err
			}
			if !keep {
				continue
			}
		}
		row, kv, err := p.evalGroup(ms, env)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		keys = append(keys, kv)
	}
	if st.Distinct {
		rows, keys = dedupeRows(rows, keys)
	}
	if len(st.OrderBy) > 0 {
		desc := make([]bool, len(st.OrderBy))
		for i, k := range st.OrderBy {
			desc[i] = k.Desc
		}
		if err := sortRows(s.db, rows, keys, desc); err != nil {
			return nil, err
		}
	}
	rows = applyLimit(rows, st.Limit)
	return &Result{Cols: p.outNames, Rows: rows, Tag: fmt.Sprintf("SELECT %d", len(rows))}, nil
}

// groupKeyFn builds the engine.GroupKey projection for the GROUP BY
// columns. Single-column keys map directly into the key struct with no
// allocation; composite (and vector) keys pack length-prefixed bytes.
func groupKeyFn(schema engine.Schema, groupIdx []int) func(engine.Row) engine.GroupKey {
	if len(groupIdx) == 1 {
		gi := groupIdx[0]
		switch schema[gi].Kind {
		case engine.Int:
			return func(r engine.Row) engine.GroupKey { return engine.GroupKey{Int: r.Int(gi)} }
		case engine.String:
			return func(r engine.Row) engine.GroupKey { return engine.GroupKey{Str: r.Str(gi)} }
		case engine.Bool:
			return func(r engine.Row) engine.GroupKey {
				if r.Bool(gi) {
					return engine.GroupKey{Int: 1}
				}
				return engine.GroupKey{}
			}
		case engine.Float:
			return func(r engine.Row) engine.GroupKey {
				return engine.GroupKey{Int: floatKeyBits(r.Float(gi))}
			}
		}
	}
	return func(r engine.Row) engine.GroupKey {
		var buf []byte
		for _, gi := range groupIdx {
			buf = appendKeyValue(buf, schema, r, gi)
		}
		return engine.GroupKey{Str: string(buf)}
	}
}

// floatKeyBits maps a float to grouping-equivalent bits: -0 collapses
// onto +0 and every NaN onto one canonical NaN, so SQL equality and key
// equality agree.
func floatKeyBits(f float64) int64 {
	if f == 0 {
		f = 0
	}
	if f != f {
		return int64(math.Float64bits(math.NaN()))
	}
	return int64(math.Float64bits(f))
}

// appendKeyValue encodes one group-key column injectively: a kind tag,
// then a fixed-width or length-prefixed payload.
func appendKeyValue(buf []byte, schema engine.Schema, r engine.Row, gi int) []byte {
	switch schema[gi].Kind {
	case engine.Int:
		buf = append(buf, 'i')
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Int(gi)))
	case engine.Float:
		buf = append(buf, 'f')
		buf = binary.LittleEndian.AppendUint64(buf, uint64(floatKeyBits(r.Float(gi))))
	case engine.Bool:
		if r.Bool(gi) {
			buf = append(buf, 'T')
		} else {
			buf = append(buf, 'F')
		}
	case engine.String:
		s := r.Str(gi)
		buf = append(buf, 's')
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	case engine.Vector:
		v := r.Vector(gi)
		buf = append(buf, 'v')
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v)))
		for _, x := range v {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(floatKeyBits(x)))
		}
	}
	return buf
}

// inferKind statically types an expression against a schema, for staging
// computed madlib arguments into a temp-table column.
func inferKind(e Expr, schema engine.Schema) (engine.Kind, error) {
	switch x := e.(type) {
	case *Literal:
		switch x.Val.(type) {
		case int64:
			return engine.Int, nil
		case float64:
			return engine.Float, nil
		case string:
			return engine.String, nil
		case bool:
			return engine.Bool, nil
		}
	case *ArrayLit:
		return engine.Vector, nil
	case *ColumnRef:
		ci := schema.Index(x.Name)
		if ci < 0 {
			return 0, fmt.Errorf("%w: %q", engine.ErrNoColumn, x.Name)
		}
		return schema[ci].Kind, nil
	case *Unary:
		if x.Op == "NOT" {
			return engine.Bool, nil
		}
		return inferKind(x.X, schema)
	case *Binary:
		switch x.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			return engine.Bool, nil
		}
		lk, err := inferKind(x.L, schema)
		if err != nil {
			return 0, err
		}
		rk, err := inferKind(x.R, schema)
		if err != nil {
			return 0, err
		}
		if lk == engine.Int && rk == engine.Int {
			return engine.Int, nil
		}
		return engine.Float, nil
	case *FuncCall:
		switch x.Name {
		case "sqrt", "exp", "ln", "floor", "ceil", "pow", "power", "array_get":
			return engine.Float, nil
		case "length", "array_length":
			return engine.Int, nil
		case "abs":
			if len(x.Args) == 1 {
				return inferKind(x.Args[0], schema)
			}
		}
	}
	return 0, execErrf("cannot infer the type of %s", e.String())
}

// computedStage is one computed madlib argument staged into a temp-table
// column.
type computedStage struct {
	argIdx int
	name   string
	kind   engine.Kind
	fn     anyFn
}

// deferredArg is a madlib call argument containing $n placeholders (and
// no column references): a scalar evaluated at EXECUTE time, when the
// parameter values are known.
type deferredArg struct {
	argIdx int
	expr   Expr
}

// tvPlan is a planned SELECT (madlib.fn(...)).* FROM t [WHERE ...]. A
// WHERE clause or a computed argument (e.g. linregr(y, array[1, x0, x1])
// over scalar columns) stages the rows through a temporary table first —
// the same pattern the paper's driver functions use (§3.1.2). Scalar
// arguments may hold $n placeholders (madlib.kmeans(coords, $1)); they
// resolve per execution. Per-row computed arguments cannot, because
// their staging column's type must be known at plan time.
type tvPlan struct {
	name      string
	table     *engine.Table
	st        *Select
	call      *FuncCall
	fn        core.SQLFunc
	finalArgs []any
	deferred  []deferredArg
	computed  []computedStage
	pred      boolFn
}

func planTableValued(st *Select, t *engine.Table, call *FuncCall) (stmtPlan, error) {
	if len(st.GroupBy) > 0 {
		return nil, execErrf("GROUP BY cannot be combined with table-valued madlib functions")
	}
	f, _ := core.LookupSQLFunc(call.Name)
	p := &tvPlan{name: st.From, table: t, st: st, call: call, fn: f}
	schema := t.Schema()
	var err error
	p.pred, err = compilePredicate(st.Where, newCompileCtx(schema))
	if err != nil {
		return nil, err
	}
	// Classify arguments: column references and constants pass through,
	// parameter-bearing scalars defer to execution, and any other
	// expression becomes a computed staging column.
	cc := newCompileCtx(schema)
	p.finalArgs = make([]any, len(call.Args))
	for i, a := range call.Args {
		if cr, ok := a.(*ColumnRef); ok {
			if schema.Index(cr.Name) < 0 {
				return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, cr.Name)
			}
			p.finalArgs[i] = core.ColumnArg{Name: cr.Name}
			continue
		}
		if v, err := evalExpr(a, &evalCtx{}); err == nil {
			p.finalArgs[i] = v
			continue
		}
		if exprHasParam(a) {
			refsColumn := false
			walkExpr(a, func(e Expr) {
				if _, ok := e.(*ColumnRef); ok {
					refsColumn = true
				}
			})
			if refsColumn {
				return nil, execErrf("%s argument %d: parameters cannot be combined with column references in madlib function arguments", call.Name, i+1)
			}
			p.deferred = append(p.deferred, deferredArg{argIdx: i, expr: a})
			continue
		}
		kind, err := inferKind(a, schema)
		if err != nil {
			return nil, err
		}
		c, err := compileExpr(a, cc)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("_arg%d", i+1)
		p.computed = append(p.computed, computedStage{argIdx: i, name: name, kind: kind, fn: c.a})
		p.finalArgs[i] = core.ColumnArg{Name: name}
	}
	return p, nil
}

func (p *tvPlan) valid(db *engine.DB) bool {
	t, err := db.Table(p.name)
	return err == nil && t == p.table
}

func (p *tvPlan) release(*engine.DB) {}

// columns is nil for table-valued madlib.* calls: the output shape is
// produced by the method at execution time.
func (p *tvPlan) columns() []string { return nil }

func (p *tvPlan) exec(s *Session, env *execEnv) (*Result, error) {
	st, t, call := p.st, p.table, p.call
	var predErr atomic.Value
	pred := enginePred(p.pred, env, &predErr)
	input := t
	switch {
	case len(p.computed) > 0:
		schema := t.Schema().Clone()
		for _, c := range p.computed {
			schema = append(schema, engine.Column{Name: c.name, Kind: c.kind})
		}
		staged, err := s.db.CreateTempTable("sql_stage", schema)
		if err != nil {
			return nil, err
		}
		defer func() { _ = s.db.DropTable(staged.Name()) }()
		baseSchema := t.Schema()
		// Evaluate segment-parallel into per-segment buffers (the scan and
		// the expression work dominate), then append sequentially.
		segVals := make([][][]any, len(t.Segments()))
		err = s.db.ForEachSegmentCtx(env.context(), t, func(segIdx int, row engine.Row) error {
			if pred != nil && !pred(row) {
				return nil
			}
			vals := make([]any, len(schema))
			for ci := range baseSchema {
				vals[ci] = rowValue(baseSchema, &row, ci)
			}
			for k, c := range p.computed {
				v, err := c.fn(row, env)
				if err != nil {
					return err
				}
				cv, err := coerceValue(v, c.kind)
				if err != nil {
					return fmt.Errorf("sql: %s argument %d: %w", call.Name, c.argIdx+1, err)
				}
				vals[len(baseSchema)+k] = cv
			}
			segVals[segIdx] = append(segVals[segIdx], vals)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if e := predErr.Load(); e != nil {
			return nil, e.(error)
		}
		for _, seg := range segVals {
			for _, vals := range seg {
				if err := staged.Insert(vals...); err != nil {
					return nil, err
				}
			}
		}
		input = staged
	case st.Where != nil:
		staged, err := s.db.SelectIntoTempCtx(env.context(), "sql_stage", t, pred, nil)
		if err != nil {
			return nil, err
		}
		if e := predErr.Load(); e != nil {
			_ = s.db.DropTable(staged.Name())
			return nil, e.(error)
		}
		defer func() { _ = s.db.DropTable(staged.Name()) }()
		input = staged
	}
	args := p.finalArgs
	if len(p.deferred) > 0 {
		args = append([]any(nil), p.finalArgs...)
		ctx := &evalCtx{params: env.paramList()}
		for _, d := range p.deferred {
			v, err := evalExpr(d.expr, ctx)
			if err != nil {
				return nil, err
			}
			args[d.argIdx] = v
		}
	}
	outSchema, rows, err := p.fn.Invoke(s.db, input, args)
	if err != nil {
		return nil, fmt.Errorf("sql: madlib.%s: %w", call.Name, err)
	}
	cols := make([]string, len(outSchema))
	outCols := map[string]int{}
	for i, c := range outSchema {
		cols[i] = c.Name
		outCols[c.Name] = i
	}
	if len(st.OrderBy) > 0 {
		for _, key := range st.OrderBy {
			if _, _, err := ordinal(key.Expr, len(cols)); err != nil {
				return nil, err
			}
		}
		keys := make([][]any, len(rows))
		for ri, row := range rows {
			keys[ri] = make([]any, len(st.OrderBy))
			for k, key := range st.OrderBy {
				if ord, isOrd, _ := ordinal(key.Expr, len(row)); isOrd {
					keys[ri][k] = row[ord]
					continue
				}
				ctx := &evalCtx{outCols: outCols, outVals: row, params: env.paramList()}
				v, err := evalExpr(key.Expr, ctx)
				if err != nil {
					return nil, err
				}
				keys[ri][k] = v
			}
		}
		desc := make([]bool, len(st.OrderBy))
		for i, k := range st.OrderBy {
			desc[i] = k.Desc
		}
		if err := sortRows(s.db, rows, keys, desc); err != nil {
			return nil, err
		}
	}
	rows = applyLimit(rows, st.Limit)
	return &Result{Cols: cols, Rows: rows, Tag: fmt.Sprintf("SELECT %d", len(rows))}, nil
}
