package sql

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"madlib/internal/core"
	"madlib/internal/engine"
)

// Result is the outcome of one statement: a rowset (possibly empty) plus
// a psql-style command tag.
type Result struct {
	// Cols are the output column names (nil for DDL/DML).
	Cols []string
	// Rows are the output rows in final order.
	Rows [][]any
	// Tag is the command tag, e.g. "CREATE TABLE", "INSERT 0 3",
	// "SELECT 2".
	Tag string
}

// Format renders the rowset as an aligned psql-style table ending with a
// row-count footer. DDL/DML results render as just their tag.
func (r *Result) Format() string {
	if len(r.Cols) == 0 {
		return r.Tag + "\n"
	}
	widths := make([]int, len(r.Cols))
	numeric := make([]bool, len(r.Cols))
	for i, c := range r.Cols {
		widths[i] = len(c)
		numeric[i] = true
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(r.Cols))
		for ci := range r.Cols {
			var v any
			if ci < len(row) {
				v = row[ci]
			}
			s := FormatValue(v)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
			switch v.(type) {
			case int64, float64:
			default:
				numeric[ci] = false
			}
		}
	}
	var b strings.Builder
	line := func(parts []string, rightAlign func(int) bool) {
		var l strings.Builder
		for i, s := range parts {
			if i > 0 {
				l.WriteString("|")
			}
			l.WriteString(" " + pad(s, widths[i], rightAlign(i)) + " ")
		}
		b.WriteString(strings.TrimRight(l.String(), " "))
		b.WriteString("\n")
	}
	line(r.Cols, func(int) bool { return false })
	for i := range r.Cols {
		if i > 0 {
			b.WriteString("+")
		}
		b.WriteString(strings.Repeat("-", widths[i]+2))
	}
	b.WriteString("\n")
	for _, row := range cells {
		line(row, func(i int) bool { return numeric[i] })
	}
	if len(r.Rows) == 1 {
		b.WriteString("(1 row)\n")
	} else {
		fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	}
	return b.String()
}

func pad(s string, width int, right bool) string {
	if len(s) >= width {
		return s
	}
	fill := strings.Repeat(" ", width-len(s))
	if right {
		return fill + s
	}
	return s + fill
}

// FormatValue renders one SQL value the way the REPL prints it: floats in
// shortest-exact form, vectors in brace notation, booleans as t/f, NULL
// as empty.
func FormatValue(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case string:
		return x
	case bool:
		if x {
			return "t"
		}
		return "f"
	case []float64:
		parts := make([]string, len(x))
		for i, f := range x {
			parts[i] = strconv.FormatFloat(f, 'g', -1, 64)
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	return fmt.Sprintf("%v", v)
}

// Session executes SQL against an engine database. Sessions are cheap;
// they hold no state beyond the engine handle, so one per connection or
// one per program both work.
type Session struct {
	db *engine.DB
}

// NewSession wraps an engine database with the SQL front-end.
func NewSession(db *engine.DB) *Session { return &Session{db: db} }

// DB returns the underlying engine database.
func (s *Session) DB() *engine.DB { return s.db }

// Exec parses and runs every statement in text, returning one Result per
// statement. Execution stops at the first error; already-completed
// results are returned alongside it.
func (s *Session) Exec(text string) ([]*Result, error) {
	stmts, err := Parse(text)
	if err != nil {
		return nil, err
	}
	var out []*Result
	for _, st := range stmts {
		r, err := s.Run(st)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Query runs a single statement and requires it to produce a rowset.
func (s *Session) Query(text string) (*Result, error) {
	st, err := ParseStatement(text)
	if err != nil {
		return nil, err
	}
	r, err := s.Run(st)
	if err != nil {
		return nil, err
	}
	if len(r.Cols) == 0 {
		return nil, ErrNoRows
	}
	return r, nil
}

// Run executes one parsed statement.
func (s *Session) Run(st Statement) (*Result, error) {
	switch x := st.(type) {
	case *CreateTable:
		return s.execCreate(x)
	case *DropTable:
		return s.execDrop(x)
	case *Insert:
		return s.execInsert(x)
	case *Select:
		return s.execSelect(x)
	}
	return nil, execErrf("unsupported statement %T", st)
}

func (s *Session) execCreate(st *CreateTable) (*Result, error) {
	schema := make(engine.Schema, len(st.Cols))
	for i, c := range st.Cols {
		schema[i] = engine.Column{Name: c.Name, Kind: c.Kind}
	}
	_, err := s.db.CreateTable(st.Name, schema)
	if err != nil {
		if st.IfNotExists && errors.Is(err, engine.ErrTableExists) {
			return &Result{Tag: "CREATE TABLE"}, nil
		}
		return nil, err
	}
	return &Result{Tag: "CREATE TABLE"}, nil
}

func (s *Session) execDrop(st *DropTable) (*Result, error) {
	if err := s.db.DropTable(st.Name); err != nil {
		if st.IfExists && errors.Is(err, engine.ErrNoTable) {
			return &Result{Tag: "DROP TABLE"}, nil
		}
		return nil, err
	}
	return &Result{Tag: "DROP TABLE"}, nil
}

func (s *Session) execInsert(st *Insert) (*Result, error) {
	t, err := s.db.Table(st.Table)
	if err != nil {
		return nil, err
	}
	schema := t.Schema()
	// Map statement column order onto schema order. Every schema column
	// must be covered: the engine has no NULL/default values.
	order := make([]int, len(schema)) // schema index -> position in row tuple
	if len(st.Columns) == 0 {
		for i := range schema {
			order[i] = i
		}
		if len(st.Rows) > 0 && len(st.Rows[0]) != len(schema) {
			return nil, fmt.Errorf("%w: got %d values for %d columns", engine.ErrArity, len(st.Rows[0]), len(schema))
		}
	} else {
		if len(st.Columns) != len(schema) {
			return nil, execErrf("INSERT must list all %d columns of %q (engine rows have no defaults)", len(schema), st.Table)
		}
		for i := range order {
			order[i] = -1
		}
		for pos, name := range st.Columns {
			ci := schema.Index(name)
			if ci < 0 {
				return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, name)
			}
			if order[ci] != -1 {
				return nil, execErrf("column %q specified more than once", name)
			}
			order[ci] = pos
		}
	}
	n := 0
	for _, row := range st.Rows {
		if len(row) != len(schema) {
			return nil, fmt.Errorf("%w: got %d values for %d columns", engine.ErrArity, len(row), len(schema))
		}
		vals := make([]any, len(schema))
		for ci := range schema {
			v, err := evalExpr(row[order[ci]], &evalCtx{})
			if err != nil {
				return nil, err
			}
			cv, err := coerceValue(v, schema[ci].Kind)
			if err != nil {
				return nil, fmt.Errorf("sql: column %q: %w", schema[ci].Name, err)
			}
			vals[ci] = cv
		}
		if err := t.Insert(vals...); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{Tag: fmt.Sprintf("INSERT 0 %d", n)}, nil
}

// coerceValue converts an evaluated literal to the column kind, applying
// the same numeric widening the engine's Insert accepts plus int64
// narrowing from integral floats.
func coerceValue(v any, kind engine.Kind) (any, error) {
	switch kind {
	case engine.Float:
		if f, ok := toFloat(v); ok {
			return f, nil
		}
	case engine.Vector:
		if vec, ok := v.([]float64); ok {
			return vec, nil
		}
	case engine.Int:
		switch n := v.(type) {
		case int64:
			return n, nil
		case float64:
			if n == float64(int64(n)) {
				return int64(n), nil
			}
		}
	case engine.String:
		if s, ok := v.(string); ok {
			return s, nil
		}
	case engine.Bool:
		if b, ok := v.(bool); ok {
			return b, nil
		}
	}
	return nil, fmt.Errorf("%w: %s value into %s column", engine.ErrType, valueTypeName(v), kind)
}

func (s *Session) execSelect(st *Select) (*Result, error) {
	// FROM-less SELECT: constant expressions, one row.
	if st.From == "" {
		return execConstSelect(st)
	}
	t, err := s.db.Table(st.From)
	if err != nil {
		return nil, err
	}
	if st.Where != nil && exprHasAgg(st.Where) {
		return nil, execErrf("aggregate functions are not allowed in WHERE")
	}
	// Classify: table-valued madlib call, aggregate query, or plain scan.
	for _, item := range st.Items {
		if item.Star {
			continue
		}
		tv := false
		walkExpr(item.Expr, func(e Expr) {
			if fc, ok := e.(*FuncCall); ok && isTableValuedCall(fc) {
				tv = true
			}
		})
		if tv {
			call, ok := item.Expr.(*FuncCall)
			if !ok || !isTableValuedCall(call) || len(st.Items) != 1 {
				return nil, execErrf("a table-valued madlib function must be the only item in the SELECT list")
			}
			return s.execTableValued(st, t, call)
		}
		if item.Expand {
			return nil, execErrf("composite expansion (.*) only applies to madlib table-valued functions")
		}
	}
	isAgg := len(st.GroupBy) > 0
	for _, item := range st.Items {
		if !item.Star && exprHasAgg(item.Expr) {
			isAgg = true
		}
	}
	if isAgg {
		return s.execAggSelect(st, t)
	}
	return s.execScanSelect(st, t)
}

// execConstSelect evaluates a FROM-less SELECT (e.g. SELECT 1+2).
func execConstSelect(st *Select) (*Result, error) {
	if st.Where != nil || len(st.GroupBy) > 0 {
		return nil, execErrf("WHERE/GROUP BY require a FROM clause")
	}
	cols := make([]string, len(st.Items))
	row := make([]any, len(st.Items))
	for i, item := range st.Items {
		if item.Star {
			return nil, execErrf("SELECT * requires a FROM clause")
		}
		v, err := evalExpr(item.Expr, &evalCtx{})
		if err != nil {
			return nil, err
		}
		row[i] = v
		cols[i] = outputName(item)
	}
	// ORDER BY over one row only needs validation; LIMIT still applies.
	for _, key := range st.OrderBy {
		if _, isOrd, err := ordinal(key.Expr, len(cols)); err != nil {
			return nil, err
		} else if !isOrd {
			outCols := map[string]int{}
			for i, n := range cols {
				outCols[n] = i
			}
			if _, err := evalExpr(key.Expr, &evalCtx{outCols: outCols, outVals: row}); err != nil {
				return nil, err
			}
		}
	}
	rows := applyLimit([][]any{row}, st.Limit)
	return &Result{Cols: cols, Rows: rows, Tag: fmt.Sprintf("SELECT %d", len(rows))}, nil
}

// compilePred compiles the WHERE clause to a row predicate. Evaluation
// errors inside the scan surface through errPtr (the engine's predicate
// contract is bool-only).
func compilePred(where Expr, schema engine.Schema, errPtr *atomic.Value) (func(engine.Row) bool, error) {
	if where == nil {
		return nil, nil
	}
	if err := checkColumnRefs(where, schema); err != nil {
		return nil, err
	}
	idx := colIndexMap(schema)
	return func(row engine.Row) bool {
		ctx := &evalCtx{schema: schema, colIdx: idx, row: &row}
		v, err := evalExpr(where, ctx)
		if err != nil {
			errPtr.CompareAndSwap(nil, err)
			return false
		}
		b, ok := v.(bool)
		if !ok {
			errPtr.CompareAndSwap(nil, execErrf("WHERE must evaluate to boolean, not %s", valueTypeName(v)))
			return false
		}
		return b
	}, nil
}

// execScanSelect runs a projection scan: SELECT exprs FROM t [WHERE]
// [ORDER BY] [LIMIT]. ORDER BY keys are evaluated against input rows, so
// sorting by non-projected columns works.
func (s *Session) execScanSelect(st *Select, t *engine.Table) (*Result, error) {
	schema := t.Schema()
	idx := colIndexMap(schema)
	// Expand * into column refs.
	var items []SelectItem
	for _, item := range st.Items {
		if item.Star {
			for _, c := range schema {
				items = append(items, SelectItem{Expr: &ColumnRef{Name: c.Name}})
			}
			continue
		}
		if err := checkColumnRefs(item.Expr, schema); err != nil {
			return nil, err
		}
		items = append(items, item)
	}
	cols := make([]string, len(items))
	for i, item := range items {
		cols[i] = outputName(item)
	}
	for _, key := range st.OrderBy {
		if exprHasAgg(key.Expr) {
			return nil, execErrf("aggregate functions in ORDER BY require GROUP BY or an aggregate SELECT list")
		}
		_, isOrd, err := ordinal(key.Expr, len(items))
		if err != nil {
			return nil, err
		}
		if !isOrd {
			if err := checkColumnRefs(key.Expr, schema); err != nil {
				return nil, err
			}
		}
	}
	var predErr atomic.Value
	pred, err := compilePred(st.Where, schema, &predErr)
	if err != nil {
		return nil, err
	}
	// Scan segment-parallel, buffering per segment to keep output
	// deterministic (segment order, row order within a segment).
	nseg := len(t.Segments())
	segRows := make([][][]any, nseg)
	segKeys := make([][][]any, nseg)
	scanErr := s.db.ForEachSegment(t, func(segIdx int, row engine.Row) error {
		if pred != nil && !pred(row) {
			return nil
		}
		ctx := &evalCtx{schema: schema, colIdx: idx, row: &row}
		out := make([]any, len(items))
		for i, item := range items {
			v, err := evalExpr(item.Expr, ctx)
			if err != nil {
				return err
			}
			out[i] = v
		}
		segRows[segIdx] = append(segRows[segIdx], out)
		if len(st.OrderBy) > 0 {
			keys := make([]any, len(st.OrderBy))
			for k, key := range st.OrderBy {
				if ord, isOrd, _ := ordinal(key.Expr, len(items)); isOrd {
					keys[k] = out[ord]
					continue
				}
				v, err := evalExpr(key.Expr, ctx)
				if err != nil {
					return err
				}
				keys[k] = v
			}
			segKeys[segIdx] = append(segKeys[segIdx], keys)
		}
		return nil
	})
	if scanErr != nil {
		return nil, scanErr
	}
	if e := predErr.Load(); e != nil {
		return nil, e.(error)
	}
	var rows, keys [][]any
	for i := 0; i < nseg; i++ {
		rows = append(rows, segRows[i]...)
		keys = append(keys, segKeys[i]...)
	}
	if len(st.OrderBy) > 0 {
		desc := make([]bool, len(st.OrderBy))
		for i, k := range st.OrderBy {
			desc[i] = k.Desc
		}
		if err := sortRows(rows, keys, desc); err != nil {
			return nil, err
		}
	}
	rows = applyLimit(rows, st.Limit)
	return &Result{Cols: cols, Rows: rows, Tag: fmt.Sprintf("SELECT %d", len(rows))}, nil
}

// ordinal recognizes ORDER BY position literals. A bare integer literal
// is an ordinal: in range it selects output column v-1, out of range it
// is an error (not a constant sort key).
func ordinal(e Expr, n int) (idx int, isOrdinal bool, err error) {
	l, ok := e.(*Literal)
	if !ok {
		return 0, false, nil
	}
	v, ok := l.Val.(int64)
	if !ok {
		return 0, false, nil
	}
	if v < 1 || int(v) > n {
		return 0, true, execErrf("ORDER BY position %d is not in select list", v)
	}
	return int(v) - 1, true, nil
}

func applyLimit(rows [][]any, limit int64) [][]any {
	if limit >= 0 && int64(len(rows)) > limit {
		return rows[:limit]
	}
	return rows
}

// execAggSelect runs an aggregate query, with or without GROUP BY, as a
// single two-phase parallel aggregate over the table (§3.1.1).
func (s *Session) execAggSelect(st *Select, t *engine.Table) (*Result, error) {
	schema := t.Schema()
	// Resolve GROUP BY columns.
	groupIdx := make([]int, len(st.GroupBy))
	for i, name := range st.GroupBy {
		ci := schema.Index(name)
		if ci < 0 {
			return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, name)
		}
		groupIdx[i] = ci
	}
	grouped := map[string]bool{}
	for _, name := range st.GroupBy {
		grouped[name] = true
	}
	// Collect aggregate calls across SELECT list and ORDER BY into slots.
	slotOf := map[*FuncCall]int{}
	var slotAggs []engine.Aggregate
	addSlots := func(e Expr) error {
		if exprHasNestedAgg(e) {
			return execErrf("aggregate calls cannot be nested")
		}
		for _, call := range collectAggCalls(e) {
			if _, done := slotOf[call]; done {
				continue
			}
			agg, err := buildAggregate(call, schema)
			if err != nil {
				return err
			}
			slotOf[call] = len(slotAggs)
			slotAggs = append(slotAggs, agg)
		}
		return nil
	}
	for _, item := range st.Items {
		if item.Star {
			return nil, execErrf("SELECT * cannot be combined with aggregate functions")
		}
		if err := addSlots(item.Expr); err != nil {
			return nil, err
		}
		// Bare column refs outside aggregates must be grouped.
		var badCol error
		walkAgg(item.Expr, func(e Expr, inAgg bool) {
			if cr, ok := e.(*ColumnRef); ok && !inAgg && !grouped[cr.Name] && badCol == nil {
				badCol = execErrf("column %q must appear in the GROUP BY clause or be used in an aggregate function", cr.Name)
			}
		})
		if badCol != nil {
			return nil, badCol
		}
	}
	outNames := make([]string, len(st.Items))
	for i, item := range st.Items {
		outNames[i] = outputName(item)
	}
	for _, key := range st.OrderBy {
		_, isOrd, err := ordinal(key.Expr, len(st.Items))
		if err != nil {
			return nil, err
		}
		if isOrd {
			continue
		}
		if err := addSlots(key.Expr); err != nil {
			return nil, err
		}
	}
	var predErr atomic.Value
	pred, err := compilePred(st.Where, schema, &predErr)
	if err != nil {
		return nil, err
	}
	multi := &multiAggregate{aggs: slotAggs, groupIdx: groupIdx, schema: schema}
	outCols := map[string]int{}
	for i, n := range outNames {
		outCols[n] = i
	}

	// evaluate one group's output row from its finalized slot values.
	evalGroup := func(ms *multiState) ([]any, []any, error) {
		groupVals := make(map[string]any, len(st.GroupBy))
		for i, name := range st.GroupBy {
			groupVals[name] = ms.keyVals[i]
		}
		ctx := &evalCtx{slotOf: slotOf, slotVals: ms.slots, groupVals: groupVals}
		row := make([]any, len(st.Items))
		for i, item := range st.Items {
			v, err := evalExpr(item.Expr, ctx)
			if err != nil {
				return nil, nil, err
			}
			row[i] = v
		}
		var keys []any
		if len(st.OrderBy) > 0 {
			keys = make([]any, len(st.OrderBy))
			for k, key := range st.OrderBy {
				if ord, isOrd, _ := ordinal(key.Expr, len(row)); isOrd {
					keys[k] = row[ord]
					continue
				}
				kctx := &evalCtx{slotOf: slotOf, slotVals: ms.slots, groupVals: groupVals, outCols: outCols, outVals: row}
				v, err := evalExpr(key.Expr, kctx)
				if err != nil {
					return nil, nil, err
				}
				keys[k] = v
			}
		}
		return row, keys, nil
	}

	var rows, keys [][]any
	if len(st.GroupBy) == 0 {
		var v any
		if pred == nil {
			v, err = s.db.Run(t, multi)
		} else {
			v, err = s.db.RunFiltered(t, pred, multi)
		}
		if err != nil {
			return nil, err
		}
		if e := predErr.Load(); e != nil {
			return nil, e.(error)
		}
		row, kv, err := evalGroup(v.(*multiState))
		if err != nil {
			return nil, err
		}
		rows, keys = [][]any{row}, [][]any{kv}
	} else {
		keyFn := func(row engine.Row) string {
			// Length-prefix each rendered value so the composite key is
			// injective even when values contain the separator.
			var b strings.Builder
			for _, gi := range groupIdx {
				v := FormatValue(rowValue(schema, &row, gi))
				fmt.Fprintf(&b, "%d:", len(v))
				b.WriteString(v)
			}
			return b.String()
		}
		groups, err := s.db.RunGroupByFiltered(t, pred, keyFn, multi)
		if err != nil {
			return nil, err
		}
		if e := predErr.Load(); e != nil {
			return nil, e.(error)
		}
		// Deterministic default order: sort by the rendered group key.
		names := make([]string, 0, len(groups))
		for k := range groups {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			row, kv, err := evalGroup(groups[k].(*multiState))
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
			keys = append(keys, kv)
		}
	}
	if len(st.OrderBy) > 0 {
		desc := make([]bool, len(st.OrderBy))
		for i, k := range st.OrderBy {
			desc[i] = k.Desc
		}
		if err := sortRows(rows, keys, desc); err != nil {
			return nil, err
		}
	}
	rows = applyLimit(rows, st.Limit)
	return &Result{Cols: outNames, Rows: rows, Tag: fmt.Sprintf("SELECT %d", len(rows))}, nil
}

// inferKind statically types an expression against a schema, for staging
// computed madlib arguments into a temp-table column.
func inferKind(e Expr, schema engine.Schema) (engine.Kind, error) {
	switch x := e.(type) {
	case *Literal:
		switch x.Val.(type) {
		case int64:
			return engine.Int, nil
		case float64:
			return engine.Float, nil
		case string:
			return engine.String, nil
		case bool:
			return engine.Bool, nil
		}
	case *ArrayLit:
		return engine.Vector, nil
	case *ColumnRef:
		ci := schema.Index(x.Name)
		if ci < 0 {
			return 0, fmt.Errorf("%w: %q", engine.ErrNoColumn, x.Name)
		}
		return schema[ci].Kind, nil
	case *Unary:
		if x.Op == "NOT" {
			return engine.Bool, nil
		}
		return inferKind(x.X, schema)
	case *Binary:
		switch x.Op {
		case "AND", "OR", "=", "<>", "<", "<=", ">", ">=":
			return engine.Bool, nil
		}
		lk, err := inferKind(x.L, schema)
		if err != nil {
			return 0, err
		}
		rk, err := inferKind(x.R, schema)
		if err != nil {
			return 0, err
		}
		if lk == engine.Int && rk == engine.Int {
			return engine.Int, nil
		}
		return engine.Float, nil
	case *FuncCall:
		switch x.Name {
		case "sqrt", "exp", "ln", "floor", "ceil", "pow", "power", "array_get":
			return engine.Float, nil
		case "length", "array_length":
			return engine.Int, nil
		case "abs":
			if len(x.Args) == 1 {
				return inferKind(x.Args[0], schema)
			}
		}
	}
	return 0, execErrf("cannot infer the type of %s", e.String())
}

// execTableValued runs SELECT (madlib.fn(...)).* FROM t [WHERE ...]. A
// WHERE clause or a computed argument (e.g. linregr(y, array[1, x0, x1])
// over scalar columns) stages the rows through a temporary table first —
// the same pattern the paper's driver functions use (§3.1.2).
func (s *Session) execTableValued(st *Select, t *engine.Table, call *FuncCall) (*Result, error) {
	if len(st.GroupBy) > 0 {
		return nil, execErrf("GROUP BY cannot be combined with table-valued madlib functions")
	}
	f, _ := core.LookupSQLFunc(call.Name)
	var predErr atomic.Value
	pred, err := compilePred(st.Where, t.Schema(), &predErr)
	if err != nil {
		return nil, err
	}
	// Classify arguments: column references and constants pass through;
	// any other expression becomes a computed staging column.
	type computedArg struct {
		argIdx int
		name   string
		expr   Expr
		kind   engine.Kind
	}
	finalArgs := make([]any, len(call.Args))
	var computed []computedArg
	for i, a := range call.Args {
		if cr, ok := a.(*ColumnRef); ok {
			if t.Schema().Index(cr.Name) < 0 {
				return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, cr.Name)
			}
			finalArgs[i] = core.ColumnArg{Name: cr.Name}
			continue
		}
		if v, err := evalExpr(a, &evalCtx{}); err == nil {
			finalArgs[i] = v
			continue
		}
		if err := checkColumnRefs(a, t.Schema()); err != nil {
			return nil, err
		}
		kind, err := inferKind(a, t.Schema())
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("_arg%d", i+1)
		computed = append(computed, computedArg{argIdx: i, name: name, expr: a, kind: kind})
		finalArgs[i] = core.ColumnArg{Name: name}
	}
	input := t
	switch {
	case len(computed) > 0:
		schema := t.Schema().Clone()
		for _, c := range computed {
			schema = append(schema, engine.Column{Name: c.name, Kind: c.kind})
		}
		staged, err := s.db.CreateTempTable("sql_stage", schema)
		if err != nil {
			return nil, err
		}
		defer func() { _ = s.db.DropTable(staged.Name()) }()
		baseSchema := t.Schema()
		idx := colIndexMap(baseSchema)
		// Evaluate segment-parallel into per-segment buffers (the scan and
		// the expression work dominate), then append sequentially.
		segVals := make([][][]any, len(t.Segments()))
		err = s.db.ForEachSegment(t, func(segIdx int, row engine.Row) error {
			if pred != nil && !pred(row) {
				return nil
			}
			ctx := &evalCtx{schema: baseSchema, colIdx: idx, row: &row}
			vals := make([]any, len(schema))
			for ci := range baseSchema {
				vals[ci] = rowValue(baseSchema, &row, ci)
			}
			for k, c := range computed {
				v, err := evalExpr(c.expr, ctx)
				if err != nil {
					return err
				}
				cv, err := coerceValue(v, c.kind)
				if err != nil {
					return fmt.Errorf("sql: %s argument %d: %w", call.Name, c.argIdx+1, err)
				}
				vals[len(baseSchema)+k] = cv
			}
			segVals[segIdx] = append(segVals[segIdx], vals)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if e := predErr.Load(); e != nil {
			return nil, e.(error)
		}
		for _, seg := range segVals {
			for _, vals := range seg {
				if err := staged.Insert(vals...); err != nil {
					return nil, err
				}
			}
		}
		input = staged
	case st.Where != nil:
		staged, err := s.db.SelectIntoTemp("sql_stage", t, pred, nil)
		if err != nil {
			return nil, err
		}
		if e := predErr.Load(); e != nil {
			_ = s.db.DropTable(staged.Name())
			return nil, e.(error)
		}
		defer func() { _ = s.db.DropTable(staged.Name()) }()
		input = staged
	}
	args := finalArgs
	outSchema, rows, err := f.Invoke(s.db, input, args)
	if err != nil {
		return nil, fmt.Errorf("sql: madlib.%s: %w", call.Name, err)
	}
	cols := make([]string, len(outSchema))
	outCols := map[string]int{}
	for i, c := range outSchema {
		cols[i] = c.Name
		outCols[c.Name] = i
	}
	if len(st.OrderBy) > 0 {
		for _, key := range st.OrderBy {
			if _, _, err := ordinal(key.Expr, len(cols)); err != nil {
				return nil, err
			}
		}
		keys := make([][]any, len(rows))
		for ri, row := range rows {
			keys[ri] = make([]any, len(st.OrderBy))
			for k, key := range st.OrderBy {
				if ord, isOrd, _ := ordinal(key.Expr, len(row)); isOrd {
					keys[ri][k] = row[ord]
					continue
				}
				ctx := &evalCtx{outCols: outCols, outVals: row}
				v, err := evalExpr(key.Expr, ctx)
				if err != nil {
					return nil, err
				}
				keys[ri][k] = v
			}
		}
		desc := make([]bool, len(st.OrderBy))
		for i, k := range st.OrderBy {
			desc[i] = k.Desc
		}
		if err := sortRows(rows, keys, desc); err != nil {
			return nil, err
		}
	}
	rows = applyLimit(rows, st.Limit)
	return &Result{Cols: cols, Rows: rows, Tag: fmt.Sprintf("SELECT %d", len(rows))}, nil
}
