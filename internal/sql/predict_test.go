package sql

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"madlib/internal/engine"
)

// newPredictDB builds a feature table with unrolled scalar feature
// columns (plus the vector column the trainers consume) spread over
// enough segments that batch scoring runs morsel-parallel.
func newPredictDB(t testing.TB, rows int) *engine.DB {
	t.Helper()
	db := engine.Open(4)
	tbl, err := db.CreateTable("pts", engine.Schema{
		{Name: "id", Kind: engine.Int},
		{Name: "y", Kind: engine.Float},
		{Name: "x", Kind: engine.Vector},
		{Name: "x1", Kind: engine.Float},
		{Name: "x2", Kind: engine.Float},
		{Name: "x3", Kind: engine.Float},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < rows; i++ {
		x1 := rng.NormFloat64()
		x2 := rng.NormFloat64()
		x3 := rng.NormFloat64()
		// Draw labels from the logistic probability so the classes
		// overlap — perfectly separable data makes IRLS diverge.
		y := 0.0
		if rng.Float64() < 1.0/(1.0+math.Exp(-(x1+2*x2-x3))) {
			y = 1.0
		}
		if err := tbl.Insert(int64(i), y, []float64{x1, x2, x3}, x1, x2, x3); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func trainModel(t testing.TB, s *Session, stmt string) {
	t.Helper()
	if _, err := s.Query(stmt); err != nil {
		t.Fatalf("train %s: %v", stmt, err)
	}
}

// TestPredictBatchRowParity scores the same table on both lanes under
// GOMAXPROCS=4 and demands bit-identical results: the batch kernel
// accumulates coef[i]*feature_i in the row lane's argument order and
// applies the same link function, so not even the last ulp may differ.
func TestPredictBatchRowParity(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	db := newPredictDB(t, 4000)
	batchSess := NewSession(db)
	rowSess := NewSession(db)
	rowSess.SetBatchExecution(false)
	trainModel(t, batchSess, `SELECT (madlib.logregr('lm', y, x)).* FROM pts`)
	trainModel(t, batchSess, `SELECT (madlib.linregr('lin', y, x)).* FROM pts`)
	trainModel(t, batchSess, `SELECT (madlib.svm('sv', y, x)).* FROM pts`)
	trainModel(t, batchSess, `SELECT (madlib.sgd_train('sg', 'logistic', y, x, 3, 0.1, 42)).* FROM pts`)

	queries := []string{
		`SELECT id, madlib.predict('lm', x1, x2, x3) FROM pts ORDER BY id`,
		`SELECT id, madlib.predict('lin', x1, x2, x3) FROM pts ORDER BY id`,
		`SELECT id, madlib.predict('sv', x1, x2, x3) FROM pts ORDER BY id`,
		`SELECT id, madlib.predict('sg', x1, x2, x3) FROM pts ORDER BY id`,
		// predict inside WHERE and aggregates, and over expressions.
		`SELECT count(*) FROM pts WHERE madlib.predict('lm', x1, x2, x3) > 0.5`,
		`SELECT sum(madlib.predict('lin', x1, x2, x3)) FROM pts`,
		`SELECT avg(madlib.predict('lm', x1 * 2, x2 - 1, abs(x3))) FROM pts`,
	}
	for _, q := range queries {
		br, err := batchSess.Query(q)
		if err != nil {
			t.Fatalf("batch %s: %v", q, err)
		}
		rr, err := rowSess.Query(q)
		if err != nil {
			t.Fatalf("row %s: %v", q, err)
		}
		if len(br.Rows) != len(rr.Rows) {
			t.Fatalf("%s: batch %d rows, row %d rows", q, len(br.Rows), len(rr.Rows))
		}
		for i := range br.Rows {
			for j := range br.Rows[i] {
				bv, rv := br.Rows[i][j], rr.Rows[i][j]
				bf, bok := bv.(float64)
				rf, rok := rv.(float64)
				if bok && rok {
					if math.Float64bits(bf) != math.Float64bits(rf) {
						t.Fatalf("%s row %d col %d: batch %v (%x) vs row %v (%x)",
							q, i, j, bf, math.Float64bits(bf), rf, math.Float64bits(rf))
					}
					continue
				}
				if fmt.Sprint(bv) != fmt.Sprint(rv) {
					t.Fatalf("%s row %d col %d: batch %v vs row %v", q, i, j, bv, rv)
				}
			}
		}
	}
}

// TestPredictScoresMatchModel checks the scores against a hand-computed
// dot product + sigmoid of the persisted coefficients.
func TestPredictScoresMatchModel(t *testing.T) {
	db := newPredictDB(t, 500)
	s := NewSession(db)
	trainModel(t, s, `SELECT (madlib.logregr('m', y, x)).* FROM pts`)
	coefRes, err := s.Query(`SELECT coef FROM madlib_models WHERE name = 'm'`)
	if err != nil || len(coefRes.Rows) != 1 {
		t.Fatalf("model row: %v %v", coefRes, err)
	}
	coef := coefRes.Rows[0][0].([]float64)
	res, err := s.Query(`SELECT x1, x2, x3, madlib.predict('m', x1, x2, x3) FROM pts ORDER BY id LIMIT 50`)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Rows {
		z := coef[0]*row[0].(float64) + coef[1]*row[1].(float64) + coef[2]*row[2].(float64)
		want := 1.0 / (1.0 + math.Exp(-z))
		if got := row[3].(float64); math.Abs(got-want) > 1e-12 {
			t.Fatalf("row %d: predict = %v, want %v", i, got, want)
		}
	}
}

// TestPredictPlanInvalidation retrains a model under the same name and
// checks that a cached plan (same query text) picks up the new
// coefficients on its next execution — the table-version protocol
// extended to models.
func TestPredictPlanInvalidation(t *testing.T) {
	db := newPredictDB(t, 300)
	s := NewSession(db)
	trainModel(t, s, `SELECT (madlib.logregr('m', y, x)).* FROM pts`)
	q := `SELECT sum(madlib.predict('m', x1, x2, x3)) FROM pts`
	before, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Cached execution while the model is unchanged must reuse the plan.
	hits0 := db.Metrics().Counter("sql_plan_cache_hits").Value()
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	if db.Metrics().Counter("sql_plan_cache_hits").Value() == hits0 {
		t.Fatalf("second execution did not hit the plan cache")
	}
	// Overwrite with a different trainer: scores must change.
	trainModel(t, s, `SELECT (madlib.linregr('m', y, x)).* FROM pts`)
	after, err := s.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b := before.Rows[0][0].(float64)
	a := after.Rows[0][0].(float64)
	if math.Float64bits(a) == math.Float64bits(b) {
		t.Fatalf("cached plan kept stale model: before %v after %v", b, a)
	}
	// A prepared statement revalidates the same way.
	if _, err := s.Exec(`PREPARE sc AS SELECT sum(madlib.predict('m', x1, x2, x3)) FROM pts`); err != nil {
		t.Fatal(err)
	}
	p1, err := s.Query(`EXECUTE sc`)
	if err != nil {
		t.Fatal(err)
	}
	trainModel(t, s, `SELECT (madlib.svm('m', y, x)).* FROM pts`)
	p2, err := s.Query(`EXECUTE sc`)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(p1.Rows[0][0].(float64)) == math.Float64bits(p2.Rows[0][0].(float64)) {
		t.Fatalf("prepared plan kept stale model")
	}
}

// TestPredictCTAS materializes scores morsel-parallel into a new table.
func TestPredictCTAS(t *testing.T) {
	db := newPredictDB(t, 400)
	s := NewSession(db)
	trainModel(t, s, `SELECT (madlib.logregr('m', y, x)).* FROM pts`)
	if _, err := s.Exec(`CREATE TABLE scores AS SELECT id, madlib.predict('m', x1, x2, x3) AS p FROM pts`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(`SELECT count(*), min(p), max(p) FROM scores`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 400 {
		t.Fatalf("scores rows = %v", res.Rows[0][0])
	}
	lo, hi := res.Rows[0][1].(float64), res.Rows[0][2].(float64)
	if lo < 0 || hi > 1 || lo >= hi {
		t.Fatalf("sigmoid scores out of range: [%v, %v]", lo, hi)
	}
}

func TestPredictErrors(t *testing.T) {
	db := newPredictDB(t, 100)
	s := NewSession(db)
	cases := []struct{ q, want string }{
		{`SELECT madlib.predict('nope', x1) FROM pts`, `unknown model "nope"`},
		{`SELECT madlib.predict(x1, x2) FROM pts`, "must be a string literal"},
		{`SELECT madlib.predict('m') FROM pts`, "at least one feature"},
		{`SELECT madlib.predict('m', 1, 2)`, "requires a FROM clause"},
	}
	for _, c := range cases {
		if _, err := s.Query(c.q); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want %q", c.q, err, c.want)
		}
	}
	trainModel(t, s, `SELECT (madlib.logregr('m', y, x)).* FROM pts`)
	cases = []struct{ q, want string }{
		{`SELECT madlib.predict('m', x1) FROM pts`, "scores 3 feature(s), got 1"},
		{`SELECT madlib.predict('m', x1, x2, x) FROM pts`, "not numeric"},
		{`PREPARE p1 AS SELECT madlib.predict($1, x1, x2, x3) FROM pts`, "must be a string literal"},
	}
	for _, c := range cases {
		var err error
		if strings.HasPrefix(c.q, "PREPARE") {
			_, err = s.Exec(c.q)
		} else {
			_, err = s.Query(c.q)
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want %q", c.q, err, c.want)
		}
	}
}

// TestPredictMetrics: the predict_rows counter reports rows scored on
// either lane; predict_batches ticks only on the batch lane.
func TestPredictMetrics(t *testing.T) {
	db := newPredictDB(t, 256)
	s := NewSession(db)
	trainModel(t, s, `SELECT (madlib.logregr('m', y, x)).* FROM pts`)
	rows0 := db.Metrics().Counter("predict_rows").Value()
	batches0 := db.Metrics().Counter("predict_batches").Value()
	if _, err := s.Query(`SELECT sum(madlib.predict('m', x1, x2, x3)) FROM pts`); err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics().Counter("predict_rows").Value() - rows0; got != 256 {
		t.Fatalf("predict_rows delta = %d, want 256", got)
	}
	if db.Metrics().Counter("predict_batches").Value() == batches0 {
		t.Fatalf("batch scoring did not tick predict_batches")
	}
	rs := NewSession(db)
	rs.SetBatchExecution(false)
	rows1 := db.Metrics().Counter("predict_rows").Value()
	batches1 := db.Metrics().Counter("predict_batches").Value()
	if _, err := rs.Query(`SELECT sum(madlib.predict('m', x1, x2, x3)) FROM pts`); err != nil {
		t.Fatal(err)
	}
	if got := db.Metrics().Counter("predict_rows").Value() - rows1; got != 256 {
		t.Fatalf("row-lane predict_rows delta = %d, want 256", got)
	}
	if db.Metrics().Counter("predict_batches").Value() != batches1 {
		t.Fatalf("row lane must not tick predict_batches")
	}
}

// TestPredictExplain: EXPLAIN names the frozen model and scoring lane;
// EXPLAIN ANALYZE adds the rows-scored count; the row fallback carries
// its reason.
func TestPredictExplain(t *testing.T) {
	db := newPredictDB(t, 300)
	s := NewSession(db)
	trainModel(t, s, `SELECT (madlib.logregr('m', y, x)).* FROM pts`)
	explain := func(q string) string {
		res, err := s.Query(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		var b strings.Builder
		for _, row := range res.Rows {
			b.WriteString(row[0].(string))
			b.WriteByte('\n')
		}
		return b.String()
	}
	out := explain(`EXPLAIN SELECT id, madlib.predict('m', x1, x2, x3) FROM pts`)
	for _, want := range []string{`predict: model "m" v1 (logregr, 3 features, link=sigmoid)`, "scoring: batch kernel"} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN missing %q:\n%s", want, out)
		}
	}
	out = explain(`EXPLAIN ANALYZE SELECT sum(madlib.predict('m', x1, x2, x3)) FROM pts`)
	if !strings.Contains(out, "rows scored: 300") {
		t.Fatalf("EXPLAIN ANALYZE missing rows scored:\n%s", out)
	}
	// A $n feature has no batch lowering; the reason shows up.
	if _, err := s.Exec(`PREPARE pe AS SELECT madlib.predict('m', x1, x2, $1) FROM pts`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(`EXECUTE pe(0.5)`); err != nil {
		t.Fatal(err)
	}
	rs := NewSession(db)
	rs.SetBatchExecution(false)
	res, err := rs.Query(`EXPLAIN SELECT madlib.predict('m', x1, x2, x3) FROM pts`)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, row := range res.Rows {
		b.WriteString(row[0].(string) + "\n")
	}
	if !strings.Contains(b.String(), "scoring: row fallback") {
		t.Fatalf("row-lane EXPLAIN missing fallback line:\n%s", b.String())
	}
}

// TestPredictOverJoin scores features coming through a join, including
// the NULL-padded side of a LEFT JOIN (NULL feature in, NULL score out).
func TestPredictOverJoin(t *testing.T) {
	db := newPredictDB(t, 200)
	s := NewSession(db)
	trainModel(t, s, `SELECT (madlib.logregr('m', y, x)).* FROM pts`)
	if _, err := s.Exec(`CREATE TABLE extra AS SELECT id, x1 AS e1 FROM pts WHERE id < 100`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query(`SELECT count(*) FROM pts JOIN extra ON pts.id = extra.id WHERE madlib.predict('m', e1, x2, x3) >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 100 {
		t.Fatalf("join predicted rows = %v, want 100", res.Rows[0][0])
	}
	// LEFT JOIN: unmatched rows have NULL e1, so the score is NULL and
	// NULL >= 0 is not true.
	left, err := s.Query(`SELECT madlib.predict('m', e1, x2, x3) AS sc FROM pts LEFT JOIN extra ON pts.id = extra.id ORDER BY pts.id`)
	if err != nil {
		t.Fatal(err)
	}
	nulls := 0
	for _, row := range left.Rows {
		if row[0] == nil {
			nulls++
		}
	}
	if nulls != 100 {
		t.Fatalf("LEFT JOIN NULL scores = %d, want 100", nulls)
	}
}
