package sql

import (
	"errors"
	"math"
	"strings"
	"testing"

	"madlib/internal/engine"
)

// compileFor parses a single scalar expression and compiles it against
// the schema.
func compileFor(t *testing.T, schema engine.Schema, expr string) *compiled {
	t.Helper()
	st, err := ParseStatement("SELECT " + expr)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	c, err := compileExpr(st.(*Select).Items[0].Expr, newCompileCtx(schema))
	if err != nil {
		t.Fatalf("compile %q: %v", expr, err)
	}
	return c
}

// evalOn evaluates a compiled expression over the first row of a
// single-segment table built from schema+values.
func evalOn(t *testing.T, schema engine.Schema, vals []any, expr string, env *execEnv) (any, error) {
	t.Helper()
	db := engine.Open(1)
	tbl, err := db.CreateTable("c", schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(vals...); err != nil {
		t.Fatal(err)
	}
	c := compileFor(t, schema, expr)
	var out any
	var evalErr error
	err = db.ForEachSegment(tbl, func(_ int, row engine.Row) error {
		out, evalErr = c.a(row, env)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("c"); err != nil {
		t.Fatal(err)
	}
	return out, evalErr
}

func TestCompileTypedFastPaths(t *testing.T) {
	schema := engine.Schema{
		{Name: "f", Kind: engine.Float},
		{Name: "i", Kind: engine.Int},
		{Name: "s", Kind: engine.String},
		{Name: "b", Kind: engine.Bool},
		{Name: "v", Kind: engine.Vector},
	}
	vals := []any{2.5, int64(7), "hi", true, []float64{1, 2, 3}}
	cases := []struct {
		expr string
		kind ckind
		want any
	}{
		{"f", ckFloat, 2.5},
		{"i", ckInt, int64(7)},
		{"s", ckStr, "hi"},
		{"b", ckBool, true},
		{"f * 2 + 1", ckFloat, 6.0},
		{"i * 2 + 1", ckInt, int64(15)},
		{"i + f", ckFloat, 9.5},
		{"i / 2", ckInt, int64(3)},
		{"i % 4", ckInt, int64(3)},
		{"-f", ckFloat, -2.5},
		{"-i", ckInt, int64(-7)},
		{"f > 2", ckBool, true},
		{"i <= 6", ckBool, false},
		{"s = 'hi'", ckBool, true},
		{"s < 'ha'", ckBool, false},
		{"b AND f > 0", ckBool, true},
		{"NOT b", ckBool, false},
		{"f > 100 OR i = 7", ckBool, true},
		{"abs(-3)", ckInt, int64(3)},
		{"abs(f - 10)", ckFloat, 7.5},
		{"sqrt(f + 6.5)", ckFloat, 3.0},
		{"pow(i, 2)", ckFloat, 49.0},
		{"length(s)", ckInt, int64(2)},
		{"array_length(v)", ckInt, int64(3)},
		{"array_get(v, 2)", ckFloat, 2.0},
		{"{1, f, i}", ckVec, []float64{1, 2.5, 7}},
		{"i % 2 = 1 AND f < 3", ckBool, true},
	}
	for _, tc := range cases {
		c := compileFor(t, schema, tc.expr)
		if c.kind != tc.kind {
			t.Errorf("%q: kind = %v, want %v", tc.expr, c.kind, tc.kind)
		}
		got, err := evalOn(t, schema, vals, tc.expr, nil)
		if err != nil {
			t.Errorf("%q: eval: %v", tc.expr, err)
			continue
		}
		switch want := tc.want.(type) {
		case []float64:
			gv, ok := got.([]float64)
			if !ok || len(gv) != len(want) {
				t.Errorf("%q = %#v, want %#v", tc.expr, got, want)
				continue
			}
			for i := range want {
				if gv[i] != want[i] {
					t.Errorf("%q[%d] = %v, want %v", tc.expr, i, gv[i], want[i])
				}
			}
		default:
			if got != tc.want {
				t.Errorf("%q = %#v (%T), want %#v", tc.expr, got, got, tc.want)
			}
		}
	}
}

// TestCompileMatchesInterpreter cross-checks the compiled engine against
// the tree-walking interpreter on the same rows, so the two evaluation
// paths cannot drift.
func TestCompileMatchesInterpreter(t *testing.T) {
	schema := engine.Schema{
		{Name: "f", Kind: engine.Float},
		{Name: "i", Kind: engine.Int},
		{Name: "s", Kind: engine.String},
	}
	vals := []any{-1.25, int64(-3), "x"}
	exprs := []string{
		"f + i", "f - i * 2", "f / 0.5", "i % 2", "abs(i)", "abs(f)",
		"floor(f)", "ceil(f)", "exp(0)", "f < i", "f <> i", "s >= 'w'",
		"-f + -i", "NOT (f > i)", "(f + 1) * (i - 1)",
	}
	idx := colIndexMap(schema)
	for _, e := range exprs {
		got, gotErr := evalOn(t, schema, vals, e, nil)
		st, err := ParseStatement("SELECT " + e)
		if err != nil {
			t.Fatal(err)
		}
		expr := st.(*Select).Items[0].Expr
		db := engine.Open(1)
		tbl, _ := db.CreateTable("x", schema)
		if err := tbl.Insert(vals...); err != nil {
			t.Fatal(err)
		}
		var want any
		var wantErr error
		_ = db.ForEachSegment(tbl, func(_ int, row engine.Row) error {
			want, wantErr = evalExpr(expr, &evalCtx{schema: schema, colIdx: idx, row: &row})
			return nil
		})
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("%q: compiled err %v, interpreted err %v", e, gotErr, wantErr)
			continue
		}
		if got != want {
			t.Errorf("%q: compiled %#v, interpreted %#v", e, got, want)
		}
	}
}

// TestArithEdgeCases pins down the integer/float arithmetic edge cases:
// division by zero and modulo by zero must be clean SQL errors (never
// panics) through both the constant interpreter and the compiled per-row
// path.
func TestArithEdgeCases(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE az (i bigint, f float);
		INSERT INTO az VALUES (0, 0), (2, 0.5)`)
	for _, q := range []string{
		// Constant folding path.
		`SELECT 1 / 0`,
		`SELECT 1 % 0`,
		`SELECT 1.5 / 0`,
		`SELECT 2.5 % 0`,
		`SELECT 1 / (2 - 2)`,
		// Compiled per-row paths (int and float lanes).
		`SELECT 10 / i FROM az`,
		`SELECT 10 % i FROM az`,
		`SELECT 10.0 / f FROM az`,
		`SELECT 10.5 % f FROM az`,
		// Inside WHERE and aggregate arguments.
		`SELECT i FROM az WHERE 1 / i > 0`,
		`SELECT sum(10 / i) FROM az`,
		`SELECT count(1 % i) FROM az`,
	} {
		_, err := s.Exec(q)
		if err == nil || !strings.Contains(err.Error(), "division by zero") {
			t.Errorf("%q: err = %v, want division by zero", q, err)
		}
	}
	// Non-zero divisors work on the same lanes, including float modulo.
	r := mustQuery(t, s, `SELECT 7 % 2, 7.5 % 2, -7 / 2 FROM az WHERE i = 2`)
	if r.Rows[0][0] != int64(1) || r.Rows[0][1] != 1.5 || r.Rows[0][2] != int64(-3) {
		t.Fatalf("arith row = %v", r.Rows[0])
	}
	// MinInt64 / -1 wraps (two's complement), it must not panic.
	if got, err := evalArith("/", int64(math.MinInt64), int64(-1)); err != nil || got != int64(math.MinInt64) {
		t.Fatalf("MinInt64 / -1 = %v, %v", got, err)
	}
}

func TestMinMaxIntPrecision(t *testing.T) {
	// min/max over BIGINT must stay in int64: a float64 round-trip loses
	// precision above 2^53 and overflows at 2^63-1.
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE big (c bigint)`)
	tbl, _ := s.DB().Table("big")
	for _, v := range []int64{math.MaxInt64, 5, math.MinInt64, 9007199254740993, 9007199254740992} {
		if err := tbl.Insert(v); err != nil {
			t.Fatal(err)
		}
	}
	r := mustQuery(t, s, `SELECT max(c), min(c) FROM big`)
	if r.Rows[0][0] != int64(math.MaxInt64) {
		t.Fatalf("max = %v, want MaxInt64", r.Rows[0][0])
	}
	if r.Rows[0][1] != int64(math.MinInt64) {
		t.Fatalf("min = %v, want MinInt64", r.Rows[0][1])
	}
	mustExec(t, s, `CREATE TABLE p53 (c bigint);
		INSERT INTO p53 VALUES (9007199254740993), (9007199254740992)`)
	r = mustQuery(t, s, `SELECT max(c) FROM p53`)
	if r.Rows[0][0] != int64(9007199254740993) {
		t.Fatalf("max above 2^53 = %v, want 9007199254740993", r.Rows[0][0])
	}
}

func TestCompileParams(t *testing.T) {
	schema := engine.Schema{{Name: "f", Kind: engine.Float}}
	env := &execEnv{params: []any{10.0, "txt"}}
	got, err := evalOn(t, schema, []any{4.0}, "f + $1", env)
	if err != nil || got != 14.0 {
		t.Fatalf("f + $1 = %v, %v", got, err)
	}
	got, err = evalOn(t, schema, []any{4.0}, "f > $1", env)
	if err != nil || got != false {
		t.Fatalf("f > $1 = %v, %v", got, err)
	}
	if _, err = evalOn(t, schema, []any{4.0}, "f + $2", env); err == nil ||
		!strings.Contains(err.Error(), "does not apply") {
		t.Fatalf("f + $2 (text param): %v", err)
	}
	if _, err = evalOn(t, schema, []any{4.0}, "f + $3", env); err == nil ||
		!strings.Contains(err.Error(), "no parameter $3") {
		t.Fatalf("missing param: %v", err)
	}
}

func TestCompileErrors(t *testing.T) {
	schema := engine.Schema{
		{Name: "f", Kind: engine.Float},
		{Name: "s", Kind: engine.String},
	}
	cc := newCompileCtx(schema)
	for _, tc := range []struct{ expr, want string }{
		{"nope", "no such column"},
		{"f + s", "does not apply"},
		{"f = s", "cannot compare"},
		{"NOT f", "must be boolean"},
		{"f AND s = 'x'", "must be boolean"},
		{"-s", "cannot negate"},
		{"frobnicate(f)", "unknown function"},
		{"sqrt(s)", "not numeric"},
		{"length(f)", "must be text or array"},
		{"avg(f)", "not allowed here"},
	} {
		st, err := ParseStatement("SELECT " + tc.expr)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.expr, err)
		}
		_, err = compileExpr(st.(*Select).Items[0].Expr, cc)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("compile %q: err = %v, want %q", tc.expr, err, tc.want)
		}
	}
	st, _ := ParseStatement("SELECT nope")
	_, err := compileExpr(st.(*Select).Items[0].Expr, cc)
	if !errors.Is(err, engine.ErrNoColumn) {
		t.Fatalf("unknown column should wrap ErrNoColumn: %v", err)
	}
}

func TestStmtMaxParam(t *testing.T) {
	for _, tc := range []struct {
		sql  string
		want int
	}{
		{`SELECT 1`, 0},
		{`SELECT $1 + $2`, 2},
		{`SELECT v FROM t WHERE v > $3`, 3},
		{`SELECT sum(v * $2) FROM t ORDER BY $1 + 0`, 2},
		{`INSERT INTO t VALUES ($1, $4)`, 4},
	} {
		st, err := ParseStatement(tc.sql)
		if err != nil {
			t.Fatalf("parse %q: %v", tc.sql, err)
		}
		if got := stmtMaxParam(st); got != tc.want {
			t.Errorf("%q: max param = %d, want %d", tc.sql, got, tc.want)
		}
	}
}
