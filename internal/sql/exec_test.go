package sql

import (
	"errors"
	"math"
	"strings"
	"testing"

	"madlib/internal/engine"
)

func newSession(t *testing.T) *Session {
	t.Helper()
	return NewSession(engine.Open(4))
}

func mustExec(t *testing.T, s *Session, text string) []*Result {
	t.Helper()
	rs, err := s.Exec(text)
	if err != nil {
		t.Fatalf("exec %q: %v", text, err)
	}
	return rs
}

func mustQuery(t *testing.T, s *Session, text string) *Result {
	t.Helper()
	r, err := s.Query(text)
	if err != nil {
		t.Fatalf("query %q: %v", text, err)
	}
	return r
}

func TestExecCreateInsertDrop(t *testing.T) {
	s := newSession(t)
	rs := mustExec(t, s, `
		CREATE TABLE t (g text, v double precision, x double precision[]);
		INSERT INTO t VALUES ('a', 1, {1,2}), ('a', 2, {3,4}), ('b', 6, {5,6});
	`)
	if rs[0].Tag != "CREATE TABLE" || rs[1].Tag != "INSERT 0 3" {
		t.Fatalf("tags = %q, %q", rs[0].Tag, rs[1].Tag)
	}
	tbl, err := s.DB().Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Count() != 3 {
		t.Fatalf("rows = %d", tbl.Count())
	}
	mustExec(t, s, `DROP TABLE t`)
	if _, err := s.DB().Table("t"); !errors.Is(err, engine.ErrNoTable) {
		t.Fatalf("table not dropped: %v", err)
	}
	// IF EXISTS / IF NOT EXISTS are idempotent.
	mustExec(t, s, `DROP TABLE IF EXISTS t`)
	mustExec(t, s, `CREATE TABLE u (v float)`)
	mustExec(t, s, `CREATE TABLE IF NOT EXISTS u (v float)`)
	if _, err := s.Exec(`CREATE TABLE u (v float)`); !errors.Is(err, engine.ErrTableExists) {
		t.Fatalf("duplicate create: %v", err)
	}
}

func TestExecInsertColumnOrderAndCoercion(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (a bigint, b float, c bool)`)
	mustExec(t, s, `INSERT INTO t (c, a, b) VALUES (true, 7, 2)`)
	r := mustQuery(t, s, `SELECT a, b, c FROM t`)
	row := r.Rows[0]
	if row[0] != int64(7) || row[1] != 2.0 || row[2] != true {
		t.Fatalf("row = %#v", row)
	}
	// Missing columns are an error: the engine has no defaults.
	if _, err := s.Exec(`INSERT INTO t (a) VALUES (1)`); err == nil {
		t.Fatal("partial column list should fail")
	}
	// Type mismatch.
	if _, err := s.Exec(`INSERT INTO t VALUES ('x', 1, true)`); !errors.Is(err, engine.ErrType) {
		t.Fatalf("type mismatch: %v", err)
	}
	// Wrong arity.
	if _, err := s.Exec(`INSERT INTO t VALUES (1, 2)`); !errors.Is(err, engine.ErrArity) {
		t.Fatalf("arity: %v", err)
	}
}

func TestExecScanWhereOrderLimit(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE t (name text, v float);
		INSERT INTO t VALUES ('d', 4), ('a', 1), ('c', 3), ('b', 2);
	`)
	r := mustQuery(t, s, `SELECT name, v * 10 AS v10 FROM t WHERE v >= 2 ORDER BY v DESC LIMIT 2`)
	if len(r.Cols) != 2 || r.Cols[0] != "name" || r.Cols[1] != "v10" {
		t.Fatalf("cols = %v", r.Cols)
	}
	if len(r.Rows) != 2 || r.Rows[0][0] != "d" || r.Rows[1][0] != "c" {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][1] != 40.0 {
		t.Fatalf("computed col = %v", r.Rows[0][1])
	}
	// ORDER BY a non-projected column, ascending.
	r = mustQuery(t, s, `SELECT name FROM t ORDER BY v`)
	if r.Rows[0][0] != "a" || r.Rows[3][0] != "d" {
		t.Fatalf("order by hidden col: %v", r.Rows)
	}
	// Ordinal ORDER BY.
	r = mustQuery(t, s, `SELECT name FROM t ORDER BY 1 DESC`)
	if r.Rows[0][0] != "d" {
		t.Fatalf("ordinal order: %v", r.Rows)
	}
}

func TestExecStarAndArithmetic(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE t (a bigint, b bigint);
		INSERT INTO t VALUES (7, 2);
	`)
	r := mustQuery(t, s, `SELECT *, a / b, a % b, a + b * 2 FROM t`)
	row := r.Rows[0]
	if row[0] != int64(7) || row[1] != int64(2) {
		t.Fatalf("star expansion = %v", row)
	}
	if row[2] != int64(3) || row[3] != int64(1) || row[4] != int64(11) {
		t.Fatalf("int arithmetic = %v", row)
	}
	r = mustQuery(t, s, `SELECT 1 + 2.5, sqrt(16), abs(-3)`)
	if r.Rows[0][0] != 3.5 || r.Rows[0][1] != 4.0 || r.Rows[0][2] != int64(3) {
		t.Fatalf("const exprs = %v", r.Rows[0])
	}
}

func TestExecAggregatesWholeTable(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE t (v float);
		INSERT INTO t VALUES (1), (2), (3), (4);
	`)
	r := mustQuery(t, s, `SELECT count(*), sum(v), avg(v), min(v), max(v) FROM t`)
	row := r.Rows[0]
	if row[0] != int64(4) || row[1] != 10.0 || row[2] != 2.5 || row[3] != 1.0 || row[4] != 4.0 {
		t.Fatalf("aggregates = %v", row)
	}
	// Aggregate of an expression, and expression over an aggregate.
	r = mustQuery(t, s, `SELECT avg(v * 2) + 1 FROM t`)
	if r.Rows[0][0] != 6.0 {
		t.Fatalf("avg(v*2)+1 = %v", r.Rows[0][0])
	}
	// WHERE before aggregation.
	r = mustQuery(t, s, `SELECT count(*) FROM t WHERE v > 2`)
	if r.Rows[0][0] != int64(2) {
		t.Fatalf("filtered count = %v", r.Rows[0][0])
	}
	// variance/stddev.
	r = mustQuery(t, s, `SELECT variance(v), stddev(v) FROM t`)
	wantVar := 5.0 / 3.0
	if math.Abs(r.Rows[0][0].(float64)-wantVar) > 1e-12 {
		t.Fatalf("variance = %v", r.Rows[0][0])
	}
	if math.Abs(r.Rows[0][1].(float64)-math.Sqrt(wantVar)) > 1e-12 {
		t.Fatalf("stddev = %v", r.Rows[0][1])
	}
}

func TestExecGroupBy(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE t (g text, v float);
		INSERT INTO t VALUES ('a', 1), ('a', 3), ('b', 10), ('b', 30), ('c', 5);
	`)
	r := mustQuery(t, s, `SELECT g, avg(v), count(*) FROM t GROUP BY g`)
	if len(r.Rows) != 3 {
		t.Fatalf("groups = %v", r.Rows)
	}
	// Default order: sorted by group key.
	want := map[string]float64{"a": 2, "b": 20, "c": 5}
	for _, row := range r.Rows {
		g := row[0].(string)
		if row[1] != want[g] {
			t.Fatalf("group %q avg = %v, want %v", g, row[1], want[g])
		}
	}
	if r.Rows[0][0] != "a" || r.Rows[2][0] != "c" {
		t.Fatalf("group order = %v", r.Rows)
	}
	// WHERE removes groups entirely when all their rows are filtered.
	r = mustQuery(t, s, `SELECT g, count(*) FROM t WHERE v >= 10 GROUP BY g`)
	if len(r.Rows) != 1 || r.Rows[0][0] != "b" || r.Rows[0][1] != int64(2) {
		t.Fatalf("filtered groups = %v", r.Rows)
	}
	// ORDER BY an aggregate, descending.
	r = mustQuery(t, s, `SELECT g FROM t GROUP BY g ORDER BY sum(v) DESC`)
	if r.Rows[0][0] != "b" || r.Rows[2][0] != "a" {
		t.Fatalf("order by sum = %v", r.Rows)
	}
	// Ungrouped bare column is rejected.
	if _, err := s.Exec(`SELECT v FROM t GROUP BY g`); err == nil ||
		!strings.Contains(err.Error(), "GROUP BY") {
		t.Fatalf("ungrouped column: %v", err)
	}
	// Nested aggregates are rejected.
	if _, err := s.Exec(`SELECT sum(avg(v)) FROM t`); err == nil {
		t.Fatal("nested aggregate should fail")
	}
	// count(expr) evaluates its argument: runtime errors surface.
	if _, err := s.Exec(`SELECT count(v / 0) FROM t`); err == nil ||
		!strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("count of erroring expr: %v", err)
	}
	// Aggregates in WHERE are rejected.
	if _, err := s.Exec(`SELECT g FROM t WHERE avg(v) > 1 GROUP BY g`); err == nil {
		t.Fatal("aggregate in WHERE should fail")
	}
}

func TestExecOrderByAliasOfAggregate(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE t (g text, v float);
		INSERT INTO t VALUES ('a', 1), ('a', 3), ('b', 10), ('b', 30), ('c', 5);
	`)
	// ORDER BY an alias of an aggregate item, not the aggregate itself.
	r := mustQuery(t, s, `SELECT g, sum(v) AS total FROM t GROUP BY g ORDER BY total DESC`)
	if r.Rows[0][0] != "b" || r.Rows[1][0] != "c" || r.Rows[2][0] != "a" {
		t.Fatalf("order by alias = %v", r.Rows)
	}
	// Same without GROUP BY (single-group aggregate query).
	r = mustQuery(t, s, `SELECT sum(v) AS total FROM t ORDER BY total`)
	if r.Rows[0][0] != 49.0 {
		t.Fatalf("aliased whole-table sum = %v", r.Rows)
	}
}

func TestExecOrderByOrdinalOutOfRange(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (g text, v float); INSERT INTO t VALUES ('a', 1)`)
	for _, q := range []string{
		`SELECT g FROM t ORDER BY 5`,
		`SELECT g, count(*) FROM t GROUP BY g ORDER BY 3`,
		`SELECT 1 ORDER BY 2`,
	} {
		if _, err := s.Exec(q); err == nil ||
			!strings.Contains(err.Error(), "not in select list") {
			t.Fatalf("%q: %v", q, err)
		}
	}
}

func TestExecConstSelectLimit(t *testing.T) {
	s := newSession(t)
	r := mustQuery(t, s, `SELECT 1 LIMIT 0`)
	if len(r.Rows) != 0 || r.Tag != "SELECT 0" {
		t.Fatalf("LIMIT 0 = %v tag=%q", r.Rows, r.Tag)
	}
	r = mustQuery(t, s, `SELECT 1 AS one ORDER BY one LIMIT 5`)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestExecGroupByMultiKey(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE t (a text, b bigint, v float);
		INSERT INTO t VALUES ('x', 1, 2), ('x', 1, 4), ('x', 2, 6), ('y', 1, 8);
	`)
	r := mustQuery(t, s, `SELECT a, b, sum(v) FROM t GROUP BY a, b`)
	if len(r.Rows) != 3 {
		t.Fatalf("groups = %v", r.Rows)
	}
	if r.Rows[0][0] != "x" || r.Rows[0][1] != int64(1) || r.Rows[0][2] != 6.0 {
		t.Fatalf("first group = %v", r.Rows[0])
	}
}

func TestExecAggEmptyTable(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (v float)`)
	r := mustQuery(t, s, `SELECT count(*), sum(v), avg(v) FROM t`)
	row := r.Rows[0]
	if row[0] != int64(0) || row[1] != nil || row[2] != nil {
		t.Fatalf("empty aggregates = %#v", row)
	}
}

func TestExecVectorColumns(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE t (x double precision[]);
		INSERT INTO t VALUES ({1, 2, 3}), (ARRAY[4, 5, 6]);
	`)
	r := mustQuery(t, s, `SELECT length(x), array_get(x, 2) FROM t ORDER BY 2`)
	if r.Rows[0][0] != int64(3) || r.Rows[0][1] != 2.0 || r.Rows[1][1] != 5.0 {
		t.Fatalf("vector rows = %v", r.Rows)
	}
}

func TestExecErrors(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (v float); INSERT INTO t VALUES (1)`)
	if _, err := s.Exec(`SELECT * FROM missing`); !errors.Is(err, engine.ErrNoTable) {
		t.Fatalf("unknown table: %v", err)
	}
	if _, err := s.Exec(`SELECT nope FROM t`); !errors.Is(err, engine.ErrNoColumn) {
		t.Fatalf("unknown column: %v", err)
	}
	if _, err := s.Exec(`SELECT v FROM t WHERE v`); err == nil ||
		!strings.Contains(err.Error(), "boolean") {
		t.Fatalf("non-boolean WHERE: %v", err)
	}
	if _, err := s.Exec(`SELECT frobnicate(v) FROM t`); err == nil ||
		!strings.Contains(err.Error(), "unknown function") {
		t.Fatalf("unknown function: %v", err)
	}
	if _, err := s.Exec(`SELECT (avg(v)).* FROM t`); err == nil ||
		!strings.Contains(err.Error(), "composite expansion") {
		t.Fatalf(".* on non-madlib expr: %v", err)
	}
	// Note: Query still executes the statement before noticing it has no
	// rowset, so this drop takes effect.
	if _, err := s.Query(`DROP TABLE t`); !errors.Is(err, ErrNoRows) {
		t.Fatalf("Query on DDL: %v", err)
	}
}

func TestExecFromlessSelect(t *testing.T) {
	s := newSession(t)
	r := mustQuery(t, s, `SELECT 2 + 3 AS five, 'hi', true`)
	if r.Cols[0] != "five" || r.Rows[0][0] != int64(5) || r.Rows[0][1] != "hi" || r.Rows[0][2] != true {
		t.Fatalf("fromless = %v %v", r.Cols, r.Rows)
	}
}

func TestExecMadlibLinregr(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE data (y float, x double precision[])`)
	// y = 2 + 3·x exactly: coefficients must be recovered exactly.
	tbl, _ := s.DB().Table("data")
	for i := 0; i < 40; i++ {
		x := float64(i)
		if err := tbl.Insert(2+3*x, []float64{1, x}); err != nil {
			t.Fatal(err)
		}
	}
	r := mustQuery(t, s, `SELECT (madlib.linregr(y, x)).* FROM data`)
	if r.Cols[0] != "coef" || r.Cols[1] != "r2" {
		t.Fatalf("cols = %v", r.Cols)
	}
	coef := r.Rows[0][0].([]float64)
	if math.Abs(coef[0]-2) > 1e-9 || math.Abs(coef[1]-3) > 1e-9 {
		t.Fatalf("coef = %v", coef)
	}
	if r2 := r.Rows[0][1].(float64); math.Abs(r2-1) > 1e-12 {
		t.Fatalf("r2 = %v", r2)
	}
	// WHERE stages a filtered table: restrict to x < 20 and refit.
	r = mustQuery(t, s, `SELECT (madlib.linregr(y, x)).* FROM data WHERE array_get(x, 2) < 20`)
	coef = r.Rows[0][0].([]float64)
	if math.Abs(coef[1]-3) > 1e-9 {
		t.Fatalf("filtered coef = %v", coef)
	}
	// The staging table must not leak into the catalog.
	for _, name := range s.DB().TableNames() {
		if strings.HasPrefix(name, "sql_stage") {
			t.Fatalf("staging table leaked: %v", s.DB().TableNames())
		}
	}
}

func TestExecMadlibComputedArgs(t *testing.T) {
	// Scalar columns can be assembled into a vector argument in the call
	// itself — the paper's linregr(y, array[1, x1, x2]) idiom.
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE d (y float, x1 float, x2 float)`)
	tbl, _ := s.DB().Table("d")
	for i := 0; i < 30; i++ {
		a, b := float64(i), float64(i%7)
		if err := tbl.Insert(5+2*a-3*b, a, b); err != nil {
			t.Fatal(err)
		}
	}
	r := mustQuery(t, s, `SELECT (madlib.linregr(y, array[1, x1, x2])).* FROM d`)
	coef := r.Rows[0][0].([]float64)
	if math.Abs(coef[0]-5) > 1e-8 || math.Abs(coef[1]-2) > 1e-8 || math.Abs(coef[2]+3) > 1e-8 {
		t.Fatalf("coef = %v", coef)
	}
	// Computed args combine with WHERE (single staging pass).
	r = mustQuery(t, s, `SELECT (madlib.linregr(y, {1, x1, x2})).* FROM d WHERE x1 < 20`)
	coef = r.Rows[0][0].([]float64)
	if math.Abs(coef[1]-2) > 1e-8 {
		t.Fatalf("filtered coef = %v", coef)
	}
	for _, name := range s.DB().TableNames() {
		if strings.HasPrefix(name, "sql_stage") {
			t.Fatalf("staging table leaked: %v", s.DB().TableNames())
		}
	}
}

func TestExecMadlibKMeans(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE points (coords double precision[])`)
	tbl, _ := s.DB().Table("points")
	// Two well-separated clusters around (0,0) and (100,100).
	for i := 0; i < 20; i++ {
		d := float64(i%5) * 0.1
		if err := tbl.Insert([]float64{d, d}); err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert([]float64{100 + d, 100 + d}); err != nil {
			t.Fatal(err)
		}
	}
	r := mustQuery(t, s, `SELECT madlib.kmeans(coords, 2, 7).* FROM points ORDER BY centroid_id`)
	if len(r.Rows) != 2 {
		t.Fatalf("centroids = %v", r.Rows)
	}
	var lo, hi []float64
	for _, row := range r.Rows {
		c := row[1].([]float64)
		if row[2] != int64(20) {
			t.Fatalf("cluster size = %v", row[2])
		}
		if c[0] < 50 {
			lo = c
		} else {
			hi = c
		}
	}
	if lo == nil || hi == nil || math.Abs(lo[0]-0.2) > 0.01 || math.Abs(hi[0]-100.2) > 0.01 {
		t.Fatalf("centroids lo=%v hi=%v", lo, hi)
	}
}

func TestExecMadlibScalarAggregates(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE t (g text, v float)`)
	tbl, _ := s.DB().Table("t")
	for i := 1; i <= 100; i++ {
		g := "a"
		if i%2 == 0 {
			g = "b"
		}
		if err := tbl.Insert(g, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// madlib.quantile is an aggregate: composes with the SELECT list.
	r := mustQuery(t, s, `SELECT madlib.quantile(v, 0.5), count(*) FROM t`)
	med := r.Rows[0][0].(float64)
	if med < 50 || med > 51 {
		t.Fatalf("median = %v", med)
	}
	if r.Rows[0][1] != int64(100) {
		t.Fatalf("count = %v", r.Rows[0][1])
	}
	// ... and with GROUP BY (odd numbers in a, even in b).
	r = mustQuery(t, s, `SELECT g, madlib.quantile(v, 0.5) FROM t GROUP BY g ORDER BY g`)
	if len(r.Rows) != 2 {
		t.Fatalf("groups = %v", r.Rows)
	}
	if a := r.Rows[0][1].(float64); a < 49 || a > 51 {
		t.Fatalf("group a median = %v", a)
	}
	// fmcount approximates distinct count within sketch error.
	r = mustQuery(t, s, `SELECT madlib.fmcount(v) FROM t`)
	n := r.Rows[0][0].(int64)
	if n < 50 || n > 200 {
		t.Fatalf("fmcount = %d", n)
	}
	// Unqualified call resolves through the registry too.
	r = mustQuery(t, s, `SELECT quantile(v, 0.25) FROM t`)
	if q := r.Rows[0][0].(float64); q < 25 || q > 26 {
		t.Fatalf("q25 = %v", q)
	}
}

func TestExecMadlibSVMAndBayes(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE d (y float, x double precision[])`)
	tbl, _ := s.DB().Table("d")
	for i := 0; i < 50; i++ {
		f := float64(i) / 50
		if err := tbl.Insert(1.0, []float64{1, 2 + f}); err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert(-1.0, []float64{1, -2 - f}); err != nil {
			t.Fatal(err)
		}
	}
	r := mustQuery(t, s, `SELECT (madlib.svm(y, x)).* FROM d`)
	if r.Cols[0] != "weights" || r.Rows[0][2] != int64(100) {
		t.Fatalf("svm result = %v %v", r.Cols, r.Rows)
	}
	w := r.Rows[0][0].([]float64)
	if w[1] <= 0 {
		t.Fatalf("separating weight = %v", w)
	}

	mustExec(t, s, `CREATE TABLE nb (class text, attrs double precision[])`)
	nb, _ := s.DB().Table("nb")
	for i := 0; i < 30; i++ {
		class, a := "yes", 1.0
		if i%3 == 0 {
			class, a = "no", 0.0
		}
		if err := nb.Insert(class, []float64{a}); err != nil {
			t.Fatal(err)
		}
	}
	r = mustQuery(t, s, `SELECT (madlib.naive_bayes(class, attrs)).* FROM nb ORDER BY class`)
	if len(r.Rows) != 2 || r.Rows[0][0] != "no" || r.Rows[1][0] != "yes" {
		t.Fatalf("bayes classes = %v", r.Rows)
	}
	if p := r.Rows[0][1].(float64); math.Abs(p-1.0/3.0) > 1e-12 {
		t.Fatalf("prior(no) = %v", p)
	}
}

func TestExecMadlibCallRestrictions(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE d (y float, x double precision[]); INSERT INTO d VALUES (1, {1,2})`)
	if _, err := s.Exec(`SELECT madlib.linregr(y, x), count(*) FROM d`); err == nil {
		t.Fatal("table-valued call with siblings should fail")
	}
	if _, err := s.Exec(`SELECT madlib.linregr(y, x) FROM d GROUP BY y`); err == nil {
		t.Fatal("table-valued call with GROUP BY should fail")
	}
	if _, err := s.Exec(`SELECT madlib.nosuch(y) FROM d`); err == nil {
		t.Fatal("unknown madlib function should fail")
	}
	if _, err := s.Exec(`SELECT madlib.linregr(y) FROM d`); err == nil ||
		!strings.Contains(err.Error(), "argument") {
		t.Fatalf("wrong arity: %v", err)
	}
	if _, err := s.Exec(`SELECT madlib.linregr(x, y) FROM d`); err == nil {
		t.Fatal("wrong column kinds should fail")
	}
}

func TestResultFormat(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE t (name text, v float, ok bool);
		INSERT INTO t VALUES ('aa', 1.5, true), ('b', 20, false);
	`)
	r := mustQuery(t, s, `SELECT * FROM t ORDER BY name`)
	got := r.Format()
	want := "" +
		" name | v   | ok\n" +
		"------+-----+----\n" +
		" aa   | 1.5 | t\n" +
		" b    |  20 | f\n" +
		"(2 rows)\n"
	if got != want {
		t.Fatalf("Format:\n%s\nwant:\n%s", got, want)
	}
	ddl := &Result{Tag: "CREATE TABLE"}
	if ddl.Format() != "CREATE TABLE\n" {
		t.Fatalf("ddl format = %q", ddl.Format())
	}
}

func TestSessionParallelismMatchesEngine(t *testing.T) {
	// The SQL layer must run through the engine's parallel executor: a
	// grouped aggregate over N segments should touch every row once.
	db := engine.Open(8)
	s := NewSession(db)
	mustExec(t, s, `CREATE TABLE t (g bigint, v float)`)
	tbl, _ := db.Table("t")
	const rows = 1000
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(int64(i%10), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	before := db.RowsScanned()
	r := mustQuery(t, s, `SELECT g, count(*) FROM t GROUP BY g`)
	if len(r.Rows) != 10 {
		t.Fatalf("groups = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row[1] != int64(100) {
			t.Fatalf("group count = %v", row[1])
		}
	}
	if scanned := db.RowsScanned() - before; scanned != rows {
		t.Fatalf("rows scanned = %d, want %d", scanned, rows)
	}
}
