package sql

import (
	"fmt"
	"strings"
	"time"

	"madlib/internal/engine"
	"madlib/internal/model"
)

// EXPLAIN renders the plan the session would run for a statement as a
// one-column rowset (QUERY PLAN), one line per row: the operator tree,
// the execution lane the planner picked (row / batch / fused), the
// parallel-vs-sequential morsel decision, join materialization cache
// state and plan-cache status. EXPLAIN ANALYZE additionally executes the
// statement (including INSERTs — like PostgreSQL, analyze runs the real
// thing) and appends actual row counts, the rows-scanned delta from the
// engine counters, and the parse/plan/exec wall-time split that the
// REPL's \timing shows.

func (s *Session) execExplain(st *Explain) (*Result, Timing, error) {
	var tm Timing
	if n := stmtMaxParam(st.Stmt); n > 0 {
		return nil, tm, execErrf("EXPLAIN: query uses parameter $%d; bind values with PREPARE ... / EXECUTE", n)
	}
	// Probe the plan cache under the inner statement's source text: if
	// the session already executed exactly this statement, EXPLAIN
	// reports on (and with ANALYZE runs) the very plan that is cached.
	// Fresh plans are not inserted — explaining a statement must not
	// evict working plans.
	t0 := time.Now()
	pl, cached := s.cachedPlan(st.Text)
	if !cached {
		var err error
		pl, err = s.planStmt(st.Stmt)
		if err != nil {
			return nil, tm, err
		}
	}
	planD := time.Since(t0)
	tm.Plan = planD

	lines := explainLines(s, pl)
	if cached {
		lines = append(lines, "plan: cached")
	} else {
		lines = append(lines, "plan: not cached")
	}

	if st.Analyze {
		// Re-parse the inner text so the report carries the same
		// parse/plan/exec split as \timing (the original parse happened
		// as part of the EXPLAIN statement itself).
		pt0 := time.Now()
		_, _ = Parse(st.Text)
		parseD := time.Since(pt0)
		scanned0 := s.db.RowsScanned()
		scored0 := s.db.Metrics().Counter("predict_rows").Value()
		tExec := time.Now()
		r, err := pl.exec(s, nil)
		execD := time.Since(tExec)
		tm.Exec = execD
		if err != nil {
			if !cached {
				pl.release(s.db)
			}
			return nil, tm, err
		}
		lines = append(lines,
			fmt.Sprintf("actual rows: %d", len(r.Rows)),
			fmt.Sprintf("rows scanned: %d", s.db.RowsScanned()-scanned0))
		if len(planModelDeps(pl)) > 0 {
			lines = append(lines, fmt.Sprintf("rows scored: %d", s.db.Metrics().Counter("predict_rows").Value()-scored0))
		}
		lines = append(lines,
			fmt.Sprintf("Parse Time: %s", fmtMillis(parseD)),
			fmt.Sprintf("Planning Time: %s", fmtMillis(planD)),
			fmt.Sprintf("Execution Time: %s", fmtMillis(execD)),
		)
	}
	if !cached {
		pl.release(s.db)
	}
	rows := make([][]any, len(lines))
	for i, ln := range lines {
		rows[i] = []any{ln}
	}
	return &Result{Cols: []string{"QUERY PLAN"}, Rows: rows, Tag: "EXPLAIN"}, tm, nil
}

func fmtMillis(d time.Duration) string {
	return fmt.Sprintf("%.3f ms", float64(d)/float64(time.Millisecond))
}

// explainLines renders one plan as indented text lines.
func explainLines(s *Session, pl stmtPlan) []string {
	switch p := pl.(type) {
	case *scanPlan:
		lines := []string{sourceTitle(s, p.src)}
		lane := "row"
		switch {
		case p.batchPred != nil && p.projItems != nil:
			lane = "batch (vectorized filter + columnar projection)"
		case p.batchPred != nil:
			lane = "batch (vectorized filter)"
		case p.projItems != nil:
			lane = "batch (columnar projection)"
		}
		lines = append(lines, "  lane: "+lane)
		lines = append(lines, predictLines(p.src, "  ")...)
		if p.whereText != "" {
			lines = append(lines, "  filter: "+p.whereText)
		}
		if p.distinct {
			lines = append(lines, "  distinct: true")
		}
		return append(lines, sourceDetail(s, p.src, "  ")...)
	case *aggPlan:
		head := "Aggregate"
		if len(p.groupIdx) > 0 {
			head = fmt.Sprintf("HashAggregate (group by %s)", strings.Join(p.st.GroupBy, ", "))
		}
		lines := []string{head}
		calls := make([]string, len(p.calls))
		for i, c := range p.calls {
			calls[i] = c.String()
		}
		lines = append(lines, "  aggregates: "+strings.Join(calls, ", "))
		lane := "row"
		if p.batch != nil {
			lane = "batch (vectorized)"
			if p.batch.fused != nil {
				lane = "fused (single-pass filter+aggregate)"
			}
		}
		lines = append(lines, "  lane: "+lane)
		lines = append(lines, predictLines(p.src, "  ")...)
		if p.st.Having != nil {
			lines = append(lines, "  having: "+p.st.Having.String())
		}
		lines = append(lines, "  "+sourceTitle(s, p.src))
		if p.st.Where != nil {
			lines = append(lines, "    filter: "+p.st.Where.String())
		}
		return append(lines, sourceDetail(s, p.src, "    ")...)
	case *windowPlan:
		lines := []string{"WindowAgg"}
		names := make([]string, len(p.specs))
		for i, spec := range p.specs {
			names[i] = spec.name
		}
		lane := "row (gather and fold per partition)"
		if p.batch != nil {
			lane = "batch (vectorized gather, row-lane fold)"
		}
		lines = append(lines,
			"  window functions: "+strings.Join(names, ", "),
			"  lane: "+lane)
		lines = append(lines, predictLines(p.src, "  ")...)
		lines = append(lines, "  "+sourceTitle(s, p.src))
		if p.st.Where != nil {
			lines = append(lines, "    filter: "+p.st.Where.String())
		}
		return append(lines, sourceDetail(s, p.src, "    ")...)
	case *tvPlan:
		lines := []string{
			"Function Scan on madlib." + p.call.Name,
			"  lane: row (driver function)",
			fmt.Sprintf("  Seq Scan on %s (%d segments, %d rows)",
				p.name, len(p.table.Segments()), p.table.Count()),
		}
		if p.st.Where != nil {
			lines = append(lines, "    filter: "+p.st.Where.String())
		}
		return append(lines, "    "+executionLine(s, p.table))
	case *constPlan:
		return []string{"Result (constant expressions)"}
	case *insertPlan:
		return []string{fmt.Sprintf("Insert on %s (%d rows)", p.name, len(p.rows))}
	}
	return []string{fmt.Sprintf("plan: %T", pl)}
}

// predictLines renders the models a plan froze at compile time and the
// scoring lane each one landed on, with the fallback reason when the
// batch kernel could not be built.
func predictLines(ps *planSource, pad string) []string {
	var lines []string
	for _, dep := range ps.models {
		_, link := model.Link(dep.m.Kind)
		lines = append(lines, fmt.Sprintf("%spredict: model %q v%d (%s, %d features, link=%s)",
			pad, dep.m.Name, dep.m.Version, dep.m.Kind, len(dep.m.Coef), link))
		switch {
		case dep.batch:
			lines = append(lines, pad+"  scoring: batch kernel (fused dot product over feature lanes)")
		case dep.reason != "":
			lines = append(lines, pad+"  scoring: row fallback ("+dep.reason+")")
		default:
			lines = append(lines, pad+"  scoring: row fallback (batch lane not planned)")
		}
	}
	return lines
}

// planModelDeps returns the model dependencies of a plan, if its shape
// can carry any.
func planModelDeps(pl stmtPlan) []*modelDep {
	switch p := pl.(type) {
	case *scanPlan:
		return p.src.models
	case *aggPlan:
		return p.src.models
	case *windowPlan:
		return p.src.models
	}
	return nil
}

// sourceTitle is a planSource's operator line: a sequential scan, a hash
// join, or a system-view snapshot.
func sourceTitle(s *Session, ps *planSource) string {
	if ps.virtual {
		return "System View " + ps.name
	}
	if j := ps.join; j != nil {
		kind := "Hash Join"
		if j.outer {
			kind = "Left Hash Join"
		}
		return fmt.Sprintf("%s (%s.%s = %s.%s)", kind, j.leftName, j.leftKey, j.rightName, j.rightKey)
	}
	return fmt.Sprintf("Seq Scan on %s (%d segments, %d rows)",
		ps.name, len(ps.table.Segments()), ps.table.Count())
}

// sourceDetail renders a planSource's cache and parallelism decisions,
// each line prefixed with pad.
func sourceDetail(s *Session, ps *planSource, pad string) []string {
	if ps.virtual {
		return []string{pad + "execution: snapshot (materialized per execution)"}
	}
	j := ps.join
	if j == nil {
		return []string{pad + executionLine(s, ps.table)}
	}
	lv, rv := j.left.Version(), j.right.Version()
	j.mu.Lock()
	hit := j.cached != nil && j.leftVer == lv && j.rightVer == rv
	j.mu.Unlock()
	cacheLine := "join cache: miss (build + probe at execution)"
	if hit {
		cacheLine = "join cache: hit (reusing materialized result)"
	}
	return []string{
		pad + cacheLine,
		pad + fmt.Sprintf("build: %s (%d rows)", j.rightName, j.right.Count()),
		pad + fmt.Sprintf("probe: %s (%d rows)", j.leftName, j.left.Count()),
		pad + executionLine(s, j.left),
	}
}

// executionLine reports the morsel-parallel decision the engine would
// make for a scan of t right now.
func executionLine(s *Session, t *engine.Table) string {
	if w := s.db.ScanWorkers(t); w > 1 {
		return fmt.Sprintf("execution: parallel (%d workers over %d morsels)", w, s.db.ScanMorsels(t))
	}
	if t.Count() < engine.ParallelRowThreshold {
		return fmt.Sprintf("execution: sequential (%d rows < parallel threshold %d)",
			t.Count(), engine.ParallelRowThreshold)
	}
	return "execution: sequential (GOMAXPROCS=1 or single segment)"
}
