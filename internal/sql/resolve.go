package sql

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"madlib/internal/engine"
)

// This file binds a SELECT's FROM clause to a planSource and resolves
// qualified table.column references (and bare references over a join's
// two-table scope) down to plain column names of the planning schema.
// Resolution copies the expression trees it rewrites, so the original
// AST (kept by PREPARE for replanning) is never mutated.

// planSource is where a SELECT's rows come from: a base table, or a
// two-table hash join that is materialized into a temp table per
// execution. Plans hold a planSource instead of a *engine.Table so the
// same scan/aggregate machinery runs over both, and so plan-cache
// validation covers every table the plan depends on.
type planSource struct {
	schema engine.Schema

	// Base-table source.
	name  string
	table *engine.Table

	// Join source (nil for base tables).
	join *joinSource

	// nullable marks planning-schema columns that can be NULL at run
	// time: the right side of a LEFT JOIN. matchedIdx is the hidden
	// engine.MatchedCol marker (-1 when absent); visible is the number
	// of leading schema columns SELECT * expands to.
	nullable   []bool
	matchedIdx int
	visible    int

	// virtual marks a system view (madlib_stats_*): acquire materializes
	// a fresh detached snapshot table per execution instead of binding a
	// catalog table, so the plan is never stale and the ordinary scan
	// machinery runs unchanged over live engine statistics.
	virtual bool

	// db is the engine the source was resolved against; compilation uses
	// it to resolve madlib.predict model names at plan time.
	db *engine.DB
	// models are the predict models this plan froze at compile time; the
	// plan is stale as soon as any of them changes in the catalog.
	models []*modelDep
}

// joinSource carries the resolved two-table equi-join, plus the plan's
// cached materialization: the join output is rebuilt only when either
// input table reports a new data version, so repeated executions of a
// cached or prepared plan skip the whole build+probe when the inputs
// are unchanged. The cached temp table is dropped when it goes stale
// (replaced by a rebuild) or when the owning plan leaves the session's
// plan cache (planSource.release).
type joinSource struct {
	leftName, rightName string
	left, right         *engine.Table
	leftKey, rightKey   string // source-table column names
	outer               bool

	mu                sync.Mutex
	cached            *engine.Table
	leftVer, rightVer int64
	// released marks the owning plan as evicted: an in-flight build that
	// finishes after release must not re-cache (nothing would ever drop
	// that materialization again).
	released bool
	// buildMu single-flights the materialization build: concurrent
	// executions that miss the cache queue behind one build and reuse
	// its result instead of each paying the full build+probe.
	buildMu sync.Mutex
}

// valid reports whether every table binding of the source is still
// current, so cached plans over joins revalidate both sides.
func (ps *planSource) valid(db *engine.DB) bool {
	for _, dep := range ps.models {
		if !dep.valid(db) {
			return false
		}
	}
	if ps.virtual {
		// System views carry no catalog bindings; their schema is fixed.
		return true
	}
	if ps.join != nil {
		lt, errL := db.Table(ps.join.leftName)
		rt, errR := db.Table(ps.join.rightName)
		return errL == nil && errR == nil && lt == ps.join.left && rt == ps.join.right
	}
	t, err := db.Table(ps.name)
	return err == nil && t == ps.table
}

// acquire returns the executable input table. Join sources materialize
// into a temp table that is cached on the plan: a hit (neither input's
// Version changed since the last build) returns the previous
// materialization without touching the inputs; a miss rebuilds and
// drops the stale table. cleanup is always a no-op for the caller —
// the cached table's lifetime is managed by acquire itself and by
// release when the plan is evicted.
func (ps *planSource) acquire(s *Session, ctx context.Context) (*engine.Table, func(), error) {
	if ps.virtual {
		t, err := s.buildSystemView(ps.name)
		if err != nil {
			return nil, nil, err
		}
		return t, func() {}, nil
	}
	if ps.join == nil {
		return ps.table, func() {}, nil
	}
	j := ps.join
	hit := func() *engine.Table {
		lv, rv := j.left.Version(), j.right.Version()
		j.mu.Lock()
		defer j.mu.Unlock()
		if j.cached != nil && j.leftVer == lv && j.rightVer == rv {
			return j.cached
		}
		return nil
	}
	if t := hit(); t != nil {
		s.metrics.joinHits.Inc()
		return t, func() {}, nil
	}
	// Single-flight the rebuild: a concurrent execution that missed at
	// the same time waits here and picks up the winner's table.
	j.buildMu.Lock()
	defer j.buildMu.Unlock()
	if t := hit(); t != nil {
		// The single-flight winner rebuilt for us; the shared result is
		// still a materialization-cache hit from this execution's side.
		s.metrics.joinHits.Inc()
		return t, func() {}, nil
	}
	s.metrics.joinMisses.Inc()
	// Capture the input versions before building: a mutation committed
	// mid-build then stamps the cache with a pre-mutation version, so
	// the next execution rebuilds rather than trusting a torn snapshot.
	// (As everywhere in the engine, readers and writers of one table
	// must still be externally serialized — versions only make cache
	// staleness detectable, not concurrent writes safe.)
	lv, rv := j.left.Version(), j.right.Version()
	t, err := s.db.HashJoinTempCtx(ctx, "sql_join", j.left, j.leftKey, j.right, j.rightKey, j.outer)
	if err != nil {
		return nil, nil, err
	}
	j.mu.Lock()
	if j.released {
		// The plan was evicted while we were building: use the result for
		// this execution only and drop its catalog entry afterwards (the
		// scan holds the *Table pointer, so the drop is safe).
		j.mu.Unlock()
		return t, func() { _ = s.db.DropTable(t.Name()) }, nil
	}
	stale := j.cached
	j.cached, j.leftVer, j.rightVer = t, lv, rv
	j.mu.Unlock()
	if stale != nil {
		// Concurrent executions still scanning the stale table hold its
		// pointer; dropping only removes the catalog entry.
		_ = s.db.DropTable(stale.Name())
	}
	return t, func() {}, nil
}

// release drops the source's cached join materialization (if any) from
// the catalog. Sessions call it whenever a plan leaves the plan cache,
// a prepared statement is replanned or deallocated, or a one-shot plan
// finishes executing.
func (ps *planSource) release(db *engine.DB) {
	if ps.join == nil {
		return
	}
	j := ps.join
	j.mu.Lock()
	t := j.cached
	j.cached = nil
	j.released = true
	j.mu.Unlock()
	if t != nil {
		_ = db.DropTable(t.Name())
	}
}

// newCompileCtx builds a compilation context carrying the source's
// nullability info, so references to the padded side of a LEFT JOIN
// compile to NULL-aware closures.
func (ps *planSource) newCompileCtx() *compileCtx {
	cc := newCompileCtx(ps.schema)
	cc.nullable = ps.nullable
	cc.matchedIdx = ps.matchedIdx
	cc.src = ps
	return cc
}

// scope maps the names visible in a SELECT onto planning-schema columns.
type scope struct {
	// quals: qualifier (table name or alias) → source column → planning name.
	quals map[string]map[string]string
	// qualCols: qualifier → planning names in schema order (for `t.*`).
	qualCols map[string][]string
	// bare: unqualified column → planning name; ambiguous columns map to "".
	bare map[string]string
	// strict rejects unknown bare names at resolution time (join scopes,
	// where the full planning schema is known). Single-table scopes leave
	// bare names for the compiler, preserving its error messages.
	strict bool
}

// resolveColumn maps one (qualifier, name) pair to a planning name.
func (sc *scope) resolveColumn(qual, name string, pos int) (string, error) {
	if qual != "" {
		cols, ok := sc.quals[qual]
		if !ok {
			return "", execErrf("missing FROM-clause entry for table %q", qual)
		}
		resolved, ok := cols[name]
		if !ok {
			return "", fmt.Errorf("%w: %q", engine.ErrNoColumn, qual+"."+name)
		}
		return resolved, nil
	}
	resolved, ok := sc.bare[name]
	if !ok {
		if sc.strict {
			return "", fmt.Errorf("%w: %q", engine.ErrNoColumn, name)
		}
		return name, nil
	}
	if resolved == "" {
		return "", execErrf("column reference %q is ambiguous", name)
	}
	return resolved, nil
}

// resolveExpr returns a copy of e with every column reference resolved.
func (sc *scope) resolveExpr(e Expr) (Expr, error) {
	switch x := e.(type) {
	case nil:
		return nil, nil
	case *Literal, *Param:
		return e, nil
	case *ColumnRef:
		name, err := sc.resolveColumn(x.Table, x.Name, x.Pos)
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Name: name, Pos: x.Pos}, nil
	case *ArrayLit:
		out := &ArrayLit{Elems: make([]Expr, len(x.Elems)), Pos: x.Pos}
		for i, el := range x.Elems {
			r, err := sc.resolveExpr(el)
			if err != nil {
				return nil, err
			}
			out.Elems[i] = r
		}
		return out, nil
	case *Unary:
		r, err := sc.resolveExpr(x.X)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: x.Op, X: r}, nil
	case *Binary:
		l, err := sc.resolveExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := sc.resolveExpr(x.R)
		if err != nil {
			return nil, err
		}
		return &Binary{Op: x.Op, L: l, R: r, Pos: x.Pos}, nil
	case *FuncCall:
		out := &FuncCall{Schema: x.Schema, Name: x.Name, Star: x.Star, Pos: x.Pos}
		out.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			r, err := sc.resolveExpr(a)
			if err != nil {
				return nil, err
			}
			out.Args[i] = r
		}
		if x.Over != nil {
			o := &OverClause{Pos: x.Over.Pos}
			for _, pe := range x.Over.PartitionBy {
				r, err := sc.resolveExpr(pe)
				if err != nil {
					return nil, err
				}
				o.PartitionBy = append(o.PartitionBy, r)
			}
			for _, k := range x.Over.OrderBy {
				r, err := sc.resolveExpr(k.Expr)
				if err != nil {
					return nil, err
				}
				o.OrderBy = append(o.OrderBy, OrderKey{Expr: r, Desc: k.Desc})
			}
			out.Over = o
		}
		return out, nil
	}
	return nil, execErrf("cannot resolve %T", e)
}

// resolveGroupBy maps a possibly qualified GROUP BY entry to a planning
// column name.
func (sc *scope) resolveGroupBy(entry string) (string, error) {
	if i := strings.IndexByte(entry, '.'); i >= 0 {
		return sc.resolveColumn(entry[:i], entry[i+1:], 0)
	}
	return sc.resolveColumn("", entry, 0)
}

// resolveSelect binds st's FROM clause and returns the planSource plus a
// resolved copy of the statement whose column references are plain
// planning-schema names (with `*` expanded for join sources, so the
// hidden matched marker never leaks).
func (s *Session) resolveSelect(st *Select) (*planSource, *Select, error) {
	left, err := s.db.Table(st.From)
	if err != nil {
		// Unknown names fall through to the system views, so a real
		// catalog table always shadows a madlib_stats_* name.
		if schema := systemViewSchema(st.From); schema != nil {
			return s.resolveSystemView(st, schema)
		}
		return nil, nil, err
	}
	ps := &planSource{matchedIdx: -1, db: s.db}
	sc := &scope{
		quals:    map[string]map[string]string{},
		qualCols: map[string][]string{},
		bare:     map[string]string{},
	}

	leftQual := st.From
	if st.FromAlias != "" {
		leftQual = st.FromAlias
	}
	if st.Join == nil {
		ps.name = st.From
		ps.table = left
		ps.schema = left.Schema()
		ps.visible = len(ps.schema)
		ident := make(map[string]string, len(ps.schema))
		for _, c := range ps.schema {
			ident[c.Name] = c.Name
			sc.qualCols[leftQual] = append(sc.qualCols[leftQual], c.Name)
		}
		sc.quals[leftQual] = ident
	} else {
		right, err := s.db.Table(st.Join.Table)
		if err != nil {
			return nil, nil, err
		}
		rightQual := st.Join.Table
		if st.Join.Alias != "" {
			rightQual = st.Join.Alias
		}
		if leftQual == rightQual {
			return nil, nil, execErrf("table name %q specified more than once", leftQual)
		}
		joined, err := engine.JoinSchema(left, right, st.Join.Left)
		if err != nil {
			return nil, nil, err
		}
		ps.schema = joined
		ps.join = &joinSource{
			leftName: st.From, rightName: st.Join.Table,
			left: left, right: right, outer: st.Join.Left,
		}
		ls, rs := left.Schema(), right.Schema()
		ps.visible = len(ls) + len(rs)
		if st.Join.Left {
			ps.matchedIdx = len(joined) - 1
			ps.nullable = make([]bool, len(joined))
			for i := len(ls); i < len(ls)+len(rs); i++ {
				ps.nullable[i] = true
			}
		}
		lm := make(map[string]string, len(ls))
		for i, c := range ls {
			lm[c.Name] = joined[i].Name
			sc.qualCols[leftQual] = append(sc.qualCols[leftQual], joined[i].Name)
		}
		rm := make(map[string]string, len(rs))
		for i, c := range rs {
			rm[c.Name] = joined[len(ls)+i].Name
			sc.qualCols[rightQual] = append(sc.qualCols[rightQual], joined[len(ls)+i].Name)
		}
		sc.quals[leftQual] = lm
		sc.quals[rightQual] = rm
		sc.strict = true
		// Left columns keep their names in the joined schema (only
		// colliding right-side names get the prefix).
		for _, c := range ls {
			sc.bare[c.Name] = c.Name
		}
		for _, c := range rs {
			if _, taken := sc.bare[c.Name]; taken {
				sc.bare[c.Name] = "" // ambiguous
				continue
			}
			sc.bare[c.Name] = rm[c.Name]
		}
		if err := s.resolveJoinKeys(st.Join, sc, ps, ls); err != nil {
			return nil, nil, err
		}
	}

	rst, err := resolveSelectBody(st, sc, ps)
	if err != nil {
		return nil, nil, err
	}
	return ps, rst, nil
}

// resolveSystemView binds a SELECT over a madlib_stats_* system view:
// the scope is built from the view's fixed schema and the planSource is
// marked virtual, so acquire materializes a fresh snapshot per
// execution. System views cannot be joined (stage them with CREATE
// TABLE ... AS if a join is needed).
func (s *Session) resolveSystemView(st *Select, schema engine.Schema) (*planSource, *Select, error) {
	if st.Join != nil {
		return nil, nil, execErrf("system view %q cannot be joined; stage it with CREATE TABLE ... AS first", st.From)
	}
	ps := &planSource{
		matchedIdx: -1,
		name:       st.From,
		schema:     schema,
		visible:    len(schema),
		virtual:    true,
		db:         s.db,
	}
	sc := &scope{
		quals:    map[string]map[string]string{},
		qualCols: map[string][]string{},
		bare:     map[string]string{},
	}
	qual := st.From
	if st.FromAlias != "" {
		qual = st.FromAlias
	}
	ident := make(map[string]string, len(schema))
	for _, c := range schema {
		ident[c.Name] = c.Name
		sc.qualCols[qual] = append(sc.qualCols[qual], c.Name)
	}
	sc.quals[qual] = ident
	rst, err := resolveSelectBody(st, sc, ps)
	if err != nil {
		return nil, nil, err
	}
	return ps, rst, nil
}

// resolveJoinKeys validates the ON condition: an equality of one column
// from each side, with hash-joinable (Int or String) matching kinds.
func (s *Session) resolveJoinKeys(j *JoinClause, sc *scope, ps *planSource, leftSchema engine.Schema) error {
	eq, ok := j.On.(*Binary)
	if !ok || eq.Op != "=" {
		return execErrf("JOIN ... ON requires an equality of one column from each table, got %s", j.On.String())
	}
	lr, lok := eq.L.(*ColumnRef)
	rr, rok := eq.R.(*ColumnRef)
	if !lok || !rok {
		return execErrf("JOIN ... ON requires an equality of one column from each table, got %s", j.On.String())
	}
	lname, err := sc.resolveColumn(lr.Table, lr.Name, lr.Pos)
	if err != nil {
		return err
	}
	rname, err := sc.resolveColumn(rr.Table, rr.Name, rr.Pos)
	if err != nil {
		return err
	}
	li, ri := ps.schema.Index(lname), ps.schema.Index(rname)
	leftSide := func(i int) bool { return i < len(leftSchema) }
	if leftSide(li) == leftSide(ri) {
		return execErrf("JOIN ... ON must compare one column from each table, got %s", j.On.String())
	}
	if leftSide(ri) {
		li, ri = ri, li
		lname, rname = rname, lname
	}
	lk := ps.schema[li].Kind
	rk := ps.schema[ri].Kind
	if lk != rk {
		return execErrf("JOIN keys have mismatched types: %s vs %s", lk, rk)
	}
	if lk != engine.Int && lk != engine.String {
		return execErrf("JOIN keys must be bigint or text columns, got %s", lk)
	}
	// Map planning names back to source-table column names for HashJoin.
	ps.join.leftKey = lname // left columns keep their names
	rs := ps.join.right.Schema()
	ps.join.rightKey = rs[ri-len(leftSchema)].Name
	return nil
}

// resolveSelectBody rewrites the SELECT's clauses against the scope.
func resolveSelectBody(st *Select, sc *scope, ps *planSource) (*Select, error) {
	out := &Select{
		Distinct: st.Distinct,
		From:     st.From, FromAlias: st.FromAlias, Join: st.Join,
		Limit: st.Limit,
	}
	for _, item := range st.Items {
		if item.Star {
			if ps.join == nil {
				out.Items = append(out.Items, item)
				continue
			}
			// Expand * for join sources so the hidden marker stays hidden.
			for i := 0; i < ps.visible; i++ {
				out.Items = append(out.Items, SelectItem{Expr: &ColumnRef{Name: ps.schema[i].Name}})
			}
			continue
		}
		// `t.*` parses as an Expand over ColumnRef{Name: "t"}; when the
		// name is a FROM qualifier, expand to that table's columns.
		if item.Expand {
			if cr, ok := item.Expr.(*ColumnRef); ok && cr.Table == "" {
				if cols, isQual := sc.qualCols[cr.Name]; isQual {
					for _, n := range cols {
						out.Items = append(out.Items, SelectItem{Expr: &ColumnRef{Name: n}})
					}
					continue
				}
			}
		}
		e, err := sc.resolveExpr(item.Expr)
		if err != nil {
			return nil, err
		}
		out.Items = append(out.Items, SelectItem{Expr: e, Expand: item.Expand, Alias: item.Alias})
	}
	var err error
	if out.Where, err = sc.resolveExpr(st.Where); err != nil {
		return nil, err
	}
	for _, g := range st.GroupBy {
		name, err := sc.resolveGroupBy(g)
		if err != nil {
			return nil, err
		}
		out.GroupBy = append(out.GroupBy, name)
	}
	if out.Having, err = sc.resolveExpr(st.Having); err != nil {
		return nil, err
	}
	for _, k := range st.OrderBy {
		// ORDER BY may name output aliases that are not input columns;
		// over a strict (join) scope those must not be rejected. Resolve
		// leniently: a bare name that is an output alias passes through.
		if cr, ok := k.Expr.(*ColumnRef); ok && cr.Table == "" && sc.strict {
			if _, known := sc.bare[cr.Name]; !known {
				if isOutputName(st, cr.Name) {
					out.OrderBy = append(out.OrderBy, k)
					continue
				}
			}
		}
		e, err := sc.resolveExpr(k.Expr)
		if err != nil {
			return nil, err
		}
		out.OrderBy = append(out.OrderBy, OrderKey{Expr: e, Desc: k.Desc})
	}
	return out, nil
}

// isOutputName reports whether name labels one of the SELECT items.
func isOutputName(st *Select, name string) bool {
	for _, item := range st.Items {
		if !item.Star && outputName(item) == name {
			return true
		}
	}
	return false
}
