package sql

import (
	"log/slog"
	"time"

	"madlib/internal/metrics"
)

// This file is the session side of the observability layer (PR 6):
// plan-cache / lane / join-cache counters registered in the engine
// database's metrics registry, a small ring buffer of recently executed
// statements (the madlib_stats_queries system view), and the opt-in
// structured slow-query log.

// recentQueryCap bounds the per-session ring buffer backing the
// madlib_stats_queries system view.
const recentQueryCap = 32

// sessionMetrics holds the session's pre-resolved counters. All sessions
// over one database share the counters (they live in the database's
// registry), so madlib_stats_counters reports database-wide totals.
type sessionMetrics struct {
	reg *metrics.Registry

	queries       *metrics.Counter // statements executed (SELECT/INSERT/EXECUTE)
	planHits      *metrics.Counter // executions served by the plan cache
	planMisses    *metrics.Counter // plans compiled and inserted into the cache
	planEvictions *metrics.Counter // plans displaced (LRU, replace, staleness)
	planInvalid   *metrics.Counter // plans dropped by DDL invalidation
	replans       *metrics.Counter // prepared statements replanned after going stale
	joinHits      *metrics.Counter // join materialization cache hits
	joinMisses    *metrics.Counter // join materialization cache misses (rebuilds)
	slowQueries   *metrics.Counter // statements at or over the slow-query threshold
}

func newSessionMetrics(reg *metrics.Registry) *sessionMetrics {
	return &sessionMetrics{
		reg:           reg,
		queries:       reg.Counter("sql_queries"),
		planHits:      reg.Counter("sql_plan_cache_hits"),
		planMisses:    reg.Counter("sql_plan_cache_misses"),
		planEvictions: reg.Counter("sql_plan_cache_evictions"),
		planInvalid:   reg.Counter("sql_plan_invalidations"),
		replans:       reg.Counter("sql_replans"),
		joinHits:      reg.Counter("sql_join_cache_hits"),
		joinMisses:    reg.Counter("sql_join_cache_misses"),
		slowQueries:   reg.Counter("sql_slow_queries"),
	}
}

// lanePicked counts one planner lane decision (sql_lane_row,
// sql_lane_batch, sql_lane_fused). Called at plan time, where a registry
// lookup is noise next to expression compilation.
func (m *sessionMetrics) lanePicked(lane string) {
	m.reg.Counter("sql_lane_" + lane).Inc()
}

// planLane names the execution lane a plan will run on. Scans and
// aggregates report the row/batch/fused decision; the remaining plan
// types are pinned to their only lane.
func planLane(pl stmtPlan) string {
	switch p := pl.(type) {
	case *scanPlan:
		if p.batchPred != nil || p.projItems != nil {
			return "batch"
		}
		return "row"
	case *aggPlan:
		if p.batch != nil {
			if p.batch.fused != nil {
				return "fused"
			}
			return "batch"
		}
		return "row"
	case *windowPlan:
		if p.batch != nil {
			return "batch"
		}
		return "row"
	case *tvPlan:
		return "function"
	case *constPlan:
		return "const"
	case *insertPlan:
		return "insert"
	}
	return "unknown"
}

// QueryStat is one executed statement's record in the session's recent
// ring (the madlib_stats_queries system view) and in the slow-query log.
type QueryStat struct {
	Text     string
	Lane     string
	Rows     int
	Duration time.Duration
	CacheHit bool
}

// SetQueryLog enables (logger non-nil) or disables (nil) the structured
// query log: every statement whose total wall time reaches slowerThan is
// emitted through logger with its text, duration, lane, row count and
// cache flag. slowerThan of 0 logs every statement.
func (s *Session) SetQueryLog(logger *slog.Logger, slowerThan time.Duration) {
	s.mu.Lock()
	s.logger = logger
	s.slowThan = slowerThan
	s.mu.Unlock()
}

// RecentQueries returns the session's most recently executed statements,
// newest first (at most recentQueryCap).
func (s *Session) RecentQueries() []QueryStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QueryStat, 0, len(s.recent))
	for i := len(s.recent) - 1; i >= 0; i-- {
		out = append(out, s.recent[(s.recentNext+i)%len(s.recent)])
	}
	return out
}

// observe records one executed statement: bumps the query counter,
// appends to the recent ring, and emits the slow-query log line when the
// statement crossed the threshold.
func (s *Session) observe(text string, pl stmtPlan, r *Result, tm Timing) {
	s.metrics.queries.Inc()
	qs := QueryStat{
		Text:     text,
		Lane:     planLane(pl),
		Duration: tm.Total(),
		CacheHit: tm.CacheHit,
	}
	if r != nil {
		qs.Rows = len(r.Rows)
	}
	s.mu.Lock()
	if len(s.recent) < recentQueryCap {
		s.recent = append(s.recent, qs)
		s.recentNext = 0
	} else {
		s.recent[s.recentNext] = qs
		s.recentNext = (s.recentNext + 1) % recentQueryCap
	}
	logger, slowThan := s.logger, s.slowThan
	s.mu.Unlock()
	if logger != nil && qs.Duration >= slowThan {
		s.metrics.slowQueries.Inc()
		logger.Info("slow query",
			slog.String("query", qs.Text),
			slog.Duration("duration", qs.Duration),
			slog.String("lane", qs.Lane),
			slog.Int("rows", qs.Rows),
			slog.Bool("cache_hit", qs.CacheHit),
		)
	}
}
