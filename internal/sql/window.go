package sql

import (
	"fmt"
	"sort"
	"sync/atomic"

	"madlib/internal/engine"
)

// Window functions — fn(args) OVER (PARTITION BY ... ORDER BY ...) —
// lower onto engine.RunWindow, the §3.1.2 "window aggregates for
// stateful iteration" primitive: partitions fold in parallel, rows
// within a partition fold sequentially in ORDER BY order, carrying
// state. Supported functions:
//
//	row_number()      position within the partition (1-based)
//	rank()            like row_number, but ORDER BY peers share a rank
//	                  (with gaps)
//	count(x|*)        running count up to the current row
//	sum(x), avg(x)    running sum/average up to the current row
//
// The running aggregates use ROWS BETWEEN UNBOUNDED PRECEDING AND
// CURRENT ROW framing (each row sees exactly the rows before it plus
// itself, ORDER BY peers are NOT collapsed — this deviates from the SQL
// default RANGE framing and is pinned by the logictest corpus). ORDER
// BY inside OVER is mandatory: whole-partition frames would require a
// second pass, so they are rejected instead of emitting running values
// that depend on storage order.
//
// Window plans always execute on the row lane: partitions are folded
// sequentially by definition, so there is nothing for the batch lane to
// vectorize.

// windowFuncs names the supported window functions.
var windowFuncs = map[string]bool{
	"row_number": true, "rank": true, "count": true, "sum": true, "avg": true,
}

// windowSlotSpec is one window call lowered against the input schema.
type windowSlotSpec struct {
	name string
	// arg is the compiled argument of sum/avg/count(x); nil for
	// row_number, rank and count(*).
	arg anyFn
}

// windowPlan executes a SELECT whose item list contains window calls.
// All calls must share one window specification; the plan stages WHERE
// through a temp table (windows see filtered rows), then folds each
// partition with engine.RunWindow.
type windowPlan struct {
	src *planSource
	st  *Select

	pred    boolFn // WHERE, applied before the window
	partFns []anyFn
	ordFns  []anyFn
	ordDesc []bool

	slotOf map[*FuncCall]int
	specs  []windowSlotSpec

	outNames []string
	outCols  map[string]int
	// finalDesc is the direction of each outer ORDER BY key; the keys
	// themselves are re-resolved per row in step() (ordinals, aliases or
	// expressions over output columns, via ordinal()/evalExpr).
	finalDesc []bool
	limit     int64
}

// planWindowSelect validates and lowers a window query.
func planWindowSelect(st *Select, ps *planSource) (stmtPlan, error) {
	if len(st.GroupBy) > 0 || st.Having != nil {
		return nil, execErrf("window functions cannot be combined with GROUP BY or HAVING")
	}
	if st.Distinct {
		return nil, execErrf("SELECT DISTINCT cannot be combined with window functions")
	}
	p := &windowPlan{src: ps, st: st, limit: st.Limit}
	cc := ps.newCompileCtx()

	// Collect window calls into slots; all must share one spec.
	p.slotOf = map[*FuncCall]int{}
	var over *OverClause
	for _, item := range st.Items {
		if item.Star {
			return nil, execErrf("SELECT * cannot be combined with window functions")
		}
		if exprHasAgg(item.Expr) {
			return nil, execErrf("window functions cannot be combined with aggregate functions")
		}
		for _, call := range collectWindowCalls(item.Expr) {
			if _, done := p.slotOf[call]; done {
				continue
			}
			if call.Schema != "" {
				return nil, execErrf("%s.%s(...) OVER is not a window function", call.Schema, call.Name)
			}
			if !windowFuncs[call.Name] {
				return nil, execErrf("%s(...) OVER is not a supported window function (row_number, rank, count, sum, avg)", call.Name)
			}
			if over == nil {
				over = call.Over
			} else if call.Over.String() != over.String() {
				return nil, execErrf("all window functions in one SELECT must share the same OVER clause")
			}
			spec := windowSlotSpec{name: call.Name}
			switch call.Name {
			case "row_number", "rank":
				if call.Star || len(call.Args) != 0 {
					return nil, execErrf("%s() takes no arguments", call.Name)
				}
			case "count":
				if !call.Star && len(call.Args) != 1 {
					return nil, execErrf("count(...) OVER takes * or exactly one argument")
				}
			default: // sum, avg
				if call.Star || len(call.Args) != 1 {
					return nil, execErrf("%s(...) OVER takes exactly one argument", call.Name)
				}
			}
			if !call.Star && len(call.Args) == 1 {
				c, err := compileExpr(call.Args[0], cc)
				if err != nil {
					return nil, err
				}
				if (call.Name == "sum" || call.Name == "avg") && c.kind != ckAny && !c.isNumeric() {
					return nil, execErrf("%s: argument is %s, not numeric", call.Name, c.kind)
				}
				spec.arg = c.a
			}
			p.slotOf[call] = len(p.specs)
			p.specs = append(p.specs, spec)
		}
	}
	if len(over.OrderBy) == 0 {
		// Whole-partition frames (OVER without ORDER BY) would need the
		// partition total on every row; the single streaming fold only
		// yields running values, which would be storage-order dependent.
		// Reject rather than return silently wrong numbers.
		return nil, execErrf("window functions require ORDER BY in the OVER clause (whole-partition frames are not supported yet)")
	}

	// Compile the window spec.
	for _, pe := range over.PartitionBy {
		c, err := compileExpr(pe, cc)
		if err != nil {
			return nil, err
		}
		p.partFns = append(p.partFns, c.a)
	}
	for _, k := range over.OrderBy {
		c, err := compileExpr(k.Expr, cc)
		if err != nil {
			return nil, err
		}
		p.ordFns = append(p.ordFns, c.a)
		p.ordDesc = append(p.ordDesc, k.Desc)
	}

	var err error
	p.pred, err = compilePredicate(st.Where, cc)
	if err != nil {
		return nil, err
	}

	p.outNames = make([]string, len(st.Items))
	for i, item := range st.Items {
		p.outNames[i] = outputName(item)
	}
	p.outCols = map[string]int{}
	for i, n := range p.outNames {
		p.outCols[n] = i
	}
	for _, key := range st.OrderBy {
		if _, _, err := ordinal(key.Expr, len(st.Items)); err != nil {
			return nil, err
		}
		p.finalDesc = append(p.finalDesc, key.Desc)
	}
	return p, nil
}

func anySpec(specs []windowSlotSpec, name string) bool {
	for _, s := range specs {
		if s.name == name {
			return true
		}
	}
	return false
}

func (p *windowPlan) valid(db *engine.DB) bool { return p.src.valid(db) }

func (p *windowPlan) release(db *engine.DB) { p.src.release(db) }

// windowRowOut is one emitted output row with its final sort keys.
// partVals carries the partition's key values on the partition's first
// row only (the default output order sorts partitions by value).
type windowRowOut struct {
	row      []any
	keys     []any
	partVals []any
}

// windowState is one partition's fold state.
type windowState struct {
	pos      int64
	rank     int64
	prevOrd  []any
	hasPrev  bool
	accs     []*numAccState // running sum/avg/count accumulators per slot
	slotVals []any
}

func (p *windowPlan) exec(s *Session, env *execEnv) (*Result, error) {
	input, cleanup, err := p.src.acquire(s)
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// Stage WHERE first so the window sees only surviving rows.
	if p.pred != nil {
		var predErr atomic.Value
		pred := enginePred(p.pred, env, &predErr)
		staged, err := s.db.SelectIntoTemp("sql_window", input, pred, nil)
		if err != nil {
			return nil, err
		}
		defer func(name string) { _ = s.db.DropTable(name) }(staged.Name())
		if e := predErr.Load(); e != nil {
			return nil, e.(error)
		}
		input = staged
	}

	// stepErr captures the first evaluation error from inside the
	// partition/order/step closures (RunWindow's contracts cannot fail).
	var stepErr atomic.Value
	fail := func(err error) {
		stepErr.CompareAndSwap(nil, err)
	}

	// The ORDER BY key tuple of every row is evaluated exactly once,
	// inside the PartitionBy hook: RunWindow calls it single-threaded
	// during its gather pass, and the per-partition sort goroutines then
	// only read the finished cache (O(n) evaluations instead of
	// O(n log n) closure calls inside the comparator).
	ordCache := map[engine.Row][]any{}
	spec := engine.WindowSpec{}
	spec.PartitionBy = func(r engine.Row) string {
		if len(p.ordFns) > 0 {
			vals := make([]any, len(p.ordFns))
			for i, fn := range p.ordFns {
				v, err := fn(r, env)
				if err != nil {
					fail(err)
					vals = nil
					break
				}
				vals[i] = v
			}
			ordCache[r] = vals
		}
		var buf []byte
		for _, fn := range p.partFns {
			v, err := fn(r, env)
			if err != nil {
				fail(err)
				return ""
			}
			buf = appendValKey(buf, v)
		}
		return string(buf)
	}
	spec.OrderBy = func(a, b engine.Row) bool {
		av, bv := ordCache[a], ordCache[b]
		if av == nil || bv == nil {
			return false // evaluation failed; stepErr already set
		}
		for i := range av {
			c, err := compareValues(av[i], bv[i])
			if err != nil {
				fail(err)
				return false
			}
			if c != 0 {
				if p.ordDesc[i] {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	}

	init := func() any {
		st := &windowState{accs: make([]*numAccState, len(p.specs))}
		for i := range p.specs {
			st.accs[i] = &numAccState{intOnly: true}
		}
		st.slotVals = make([]any, len(p.specs))
		return st
	}
	colIdx := colIndexMap(p.src.schema)
	step := func(state any, row engine.Row) (any, any) {
		ws := state.(*windowState)
		if stepErr.Load() != nil {
			return ws, nil
		}
		ws.pos++
		var firstPartVals []any
		if ws.pos == 1 && len(p.partFns) > 0 {
			firstPartVals = make([]any, len(p.partFns))
			for i, fn := range p.partFns {
				v, err := fn(row, env)
				if err != nil {
					fail(err)
					return ws, nil
				}
				firstPartVals[i] = v
			}
		}
		// rank(): peers (equal ORDER BY keys) share the rank of their
		// first row; a new key value jumps to the current position.
		if len(p.ordFns) > 0 {
			ov := ordCache[row]
			if ov == nil {
				return ws, nil // evaluation failed; stepErr already set
			}
			same := ws.hasPrev
			if same {
				for i := range ov {
					c, err := compareValues(ov[i], ws.prevOrd[i])
					if err != nil {
						fail(err)
						return ws, nil
					}
					if c != 0 {
						same = false
						break
					}
				}
			}
			if !same {
				ws.rank = ws.pos
			}
			ws.prevOrd, ws.hasPrev = ov, true
		} else {
			ws.rank = ws.pos
		}
		for i, sp := range p.specs {
			switch sp.name {
			case "row_number":
				ws.slotVals[i] = ws.pos
			case "rank":
				ws.slotVals[i] = ws.rank
			case "count":
				acc := ws.accs[i]
				if sp.arg != nil {
					v, err := sp.arg(row, env)
					if err != nil {
						fail(err)
						return ws, nil
					}
					if v != nil {
						acc.n++
					}
				} else {
					acc.n++
				}
				ws.slotVals[i] = acc.n
			case "sum", "avg":
				acc := ws.accs[i]
				v, err := sp.arg(row, env)
				if err != nil {
					fail(err)
					return ws, nil
				}
				if v != nil {
					f, ok := toFloat(v)
					if !ok {
						fail(execErrf("%s: argument is %s, not numeric", sp.name, valueTypeName(v)))
						return ws, nil
					}
					if iv, isInt := v.(int64); isInt {
						acc.sumInt += iv
					} else {
						acc.intOnly = false
					}
					acc.n++
					acc.sum += f
				}
				out, err := numAccFinal(sp.name)(acc)
				if err != nil {
					fail(err)
					return ws, nil
				}
				ws.slotVals[i] = out
			}
		}
		// Evaluate the projection (and the outer ORDER BY keys) for this
		// row with the slot values bound.
		ctx := &evalCtx{
			schema: p.src.schema, colIdx: colIdx, row: &row,
			nullable: p.src.nullable, matchedIdx: p.src.matchedIdx,
			slotOf: p.slotOf, slotVals: ws.slotVals, params: env.paramList(),
		}
		out := windowRowOut{row: make([]any, len(p.st.Items)), partVals: firstPartVals}
		for i, item := range p.st.Items {
			v, err := evalExpr(item.Expr, ctx)
			if err != nil {
				fail(err)
				return ws, nil
			}
			out.row[i] = v
		}
		if len(p.st.OrderBy) > 0 {
			out.keys = make([]any, len(p.st.OrderBy))
			kctx := &evalCtx{
				schema: p.src.schema, colIdx: colIdx, row: &row,
				nullable: p.src.nullable, matchedIdx: p.src.matchedIdx,
				slotOf: p.slotOf, slotVals: ws.slotVals,
				outCols: p.outCols, outVals: out.row, params: env.paramList(),
			}
			for k, key := range p.st.OrderBy {
				if ord, isOrd, _ := ordinal(key.Expr, len(out.row)); isOrd {
					out.keys[k] = out.row[ord]
					continue
				}
				v, err := evalExpr(key.Expr, kctx)
				if err != nil {
					fail(err)
					return ws, nil
				}
				out.keys[k] = v
			}
		}
		return ws, out
	}

	parts, err := s.db.RunWindow(input, spec, init, step)
	if err != nil {
		return nil, err
	}
	if e := stepErr.Load(); e != nil {
		return nil, e.(error)
	}

	// Deterministic default order: partitions sorted by their key
	// VALUES (compareValues, so ints/floats/strings order naturally —
	// the encoded map key is injective but not order-preserving), rows
	// within a partition in window order.
	partKeys := make([]string, 0, len(parts))
	for k := range parts {
		partKeys = append(partKeys, k)
	}
	partValsOf := func(pk string) []any {
		if len(parts[pk]) == 0 {
			return nil
		}
		out, ok := parts[pk][0].(windowRowOut)
		if !ok {
			return nil
		}
		return out.partVals
	}
	var sortErr error
	sort.Slice(partKeys, func(a, b int) bool {
		av, bv := partValsOf(partKeys[a]), partValsOf(partKeys[b])
		for i := 0; i < len(av) && i < len(bv); i++ {
			c, err := compareValues(av[i], bv[i])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if c != 0 {
				return c < 0
			}
		}
		return partKeys[a] < partKeys[b]
	})
	if sortErr != nil {
		return nil, sortErr
	}
	var rows, keys [][]any
	for _, pk := range partKeys {
		for _, v := range parts[pk] {
			out, ok := v.(windowRowOut)
			if !ok {
				continue // a failed step emitted nil; stepErr already set
			}
			rows = append(rows, out.row)
			keys = append(keys, out.keys)
		}
	}
	if len(p.st.OrderBy) > 0 {
		if err := sortRows(rows, keys, p.finalDesc); err != nil {
			return nil, err
		}
	}
	rows = applyLimit(rows, p.limit)
	return &Result{Cols: p.outNames, Rows: rows, Tag: fmt.Sprintf("SELECT %d", len(rows))}, nil
}
