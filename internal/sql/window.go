package sql

import (
	"fmt"
	"sort"
	"sync/atomic"

	"madlib/internal/engine"
)

// Window functions — fn(args) OVER (PARTITION BY ... ORDER BY ...) —
// lower onto engine.RunWindow, the §3.1.2 "window aggregates for
// stateful iteration" primitive: partitions fold in parallel, rows
// within a partition fold sequentially in ORDER BY order, carrying
// state. Supported functions:
//
//	row_number()      position within the partition (1-based)
//	rank()            like row_number, but ORDER BY peers share a rank
//	                  (with gaps)
//	count(x|*)        running count up to the current row
//	sum(x), avg(x)    running sum/average up to the current row
//
// The running aggregates use ROWS BETWEEN UNBOUNDED PRECEDING AND
// CURRENT ROW framing (each row sees exactly the rows before it plus
// itself, ORDER BY peers are NOT collapsed — this deviates from the SQL
// default RANGE framing and is pinned by the logictest corpus). ORDER
// BY inside OVER is mandatory: whole-partition frames would require a
// second pass, so they are rejected instead of emitting running values
// that depend on storage order.
//
// The fold itself is row-at-a-time by definition — each row's output
// depends on the partition state — but the input side vectorizes: when
// WHERE and every PARTITION BY / OVER-ORDER BY expression lower onto
// batch kernels, the gather pass runs morsel-parallel on the batch
// lane, filtering and evaluating partition/order keys column-wise
// (windowBatchLane). Shapes with no batch lowering (Vector operands,
// madlib calls, parameters) keep the staged row-lane gather.

// windowFuncs names the supported window functions.
var windowFuncs = map[string]bool{
	"row_number": true, "rank": true, "count": true, "sum": true, "avg": true,
}

// windowSlotSpec is one window call lowered against the input schema.
type windowSlotSpec struct {
	name string
	// arg is the compiled argument of sum/avg/count(x); nil for
	// row_number, rank and count(*).
	arg anyFn
}

// windowPlan executes a SELECT whose item list contains window calls.
// All calls must share one window specification; the plan stages WHERE
// through a temp table (windows see filtered rows), then folds each
// partition with engine.RunWindow.
type windowPlan struct {
	src *planSource
	st  *Select

	pred    boolFn // WHERE, applied before the window
	partFns []anyFn
	ordFns  []anyFn
	ordDesc []bool

	// batch, when non-nil, replaces the staged row-lane gather with the
	// vectorized gather: WHERE filters through a selection vector and the
	// partition/order keys evaluate column-wise, morsel-parallel.
	batch *windowBatchLane

	slotOf map[*FuncCall]int
	specs  []windowSlotSpec

	outNames []string
	outCols  map[string]int
	// finalDesc is the direction of each outer ORDER BY key; the keys
	// themselves are re-resolved per row in step() (ordinals, aliases or
	// expressions over output columns, via ordinal()/evalExpr).
	finalDesc []bool
	limit     int64
}

// planWindowSelect validates and lowers a window query. batchOK allows
// the vectorized gather lane (disabled per session or under the
// differential harness's row-lane oracle).
func planWindowSelect(st *Select, ps *planSource, batchOK bool) (stmtPlan, error) {
	if len(st.GroupBy) > 0 || st.Having != nil {
		return nil, execErrf("window functions cannot be combined with GROUP BY or HAVING")
	}
	if st.Distinct {
		return nil, execErrf("SELECT DISTINCT cannot be combined with window functions")
	}
	p := &windowPlan{src: ps, st: st, limit: st.Limit}
	cc := ps.newCompileCtx()

	// Collect window calls into slots; all must share one spec.
	p.slotOf = map[*FuncCall]int{}
	var over *OverClause
	for _, item := range st.Items {
		if item.Star {
			return nil, execErrf("SELECT * cannot be combined with window functions")
		}
		if exprHasAgg(item.Expr) {
			return nil, execErrf("window functions cannot be combined with aggregate functions")
		}
		for _, call := range collectWindowCalls(item.Expr) {
			if _, done := p.slotOf[call]; done {
				continue
			}
			if call.Schema != "" {
				return nil, execErrf("%s.%s(...) OVER is not a window function", call.Schema, call.Name)
			}
			if !windowFuncs[call.Name] {
				return nil, execErrf("%s(...) OVER is not a supported window function (row_number, rank, count, sum, avg)", call.Name)
			}
			if over == nil {
				over = call.Over
			} else if call.Over.String() != over.String() {
				return nil, execErrf("all window functions in one SELECT must share the same OVER clause")
			}
			spec := windowSlotSpec{name: call.Name}
			switch call.Name {
			case "row_number", "rank":
				if call.Star || len(call.Args) != 0 {
					return nil, execErrf("%s() takes no arguments", call.Name)
				}
			case "count":
				if !call.Star && len(call.Args) != 1 {
					return nil, execErrf("count(...) OVER takes * or exactly one argument")
				}
			default: // sum, avg
				if call.Star || len(call.Args) != 1 {
					return nil, execErrf("%s(...) OVER takes exactly one argument", call.Name)
				}
			}
			if !call.Star && len(call.Args) == 1 {
				c, err := compileExpr(call.Args[0], cc)
				if err != nil {
					return nil, err
				}
				if (call.Name == "sum" || call.Name == "avg") && c.kind != ckAny && !c.isNumeric() {
					return nil, execErrf("%s: argument is %s, not numeric", call.Name, c.kind)
				}
				spec.arg = c.a
			}
			p.slotOf[call] = len(p.specs)
			p.specs = append(p.specs, spec)
		}
	}
	if len(over.OrderBy) == 0 {
		// Whole-partition frames (OVER without ORDER BY) would need the
		// partition total on every row; the single streaming fold only
		// yields running values, which would be storage-order dependent.
		// Reject rather than return silently wrong numbers.
		return nil, execErrf("window functions require ORDER BY in the OVER clause (whole-partition frames are not supported yet)")
	}

	// Compile the window spec.
	for _, pe := range over.PartitionBy {
		c, err := compileExpr(pe, cc)
		if err != nil {
			return nil, err
		}
		p.partFns = append(p.partFns, c.a)
	}
	for _, k := range over.OrderBy {
		c, err := compileExpr(k.Expr, cc)
		if err != nil {
			return nil, err
		}
		p.ordFns = append(p.ordFns, c.a)
		p.ordDesc = append(p.ordDesc, k.Desc)
	}

	var err error
	p.pred, err = compilePredicate(st.Where, cc)
	if err != nil {
		return nil, err
	}

	p.outNames = make([]string, len(st.Items))
	for i, item := range st.Items {
		p.outNames[i] = outputName(item)
	}
	p.outCols = map[string]int{}
	for i, n := range p.outNames {
		p.outCols[n] = i
	}
	for _, key := range st.OrderBy {
		if _, _, err := ordinal(key.Expr, len(st.Items)); err != nil {
			return nil, err
		}
		p.finalDesc = append(p.finalDesc, key.Desc)
	}
	if batchOK {
		p.batch = planWindowBatchLane(st, ps, over)
	}
	return p, nil
}

// windowBatchLane is the compiled vectorized gather: the WHERE kernel
// plus one projItem per PARTITION BY and OVER-ORDER BY expression. The
// lane is all-or-nothing — if any of those fails to lower, the plan
// keeps the staged row-lane gather (partial vectorization would still
// pay the staging copy).
type windowBatchLane struct {
	prog      *batchProg
	pred      bBatchKernel // nil when the query has no WHERE
	partItems []*projItem
	ordItems  []*projItem
}

// winBatchState is one morsel's gather scratch.
type winBatchState struct {
	e       *batchEval
	predOut []bool
	selBuf  []int32
}

// winRow is one gathered input row: its handle, encoded partition key,
// and boxed OVER-ORDER BY key tuple.
type winRow struct {
	row  engine.Row
	part string
	ord  []any
}

func planWindowBatchLane(st *Select, ps *planSource, over *OverClause) *windowBatchLane {
	bc := newSourceBatchCompiler(ps)
	wb := &windowBatchLane{}
	if st.Where != nil {
		k, ok := compileBatchPredicate(st.Where, bc)
		if !ok || k == nil {
			return nil
		}
		wb.pred = k
	}
	for _, pe := range over.PartitionBy {
		pi, ok := buildProjItem(pe, bc)
		if !ok {
			return nil
		}
		wb.partItems = append(wb.partItems, pi)
	}
	for _, key := range over.OrderBy {
		pi, ok := buildProjItem(key.Expr, bc)
		if !ok {
			return nil
		}
		wb.ordItems = append(wb.ordItems, pi)
	}
	wb.prog = bc.prog
	return wb
}

// gatherBatch is the vectorized gather pass: every morsel filters and
// evaluates its partition/order keys independently, then the per-morsel
// buffers concatenate in morsel order — the same row order the staged
// row-lane gather produces, so ORDER BY ties break identically. The
// order-key tuples land in ordCache for the partition sort comparator.
func (p *windowPlan) gatherBatch(s *Session, env *execEnv, input *engine.Table, ordCache map[engine.Row][]any) (map[string][]engine.Row, error) {
	wb := p.batch
	nMorsels := s.db.ScanMorsels(input)
	bufs := make([][]winRow, nMorsels)
	states := make([]*winBatchState, nMorsels)
	np, no := len(wb.partItems), len(wb.ordItems)
	w := np + no
	err := s.db.ForEachBatchCtx(env.context(), input, func(mi int, b engine.ColBatch) error {
		st := states[mi]
		if st == nil {
			st = &winBatchState{e: wb.prog.newEval(env)}
			if wb.pred != nil {
				st.predOut = make([]bool, engine.BatchSize)
				st.selBuf = make([]int32, engine.BatchSize)
			}
			states[mi] = st
		}
		sel := st.e.identSel(b.Len())
		if wb.pred != nil {
			po := st.predOut[:b.Len()]
			if err := wb.pred(st.e, b, sel, po); err != nil {
				return err
			}
			keep := st.selBuf[:0]
			for j, ok := range po {
				if ok {
					keep = append(keep, int32(j))
				}
			}
			sel = keep
		}
		n := len(sel)
		if n == 0 {
			return nil
		}
		// Box the partition and order key lanes column-wise. Each row's
		// cells share one backing array that outlives the batch: the ord
		// sub-slice is what lands in ordCache.
		boxed := make([][]any, n)
		cells := make([]any, n*w)
		for j := range boxed {
			boxed[j] = cells[j*w : (j+1)*w : (j+1)*w]
		}
		for i, pi := range wb.partItems {
			if err := pi.box(st.e, b, sel, boxed, i); err != nil {
				return err
			}
		}
		for i, pi := range wb.ordItems {
			if err := pi.box(st.e, b, sel, boxed, np+i); err != nil {
				return err
			}
		}
		var buf []byte
		out := make([]winRow, n)
		for j, idx := range sel {
			buf = buf[:0]
			for _, v := range boxed[j][:np] {
				buf = appendValKey(buf, v)
			}
			out[j] = winRow{row: b.Row(int(idx)), part: string(buf), ord: boxed[j][np:]}
		}
		// A morsel spans several batches, delivered in offset order on
		// one worker: append, don't assign.
		bufs[mi] = append(bufs[mi], out...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	parts := map[string][]engine.Row{}
	for _, buf := range bufs {
		for _, wr := range buf {
			parts[wr.part] = append(parts[wr.part], wr.row)
			ordCache[wr.row] = wr.ord
		}
	}
	return parts, nil
}

func anySpec(specs []windowSlotSpec, name string) bool {
	for _, s := range specs {
		if s.name == name {
			return true
		}
	}
	return false
}

func (p *windowPlan) valid(db *engine.DB) bool { return p.src.valid(db) }

func (p *windowPlan) release(db *engine.DB) { p.src.release(db) }

func (p *windowPlan) columns() []string { return p.outNames }

// windowRowOut is one emitted output row with its final sort keys.
// partVals carries the partition's key values on the partition's first
// row only (the default output order sorts partitions by value).
type windowRowOut struct {
	row      []any
	keys     []any
	partVals []any
}

// windowState is one partition's fold state.
type windowState struct {
	pos      int64
	rank     int64
	prevOrd  []any
	hasPrev  bool
	accs     []*numAccState // running sum/avg/count accumulators per slot
	slotVals []any
}

func (p *windowPlan) exec(s *Session, env *execEnv) (*Result, error) {
	input, cleanup, err := p.src.acquire(s, env.context())
	if err != nil {
		return nil, err
	}
	defer cleanup()

	// stepErr captures the first evaluation error from inside the
	// partition/order/step closures (the engine fold's contracts cannot
	// fail).
	var stepErr atomic.Value
	fail := func(err error) {
		stepErr.CompareAndSwap(nil, err)
	}

	// ordCache holds every input row's OVER-ORDER BY key tuple, filled
	// once per row by whichever gather runs (the vectorized gather boxes
	// the tuples column-wise; the row-lane gather evaluates them inside
	// the PartitionBy hook). The per-partition sort goroutines then only
	// read the finished cache — O(n) evaluations instead of O(n log n)
	// closure calls inside the comparator.
	ordCache := map[engine.Row][]any{}
	orderBy := func(a, b engine.Row) bool {
		av, bv := ordCache[a], ordCache[b]
		if av == nil || bv == nil {
			return false // evaluation failed; stepErr already set
		}
		for i := range av {
			c, err := compareOrderKeys(av[i], bv[i])
			if err != nil {
				fail(err)
				return false
			}
			if c != 0 {
				if p.ordDesc[i] {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	}

	init := func() any {
		st := &windowState{accs: make([]*numAccState, len(p.specs))}
		for i := range p.specs {
			st.accs[i] = &numAccState{intOnly: true}
		}
		st.slotVals = make([]any, len(p.specs))
		return st
	}
	colIdx := colIndexMap(p.src.schema)
	step := func(state any, row engine.Row) (any, any) {
		ws := state.(*windowState)
		if stepErr.Load() != nil {
			return ws, nil
		}
		ws.pos++
		var firstPartVals []any
		if ws.pos == 1 && len(p.partFns) > 0 {
			firstPartVals = make([]any, len(p.partFns))
			for i, fn := range p.partFns {
				v, err := fn(row, env)
				if err != nil {
					fail(err)
					return ws, nil
				}
				firstPartVals[i] = v
			}
		}
		// rank(): peers (equal ORDER BY keys) share the rank of their
		// first row; a new key value jumps to the current position.
		if len(p.ordFns) > 0 {
			ov := ordCache[row]
			if ov == nil {
				return ws, nil // evaluation failed; stepErr already set
			}
			same := ws.hasPrev
			if same {
				for i := range ov {
					c, err := compareValues(ov[i], ws.prevOrd[i])
					if err != nil {
						fail(err)
						return ws, nil
					}
					if c != 0 {
						same = false
						break
					}
				}
			}
			if !same {
				ws.rank = ws.pos
			}
			ws.prevOrd, ws.hasPrev = ov, true
		} else {
			ws.rank = ws.pos
		}
		for i, sp := range p.specs {
			switch sp.name {
			case "row_number":
				ws.slotVals[i] = ws.pos
			case "rank":
				ws.slotVals[i] = ws.rank
			case "count":
				acc := ws.accs[i]
				if sp.arg != nil {
					v, err := sp.arg(row, env)
					if err != nil {
						fail(err)
						return ws, nil
					}
					if v != nil {
						acc.n++
					}
				} else {
					acc.n++
				}
				ws.slotVals[i] = acc.n
			case "sum", "avg":
				acc := ws.accs[i]
				v, err := sp.arg(row, env)
				if err != nil {
					fail(err)
					return ws, nil
				}
				if v != nil {
					f, ok := toFloat(v)
					if !ok {
						fail(execErrf("%s: argument is %s, not numeric", sp.name, valueTypeName(v)))
						return ws, nil
					}
					if iv, isInt := v.(int64); isInt {
						acc.sumInt += iv
					} else {
						acc.intOnly = false
					}
					acc.n++
					acc.sum += f
				}
				out, err := numAccFinal(sp.name)(acc)
				if err != nil {
					fail(err)
					return ws, nil
				}
				ws.slotVals[i] = out
			}
		}
		// Evaluate the projection (and the outer ORDER BY keys) for this
		// row with the slot values bound.
		ctx := &evalCtx{
			schema: p.src.schema, colIdx: colIdx, row: &row,
			nullable: p.src.nullable, matchedIdx: p.src.matchedIdx,
			slotOf: p.slotOf, slotVals: ws.slotVals, params: env.paramList(),
		}
		out := windowRowOut{row: make([]any, len(p.st.Items)), partVals: firstPartVals}
		for i, item := range p.st.Items {
			v, err := evalExpr(item.Expr, ctx)
			if err != nil {
				fail(err)
				return ws, nil
			}
			out.row[i] = v
		}
		if len(p.st.OrderBy) > 0 {
			out.keys = make([]any, len(p.st.OrderBy))
			kctx := &evalCtx{
				schema: p.src.schema, colIdx: colIdx, row: &row,
				nullable: p.src.nullable, matchedIdx: p.src.matchedIdx,
				slotOf: p.slotOf, slotVals: ws.slotVals,
				outCols: p.outCols, outVals: out.row, params: env.paramList(),
			}
			for k, key := range p.st.OrderBy {
				if ord, isOrd, _ := ordinal(key.Expr, len(out.row)); isOrd {
					out.keys[k] = out.row[ord]
					continue
				}
				v, err := evalExpr(key.Expr, kctx)
				if err != nil {
					fail(err)
					return ws, nil
				}
				out.keys[k] = v
			}
		}
		return ws, out
	}

	var parts map[string][]any
	if p.batch != nil {
		gathered, err := p.gatherBatch(s, env, input, ordCache)
		if err != nil {
			return nil, err
		}
		parts, err = s.db.RunWindowGathered(gathered, orderBy, init, step)
		if err != nil {
			return nil, err
		}
	} else {
		// Stage WHERE first so the window sees only surviving rows, then
		// gather row-at-a-time: the PartitionBy hook runs single-threaded
		// during RunWindow's gather pass and fills ordCache as it goes.
		if p.pred != nil {
			var predErr atomic.Value
			pred := enginePred(p.pred, env, &predErr)
			staged, err := s.db.SelectIntoTempCtx(env.context(), "sql_window", input, pred, nil)
			if err != nil {
				return nil, err
			}
			defer func(name string) { _ = s.db.DropTable(name) }(staged.Name())
			if e := predErr.Load(); e != nil {
				return nil, e.(error)
			}
			input = staged
		}
		spec := engine.WindowSpec{OrderBy: orderBy}
		spec.PartitionBy = func(r engine.Row) string {
			if len(p.ordFns) > 0 {
				vals := make([]any, len(p.ordFns))
				for i, fn := range p.ordFns {
					v, err := fn(r, env)
					if err != nil {
						fail(err)
						vals = nil
						break
					}
					vals[i] = v
				}
				ordCache[r] = vals
			}
			var buf []byte
			for _, fn := range p.partFns {
				v, err := fn(r, env)
				if err != nil {
					fail(err)
					return ""
				}
				buf = appendValKey(buf, v)
			}
			return string(buf)
		}
		var rwErr error
		parts, rwErr = s.db.RunWindowCtx(env.context(), input, spec, init, step)
		if rwErr != nil {
			return nil, rwErr
		}
	}
	if e := stepErr.Load(); e != nil {
		return nil, e.(error)
	}

	// Deterministic default order: partitions sorted by their key
	// VALUES (compareValues, so ints/floats/strings order naturally —
	// the encoded map key is injective but not order-preserving), rows
	// within a partition in window order.
	partKeys := make([]string, 0, len(parts))
	for k := range parts {
		partKeys = append(partKeys, k)
	}
	partValsOf := func(pk string) []any {
		if len(parts[pk]) == 0 {
			return nil
		}
		out, ok := parts[pk][0].(windowRowOut)
		if !ok {
			return nil
		}
		return out.partVals
	}
	var sortErr error
	sort.Slice(partKeys, func(a, b int) bool {
		av, bv := partValsOf(partKeys[a]), partValsOf(partKeys[b])
		for i := 0; i < len(av) && i < len(bv); i++ {
			c, err := compareOrderKeys(av[i], bv[i])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if c != 0 {
				return c < 0
			}
		}
		return partKeys[a] < partKeys[b]
	})
	if sortErr != nil {
		return nil, sortErr
	}
	var rows, keys [][]any
	for _, pk := range partKeys {
		for _, v := range parts[pk] {
			out, ok := v.(windowRowOut)
			if !ok {
				continue // a failed step emitted nil; stepErr already set
			}
			rows = append(rows, out.row)
			keys = append(keys, out.keys)
		}
	}
	if len(p.st.OrderBy) > 0 {
		if err := sortRows(s.db, rows, keys, p.finalDesc); err != nil {
			return nil, err
		}
	}
	rows = applyLimit(rows, p.limit)
	return &Result{Cols: p.outNames, Rows: rows, Tag: fmt.Sprintf("SELECT %d", len(rows))}, nil
}
