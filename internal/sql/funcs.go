package sql

import (
	"fmt"
	"strings"

	"madlib/internal/assoc"
	"madlib/internal/bayes"
	"madlib/internal/bootstrap"
	"madlib/internal/core"
	"madlib/internal/crf"
	"madlib/internal/dtree"
	"madlib/internal/engine"
	"madlib/internal/igd"
	"madlib/internal/kmeans"
	"madlib/internal/lda"
	"madlib/internal/linregr"
	"madlib/internal/logregr"
	"madlib/internal/model"
	"madlib/internal/profile"
	"madlib/internal/quantile"
	"madlib/internal/sketch"
	"madlib/internal/svdmf"
	"madlib/internal/svm"
)

// This file binds the library's methods into the madlib.* SQL namespace.
// Bindings are registered with internal/core at package load, so the
// executor dispatches every call through the same registry that backs the
// Table-1 method inventory — SQL never hard-codes a method.

func init() {
	for _, f := range []core.SQLFunc{
		{
			Name: "linregr", Kind: core.SQLTableValued,
			Signature: "linregr(['model',] y, x)",
			Help:      "ordinary-least-squares linear regression with inference (§4.1); leading name persists the model",
			Invoke:    invokeLinregr,
		},
		{
			Name: "logregr", Kind: core.SQLTableValued,
			Signature: "logregr(['model',] y, x [, solver [, max_iter [, tolerance]]])",
			Help:      "binary logistic regression; solver irls|cg|igd (§4.2); leading name persists the model",
			Invoke:    invokeLogregr,
		},
		{
			Name: "predict", Kind: core.SQLScalar,
			Signature: "predict('model', f1, f2, ...)",
			Help:      "score rows against a model persisted in madlib_models (compiled + vectorized; dot product through the model's link function)",
		},
		{
			Name: "kmeans", Kind: core.SQLTableValued,
			Signature: "kmeans(coords, k [, seed])",
			Help:      "k-means clustering of a vector column (§4.3)",
			Invoke:    invokeKMeans,
		},
		{
			Name: "naive_bayes", Kind: core.SQLTableValued,
			Signature: "naive_bayes(class, attrs)",
			Help:      "naive Bayes class priors over a (text, vector) table",
			Invoke:    invokeNaiveBayes,
		},
		{
			Name: "c45", Kind: core.SQLTableValued,
			Signature: "c45(class, attrs)",
			Help:      "C4.5 decision-tree summary over a (text, vector) table",
			Invoke:    invokeC45,
		},
		{
			Name: "svm", Kind: core.SQLTableValued,
			Signature: "svm(['model',] y, x [, mode])",
			Help:      "linear SVM; mode classification|regression|novelty; leading name persists the model",
			Invoke:    invokeSVM,
		},
		{
			Name: "sgd_train", Kind: core.SQLTableValued,
			Signature: "sgd_train(['model',] loss, y, x [, epochs [, step [, seed]]])",
			Help:      "unified IGD trainer; loss logistic|hinge|least_squares, or sgd_train('factorization', i, j, v, rank, ...); leading name persists the model",
			Invoke:    invokeSGDTrain,
		},
		{
			Name: "assoc_rules", Kind: core.SQLTableValued,
			Signature: "assoc_rules(basket, item [, min_support [, min_confidence]])",
			Help:      "Apriori association rules over a (basket, item) table",
			Invoke:    invokeAssocRules,
		},
		{
			Name: "profile", Kind: core.SQLTableValued,
			Signature: "profile()",
			Help:      "per-column univariate summaries of the FROM table (§3.1.3)",
			Invoke:    invokeProfile,
		},
		{
			Name: "svdmf", Kind: core.SQLTableValued,
			Signature: "svdmf(i, j, v, rank [, max_passes])",
			Help:      "low-rank matrix factorization of sparse (i, j, v) cells by IGD",
			Invoke:    invokeSvdmf,
		},
		{
			Name: "lda", Kind: core.SQLTableValued,
			Signature: "lda(doc, word, topics [, iterations [, seed]])",
			Help:      "latent Dirichlet allocation over a (doc, word) token table",
			Invoke:    invokeLDA,
		},
		{
			Name: "bootstrap", Kind: core.SQLTableValued,
			Signature: "bootstrap(expr [, iterations [, fraction [, seed]]])",
			Help:      "m-of-n bootstrap of the mean of expr (§3.1.2 virtual-table pattern)",
			Invoke:    invokeBootstrap,
		},
		{
			Name: "crf", Kind: core.SQLTableValued,
			Signature: "crf(words, tags [, max_passes])",
			Help:      "linear-chain CRF training over a sentence table (§5); words/tags are space-separated token columns",
			Invoke:    invokeCRF,
		},
		{
			Name: "quantile", Kind: core.SQLAggregate,
			Signature: "quantile(expr, phi)",
			Help:      "exact phi-quantile of a numeric column or expression",
			BuildAggregate: func(schema engine.Schema, args []any) (engine.Aggregate, error) {
				if err := wantArgs("quantile", args, 2, 2); err != nil {
					return nil, err
				}
				get, err := floatRowArg("quantile", schema, args, 0)
				if err != nil {
					return nil, err
				}
				phi, err := floatArg("quantile", args, 1)
				if err != nil {
					return nil, err
				}
				if phi < 0 || phi > 1 {
					return nil, fmt.Errorf("quantile: phi %v outside [0,1]", phi)
				}
				return finalWrap{
					Aggregate: exactQuantileOver(get, []float64{phi}),
					fn:        func(v any) (any, error) { return v.([]float64)[0], nil },
				}, nil
			},
		},
		{
			Name: "approx_quantile", Kind: core.SQLAggregate,
			Signature: "approx_quantile(expr, eps, phi)",
			Help:      "Greenwald-Khanna eps-approximate phi-quantile",
			BuildAggregate: func(schema engine.Schema, args []any) (engine.Aggregate, error) {
				if err := wantArgs("approx_quantile", args, 3, 3); err != nil {
					return nil, err
				}
				get, err := floatRowArg("approx_quantile", schema, args, 0)
				if err != nil {
					return nil, err
				}
				eps, err := floatArg("approx_quantile", args, 1)
				if err != nil {
					return nil, err
				}
				phi, err := floatArg("approx_quantile", args, 2)
				if err != nil {
					return nil, err
				}
				if _, err := quantile.NewGK(eps); err != nil {
					return nil, err
				}
				return finalWrap{
					Aggregate: gkQuantileOver(get, eps, []float64{phi}),
					fn:        func(v any) (any, error) { return v.([]float64)[0], nil },
				}, nil
			},
		},
		{
			Name: "fmcount", Kind: core.SQLAggregate,
			Signature: "fmcount(expr)",
			Help:      "Flajolet-Martin approximate distinct count",
			BuildAggregate: func(schema engine.Schema, args []any) (engine.Aggregate, error) {
				if err := wantArgs("fmcount", args, 1, 1); err != nil {
					return nil, err
				}
				if ea, ok := args[0].(core.ExprArg); ok {
					return fmExprAggregate(ea.Value), nil
				}
				ci, err := anyColArg("fmcount", schema, args, 0)
				if err != nil {
					return nil, err
				}
				return sketch.FMAggregate(ci, schema[ci].Kind), nil
			},
		},
	} {
		core.RegisterSQLFunc(f)
	}
}

// finalWrap post-processes an aggregate's Final value (e.g. unwrap a
// one-element quantile slice into a scalar).
type finalWrap struct {
	engine.Aggregate
	fn func(any) (any, error)
}

func (w finalWrap) Final(state any) (any, error) {
	v, err := w.Aggregate.Final(state)
	if err != nil {
		return nil, err
	}
	return w.fn(v)
}

// errAccState wraps an accumulator with the first row-evaluation error,
// so computed-argument aggregates surface clean SQL errors instead of
// panicking mid-scan.
type errAccState[T any] struct {
	acc T
	err error
}

// exactQuantileOver is quantile.ExactAggregate with a per-row getter
// instead of a column index, so computed expressions (and Int columns)
// feed the exact quantile.
func exactQuantileOver(get func(engine.Row) (float64, error), phis []float64) engine.Aggregate {
	return engine.FuncAggregate{
		InitFn: func() any { return &errAccState[[]float64]{} },
		TransitionFn: func(s any, row engine.Row) any {
			st := s.(*errAccState[[]float64])
			if st.err != nil {
				return st
			}
			v, err := get(row)
			if err != nil {
				st.err = err
				return st
			}
			st.acc = append(st.acc, v)
			return st
		},
		MergeFn: func(a, b any) any {
			sa, sb := a.(*errAccState[[]float64]), b.(*errAccState[[]float64])
			if sa.err == nil {
				sa.err = sb.err
			}
			sa.acc = append(sa.acc, sb.acc...)
			return sa
		},
		FinalFn: func(s any) (any, error) {
			st := s.(*errAccState[[]float64])
			if st.err != nil {
				return nil, st.err
			}
			out := make([]float64, len(phis))
			for i, phi := range phis {
				q, err := quantile.Exact(st.acc, phi)
				if err != nil {
					return nil, err
				}
				out[i] = q
			}
			return out, nil
		},
	}
}

// gkQuantileOver is quantile.GKAggregate with a per-row getter; eps must
// be pre-validated by the caller.
func gkQuantileOver(get func(engine.Row) (float64, error), eps float64, phis []float64) engine.Aggregate {
	return engine.FuncAggregate{
		InitFn: func() any {
			gk, err := quantile.NewGK(eps)
			if err != nil {
				panic(err) // validated by callers
			}
			return &errAccState[*quantile.GK]{acc: gk}
		},
		TransitionFn: func(s any, row engine.Row) any {
			st := s.(*errAccState[*quantile.GK])
			if st.err != nil {
				return st
			}
			v, err := get(row)
			if err != nil {
				st.err = err
				return st
			}
			st.acc.Insert(v)
			return st
		},
		MergeFn: func(a, b any) any {
			sa, sb := a.(*errAccState[*quantile.GK]), b.(*errAccState[*quantile.GK])
			if sa.err == nil {
				sa.err = sb.err
			}
			sa.acc.Merge(sb.acc)
			return sa
		},
		FinalFn: func(s any) (any, error) {
			st := s.(*errAccState[*quantile.GK])
			if st.err != nil {
				return nil, st.err
			}
			out := make([]float64, len(phis))
			for i, phi := range phis {
				q, err := st.acc.Quantile(phi)
				if err != nil {
					return nil, err
				}
				out[i] = q
			}
			return out, nil
		},
	}
}

// fmExprAggregate counts distinct values of a computed expression with an
// FM sketch, hashing by the value's runtime type.
func fmExprAggregate(get func(engine.Row) (any, error)) engine.Aggregate {
	return engine.FuncAggregate{
		InitFn: func() any { return &errAccState[*sketch.FM]{acc: sketch.NewFM()} },
		TransitionFn: func(s any, row engine.Row) any {
			st := s.(*errAccState[*sketch.FM])
			if st.err != nil {
				return st
			}
			v, err := get(row)
			if err != nil {
				st.err = err
				return st
			}
			switch x := v.(type) {
			case int64:
				st.acc.AddInt(x)
			case float64:
				st.acc.AddFloat(x)
			case string:
				st.acc.AddString(x)
			case bool:
				if x {
					st.acc.AddInt(1)
				} else {
					st.acc.AddInt(0)
				}
			default:
				st.err = fmt.Errorf("fmcount: cannot count %T values", v)
			}
			return st
		},
		MergeFn: func(a, b any) any {
			sa, sb := a.(*errAccState[*sketch.FM]), b.(*errAccState[*sketch.FM])
			if sa.err == nil {
				sa.err = sb.err
			}
			sa.acc.Merge(sb.acc)
			return sa
		},
		FinalFn: func(s any) (any, error) {
			st := s.(*errAccState[*sketch.FM])
			if st.err != nil {
				return nil, st.err
			}
			return st.acc.Estimate(), nil
		},
	}
}

// Argument helpers. args follow the resolveFuncArgs convention: column
// references as core.ColumnArg, computed expressions as core.ExprArg,
// literals as Go scalars.

func wantArgs(fn string, args []any, min, max int) error {
	if len(args) < min || len(args) > max {
		if min == max {
			return fmt.Errorf("%s expects %d argument(s), got %d", fn, min, len(args))
		}
		return fmt.Errorf("%s expects %d to %d arguments, got %d", fn, min, max, len(args))
	}
	return nil
}

// anyColArg resolves args[i] as a column reference of any kind.
func anyColArg(fn string, schema engine.Schema, args []any, i int) (int, error) {
	ca, ok := args[i].(core.ColumnArg)
	if !ok {
		return 0, fmt.Errorf("%s: argument %d must be a column reference", fn, i+1)
	}
	ci := schema.Index(ca.Name)
	if ci < 0 {
		return 0, fmt.Errorf("%w: %q", engine.ErrNoColumn, ca.Name)
	}
	return ci, nil
}

// floatRowArg resolves args[i] as a numeric per-row input: a Float or Int
// column, or a computed numeric expression (core.ExprArg).
func floatRowArg(fn string, schema engine.Schema, args []any, i int) (func(engine.Row) (float64, error), error) {
	switch a := args[i].(type) {
	case core.ColumnArg:
		ci := schema.Index(a.Name)
		if ci < 0 {
			return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, a.Name)
		}
		switch schema[ci].Kind {
		case engine.Float:
			return func(r engine.Row) (float64, error) { return r.Float(ci), nil }, nil
		case engine.Int:
			return func(r engine.Row) (float64, error) { return float64(r.Int(ci)), nil }, nil
		}
		return nil, fmt.Errorf("%s: column %q is %s, want %s", fn, a.Name, schema[ci].Kind, engine.Float)
	case core.ExprArg:
		if a.Kind != engine.Float && a.Kind != engine.Int {
			return nil, fmt.Errorf("%s: expression %s is %s, want numeric", fn, a.Name, a.Kind)
		}
		return a.Float, nil
	}
	return nil, fmt.Errorf("%s: argument %d must be a column or an expression over the input table", fn, i+1)
}

// colArg resolves args[i] as a column reference of the given kind (Float
// also accepts Int, matching the engine's numeric widening).
func colArg(fn string, schema engine.Schema, args []any, i int, kind engine.Kind) (int, error) {
	ci, err := anyColArg(fn, schema, args, i)
	if err != nil {
		return 0, err
	}
	got := schema[ci].Kind
	if got != kind && !(kind == engine.Float && got == engine.Int) {
		return 0, fmt.Errorf("%s: column %q is %s, want %s", fn, schema[ci].Name, got, kind)
	}
	return ci, nil
}

// colNameArg resolves args[i] as a column reference and returns its name
// after validating the kind (for Invoke bindings that pass names on to
// facade-style Run functions).
func colNameArg(fn string, schema engine.Schema, args []any, i int, kind engine.Kind) (string, error) {
	ci, err := colArg(fn, schema, args, i, kind)
	if err != nil {
		return "", err
	}
	return schema[ci].Name, nil
}

func floatArg(fn string, args []any, i int) (float64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("%s: missing argument %d", fn, i+1)
	}
	f, ok := toFloat(args[i])
	if !ok {
		return 0, fmt.Errorf("%s: argument %d must be numeric", fn, i+1)
	}
	return f, nil
}

func intArg(fn string, args []any, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("%s: missing argument %d", fn, i+1)
	}
	n, ok := args[i].(int64)
	if !ok {
		return 0, fmt.Errorf("%s: argument %d must be an integer", fn, i+1)
	}
	return n, nil
}

func strArg(fn string, args []any, i int) (string, error) {
	if i >= len(args) {
		return "", fmt.Errorf("%s: missing argument %d", fn, i+1)
	}
	s, ok := args[i].(string)
	if !ok {
		return "", fmt.Errorf("%s: argument %d must be a string", fn, i+1)
	}
	return s, nil
}

// Table-valued bindings.

// persistModelName detects a trainer's persist call form — a leading
// string argument naming the model — and splits the name off. The
// normal forms of linregr/logregr/svm start with a column reference, so
// a leading plain string is unambiguous. (sgd_train, whose normal form
// starts with the loss string, detects the two-leading-strings shape
// inline instead.)
func persistModelName(args []any) (string, []any, bool) {
	if len(args) >= 2 {
		if s, ok := args[0].(string); ok {
			return s, args[1:], true
		}
	}
	return "", args, false
}

// persistResult writes the fitted model into the madlib_models catalog
// and returns the acknowledgment relation of the persist call form.
func persistResult(db *engine.DB, m model.Model) (engine.Schema, [][]any, error) {
	saved, err := model.Save(db, m)
	if err != nil {
		return nil, nil, err
	}
	out := engine.Schema{
		{Name: "model", Kind: engine.String},
		{Name: "kind", Kind: engine.String},
		{Name: "dims", Kind: engine.Int},
		{Name: "num_rows", Kind: engine.Int},
		{Name: "version", Kind: engine.Int},
	}
	return out, [][]any{{saved.Name, saved.Kind, int64(len(saved.Coef)), saved.NumRows, saved.Version}}, nil
}

func invokeLinregr(db *engine.DB, t *engine.Table, args []any) (engine.Schema, [][]any, error) {
	modelName, args, persist := persistModelName(args)
	if err := wantArgs("linregr", args, 2, 2); err != nil {
		return nil, nil, err
	}
	schema := t.Schema()
	y, err := colNameArg("linregr", schema, args, 0, engine.Float)
	if err != nil {
		return nil, nil, err
	}
	x, err := colNameArg("linregr", schema, args, 1, engine.Vector)
	if err != nil {
		return nil, nil, err
	}
	res, err := linregr.Run(db, t, y, x)
	if err != nil {
		return nil, nil, err
	}
	if persist {
		return persistResult(db, model.Model{Name: modelName, Kind: "linregr", Coef: res.Coef, NumRows: t.Count()})
	}
	out := engine.Schema{
		{Name: "coef", Kind: engine.Vector},
		{Name: "r2", Kind: engine.Float},
		{Name: "std_err", Kind: engine.Vector},
		{Name: "t_stats", Kind: engine.Vector},
		{Name: "p_values", Kind: engine.Vector},
		{Name: "condition_no", Kind: engine.Float},
	}
	row := []any{res.Coef, res.R2, res.StdErr, res.TStats, res.PValues, res.ConditionNo}
	return out, [][]any{row}, nil
}

func invokeLogregr(db *engine.DB, t *engine.Table, args []any) (engine.Schema, [][]any, error) {
	modelName, args, persist := persistModelName(args)
	if err := wantArgs("logregr", args, 2, 5); err != nil {
		return nil, nil, err
	}
	schema := t.Schema()
	y, err := colNameArg("logregr", schema, args, 0, engine.Float)
	if err != nil {
		return nil, nil, err
	}
	x, err := colNameArg("logregr", schema, args, 1, engine.Vector)
	if err != nil {
		return nil, nil, err
	}
	opts := logregr.Options{}
	if len(args) >= 3 {
		solver, err := strArg("logregr", args, 2)
		if err != nil {
			return nil, nil, err
		}
		switch strings.ToLower(solver) {
		case "irls":
			opts.Solver = logregr.IRLS
		case "cg":
			opts.Solver = logregr.CG
		case "igd":
			opts.Solver = logregr.IGD
		default:
			return nil, nil, fmt.Errorf("logregr: unknown solver %q (want irls, cg or igd)", solver)
		}
	}
	if len(args) >= 4 {
		n, err := intArg("logregr", args, 3)
		if err != nil {
			return nil, nil, err
		}
		opts.MaxIterations = int(n)
	}
	if len(args) == 5 {
		if opts.Tolerance, err = floatArg("logregr", args, 4); err != nil {
			return nil, nil, err
		}
	}
	res, err := logregr.Run(db, t, y, x, opts)
	if err != nil {
		return nil, nil, err
	}
	if persist {
		return persistResult(db, model.Model{Name: modelName, Kind: "logregr", Coef: res.Coef, NumRows: t.Count()})
	}
	out := engine.Schema{
		{Name: "coef", Kind: engine.Vector},
		{Name: "log_likelihood", Kind: engine.Float},
		{Name: "std_err", Kind: engine.Vector},
		{Name: "z_stats", Kind: engine.Vector},
		{Name: "p_values", Kind: engine.Vector},
		{Name: "odds_ratios", Kind: engine.Vector},
		{Name: "num_iterations", Kind: engine.Int},
	}
	row := []any{res.Coef, res.LogLikelihood, res.StdErr, res.ZStats, res.PValues, res.OddsRatios, int64(res.Iterations)}
	return out, [][]any{row}, nil
}

func invokeKMeans(db *engine.DB, t *engine.Table, args []any) (engine.Schema, [][]any, error) {
	if err := wantArgs("kmeans", args, 2, 3); err != nil {
		return nil, nil, err
	}
	schema := t.Schema()
	coords, err := colNameArg("kmeans", schema, args, 0, engine.Vector)
	if err != nil {
		return nil, nil, err
	}
	k, err := intArg("kmeans", args, 1)
	if err != nil {
		return nil, nil, err
	}
	opts := kmeans.Options{K: int(k)}
	if len(args) == 3 {
		seed, err := intArg("kmeans", args, 2)
		if err != nil {
			return nil, nil, err
		}
		opts.Seed = seed
	}
	res, err := kmeans.Run(db, t, coords, opts)
	if err != nil {
		return nil, nil, err
	}
	out := engine.Schema{
		{Name: "centroid_id", Kind: engine.Int},
		{Name: "centroid", Kind: engine.Vector},
		{Name: "size", Kind: engine.Int},
	}
	rows := make([][]any, len(res.Centroids))
	for i, c := range res.Centroids {
		rows[i] = []any{int64(i), c, res.Sizes[i]}
	}
	return out, rows, nil
}

func invokeNaiveBayes(db *engine.DB, t *engine.Table, args []any) (engine.Schema, [][]any, error) {
	if err := wantArgs("naive_bayes", args, 2, 2); err != nil {
		return nil, nil, err
	}
	schema := t.Schema()
	class, err := colNameArg("naive_bayes", schema, args, 0, engine.String)
	if err != nil {
		return nil, nil, err
	}
	attrs, err := colNameArg("naive_bayes", schema, args, 1, engine.Vector)
	if err != nil {
		return nil, nil, err
	}
	m, err := bayes.Train(db, t, class, attrs, bayes.Options{})
	if err != nil {
		return nil, nil, err
	}
	out := engine.Schema{
		{Name: "class", Kind: engine.String},
		{Name: "prior", Kind: engine.Float},
	}
	rows := make([][]any, len(m.Classes))
	for i, c := range m.Classes {
		rows[i] = []any{c, m.Priors[i]}
	}
	return out, rows, nil
}

func invokeC45(db *engine.DB, t *engine.Table, args []any) (engine.Schema, [][]any, error) {
	if err := wantArgs("c45", args, 2, 2); err != nil {
		return nil, nil, err
	}
	schema := t.Schema()
	class, err := colNameArg("c45", schema, args, 0, engine.String)
	if err != nil {
		return nil, nil, err
	}
	attrs, err := colNameArg("c45", schema, args, 1, engine.Vector)
	if err != nil {
		return nil, nil, err
	}
	m, err := dtree.Train(db, t, class, attrs, dtree.Options{})
	if err != nil {
		return nil, nil, err
	}
	out := engine.Schema{
		{Name: "nodes", Kind: engine.Int},
		{Name: "depth", Kind: engine.Int},
		{Name: "classes", Kind: engine.Int},
	}
	return out, [][]any{{int64(m.Size()), int64(m.Depth()), int64(len(m.Classes))}}, nil
}

func invokeSVM(db *engine.DB, t *engine.Table, args []any) (engine.Schema, [][]any, error) {
	modelName, args, persist := persistModelName(args)
	if err := wantArgs("svm", args, 2, 3); err != nil {
		return nil, nil, err
	}
	schema := t.Schema()
	y, err := colNameArg("svm", schema, args, 0, engine.Float)
	if err != nil {
		return nil, nil, err
	}
	x, err := colNameArg("svm", schema, args, 1, engine.Vector)
	if err != nil {
		return nil, nil, err
	}
	opts := svm.Options{}
	if len(args) == 3 {
		mode, err := strArg("svm", args, 2)
		if err != nil {
			return nil, nil, err
		}
		switch strings.ToLower(mode) {
		case "classification":
			opts.Mode = svm.Classification
		case "regression":
			opts.Mode = svm.Regression
		case "novelty":
			opts.Mode = svm.Novelty
		default:
			return nil, nil, fmt.Errorf("svm: unknown mode %q", mode)
		}
	}
	m, err := svm.Train(db, t, y, x, opts)
	if err != nil {
		return nil, nil, err
	}
	if persist {
		return persistResult(db, model.Model{Name: modelName, Kind: "svm", Coef: m.Weights, NumRows: m.NumRows})
	}
	loss := 0.0
	if len(m.LossHistory) > 0 {
		loss = m.LossHistory[len(m.LossHistory)-1]
	}
	out := engine.Schema{
		{Name: "weights", Kind: engine.Vector},
		{Name: "final_loss", Kind: engine.Float},
		{Name: "num_rows", Kind: engine.Int},
	}
	return out, [][]any{{m.Weights, loss, m.NumRows}}, nil
}

// vectorColWidth probes the width of a Vector column straight off
// segment storage, or -1 when the table is empty.
func vectorColWidth(t *engine.Table, col int) int {
	for _, seg := range t.Segments() {
		if vecs := seg.Vectors(col); len(vecs) > 0 {
			return len(vecs[0])
		}
	}
	return -1
}

// invokeSGDTrain is the generic entry to the unified igd harness: any
// named loss trains over the FROM table with the same morsel-parallel
// vectorized epoch loop the dedicated learners use.
//
//	sgd_train('logistic'|'hinge'|'least_squares', y, x [, epochs [, step [, seed]]])
//	sgd_train('factorization', i, j, v, rank [, epochs [, step [, seed]]])
func invokeSGDTrain(db *engine.DB, t *engine.Table, args []any) (engine.Schema, [][]any, error) {
	// Persist form: the normal form already leads with the loss string,
	// so the model name is detected as TWO leading strings.
	var modelName string
	persist := false
	if len(args) >= 2 {
		if s0, ok0 := args[0].(string); ok0 {
			if _, ok1 := args[1].(string); ok1 {
				modelName, args, persist = s0, args[1:], true
			}
		}
	}
	if err := wantArgs("sgd_train", args, 3, 8); err != nil {
		return nil, nil, err
	}
	lossName, err := strArg("sgd_train", args, 0)
	if err != nil {
		return nil, nil, err
	}
	lname := strings.ToLower(lossName)
	if persist && lname == "factorization" {
		return nil, nil, fmt.Errorf("sgd_train: a factorization model is not a coefficient vector and cannot be persisted for predict")
	}
	schema := t.Schema()
	var feat igd.Features
	var loss igd.Loss
	opts := igd.Options{}
	var next int // index of the first optional argument
	if lname == "factorization" {
		if err := wantArgs("sgd_train", args, 5, 8); err != nil {
			return nil, nil, err
		}
		ii, err := colArg("sgd_train", schema, args, 1, engine.Int)
		if err != nil {
			return nil, nil, err
		}
		ji, err := colArg("sgd_train", schema, args, 2, engine.Int)
		if err != nil {
			return nil, nil, err
		}
		vi, err := colArg("sgd_train", schema, args, 3, engine.Float)
		if err != nil {
			return nil, nil, err
		}
		rank, err := intArg("sgd_train", args, 4)
		if err != nil {
			return nil, nil, err
		}
		if rank < 1 {
			return nil, nil, fmt.Errorf("sgd_train: rank must be positive, got %d", rank)
		}
		// Probe the factor-matrix dimensions off segment storage.
		maxI, maxJ := int64(-1), int64(-1)
		for _, seg := range t.Segments() {
			for _, v := range seg.Ints(ii) {
				if v > maxI {
					maxI = v
				}
			}
			for _, v := range seg.Ints(ji) {
				if v > maxJ {
					maxJ = v
				}
			}
		}
		if maxI < 0 {
			return nil, nil, igd.ErrNoData
		}
		f := igd.Factorization{Rows: int(maxI) + 1, Cols: int(maxJ) + 1, Rank: int(rank)}
		loss = f
		opts.Start = f.InitWeights(0.5)
		feat = igd.ColumnFeatures(vi, ii, ji)
		next = 5
	} else {
		if err := wantArgs("sgd_train", args, 3, 6); err != nil {
			return nil, nil, err
		}
		yi, err := colArg("sgd_train", schema, args, 1, engine.Float)
		if err != nil {
			return nil, nil, err
		}
		xi, err := colArg("sgd_train", schema, args, 2, engine.Vector)
		if err != nil {
			return nil, nil, err
		}
		k := vectorColWidth(t, xi)
		if k < 0 {
			return nil, nil, igd.ErrNoData
		}
		switch lname {
		case "logistic":
			loss = igd.Logistic{K: k}
		case "hinge":
			loss = igd.Hinge{K: k}
		case "least_squares":
			loss = igd.LeastSquares{K: k}
		default:
			return nil, nil, fmt.Errorf("sgd_train: unknown loss %q", lossName)
		}
		feat = igd.VectorFeatures(yi, xi)
		next = 3
	}
	if len(args) > next {
		epochs, err := intArg("sgd_train", args, next)
		if err != nil {
			return nil, nil, err
		}
		opts.Epochs = int(epochs)
	}
	if len(args) > next+1 {
		if opts.StepSize, err = floatArg("sgd_train", args, next+1); err != nil {
			return nil, nil, err
		}
	}
	if len(args) > next+2 {
		seed, err := intArg("sgd_train", args, next+2)
		if err != nil {
			return nil, nil, err
		}
		opts.Seed = seed
	}
	res, err := igd.Train(db, t, feat, loss, opts)
	if err != nil {
		return nil, nil, err
	}
	if persist {
		return persistResult(db, model.Model{Name: modelName, Kind: "sgd:" + lname, Coef: res.Weights, NumRows: res.NumRows})
	}
	final := 0.0
	if len(res.LossHistory) > 0 {
		final = res.LossHistory[len(res.LossHistory)-1]
	}
	out := engine.Schema{
		{Name: "loss", Kind: engine.String},
		{Name: "weights", Kind: engine.Vector},
		{Name: "final_loss", Kind: engine.Float},
		{Name: "epochs", Kind: engine.Int},
		{Name: "num_rows", Kind: engine.Int},
	}
	return out, [][]any{{lname, res.Weights, final, int64(res.Epochs), res.NumRows}}, nil
}

func invokeAssocRules(db *engine.DB, t *engine.Table, args []any) (engine.Schema, [][]any, error) {
	if err := wantArgs("assoc_rules", args, 2, 4); err != nil {
		return nil, nil, err
	}
	schema := t.Schema()
	basket, err := colNameArg("assoc_rules", schema, args, 0, engine.Int)
	if err != nil {
		return nil, nil, err
	}
	item, err := colNameArg("assoc_rules", schema, args, 1, engine.String)
	if err != nil {
		return nil, nil, err
	}
	opts := assoc.Options{}
	if len(args) >= 3 {
		if opts.MinSupport, err = floatArg("assoc_rules", args, 2); err != nil {
			return nil, nil, err
		}
	}
	if len(args) == 4 {
		if opts.MinConfidence, err = floatArg("assoc_rules", args, 3); err != nil {
			return nil, nil, err
		}
	}
	res, err := assoc.MineTable(db, t, basket, item, opts)
	if err != nil {
		return nil, nil, err
	}
	out := engine.Schema{
		{Name: "antecedent", Kind: engine.String},
		{Name: "consequent", Kind: engine.String},
		{Name: "support", Kind: engine.Float},
		{Name: "confidence", Kind: engine.Float},
		{Name: "lift", Kind: engine.Float},
	}
	rows := make([][]any, len(res.Rules))
	for i, r := range res.Rules {
		rows[i] = []any{
			"{" + strings.Join(r.Antecedent, ",") + "}",
			"{" + strings.Join(r.Consequent, ",") + "}",
			r.Support, r.Confidence, r.Lift,
		}
	}
	return out, rows, nil
}

func invokeSvdmf(db *engine.DB, t *engine.Table, args []any) (engine.Schema, [][]any, error) {
	if err := wantArgs("svdmf", args, 4, 5); err != nil {
		return nil, nil, err
	}
	schema := t.Schema()
	iCol, err := colNameArg("svdmf", schema, args, 0, engine.Int)
	if err != nil {
		return nil, nil, err
	}
	jCol, err := colNameArg("svdmf", schema, args, 1, engine.Int)
	if err != nil {
		return nil, nil, err
	}
	vCol, err := colNameArg("svdmf", schema, args, 2, engine.Float)
	if err != nil {
		return nil, nil, err
	}
	rank, err := intArg("svdmf", args, 3)
	if err != nil {
		return nil, nil, err
	}
	opts := svdmf.Options{Rank: int(rank)}
	if len(args) == 5 {
		passes, err := intArg("svdmf", args, 4)
		if err != nil {
			return nil, nil, err
		}
		opts.MaxPasses = int(passes)
	}
	m, err := svdmf.Factorize(db, t, iCol, jCol, vCol, opts)
	if err != nil {
		return nil, nil, err
	}
	out := engine.Schema{
		{Name: "rows", Kind: engine.Int},
		{Name: "cols", Kind: engine.Int},
		{Name: "rank", Kind: engine.Int},
		{Name: "rmse", Kind: engine.Float},
		{Name: "passes", Kind: engine.Int},
	}
	return out, [][]any{{int64(m.Rows), int64(m.Cols), int64(m.Rank), m.RMSE, int64(m.Passes)}}, nil
}

func invokeLDA(db *engine.DB, t *engine.Table, args []any) (engine.Schema, [][]any, error) {
	if err := wantArgs("lda", args, 3, 5); err != nil {
		return nil, nil, err
	}
	schema := t.Schema()
	docCol, err := colNameArg("lda", schema, args, 0, engine.Int)
	if err != nil {
		return nil, nil, err
	}
	wordCol, err := colNameArg("lda", schema, args, 1, engine.Int)
	if err != nil {
		return nil, nil, err
	}
	topics, err := intArg("lda", args, 2)
	if err != nil {
		return nil, nil, err
	}
	opts := lda.Options{Topics: int(topics)}
	if len(args) >= 4 {
		iters, err := intArg("lda", args, 3)
		if err != nil {
			return nil, nil, err
		}
		opts.Iterations = int(iters)
	}
	if len(args) == 5 {
		if opts.Seed, err = intArg("lda", args, 4); err != nil {
			return nil, nil, err
		}
	}
	m, err := lda.TrainTable(db, t, docCol, wordCol, opts)
	if err != nil {
		return nil, nil, err
	}
	out := engine.Schema{
		{Name: "topic", Kind: engine.Int},
		{Name: "tokens", Kind: engine.Int},
		{Name: "top_words", Kind: engine.Vector},
	}
	rows := make([][]any, m.Topics)
	for k := 0; k < m.Topics; k++ {
		top := m.TopWords(k, 5)
		ids := make([]float64, len(top))
		for i, w := range top {
			ids[i] = float64(w)
		}
		rows[k] = []any{int64(k), int64(m.TopicTotal[k]), ids}
	}
	return out, rows, nil
}

func invokeBootstrap(db *engine.DB, t *engine.Table, args []any) (engine.Schema, [][]any, error) {
	if err := wantArgs("bootstrap", args, 1, 4); err != nil {
		return nil, nil, err
	}
	schema := t.Schema()
	get, err := floatRowArg("bootstrap", schema, args, 0)
	if err != nil {
		return nil, nil, err
	}
	opts := bootstrap.Options{}
	if len(args) >= 2 {
		iters, err := intArg("bootstrap", args, 1)
		if err != nil {
			return nil, nil, err
		}
		opts.Iterations = int(iters)
	}
	if len(args) >= 3 {
		if opts.SampleFraction, err = floatArg("bootstrap", args, 2); err != nil {
			return nil, nil, err
		}
	}
	if len(args) == 4 {
		if opts.Seed, err = intArg("bootstrap", args, 3); err != nil {
			return nil, nil, err
		}
	}
	// The resampled statistic is the mean of the argument expression,
	// folded through the same numeric accumulator the SQL avg uses.
	mean := engine.FuncAggregate{
		InitFn: func() any { return &errAccState[*numAccState]{acc: &numAccState{}} },
		TransitionFn: func(s any, row engine.Row) any {
			st := s.(*errAccState[*numAccState])
			if st.err != nil {
				return st
			}
			v, err := get(row)
			if err != nil {
				st.err = err
				return st
			}
			st.acc.n++
			st.acc.sum += v
			return st
		},
		MergeFn: func(a, b any) any {
			sa, sb := a.(*errAccState[*numAccState]), b.(*errAccState[*numAccState])
			if sa.err == nil {
				sa.err = sb.err
			}
			sa.acc.n += sb.acc.n
			sa.acc.sum += sb.acc.sum
			return sa
		},
		FinalFn: func(s any) (any, error) {
			st := s.(*errAccState[*numAccState])
			if st.err != nil {
				return nil, st.err
			}
			if st.acc.n == 0 {
				return 0.0, nil
			}
			return st.acc.sum / float64(st.acc.n), nil
		},
	}
	res, err := bootstrap.Run(db, t, mean, opts)
	if err != nil {
		return nil, nil, err
	}
	out := engine.Schema{
		{Name: "mean", Kind: engine.Float},
		{Name: "std_err", Kind: engine.Float},
		{Name: "ci_low", Kind: engine.Float},
		{Name: "ci_high", Kind: engine.Float},
		{Name: "iterations", Kind: engine.Int},
	}
	return out, [][]any{{res.Mean, res.StdErr, res.CILow, res.CIHigh, int64(len(res.Estimates))}}, nil
}

func invokeCRF(db *engine.DB, t *engine.Table, args []any) (engine.Schema, [][]any, error) {
	if err := wantArgs("crf", args, 2, 3); err != nil {
		return nil, nil, err
	}
	schema := t.Schema()
	wordsCol, err := colNameArg("crf", schema, args, 0, engine.String)
	if err != nil {
		return nil, nil, err
	}
	tagsCol, err := colNameArg("crf", schema, args, 1, engine.String)
	if err != nil {
		return nil, nil, err
	}
	opts := crf.TrainOptions{}
	if len(args) == 3 {
		passes, err := intArg("crf", args, 2)
		if err != nil {
			return nil, nil, err
		}
		opts.MaxPasses = int(passes)
	}
	// One sentence per row: words and tags are space-separated, parallel
	// token lists (the SQL-typable flavor of crf.LoadCorpus's layout).
	wi, ti := schema.Index(wordsCol), schema.Index(tagsCol)
	var corpus []crf.Sentence
	for _, row := range db.Rows(t) {
		words := strings.Fields(row[wi].(string))
		tags := strings.Fields(row[ti].(string))
		if len(words) != len(tags) {
			return nil, nil, fmt.Errorf("crf: sentence has %d words but %d tags", len(words), len(tags))
		}
		if len(words) == 0 {
			continue
		}
		sent := make(crf.Sentence, len(words))
		for i := range words {
			sent[i] = crf.Token{Word: words[i], Tag: tags[i]}
		}
		corpus = append(corpus, sent)
	}
	m, err := crf.Train(corpus, opts)
	if err != nil {
		return nil, nil, err
	}
	out := engine.Schema{
		{Name: "tags", Kind: engine.Int},
		{Name: "features", Kind: engine.Int},
		{Name: "sentences", Kind: engine.Int},
	}
	return out, [][]any{{int64(len(m.Tags)), int64(m.FeatureCount()), int64(len(corpus))}}, nil
}

func invokeProfile(db *engine.DB, t *engine.Table, args []any) (engine.Schema, [][]any, error) {
	if err := wantArgs("profile", args, 0, 0); err != nil {
		return nil, nil, err
	}
	res, err := profile.Run(db, t.Name())
	if err != nil {
		return nil, nil, err
	}
	out := engine.Schema{
		{Name: "column", Kind: engine.String},
		{Name: "type", Kind: engine.String},
		{Name: "rows", Kind: engine.Int},
		{Name: "distinct", Kind: engine.Int},
		{Name: "min", Kind: engine.Float},
		{Name: "max", Kind: engine.Float},
		{Name: "mean", Kind: engine.Float},
	}
	rows := make([][]any, len(res.Columns))
	for i, c := range res.Columns {
		rows[i] = []any{c.Name, c.Kind.String(), c.Rows, c.Distinct, c.Min, c.Max, c.Mean}
	}
	return out, rows, nil
}
