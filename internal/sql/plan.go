package sql

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"madlib/internal/core"
	"madlib/internal/engine"
)

// Execution errors not tied to a source position.
var (
	// ErrNoRows is returned by Query helpers when a statement produced no
	// row set.
	ErrNoRows = errors.New("sql: statement returned no rows")
)

func execErrf(format string, args ...any) error {
	return fmt.Errorf("sql: "+format, args...)
}

// evalCtx supplies bindings for expression evaluation. All fields are
// optional: a zero ctx evaluates constant expressions only.
type evalCtx struct {
	// schema + row bind column references to a table row. nullable +
	// matchedIdx (when nullable is non-nil) reconstruct NULLs for the
	// padded side of a LEFT JOIN.
	schema     engine.Schema
	colIdx     map[string]int
	row        *engine.Row
	nullable   []bool
	matchedIdx int

	// slotOf + slotVals bind aggregate calls to their finalized values
	// (aggregate-query output stage).
	slotOf   map[*FuncCall]int
	slotVals []any
	// groupVals binds column references to GROUP BY key values.
	groupVals map[string]any

	// outCols + outVals bind column references to output columns
	// (ORDER BY over a computed result).
	outCols map[string]int
	outVals []any

	// params binds $n placeholders to EXECUTE-supplied values.
	params []any
}

func colIndexMap(schema engine.Schema) map[string]int {
	m := make(map[string]int, len(schema))
	for i, c := range schema {
		m[c.Name] = i
	}
	return m
}

// rowValue fetches one typed column value from the bound row.
func rowValue(schema engine.Schema, row *engine.Row, idx int) any {
	switch schema[idx].Kind {
	case engine.Float:
		return row.Float(idx)
	case engine.Vector:
		return row.Vector(idx)
	case engine.Int:
		return row.Int(idx)
	case engine.String:
		return row.Str(idx)
	case engine.Bool:
		return row.Bool(idx)
	}
	return nil
}

// evalExpr interprets a scalar expression under ctx. Values are int64,
// float64, string, bool or []float64.
func evalExpr(e Expr, ctx *evalCtx) (any, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *Param:
		if x.Idx < 1 || x.Idx > len(ctx.params) {
			return nil, execErrf("there is no parameter $%d", x.Idx)
		}
		return ctx.params[x.Idx-1], nil
	case *ArrayLit:
		out := make([]float64, len(x.Elems))
		for i, el := range x.Elems {
			v, err := evalExpr(el, ctx)
			if err != nil {
				return nil, err
			}
			f, ok := toFloat(v)
			if !ok {
				return nil, execErrf("array element %d is not numeric", i+1)
			}
			out[i] = f
		}
		return out, nil
	case *ColumnRef:
		// Bindings are consulted loosest-first: GROUP BY key values, then
		// output columns (ORDER BY over a computed result — including
		// aliases of aggregate items), then input rows.
		if ctx.groupVals != nil {
			if v, ok := ctx.groupVals[x.Name]; ok {
				return v, nil
			}
		}
		if ctx.outCols != nil {
			if i, ok := ctx.outCols[x.Name]; ok {
				return ctx.outVals[i], nil
			}
		}
		if ctx.row != nil {
			if i, ok := ctx.colIdx[x.Name]; ok {
				if ctx.nullable != nil && ctx.nullable[i] && !ctx.row.Bool(ctx.matchedIdx) {
					return nil, nil
				}
				return rowValue(ctx.schema, ctx.row, i), nil
			}
			return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, x.Name)
		}
		if ctx.groupVals != nil {
			return nil, execErrf("column %q must appear in the GROUP BY clause or be used in an aggregate function", x.Name)
		}
		if ctx.outCols != nil {
			return nil, execErrf("column %q does not exist in the result", x.Name)
		}
		return nil, execErrf("column reference %q is not allowed here", x.Name)
	case *Unary:
		v, err := evalExpr(x.X, ctx)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "-":
			switch n := v.(type) {
			case nil:
				return nil, nil
			case int64:
				return -n, nil
			case float64:
				return -n, nil
			}
			return nil, execErrf("cannot negate %s", valueTypeName(v))
		case "NOT":
			if v == nil {
				return nil, nil // NOT NULL is NULL
			}
			b, ok := v.(bool)
			if !ok {
				return nil, execErrf("argument of NOT must be boolean, not %s", valueTypeName(v))
			}
			return !b, nil
		}
		return nil, execErrf("unknown unary operator %q", x.Op)
	case *Binary:
		return evalBinary(x, ctx)
	case *FuncCall:
		if ctx.slotOf != nil {
			if i, ok := ctx.slotOf[x]; ok {
				return ctx.slotVals[i], nil
			}
		}
		return evalScalarFunc(x, ctx)
	}
	return nil, execErrf("cannot evaluate %T", e)
}

func evalBinary(x *Binary, ctx *evalCtx) (any, error) {
	switch x.Op {
	case "AND", "OR":
		l, err := evalExpr(x.L, ctx)
		if err != nil {
			return nil, err
		}
		lb, ok := l.(bool)
		if !ok {
			if l != nil {
				return nil, execErrf("argument of %s must be boolean, not %s", x.Op, valueTypeName(l))
			}
			// NULL is not true in predicate position.
		}
		// Short-circuit.
		if x.Op == "AND" && !lb {
			return false, nil
		}
		if x.Op == "OR" && lb {
			return true, nil
		}
		r, err := evalExpr(x.R, ctx)
		if err != nil {
			return nil, err
		}
		rb, ok := r.(bool)
		if !ok {
			if r != nil {
				return nil, execErrf("argument of %s must be boolean, not %s", x.Op, valueTypeName(r))
			}
		}
		return rb, nil
	}
	l, err := evalExpr(x.L, ctx)
	if err != nil {
		return nil, err
	}
	r, err := evalExpr(x.R, ctx)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "+", "-", "*", "/", "%":
		return evalArith(x.Op, l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		// SQL three-valued logic, collapsed: a comparison with NULL is
		// false, so padded LEFT JOIN rows drop out of predicates. (ORDER
		// BY goes through compareOrderKeys instead, where NULL sorts as
		// the largest value.)
		if l == nil || r == nil {
			return false, nil
		}
		c, err := compareValues(l, r)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case "=":
			return c == 0, nil
		case "<>":
			return c != 0, nil
		case "<":
			return c < 0, nil
		case "<=":
			return c <= 0, nil
		case ">":
			return c > 0, nil
		case ">=":
			return c >= 0, nil
		}
	}
	return nil, execErrf("unknown operator %q", x.Op)
}

func evalArith(op string, l, r any) (any, error) {
	// NULL (a padded LEFT JOIN column) propagates through arithmetic.
	if l == nil || r == nil {
		return nil, nil
	}
	li, lInt := l.(int64)
	ri, rInt := r.(int64)
	if lInt && rInt {
		switch op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				return nil, execErrf("division by zero")
			}
			return li / ri, nil
		case "%":
			if ri == 0 {
				return nil, execErrf("division by zero")
			}
			return li % ri, nil
		}
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		return nil, execErrf("operator %s does not apply to %s and %s", op, valueTypeName(l), valueTypeName(r))
	}
	switch op {
	case "+":
		return lf + rf, nil
	case "-":
		return lf - rf, nil
	case "*":
		return lf * rf, nil
	case "/":
		if rf == 0 {
			return nil, execErrf("division by zero")
		}
		return lf / rf, nil
	case "%":
		if rf == 0 {
			return nil, execErrf("division by zero")
		}
		return math.Mod(lf, rf), nil
	}
	return nil, execErrf("unknown operator %q", op)
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int64:
		return float64(n), true
	}
	return 0, false
}

func valueTypeName(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case int64:
		return "bigint"
	case float64:
		return "double precision"
	case string:
		return "text"
	case bool:
		return "boolean"
	case []float64:
		return "double precision[]"
	}
	return fmt.Sprintf("%T", v)
}

// compareValues orders two values: nil first, then numerics (cross-type),
// bools (false < true), strings, vectors (lexicographic). Mismatched
// non-numeric types are an error.
func compareValues(a, b any) (int, error) {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0, nil
		case a == nil:
			return -1, nil
		default:
			return 1, nil
		}
	}
	if ai, ok := a.(int64); ok {
		if bi, ok := b.(int64); ok {
			// Compare int64 pairs exactly: widening through float64 loses
			// precision above 2^53 and would conflate or mis-order values.
			switch {
			case ai < bi:
				return -1, nil
			case ai > bi:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if af, ok := toFloat(a); ok {
		if bf, ok := toFloat(b); ok {
			switch {
			case af < bf:
				return -1, nil
			case af > bf:
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	if as, ok := a.(string); ok {
		if bs, ok := b.(string); ok {
			return strings.Compare(as, bs), nil
		}
	}
	if ab, ok := a.(bool); ok {
		if bb, ok := b.(bool); ok {
			switch {
			case ab == bb:
				return 0, nil
			case !ab:
				return -1, nil
			default:
				return 1, nil
			}
		}
	}
	if av, ok := a.([]float64); ok {
		if bv, ok := b.([]float64); ok {
			for i := 0; i < len(av) && i < len(bv); i++ {
				if av[i] != bv[i] {
					if av[i] < bv[i] {
						return -1, nil
					}
					return 1, nil
				}
			}
			switch {
			case len(av) < len(bv):
				return -1, nil
			case len(av) > len(bv):
				return 1, nil
			default:
				return 0, nil
			}
		}
	}
	return 0, execErrf("cannot compare %s with %s", valueTypeName(a), valueTypeName(b))
}

// evalScalarFunc applies a built-in scalar function.
func evalScalarFunc(x *FuncCall, ctx *evalCtx) (any, error) {
	if x.Schema != "" && x.Schema != "madlib" {
		return nil, execErrf("unknown schema %q", x.Schema)
	}
	if x.Over != nil {
		return nil, execErrf("window function %s(...) OVER is only allowed in the SELECT list", x.Name)
	}
	if x.Star {
		return nil, execErrf("%s(*) is only valid as an aggregate in a SELECT list", x.Name)
	}
	if isAggregateCall(x) {
		return nil, execErrf("aggregate function %s(...) is not allowed here", x.Name)
	}
	if x.Name == "predict" {
		// The interpreter has no engine handle to resolve models against;
		// scoring is a compiled path only.
		return nil, execErrf("madlib.predict requires a FROM clause (models are resolved when compiling a table scan)")
	}
	args := make([]any, len(x.Args))
	for i, a := range x.Args {
		v, err := evalExpr(a, ctx)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return applyScalarFunc(x, args)
}

// applyScalarFunc dispatches a built-in scalar function over evaluated
// arguments — the single function table shared by the interpreter
// (evalScalarFunc) and the compiled generic fallback (compileFuncCall).
func applyScalarFunc(x *FuncCall, args []any) (any, error) {
	num := func(i int) (float64, error) {
		f, ok := toFloat(args[i])
		if !ok {
			return 0, execErrf("%s: argument %d is not numeric", x.Name, i+1)
		}
		return f, nil
	}
	need := func(n int) error {
		if len(args) != n {
			return execErrf("%s expects %d argument(s), got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "abs":
		if err := need(1); err != nil {
			return nil, err
		}
		if n, ok := args[0].(int64); ok {
			if n < 0 {
				return -n, nil
			}
			return n, nil
		}
		f, err := num(0)
		if err != nil {
			return nil, err
		}
		return math.Abs(f), nil
	case "sqrt", "exp", "ln", "floor", "ceil":
		if err := need(1); err != nil {
			return nil, err
		}
		f, err := num(0)
		if err != nil {
			return nil, err
		}
		switch x.Name {
		case "sqrt":
			return math.Sqrt(f), nil
		case "exp":
			return math.Exp(f), nil
		case "ln":
			return math.Log(f), nil
		case "floor":
			return math.Floor(f), nil
		default:
			return math.Ceil(f), nil
		}
	case "pow", "power":
		if err := need(2); err != nil {
			return nil, err
		}
		a, err := num(0)
		if err != nil {
			return nil, err
		}
		b, err := num(1)
		if err != nil {
			return nil, err
		}
		return math.Pow(a, b), nil
	case "length", "array_length":
		if err := need(1); err != nil {
			return nil, err
		}
		switch v := args[0].(type) {
		case string:
			return int64(len(v)), nil
		case []float64:
			return int64(len(v)), nil
		}
		return nil, execErrf("length: argument must be text or array, not %s", valueTypeName(args[0]))
	case "array_get":
		if err := need(2); err != nil {
			return nil, err
		}
		vec, ok := args[0].([]float64)
		if !ok {
			return nil, execErrf("array_get: first argument must be an array")
		}
		i, ok := args[1].(int64)
		if !ok || i < 1 || int(i) > len(vec) {
			return nil, execErrf("array_get: index %v out of range 1..%d", args[1], len(vec))
		}
		return vec[i-1], nil
	}
	return nil, execErrf("unknown function %s(...)", x.Name)
}

// Built-in two-phase aggregates.
var builtinAggs = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"variance": true, "stddev": true,
}

// isAggregateCall reports whether the call is a built-in aggregate or a
// registered madlib aggregate function. A window call (fn(...) OVER ...)
// is never an aggregate: it is planned separately by the window executor.
func isAggregateCall(x *FuncCall) bool {
	if x.Over != nil {
		return false
	}
	if x.Schema == "" && builtinAggs[x.Name] {
		return true
	}
	if f, ok := core.LookupSQLFunc(x.Name); ok && f.Kind == core.SQLAggregate {
		return x.Schema == "" || x.Schema == "madlib"
	}
	return false
}

// isTableValuedCall reports whether the call is a registered madlib
// table-valued function.
func isTableValuedCall(x *FuncCall) bool {
	if x.Schema != "" && x.Schema != "madlib" {
		return false
	}
	f, ok := core.LookupSQLFunc(x.Name)
	return ok && f.Kind == core.SQLTableValued
}

// walkAgg visits e and all children pre-order, telling the callback
// whether each node sits inside an aggregate call's arguments. It is the
// single traversal underlying walkExpr, collectAggCalls,
// exprHasNestedAgg and the executor's grouped-column check.
func walkAgg(e Expr, visit func(e Expr, inAgg bool)) {
	var rec func(Expr, bool)
	rec = func(e Expr, inAgg bool) {
		if e == nil {
			return
		}
		visit(e, inAgg)
		switch x := e.(type) {
		case *ArrayLit:
			for _, el := range x.Elems {
				rec(el, inAgg)
			}
		case *Unary:
			rec(x.X, inAgg)
		case *Binary:
			rec(x.L, inAgg)
			rec(x.R, inAgg)
		case *FuncCall:
			inAgg = inAgg || isAggregateCall(x)
			for _, a := range x.Args {
				rec(a, inAgg)
			}
			if x.Over != nil {
				for _, pe := range x.Over.PartitionBy {
					rec(pe, inAgg)
				}
				for _, k := range x.Over.OrderBy {
					rec(k.Expr, inAgg)
				}
			}
		}
	}
	rec(e, false)
}

// collectWindowCalls returns the window (OVER) calls in e.
func collectWindowCalls(e Expr) []*FuncCall {
	var out []*FuncCall
	walkExpr(e, func(x Expr) {
		if fc, ok := x.(*FuncCall); ok && fc.Over != nil {
			out = append(out, fc)
		}
	})
	return out
}

// exprHasWindow reports whether e contains any window call.
func exprHasWindow(e Expr) bool { return len(collectWindowCalls(e)) > 0 }

// walkExpr visits e and all children, pre-order.
func walkExpr(e Expr, visit func(Expr)) {
	walkAgg(e, func(x Expr, _ bool) { visit(x) })
}

// collectAggCalls returns the aggregate calls in e, outermost only (an
// aggregate nested inside another aggregate's arguments is an error
// reported later).
func collectAggCalls(e Expr) []*FuncCall {
	var out []*FuncCall
	walkAgg(e, func(x Expr, inAgg bool) {
		if fc, ok := x.(*FuncCall); ok && !inAgg && isAggregateCall(fc) {
			out = append(out, fc)
		}
	})
	return out
}

// exprHasAgg reports whether e contains any aggregate call.
func exprHasAgg(e Expr) bool { return len(collectAggCalls(e)) > 0 }

// exprHasNestedAgg reports an aggregate call inside an aggregate's
// arguments.
func exprHasNestedAgg(e Expr) bool {
	nested := false
	walkAgg(e, func(x Expr, inAgg bool) {
		if fc, ok := x.(*FuncCall); ok && inAgg && isAggregateCall(fc) {
			nested = true
		}
	})
	return nested
}

// aggBuilder constructs the engine aggregate for one aggregate call with
// an execution environment bound. All compile work happens at plan time;
// invoking the builder per execution only allocates closures, which keeps
// cached plans reusable while letting $n parameters flow into built-in
// aggregate arguments (sum(v * $1)).
type aggBuilder func(env *execEnv) (engine.Aggregate, error)

// buildAggregate compiles one aggregate call into an aggBuilder. Built-in
// aggregates evaluate their compiled argument expression per row; madlib
// aggregates are built once by their registered binding (their arguments
// are fixed at plan time, so the instance is reusable — Init creates
// fresh state per run).
func buildAggregate(call *FuncCall, cc *compileCtx) (aggBuilder, error) {
	if x := call; x.Schema == "" && builtinAggs[x.Name] {
		return buildBuiltinAggregate(call, cc)
	}
	f, _ := core.LookupSQLFunc(call.Name)
	args, err := resolveFuncArgs(call, cc)
	if err != nil {
		return nil, err
	}
	agg, err := f.BuildAggregate(cc.schema, args)
	if err != nil {
		return nil, fmt.Errorf("sql: madlib.%s: %w", call.Name, err)
	}
	return func(*execEnv) (engine.Aggregate, error) { return agg, nil }, nil
}

// resolveFuncArgs resolves madlib call arguments: column references
// become core.ColumnArg, constants fold, and any other expression over
// the table compiles to a core.ExprArg whose getters the method's builder
// can evaluate per row (the ROADMAP's "computed arguments for scalar
// aggregates" item). $n parameters cannot appear here: madlib builders
// resolve their arguments at plan time.
func resolveFuncArgs(call *FuncCall, cc *compileCtx) ([]any, error) {
	schema := cc.schema
	args := make([]any, len(call.Args))
	for i, a := range call.Args {
		if cr, ok := a.(*ColumnRef); ok {
			ci := schema.Index(cr.Name)
			if ci < 0 {
				return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, cr.Name)
			}
			if cc.nullable != nil && cc.nullable[ci] {
				// madlib builders read column storage directly and would
				// see the zero padding, not NULLs.
				return nil, execErrf("%s over column %q from the nullable side of a LEFT JOIN is not supported", call.Name, cr.Name)
			}
			args[i] = core.ColumnArg{Name: cr.Name}
			continue
		}
		if v, err := evalExpr(a, &evalCtx{}); err == nil {
			args[i] = v
			continue
		}
		if exprHasParam(a) {
			return nil, execErrf("%s argument %d: parameters are not allowed in madlib function arguments", call.Name, i+1)
		}
		if exprHasAgg(a) {
			return nil, execErrf("aggregate calls cannot be nested")
		}
		c, err := compileExpr(a, cc)
		if err != nil {
			return nil, fmt.Errorf("sql: %s argument %d: %w", call.Name, i+1, err)
		}
		args[i] = core.ExprArg{
			Name:  a.String(),
			Kind:  engineKindOf(c.kind),
			Float: bindFloat(c.asFloat()),
			Value: bindAny(c.a),
		}
	}
	return args, nil
}

// engineKindOf maps a compiled kind back to the engine's column kinds;
// dynamic expressions report Float (they are runtime-checked anyway).
func engineKindOf(k ckind) engine.Kind {
	switch k {
	case ckInt:
		return engine.Int
	case ckStr:
		return engine.String
	case ckBool:
		return engine.Bool
	case ckVec:
		return engine.Vector
	}
	return engine.Float
}

// bindFloat/bindAny drop the execEnv argument for consumers outside the
// SQL package (core.ExprArg getters). Safe because resolveFuncArgs
// rejects $n parameters in these positions.
func bindFloat(fn floatFn) func(engine.Row) (float64, error) {
	return func(r engine.Row) (float64, error) { return fn(r, nil) }
}

func bindAny(fn anyFn) func(engine.Row) (any, error) {
	return func(r engine.Row) (any, error) { return fn(r, nil) }
}

// numAccState is the shared transition state of the numeric built-in
// aggregates: enough moments for count/sum/avg/variance/stddev.
type numAccState struct {
	n     int64
	sum   float64
	sumSq float64
	// intOnly tracks whether every input was an int64, so sum can stay
	// integral like SQL's sum(bigint).
	intOnly bool
	sumInt  int64
	err     error
}

// minmaxState tracks the extreme value seen so far.
type minmaxState struct {
	val any
	err error
}

// fminmaxState is minmaxState's unboxed fast path for float arguments.
type fminmaxState struct {
	val  float64
	seen bool
	err  error
}

// iminmaxState is the int64 fast path; ints never round-trip through
// float64 (which would lose precision above 2^53 and overflow at 2^63).
type iminmaxState struct {
	val  int64
	seen bool
	err  error
}

// countState counts rows, remembering the first argument-evaluation error.
type countState struct {
	n   int64
	err error
}

// buildBuiltinAggregate compiles count/sum/avg/min/max/variance/stddev
// into the engine's two-phase aggregate contract, so they execute
// segment-parallel exactly like the library's own methods. The argument
// expression is lowered to a typed closure at plan time; the returned
// builder only binds the execution environment.
func buildBuiltinAggregate(call *FuncCall, cc *compileCtx) (aggBuilder, error) {
	name := call.Name
	if call.Star {
		if name != "count" {
			return nil, execErrf("%s(*) is not supported; only count(*)", name)
		}
	} else if len(call.Args) != 1 {
		return nil, execErrf("%s expects exactly one argument", name)
	}
	var arg *compiled
	if !call.Star {
		var err error
		arg, err = compileExpr(call.Args[0], cc)
		if err != nil {
			return nil, err
		}
	}
	switch name {
	case "count":
		return func(env *execEnv) (engine.Aggregate, error) {
			// count(expr) still evaluates its argument so runtime errors
			// (e.g. division by zero) surface; there are no NULLs, so
			// every evaluated row counts.
			var evalArg anyFn
			if arg != nil {
				evalArg = arg.a
			}
			return engine.FuncAggregate{
				InitFn: func() any { return &countState{} },
				TransitionFn: func(s any, row engine.Row) any {
					st := s.(*countState)
					if st.err != nil {
						return st
					}
					if evalArg != nil {
						v, err := evalArg(row, env)
						if err != nil {
							st.err = err
							return st
						}
						// count(expr) skips NULLs (padded LEFT JOIN rows).
						if v == nil {
							return st
						}
					}
					st.n++
					return st
				},
				MergeFn: func(a, b any) any {
					sa, sb := a.(*countState), b.(*countState)
					if sa.err == nil {
						sa.err = sb.err
					}
					sa.n += sb.n
					return sa
				},
				FinalFn: func(s any) (any, error) {
					st := s.(*countState)
					return st.n, st.err
				},
			}, nil
		}, nil
	case "min", "max":
		wantLess := name == "min"
		if arg.kind == ckInt {
			getI := arg.i
			return func(env *execEnv) (engine.Aggregate, error) {
				return engine.FuncAggregate{
					InitFn: func() any { return &iminmaxState{} },
					TransitionFn: func(s any, row engine.Row) any {
						st := s.(*iminmaxState)
						if st.err != nil {
							return st
						}
						v, err := getI(row, env)
						if err != nil {
							st.err = err
							return st
						}
						if !st.seen || (wantLess && v < st.val) || (!wantLess && v > st.val) {
							st.val, st.seen = v, true
						}
						return st
					},
					MergeFn: func(a, b any) any {
						sa, sb := a.(*iminmaxState), b.(*iminmaxState)
						if sa.err != nil {
							return sa
						}
						if sb.err != nil {
							return sb
						}
						if sb.seen && (!sa.seen || (wantLess && sb.val < sa.val) || (!wantLess && sb.val > sa.val)) {
							sa.val, sa.seen = sb.val, true
						}
						return sa
					},
					FinalFn: func(s any) (any, error) {
						st := s.(*iminmaxState)
						if st.err != nil {
							return nil, st.err
						}
						if !st.seen {
							return nil, nil
						}
						return st.val, nil
					},
				}, nil
			}, nil
		}
		if arg.kind == ckFloat {
			getF := arg.f
			return func(env *execEnv) (engine.Aggregate, error) {
				return engine.FuncAggregate{
					InitFn: func() any { return &fminmaxState{} },
					TransitionFn: func(s any, row engine.Row) any {
						st := s.(*fminmaxState)
						if st.err != nil {
							return st
						}
						v, err := getF(row, env)
						if err != nil {
							st.err = err
							return st
						}
						if !st.seen || (wantLess && v < st.val) || (!wantLess && v > st.val) {
							st.val, st.seen = v, true
						}
						return st
					},
					MergeFn: func(a, b any) any {
						sa, sb := a.(*fminmaxState), b.(*fminmaxState)
						if sa.err != nil {
							return sa
						}
						if sb.err != nil {
							return sb
						}
						if sb.seen && (!sa.seen || (wantLess && sb.val < sa.val) || (!wantLess && sb.val > sa.val)) {
							sa.val, sa.seen = sb.val, true
						}
						return sa
					},
					FinalFn: func(s any) (any, error) {
						st := s.(*fminmaxState)
						if st.err != nil {
							return nil, st.err
						}
						if !st.seen {
							return nil, nil
						}
						return st.val, nil
					},
				}, nil
			}, nil
		}
		getA := arg.a
		return func(env *execEnv) (engine.Aggregate, error) {
			return engine.FuncAggregate{
				InitFn: func() any { return &minmaxState{} },
				TransitionFn: func(s any, row engine.Row) any {
					st := s.(*minmaxState)
					if st.err != nil {
						return st
					}
					v, err := getA(row, env)
					if err != nil {
						st.err = err
						return st
					}
					if v == nil {
						return st // min/max skip NULLs
					}
					if st.val == nil {
						st.val = v
						return st
					}
					c, err := compareValues(v, st.val)
					if err != nil {
						st.err = err
						return st
					}
					if (wantLess && c < 0) || (!wantLess && c > 0) {
						st.val = v
					}
					return st
				},
				MergeFn: func(a, b any) any {
					sa, sb := a.(*minmaxState), b.(*minmaxState)
					if sa.err != nil {
						return sa
					}
					if sb.err != nil {
						return sb
					}
					if sb.val == nil {
						return sa
					}
					if sa.val == nil {
						return sb
					}
					c, err := compareValues(sb.val, sa.val)
					if err != nil {
						sa.err = err
						return sa
					}
					if (wantLess && c < 0) || (!wantLess && c > 0) {
						sa.val = sb.val
					}
					return sa
				},
				FinalFn: func(s any) (any, error) {
					st := s.(*minmaxState)
					return st.val, st.err
				},
			}, nil
		}, nil
	case "sum", "avg", "variance", "stddev":
		if arg.kind != ckAny && !arg.isNumeric() {
			return nil, execErrf("%s: argument is %s, not numeric", name, arg.kind)
		}
		final := numAccFinal(name)
		switch arg.kind {
		case ckInt:
			getI := arg.i
			return func(env *execEnv) (engine.Aggregate, error) {
				return engine.FuncAggregate{
					InitFn: func() any { return &numAccState{intOnly: true} },
					TransitionFn: func(s any, row engine.Row) any {
						st := s.(*numAccState)
						if st.err != nil {
							return st
						}
						v, err := getI(row, env)
						if err != nil {
							st.err = err
							return st
						}
						f := float64(v)
						st.sumInt += v
						st.n++
						st.sum += f
						st.sumSq += f * f
						return st
					},
					MergeFn: mergeNumAcc,
					FinalFn: final,
				}, nil
			}, nil
		case ckFloat:
			getF := arg.f
			return func(env *execEnv) (engine.Aggregate, error) {
				return engine.FuncAggregate{
					InitFn: func() any { return &numAccState{} },
					TransitionFn: func(s any, row engine.Row) any {
						st := s.(*numAccState)
						if st.err != nil {
							return st
						}
						f, err := getF(row, env)
						if err != nil {
							st.err = err
							return st
						}
						st.n++
						st.sum += f
						st.sumSq += f * f
						return st
					},
					MergeFn: mergeNumAcc,
					FinalFn: final,
				}, nil
			}, nil
		}
		getA := arg.a
		return func(env *execEnv) (engine.Aggregate, error) {
			return engine.FuncAggregate{
				InitFn: func() any { return &numAccState{intOnly: true} },
				TransitionFn: func(s any, row engine.Row) any {
					st := s.(*numAccState)
					if st.err != nil {
						return st
					}
					v, err := getA(row, env)
					if err != nil {
						st.err = err
						return st
					}
					if v == nil {
						return st // sum/avg/variance/stddev skip NULLs
					}
					f, ok := toFloat(v)
					if !ok {
						st.err = execErrf("%s: argument is %s, not numeric", name, valueTypeName(v))
						return st
					}
					if i, ok := v.(int64); ok {
						st.sumInt += i
					} else {
						st.intOnly = false
					}
					st.n++
					st.sum += f
					st.sumSq += f * f
					return st
				},
				MergeFn: mergeNumAcc,
				FinalFn: final,
			}, nil
		}, nil
	}
	return nil, execErrf("unknown aggregate %s", name)
}

func mergeNumAcc(a, b any) any {
	sa, sb := a.(*numAccState), b.(*numAccState)
	if sa.err != nil {
		return sa
	}
	if sb.err != nil {
		return sb
	}
	sa.n += sb.n
	sa.sum += sb.sum
	sa.sumSq += sb.sumSq
	sa.sumInt += sb.sumInt
	sa.intOnly = sa.intOnly && sb.intOnly
	return sa
}

// numAccFinal finalizes the shared numeric accumulator for one of
// sum/avg/variance/stddev.
func numAccFinal(name string) func(any) (any, error) {
	return func(s any) (any, error) {
		st := s.(*numAccState)
		if st.err != nil {
			return nil, st.err
		}
		if st.n == 0 {
			return nil, nil // SQL aggregates are NULL over no rows
		}
		switch name {
		case "sum":
			if st.intOnly {
				return st.sumInt, nil
			}
			return st.sum, nil
		case "avg":
			return st.sum / float64(st.n), nil
		case "variance":
			if st.n < 2 {
				return nil, nil
			}
			mean := st.sum / float64(st.n)
			return (st.sumSq - float64(st.n)*mean*mean) / float64(st.n-1), nil
		default: // stddev
			if st.n < 2 {
				return nil, nil
			}
			mean := st.sum / float64(st.n)
			return math.Sqrt((st.sumSq - float64(st.n)*mean*mean) / float64(st.n-1)), nil
		}
	}
}

// multiAggregate runs several aggregates in one table pass and captures
// the GROUP BY key values of each group alongside.
type multiAggregate struct {
	aggs     []engine.Aggregate
	groupIdx []int
	schema   engine.Schema
}

type multiState struct {
	slots   []any
	keyVals []any
}

func (m *multiAggregate) Init() any {
	st := &multiState{slots: make([]any, len(m.aggs))}
	for i, a := range m.aggs {
		st.slots[i] = a.Init()
	}
	return st
}

func (m *multiAggregate) Transition(state any, row engine.Row) any {
	st := state.(*multiState)
	if st.keyVals == nil && len(m.groupIdx) > 0 {
		st.keyVals = make([]any, len(m.groupIdx))
		for i, gi := range m.groupIdx {
			st.keyVals[i] = rowValue(m.schema, &row, gi)
		}
	}
	for i, a := range m.aggs {
		st.slots[i] = a.Transition(st.slots[i], row)
	}
	return st
}

func (m *multiAggregate) Merge(a, b any) any {
	sa, sb := a.(*multiState), b.(*multiState)
	if sa.keyVals == nil {
		sa.keyVals = sb.keyVals
	}
	for i, agg := range m.aggs {
		sa.slots[i] = agg.Merge(sa.slots[i], sb.slots[i])
	}
	return sa
}

func (m *multiAggregate) Final(state any) (any, error) {
	st := state.(*multiState)
	out := &multiState{slots: make([]any, len(m.aggs)), keyVals: st.keyVals}
	for i, a := range m.aggs {
		v, err := a.Final(st.slots[i])
		if err != nil {
			return nil, err
		}
		out.slots[i] = v
	}
	return out, nil
}

// compareOrderKeys orders two ORDER BY key values with Postgres NULL
// placement: NULL sorts as the largest value, which yields NULLS LAST on
// ascending keys and NULLS FIRST when the comparison is flipped for DESC.
// Non-NULL pairs defer to compareValues.
func compareOrderKeys(a, b any) (int, error) {
	if a == nil || b == nil {
		switch {
		case a == nil && b == nil:
			return 0, nil
		case a == nil:
			return 1, nil
		default:
			return -1, nil
		}
	}
	return compareValues(a, b)
}

// sortRows stable-sorts rows by the given key columns (extracted into
// keys, parallel to rows). Large results sort in parallel via the
// engine's chunked stable sort; the comparator only reads keys, so
// concurrent calls are safe, with a mutex guarding error capture. Once a
// comparison error is recorded further comparisons short-circuit — the
// sort result is discarded anyway.
func sortRows(db *engine.DB, rows [][]any, keys [][]any, desc []bool) error {
	var mu sync.Mutex
	var sortErr error
	var failed atomic.Bool
	idx := db.SortStable(len(rows), func(a, b int) bool {
		if failed.Load() {
			return false
		}
		ka, kb := keys[a], keys[b]
		for k := range desc {
			c, err := compareOrderKeys(ka[k], kb[k])
			if err != nil {
				failed.Store(true)
				mu.Lock()
				if sortErr == nil {
					sortErr = err
				}
				mu.Unlock()
				return false
			}
			if c != 0 {
				if desc[k] {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return sortErr
	}
	reorder(rows, idx)
	return nil
}

func reorder[T any](xs []T, idx []int) {
	tmp := make([]T, len(xs))
	for i, j := range idx {
		tmp[i] = xs[j]
	}
	copy(xs, tmp)
}

// outputName derives the column header for a select item, Postgres-style:
// explicit alias, else the column or function name, else "?column?".
func outputName(item SelectItem) string {
	if item.Alias != "" {
		return item.Alias
	}
	switch x := item.Expr.(type) {
	case *ColumnRef:
		return x.Name
	case *FuncCall:
		return x.Name
	}
	return "?column?"
}
