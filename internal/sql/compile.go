package sql

import (
	"context"
	"fmt"
	"math"
	"strings"

	"madlib/internal/engine"
)

// This file lowers type-checked scalar expressions into Go closures, so
// per-row evaluation — WHERE filters, projection lists, aggregate
// arguments, computed staging columns — runs a direct call chain instead
// of walking the AST with boxed values (the paper's §4.4(a) overhead
// argument: the declarative surface must cost almost nothing over the raw
// engine). Compilation happens once per plan; the closures are pure with
// respect to shared state, so the engine may call them from every segment
// goroutine concurrently.

// execEnv carries the per-execution bindings of a plan: the $n parameter
// values supplied by EXECUTE, and the context governing this execution
// (cancellation / statement timeout — checked by the engine's scan
// drivers at morsel boundaries). It is read-only during a query. A nil
// env is valid and means "no parameters bound, background context".
type execEnv struct {
	params []any
	ctx    context.Context
}

func (env *execEnv) param(idx int) (any, error) {
	if env == nil || idx < 1 || idx > len(env.params) {
		return nil, execErrf("there is no parameter $%d", idx)
	}
	return env.params[idx-1], nil
}

// context returns the execution's context, nil-safe.
func (env *execEnv) context() context.Context {
	if env == nil || env.ctx == nil {
		return context.Background()
	}
	return env.ctx
}

// paramList returns the bound parameter values (nil-safe), for handing to
// the interpreter's evalCtx.
func (env *execEnv) paramList() []any {
	if env == nil {
		return nil
	}
	return env.params
}

// compilePredicate compiles a WHERE clause, requiring a boolean result.
// A nil clause compiles to a nil predicate (keep every row).
func compilePredicate(where Expr, cc *compileCtx) (boolFn, error) {
	if where == nil {
		return nil, nil
	}
	c, err := compileExpr(where, cc)
	if err != nil {
		return nil, err
	}
	switch c.kind {
	case ckBool:
		return c.b, nil
	case ckAny:
		fn := c.a
		return func(r engine.Row, env *execEnv) (bool, error) {
			v, err := fn(r, env)
			if err != nil {
				return false, err
			}
			if v == nil {
				return false, nil // NULL is not true in predicate position
			}
			b, ok := v.(bool)
			if !ok {
				return false, execErrf("WHERE must evaluate to boolean, not %s", valueTypeName(v))
			}
			return b, nil
		}, nil
	}
	return nil, execErrf("WHERE must evaluate to boolean, not %s", c.kind)
}

// ckind is a compiled expression's static result type. ckAny marks nodes
// whose type is only known at run time (anything touching a $n parameter);
// those evaluate boxed, and typed parents containing them degrade to boxed
// evaluation too.
type ckind int

const (
	ckFloat ckind = iota
	ckInt
	ckStr
	ckBool
	ckVec
	ckAny
)

func (k ckind) String() string {
	switch k {
	case ckFloat:
		return "double precision"
	case ckInt:
		return "bigint"
	case ckStr:
		return "text"
	case ckBool:
		return "boolean"
	case ckVec:
		return "double precision[]"
	}
	return "unknown"
}

// kindOf maps an engine column kind to the compiled kind lattice.
func kindOf(k engine.Kind) ckind {
	switch k {
	case engine.Float:
		return ckFloat
	case engine.Int:
		return ckInt
	case engine.String:
		return ckStr
	case engine.Bool:
		return ckBool
	case engine.Vector:
		return ckVec
	}
	return ckAny
}

// Typed closure signatures. Every closure receives the row cursor and the
// execution environment and may fail (division by zero, bad parameter).
type (
	floatFn func(engine.Row, *execEnv) (float64, error)
	intFn   func(engine.Row, *execEnv) (int64, error)
	strFn   func(engine.Row, *execEnv) (string, error)
	boolFn  func(engine.Row, *execEnv) (bool, error)
	vecFn   func(engine.Row, *execEnv) ([]float64, error)
	anyFn   func(engine.Row, *execEnv) (any, error)
)

// compiled is one lowered expression node: its static kind, the matching
// typed closure, and a boxed closure (always set) for callers that need
// an `any`.
type compiled struct {
	kind ckind
	f    floatFn
	i    intFn
	s    strFn
	b    boolFn
	v    vecFn
	a    anyFn
}

// Constructors box the typed closure into `a` exactly once.

func cFloat(fn floatFn) *compiled {
	return &compiled{kind: ckFloat, f: fn, a: func(r engine.Row, env *execEnv) (any, error) {
		return fn(r, env)
	}}
}

func cInt(fn intFn) *compiled {
	return &compiled{kind: ckInt, i: fn, a: func(r engine.Row, env *execEnv) (any, error) {
		return fn(r, env)
	}}
}

func cStr(fn strFn) *compiled {
	return &compiled{kind: ckStr, s: fn, a: func(r engine.Row, env *execEnv) (any, error) {
		return fn(r, env)
	}}
}

func cBool(fn boolFn) *compiled {
	return &compiled{kind: ckBool, b: fn, a: func(r engine.Row, env *execEnv) (any, error) {
		return fn(r, env)
	}}
}

func cVec(fn vecFn) *compiled {
	return &compiled{kind: ckVec, v: fn, a: func(r engine.Row, env *execEnv) (any, error) {
		return fn(r, env)
	}}
}

func cAny(fn anyFn) *compiled { return &compiled{kind: ckAny, a: fn} }

// isNumeric reports whether the static kind can feed arithmetic.
func (c *compiled) isNumeric() bool {
	return c.kind == ckFloat || c.kind == ckInt || c.kind == ckAny
}

// asFloat adapts the node to a float64 producer, widening ints and
// converting boxed values at run time.
func (c *compiled) asFloat() floatFn {
	switch c.kind {
	case ckFloat:
		return c.f
	case ckInt:
		fn := c.i
		return func(r engine.Row, env *execEnv) (float64, error) {
			v, err := fn(r, env)
			return float64(v), err
		}
	default:
		fn := c.a
		return func(r engine.Row, env *execEnv) (float64, error) {
			v, err := fn(r, env)
			if err != nil {
				return 0, err
			}
			f, ok := toFloat(v)
			if !ok {
				return 0, execErrf("value is %s, not numeric", valueTypeName(v))
			}
			return f, nil
		}
	}
}

// asBool adapts the node to a bool producer; non-boolean boxed values fail
// at run time with the operator's name in the message.
func (c *compiled) asBool(what string) (boolFn, error) {
	switch c.kind {
	case ckBool:
		return c.b, nil
	case ckAny:
		fn := c.a
		return func(r engine.Row, env *execEnv) (bool, error) {
			v, err := fn(r, env)
			if err != nil {
				return false, err
			}
			if v == nil {
				return false, nil // NULL is not true in predicate position
			}
			b, ok := v.(bool)
			if !ok {
				return false, execErrf("argument of %s must be boolean, not %s", what, valueTypeName(v))
			}
			return b, nil
		}, nil
	default:
		return nil, execErrf("argument of %s must be boolean, not %s", what, c.kind)
	}
}

// compileCtx binds compilation to a table schema. nullable marks columns
// that can be NULL at run time (the padded side of a LEFT JOIN); their
// references compile to boxed closures that consult the matchedIdx
// marker column.
type compileCtx struct {
	schema     engine.Schema
	colIdx     map[string]int
	nullable   []bool
	matchedIdx int
	// src is the plan source being compiled against, when there is one.
	// It supplies the engine handle for plan-time madlib.predict model
	// resolution and accumulates the resulting model dependencies; a nil
	// src (TVF staging columns, INSERT values) rejects predict.
	src *planSource
}

func newCompileCtx(schema engine.Schema) *compileCtx {
	return &compileCtx{schema: schema, colIdx: colIndexMap(schema), matchedIdx: -1}
}

// compileExpr lowers e against the schema. Aggregate calls are rejected —
// callers strip them into slots first (the aggregate-output stage stays
// interpreted; it runs once per group, not once per row).
func compileExpr(e Expr, cc *compileCtx) (*compiled, error) {
	switch x := e.(type) {
	case *Literal:
		return compileLiteral(x), nil
	case *ArrayLit:
		return compileArrayLit(x, cc)
	case *ColumnRef:
		return compileColumnRef(x, cc)
	case *Param:
		idx := x.Idx
		return cAny(func(_ engine.Row, env *execEnv) (any, error) {
			return env.param(idx)
		}), nil
	case *Unary:
		return compileUnary(x, cc)
	case *Binary:
		return compileBinary(x, cc)
	case *FuncCall:
		return compileFuncCall(x, cc)
	}
	return nil, execErrf("cannot compile %T", e)
}

func compileLiteral(x *Literal) *compiled {
	switch v := x.Val.(type) {
	case int64:
		return cInt(func(engine.Row, *execEnv) (int64, error) { return v, nil })
	case float64:
		return cFloat(func(engine.Row, *execEnv) (float64, error) { return v, nil })
	case string:
		return cStr(func(engine.Row, *execEnv) (string, error) { return v, nil })
	case bool:
		return cBool(func(engine.Row, *execEnv) (bool, error) { return v, nil })
	}
	v := x.Val
	return cAny(func(engine.Row, *execEnv) (any, error) { return v, nil })
}

func compileArrayLit(x *ArrayLit, cc *compileCtx) (*compiled, error) {
	elems := make([]floatFn, len(x.Elems))
	constOnly := true
	for i, el := range x.Elems {
		c, err := compileExpr(el, cc)
		if err != nil {
			return nil, err
		}
		if !c.isNumeric() {
			return nil, execErrf("array element %d is not numeric", i+1)
		}
		if _, isLit := el.(*Literal); !isLit {
			constOnly = false
		}
		elems[i] = c.asFloat()
	}
	if constOnly {
		// Fold a literal array once; the engine treats vectors as
		// immutable, so sharing one slice across rows is safe.
		vec := make([]float64, len(elems))
		for i, fn := range elems {
			v, err := fn(engine.Row{}, nil)
			if err != nil {
				return nil, err
			}
			vec[i] = v
		}
		return cVec(func(engine.Row, *execEnv) ([]float64, error) { return vec, nil }), nil
	}
	return cVec(func(r engine.Row, env *execEnv) ([]float64, error) {
		out := make([]float64, len(elems))
		for i, fn := range elems {
			v, err := fn(r, env)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}), nil
}

func compileColumnRef(x *ColumnRef, cc *compileCtx) (*compiled, error) {
	ci, ok := cc.colIdx[x.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", engine.ErrNoColumn, x.Name)
	}
	if cc.nullable != nil && cc.nullable[ci] {
		// Nullable (LEFT JOIN padded) column: box the value and yield
		// NULL on rows whose matched marker is false.
		mi := cc.matchedIdx
		kind := cc.schema[ci].Kind
		return cAny(func(r engine.Row, _ *execEnv) (any, error) {
			if !r.Bool(mi) {
				return nil, nil
			}
			switch kind {
			case engine.Float:
				return r.Float(ci), nil
			case engine.Int:
				return r.Int(ci), nil
			case engine.String:
				return r.Str(ci), nil
			case engine.Bool:
				return r.Bool(ci), nil
			case engine.Vector:
				return r.Vector(ci), nil
			}
			return nil, execErrf("column %q has unknown kind", x.Name)
		}), nil
	}
	switch cc.schema[ci].Kind {
	case engine.Float:
		return cFloat(func(r engine.Row, _ *execEnv) (float64, error) { return r.Float(ci), nil }), nil
	case engine.Int:
		return cInt(func(r engine.Row, _ *execEnv) (int64, error) { return r.Int(ci), nil }), nil
	case engine.String:
		return cStr(func(r engine.Row, _ *execEnv) (string, error) { return r.Str(ci), nil }), nil
	case engine.Bool:
		return cBool(func(r engine.Row, _ *execEnv) (bool, error) { return r.Bool(ci), nil }), nil
	case engine.Vector:
		return cVec(func(r engine.Row, _ *execEnv) ([]float64, error) { return r.Vector(ci), nil }), nil
	}
	return nil, execErrf("column %q has unknown kind", x.Name)
}

func compileUnary(x *Unary, cc *compileCtx) (*compiled, error) {
	c, err := compileExpr(x.X, cc)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "-":
		switch c.kind {
		case ckInt:
			fn := c.i
			return cInt(func(r engine.Row, env *execEnv) (int64, error) {
				v, err := fn(r, env)
				return -v, err
			}), nil
		case ckFloat:
			fn := c.f
			return cFloat(func(r engine.Row, env *execEnv) (float64, error) {
				v, err := fn(r, env)
				return -v, err
			}), nil
		case ckAny:
			fn := c.a
			return cAny(func(r engine.Row, env *execEnv) (any, error) {
				v, err := fn(r, env)
				if err != nil {
					return nil, err
				}
				switch n := v.(type) {
				case nil:
					return nil, nil
				case int64:
					return -n, nil
				case float64:
					return -n, nil
				}
				return nil, execErrf("cannot negate %s", valueTypeName(v))
			}), nil
		default:
			return nil, execErrf("cannot negate %s", c.kind)
		}
	case "NOT":
		if c.kind == ckAny {
			// NULL propagates through NOT (NOT NULL is NULL, which is
			// then not-true in predicate position).
			fn := c.a
			return cAny(func(r engine.Row, env *execEnv) (any, error) {
				v, err := fn(r, env)
				if err != nil || v == nil {
					return nil, err
				}
				b, ok := v.(bool)
				if !ok {
					return nil, execErrf("argument of NOT must be boolean, not %s", valueTypeName(v))
				}
				return !b, nil
			}), nil
		}
		fn, err := c.asBool("NOT")
		if err != nil {
			return nil, err
		}
		return cBool(func(r engine.Row, env *execEnv) (bool, error) {
			v, err := fn(r, env)
			return !v, err
		}), nil
	}
	return nil, execErrf("unknown unary operator %q", x.Op)
}

func compileBinary(x *Binary, cc *compileCtx) (*compiled, error) {
	if x.Op == "AND" || x.Op == "OR" {
		return compileLogic(x, cc)
	}
	l, err := compileExpr(x.L, cc)
	if err != nil {
		return nil, err
	}
	r, err := compileExpr(x.R, cc)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "+", "-", "*", "/", "%":
		return compileArith(x.Op, l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		return compileCompare(x.Op, l, r)
	}
	return nil, execErrf("unknown operator %q", x.Op)
}

func compileLogic(x *Binary, cc *compileCtx) (*compiled, error) {
	l, err := compileExpr(x.L, cc)
	if err != nil {
		return nil, err
	}
	r, err := compileExpr(x.R, cc)
	if err != nil {
		return nil, err
	}
	lb, err := l.asBool(x.Op)
	if err != nil {
		return nil, err
	}
	rb, err := r.asBool(x.Op)
	if err != nil {
		return nil, err
	}
	if x.Op == "AND" {
		return cBool(func(row engine.Row, env *execEnv) (bool, error) {
			v, err := lb(row, env)
			if err != nil || !v {
				return false, err
			}
			return rb(row, env)
		}), nil
	}
	return cBool(func(row engine.Row, env *execEnv) (bool, error) {
		v, err := lb(row, env)
		if err != nil || v {
			return v, err
		}
		return rb(row, env)
	}), nil
}

func compileArith(op string, l, r *compiled) (*compiled, error) {
	if !l.isNumeric() || !r.isNumeric() {
		return nil, execErrf("operator %s does not apply to %s and %s", op, l.kind, r.kind)
	}
	// Boxed fallback when either side's type is dynamic: evalArith keeps
	// the int/float promotion rules in one place.
	if l.kind == ckAny || r.kind == ckAny {
		lf, rf := l.a, r.a
		return cAny(func(row engine.Row, env *execEnv) (any, error) {
			lv, err := lf(row, env)
			if err != nil {
				return nil, err
			}
			rv, err := rf(row, env)
			if err != nil {
				return nil, err
			}
			return evalArith(op, lv, rv)
		}), nil
	}
	// Integer arithmetic stays integral, with the same checked division
	// the interpreter applies (division by zero is a clean SQL error; Go
	// itself defines MinInt64 / -1 to wrap, so no overflow panic exists).
	if l.kind == ckInt && r.kind == ckInt {
		lf, rf := l.i, r.i
		switch op {
		case "+":
			return cInt(func(row engine.Row, env *execEnv) (int64, error) {
				a, err := lf(row, env)
				if err != nil {
					return 0, err
				}
				b, err := rf(row, env)
				return a + b, err
			}), nil
		case "-":
			return cInt(func(row engine.Row, env *execEnv) (int64, error) {
				a, err := lf(row, env)
				if err != nil {
					return 0, err
				}
				b, err := rf(row, env)
				return a - b, err
			}), nil
		case "*":
			return cInt(func(row engine.Row, env *execEnv) (int64, error) {
				a, err := lf(row, env)
				if err != nil {
					return 0, err
				}
				b, err := rf(row, env)
				return a * b, err
			}), nil
		case "/":
			return cInt(func(row engine.Row, env *execEnv) (int64, error) {
				a, err := lf(row, env)
				if err != nil {
					return 0, err
				}
				b, err := rf(row, env)
				if err != nil {
					return 0, err
				}
				if b == 0 {
					return 0, execErrf("division by zero")
				}
				return a / b, nil
			}), nil
		case "%":
			return cInt(func(row engine.Row, env *execEnv) (int64, error) {
				a, err := lf(row, env)
				if err != nil {
					return 0, err
				}
				b, err := rf(row, env)
				if err != nil {
					return 0, err
				}
				if b == 0 {
					return 0, execErrf("division by zero")
				}
				return a % b, nil
			}), nil
		}
		return nil, execErrf("unknown operator %q", op)
	}
	lf, rf := l.asFloat(), r.asFloat()
	switch op {
	case "+":
		return cFloat(func(row engine.Row, env *execEnv) (float64, error) {
			a, err := lf(row, env)
			if err != nil {
				return 0, err
			}
			b, err := rf(row, env)
			return a + b, err
		}), nil
	case "-":
		return cFloat(func(row engine.Row, env *execEnv) (float64, error) {
			a, err := lf(row, env)
			if err != nil {
				return 0, err
			}
			b, err := rf(row, env)
			return a - b, err
		}), nil
	case "*":
		return cFloat(func(row engine.Row, env *execEnv) (float64, error) {
			a, err := lf(row, env)
			if err != nil {
				return 0, err
			}
			b, err := rf(row, env)
			return a * b, err
		}), nil
	case "/":
		return cFloat(func(row engine.Row, env *execEnv) (float64, error) {
			a, err := lf(row, env)
			if err != nil {
				return 0, err
			}
			b, err := rf(row, env)
			if err != nil {
				return 0, err
			}
			if b == 0 {
				return 0, execErrf("division by zero")
			}
			return a / b, nil
		}), nil
	case "%":
		return cFloat(func(row engine.Row, env *execEnv) (float64, error) {
			a, err := lf(row, env)
			if err != nil {
				return 0, err
			}
			b, err := rf(row, env)
			if err != nil {
				return 0, err
			}
			if b == 0 {
				return 0, execErrf("division by zero")
			}
			return math.Mod(a, b), nil
		}), nil
	}
	return nil, execErrf("unknown operator %q", op)
}

// cmpToBool turns a three-way comparison into the operator's boolean.
func cmpToBool(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

func compileCompare(op string, l, r *compiled) (*compiled, error) {
	// Numeric comparison: the hot WHERE path (v > 0.25).
	if l.kind != ckAny && r.kind != ckAny && l.isNumeric() && r.isNumeric() {
		if l.kind == ckInt && r.kind == ckInt {
			lf, rf := l.i, r.i
			return cBool(func(row engine.Row, env *execEnv) (bool, error) {
				a, err := lf(row, env)
				if err != nil {
					return false, err
				}
				b, err := rf(row, env)
				if err != nil {
					return false, err
				}
				switch {
				case a < b:
					return cmpToBool(op, -1), nil
				case a > b:
					return cmpToBool(op, 1), nil
				default:
					return cmpToBool(op, 0), nil
				}
			}), nil
		}
		lf, rf := l.asFloat(), r.asFloat()
		return cBool(func(row engine.Row, env *execEnv) (bool, error) {
			a, err := lf(row, env)
			if err != nil {
				return false, err
			}
			b, err := rf(row, env)
			if err != nil {
				return false, err
			}
			switch {
			case a < b:
				return cmpToBool(op, -1), nil
			case a > b:
				return cmpToBool(op, 1), nil
			default:
				return cmpToBool(op, 0), nil
			}
		}), nil
	}
	if l.kind == ckStr && r.kind == ckStr {
		lf, rf := l.s, r.s
		return cBool(func(row engine.Row, env *execEnv) (bool, error) {
			a, err := lf(row, env)
			if err != nil {
				return false, err
			}
			b, err := rf(row, env)
			if err != nil {
				return false, err
			}
			return cmpToBool(op, strings.Compare(a, b)), nil
		}), nil
	}
	// Static type mismatch (text vs numeric, etc.) is a plan-time error;
	// everything else — bools, vectors, dynamic operands — goes through
	// the interpreter's comparison for identical semantics.
	if l.kind != ckAny && r.kind != ckAny && l.kind != r.kind &&
		!(l.isNumeric() && r.isNumeric()) {
		return nil, execErrf("cannot compare %s with %s", l.kind, r.kind)
	}
	// One side statically numeric, the other dynamic (v > $1): keep the
	// typed side unboxed and convert the dynamic value per row — the
	// dynamic side is usually a parameter, already boxed in the env.
	if (l.kind == ckFloat || l.kind == ckInt) && r.kind == ckAny {
		lf, ra, lk := l.asFloat(), r.a, l.kind
		return cBool(func(row engine.Row, env *execEnv) (bool, error) {
			a, err := lf(row, env)
			if err != nil {
				return false, err
			}
			rv, err := ra(row, env)
			if err != nil {
				return false, err
			}
			if rv == nil {
				return false, nil // comparisons with NULL are false
			}
			b, ok := toFloat(rv)
			if !ok {
				return false, execErrf("cannot compare %s with %s", lk, valueTypeName(rv))
			}
			switch {
			case a < b:
				return cmpToBool(op, -1), nil
			case a > b:
				return cmpToBool(op, 1), nil
			default:
				return cmpToBool(op, 0), nil
			}
		}), nil
	}
	if l.kind == ckAny && (r.kind == ckFloat || r.kind == ckInt) {
		la, rf, rk := l.a, r.asFloat(), r.kind
		return cBool(func(row engine.Row, env *execEnv) (bool, error) {
			lv, err := la(row, env)
			if err != nil {
				return false, err
			}
			if lv == nil {
				return false, nil // comparisons with NULL are false
			}
			a, ok := toFloat(lv)
			if !ok {
				return false, execErrf("cannot compare %s with %s", valueTypeName(lv), rk)
			}
			b, err := rf(row, env)
			if err != nil {
				return false, err
			}
			switch {
			case a < b:
				return cmpToBool(op, -1), nil
			case a > b:
				return cmpToBool(op, 1), nil
			default:
				return cmpToBool(op, 0), nil
			}
		}), nil
	}
	lf, rf := l.a, r.a
	return cBool(func(row engine.Row, env *execEnv) (bool, error) {
		a, err := lf(row, env)
		if err != nil {
			return false, err
		}
		b, err := rf(row, env)
		if err != nil {
			return false, err
		}
		if a == nil || b == nil {
			return false, nil // comparisons with NULL are false
		}
		c, err := compareValues(a, b)
		if err != nil {
			return false, err
		}
		return cmpToBool(op, c), nil
	}), nil
}

func compileFuncCall(x *FuncCall, cc *compileCtx) (*compiled, error) {
	if x.Schema != "" && x.Schema != "madlib" {
		return nil, execErrf("unknown schema %q", x.Schema)
	}
	if x.Over != nil {
		return nil, execErrf("window function %s(...) OVER is only allowed in the SELECT list", x.Name)
	}
	if x.Star {
		return nil, execErrf("%s(*) is only valid as an aggregate in a SELECT list", x.Name)
	}
	if isAggregateCall(x) {
		return nil, execErrf("aggregate function %s(...) is not allowed here", x.Name)
	}
	if isTableValuedCall(x) {
		return nil, execErrf("table-valued function %s(...) is not allowed here", x.Name)
	}
	if x.Name == "predict" {
		// Model scoring: resolved against the catalog at plan time, so it
		// compiles before the generic argument lowering (the model name
		// literal is consumed by resolution, not evaluated per row).
		return compilePredictRow(x, cc)
	}
	args := make([]*compiled, len(x.Args))
	for i, a := range x.Args {
		c, err := compileExpr(a, cc)
		if err != nil {
			return nil, err
		}
		args[i] = c
	}
	need := func(n int) error {
		if len(args) != n {
			return execErrf("%s expects %d argument(s), got %d", x.Name, n, len(args))
		}
		return nil
	}
	numArg := func(i int) (floatFn, error) {
		if !args[i].isNumeric() {
			return nil, execErrf("%s: argument %d is not numeric", x.Name, i+1)
		}
		return args[i].asFloat(), nil
	}
	switch x.Name {
	case "abs":
		if err := need(1); err != nil {
			return nil, err
		}
		if args[0].kind == ckInt {
			fn := args[0].i
			return cInt(func(r engine.Row, env *execEnv) (int64, error) {
				v, err := fn(r, env)
				if err != nil {
					return 0, err
				}
				if v < 0 {
					return -v, nil
				}
				return v, nil
			}), nil
		}
		if args[0].kind == ckFloat {
			fn := args[0].f
			return cFloat(func(r engine.Row, env *execEnv) (float64, error) {
				v, err := fn(r, env)
				return math.Abs(v), err
			}), nil
		}
	case "sqrt", "exp", "ln", "floor", "ceil":
		if err := need(1); err != nil {
			return nil, err
		}
		fn, err := numArg(0)
		if err != nil {
			return nil, err
		}
		var mf func(float64) float64
		switch x.Name {
		case "sqrt":
			mf = math.Sqrt
		case "exp":
			mf = math.Exp
		case "ln":
			mf = math.Log
		case "floor":
			mf = math.Floor
		default:
			mf = math.Ceil
		}
		return cFloat(func(r engine.Row, env *execEnv) (float64, error) {
			v, err := fn(r, env)
			return mf(v), err
		}), nil
	case "pow", "power":
		if err := need(2); err != nil {
			return nil, err
		}
		af, err := numArg(0)
		if err != nil {
			return nil, err
		}
		bf, err := numArg(1)
		if err != nil {
			return nil, err
		}
		return cFloat(func(r engine.Row, env *execEnv) (float64, error) {
			a, err := af(r, env)
			if err != nil {
				return 0, err
			}
			b, err := bf(r, env)
			return math.Pow(a, b), err
		}), nil
	case "length", "array_length":
		if err := need(1); err != nil {
			return nil, err
		}
		switch args[0].kind {
		case ckStr:
			fn := args[0].s
			return cInt(func(r engine.Row, env *execEnv) (int64, error) {
				v, err := fn(r, env)
				return int64(len(v)), err
			}), nil
		case ckVec:
			fn := args[0].v
			return cInt(func(r engine.Row, env *execEnv) (int64, error) {
				v, err := fn(r, env)
				return int64(len(v)), err
			}), nil
		case ckAny:
			// fall through to the generic path below
		default:
			return nil, execErrf("length: argument must be text or array, not %s", args[0].kind)
		}
	case "array_get":
		if err := need(2); err != nil {
			return nil, err
		}
		if args[0].kind == ckVec && args[1].kind == ckInt {
			vf, idxf := args[0].v, args[1].i
			return cFloat(func(r engine.Row, env *execEnv) (float64, error) {
				vec, err := vf(r, env)
				if err != nil {
					return 0, err
				}
				i, err := idxf(r, env)
				if err != nil {
					return 0, err
				}
				if i < 1 || int(i) > len(vec) {
					return 0, execErrf("array_get: index %v out of range 1..%d", i, len(vec))
				}
				return vec[i-1], nil
			}), nil
		}
	default:
		return nil, execErrf("unknown function %s(...)", x.Name)
	}
	// Generic fallback: evaluate boxed arguments and dispatch through the
	// interpreter's scalar-function table, so both paths share semantics.
	argFns := make([]anyFn, len(args))
	for i, a := range args {
		argFns[i] = a.a
	}
	call := x
	return cAny(func(r engine.Row, env *execEnv) (any, error) {
		vals := make([]any, len(argFns))
		for i, fn := range argFns {
			v, err := fn(r, env)
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		return applyScalarFunc(call, vals)
	}), nil
}

// exprMaxParam returns the highest $n placeholder index in e (0 when
// there are none).
func exprMaxParam(e Expr) int {
	maxIdx := 0
	walkExpr(e, func(x Expr) {
		if p, ok := x.(*Param); ok && p.Idx > maxIdx {
			maxIdx = p.Idx
		}
	})
	return maxIdx
}

// exprHasParam reports whether e contains any $n placeholder.
func exprHasParam(e Expr) bool { return exprMaxParam(e) > 0 }

// stmtMaxParam returns the highest $n placeholder index anywhere in a
// statement — the prepared statement's parameter count.
func stmtMaxParam(st Statement) int {
	maxIdx := 0
	see := func(e Expr) {
		if e == nil {
			return
		}
		if n := exprMaxParam(e); n > maxIdx {
			maxIdx = n
		}
	}
	switch x := st.(type) {
	case *Select:
		for _, item := range x.Items {
			see(item.Expr)
		}
		if x.Join != nil {
			see(x.Join.On)
		}
		see(x.Where)
		see(x.Having)
		for _, k := range x.OrderBy {
			see(k.Expr)
		}
	case *CreateTableAs:
		return stmtMaxParam(x.Query)
	case *Insert:
		for _, row := range x.Rows {
			for _, e := range row {
				see(e)
			}
		}
	}
	return maxIdx
}
