package sql

import (
	"fmt"
	"strings"

	"madlib/internal/engine"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	// String renders the statement back to SQL-ish text (for traces and
	// error messages, not guaranteed round-trippable).
	String() string
}

// ColumnDef is one column of a CREATE TABLE statement.
type ColumnDef struct {
	Name string
	Kind engine.Kind
}

// CreateTable is CREATE TABLE name (col type, ...).
type CreateTable struct {
	Name        string
	Cols        []ColumnDef
	IfNotExists bool
}

func (*CreateTable) stmt() {}

func (s *CreateTable) String() string {
	parts := make([]string, len(s.Cols))
	for i, c := range s.Cols {
		parts[i] = c.Name + " " + c.Kind.String()
	}
	return fmt.Sprintf("CREATE TABLE %s (%s)", s.Name, strings.Join(parts, ", "))
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

func (*DropTable) stmt() {}

func (s *DropTable) String() string { return "DROP TABLE " + s.Name }

// Insert is INSERT INTO name [(cols)] VALUES (...), (...).
type Insert struct {
	Table string
	// Columns is the optional explicit column list; empty means schema
	// order.
	Columns []string
	Rows    [][]Expr
}

func (*Insert) stmt() {}

func (s *Insert) String() string {
	return fmt.Sprintf("INSERT INTO %s VALUES ... (%d rows)", s.Table, len(s.Rows))
}

// Prepare is PREPARE name AS statement: plan once, execute many times
// with $n parameter bindings.
type Prepare struct {
	Name string
	// Stmt is the inner statement (SELECT or INSERT).
	Stmt Statement
	// Text is the inner statement's SQL source, kept for listings.
	Text string
}

func (*Prepare) stmt() {}

func (s *Prepare) String() string { return fmt.Sprintf("PREPARE %s AS %s", s.Name, s.Text) }

// Explain is EXPLAIN [ANALYZE] statement: render the plan the session
// would choose (lane, parallelism, cache state) without caching it;
// with ANALYZE the inner statement also executes and the output gains
// actual row counts and per-stage timings.
type Explain struct {
	Analyze bool
	// Stmt is the inner statement (SELECT or INSERT).
	Stmt Statement
	// Text is the inner statement's SQL source, used to probe the plan
	// cache for an existing plan under the same key.
	Text string
}

func (*Explain) stmt() {}

func (s *Explain) String() string {
	if s.Analyze {
		return "EXPLAIN ANALYZE " + s.Stmt.String()
	}
	return "EXPLAIN " + s.Stmt.String()
}

// Execute is EXECUTE name(args): run a prepared statement with the given
// parameter values.
type Execute struct {
	Name string
	Args []Expr
}

func (*Execute) stmt() {}

func (s *Execute) String() string {
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = a.String()
	}
	if len(parts) == 0 {
		return "EXECUTE " + s.Name
	}
	return fmt.Sprintf("EXECUTE %s(%s)", s.Name, strings.Join(parts, ", "))
}

// Deallocate is DEALLOCATE [PREPARE] name — drop a prepared statement.
type Deallocate struct {
	Name string
	// All marks DEALLOCATE ALL.
	All bool
}

func (*Deallocate) stmt() {}

func (s *Deallocate) String() string {
	if s.All {
		return "DEALLOCATE ALL"
	}
	return "DEALLOCATE " + s.Name
}

// CreateTableAs is CREATE TABLE name AS SELECT ... — the paper's staging
// pattern (§4.1) expressed in pure SQL.
type CreateTableAs struct {
	Name        string
	IfNotExists bool
	Query       *Select
}

func (*CreateTableAs) stmt() {}

func (s *CreateTableAs) String() string {
	ine := ""
	if s.IfNotExists {
		ine = "IF NOT EXISTS "
	}
	return fmt.Sprintf("CREATE TABLE %s%s AS %s", ine, s.Name, s.Query.String())
}

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// JoinClause is the optional `JOIN table ON cond` part of a FROM clause.
type JoinClause struct {
	// Left marks LEFT [OUTER] JOIN; false is an inner join.
	Left  bool
	Table string
	Alias string
	// On is the join condition; the planner requires an equality of one
	// column from each side.
	On  Expr
	Pos int
}

func (j *JoinClause) String() string {
	kw := "JOIN"
	if j.Left {
		kw = "LEFT JOIN"
	}
	s := kw + " " + j.Table
	if j.Alias != "" {
		s += " " + j.Alias
	}
	return s + " ON " + j.On.String()
}

// SelectItem is one projection of a SELECT list.
type SelectItem struct {
	// Star is the bare `*` item.
	Star bool
	// Expr is the projected expression (nil when Star).
	Expr Expr
	// Expand marks `(expr).*`: the expression must be a composite-valued
	// madlib function whose record is expanded into columns.
	Expand bool
	// Alias is the optional [AS] name.
	Alias string
}

// Select is a SELECT statement.
type Select struct {
	// Distinct marks SELECT DISTINCT: duplicate output rows collapse.
	Distinct bool
	Items    []SelectItem
	From     string // empty for FROM-less SELECT
	// FromAlias is the optional alias of the FROM table.
	FromAlias string
	// Join is the optional JOIN clause over the FROM table.
	Join  *JoinClause
	Where Expr
	// GroupBy entries may be qualified ("d.name"); resolution maps them
	// onto the planning schema.
	GroupBy []string
	// Having filters groups after aggregation (may contain aggregates).
	Having  Expr
	OrderBy []OrderKey
	// Limit is the row cap; negative means no LIMIT clause.
	Limit int64
}

func (*Select) stmt() {}

func (s *Select) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star:
			b.WriteString("*")
		case it.Expand:
			b.WriteString("(" + it.Expr.String() + ").*")
		default:
			b.WriteString(it.Expr.String())
		}
	}
	if s.From != "" {
		b.WriteString(" FROM " + s.From)
		if s.FromAlias != "" {
			b.WriteString(" " + s.FromAlias)
		}
		if s.Join != nil {
			b.WriteString(" " + s.Join.String())
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY " + strings.Join(s.GroupBy, ", "))
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, k := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k.Expr.String())
			if k.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// Expr is any scalar expression node.
type Expr interface {
	expr()
	String() string
}

// Literal is a constant: int64, float64, string or bool.
type Literal struct {
	Val any
	Pos int
}

func (*Literal) expr() {}

func (e *Literal) String() string {
	if s, ok := e.Val.(string); ok {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return fmt.Sprintf("%v", e.Val)
}

// ArrayLit is an array literal `{1, 2}` or ARRAY[1, 2] (a Vector value).
type ArrayLit struct {
	Elems []Expr
	Pos   int
}

func (*ArrayLit) expr() {}

func (e *ArrayLit) String() string {
	parts := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		parts[i] = el.String()
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Param is a $n placeholder (1-based), bound to a value at EXECUTE time.
type Param struct {
	Idx int
	Pos int
}

func (*Param) expr() {}

func (e *Param) String() string { return fmt.Sprintf("$%d", e.Idx) }

// ColumnRef references a column of a FROM table by name, optionally
// qualified by a table name or alias (Table is "" for bare references;
// name resolution clears it once the reference is bound).
type ColumnRef struct {
	Table string
	Name  string
	Pos   int
}

func (*ColumnRef) expr() {}

func (e *ColumnRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Name
	}
	return e.Name
}

// Unary is -x, +x or NOT x.
type Unary struct {
	Op string // "-", "+", "NOT"
	X  Expr
}

func (*Unary) expr() {}

func (e *Unary) String() string {
	if e.Op == "NOT" {
		return "NOT " + e.X.String()
	}
	return e.Op + e.X.String()
}

// Binary is a binary operation: arithmetic (+ - * / %), comparison
// (= <> != < <= > >=), or logic (AND, OR).
type Binary struct {
	Op   string
	L, R Expr
	Pos  int
}

func (*Binary) expr() {}

// String renders fully parenthesized, so the output re-parses to the
// same tree (the parser-fuzz round-trip property).
func (e *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L.String(), e.Op, e.R.String())
}

// OverClause is the window specification of `fn(...) OVER (...)`.
type OverClause struct {
	PartitionBy []Expr
	OrderBy     []OrderKey
	Pos         int
}

func (o *OverClause) String() string {
	var b strings.Builder
	b.WriteString("OVER (")
	if len(o.PartitionBy) > 0 {
		b.WriteString("PARTITION BY ")
		for i, e := range o.PartitionBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
	}
	if len(o.OrderBy) > 0 {
		if len(o.PartitionBy) > 0 {
			b.WriteString(" ")
		}
		b.WriteString("ORDER BY ")
		for i, k := range o.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(k.Expr.String())
			if k.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	b.WriteString(")")
	return b.String()
}

// FuncCall is fn(args) or madlib.fn(args). Star marks count(*). A non-nil
// Over makes the call a window function.
type FuncCall struct {
	// Schema is the optional qualifier; "madlib" selects the method
	// namespace, empty the built-in aggregates.
	Schema string
	Name   string
	Args   []Expr
	Star   bool
	Over   *OverClause
	Pos    int
}

func (*FuncCall) expr() {}

func (e *FuncCall) String() string {
	name := e.Name
	if e.Schema != "" {
		name = e.Schema + "." + name
	}
	var s string
	if e.Star {
		s = name + "(*)"
	} else {
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = a.String()
		}
		s = name + "(" + strings.Join(parts, ", ") + ")"
	}
	if e.Over != nil {
		s += " " + e.Over.String()
	}
	return s
}
