package sql_test

import (
	"path/filepath"
	"testing"

	"madlib/internal/sql"
	"madlib/internal/sql/logictest"
)

// FuzzParse asserts two properties over arbitrary input:
//
//  1. the parser never panics — it returns a value or an error;
//  2. for every SELECT that parses, String() renders SQL that re-parses,
//     and re-rendering is a fixed point (same plan shape: the rendered
//     tree is fully parenthesized, so precedence survives the trip).
//
// The seed corpus is every statement of the logictest golden files plus
// the new-grammar shapes (JOIN, OVER, DISTINCT, CTAS), so `go test`
// exercises all seeds even without -fuzz.
func FuzzParse(f *testing.F) {
	files, err := filepath.Glob("logictest/testdata/*.slt")
	if err != nil {
		f.Fatal(err)
	}
	if len(files) == 0 {
		f.Fatal("no logictest seed files found")
	}
	for _, path := range files {
		recs, err := logictest.ParseFile(path)
		if err != nil {
			f.Fatal(err)
		}
		for _, rec := range recs {
			f.Add(rec.SQL)
		}
	}
	for _, seed := range []string{
		`SELECT d.name, row_number() OVER (PARTITION BY d.id ORDER BY s.score) FROM depts d JOIN scores s ON d.id = s.dept_id`,
		`SELECT DISTINCT a.x FROM a LEFT OUTER JOIN b ON a.k = b.k WHERE a.x > $1 ORDER BY 1 DESC LIMIT 3`,
		`CREATE TABLE t2 AS SELECT DISTINCT g, sum(v) s FROM t GROUP BY g HAVING count(*) > 1`,
		`SELECT sum(v) OVER (), count(*) OVER () FROM t`,
		`SELECT {1, 2.5}, 'it''s', -1e-3, not true AND false OR 1 <> 2`,
		`PREPARE p AS INSERT INTO t VALUES ($1, $2); EXECUTE p(1, 2); DEALLOCATE ALL`,
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmts, err := sql.Parse(input) // must not panic
		if err != nil {
			return
		}
		for _, st := range stmts {
			sel, ok := st.(*sql.Select)
			if !ok {
				continue
			}
			s1 := sel.String()
			re, err := sql.ParseStatement(s1)
			if err != nil {
				t.Fatalf("String() output does not re-parse: %v\ninput: %q\nrendered: %q", err, input, s1)
			}
			if s2 := re.String(); s2 != s1 {
				t.Fatalf("round-trip is not a fixed point\ninput: %q\nfirst:  %q\nsecond: %q", input, s1, s2)
			}
		}
	})
}
