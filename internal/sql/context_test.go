package sql

// Context plumbing: Session.ExecContext/QueryContext hand their context
// to the engine's scan drivers, so cancellation reaches a running scan.

import (
	"context"
	"errors"
	"testing"

	"madlib/internal/engine"
)

func bigIntTable(t *testing.T, s *Session, rows int) {
	t.Helper()
	tbl, err := s.DB().CreateTable("big", engine.Schema{
		{Name: "v", Kind: engine.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(int64(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueryContextCancelled(t *testing.T) {
	s := newSession(t)
	bigIntTable(t, s, 4*engine.MorselRows)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := s.DB().RowsScanned()
	_, err := s.QueryContext(ctx, `SELECT sum(v) FROM big`)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := s.DB().RowsScanned() - before; got != 0 {
		t.Fatalf("scanned %d rows under a cancelled context", got)
	}
	// The session stays usable after a cancelled query.
	r, err := s.QueryContext(context.Background(), `SELECT count(*) FROM big`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].(int64) != int64(4*engine.MorselRows) {
		t.Fatalf("count = %v", r.Rows[0][0])
	}
}

func TestExecutePreparedContext(t *testing.T) {
	s := newSession(t)
	bigIntTable(t, s, 100)
	mustExec(t, s, `PREPARE q AS SELECT count(*) FROM big WHERE v < $1`)
	r, err := s.ExecutePreparedContext(context.Background(), "q", []any{int64(50)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].(int64) != 50 {
		t.Fatalf("count = %v", r.Rows[0][0])
	}
	// Wrong arity errors; cancelled context aborts.
	if _, err := s.ExecutePreparedContext(context.Background(), "q", nil); err == nil {
		t.Fatal("want arity error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ExecutePreparedContext(ctx, "q", []any{int64(50)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDescribePrepared(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `CREATE TABLE pt (a bigint, b text)`)
	mustExec(t, s, `PREPARE sel AS SELECT a, b AS label FROM pt WHERE a > $1`)
	n, cols, err := s.DescribePrepared("sel")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || len(cols) != 2 || cols[0] != "a" || cols[1] != "label" {
		t.Fatalf("describe = %d params, cols %v", n, cols)
	}
	mustExec(t, s, `PREPARE ins AS INSERT INTO pt VALUES ($1, $2)`)
	n, cols, err = s.DescribePrepared("ins")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || cols != nil {
		t.Fatalf("insert describe = %d params, cols %v", n, cols)
	}
	if _, _, err := s.DescribePrepared("nope"); err == nil {
		t.Fatal("want error for unknown prepared statement")
	}
}
