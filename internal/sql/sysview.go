package sql

import (
	"madlib/internal/engine"
)

// System views expose the engine's observability state as relations, in
// the spirit of the paper's "analytics live inside the database" thesis:
// rather than a side API, counters and catalog statistics are read with
// plain SELECT through the ordinary executor. A view resolves only when
// no catalog table has its name (real tables shadow views), and each
// execution materializes a fresh detached snapshot table — never
// registered in the catalog — that the normal scan machinery consumes.
const (
	// viewCounters lists every metric of the database's registry as
	// (name, value) rows — engine scan/join counters and the SQL layer's
	// plan-cache, lane and join-cache counters alike.
	viewCounters = "madlib_stats_counters"
	// viewQueries lists the session's recently executed statements,
	// newest first.
	viewQueries = "madlib_stats_queries"
	// viewTables lists the catalog: permanent and hidden temp tables
	// with row counts, segment counts and data versions.
	viewTables = "madlib_stats_tables"
)

// systemViewSchema returns the fixed schema of a system view, or nil
// when name is not a system view.
func systemViewSchema(name string) engine.Schema {
	switch name {
	case viewCounters:
		return engine.Schema{
			{Name: "name", Kind: engine.String},
			{Name: "value", Kind: engine.Int},
		}
	case viewQueries:
		return engine.Schema{
			{Name: "query", Kind: engine.String},
			{Name: "lane", Kind: engine.String},
			{Name: "rows", Kind: engine.Int},
			{Name: "duration_us", Kind: engine.Int},
			{Name: "cache_hit", Kind: engine.Bool},
		}
	case viewTables:
		return engine.Schema{
			{Name: "name", Kind: engine.String},
			{Name: "rows", Kind: engine.Int},
			{Name: "segments", Kind: engine.Int},
			{Name: "version", Kind: engine.Int},
			{Name: "temp", Kind: engine.Bool},
		}
	}
	return nil
}

// buildSystemView materializes one view into a detached single-segment
// table. The snapshot is point-in-time: counters keep moving while the
// query runs, but the rows the scan sees are frozen.
func (s *Session) buildSystemView(name string) (*engine.Table, error) {
	t, err := engine.NewDetachedTable(name, systemViewSchema(name), 1)
	if err != nil {
		return nil, err
	}
	switch name {
	case viewCounters:
		for _, st := range s.db.Metrics().Snapshot() {
			if err := t.Insert(st.Name, st.Value); err != nil {
				return nil, err
			}
		}
	case viewQueries:
		for _, q := range s.RecentQueries() {
			if err := t.Insert(q.Text, q.Lane, int64(q.Rows), q.Duration.Microseconds(), q.CacheHit); err != nil {
				return nil, err
			}
		}
	case viewTables:
		for _, tn := range s.db.TableNames() {
			ct, err := s.db.Table(tn)
			if err != nil {
				continue // dropped between listing and lookup
			}
			if err := t.Insert(tn, ct.Count(), int64(len(ct.Segments())), ct.Version(), ct.Temp()); err != nil {
				return nil, err
			}
		}
	default:
		return nil, execErrf("unknown system view %q", name)
	}
	return t, nil
}
