// Package sql is the declarative front-end of the library: a hand-written
// lexer, a recursive-descent parser, and a planner/executor that compile a
// practical SQL dialect down to the engine's parallel primitives
// (two-phase aggregation, filtered scans, grouped aggregation, temp-table
// staging). It is what turns the reproduction back into the system the
// paper describes — analytics driven from SQL, with the method suite
// exposed as a madlib.* function namespace (§4.1).
//
// # Entry points
//
// A Session wraps an engine database:
//
//	sess := sql.NewSession(eng)
//	results, err := sess.Exec(`CREATE TABLE t (v float); INSERT INTO t VALUES (1);`)
//	res, err := sess.Query(`SELECT avg(v) FROM t`)
//
// The public facade re-exports these as madlib.DB.Exec / madlib.DB.Query,
// and `madlib sql` wraps them in an interactive REPL.
//
// # Statements
//
//	CREATE TABLE [IF NOT EXISTS] name (col type, ...)
//	CREATE TABLE [IF NOT EXISTS] name AS select
//	DROP TABLE [IF EXISTS] name
//	INSERT INTO name [(col, ...)] VALUES (expr, ...), ...
//	SELECT [DISTINCT] item, ...
//	       [FROM name [[AS] alias] [join]]
//	       [WHERE expr] [GROUP BY [qual.]col, ...]
//	       [HAVING expr] [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
//	join := [INNER] JOIN name [[AS] alias] ON a.x = b.y
//	      | LEFT [OUTER] JOIN name [[AS] alias] ON a.x = b.y
//	PREPARE name AS select-or-insert
//	EXECUTE name[(expr, ...)]
//	DEALLOCATE [PREPARE] (name | ALL)
//	EXPLAIN [ANALYZE] (select | insert)
//
// HAVING filters groups after aggregation and may reference aggregates
// (also ones not in the SELECT list) and GROUP BY columns; without
// GROUP BY it treats the whole table as one group.
//
// # Joins
//
// One two-table equi-join per SELECT, executed as a broadcast hash join
// (engine.HashJoin): the right side is hashed once into typed (unboxed)
// key maps, left segments probe in parallel batch-at-a-time over their
// key lanes, and matches materialize column-wise; output rows stay on
// their probe row's segment. The ON condition must be an equality of
// one bigint or text column from each side. Columns are referenced bare
// (when unambiguous) or qualified by table name or alias; right-side
// names that collide with left-side names appear in SELECT * output
// prefixed with the right table's name.
//
// The join output materializes into a temp table that is cached on the
// plan: repeated executions of a cached or prepared joined statement
// (the EXECUTE-twice pattern) skip the whole build+probe when neither
// input table's data version changed, and any INSERT/UPDATE/TRUNCATE
// through the engine API invalidates the cache. The materialization is
// dropped when the plan leaves the plan cache or prepared-statement
// store; short-lived sessions over a shared database should call
// Session.Close so abandoned plans release theirs.
//
// LEFT JOIN keeps unmatched left rows. The engine's columnar storage has
// no NULL representation, so the join materializes a hidden boolean
// marker column (engine.MatchedCol) and the planner compiles references
// to right-side columns into NULL-aware closures on the row lane and
// validity-bitmap kernels on the batch lane: on unmatched rows they
// evaluate to SQL NULL, which propagates through arithmetic and NOT, is
// skipped by count(x)/sum/avg/min/max (count(*) still counts the row),
// and renders empty. Comparisons with NULL are false (three-valued logic
// collapsed to its predicate meaning: padded rows drop out of WHERE and
// HAVING in either comparison direction), while ORDER BY follows the
// Postgres placement rule: NULL sorts as the largest value, so NULLs
// come last on ascending keys and first under DESC (compareOrderKeys;
// pinned by the logictest corpus). GROUP BY and madlib.* arguments over
// nullable right-side columns are rejected at plan time rather than
// silently reading the zero padding.
//
// # Window functions
//
//	row_number() OVER (PARTITION BY expr, ... ORDER BY expr [DESC], ...)
//	rank()       OVER (...)            -- ORDER BY peers share a rank
//	count(x|*)   OVER (...)            -- running count
//	sum(x)       OVER (...)            -- running sum
//	avg(x)       OVER (...)            -- running average
//
// Windows lower onto engine.RunWindow (§3.1.2 stateful iteration):
// partitions fold in parallel, rows within a partition fold
// sequentially in ORDER BY order carrying state. Running aggregates use
// ROWS BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW framing (ORDER BY
// peers are not collapsed — this deviates from the SQL default RANGE
// framing and is pinned by the logictest corpus). ORDER BY inside the
// OVER clause is required: whole-partition frames (OVER () or OVER
// (PARTITION BY ...) without ORDER BY) would need a second pass and are
// rejected rather than returning storage-order-dependent running
// values. All window calls in one SELECT must share the same OVER
// clause; window calls may not appear in WHERE/HAVING/ORDER BY or mix
// with aggregate queries. Without a SELECT-level ORDER BY, output is
// ordered by partition key value, then window order within each
// partition.
//
// # DISTINCT and CREATE TABLE AS
//
// SELECT DISTINCT dedupes the projected rows (first occurrence wins)
// using the same injective value encoding as composite group keys, so
// -0/+0 and NaNs collapse exactly like GROUP BY keys. It composes with
// scans, joins and aggregate outputs.
//
// CREATE TABLE name AS SELECT ... materializes any SELECT (including
// joins, windows and DISTINCT) into a new permanent table — the
// paper's §4.1 staging pipeline in pure SQL. Output column types are
// inferred from the result values, so every column needs at least one
// non-NULL value; NULLs cannot be stored (the engine has no NULL
// representation), and expression columns must carry an alias so the
// created column is referenceable. CTAS is DDL: it invalidates cached
// plans like CREATE TABLE.
//
// Statements are ';'-separated; `--` starts a line comment. Unquoted
// identifiers fold to lowercase, as in PostgreSQL.
//
// # Prepared statements and parameters
//
// PREPARE plans a SELECT or INSERT once; EXECUTE runs it with values
// bound to its $1, $2, ... placeholders (arity-checked). Parameters may
// appear anywhere a scalar expression does — WHERE clauses, projections,
// built-in aggregate arguments, HAVING, INSERT values — and in two
// madlib.* positions: scalar (column-free) arguments of table-valued
// calls, which resolve at EXECUTE time (madlib.kmeans(coords, $1)), and
// the WHERE clause in front of any call. Per-row computed madlib
// arguments (tag + $1) still reject parameters, because their staging
// column's type must be known at plan time:
//
//	PREPARE hot AS SELECT g, avg(v) FROM t WHERE v > $1 GROUP BY g;
//	EXECUTE hot(0.25);
//	EXECUTE hot(0.75);
//
// # Execution lanes
//
// The executor is compile-once-execute-many with two lowering targets.
//
// The vectorized batch lane (compile_batch.go, exec_batch.go) is the
// default for aggregate queries and for scan filters. The engine hands
// kernels an engine.ColBatch — a typed, zero-copy window of up to
// engine.BatchSize (1024) rows over one segment's columnar storage —
// and compiled kernels fill whole []float64 / []int64 / []string /
// []bool lanes per call. WHERE predicates produce selection vectors
// (the batch-local indices of surviving rows) that every downstream
// kernel respects, so filtered-out rows are never evaluated; AND/OR
// evaluate their right operand only over the sub-selection the left
// operand did not decide, preserving the row lane's short-circuit
// semantics (x <> 0 AND 1/x > 2 cannot fault). Built-in aggregates fold
// lanes directly into the same accumulator structs the row lane uses,
// and single-column GROUP BY keys hash through Go's specialized
// int64/string map fast paths per segment. Ungrouped single-aggregate
// queries whose argument is a bare column (or count) take a further
// fused filter+aggregate path: the predicate fills one bool lane and
// the aggregate folds the raw column lane against it — no selection
// vector, no gather. Kernel scratch is allocated per segment and pooled
// across executions of a cached plan.
//
// Execution is morsel-parallel: the engine splits every segment into
// sub-segment morsels — batch-aligned row spans of up to
// engine.MorselRows (4096) rows — and hands them to a pool of up to
// GOMAXPROCS workers, so one oversized segment no longer serializes a
// scan. Per-morsel states merge left-to-right in morsel order (a
// refinement of segment order) afterwards, so results, including
// non-associative float sums, are bit-identical to sequential
// execution and to the row lane. Tables below
// engine.ParallelRowThreshold (4096 rows) run inline on the calling
// goroutine, so small tables never pay goroutine spawn costs. Sorting
// — SELECT-level ORDER BY, window partition ordering and the grouped
// aggregate's output order — goes through engine.(*DB).SortStable,
// which runs per-worker partial sorts merged by a stable multi-way
// merge; its output, including the order of ties, is bit-identical to
// the sequential sort.SliceStable it replaces, and it falls back to
// that sequential sort below 2*engine.ParallelRowThreshold rows or on
// a single core. The engine_morsels and engine_sort_parallel /
// engine_sort_sequential counters make both decisions observable.
//
// The row lane lowers the same expressions to typed per-row Go closures
// with unboxed fast paths. It is the semantic oracle (the differential
// tests in batch_diff_test.go assert lane equivalence, including
// division-by-zero errors and int64 overflow) and the fallback for
// everything the batch lane does not express.
//
// The planner picks the lane per query at plan time. It chooses the
// batch lane when every aggregate is a batchable built-in
// (count/sum/avg/variance/stddev over numeric expressions, min/max
// over numeric or text expressions, count(*)) or a registered madlib
// aggregate (adapted by folding rows through its transition function,
// so the WHERE clause still vectorizes and the scan still
// parallelizes), the WHERE clause batch-compiles, and no GROUP BY key
// is Vector-typed. Join sources vectorize on both sides of the NULL
// divide. Inner joins materialize into an ordinary NULL-free temp
// table that the batch kernels scan unchanged. LEFT JOIN sources
// vectorize through validity bitmaps: each nullable right-side column
// gets a per-batch validity lane derived from the hidden matched
// marker, and the kernels are NULL-aware — comparisons clear
// selection bits where an operand is NULL, NOT re-evaluates its
// operand two-valued (NOT (NULL < 2) is true), arithmetic propagates
// invalidity before it can fault (a NULL-padded zero divisor raises
// no error), aggregates skip invalid positions (count(*) still counts
// the row; an all-NULL sum is NULL), and group keys read the raw
// padded lanes — exactly the row-lane oracle semantics, pinned by the
// differential harness.
//
// Projection also leaves the row lane: scan SELECT items compile to
// columnar kernels that fill typed lanes per batch and box each
// output cell once (NULL where the validity bit is clear). SELECT
// DISTINCT dedupes over that boxed columnar output, and window
// queries gather their partition/order input through the same kernels
// before the per-partition fold, which stays row-at-a-time by
// definition.
//
// The planner still provably falls back to the row lane for:
// Vector-typed operands (array literals, array_get, vector columns —
// in predicates, projections or window keys), bool min/max, $n
// parameters anywhere other than one side of a comparison, scalar
// functions over possibly-NULL arguments (the row lane errors on a
// NULL argument; kernels cannot reproduce that per-row, so the
// planner refuses), madlib scalar calls inside expressions, and any
// expression the batch compiler cannot lower;
// TestRowLaneShapesPinned pins that decision.
// Session.SetBatchExecution(false) forces the row lane everywhere.
//
// Each Session keeps an LRU plan cache keyed by statement text:
// re-executing the same text skips parsing and planning entirely. The
// cache is cleared on DDL, and every cached or prepared plan also
// revalidates its table bindings against the catalog before running, so
// a DROP + re-CREATE (even through another session) can never execute a
// stale plan — it replans or errors cleanly. The madlib.DB facade routes
// Exec/Query through one shared session, so callers get plan caching
// without holding any extra state. BenchmarkSQLSelectAgg tracks the
// resulting SQL-vs-engine overhead (the paper's §4.4(a) study) with
// batch-vs-row, parallel, join, projection, LEFT JOIN, window and
// sort sub-benchmarks; scripts/bench_sql.sh records them to
// BENCH_sql.json and scripts/bench_check.sh gates CI two ways:
// absolutely (>25% ns/op regression of the SQL, SQLParallel,
// SQLJoinAgg, SQLJoinAggCached, SQLProjScan, SQLLeftJoinAgg,
// SQLWindow or SQLOrderBy entries fails) and relatively (SQLProjScan
// and SQLLeftJoinAgg must stay at least 1.5x faster than their
// row-lane companions measured in the same run — a same-hardware
// ratio that holds on single-core runners, where the win is pure
// vectorization).
//
// # Types
//
// The five engine kinds, under their common SQL spellings:
//
//	double precision | double | float | float8 | real | numeric  → Float
//	double precision[] | float[] | vector                        → Vector
//	bigint | int | integer | int8 | int4 | smallint              → Int
//	text | varchar | string | char                               → String
//	boolean | bool                                               → Bool
//
// Vector literals are written {1, 2, 3} or ARRAY[1, 2, 3].
//
// # Expressions
//
// Arithmetic (+ - * / %, integer ops stay integral), comparisons
// (= <> != < <= > >=), boolean logic (AND OR NOT), string literals with
// ” escaping, and scalar functions: abs, sqrt, exp, ln, floor, ceil,
// pow, length, array_length, array_get(v, i) (1-based).
//
// # Aggregates
//
// count(*) / count(x), sum, avg, min, max, variance, stddev execute as
// engine two-phase aggregates (transition segment-parallel, merge across
// segments, final once — §3.1.1), and therefore compose with WHERE and
// GROUP BY. SELECT items may wrap aggregates in scalar expressions
// (avg(v) * 2), and ORDER BY may sort on aggregate expressions.
//
// # The madlib.* namespace
//
// Every registered library method is callable from SQL; dispatch goes
// through the internal/core registry (RegisterSQLFunc), so methods are
// never hard-coded in the executor. Two calling conventions exist:
//
// Aggregate functions behave like built-in aggregates and compose with
// WHERE and GROUP BY:
//
//	madlib.quantile(col, phi)
//	madlib.approx_quantile(col, eps, phi)
//	madlib.fmcount(col)
//
// Table-valued functions consume the whole FROM table (after WHERE) and
// return their own result relation; they must be the only SELECT item,
// written with the paper's composite-expansion syntax:
//
//	SELECT (madlib.linregr(y, x)).* FROM data
//	SELECT madlib.kmeans(coords, k [, seed]).* FROM points
//	madlib.logregr(y, x [, solver [, max_iter [, tolerance]]])
//	madlib.naive_bayes(class, attrs)
//	madlib.c45(class, attrs)
//	madlib.svm(y, x [, mode])
//	madlib.assoc_rules(basket, item [, min_support [, min_confidence]])
//	madlib.profile()
//	madlib.svdmf(i, j, v, rank [, max_passes])
//	madlib.lda(doc, word, topics [, iterations [, seed]])
//	madlib.bootstrap(expr [, iterations [, fraction [, seed]]])
//	madlib.sgd_train(loss, y, x [, epochs [, step [, seed]]])
//
// sgd_train is the generic entry to the unified incremental-gradient
// harness (internal/igd): it trains any named convex loss — 'logistic',
// 'hinge' or 'least_squares' over a (label, feature-vector) pair, or
// 'factorization' over scalar (i, j, v) rating columns plus a rank —
// with the same morsel-parallel, vectorized epoch loop the dedicated
// logregr/svm/svdmf trainers run on. It returns one row: the loss name,
// the trained weights, the final epoch's mean loss, and the exact epoch
// and row counts. A non-zero seed reshuffles the morsel order every
// epoch, deterministically — the schedule depends only on (table shape,
// seed, epoch), never on the worker count:
//
//	SELECT (madlib.sgd_train('logistic', y, x, 20, 0.1, 42)).* FROM data
//	SELECT (madlib.sgd_train('factorization', i, j, v, 10, 30)).* FROM ratings
//
// Column arguments may also be computed expressions. For table-valued
// calls, linregr(y, array[1, x1, x2]) assembles a vector from scalar
// columns by staging a temp table, the same pattern the paper's driver
// functions use for inter-iteration state (§3.1.2); for scalar
// aggregates, quantile(v * 2, 0.5) or fmcount(i % 5) compile the
// expression straight into the aggregate's transition function. The
// unqualified spelling (linregr(...) without the madlib. prefix)
// resolves through the same registry.
//
// # Observability
//
// EXPLAIN renders the compiled plan as one row per line: the operator
// shape (Seq Scan / Hash Join / HashAggregate / WindowAgg / Function
// Scan / Insert), the execution lane the planner picked (row, batch or
// fused), the parallel-vs-sequential morsel decision with its reason
// (worker and morsel counts, or the row-threshold / GOMAXPROCS
// fallback), the join
// strategy with the materialization cache's current hit/miss state, and
// whether the statement's text already has a cached plan. EXPLAIN
// probes the plan cache but never populates it. EXPLAIN ANALYZE also
// executes the statement (including INSERTs) and appends actual rows,
// the engine's rows-scanned delta, and the parse/plan/exec wall-time
// split. Only SELECT and INSERT can be explained.
//
// Engine and session counters are queryable through three virtual
// system views, served by the ordinary executor:
//
//	SELECT * FROM madlib_stats_counters  -- name, value
//	SELECT * FROM madlib_stats_queries   -- query, lane, rows, duration_us, cache_hit
//	SELECT * FROM madlib_stats_tables    -- name, rows, segments, version, temp
//
// madlib_stats_counters snapshots the per-database metrics registry
// (internal/metrics): engine scan/join/query counters and the SQL
// layer's plan-cache, lane-pick, join-cache, replan and slow-query
// counters. madlib_stats_queries is the session's ring of the last 32
// observed statements, newest first; a statement never records itself.
// madlib_stats_tables lists the catalog including hidden temp tables,
// with engine data versions. Each view materializes a fresh snapshot
// per execution; a real table with the same name shadows its view, and
// views cannot be joined or fed to table-valued madlib functions —
// stage them with CREATE TABLE ... AS first.
//
// Session.SetQueryLog attaches a log/slog logger: every observed
// statement at least as slow as the configured threshold is emitted
// with its text, duration, lane, row count and cache flag (threshold 0
// logs everything, and `madlib sql --slow-query-ms N` wires this up in
// the REPL, where \stats prints the counters view).
//
// # Models as data
//
// Coefficient-vector trainers take a persist form: a leading string
// argument names the model, and the fitted coefficients are written to
// the madlib_models catalog table instead of returning the stats
// relation —
//
//	SELECT (madlib.logregr('churn', y, x)).* FROM train_set;
//	-- model | kind | dims | num_rows | version
//
// linregr, logregr, svm and sgd_train all persist (sgd_train's model
// name precedes the loss; factorization refuses, having no coefficient
// vector). madlib.predict('name', f1, ...) scores rows in any query
// position with a FROM clause: the model is resolved once at plan
// time via internal/model.Load, the plan embeds the coefficients and
// a modelDep {catalog table pointer, version}, and planSource.valid
// checks it alongside the table versions — retraining (or hand-editing
// madlib_models, which is an ordinary table) invalidates every cached
// plan that froze the old model. Scoring lowers onto the batch lane as
// a fused dot-product kernel over float64 feature lanes with the
// model's link function (sigmoid for logregr and sgd:logistic,
// identity otherwise) applied per batch; when a feature expression has
// no batch lowering, a compiled row closure runs the identical
// float-op sequence, so the two lanes agree bitwise. EXPLAIN prints
// each frozen model and its scoring lane (with the fallback reason),
// EXPLAIN ANALYZE adds a rows-scored delta, and the predict_rows /
// predict_batches counters land in the metrics registry.
//
// # Cancellation
//
// Every entry point has a context-threaded form — ExecContext,
// QueryContext, RunContext, ExecutePreparedContext — and the plain
// forms delegate to them with context.Background(). The context flows
// through the compiled plan's execEnv into the engine's ...Ctx drivers,
// which poll ctx.Err() at morsel boundaries: a scan stops within one
// morsel (engine.MorselRows = 4096 rows) of cancellation, partial
// per-morsel states are discarded, and the statement returns the
// context's error (context.Canceled or DeadlineExceeded) instead of
// results. rows_scanned only advances for completed morsels, so the
// engine's scan counters stay exact under cancellation. The gather
// phases that are not morsel-driven — the window partition gather and
// the join build — check the context at segment boundaries instead.
// Cancellation is cooperative and cheap (one atomic load per morsel),
// so leaving the plain forms on Background costs nothing.
//
// This is what makes the statement a unit of interruption for callers:
// internal/pgwire maps a dropped client connection, a wire-protocol
// CancelRequest and the server's statement timeout onto one context
// cancel per active statement (surfaced to clients as SQLSTATE 57014),
// and a cancelled statement leaves the session reusable — prepared
// statements, plan cache and catalog bindings are untouched.
//
// Sessions are safe for concurrent use, and many Sessions may share
// one engine.DB. Data consistency across concurrent statements comes
// from the engine's per-table reader/writer latches (scan drivers hold
// a shared latch for the whole scan; Insert/Truncate/Update hold it
// exclusively), so a wire server can run a session pool against one
// shared database without torn reads.
//
// # Testing
//
// Behavior is pinned three ways: the golden-file SQL logic tests
// (internal/sql/logictest, a sqllogictest-dialect runner over
// testdata/*.slt — see its README for adding cases), the row-vs-batch
// differential harness (batch_diff_test.go), and FuzzParse (seeded from
// the logictest corpus; asserts the parser never panics and that
// String()-rendered SELECTs re-parse to a fixed point).
//
// # Not yet supported
//
// Multi-way (>2 table) joins, subqueries and UPDATE/DELETE are tracked
// as ROADMAP open items. (The Postgres wire protocol is served by
// internal/pgwire via `madlib serve`.)
package sql
