// Package sql is the declarative front-end of the library: a hand-written
// lexer, a recursive-descent parser, and a planner/executor that compile a
// practical SQL dialect down to the engine's parallel primitives
// (two-phase aggregation, filtered scans, grouped aggregation, temp-table
// staging). It is what turns the reproduction back into the system the
// paper describes — analytics driven from SQL, with the method suite
// exposed as a madlib.* function namespace (§4.1).
//
// # Entry points
//
// A Session wraps an engine database:
//
//	sess := sql.NewSession(eng)
//	results, err := sess.Exec(`CREATE TABLE t (v float); INSERT INTO t VALUES (1);`)
//	res, err := sess.Query(`SELECT avg(v) FROM t`)
//
// The public facade re-exports these as madlib.DB.Exec / madlib.DB.Query,
// and `madlib sql` wraps them in an interactive REPL.
//
// # Statements
//
//	CREATE TABLE [IF NOT EXISTS] name (col type, ...)
//	DROP TABLE [IF EXISTS] name
//	INSERT INTO name [(col, ...)] VALUES (expr, ...), ...
//	SELECT item, ... [FROM name] [WHERE expr] [GROUP BY col, ...]
//	       [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
//	PREPARE name AS select-or-insert
//	EXECUTE name[(expr, ...)]
//	DEALLOCATE [PREPARE] (name | ALL)
//
// Statements are ';'-separated; `--` starts a line comment. Unquoted
// identifiers fold to lowercase, as in PostgreSQL.
//
// # Prepared statements and parameters
//
// PREPARE plans a SELECT or INSERT once; EXECUTE runs it with values
// bound to its $1, $2, ... placeholders (arity-checked). Parameters may
// appear anywhere a scalar expression does — WHERE clauses, projections,
// built-in aggregate arguments, INSERT values — but not inside madlib.*
// function arguments, which are resolved at plan time:
//
//	PREPARE hot AS SELECT g, avg(v) FROM t WHERE v > $1 GROUP BY g;
//	EXECUTE hot(0.25);
//	EXECUTE hot(0.75);
//
// # Performance notes
//
// The executor is compile-once-execute-many. Planning lowers every
// per-row expression (WHERE predicates, projections, aggregate
// arguments, computed madlib arguments) into typed Go closures with
// unboxed fast paths for float/int arithmetic and comparisons, instead
// of re-walking the AST with boxed values per row. GROUP BY keys go
// through the engine's keyed hash aggregate (engine.RunGroupByKey), so
// grouping by an int or text column allocates nothing per row.
//
// Each Session keeps an LRU plan cache keyed by statement text:
// re-executing the same text skips parsing and planning entirely. The
// cache is cleared on DDL, and every cached or prepared plan also
// revalidates its table bindings against the catalog before running, so
// a DROP + re-CREATE (even through another session) can never execute a
// stale plan — it replans or errors cleanly. The madlib.DB facade routes
// Exec/Query through one shared session, so callers get plan caching
// without holding any extra state. BenchmarkSQLSelectAgg tracks the
// resulting SQL-vs-engine overhead (the paper's §4.4(a) study);
// scripts/bench_sql.sh records it to BENCH_sql.json.
//
// # Types
//
// The five engine kinds, under their common SQL spellings:
//
//	double precision | double | float | float8 | real | numeric  → Float
//	double precision[] | float[] | vector                        → Vector
//	bigint | int | integer | int8 | int4 | smallint              → Int
//	text | varchar | string | char                               → String
//	boolean | bool                                               → Bool
//
// Vector literals are written {1, 2, 3} or ARRAY[1, 2, 3].
//
// # Expressions
//
// Arithmetic (+ - * / %, integer ops stay integral), comparisons
// (= <> != < <= > >=), boolean logic (AND OR NOT), string literals with
// ” escaping, and scalar functions: abs, sqrt, exp, ln, floor, ceil,
// pow, length, array_length, array_get(v, i) (1-based).
//
// # Aggregates
//
// count(*) / count(x), sum, avg, min, max, variance, stddev execute as
// engine two-phase aggregates (transition segment-parallel, merge across
// segments, final once — §3.1.1), and therefore compose with WHERE and
// GROUP BY. SELECT items may wrap aggregates in scalar expressions
// (avg(v) * 2), and ORDER BY may sort on aggregate expressions.
//
// # The madlib.* namespace
//
// Every registered library method is callable from SQL; dispatch goes
// through the internal/core registry (RegisterSQLFunc), so methods are
// never hard-coded in the executor. Two calling conventions exist:
//
// Aggregate functions behave like built-in aggregates and compose with
// WHERE and GROUP BY:
//
//	madlib.quantile(col, phi)
//	madlib.approx_quantile(col, eps, phi)
//	madlib.fmcount(col)
//
// Table-valued functions consume the whole FROM table (after WHERE) and
// return their own result relation; they must be the only SELECT item,
// written with the paper's composite-expansion syntax:
//
//	SELECT (madlib.linregr(y, x)).* FROM data
//	SELECT madlib.kmeans(coords, k [, seed]).* FROM points
//	madlib.logregr(y, x [, solver [, max_iter]])
//	madlib.naive_bayes(class, attrs)
//	madlib.c45(class, attrs)
//	madlib.svm(y, x [, mode])
//	madlib.assoc_rules(basket, item [, min_support [, min_confidence]])
//	madlib.profile()
//
// Column arguments may also be computed expressions. For table-valued
// calls, linregr(y, array[1, x1, x2]) assembles a vector from scalar
// columns by staging a temp table, the same pattern the paper's driver
// functions use for inter-iteration state (§3.1.2); for scalar
// aggregates, quantile(v * 2, 0.5) or fmcount(i % 5) compile the
// expression straight into the aggregate's transition function. The
// unqualified spelling (linregr(...) without the madlib. prefix)
// resolves through the same registry.
//
// # Not yet supported
//
// JOINs, window functions, HAVING, DISTINCT, subqueries and a wire
// protocol are tracked as ROADMAP open items.
package sql
