package logictest

import (
	"path/filepath"
	"testing"
)

// TestLogic runs every golden file in testdata/ as a subtest.
func TestLogic(t *testing.T) {
	files, err := filepath.Glob("testdata/*.slt")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 8 {
		t.Fatalf("expected at least 8 .slt files, found %d", len(files))
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			if err := RunFile(f); err != nil {
				t.Fatal(err)
			}
		})
	}
}
