// Package logictest is a golden-file SQL logic-test harness over the
// SQL front-end — a subset of the sqllogictest dialect. Each
// testdata/*.slt file is a script of records executed top to bottom
// against one fresh Session, so every SQL feature lands with a
// declarative, diffable test and new cases cost one text block (see
// README.md for the format and how to add a case).
package logictest

import (
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"

	"madlib/internal/engine"
	"madlib/internal/sql"
)

// Record is one directive of a .slt file.
type Record struct {
	// Kind is "statement" or "query".
	Kind string
	// Arg is "ok" or an expected-error substring for statements, and the
	// column-type string (one of I/R/T/B per column) for queries.
	Arg string
	// RowSort sorts actual and expected rows before comparing (for
	// queries whose order is not pinned by ORDER BY).
	RowSort bool
	// Regex treats each expected line as a regular expression that must
	// match the whole actual line (for EXPLAIN ANALYZE output, where the
	// structure is stable but timing values are not).
	Regex bool
	// SQL is the statement text (may span lines).
	SQL string
	// Expected holds the expected result lines of a query record.
	Expected []string
	// Line is the 1-based line of the directive, for error messages.
	Line int
}

// ParseFile reads a .slt script into records.
func ParseFile(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(string(data), "\n")
	var recs []Record
	i := 0
	for i < len(lines) {
		line := strings.TrimSpace(lines[i])
		if line == "" || strings.HasPrefix(line, "#") {
			i++
			continue
		}
		fields := strings.Fields(line)
		rec := Record{Kind: fields[0], Line: i + 1}
		switch fields[0] {
		case "statement":
			if len(fields) < 2 {
				return nil, fmt.Errorf("%s:%d: statement needs 'ok' or 'error <substring>'", path, i+1)
			}
			if fields[1] == "ok" {
				rec.Arg = "ok"
			} else if fields[1] == "error" {
				rec.Arg = strings.TrimSpace(strings.TrimPrefix(line, "statement error"))
				rec.Kind = "statement-error"
			} else {
				return nil, fmt.Errorf("%s:%d: unknown statement directive %q", path, i+1, fields[1])
			}
			i++
			var sqlLines []string
			for i < len(lines) && strings.TrimSpace(lines[i]) != "" {
				sqlLines = append(sqlLines, lines[i])
				i++
			}
			rec.SQL = strings.Join(sqlLines, "\n")
		case "query":
			if len(fields) < 2 {
				return nil, fmt.Errorf("%s:%d: query needs a type string (I/R/T/B per column)", path, i+1)
			}
			rec.Arg = fields[1]
			for _, c := range rec.Arg {
				if !strings.ContainsRune("IRTB", c) {
					return nil, fmt.Errorf("%s:%d: bad column type %q (want I, R, T or B)", path, i+1, string(c))
				}
			}
			for _, opt := range fields[2:] {
				switch opt {
				case "rowsort":
					rec.RowSort = true
				case "regex":
					rec.Regex = true
				default:
					return nil, fmt.Errorf("%s:%d: unknown query option %q", path, i+1, opt)
				}
			}
			i++
			var sqlLines []string
			for i < len(lines) && strings.TrimSpace(lines[i]) != "----" {
				if strings.TrimSpace(lines[i]) == "" {
					return nil, fmt.Errorf("%s:%d: query needs a ---- separator before the expected rows", path, rec.Line)
				}
				sqlLines = append(sqlLines, lines[i])
				i++
			}
			if i >= len(lines) {
				return nil, fmt.Errorf("%s:%d: query missing ---- separator", path, rec.Line)
			}
			i++ // skip ----
			rec.SQL = strings.Join(sqlLines, "\n")
			for i < len(lines) && strings.TrimSpace(lines[i]) != "" {
				rec.Expected = append(rec.Expected, strings.TrimSpace(lines[i]))
				i++
			}
		default:
			return nil, fmt.Errorf("%s:%d: unknown directive %q", path, i+1, fields[0])
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// FormatRow renders one result row the way expected lines are written:
// values space-separated, NULL for nil, (empty) for the empty string.
func FormatRow(row []any) string {
	parts := make([]string, len(row))
	for i, v := range row {
		switch {
		case v == nil:
			parts[i] = "NULL"
		case v == "":
			parts[i] = "(empty)"
		default:
			parts[i] = sql.FormatValue(v)
		}
	}
	return strings.Join(parts, " ")
}

// RunFile executes every record of a script against a fresh session and
// returns the first mismatch as an error (nil when the file passes).
func RunFile(path string) error {
	db := engine.Open(4)
	sess := sql.NewSession(db)
	recs, err := ParseFile(path)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		where := fmt.Sprintf("%s:%d", path, rec.Line)
		switch rec.Kind {
		case "statement":
			if _, err := sess.Exec(rec.SQL); err != nil {
				return fmt.Errorf("%s: statement failed: %v\nSQL: %s", where, err, rec.SQL)
			}
		case "statement-error":
			_, err := sess.Exec(rec.SQL)
			if err == nil {
				return fmt.Errorf("%s: statement should have failed\nSQL: %s", where, rec.SQL)
			}
			if rec.Arg != "" && !strings.Contains(err.Error(), rec.Arg) {
				return fmt.Errorf("%s: error %q does not contain %q", where, err.Error(), rec.Arg)
			}
		case "query":
			res, err := sess.Query(rec.SQL)
			if err != nil {
				return fmt.Errorf("%s: query failed: %v\nSQL: %s", where, err, rec.SQL)
			}
			if len(res.Cols) != len(rec.Arg) {
				return fmt.Errorf("%s: query returned %d columns, type string %q wants %d",
					where, len(res.Cols), rec.Arg, len(rec.Arg))
			}
			actual := make([]string, len(res.Rows))
			for i, row := range res.Rows {
				actual[i] = FormatRow(row)
			}
			expected := append([]string(nil), rec.Expected...)
			if rec.RowSort {
				sort.Strings(actual)
				sort.Strings(expected)
			}
			if len(actual) != len(expected) {
				return fmt.Errorf("%s: got %d rows, want %d\nSQL: %s\ngot:\n%s\nwant:\n%s",
					where, len(actual), len(expected), rec.SQL,
					strings.Join(actual, "\n"), strings.Join(expected, "\n"))
			}
			for i := range actual {
				if rec.Regex {
					re, err := regexp.Compile("^(?:" + expected[i] + ")$")
					if err != nil {
						return fmt.Errorf("%s: bad expected pattern %q: %v", where, expected[i], err)
					}
					if !re.MatchString(actual[i]) {
						return fmt.Errorf("%s: row %d does not match\nSQL: %s\ngot:     %s\npattern: %s",
							where, i+1, rec.SQL, actual[i], expected[i])
					}
					continue
				}
				if actual[i] != expected[i] {
					return fmt.Errorf("%s: row %d mismatch\nSQL: %s\ngot:  %s\nwant: %s",
						where, i+1, rec.SQL, actual[i], expected[i])
				}
			}
		}
	}
	return nil
}
