package sql

import (
	"sync"

	"madlib/internal/engine"
)

// The vectorized aggregate lane. A planned aggregate query carries (at
// most) one batchAggLane next to its row-lane builders; the executor
// drives it through engine.RunBatched / RunGroupByBatched when present.
// The lane reuses the row lane's accumulator structs and finalizers
// (numAccState, fminmaxState, ...) so both lanes produce bit-identical
// results — per segment, rows fold in the same order, and segment states
// merge in the same segment order.

// batchAggSpec is one aggregate call lowered to the batch lane. Exactly
// one of evalF/evalI is set for value-folding aggregates; both are nil
// for count (which may still carry evalDiscard to surface argument
// evaluation errors, matching count(expr) on the row lane).
type batchAggSpec struct {
	evalF func(e *batchEval, b engine.ColBatch, sel selVec) ([]float64, error)
	evalI func(e *batchEval, b engine.ColBatch, sel selVec) ([]int64, error)
	// evalDiscard evaluates a count(expr) argument for its errors only.
	evalDiscard func(e *batchEval, b engine.ColBatch, sel selVec) error

	init func() any
	// updF/updI/updN fold one selected row into an accumulator (grouped
	// path); foldF/foldI fold a whole lane (ungrouped fast path).
	updF  func(st any, v float64)
	updI  func(st any, v int64)
	updN  func(st any, n int64)
	foldF func(st any, vals []float64)
	foldI func(st any, vals []int64)

	merge func(a, b any) any
	final func(st any) (any, error)
}

// buildBatchAggregate lowers one built-in aggregate call to a batch
// spec; ok=false (madlib aggregates, non-numeric min/max, dynamic
// arguments) keeps the whole query on the row lane.
func buildBatchAggregate(call *FuncCall, bc *batchCompiler) (*batchAggSpec, bool) {
	if call.Schema != "" || !builtinAggs[call.Name] {
		return nil, false
	}
	var arg *bcompiled
	if !call.Star {
		if len(call.Args) != 1 {
			return nil, false
		}
		var ok bool
		arg, ok = compileBatchExpr(call.Args[0], bc)
		if !ok || arg.paramIdx > 0 {
			return nil, false
		}
	}
	switch call.Name {
	case "count":
		spec := &batchAggSpec{
			init: func() any { return &countState{} },
			updN: func(st any, n int64) { st.(*countState).n += n },
			merge: func(a, b any) any {
				sa, sb := a.(*countState), b.(*countState)
				sa.n += sb.n
				return sa
			},
			final: func(st any) (any, error) { return st.(*countState).n, nil },
		}
		// count(expr) evaluates its argument so runtime errors surface;
		// constant arguments cannot fail and skip the evaluation.
		if arg != nil && !arg.isConst {
			switch arg.kind {
			case ckFloat:
				fk := arg.f
				slot := bc.floatSlot()
				spec.evalDiscard = func(e *batchEval, b engine.ColBatch, sel selVec) error {
					return fk(e, b, sel, e.f(slot, len(sel)))
				}
			case ckInt:
				ik := arg.i
				slot := bc.intSlot()
				spec.evalDiscard = func(e *batchEval, b engine.ColBatch, sel selVec) error {
					return ik(e, b, sel, e.i(slot, len(sel)))
				}
			case ckStr:
				sk := arg.s
				slot := bc.strSlot()
				spec.evalDiscard = func(e *batchEval, b engine.ColBatch, sel selVec) error {
					return sk(e, b, sel, e.s(slot, len(sel)))
				}
			case ckBool:
				bk := arg.b
				slot := bc.boolSlot()
				spec.evalDiscard = func(e *batchEval, b engine.ColBatch, sel selVec) error {
					return bk(e, b, sel, e.b(slot, len(sel)))
				}
			default:
				return nil, false
			}
		}
		return spec, true
	case "min", "max":
		wantLess := call.Name == "min"
		switch arg.kind {
		case ckInt:
			spec := &batchAggSpec{
				init: func() any { return &iminmaxState{} },
				updI: func(st any, v int64) {
					s := st.(*iminmaxState)
					if !s.seen || (wantLess && v < s.val) || (!wantLess && v > s.val) {
						s.val, s.seen = v, true
					}
				},
				merge: func(a, b any) any {
					sa, sb := a.(*iminmaxState), b.(*iminmaxState)
					if sb.seen && (!sa.seen || (wantLess && sb.val < sa.val) || (!wantLess && sb.val > sa.val)) {
						sa.val, sa.seen = sb.val, true
					}
					return sa
				},
				final: func(st any) (any, error) {
					s := st.(*iminmaxState)
					if !s.seen {
						return nil, nil
					}
					return s.val, nil
				},
			}
			spec.evalI = laneEvalI(arg.i, bc)
			spec.foldI = func(st any, vals []int64) {
				for _, v := range vals {
					spec.updI(st, v)
				}
			}
			return spec, true
		case ckFloat:
			spec := &batchAggSpec{
				init: func() any { return &fminmaxState{} },
				updF: func(st any, v float64) {
					s := st.(*fminmaxState)
					if !s.seen || (wantLess && v < s.val) || (!wantLess && v > s.val) {
						s.val, s.seen = v, true
					}
				},
				merge: func(a, b any) any {
					sa, sb := a.(*fminmaxState), b.(*fminmaxState)
					if sb.seen && (!sa.seen || (wantLess && sb.val < sa.val) || (!wantLess && sb.val > sa.val)) {
						sa.val, sa.seen = sb.val, true
					}
					return sa
				},
				final: func(st any) (any, error) {
					s := st.(*fminmaxState)
					if !s.seen {
						return nil, nil
					}
					return s.val, nil
				},
			}
			spec.evalF = laneEvalF(arg.f, bc)
			spec.foldF = func(st any, vals []float64) {
				for _, v := range vals {
					spec.updF(st, v)
				}
			}
			return spec, true
		}
		return nil, false
	case "sum", "avg", "variance", "stddev":
		final := numAccFinal(call.Name)
		switch arg.kind {
		case ckInt:
			spec := &batchAggSpec{
				init: func() any { return &numAccState{intOnly: true} },
				updI: func(st any, v int64) {
					s := st.(*numAccState)
					f := float64(v)
					s.sumInt += v
					s.n++
					s.sum += f
					s.sumSq += f * f
				},
				merge: func(a, b any) any { return mergeNumAcc(a, b) },
				final: func(st any) (any, error) { return final(st) },
			}
			spec.evalI = laneEvalI(arg.i, bc)
			spec.foldI = func(st any, vals []int64) {
				s := st.(*numAccState)
				for _, v := range vals {
					f := float64(v)
					s.sumInt += v
					s.sum += f
					s.sumSq += f * f
				}
				s.n += int64(len(vals))
			}
			return spec, true
		case ckFloat:
			spec := &batchAggSpec{
				init: func() any { return &numAccState{} },
				updF: func(st any, v float64) {
					s := st.(*numAccState)
					s.n++
					s.sum += v
					s.sumSq += v * v
				},
				merge: func(a, b any) any { return mergeNumAcc(a, b) },
				final: func(st any) (any, error) { return final(st) },
			}
			spec.evalF = laneEvalF(arg.f, bc)
			spec.foldF = func(st any, vals []float64) {
				s := st.(*numAccState)
				for _, v := range vals {
					s.sum += v
					s.sumSq += v * v
				}
				s.n += int64(len(vals))
			}
			return spec, true
		}
		return nil, false
	}
	return nil, false
}

func laneEvalF(fk fBatchKernel, bc *batchCompiler) func(*batchEval, engine.ColBatch, selVec) ([]float64, error) {
	slot := bc.floatSlot()
	return func(e *batchEval, b engine.ColBatch, sel selVec) ([]float64, error) {
		out := e.f(slot, len(sel))
		if err := fk(e, b, sel, out); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func laneEvalI(ik iBatchKernel, bc *batchCompiler) func(*batchEval, engine.ColBatch, selVec) ([]int64, error) {
	slot := bc.intSlot()
	return func(e *batchEval, b engine.ColBatch, sel selVec) ([]int64, error) {
		out := e.i(slot, len(sel))
		if err := ik(e, b, sel, out); err != nil {
			return nil, err
		}
		return out, nil
	}
}

// batchAggLane is the planned vectorized lane of an aggregate query:
// the scratch-slot program, the WHERE kernel (nil = keep all), one spec
// per aggregate slot (aligned with aggPlan.builders), and the grouping
// projection.
// batchKeyMode selects the segment-local hash-map representation for
// the GROUP BY key. Single-column keys use Go's specialized int64 /
// string map fast paths and convert to engine.GroupKey only once per
// segment (at most one conversion per group); composite keys use the
// generic GroupKey map directly.
type batchKeyMode int

const (
	keyModeNone batchKeyMode = iota
	keyModeInt               // Int, Bool and Float single-column keys, as int64
	keyModeStr               // String single-column keys
	keyModeGeneric
)

type batchAggLane struct {
	prog     *batchProg
	pred     bBatchKernel
	specs    []*batchAggSpec
	schema   engine.Schema
	groupIdx []int

	keyMode    batchKeyMode
	keyFillInt func(b engine.ColBatch, sel selVec, keys []int64)
	keyFillStr func(b engine.ColBatch, sel selVec, keys []string)
	keyFill    func(b engine.ColBatch, sel selVec, keys []engine.GroupKey)

	// pool recycles batchSegStates (and their scratch lanes) across
	// executions of this plan, so a cached plan's steady-state execution
	// allocates only per-group accumulators.
	pool sync.Pool
}

// batchGroup is one group's accumulators plus the captured key values
// (the batch counterpart of multiAggregate's keyVals capture).
type batchGroup struct {
	accs    []any
	keyVals []any
}

// batchSegState is the per-segment execution state: the kernel scratch
// plus top-level buffers for selection, predicate output, keys and
// group-pointer resolution.
type batchSegState struct {
	e       *batchEval
	selBuf  []int32
	predOut []bool
	intKeys []int64
	strKeys []string
	keys    []engine.GroupKey
	grps    []*batchGroup
	accs    []any // ungrouped accumulators
	// Exactly one of the maps is used, per the lane's keyMode.
	mInt map[int64]*batchGroup
	mStr map[string]*batchGroup
	m    map[engine.GroupKey]*batchGroup
}

func (ln *batchAggLane) newSegState(env *execEnv, grouped bool) *batchSegState {
	st, _ := ln.pool.Get().(*batchSegState)
	if st == nil {
		st = &batchSegState{e: ln.prog.newEval(env)}
		if ln.pred != nil {
			st.selBuf = make([]int32, engine.BatchSize)
			st.predOut = make([]bool, engine.BatchSize)
		}
		if grouped {
			st.grps = make([]*batchGroup, engine.BatchSize)
			switch ln.keyMode {
			case keyModeInt:
				st.intKeys = make([]int64, engine.BatchSize)
			case keyModeStr:
				st.strKeys = make([]string, engine.BatchSize)
			default:
				st.keys = make([]engine.GroupKey, engine.BatchSize)
			}
		}
	}
	st.e.env = env
	if grouped {
		switch ln.keyMode {
		case keyModeInt:
			if st.mInt == nil {
				st.mInt = make(map[int64]*batchGroup)
			}
		case keyModeStr:
			if st.mStr == nil {
				st.mStr = make(map[string]*batchGroup)
			}
		default:
			if st.m == nil {
				st.m = make(map[engine.GroupKey]*batchGroup)
			}
		}
	} else {
		st.accs = make([]any, len(ln.specs))
		for i, spec := range ln.specs {
			st.accs[i] = spec.init()
		}
	}
	return st
}

// releaseSegState returns a segment state's scratch to the pool. The
// per-execution outputs (accumulators, group map entries) have already
// escaped into the merged result; drop every reference to them so the
// pooled scratch cannot pin group memory.
func (ln *batchAggLane) releaseSegState(st *batchSegState) {
	st.e.env = nil
	st.accs = nil
	if st.m != nil {
		clear(st.m)
	}
	if st.mInt != nil {
		clear(st.mInt)
	}
	if st.mStr != nil {
		clear(st.mStr)
	}
	for j := range st.grps {
		st.grps[j] = nil
	}
	for j := range st.keys {
		st.keys[j] = engine.GroupKey{}
	}
	for j := range st.strKeys {
		st.strKeys[j] = ""
	}
	ln.pool.Put(st)
}

// select applies the WHERE kernel to one batch and returns the surviving
// selection (the identity selection when there is no WHERE).
func (ln *batchAggLane) selectRows(st *batchSegState, b engine.ColBatch) (selVec, error) {
	sel := st.e.identSel(b.Len())
	if ln.pred == nil {
		return sel, nil
	}
	po := st.predOut[:b.Len()]
	if err := ln.pred(st.e, b, sel, po); err != nil {
		return nil, err
	}
	keep := st.selBuf[:0]
	for j, ok := range po {
		if ok {
			keep = append(keep, int32(j))
		}
	}
	return keep, nil
}

// processUngrouped folds one batch into the segment's accumulators.
func (ln *batchAggLane) processUngrouped(st *batchSegState, b engine.ColBatch) error {
	sel, err := ln.selectRows(st, b)
	if err != nil {
		return err
	}
	if len(sel) == 0 {
		return nil
	}
	for ai, spec := range ln.specs {
		switch {
		case spec.evalF != nil:
			vals, err := spec.evalF(st.e, b, sel)
			if err != nil {
				return err
			}
			spec.foldF(st.accs[ai], vals)
		case spec.evalI != nil:
			vals, err := spec.evalI(st.e, b, sel)
			if err != nil {
				return err
			}
			spec.foldI(st.accs[ai], vals)
		default:
			if spec.evalDiscard != nil {
				if err := spec.evalDiscard(st.e, b, sel); err != nil {
					return err
				}
			}
			spec.updN(st.accs[ai], int64(len(sel)))
		}
	}
	return nil
}

// processGrouped folds one batch into the segment's per-group
// accumulators: key lane, one map probe per row, then per-aggregate
// lane folds against the resolved group pointers.
func (ln *batchAggLane) processGrouped(st *batchSegState, b engine.ColBatch) error {
	sel, err := ln.selectRows(st, b)
	if err != nil {
		return err
	}
	if len(sel) == 0 {
		return nil
	}
	grps := st.grps[:len(sel)]
	switch ln.keyMode {
	case keyModeInt:
		keys := st.intKeys[:len(sel)]
		ln.keyFillInt(b, sel, keys)
		for j, k := range keys {
			g, ok := st.mInt[k]
			if !ok {
				g = ln.newGroup(b, sel[j])
				st.mInt[k] = g
			}
			grps[j] = g
		}
	case keyModeStr:
		keys := st.strKeys[:len(sel)]
		ln.keyFillStr(b, sel, keys)
		for j, k := range keys {
			g, ok := st.mStr[k]
			if !ok {
				g = ln.newGroup(b, sel[j])
				st.mStr[k] = g
			}
			grps[j] = g
		}
	default:
		keys := st.keys[:len(sel)]
		ln.keyFill(b, sel, keys)
		for j, k := range keys {
			g, ok := st.m[k]
			if !ok {
				g = ln.newGroup(b, sel[j])
				st.m[k] = g
			}
			grps[j] = g
		}
	}
	for ai, spec := range ln.specs {
		switch {
		case spec.evalF != nil:
			vals, err := spec.evalF(st.e, b, sel)
			if err != nil {
				return err
			}
			upd := spec.updF
			for j, g := range grps {
				upd(g.accs[ai], vals[j])
			}
		case spec.evalI != nil:
			vals, err := spec.evalI(st.e, b, sel)
			if err != nil {
				return err
			}
			upd := spec.updI
			for j, g := range grps {
				upd(g.accs[ai], vals[j])
			}
		default:
			if spec.evalDiscard != nil {
				if err := spec.evalDiscard(st.e, b, sel); err != nil {
					return err
				}
			}
			upd := spec.updN
			for _, g := range grps {
				upd(g.accs[ai], 1)
			}
		}
	}
	return nil
}

// newGroup creates one group's accumulators and captures its key values
// from the creating row.
func (ln *batchAggLane) newGroup(b engine.ColBatch, idx int32) *batchGroup {
	g := &batchGroup{accs: make([]any, len(ln.specs)), keyVals: make([]any, len(ln.groupIdx))}
	for ai, spec := range ln.specs {
		g.accs[ai] = spec.init()
	}
	row := b.Row(int(idx))
	for gi, ci := range ln.groupIdx {
		g.keyVals[gi] = rowValue(ln.schema, &row, ci)
	}
	return g
}

// segGroups converts a segment's typed map into the engine's GroupKey
// map — one conversion per group, after the whole segment is scanned.
func (ln *batchAggLane) segGroups(st *batchSegState) map[engine.GroupKey]any {
	switch ln.keyMode {
	case keyModeInt:
		out := make(map[engine.GroupKey]any, len(st.mInt))
		for k, g := range st.mInt {
			out[engine.GroupKey{Int: k}] = g
		}
		return out
	case keyModeStr:
		out := make(map[engine.GroupKey]any, len(st.mStr))
		for k, g := range st.mStr {
			out[engine.GroupKey{Str: k}] = g
		}
		return out
	default:
		out := make(map[engine.GroupKey]any, len(st.m))
		for k, g := range st.m {
			out[k] = g
		}
		return out
	}
}

// mergeGroups combines two groups' accumulators pairwise, keeping the
// left (lower-segment) group's key values — the same rule the row
// lane's multiAggregate.Merge applies.
func (ln *batchAggLane) mergeGroups(a, b *batchGroup) *batchGroup {
	for i, spec := range ln.specs {
		a.accs[i] = spec.merge(a.accs[i], b.accs[i])
	}
	return a
}

// finalize turns one group's accumulators into a finalized multiState,
// the shape the shared output stage (evalGroup, HAVING, ORDER BY)
// consumes.
func (ln *batchAggLane) finalize(g *batchGroup) (*multiState, error) {
	out := &multiState{slots: make([]any, len(ln.specs)), keyVals: g.keyVals}
	for i, spec := range ln.specs {
		v, err := spec.final(g.accs[i])
		if err != nil {
			return nil, err
		}
		out.slots[i] = v
	}
	return out, nil
}

// execBatch drives the vectorized lane and returns one finalized
// multiState per group (exactly one for ungrouped aggregates), matching
// the row path's intermediate shape.
func (p *aggPlan) execBatch(s *Session, env *execEnv) ([]*multiState, error) {
	ln := p.batch
	grouped := len(p.groupIdx) > 0
	// Track every segment state so the scratch returns to the pool even
	// when a kernel errors mid-scan.
	tracked := make([]*batchSegState, len(p.src.table.Segments()))
	newSeg := func(i int) any {
		st := ln.newSegState(env, grouped)
		tracked[i] = st
		return st
	}
	defer func() {
		for _, st := range tracked {
			if st != nil {
				ln.releaseSegState(st)
			}
		}
	}()
	if !grouped {
		v, err := s.db.RunBatched(p.src.table, newSeg,
			func(state any, b engine.ColBatch) error {
				return ln.processUngrouped(state.(*batchSegState), b)
			},
			func(a, b any) any {
				sa, sb := a.(*batchSegState), b.(*batchSegState)
				for i, spec := range ln.specs {
					sa.accs[i] = spec.merge(sa.accs[i], sb.accs[i])
				}
				return sa
			})
		if err != nil {
			return nil, err
		}
		ms, err := ln.finalize(&batchGroup{accs: v.(*batchSegState).accs})
		if err != nil {
			return nil, err
		}
		return []*multiState{ms}, nil
	}
	groups, err := s.db.RunGroupByBatched(p.src.table, newSeg,
		func(state any, b engine.ColBatch) error {
			return ln.processGrouped(state.(*batchSegState), b)
		},
		func(state any) map[engine.GroupKey]any {
			return ln.segGroups(state.(*batchSegState))
		},
		func(a, b any) any { return ln.mergeGroups(a.(*batchGroup), b.(*batchGroup)) })
	if err != nil {
		return nil, err
	}
	states := make([]*multiState, 0, len(groups))
	for _, v := range groups {
		ms, err := ln.finalize(v.(*batchGroup))
		if err != nil {
			return nil, err
		}
		states = append(states, ms)
	}
	return states, nil
}

// bindKeyFill wires the lane's group-key projection. Single
// Int/Bool/Float columns key as int64 (matching the row lane's
// GroupKey.Int encoding bit for bit), single String columns key as the
// string itself, and composite keys reuse the row lane's injective byte
// encoding per row.
func (ln *batchAggLane) bindKeyFill(schema engine.Schema, groupIdx []int) {
	if len(groupIdx) == 1 {
		gi := groupIdx[0]
		switch schema[gi].Kind {
		case engine.Int:
			ln.keyMode = keyModeInt
			ln.keyFillInt = func(b engine.ColBatch, sel selVec, keys []int64) {
				lane := b.Ints(gi)
				if len(sel) == len(lane) {
					copy(keys, lane)
					return
				}
				for j, idx := range sel {
					keys[j] = lane[idx]
				}
			}
			return
		case engine.Bool:
			ln.keyMode = keyModeInt
			ln.keyFillInt = func(b engine.ColBatch, sel selVec, keys []int64) {
				lane := b.Bools(gi)
				for j, idx := range sel {
					if lane[idx] {
						keys[j] = 1
					} else {
						keys[j] = 0
					}
				}
			}
			return
		case engine.Float:
			ln.keyMode = keyModeInt
			ln.keyFillInt = func(b engine.ColBatch, sel selVec, keys []int64) {
				lane := b.Floats(gi)
				for j, idx := range sel {
					keys[j] = floatKeyBits(lane[idx])
				}
			}
			return
		case engine.String:
			ln.keyMode = keyModeStr
			ln.keyFillStr = func(b engine.ColBatch, sel selVec, keys []string) {
				lane := b.Strings(gi)
				for j, idx := range sel {
					keys[j] = lane[idx]
				}
			}
			return
		}
	}
	ln.keyMode = keyModeGeneric
	ln.keyFill = func(b engine.ColBatch, sel selVec, keys []engine.GroupKey) {
		var buf []byte
		for j, idx := range sel {
			row := b.Row(int(idx))
			buf = buf[:0]
			for _, gi := range groupIdx {
				buf = appendKeyValue(buf, schema, row, gi)
			}
			keys[j] = engine.GroupKey{Str: string(buf)}
		}
	}
}

// planBatchAggLane attempts the vectorized lowering of an aggregate
// query: every aggregate slot must be a batchable built-in and the WHERE
// clause (if any) must batch-compile. ok=false leaves the plan on the
// row lane.
func planBatchAggLane(st *Select, schema engine.Schema, calls []*FuncCall, groupIdx []int) (*batchAggLane, bool) {
	bc := newBatchCompiler(schema)
	ln := &batchAggLane{schema: schema, groupIdx: groupIdx}
	pred, ok := compileBatchPredicate(st.Where, bc)
	if !ok {
		return nil, false
	}
	ln.pred = pred
	ln.specs = make([]*batchAggSpec, len(calls))
	for i, call := range calls {
		spec, ok := buildBatchAggregate(call, bc)
		if !ok {
			return nil, false
		}
		ln.specs[i] = spec
	}
	if len(groupIdx) > 0 {
		for _, gi := range groupIdx {
			if schema[gi].Kind == engine.Vector {
				// Vector-valued group keys stay on the row lane.
				return nil, false
			}
		}
		ln.bindKeyFill(schema, groupIdx)
	}
	ln.prog = bc.prog
	return ln, true
}
