package sql

import (
	"sync"

	"madlib/internal/engine"
)

// The vectorized aggregate lane. A planned aggregate query carries (at
// most) one batchAggLane next to its row-lane builders; the executor
// drives it through engine.RunBatched / RunGroupByBatched when present.
// The lane reuses the row lane's accumulator structs and finalizers
// (numAccState, fminmaxState, ...) so both lanes produce bit-identical
// results — per morsel, rows fold in the same order, and morsel states
// merge in the same (segment, offset) order the row lane merges in.

// batchAggSpec is one aggregate call lowered to the batch lane. At most
// one of evalF/evalI/evalS is set for value-folding aggregates; all are
// nil for count (which may still carry evalDiscard to surface argument
// evaluation errors, matching count(expr) on the row lane) and for
// madlib aggregates, which fold whole rows through updRow.
type batchAggSpec struct {
	evalF func(e *batchEval, b engine.ColBatch, sel selVec) ([]float64, error)
	evalI func(e *batchEval, b engine.ColBatch, sel selVec) ([]int64, error)
	evalS func(e *batchEval, b engine.ColBatch, sel selVec) ([]string, error)
	// evalDiscard evaluates a count(expr) argument for its errors only.
	evalDiscard func(e *batchEval, b engine.ColBatch, sel selVec) error
	// validV, when non-nil, evaluates the argument's validity lane: the
	// argument can be NULL (it reads the padded side of a LEFT JOIN) and
	// the aggregate must skip invalid rows, exactly as the row lane's
	// accumulators skip nil. The value lanes hold don't-care padding at
	// invalid positions.
	validV func(e *batchEval, b engine.ColBatch, sel selVec) ([]bool, error)

	init func() any
	// updF/updI/updS/updN fold one selected row into an accumulator
	// (grouped path); foldF/foldI/foldS fold a whole lane (ungrouped
	// fast path).
	updF  func(st any, v float64)
	updI  func(st any, v int64)
	updS  func(st any, v string)
	updN  func(st any, n int64)
	foldF func(st any, vals []float64)
	foldI func(st any, vals []int64)
	foldS func(st any, vals []string)

	// updRow folds one selected row directly through an engine.Aggregate
	// transition — the adapter that lets madlib scalar aggregates ride
	// the batch lane (vectorized WHERE, parallel morsels) while keeping
	// their row-at-a-time transition semantics.
	updRow func(st any, row engine.Row) any

	// argCol >= 0 marks an argument that is a bare column reference of
	// the matching lane kind; together with fusedF/fusedI it enables the
	// fused filter+aggregate path for single-aggregate queries, which
	// folds the raw column lane against the predicate's bool lane with
	// no selection vector and no gather.
	argCol int
	fusedF func(st any, lane []float64, keep []bool)
	fusedI func(st any, lane []int64, keep []bool)

	merge func(a, b any) any
	final func(st any) (any, error)
}

// buildBatchAggregate lowers one built-in aggregate call to a batch
// spec; ok=false (bool min/max, Vector-typed or dynamic arguments)
// keeps the whole query on the row lane. Registered madlib aggregates
// are adapted separately (buildMadlibBatchSpec).
func buildBatchAggregate(call *FuncCall, bc *batchCompiler) (*batchAggSpec, bool) {
	spec, ok := buildBuiltinBatchSpec(call, bc)
	if !ok {
		return nil, false
	}
	spec.argCol = -1
	attachFused(spec, call, bc)
	return spec, true
}

func buildBuiltinBatchSpec(call *FuncCall, bc *batchCompiler) (*batchAggSpec, bool) {
	if call.Schema != "" || !builtinAggs[call.Name] {
		return nil, false
	}
	var arg *bcompiled
	if !call.Star {
		if len(call.Args) != 1 {
			return nil, false
		}
		var ok bool
		arg, ok = compileBatchExpr(call.Args[0], bc)
		if !ok || arg.paramIdx > 0 {
			return nil, false
		}
	}
	switch call.Name {
	case "count":
		spec := &batchAggSpec{
			init: func() any { return &countState{} },
			updN: func(st any, n int64) { st.(*countState).n += n },
			merge: func(a, b any) any {
				sa, sb := a.(*countState), b.(*countState)
				sa.n += sb.n
				return sa
			},
			final: func(st any) (any, error) { return st.(*countState).n, nil },
		}
		// count(expr) counts non-NULL values: a possibly-NULL argument
		// contributes its validity lane and only valid rows count.
		if arg != nil && arg.valid != nil {
			spec.validV = laneEvalV(arg.valid, bc)
		}
		// count(expr) evaluates its argument so runtime errors surface;
		// constant arguments and bare column references cannot fail and
		// skip the evaluation (storage holds no errors, and a NULL-padded
		// gather is fault-free).
		isBareCol := false
		if len(call.Args) == 1 {
			_, isBareCol = call.Args[0].(*ColumnRef)
		}
		if arg != nil && !arg.isConst && !isBareCol {
			switch arg.kind {
			case ckFloat:
				fk := arg.f
				slot := bc.floatSlot()
				spec.evalDiscard = func(e *batchEval, b engine.ColBatch, sel selVec) error {
					return fk(e, b, sel, e.f(slot, len(sel)))
				}
			case ckInt:
				ik := arg.i
				slot := bc.intSlot()
				spec.evalDiscard = func(e *batchEval, b engine.ColBatch, sel selVec) error {
					return ik(e, b, sel, e.i(slot, len(sel)))
				}
			case ckStr:
				sk := arg.s
				slot := bc.strSlot()
				spec.evalDiscard = func(e *batchEval, b engine.ColBatch, sel selVec) error {
					return sk(e, b, sel, e.s(slot, len(sel)))
				}
			case ckBool:
				bk := arg.b
				slot := bc.boolSlot()
				spec.evalDiscard = func(e *batchEval, b engine.ColBatch, sel selVec) error {
					return bk(e, b, sel, e.b(slot, len(sel)))
				}
			default:
				return nil, false
			}
		}
		return spec, true
	case "min", "max":
		wantLess := call.Name == "min"
		switch arg.kind {
		case ckInt:
			spec := &batchAggSpec{
				init: func() any { return &iminmaxState{} },
				updI: func(st any, v int64) {
					s := st.(*iminmaxState)
					if !s.seen || (wantLess && v < s.val) || (!wantLess && v > s.val) {
						s.val, s.seen = v, true
					}
				},
				merge: func(a, b any) any {
					sa, sb := a.(*iminmaxState), b.(*iminmaxState)
					if sb.seen && (!sa.seen || (wantLess && sb.val < sa.val) || (!wantLess && sb.val > sa.val)) {
						sa.val, sa.seen = sb.val, true
					}
					return sa
				},
				final: func(st any) (any, error) {
					s := st.(*iminmaxState)
					if !s.seen {
						return nil, nil
					}
					return s.val, nil
				},
			}
			spec.evalI = laneEvalI(arg.i, bc)
			spec.foldI = func(st any, vals []int64) {
				for _, v := range vals {
					spec.updI(st, v)
				}
			}
			return withValidity(spec, arg, bc), true
		case ckFloat:
			spec := &batchAggSpec{
				init: func() any { return &fminmaxState{} },
				updF: func(st any, v float64) {
					s := st.(*fminmaxState)
					if !s.seen || (wantLess && v < s.val) || (!wantLess && v > s.val) {
						s.val, s.seen = v, true
					}
				},
				merge: func(a, b any) any {
					sa, sb := a.(*fminmaxState), b.(*fminmaxState)
					if sb.seen && (!sa.seen || (wantLess && sb.val < sa.val) || (!wantLess && sb.val > sa.val)) {
						sa.val, sa.seen = sb.val, true
					}
					return sa
				},
				final: func(st any) (any, error) {
					s := st.(*fminmaxState)
					if !s.seen {
						return nil, nil
					}
					return s.val, nil
				},
			}
			spec.evalF = laneEvalF(arg.f, bc)
			spec.foldF = func(st any, vals []float64) {
				for _, v := range vals {
					spec.updF(st, v)
				}
			}
			return withValidity(spec, arg, bc), true
		case ckStr:
			spec := &batchAggSpec{
				init: func() any { return &sminmaxState{} },
				updS: func(st any, v string) {
					s := st.(*sminmaxState)
					if !s.seen || (wantLess && v < s.val) || (!wantLess && v > s.val) {
						s.val, s.seen = v, true
					}
				},
				merge: func(a, b any) any {
					sa, sb := a.(*sminmaxState), b.(*sminmaxState)
					if sb.seen && (!sa.seen || (wantLess && sb.val < sa.val) || (!wantLess && sb.val > sa.val)) {
						sa.val, sa.seen = sb.val, true
					}
					return sa
				},
				final: func(st any) (any, error) {
					s := st.(*sminmaxState)
					if !s.seen {
						return nil, nil
					}
					return s.val, nil
				},
			}
			spec.evalS = laneEvalS(arg.s, bc)
			spec.foldS = func(st any, vals []string) {
				for _, v := range vals {
					spec.updS(st, v)
				}
			}
			return withValidity(spec, arg, bc), true
		}
		return nil, false
	case "sum", "avg", "variance", "stddev":
		final := numAccFinal(call.Name)
		switch arg.kind {
		case ckInt:
			spec := &batchAggSpec{
				init: func() any { return &numAccState{intOnly: true} },
				updI: func(st any, v int64) {
					s := st.(*numAccState)
					f := float64(v)
					s.sumInt += v
					s.n++
					s.sum += f
					s.sumSq += f * f
				},
				merge: func(a, b any) any { return mergeNumAcc(a, b) },
				final: func(st any) (any, error) { return final(st) },
			}
			spec.evalI = laneEvalI(arg.i, bc)
			spec.foldI = func(st any, vals []int64) {
				s := st.(*numAccState)
				for _, v := range vals {
					f := float64(v)
					s.sumInt += v
					s.sum += f
					s.sumSq += f * f
				}
				s.n += int64(len(vals))
			}
			return withValidity(spec, arg, bc), true
		case ckFloat:
			spec := &batchAggSpec{
				init: func() any { return &numAccState{} },
				updF: func(st any, v float64) {
					s := st.(*numAccState)
					s.n++
					s.sum += v
					s.sumSq += v * v
				},
				merge: func(a, b any) any { return mergeNumAcc(a, b) },
				final: func(st any) (any, error) { return final(st) },
			}
			spec.evalF = laneEvalF(arg.f, bc)
			spec.foldF = func(st any, vals []float64) {
				s := st.(*numAccState)
				for _, v := range vals {
					s.sum += v
					s.sumSq += v * v
				}
				s.n += int64(len(vals))
			}
			return withValidity(spec, arg, bc), true
		}
		return nil, false
	}
	return nil, false
}

func laneEvalF(fk fBatchKernel, bc *batchCompiler) func(*batchEval, engine.ColBatch, selVec) ([]float64, error) {
	slot := bc.floatSlot()
	return func(e *batchEval, b engine.ColBatch, sel selVec) ([]float64, error) {
		out := e.f(slot, len(sel))
		if err := fk(e, b, sel, out); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func laneEvalI(ik iBatchKernel, bc *batchCompiler) func(*batchEval, engine.ColBatch, selVec) ([]int64, error) {
	slot := bc.intSlot()
	return func(e *batchEval, b engine.ColBatch, sel selVec) ([]int64, error) {
		out := e.i(slot, len(sel))
		if err := ik(e, b, sel, out); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func laneEvalS(sk sBatchKernel, bc *batchCompiler) func(*batchEval, engine.ColBatch, selVec) ([]string, error) {
	slot := bc.strSlot()
	return func(e *batchEval, b engine.ColBatch, sel selVec) ([]string, error) {
		out := e.s(slot, len(sel))
		if err := sk(e, b, sel, out); err != nil {
			return nil, err
		}
		return out, nil
	}
}

func laneEvalB(bk bBatchKernel, bc *batchCompiler) func(*batchEval, engine.ColBatch, selVec) ([]bool, error) {
	slot := bc.boolSlot()
	return func(e *batchEval, b engine.ColBatch, sel selVec) ([]bool, error) {
		out := e.b(slot, len(sel))
		if err := bk(e, b, sel, out); err != nil {
			return nil, err
		}
		return out, nil
	}
}

// laneEvalV is laneEvalB over a validity kernel (a distinct helper only
// for readability at call sites).
func laneEvalV(vk bBatchKernel, bc *batchCompiler) func(*batchEval, engine.ColBatch, selVec) ([]bool, error) {
	return laneEvalB(vk, bc)
}

// withValidity attaches the argument's validity lane to a value-folding
// spec so its folds can skip NULL rows.
func withValidity(spec *batchAggSpec, arg *bcompiled, bc *batchCompiler) *batchAggSpec {
	if arg != nil && arg.valid != nil {
		spec.validV = laneEvalV(arg.valid, bc)
	}
	return spec
}

// projItem is one SELECT-list item lowered to the batch lane: a typed
// lane evaluator plus (for possibly-NULL items) a validity evaluator.
// The columnar projection evaluates each item once per batch over the
// surviving selection and boxes the lane column-wise into the output
// rows — one type switch per column per batch instead of a compiled
// closure call per row per item. Items with no batch lowering (Vector
// columns, $n parameters, madlib calls) stay nil and fall back to their
// row-lane itemFn.
type projItem struct {
	evalF func(e *batchEval, b engine.ColBatch, sel selVec) ([]float64, error)
	evalI func(e *batchEval, b engine.ColBatch, sel selVec) ([]int64, error)
	evalS func(e *batchEval, b engine.ColBatch, sel selVec) ([]string, error)
	evalB func(e *batchEval, b engine.ColBatch, sel selVec) ([]bool, error)
	// validE, when non-nil, marks a possibly-NULL item: invalid rows box
	// as nil (the row lane's NULL), valid rows box the lane value.
	validE func(e *batchEval, b engine.ColBatch, sel selVec) ([]bool, error)
}

// buildProjItem lowers one projection expression; ok=false keeps that
// item (alone) on the row lane.
func buildProjItem(expr Expr, bc *batchCompiler) (*projItem, bool) {
	c, ok := compileBatchExpr(expr, bc)
	if !ok || c.paramIdx > 0 {
		return nil, false
	}
	pi := &projItem{}
	switch c.kind {
	case ckFloat:
		pi.evalF = laneEvalF(c.f, bc)
	case ckInt:
		pi.evalI = laneEvalI(c.i, bc)
	case ckStr:
		pi.evalS = laneEvalS(c.s, bc)
	case ckBool:
		pi.evalB = laneEvalB(c.b, bc)
	default:
		return nil, false
	}
	if c.valid != nil {
		pi.validE = laneEvalV(c.valid, bc)
	}
	return pi, true
}

// box evaluates the item over sel and writes column col of the output
// rows (rows[j] is the boxed output row of row sel[j]).
func (pi *projItem) box(e *batchEval, b engine.ColBatch, sel selVec, rows [][]any, col int) error {
	var vl []bool
	if pi.validE != nil {
		var err error
		vl, err = pi.validE(e, b, sel)
		if err != nil {
			return err
		}
	}
	switch {
	case pi.evalF != nil:
		vals, err := pi.evalF(e, b, sel)
		if err != nil {
			return err
		}
		if vl == nil {
			for j := range vals {
				rows[j][col] = vals[j]
			}
			break
		}
		for j := range vals {
			if vl[j] {
				rows[j][col] = vals[j]
			}
		}
	case pi.evalI != nil:
		vals, err := pi.evalI(e, b, sel)
		if err != nil {
			return err
		}
		if vl == nil {
			for j := range vals {
				rows[j][col] = vals[j]
			}
			break
		}
		for j := range vals {
			if vl[j] {
				rows[j][col] = vals[j]
			}
		}
	case pi.evalS != nil:
		vals, err := pi.evalS(e, b, sel)
		if err != nil {
			return err
		}
		if vl == nil {
			for j := range vals {
				rows[j][col] = vals[j]
			}
			break
		}
		for j := range vals {
			if vl[j] {
				rows[j][col] = vals[j]
			}
		}
	case pi.evalB != nil:
		vals, err := pi.evalB(e, b, sel)
		if err != nil {
			return err
		}
		if vl == nil {
			for j := range vals {
				rows[j][col] = vals[j]
			}
			break
		}
		for j := range vals {
			if vl[j] {
				rows[j][col] = vals[j]
			}
		}
	}
	return nil
}

// newSourceBatchCompiler builds the batch compiler for a plan source,
// carrying the LEFT JOIN NULL-padding metadata when present.
func newSourceBatchCompiler(ps *planSource) *batchCompiler {
	bc := newBatchCompiler(ps.schema)
	if ps.nullable != nil {
		bc.nullable = ps.nullable
		bc.matchedIdx = ps.matchedIdx
	}
	bc.src = ps
	return bc
}

// sminmaxState is the batch lane's unboxed text min/max accumulator
// (the row lane keeps these boxed in minmaxState; results agree because
// string comparison is exact).
type sminmaxState struct {
	val  string
	seen bool
}

// buildMadlibBatchSpec adapts a registered madlib scalar aggregate onto
// the batch lane by folding each selected row through the row-lane
// aggregate instance the plan already built. The arguments of a madlib
// aggregate are fixed at plan time (resolveFuncArgs rejects $n), so the
// builder ignores the execution environment and the instance is safe to
// bind here; Init still creates fresh state per segment and per group.
// The win over the row lane is upstream: the WHERE clause vectorizes
// and the scan parallelizes over morsels.
func buildMadlibBatchSpec(b aggBuilder) (*batchAggSpec, bool) {
	agg, err := b(nil)
	if err != nil {
		return nil, false
	}
	return &batchAggSpec{
		argCol: -1,
		init:   agg.Init,
		updRow: agg.Transition,
		merge:  agg.Merge,
		final:  agg.Final,
	}, true
}

// attachFused marks aggregate arguments that are bare column references
// and equips the spec with fused filter+fold kernels over the raw lane.
// planBatchAggLane promotes the spec to the fused path for ungrouped
// single-aggregate queries: one predicate pass, one fold pass, no
// selection vector, no gather. Fold order is row order within the
// segment either way, so results stay bit-identical to the unfused lane.
func attachFused(spec *batchAggSpec, call *FuncCall, bc *batchCompiler) {
	if call.Star || len(call.Args) != 1 {
		return
	}
	cr, ok := call.Args[0].(*ColumnRef)
	if !ok {
		return
	}
	ci, ok := bc.colIdx[cr.Name]
	if !ok {
		return
	}
	if bc.nullable != nil && bc.nullable[ci] {
		// NULL-padded column: the fused kernels fold raw lanes with no
		// validity mask, so nullable arguments stay on the gather path.
		return
	}
	switch call.Name {
	case "sum", "avg", "variance", "stddev":
		switch bc.schema[ci].Kind {
		case engine.Float:
			spec.argCol = ci
			spec.fusedF = func(st any, lane []float64, keep []bool) {
				s := st.(*numAccState)
				if keep == nil {
					for _, v := range lane {
						s.sum += v
						s.sumSq += v * v
					}
					s.n += int64(len(lane))
					return
				}
				for i, v := range lane {
					if keep[i] {
						s.sum += v
						s.sumSq += v * v
						s.n++
					}
				}
			}
		case engine.Int:
			spec.argCol = ci
			spec.fusedI = func(st any, lane []int64, keep []bool) {
				s := st.(*numAccState)
				if keep == nil {
					for _, v := range lane {
						f := float64(v)
						s.sumInt += v
						s.sum += f
						s.sumSq += f * f
					}
					s.n += int64(len(lane))
					return
				}
				for i, v := range lane {
					if keep[i] {
						f := float64(v)
						s.sumInt += v
						s.sum += f
						s.sumSq += f * f
						s.n++
					}
				}
			}
		}
	case "min", "max":
		wantLess := call.Name == "min"
		switch bc.schema[ci].Kind {
		case engine.Float:
			spec.argCol = ci
			spec.fusedF = func(st any, lane []float64, keep []bool) {
				s := st.(*fminmaxState)
				for i, v := range lane {
					if keep != nil && !keep[i] {
						continue
					}
					if !s.seen || (wantLess && v < s.val) || (!wantLess && v > s.val) {
						s.val, s.seen = v, true
					}
				}
			}
		case engine.Int:
			spec.argCol = ci
			spec.fusedI = func(st any, lane []int64, keep []bool) {
				s := st.(*iminmaxState)
				for i, v := range lane {
					if keep != nil && !keep[i] {
						continue
					}
					if !s.seen || (wantLess && v < s.val) || (!wantLess && v > s.val) {
						s.val, s.seen = v, true
					}
				}
			}
		}
	}
}

// batchAggLane is the planned vectorized lane of an aggregate query:
// the scratch-slot program, the WHERE kernel (nil = keep all), one spec
// per aggregate slot (aligned with aggPlan.builders), and the grouping
// projection.
// batchKeyMode selects the segment-local hash-map representation for
// the GROUP BY key. Single-column keys use Go's specialized int64 /
// string map fast paths and convert to engine.GroupKey only once per
// segment (at most one conversion per group); composite keys use the
// generic GroupKey map directly.
type batchKeyMode int

const (
	keyModeNone batchKeyMode = iota
	keyModeInt               // Int, Bool and Float single-column keys, as int64
	keyModeStr               // String single-column keys
	keyModeGeneric
)

type batchAggLane struct {
	prog     *batchProg
	pred     bBatchKernel
	specs    []*batchAggSpec
	schema   engine.Schema
	groupIdx []int

	// fused, when non-nil, is specs[0] of an ungrouped single-aggregate
	// query whose argument folds straight off a column lane (or count):
	// processFused replaces the select+gather+fold pipeline.
	fused *batchAggSpec

	keyMode    batchKeyMode
	keyFillInt func(b engine.ColBatch, sel selVec, keys []int64)
	keyFillStr func(b engine.ColBatch, sel selVec, keys []string)
	keyFill    func(b engine.ColBatch, sel selVec, keys []engine.GroupKey)

	// pool recycles batchMorselStates (and their scratch lanes) across
	// executions of this plan, so a cached plan's steady-state execution
	// allocates only per-group accumulators.
	pool sync.Pool
}

// batchGroup is one group's accumulators plus the captured key values
// (the batch counterpart of multiAggregate's keyVals capture).
type batchGroup struct {
	accs    []any
	keyVals []any
}

// batchMorselState is the per-morsel execution state: the kernel scratch
// plus top-level buffers for selection, predicate output, keys and
// group-pointer resolution.
type batchMorselState struct {
	e       *batchEval
	selBuf  []int32
	predOut []bool
	intKeys []int64
	strKeys []string
	keys    []engine.GroupKey
	grps    []*batchGroup
	accs    []any // ungrouped accumulators
	// Exactly one of the maps is used, per the lane's keyMode.
	mInt map[int64]*batchGroup
	mStr map[string]*batchGroup
	m    map[engine.GroupKey]*batchGroup
}

func (ln *batchAggLane) newMorselState(env *execEnv, grouped bool) *batchMorselState {
	st, _ := ln.pool.Get().(*batchMorselState)
	if st == nil {
		st = &batchMorselState{e: ln.prog.newEval(env)}
		if ln.pred != nil {
			st.selBuf = make([]int32, engine.BatchSize)
			st.predOut = make([]bool, engine.BatchSize)
		}
		if grouped {
			st.grps = make([]*batchGroup, engine.BatchSize)
			switch ln.keyMode {
			case keyModeInt:
				st.intKeys = make([]int64, engine.BatchSize)
			case keyModeStr:
				st.strKeys = make([]string, engine.BatchSize)
			default:
				st.keys = make([]engine.GroupKey, engine.BatchSize)
			}
		}
	}
	st.e.env = env
	if grouped {
		switch ln.keyMode {
		case keyModeInt:
			if st.mInt == nil {
				st.mInt = make(map[int64]*batchGroup)
			}
		case keyModeStr:
			if st.mStr == nil {
				st.mStr = make(map[string]*batchGroup)
			}
		default:
			if st.m == nil {
				st.m = make(map[engine.GroupKey]*batchGroup)
			}
		}
	} else {
		st.accs = make([]any, len(ln.specs))
		for i, spec := range ln.specs {
			st.accs[i] = spec.init()
		}
	}
	return st
}

// releaseMorselState returns a segment state's scratch to the pool. The
// per-execution outputs (accumulators, group map entries) have already
// escaped into the merged result; drop every reference to them so the
// pooled scratch cannot pin group memory.
func (ln *batchAggLane) releaseMorselState(st *batchMorselState) {
	st.e.env = nil
	st.accs = nil
	if st.m != nil {
		clear(st.m)
	}
	if st.mInt != nil {
		clear(st.mInt)
	}
	if st.mStr != nil {
		clear(st.mStr)
	}
	for j := range st.grps {
		st.grps[j] = nil
	}
	for j := range st.keys {
		st.keys[j] = engine.GroupKey{}
	}
	for j := range st.strKeys {
		st.strKeys[j] = ""
	}
	ln.pool.Put(st)
}

// select applies the WHERE kernel to one batch and returns the surviving
// selection (the identity selection when there is no WHERE).
func (ln *batchAggLane) selectRows(st *batchMorselState, b engine.ColBatch) (selVec, error) {
	sel := st.e.identSel(b.Len())
	if ln.pred == nil {
		return sel, nil
	}
	po := st.predOut[:b.Len()]
	if err := ln.pred(st.e, b, sel, po); err != nil {
		return nil, err
	}
	keep := st.selBuf[:0]
	for j, ok := range po {
		if ok {
			keep = append(keep, int32(j))
		}
	}
	return keep, nil
}

// processUngrouped folds one batch into the segment's accumulators.
func (ln *batchAggLane) processUngrouped(st *batchMorselState, b engine.ColBatch) error {
	if ln.fused != nil {
		return ln.processFused(st, b)
	}
	sel, err := ln.selectRows(st, b)
	if err != nil {
		return err
	}
	if len(sel) == 0 {
		return nil
	}
	for ai, spec := range ln.specs {
		// vl is the argument's validity lane; nil means every selected row
		// folds (the common, NULL-free case).
		var vl []bool
		if spec.validV != nil {
			var err error
			vl, err = spec.validV(st.e, b, sel)
			if err != nil {
				return err
			}
		}
		switch {
		case spec.updRow != nil:
			acc := st.accs[ai]
			for _, idx := range sel {
				acc = spec.updRow(acc, b.Row(int(idx)))
			}
			st.accs[ai] = acc
		case spec.evalF != nil:
			vals, err := spec.evalF(st.e, b, sel)
			if err != nil {
				return err
			}
			if vl != nil {
				for j, v := range vals {
					if vl[j] {
						spec.updF(st.accs[ai], v)
					}
				}
			} else {
				spec.foldF(st.accs[ai], vals)
			}
		case spec.evalI != nil:
			vals, err := spec.evalI(st.e, b, sel)
			if err != nil {
				return err
			}
			if vl != nil {
				for j, v := range vals {
					if vl[j] {
						spec.updI(st.accs[ai], v)
					}
				}
			} else {
				spec.foldI(st.accs[ai], vals)
			}
		case spec.evalS != nil:
			vals, err := spec.evalS(st.e, b, sel)
			if err != nil {
				return err
			}
			if vl != nil {
				for j, v := range vals {
					if vl[j] {
						spec.updS(st.accs[ai], v)
					}
				}
			} else {
				spec.foldS(st.accs[ai], vals)
			}
		default:
			if spec.evalDiscard != nil {
				if err := spec.evalDiscard(st.e, b, sel); err != nil {
					return err
				}
			}
			if vl != nil {
				var n int64
				for _, ok := range vl {
					if ok {
						n++
					}
				}
				spec.updN(st.accs[ai], n)
			} else {
				spec.updN(st.accs[ai], int64(len(sel)))
			}
		}
	}
	return nil
}

// processFused is the fused filter+aggregate path: evaluate the WHERE
// kernel into a bool lane (when present) and fold the aggregate's raw
// column lane against it in one pass — no selection vector, no gather,
// no per-value closure. Only planned for ungrouped single-aggregate
// queries whose argument is a bare column reference or count(*).
func (ln *batchAggLane) processFused(st *batchMorselState, b engine.ColBatch) error {
	var keep []bool
	if ln.pred != nil {
		keep = st.predOut[:b.Len()]
		if err := ln.pred(st.e, b, st.e.identSel(b.Len()), keep); err != nil {
			return err
		}
	}
	spec := ln.fused
	switch {
	case spec.fusedF != nil:
		spec.fusedF(st.accs[0], b.Floats(spec.argCol), keep)
	case spec.fusedI != nil:
		spec.fusedI(st.accs[0], b.Ints(spec.argCol), keep)
	default: // count(*) / count(col)
		n := int64(b.Len())
		if keep != nil {
			n = 0
			for _, k := range keep {
				if k {
					n++
				}
			}
		}
		spec.updN(st.accs[0], n)
	}
	return nil
}

// processGrouped folds one batch into the segment's per-group
// accumulators: key lane, one map probe per row, then per-aggregate
// lane folds against the resolved group pointers.
func (ln *batchAggLane) processGrouped(st *batchMorselState, b engine.ColBatch) error {
	sel, err := ln.selectRows(st, b)
	if err != nil {
		return err
	}
	if len(sel) == 0 {
		return nil
	}
	grps := st.grps[:len(sel)]
	switch ln.keyMode {
	case keyModeInt:
		keys := st.intKeys[:len(sel)]
		ln.keyFillInt(b, sel, keys)
		for j, k := range keys {
			g, ok := st.mInt[k]
			if !ok {
				g = ln.newGroup(b, sel[j])
				st.mInt[k] = g
			}
			grps[j] = g
		}
	case keyModeStr:
		keys := st.strKeys[:len(sel)]
		ln.keyFillStr(b, sel, keys)
		for j, k := range keys {
			g, ok := st.mStr[k]
			if !ok {
				g = ln.newGroup(b, sel[j])
				st.mStr[k] = g
			}
			grps[j] = g
		}
	default:
		keys := st.keys[:len(sel)]
		ln.keyFill(b, sel, keys)
		for j, k := range keys {
			g, ok := st.m[k]
			if !ok {
				g = ln.newGroup(b, sel[j])
				st.m[k] = g
			}
			grps[j] = g
		}
	}
	for ai, spec := range ln.specs {
		// vl is the argument's validity lane; invalid rows still create
		// their group (the row lane's keyed aggregate sees the row too),
		// they just don't fold a value.
		var vl []bool
		if spec.validV != nil {
			var err error
			vl, err = spec.validV(st.e, b, sel)
			if err != nil {
				return err
			}
		}
		switch {
		case spec.updRow != nil:
			for j, g := range grps {
				g.accs[ai] = spec.updRow(g.accs[ai], b.Row(int(sel[j])))
			}
		case spec.evalF != nil:
			vals, err := spec.evalF(st.e, b, sel)
			if err != nil {
				return err
			}
			upd := spec.updF
			for j, g := range grps {
				if vl == nil || vl[j] {
					upd(g.accs[ai], vals[j])
				}
			}
		case spec.evalI != nil:
			vals, err := spec.evalI(st.e, b, sel)
			if err != nil {
				return err
			}
			upd := spec.updI
			for j, g := range grps {
				if vl == nil || vl[j] {
					upd(g.accs[ai], vals[j])
				}
			}
		case spec.evalS != nil:
			vals, err := spec.evalS(st.e, b, sel)
			if err != nil {
				return err
			}
			upd := spec.updS
			for j, g := range grps {
				if vl == nil || vl[j] {
					upd(g.accs[ai], vals[j])
				}
			}
		default:
			if spec.evalDiscard != nil {
				if err := spec.evalDiscard(st.e, b, sel); err != nil {
					return err
				}
			}
			upd := spec.updN
			for j, g := range grps {
				if vl == nil || vl[j] {
					upd(g.accs[ai], 1)
				}
			}
		}
	}
	return nil
}

// newGroup creates one group's accumulators and captures its key values
// from the creating row.
func (ln *batchAggLane) newGroup(b engine.ColBatch, idx int32) *batchGroup {
	g := &batchGroup{accs: make([]any, len(ln.specs)), keyVals: make([]any, len(ln.groupIdx))}
	for ai, spec := range ln.specs {
		g.accs[ai] = spec.init()
	}
	row := b.Row(int(idx))
	for gi, ci := range ln.groupIdx {
		g.keyVals[gi] = rowValue(ln.schema, &row, ci)
	}
	return g
}

// morselGroups converts a morsel's typed map into the engine's GroupKey
// map — one conversion per group, after the whole morsel is scanned.
func (ln *batchAggLane) morselGroups(st *batchMorselState) map[engine.GroupKey]any {
	switch ln.keyMode {
	case keyModeInt:
		out := make(map[engine.GroupKey]any, len(st.mInt))
		for k, g := range st.mInt {
			out[engine.GroupKey{Int: k}] = g
		}
		return out
	case keyModeStr:
		out := make(map[engine.GroupKey]any, len(st.mStr))
		for k, g := range st.mStr {
			out[engine.GroupKey{Str: k}] = g
		}
		return out
	default:
		out := make(map[engine.GroupKey]any, len(st.m))
		for k, g := range st.m {
			out[k] = g
		}
		return out
	}
}

// mergeGroups combines two groups' accumulators pairwise, keeping the
// left (lower-segment) group's key values — the same rule the row
// lane's multiAggregate.Merge applies.
func (ln *batchAggLane) mergeGroups(a, b *batchGroup) *batchGroup {
	for i, spec := range ln.specs {
		a.accs[i] = spec.merge(a.accs[i], b.accs[i])
	}
	return a
}

// finalize turns one group's accumulators into a finalized multiState,
// the shape the shared output stage (evalGroup, HAVING, ORDER BY)
// consumes.
func (ln *batchAggLane) finalize(g *batchGroup) (*multiState, error) {
	out := &multiState{slots: make([]any, len(ln.specs)), keyVals: g.keyVals}
	for i, spec := range ln.specs {
		v, err := spec.final(g.accs[i])
		if err != nil {
			return nil, err
		}
		out.slots[i] = v
	}
	return out, nil
}

// execBatch drives the vectorized lane over the acquired input table
// (the base table, or a join's materialization) and returns one
// finalized multiState per group (exactly one for ungrouped
// aggregates), matching the row path's intermediate shape.
func (p *aggPlan) execBatch(s *Session, env *execEnv, input *engine.Table) ([]*multiState, error) {
	ln := p.batch
	grouped := len(p.groupIdx) > 0
	// Track every morsel state so the scratch returns to the pool even
	// when a kernel errors mid-scan. States are indexed by morsel — large
	// segments split into several morsels, so this can exceed the segment
	// count.
	tracked := make([]*batchMorselState, s.db.ScanMorsels(input))
	newMorsel := func(i int) any {
		st := ln.newMorselState(env, grouped)
		tracked[i] = st
		return st
	}
	defer func() {
		for _, st := range tracked {
			if st != nil {
				ln.releaseMorselState(st)
			}
		}
	}()
	if !grouped {
		v, err := s.db.RunBatchedCtx(env.context(), input, newMorsel,
			func(state any, b engine.ColBatch) error {
				return ln.processUngrouped(state.(*batchMorselState), b)
			},
			func(a, b any) any {
				sa, sb := a.(*batchMorselState), b.(*batchMorselState)
				for i, spec := range ln.specs {
					sa.accs[i] = spec.merge(sa.accs[i], sb.accs[i])
				}
				return sa
			})
		if err != nil {
			return nil, err
		}
		ms, err := ln.finalize(&batchGroup{accs: v.(*batchMorselState).accs})
		if err != nil {
			return nil, err
		}
		return []*multiState{ms}, nil
	}
	groups, err := s.db.RunGroupByBatchedCtx(env.context(), input, newMorsel,
		func(state any, b engine.ColBatch) error {
			return ln.processGrouped(state.(*batchMorselState), b)
		},
		func(state any) map[engine.GroupKey]any {
			return ln.morselGroups(state.(*batchMorselState))
		},
		func(a, b any) any { return ln.mergeGroups(a.(*batchGroup), b.(*batchGroup)) })
	if err != nil {
		return nil, err
	}
	states := make([]*multiState, 0, len(groups))
	for _, v := range groups {
		ms, err := ln.finalize(v.(*batchGroup))
		if err != nil {
			return nil, err
		}
		states = append(states, ms)
	}
	return states, nil
}

// bindKeyFill wires the lane's group-key projection. Single
// Int/Bool/Float columns key as int64 (matching the row lane's
// GroupKey.Int encoding bit for bit), single String columns key as the
// string itself, and composite keys reuse the row lane's injective byte
// encoding per row.
func (ln *batchAggLane) bindKeyFill(schema engine.Schema, groupIdx []int) {
	if len(groupIdx) == 1 {
		gi := groupIdx[0]
		switch schema[gi].Kind {
		case engine.Int:
			ln.keyMode = keyModeInt
			ln.keyFillInt = func(b engine.ColBatch, sel selVec, keys []int64) {
				lane := b.Ints(gi)
				if len(sel) == len(lane) {
					copy(keys, lane)
					return
				}
				for j, idx := range sel {
					keys[j] = lane[idx]
				}
			}
			return
		case engine.Bool:
			ln.keyMode = keyModeInt
			ln.keyFillInt = func(b engine.ColBatch, sel selVec, keys []int64) {
				lane := b.Bools(gi)
				for j, idx := range sel {
					if lane[idx] {
						keys[j] = 1
					} else {
						keys[j] = 0
					}
				}
			}
			return
		case engine.Float:
			ln.keyMode = keyModeInt
			ln.keyFillInt = func(b engine.ColBatch, sel selVec, keys []int64) {
				lane := b.Floats(gi)
				for j, idx := range sel {
					keys[j] = floatKeyBits(lane[idx])
				}
			}
			return
		case engine.String:
			ln.keyMode = keyModeStr
			ln.keyFillStr = func(b engine.ColBatch, sel selVec, keys []string) {
				lane := b.Strings(gi)
				for j, idx := range sel {
					keys[j] = lane[idx]
				}
			}
			return
		}
	}
	ln.keyMode = keyModeGeneric
	ln.keyFill = func(b engine.ColBatch, sel selVec, keys []engine.GroupKey) {
		var buf []byte
		for j, idx := range sel {
			row := b.Row(int(idx))
			buf = buf[:0]
			for _, gi := range groupIdx {
				buf = appendKeyValue(buf, schema, row, gi)
			}
			keys[j] = engine.GroupKey{Str: string(buf)}
		}
	}
}

// planBatchAggLane attempts the vectorized lowering of an aggregate
// query: every aggregate slot must be a batchable built-in or a
// registered madlib aggregate (adapted through its row transition), and
// the WHERE clause (if any) must batch-compile. builders is the row
// lane's aggregate-builder list, parallel to calls — the madlib adapter
// reuses the instances it already built. ok=false leaves the plan on
// the row lane.
func planBatchAggLane(st *Select, ps *planSource, calls []*FuncCall, builders []aggBuilder, groupIdx []int) (*batchAggLane, bool) {
	schema := ps.schema
	bc := newSourceBatchCompiler(ps)
	ln := &batchAggLane{schema: schema, groupIdx: groupIdx}
	pred, ok := compileBatchPredicate(st.Where, bc)
	if !ok {
		return nil, false
	}
	ln.pred = pred
	ln.specs = make([]*batchAggSpec, len(calls))
	for i, call := range calls {
		spec, ok := buildBatchAggregate(call, bc)
		if !ok && !(call.Schema == "" && builtinAggs[call.Name]) {
			// Registered madlib aggregate: fold rows through the plan's
			// row-lane instance (its builder ignores the environment).
			spec, ok = buildMadlibBatchSpec(builders[i])
		}
		if !ok {
			return nil, false
		}
		ln.specs[i] = spec
	}
	if len(groupIdx) > 0 {
		for _, gi := range groupIdx {
			if schema[gi].Kind == engine.Vector {
				// Vector-valued group keys stay on the row lane.
				return nil, false
			}
		}
		ln.bindKeyFill(schema, groupIdx)
	} else if len(ln.specs) == 1 {
		// Fused filter+aggregate: single aggregate over a raw column lane
		// (or a plain count) with no grouping.
		spec := ln.specs[0]
		countOnly := spec.updN != nil && spec.updRow == nil && spec.evalDiscard == nil &&
			spec.validV == nil && spec.evalF == nil && spec.evalI == nil && spec.evalS == nil
		if spec.fusedF != nil || spec.fusedI != nil || countOnly {
			ln.fused = spec
		}
	}
	ln.prog = bc.prog
	return ln, true
}
