package sql

import (
	"strconv"
	"strings"

	"madlib/internal/engine"
)

// reservedWords may not be used as bare column references inside
// expressions; the parser needs them to delimit clauses. Table and column
// names in DDL/DML positions are unrestricted.
var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "order": true,
	"by": true, "limit": true, "as": true, "asc": true, "desc": true,
	"and": true, "or": true, "not": true, "values": true, "insert": true,
	"create": true, "drop": true, "table": true, "into": true, "having": true,
	"join": true, "on": true, "inner": true, "left": true, "outer": true,
	"distinct": true, "over": true,
}

// maxParams bounds $n placeholder numbers, catching typos like $1000000
// before they size a parameter slice.
const maxParams = 512

// Parse tokenizes and parses a script of one or more ';'-separated
// statements.
func Parse(input string) ([]Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	var stmts []Statement
	for {
		for p.peek().Kind == TokOp && p.peek().Text == ";" {
			p.pos++
		}
		if p.peek().Kind == TokEOF {
			return stmts, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		t := p.peek()
		if t.Kind == TokEOF {
			return stmts, nil
		}
		if !(t.Kind == TokOp && t.Text == ";") {
			return nil, syntaxErrf(t.Pos, "expected ';' or end of input, got %q", t.Text)
		}
	}
}

// ParseStatement parses exactly one statement.
func ParseStatement(input string) (Statement, error) {
	stmts, err := Parse(input)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, syntaxErrf(0, "expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

type parser struct {
	toks []Token
	pos  int
	// src is the original input, so PREPARE can keep the inner
	// statement's exact source text for listings and replanning.
	src string
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) peek2() Token { // token after peek (EOF-safe: EOF is last)
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

// matchKeyword consumes the next token when it is the given keyword.
func (p *parser) matchKeyword(kw string) bool {
	if p.peek().IsKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if !t.IsKeyword(kw) {
		return syntaxErrf(t.Pos, "expected %s, got %q", strings.ToUpper(kw), tokenDesc(t))
	}
	p.pos++
	return nil
}

// matchOp consumes the next token when it is the given operator.
func (p *parser) matchOp(op string) bool {
	t := p.peek()
	if t.Kind == TokOp && t.Text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	t := p.peek()
	if !(t.Kind == TokOp && t.Text == op) {
		return syntaxErrf(t.Pos, "expected %q, got %q", op, tokenDesc(t))
	}
	p.pos++
	return nil
}

func (p *parser) expectIdent(what string) (Token, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return t, syntaxErrf(t.Pos, "expected %s, got %q", what, tokenDesc(t))
	}
	p.pos++
	return t, nil
}

func tokenDesc(t Token) string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return t.Text
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	switch {
	case t.IsKeyword("create"):
		return p.parseCreate()
	case t.IsKeyword("drop"):
		return p.parseDrop()
	case t.IsKeyword("insert"):
		return p.parseInsert()
	case t.IsKeyword("select"):
		return p.parseSelect()
	case t.IsKeyword("prepare"):
		return p.parsePrepare()
	case t.IsKeyword("execute"):
		return p.parseExecute()
	case t.IsKeyword("deallocate"):
		return p.parseDeallocate()
	case t.IsKeyword("explain"):
		return p.parseExplain()
	}
	return nil, syntaxErrf(t.Pos, "expected CREATE, DROP, INSERT, SELECT, PREPARE, EXECUTE, DEALLOCATE or EXPLAIN, got %q", tokenDesc(t))
}

// parseExplain parses EXPLAIN [ANALYZE] statement. Like PREPARE, only
// SELECT and INSERT can be explained, and the inner source text is
// captured so the session can probe its plan cache under the same key.
// Neither EXPLAIN nor ANALYZE is a reserved word — tables and columns
// may still use the names.
func (p *parser) parseExplain() (Statement, error) {
	p.pos++ // EXPLAIN
	st := &Explain{}
	if p.matchKeyword("analyze") {
		st.Analyze = true
	}
	start := p.peek().Pos
	t := p.peek()
	if !t.IsKeyword("select") && !t.IsKeyword("insert") {
		return nil, syntaxErrf(t.Pos, "EXPLAIN supports only SELECT and INSERT statements, got %q", tokenDesc(t))
	}
	inner, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	st.Stmt = inner
	st.Text = strings.TrimSpace(p.src[start:p.peek().Pos])
	return st, nil
}

// parsePrepare parses PREPARE name AS statement. Only SELECT and INSERT
// can be prepared; the inner statement may use $n placeholders.
func (p *parser) parsePrepare() (Statement, error) {
	p.pos++ // PREPARE
	name, err := p.expectIdent("prepared statement name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("as"); err != nil {
		return nil, err
	}
	start := p.peek().Pos
	t := p.peek()
	if !t.IsKeyword("select") && !t.IsKeyword("insert") {
		return nil, syntaxErrf(t.Pos, "PREPARE supports only SELECT and INSERT statements, got %q", tokenDesc(t))
	}
	inner, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	return &Prepare{
		Name: strings.ToLower(name.Text),
		Stmt: inner,
		Text: strings.TrimSpace(p.src[start:p.peek().Pos]),
	}, nil
}

// parseExecute parses EXECUTE name[(expr, ...)].
func (p *parser) parseExecute() (Statement, error) {
	p.pos++ // EXECUTE
	name, err := p.expectIdent("prepared statement name")
	if err != nil {
		return nil, err
	}
	stmt := &Execute{Name: strings.ToLower(name.Text)}
	if p.matchOp("(") {
		if !p.matchOp(")") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				stmt.Args = append(stmt.Args, e)
				if p.matchOp(",") {
					continue
				}
				break
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		}
	}
	return stmt, nil
}

// parseDeallocate parses DEALLOCATE [PREPARE] (name | ALL).
func (p *parser) parseDeallocate() (Statement, error) {
	p.pos++ // DEALLOCATE
	p.matchKeyword("prepare")
	if p.matchKeyword("all") {
		return &Deallocate{All: true}, nil
	}
	name, err := p.expectIdent("prepared statement name")
	if err != nil {
		return nil, err
	}
	return &Deallocate{Name: strings.ToLower(name.Text)}, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.pos++ // CREATE
	if err := p.expectKeyword("table"); err != nil {
		return nil, err
	}
	stmt := &CreateTable{}
	if p.peek().IsKeyword("if") && p.peek2().IsKeyword("not") {
		p.pos += 2
		if err := p.expectKeyword("exists"); err != nil {
			return nil, err
		}
		stmt.IfNotExists = true
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	stmt.Name = strings.ToLower(name.Text)
	if p.matchKeyword("as") {
		if !p.peek().IsKeyword("select") {
			return nil, syntaxErrf(p.peek().Pos, "expected SELECT after CREATE TABLE ... AS, got %q", tokenDesc(p.peek()))
		}
		inner, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &CreateTableAs{Name: stmt.Name, IfNotExists: stmt.IfNotExists, Query: inner.(*Select)}, nil
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent("column name")
		if err != nil {
			return nil, err
		}
		kind, err := p.parseType()
		if err != nil {
			return nil, err
		}
		stmt.Cols = append(stmt.Cols, ColumnDef{Name: strings.ToLower(col.Text), Kind: kind})
		if p.matchOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

// parseType recognizes the engine's five kinds under their common SQL
// spellings, including `double precision` and the `[]` array suffix.
func (p *parser) parseType() (engine.Kind, error) {
	t, err := p.expectIdent("column type")
	if err != nil {
		return 0, err
	}
	name := strings.ToLower(t.Text)
	if name == "double" && p.matchKeyword("precision") {
		name = "double precision"
	}
	array := false
	if p.matchOp("[") {
		if err := p.expectOp("]"); err != nil {
			return 0, err
		}
		array = true
	}
	var kind engine.Kind
	switch name {
	case "double precision", "double", "float", "float8", "real", "numeric":
		kind = engine.Float
	case "vector":
		return engine.Vector, nil
	case "bigint", "int", "integer", "int8", "int4", "smallint":
		kind = engine.Int
	case "text", "varchar", "string", "char":
		kind = engine.String
	case "boolean", "bool":
		kind = engine.Bool
	default:
		return 0, syntaxErrf(t.Pos, "unknown column type %q", t.Text)
	}
	if array {
		if kind != engine.Float {
			return 0, syntaxErrf(t.Pos, "only double precision[] arrays are supported, not %s[]", name)
		}
		return engine.Vector, nil
	}
	return kind, nil
}

func (p *parser) parseDrop() (Statement, error) {
	p.pos++ // DROP
	if err := p.expectKeyword("table"); err != nil {
		return nil, err
	}
	stmt := &DropTable{}
	if p.peek().IsKeyword("if") && p.peek2().IsKeyword("exists") {
		p.pos += 2
		stmt.IfExists = true
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	stmt.Name = strings.ToLower(name.Text)
	return stmt, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.pos++ // INSERT
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return nil, err
	}
	stmt := &Insert{Table: strings.ToLower(name.Text)}
	if p.matchOp("(") {
		for {
			col, err := p.expectIdent("column name")
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, strings.ToLower(col.Text))
			if p.matchOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.matchOp(",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if p.matchOp(",") {
			continue
		}
		break
	}
	return stmt, nil
}

func (p *parser) parseSelect() (Statement, error) {
	p.pos++ // SELECT
	stmt := &Select{Limit: -1}
	if p.matchKeyword("distinct") {
		stmt.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.matchOp(",") {
			continue
		}
		break
	}
	if p.matchKeyword("from") {
		name, err := p.expectIdent("table name")
		if err != nil {
			return nil, err
		}
		stmt.From = strings.ToLower(name.Text)
		alias, err := p.parseOptionalAlias()
		if err != nil {
			return nil, err
		}
		stmt.FromAlias = alias
		if err := p.parseJoinClause(stmt); err != nil {
			return nil, err
		}
	}
	if p.matchKeyword("where") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = e
	}
	if p.matchKeyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent("GROUP BY column")
			if err != nil {
				return nil, err
			}
			name := strings.ToLower(col.Text)
			// Optional qualifier: GROUP BY d.name.
			if p.peek().Kind == TokOp && p.peek().Text == "." && p.peek2().Kind == TokIdent {
				p.pos++
				c2 := p.next()
				name = name + "." + strings.ToLower(c2.Text)
			}
			stmt.GroupBy = append(stmt.GroupBy, name)
			if p.matchOp(",") {
				continue
			}
			break
		}
	}
	if p.matchKeyword("having") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = e
	}
	if p.matchKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.matchKeyword("desc") {
				key.Desc = true
			} else {
				p.matchKeyword("asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if p.matchOp(",") {
				continue
			}
			break
		}
	}
	if p.matchKeyword("limit") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, syntaxErrf(t.Pos, "expected LIMIT count, got %q", tokenDesc(t))
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, syntaxErrf(t.Pos, "invalid LIMIT count %q", t.Text)
		}
		p.pos++
		stmt.Limit = n
	}
	return stmt, nil
}

// parseOptionalAlias consumes `[AS] name` after a table reference.
func (p *parser) parseOptionalAlias() (string, error) {
	if p.matchKeyword("as") {
		t, err := p.expectIdent("table alias")
		if err != nil {
			return "", err
		}
		return strings.ToLower(t.Text), nil
	}
	if t := p.peek(); t.Kind == TokIdent && !reservedWords[strings.ToLower(t.Text)] {
		p.pos++
		return strings.ToLower(t.Text), nil
	}
	return "", nil
}

// parseJoinClause parses `[INNER] JOIN tbl [alias] ON cond` or
// `LEFT [OUTER] JOIN ...` after the FROM table.
func (p *parser) parseJoinClause(stmt *Select) error {
	t := p.peek()
	var isLeft bool
	switch {
	case t.IsKeyword("join"):
		p.pos++
	case t.IsKeyword("inner"):
		p.pos++
		if err := p.expectKeyword("join"); err != nil {
			return err
		}
	case t.IsKeyword("left"):
		p.pos++
		p.matchKeyword("outer")
		if err := p.expectKeyword("join"); err != nil {
			return err
		}
		isLeft = true
	default:
		return nil
	}
	name, err := p.expectIdent("table name")
	if err != nil {
		return err
	}
	j := &JoinClause{Left: isLeft, Table: strings.ToLower(name.Text), Pos: t.Pos}
	if j.Alias, err = p.parseOptionalAlias(); err != nil {
		return err
	}
	if err := p.expectKeyword("on"); err != nil {
		return err
	}
	if j.On, err = p.parseExpr(); err != nil {
		return err
	}
	stmt.Join = j
	if n := p.peek(); n.IsKeyword("join") || n.IsKeyword("inner") || n.IsKeyword("left") {
		return syntaxErrf(n.Pos, "only a single two-table JOIN is supported")
	}
	return nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.matchOp("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	// `(expr).*` / `madlib.fn(...).*` composite expansion.
	if p.peek().Kind == TokOp && p.peek().Text == "." && p.peek2().Kind == TokOp && p.peek2().Text == "*" {
		p.pos += 2
		item.Expand = true
	}
	if p.matchKeyword("as") {
		alias, err := p.expectIdent("column alias")
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = strings.ToLower(alias.Text)
	} else if t := p.peek(); t.Kind == TokIdent && !reservedWords[strings.ToLower(t.Text)] {
		p.pos++
		item.Alias = strings.ToLower(t.Text)
	}
	return item, nil
}

// Expression grammar, loosest first:
//
//	expr    := and (OR and)*
//	and     := not (AND not)*
//	not     := [NOT] cmp
//	cmp     := add [(=|<>|!=|<|<=|>|>=) add]
//	add     := mul ((+|-) mul)*
//	mul     := unary ((*|/|%) unary)*
//	unary   := [-|+] primary
//	primary := literal | array | column | fn(args) | madlib.fn(args) | (expr)
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().IsKeyword("or") {
		pos := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().IsKeyword("and") {
		pos := p.next().Pos
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r, Pos: pos}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.peek().IsKeyword("not") {
		p.pos++
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokOp {
		switch t.Text {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			p.pos++
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			op := t.Text
			if op == "!=" {
				op = "<>"
			}
			return &Binary{Op: op, L: l, R: r, Pos: t.Pos}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-") {
			p.pos++
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r, Pos: t.Pos}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: t.Text, L: l, R: r, Pos: t.Pos}
			continue
		}
		return l, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == TokOp && (t.Text == "-" || t.Text == "+") {
		p.pos++
		// Fold a minus directly into a following numeric literal so
		// -9223372036854775808 (min int64, whose positive magnitude does
		// not fit in int64) parses as an exact integer.
		if t.Text == "-" && p.peek().Kind == TokNumber {
			nt := p.peek()
			p.pos++
			return negNumberLiteral(nt)
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.Text == "+" {
			return x, nil
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.pos++
		return numberLiteral(t)
	case t.Kind == TokString:
		p.pos++
		return &Literal{Val: t.Text, Pos: t.Pos}, nil
	case t.Kind == TokParam:
		p.pos++
		n, err := strconv.ParseInt(t.Text, 10, 32)
		if err != nil || n < 1 || n > maxParams {
			return nil, syntaxErrf(t.Pos, "invalid parameter number $%s", t.Text)
		}
		return &Param{Idx: int(n), Pos: t.Pos}, nil
	case t.Kind == TokOp && t.Text == "(":
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokOp && t.Text == "{":
		return p.parseArray("}")
	case t.IsKeyword("array"):
		p.pos++
		if tt := p.peek(); !(tt.Kind == TokOp && tt.Text == "[") {
			return nil, syntaxErrf(tt.Pos, "expected '[' after ARRAY")
		}
		return p.parseArray("]")
	case t.IsKeyword("true"):
		p.pos++
		return &Literal{Val: true, Pos: t.Pos}, nil
	case t.IsKeyword("false"):
		p.pos++
		return &Literal{Val: false, Pos: t.Pos}, nil
	case t.Kind == TokIdent:
		if reservedWords[strings.ToLower(t.Text)] {
			return nil, syntaxErrf(t.Pos, "unexpected keyword %q in expression", t.Text)
		}
		p.pos++
		// Qualified name: schema '.' fn '(' ... is a namespaced call;
		// table '.' column is a qualified column reference.
		if p.peek().Kind == TokOp && p.peek().Text == "." && p.peek2().Kind == TokIdent {
			p.pos++ // '.'
			fn := p.next()
			if p.peek().Kind == TokOp && p.peek().Text == "(" {
				call, err := p.parseCallArgs(&FuncCall{Schema: strings.ToLower(t.Text), Name: strings.ToLower(fn.Text), Pos: t.Pos})
				if err != nil {
					return nil, err
				}
				return p.parseMaybeOver(call)
			}
			if reservedWords[strings.ToLower(fn.Text)] {
				return nil, syntaxErrf(fn.Pos, "unexpected keyword %q after %q", fn.Text, t.Text+".")
			}
			return &ColumnRef{Table: strings.ToLower(t.Text), Name: strings.ToLower(fn.Text), Pos: t.Pos}, nil
		}
		if p.peek().Kind == TokOp && p.peek().Text == "(" {
			call, err := p.parseCallArgs(&FuncCall{Name: strings.ToLower(t.Text), Pos: t.Pos})
			if err != nil {
				return nil, err
			}
			return p.parseMaybeOver(call)
		}
		return &ColumnRef{Name: strings.ToLower(t.Text), Pos: t.Pos}, nil
	}
	return nil, syntaxErrf(t.Pos, "unexpected %q in expression", tokenDesc(t))
}

func (p *parser) parseArray(closer string) (Expr, error) {
	open := p.next() // '{' or '['
	arr := &ArrayLit{Pos: open.Pos}
	if p.matchOp(closer) {
		return arr, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		arr.Elems = append(arr.Elems, e)
		if p.matchOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(closer); err != nil {
		return nil, err
	}
	return arr, nil
}

// parseMaybeOver attaches an OVER (...) window specification to a
// function call when one follows.
func (p *parser) parseMaybeOver(e Expr) (Expr, error) {
	if !p.peek().IsKeyword("over") {
		return e, nil
	}
	fc := e.(*FuncCall)
	pos := p.next().Pos // OVER
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	o := &OverClause{Pos: pos}
	if p.peek().IsKeyword("partition") {
		p.pos++
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			pe, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			o.PartitionBy = append(o.PartitionBy, pe)
			if p.matchOp(",") {
				continue
			}
			break
		}
	}
	if p.matchKeyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			ke, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: ke}
			if p.matchKeyword("desc") {
				key.Desc = true
			} else {
				p.matchKeyword("asc")
			}
			o.OrderBy = append(o.OrderBy, key)
			if p.matchOp(",") {
				continue
			}
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	fc.Over = o
	return fc, nil
}

func (p *parser) parseCallArgs(call *FuncCall) (Expr, error) {
	p.pos++ // '('
	if p.matchOp("*") {
		call.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if p.matchOp(")") {
		return call, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, e)
		if p.matchOp(",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return call, nil
}

func numberLiteral(t Token) (Expr, error) {
	if !strings.ContainsAny(t.Text, ".eE") {
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, syntaxErrf(t.Pos, "integer %q out of range for bigint", t.Text)
		}
		return &Literal{Val: n, Pos: t.Pos}, nil
	}
	f, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return nil, syntaxErrf(t.Pos, "invalid number %q", t.Text)
	}
	return &Literal{Val: f, Pos: t.Pos}, nil
}

// negNumberLiteral parses a numeric token with a unary minus folded in,
// keeping -9223372036854775808 exact instead of widening to float64.
func negNumberLiteral(t Token) (Expr, error) {
	if !strings.ContainsAny(t.Text, ".eE") {
		n, err := strconv.ParseInt("-"+t.Text, 10, 64)
		if err != nil {
			return nil, syntaxErrf(t.Pos, "integer %q out of range for bigint", "-"+t.Text)
		}
		return &Literal{Val: n, Pos: t.Pos}, nil
	}
	f, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return nil, syntaxErrf(t.Pos, "invalid number %q", t.Text)
	}
	return &Literal{Val: -f, Pos: t.Pos}, nil
}
