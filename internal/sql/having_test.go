package sql

import (
	"strings"
	"testing"
)

func TestExecHavingFiltersGroups(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE t (g text, v float);
		INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 6), ('b', 8), ('c', 100);
	`)
	r := mustQuery(t, s, `SELECT g, sum(v) FROM t GROUP BY g HAVING count(*) > 1`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0] != "a" || r.Rows[0][1] != 3.0 || r.Rows[1][0] != "b" || r.Rows[1][1] != 14.0 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Tag != "SELECT 2" {
		t.Fatalf("tag = %q", r.Tag)
	}
	// HAVING over an aggregate not in the SELECT list, plus group columns.
	r = mustQuery(t, s, `SELECT g FROM t GROUP BY g HAVING avg(v) > 5 AND g <> 'c'`)
	if len(r.Rows) != 1 || r.Rows[0][0] != "b" {
		t.Fatalf("rows = %v", r.Rows)
	}
	// HAVING composes with WHERE (filter before grouping, then after).
	r = mustQuery(t, s, `SELECT g, count(*) FROM t WHERE v < 50 GROUP BY g HAVING count(*) = 2`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// HAVING with ORDER BY and LIMIT.
	r = mustQuery(t, s, `SELECT g, sum(v) AS total FROM t GROUP BY g HAVING sum(v) >= 3 ORDER BY total DESC LIMIT 2`)
	if len(r.Rows) != 2 || r.Rows[0][0] != "c" || r.Rows[1][0] != "b" {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestExecHavingWithoutGroupBy(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE t (v float);
		INSERT INTO t VALUES (1), (2), (3);
	`)
	// The whole table is one group; HAVING keeps or drops its single row.
	r := mustQuery(t, s, `SELECT sum(v) FROM t HAVING count(*) >= 3`)
	if len(r.Rows) != 1 || r.Rows[0][0] != 6.0 {
		t.Fatalf("rows = %v", r.Rows)
	}
	r = mustQuery(t, s, `SELECT sum(v) FROM t HAVING count(*) > 3`)
	if len(r.Rows) != 0 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// HAVING alone forces the aggregate path even without aggregates in
	// the SELECT list.
	if _, err := s.Exec(`SELECT v FROM t HAVING count(*) > 0`); err == nil ||
		!strings.Contains(err.Error(), "GROUP BY") {
		t.Fatalf("ungrouped column under HAVING: %v", err)
	}
}

func TestExecHavingErrors(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE t (g text, v float);
		INSERT INTO t VALUES ('a', 1);
	`)
	cases := []struct {
		query, want string
	}{
		{`SELECT g, sum(v) FROM t GROUP BY g HAVING v > 1`, "GROUP BY clause"},
		{`SELECT g, sum(v) FROM t GROUP BY g HAVING sum(v)`, "must be boolean"},
		{`SELECT 1 HAVING true`, "require a FROM clause"},
	}
	for _, c := range cases {
		_, err := s.Exec(c.query)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%q: err = %v, want substring %q", c.query, err, c.want)
		}
	}
}

func TestExecHavingWithParams(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE t (g text, v float);
		INSERT INTO t VALUES ('a', 1), ('a', 2), ('b', 6);
		PREPARE h AS SELECT g, sum(v) FROM t GROUP BY g HAVING sum(v) > $1;
	`)
	r := mustQuery(t, s, `EXECUTE h(2)`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	r = mustQuery(t, s, `EXECUTE h(5)`)
	if len(r.Rows) != 1 || r.Rows[0][0] != "b" {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestParseHaving(t *testing.T) {
	st, err := ParseStatement(`SELECT g, count(*) FROM t GROUP BY g HAVING count(*) > 1 ORDER BY g LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*Select)
	if sel.Having == nil {
		t.Fatal("Having not parsed")
	}
	if got := sel.String(); !strings.Contains(got, "HAVING (count(*) > 1)") {
		t.Fatalf("String() = %q", got)
	}
	// HAVING is a reserved word: it cannot be eaten as an implicit alias.
	if _, err := ParseStatement(`SELECT g HAVING FROM t`); err == nil {
		t.Fatal("HAVING as implicit alias should fail to parse")
	}
}
