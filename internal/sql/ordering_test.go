package sql

// Regression tests for ordering and literal correctness:
//
//   - compareValues must compare int64 pairs exactly — widening through
//     float64 conflates values that differ only below 2^53 precision.
//   - integer literals at the edges of int64 must stay exact (min int64
//     reachable via a folded unary minus) and out-of-range integers must
//     error instead of silently becoming floats.
//   - ORDER BY places NULLs per the Postgres default: LAST ascending,
//     FIRST descending.

import (
	"strings"
	"testing"
)

func TestOrderByInt64ExactAboveFloatPrecision(t *testing.T) {
	s := newSession(t)
	// 2^53 = 9007199254740992; the three middle values are
	// indistinguishable after float64 widening.
	mustExec(t, s, `
		CREATE TABLE big (v bigint);
		INSERT INTO big VALUES (9007199254740993), (9007199254740992),
			(9007199254740994), (-9007199254740993), (-9007199254740992);
	`)
	r := mustQuery(t, s, `SELECT v FROM big ORDER BY v`)
	want := []int64{-9007199254740993, -9007199254740992,
		9007199254740992, 9007199254740993, 9007199254740994}
	if len(r.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(want))
	}
	for i, w := range want {
		if got := r.Rows[i][0].(int64); got != w {
			t.Fatalf("row %d = %d, want %d", i, got, w)
		}
	}
	r = mustQuery(t, s, `SELECT v FROM big ORDER BY v DESC LIMIT 2`)
	if r.Rows[0][0].(int64) != 9007199254740994 || r.Rows[1][0].(int64) != 9007199254740993 {
		t.Fatalf("desc rows = %v", r.Rows)
	}
	// DISTINCT must not conflate values equal only after float widening.
	r = mustQuery(t, s, `SELECT DISTINCT v FROM big ORDER BY v`)
	if len(r.Rows) != 5 {
		t.Fatalf("distinct rows = %d, want 5", len(r.Rows))
	}
}

func TestCompareValuesInt64Exact(t *testing.T) {
	a, b := int64(9007199254740993), int64(9007199254740992)
	if c, err := compareValues(a, b); err != nil || c != 1 {
		t.Fatalf("compareValues(%d, %d) = %d, %v; want 1", a, b, c, err)
	}
	if c, err := compareValues(b, a); err != nil || c != -1 {
		t.Fatalf("compareValues(%d, %d) = %d, %v; want -1", b, a, c, err)
	}
	// Mixed int/float still widens.
	if c, err := compareValues(int64(2), 2.5); err != nil || c != -1 {
		t.Fatalf("mixed compare = %d, %v; want -1", c, err)
	}
}

func TestMinInt64LiteralExact(t *testing.T) {
	s := newSession(t)
	r := mustQuery(t, s, `SELECT -9223372036854775808`)
	v, ok := r.Rows[0][0].(int64)
	if !ok || v != -9223372036854775808 {
		t.Fatalf("min int64 literal = %T %v, want exact int64", r.Rows[0][0], r.Rows[0][0])
	}
	// Double negation still routes through Unary and stays integral.
	r = mustQuery(t, s, `SELECT - -42`)
	if v, ok := r.Rows[0][0].(int64); !ok || v != 42 {
		t.Fatalf("- -42 = %T %v", r.Rows[0][0], r.Rows[0][0])
	}
	// Round-trip storage keeps the exact value.
	mustExec(t, s, `CREATE TABLE edge (v bigint); INSERT INTO edge VALUES (-9223372036854775808), (9223372036854775807)`)
	r = mustQuery(t, s, `SELECT v FROM edge ORDER BY v`)
	if r.Rows[0][0].(int64) != -9223372036854775808 || r.Rows[1][0].(int64) != 9223372036854775807 {
		t.Fatalf("edge rows = %v", r.Rows)
	}
}

func TestOutOfRangeIntegerLiteralErrors(t *testing.T) {
	s := newSession(t)
	for _, q := range []string{
		`SELECT 9223372036854775808`,
		`SELECT -9223372036854775809`,
		`SELECT 99999999999999999999999999`,
	} {
		_, err := s.Query(q)
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("%s: err = %v, want out-of-range error", q, err)
		}
	}
	// Floats with exponents are unaffected.
	r := mustQuery(t, s, `SELECT 1e300`)
	if v, ok := r.Rows[0][0].(float64); !ok || v != 1e300 {
		t.Fatalf("1e300 = %T %v", r.Rows[0][0], r.Rows[0][0])
	}
}

func TestOrderByNullPlacement(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, `
		CREATE TABLE d (id bigint, name text);
		CREATE TABLE j (id bigint, who text);
		INSERT INTO d VALUES (1, 'eng'), (2, 'ops'), (3, 'hr');
		INSERT INTO j VALUES (1, 'ann'), (2, 'bob');
	`)
	// Ascending: NULL last.
	r := mustQuery(t, s, `SELECT j.who FROM d LEFT JOIN j ON d.id = j.id ORDER BY j.who`)
	if r.Rows[0][0] != "ann" || r.Rows[1][0] != "bob" || r.Rows[2][0] != nil {
		t.Fatalf("asc rows = %v, want NULL last", r.Rows)
	}
	// Descending: NULL first.
	r = mustQuery(t, s, `SELECT j.who FROM d LEFT JOIN j ON d.id = j.id ORDER BY j.who DESC`)
	if r.Rows[0][0] != nil || r.Rows[1][0] != "bob" || r.Rows[2][0] != "ann" {
		t.Fatalf("desc rows = %v, want NULL first", r.Rows)
	}
}

func TestCompareOrderKeysNullLargest(t *testing.T) {
	if c, _ := compareOrderKeys(nil, nil); c != 0 {
		t.Fatalf("nil,nil = %d", c)
	}
	if c, _ := compareOrderKeys(nil, int64(1)); c != 1 {
		t.Fatalf("nil,1 = %d, want 1 (NULL sorts largest)", c)
	}
	if c, _ := compareOrderKeys(int64(1), nil); c != -1 {
		t.Fatalf("1,nil = %d, want -1", c)
	}
}

func TestSortRowsStopsAfterComparisonError(t *testing.T) {
	s := newSession(t)
	rows := [][]any{{int64(1)}, {"x"}, {int64(2)}, {true}}
	keys := [][]any{{int64(1)}, {"x"}, {int64(2)}, {true}}
	err := sortRows(s.DB(), rows, keys, []bool{false})
	if err == nil || !strings.Contains(err.Error(), "cannot compare") {
		t.Fatalf("err = %v, want comparison error", err)
	}
}
