package sql

import (
	"madlib/internal/engine"
	"madlib/internal/metrics"
	"madlib/internal/model"
)

// madlib.predict('model', f1, f2, ...) scores rows against a model
// persisted in the madlib_models catalog. The planner resolves the
// model ONCE at compile time — the name must be a string literal — and
// freezes its coefficients and link function into the plan, so per-row
// scoring touches no catalog state at all. A frozen model is a plan
// dependency exactly like a scanned table: modelDep records the catalog
// table binding and version at resolution time, planSource.valid checks
// it, and the session plan cache replans on the first execution after
// the model is overwritten (model.Save swaps the catalog table pointer).
//
// Scoring has both lanes. The row lane is the semantic oracle: one
// compiled closure per call, features evaluated in argument order into
// a running dot product, then the link function. The batch lane gathers
// each feature into an unboxed float64 lane over the selected rows and
// accumulates coef[i]*lane_i in the same argument order before applying
// the same link function value — the float operation sequence per row is
// identical, so the two lanes produce bit-identical scores.

// modelDep is one plan-frozen model: the resolved model plus the
// catalog binding that makes staleness detectable, and the lane outcome
// EXPLAIN reports.
type modelDep struct {
	m       model.Model
	table   *engine.Table
	version int64

	// batch records whether a batch scoring kernel was built for this
	// model; reason says why not (empty when unknown, e.g. the whole
	// plan stayed on the row lane).
	batch  bool
	reason string
}

// valid reports whether the frozen model still matches the catalog: the
// table pointer (Save rewrites the table) and its version (a direct
// INSERT into madlib_models mutates in place) are both unchanged.
func (d *modelDep) valid(db *engine.DB) bool {
	t, err := db.Table(model.TableName)
	return err == nil && t == d.table && t.Version() == d.version
}

// resolvePredictDep resolves the model name literal of a predict call
// against the catalog and records the dependency on the plan source.
// Repeated calls for the same model (row lane then batch lane, or the
// same model scored twice in one query) share one dep.
func resolvePredictDep(x *FuncCall, src *planSource) (*modelDep, error) {
	if src == nil || src.db == nil {
		return nil, execErrf("madlib.predict is not supported in this context")
	}
	if len(x.Args) < 2 {
		return nil, execErrf("predict expects a model name and at least one feature: predict('model', f1, ...)")
	}
	lit, ok := x.Args[0].(*Literal)
	if !ok {
		return nil, execErrf("predict: the model name must be a string literal (models are resolved at plan time)")
	}
	name, ok := lit.Val.(string)
	if !ok {
		return nil, execErrf("predict: the model name must be a string literal, not %s", valueTypeName(lit.Val))
	}
	for _, dep := range src.models {
		if dep.m.Name == name {
			return dep, nil
		}
	}
	m, tbl, ver, err := model.Load(src.db, name)
	if err != nil {
		return nil, err
	}
	if got := len(x.Args) - 1; got != len(m.Coef) {
		return nil, execErrf("predict: model %q scores %d feature(s), got %d", name, len(m.Coef), got)
	}
	dep := &modelDep{m: m, table: tbl, version: ver}
	src.models = append(src.models, dep)
	return dep, nil
}

// predictCounters resolves the scoring metrics once per compilation.
func predictCounters(db *engine.DB) (rows, batches *metrics.Counter) {
	return db.Metrics().Counter("predict_rows"), db.Metrics().Counter("predict_batches")
}

// compilePredictRow lowers a predict call onto the row lane.
func compilePredictRow(x *FuncCall, cc *compileCtx) (*compiled, error) {
	dep, err := resolvePredictDep(x, cc.src)
	if err != nil {
		return nil, err
	}
	// Each feature evaluates to (value, isNull): typed numeric arguments
	// can never be NULL, boxed ones (LEFT JOIN padding, $n parameters)
	// yield NULL through, and a NULL feature makes the score NULL.
	type featFn func(engine.Row, *execEnv) (float64, bool, error)
	feats := make([]featFn, len(x.Args)-1)
	nullable := false
	for i, a := range x.Args[1:] {
		c, err := compileExpr(a, cc)
		if err != nil {
			return nil, err
		}
		argNo := i + 1
		switch c.kind {
		case ckFloat, ckInt:
			fn := c.asFloat()
			feats[i] = func(r engine.Row, env *execEnv) (float64, bool, error) {
				v, err := fn(r, env)
				return v, false, err
			}
		case ckAny:
			nullable = true
			fn := c.a
			feats[i] = func(r engine.Row, env *execEnv) (float64, bool, error) {
				v, err := fn(r, env)
				if err != nil {
					return 0, false, err
				}
				if v == nil {
					return 0, true, nil
				}
				f, ok := toFloat(v)
				if !ok {
					return 0, false, execErrf("predict: feature argument %d is %s, not numeric", argNo, valueTypeName(v))
				}
				return f, false, nil
			}
		default:
			return nil, execErrf("predict: feature argument %d is %s, not numeric", argNo, c.kind)
		}
	}
	coef := dep.m.Coef
	link, _ := model.Link(dep.m.Kind)
	rowsC, _ := predictCounters(cc.src.db)
	score := func(r engine.Row, env *execEnv) (float64, bool, error) {
		s := 0.0
		for i, fn := range feats {
			v, null, err := fn(r, env)
			if err != nil || null {
				return 0, null, err
			}
			s += coef[i] * v
		}
		rowsC.Inc()
		return link(s), false, nil
	}
	if !nullable {
		return cFloat(func(r engine.Row, env *execEnv) (float64, error) {
			v, _, err := score(r, env)
			return v, err
		}), nil
	}
	return cAny(func(r engine.Row, env *execEnv) (any, error) {
		v, null, err := score(r, env)
		if err != nil || null {
			return nil, err
		}
		return v, nil
	}), nil
}

// compileBatchPredict lowers a predict call onto the batch lane: gather
// each feature into an unboxed lane, fused multiply-add per coefficient
// in argument order, one link pass. ok=false (with the reason recorded
// on the dep for EXPLAIN) keeps the call on the row lane.
func compileBatchPredict(x *FuncCall, bc *batchCompiler) (*bcompiled, bool) {
	if bc.src == nil || bc.src.db == nil {
		return nil, false
	}
	dep, err := resolvePredictDep(x, bc.src)
	if err != nil {
		// The row-lane compile already reported this error; nothing to
		// record.
		return nil, false
	}
	fks := make([]fBatchKernel, len(x.Args)-1)
	var valid bBatchKernel
	for i, a := range x.Args[1:] {
		c, ok := compileBatchExpr(a, bc)
		if !ok {
			dep.reason = execErrf("feature argument %d has no batch lowering", i+1).Error()
			return nil, false
		}
		if c.paramIdx > 0 {
			dep.reason = execErrf("feature argument %d is a $n parameter", i+1).Error()
			return nil, false
		}
		if c.kind != ckFloat && c.kind != ckInt {
			dep.reason = execErrf("feature argument %d is not numeric", i+1).Error()
			return nil, false
		}
		fks[i] = c.asF(bc)
		valid = validAnd(valid, c.valid, bc)
	}
	coef := dep.m.Coef
	link, _ := model.Link(dep.m.Kind)
	rowsC, batchesC := predictCounters(bc.src.db)
	slot := bc.floatSlot()
	out := &bcompiled{kind: ckFloat,
		f: func(e *batchEval, b engine.ColBatch, sel selVec, out []float64) error {
			for j := range out {
				out[j] = 0
			}
			tmp := e.f(slot, len(sel))
			for i, fk := range fks {
				if err := fk(e, b, sel, tmp); err != nil {
					return err
				}
				c := coef[i]
				for j, v := range tmp {
					out[j] += c * v
				}
			}
			for j := range out {
				out[j] = link(out[j])
			}
			rowsC.Add(int64(len(sel)))
			batchesC.Inc()
			return nil
		}}
	if valid != nil {
		// NULL-padded features (LEFT JOIN): score only the valid rows and
		// carry the validity out, matching the row lane's NULL-in-NULL-out.
		wrapped, ok := wrapNullable(out, valid, bc)
		if !ok {
			dep.reason = "NULL-padded features have no batch lowering"
			return nil, false
		}
		out = wrapped
	}
	dep.batch = true
	dep.reason = ""
	return out, true
}
