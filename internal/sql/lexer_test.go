package sql

import (
	"errors"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT avg(v), g FROM t WHERE v >= 1.5;")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokIdent, "SELECT"}, {TokIdent, "avg"}, {TokOp, "("}, {TokIdent, "v"},
		{TokOp, ")"}, {TokOp, ","}, {TokIdent, "g"}, {TokIdent, "FROM"},
		{TokIdent, "t"}, {TokIdent, "WHERE"}, {TokIdent, "v"}, {TokOp, ">="},
		{TokNumber, "1.5"}, {TokOp, ";"}, {TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Fatalf("token %d = (%v, %q), want (%v, %q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	for _, tc := range []struct {
		in   string
		text string
	}{
		{"42", "42"},
		{"3.25", "3.25"},
		{".5", ".5"},
		{"1e-3", "1e-3"},
		{"2E+10", "2E+10"},
		{"7.", "7."},
	} {
		toks, err := Lex(tc.in)
		if err != nil {
			t.Fatalf("%q: %v", tc.in, err)
		}
		if toks[0].Kind != TokNumber || toks[0].Text != tc.text {
			t.Fatalf("%q lexed to %v %q", tc.in, toks[0].Kind, toks[0].Text)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex("'hello' 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "hello" || toks[1].Text != "it's" {
		t.Fatalf("strings = %q, %q", toks[0].Text, toks[1].Text)
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Fatal("unterminated string should fail")
	}
	var se *ErrSyntax
	if _, err := Lex("'oops"); !errors.As(err, &se) {
		t.Fatalf("want *ErrSyntax, got %T", err)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("SELECT 1 -- trailing comment\n+ 2")
	if err != nil {
		t.Fatal(err)
	}
	got := kinds(toks)
	want := []TokenKind{TokIdent, TokNumber, TokOp, TokNumber, TokEOF}
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", got, want)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("<= >= <> != < > = { } [ ] %")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"<=", ">=", "<>", "!=", "<", ">", "=", "{", "}", "[", "]", "%"}
	for i, w := range want {
		if toks[i].Text != w {
			t.Fatalf("op %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexBadCharacter(t *testing.T) {
	_, err := Lex("SELECT @")
	if err == nil {
		t.Fatal("expected error for @")
	}
	var se *ErrSyntax
	if !errors.As(err, &se) {
		t.Fatalf("want *ErrSyntax, got %T", err)
	}
	if se.Pos != 7 {
		t.Fatalf("error pos = %d, want 7", se.Pos)
	}
}

func TestLexParams(t *testing.T) {
	toks, err := Lex("SELECT $1 + $23")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokParam || toks[1].Text != "1" {
		t.Fatalf("token 1 = (%v, %q)", toks[1].Kind, toks[1].Text)
	}
	if toks[3].Kind != TokParam || toks[3].Text != "23" {
		t.Fatalf("token 3 = (%v, %q)", toks[3].Kind, toks[3].Text)
	}
	if _, err := Lex("SELECT $"); err == nil {
		t.Fatal("bare $ should fail")
	}
	if _, err := Lex("SELECT $x"); err == nil {
		t.Fatal("$x should fail")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("ab  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 4 {
		t.Fatalf("positions = %d, %d", toks[0].Pos, toks[1].Pos)
	}
}
